// Integration tests of the full STAT scenario: phase pipeline, failure
// modes, representation equivalence, and result structure.
#include <gtest/gtest.h>

#include "stat/scenario.hpp"

namespace petastat::stat {
namespace {

StatRunResult run(const machine::MachineConfig& machine, std::uint32_t tasks,
                  machine::BglMode mode, StatOptions options) {
  machine::JobConfig job;
  job.num_tasks = tasks;
  job.mode = mode;
  StatScenario scenario(machine, job, options);
  return scenario.run();
}

TEST(Scenario, PhaseTimesArePositiveAndOrdered) {
  StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  const auto result =
      run(machine::atlas(), 512, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_GT(result.phases.launch.total(), 0u);
  EXPECT_GT(result.phases.connect_time, 0u);
  EXPECT_GE(result.phases.startup_total,
            result.phases.launch.total() + result.phases.connect_time);
  EXPECT_GT(result.phases.sample_time, 0u);
  EXPECT_GT(result.phases.merge_time, 0u);
  EXPECT_GT(result.phases.remap_time, 0u);  // hierarchical default
  EXPECT_GT(result.phases.merge_bytes, 0u);
  EXPECT_GT(result.phases.merge_messages, 0u);
  EXPECT_EQ(result.phases.daemon_sample_seconds.count(),
            result.layout.num_daemons);
}

TEST(Scenario, DenseRepresentationSkipsRemap) {
  StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.repr = TaskSetRepr::kDenseGlobal;
  const auto result =
      run(machine::atlas(), 512, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.phases.remap_time, 0u);
}

// The paper's Sec. V correctness claim, end to end: both representations
// produce the same global trees and classes, even with an out-of-order
// process table.
class ReprEquivalenceEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReprEquivalenceEndToEnd, SameTreesAndClasses) {
  StatOptions base;
  base.topology = tbon::TopologySpec::balanced(2);
  base.shuffle_task_map = true;
  base.seed = GetParam();

  StatOptions dense = base;
  dense.repr = TaskSetRepr::kDenseGlobal;
  StatOptions hier = base;
  hier.repr = TaskSetRepr::kHierarchical;

  const auto dense_result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, dense);
  const auto hier_result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, hier);
  ASSERT_TRUE(dense_result.status.is_ok());
  ASSERT_TRUE(hier_result.status.is_ok());

  EXPECT_EQ(dense_result.tree_2d, hier_result.tree_2d);
  EXPECT_EQ(dense_result.tree_3d, hier_result.tree_3d);
  ASSERT_EQ(dense_result.classes.size(), hier_result.classes.size());
  for (std::size_t i = 0; i < dense_result.classes.size(); ++i) {
    EXPECT_EQ(dense_result.classes[i].tasks, hier_result.classes[i].tasks);
    EXPECT_EQ(dense_result.classes[i].path, hier_result.classes[i].path);
  }
  // At this small scale the dense labels are actually *cheaper* on the wire
  // (32 bytes per label vs per-daemon block lists) — the hierarchical
  // representation only wins once the job grows, which is precisely the
  // paper's point. LeafPayloadBytesTrackRepresentation covers the large-
  // scale crossover.
  EXPECT_GT(dense_result.phases.merge_bytes, 0u);
  EXPECT_GT(hier_result.phases.merge_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReprEquivalenceEndToEnd,
                         ::testing::Values(1ull, 7ull, 2008ull));

TEST(Scenario, ClassesPartitionTasksAndIsolateTheBug) {
  StatOptions options;
  options.topology = tbon::TopologySpec::bgl(2);
  options.launcher = LauncherKind::kCiodPatched;
  const auto result =
      run(machine::bgl(), 8192, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(result.status.is_ok());
  std::uint64_t total = 0;
  for (const auto& cls : result.classes) total += cls.size();
  EXPECT_EQ(total, 8192u);
  bool task1 = false, task2 = false;
  for (const auto& cls : result.classes) {
    if (cls.size() == 1 && cls.tasks.contains(1)) task1 = true;
    if (cls.size() == 1 && cls.tasks.contains(2)) task2 = true;
  }
  EXPECT_TRUE(task1);
  EXPECT_TRUE(task2);
}

TEST(Scenario, RshLauncherFailsAt512Daemons) {
  StatOptions options;
  options.launcher = LauncherKind::kMrnetRsh;
  options.run_through = RunThrough::kStartup;
  const auto result =
      run(machine::atlas(), 4096, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(Scenario, SshLauncherUnavailableOnAtlas) {
  StatOptions options;
  options.launcher = LauncherKind::kMrnetSsh;
  options.run_through = RunThrough::kStartup;
  const auto result =
      run(machine::atlas(), 64, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(Scenario, UnpatchedCiodHangsAt208K) {
  StatOptions options;
  options.topology = tbon::TopologySpec::bgl(2);
  options.launcher = LauncherKind::kCiodUnpatched;
  options.run_through = RunThrough::kStartup;
  const auto result =
      run(machine::bgl(), 212992, machine::BglMode::kVirtualNode, options);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Scenario, FlatTopologyFailsMergeAt256DaemonsOnBgl) {
  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.launcher = LauncherKind::kCiodPatched;
  options.repr = TaskSetRepr::kDenseGlobal;
  const auto result =
      run(machine::bgl(), 16384, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  // Startup and sampling still completed (the failure is in the merge).
  EXPECT_GT(result.phases.sample_time, 0u);
  EXPECT_FALSE(result.phases.merge_status.is_ok());
}

TEST(Scenario, ConnectionLimitBoundaryIsExact) {
  // Exactly the limit survives; one more fails (the documented `> limit`
  // semantic, via the per-run override knob). 256 Atlas tasks = 32 daemons
  // hanging directly off a flat front end.
  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  for (const std::uint32_t limit : {33u, 32u}) {
    options.max_frontend_connections = limit;
    const auto result =
        run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
    EXPECT_TRUE(result.status.is_ok()) << "limit " << limit;
  }
  options.max_frontend_connections = 31;
  const auto result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(result.phases.merge_status.is_ok());
}

TEST(Scenario, ExplicitZeroConnectionOverrideIsInvalid) {
  // An explicit 0 is a configuration error, not a request for the machine
  // default — the old silent-fallback ternary hid exactly this typo.
  StatOptions options;
  options.max_frontend_connections = 0;
  const auto result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  // The run never reaches a simulated phase.
  EXPECT_EQ(result.phases.startup_total, 0u);
}

TEST(Scenario, ZeroShardsIsInvalid) {
  StatOptions options;
  options.fe_shards = 0;
  const auto result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

// The sharding correctness gate: a sharded run's merged trees and classes
// are bit-identical to the unsharded run's (the merge is canonical, so the
// shard grouping cannot show through).
TEST(Scenario, ShardedMergeIsBitIdenticalToUnsharded) {
  for (const TaskSetRepr repr :
       {TaskSetRepr::kDenseGlobal, TaskSetRepr::kHierarchical}) {
    StatOptions unsharded;
    unsharded.topology = tbon::TopologySpec::flat();
    unsharded.repr = repr;
    StatOptions sharded = unsharded;
    sharded.fe_shards = 4;
    const auto a =
        run(machine::atlas(), 256, machine::BglMode::kCoprocessor, unsharded);
    const auto b =
        run(machine::atlas(), 256, machine::BglMode::kCoprocessor, sharded);
    ASSERT_TRUE(a.status.is_ok());
    ASSERT_TRUE(b.status.is_ok()) << b.status.to_string();
    EXPECT_EQ(b.topology.fe_shards, 4u);
    EXPECT_EQ(b.num_comm_procs, 4u);
    EXPECT_EQ(a.tree_2d, b.tree_2d);
    EXPECT_EQ(a.tree_3d, b.tree_3d);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
      EXPECT_EQ(a.classes[i].path, b.classes[i].path);
      EXPECT_TRUE(a.classes[i].tasks == b.classes[i].tasks);
    }
  }
}

TEST(Scenario, ShardedRemapIsDistributed) {
  // Reducers remap their contiguous slices concurrently: the hier remap
  // phase costs ~1/K of the unsharded remap.
  StatOptions unsharded;
  unsharded.topology = tbon::TopologySpec::flat();
  StatOptions sharded = unsharded;
  sharded.fe_shards = 4;
  const auto a =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, unsharded);
  const auto b =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, sharded);
  ASSERT_TRUE(a.status.is_ok());
  ASSERT_TRUE(b.status.is_ok());
  EXPECT_EQ(a.phases.remap_time, 4 * b.phases.remap_time);
}

// The acceptance scenario: the Sec. V-A configuration that dies unsharded
// (1-deep, 256 daemons over BG/L's 255-connection front end) completes with
// `--fe-shards auto`, producing the same diagnosis as a viable deep tree.
TEST(Scenario, FeShardsAutoRescuesSecVAFailure) {
  StatOptions flat;
  flat.topology = tbon::TopologySpec::flat();
  flat.launcher = LauncherKind::kCiodPatched;
  const auto dead =
      run(machine::bgl(), 16384, machine::BglMode::kCoprocessor, flat);
  ASSERT_EQ(dead.status.code(), StatusCode::kResourceExhausted);

  StatOptions rescued = flat;
  rescued.fe_shards_auto = true;
  const auto alive =
      run(machine::bgl(), 16384, machine::BglMode::kCoprocessor, rescued);
  ASSERT_TRUE(alive.status.is_ok()) << alive.status.to_string();
  EXPECT_GE(alive.topology.fe_shards, 2u);

  StatOptions deep = flat;
  deep.topology = tbon::TopologySpec::bgl(2);
  const auto reference =
      run(machine::bgl(), 16384, machine::BglMode::kCoprocessor, deep);
  ASSERT_TRUE(reference.status.is_ok());
  EXPECT_EQ(alive.tree_3d, reference.tree_3d);
  ASSERT_EQ(alive.classes.size(), reference.classes.size());
  for (std::size_t i = 0; i < alive.classes.size(); ++i) {
    EXPECT_TRUE(alive.classes[i].tasks == reference.classes[i].tasks);
  }
}

TEST(Scenario, RunThroughStopsEarly) {
  StatOptions options;
  options.run_through = RunThrough::kStartup;
  const auto startup_only =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(startup_only.status.is_ok());
  EXPECT_GT(startup_only.phases.startup_total, 0u);
  EXPECT_EQ(startup_only.phases.sample_time, 0u);
  EXPECT_EQ(startup_only.phases.merge_time, 0u);

  options.run_through = RunThrough::kSampling;
  const auto no_merge =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  EXPECT_GT(no_merge.phases.sample_time, 0u);
  EXPECT_EQ(no_merge.phases.merge_time, 0u);
}

TEST(Scenario, SbrsMakesSamplingScaleFree) {
  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.slim_binaries = true;
  options.use_sbrs = true;
  const auto small =
      run(machine::atlas(), 64, machine::BglMode::kCoprocessor, options);
  const auto large =
      run(machine::atlas(), 1024, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(small.status.is_ok());
  ASSERT_TRUE(large.status.is_ok());
  EXPECT_GT(small.phases.sbrs_relocation, 0u);
  // 16x the daemons, sampling within 35%.
  const double ratio = to_seconds(large.phases.sample_time) /
                       to_seconds(small.phases.sample_time);
  EXPECT_LT(ratio, 1.35);
}

TEST(Scenario, LustreBackendRuns) {
  StatOptions options;
  options.shared_fs = SharedFsKind::kLustre;
  options.slim_binaries = true;
  options.run_through = RunThrough::kSampling;
  const auto result =
      run(machine::atlas(), 256, machine::BglMode::kCoprocessor, options);
  EXPECT_TRUE(result.status.is_ok());
  EXPECT_GT(result.phases.sample_time, 0u);
}

TEST(Scenario, StatBenchAppProducesManyClasses) {
  StatOptions options;
  options.app = AppKind::kStatBench;
  options.statbench_classes = 24;
  options.topology = tbon::TopologySpec::balanced(2);
  const auto result =
      run(machine::atlas(), 1024, machine::BglMode::kCoprocessor, options);
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_GE(result.classes.size(), 15u);
}

TEST(Scenario, ThreadedAppFoldsIntoProcessClasses) {
  machine::JobConfig job;
  job.num_tasks = 512;
  job.threads_per_task = 4;
  StatOptions options;
  options.app = AppKind::kThreadedRing;
  options.topology = tbon::TopologySpec::balanced(2);
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  // Classes stay keyed by MPI rank. With multiple threads a task's distinct
  // per-thread stacks legitimately end in multiple classes, so classes
  // *cover* (not partition) the rank space.
  TaskSet covered;
  for (const auto& cls : result.classes) covered.union_with(cls.tasks);
  EXPECT_EQ(covered.count(), 512u);
  for (const auto& cls : result.classes) {
    EXPECT_LE(cls.tasks.max_task(), 511u);  // ranks, never thread ids
  }
}

TEST(Scenario, VirtualNodeModeDoublesTasksPerDaemon) {
  StatOptions options;
  options.topology = tbon::TopologySpec::bgl(2);
  options.launcher = LauncherKind::kCiodPatched;
  options.run_through = RunThrough::kSampling;
  const auto co =
      run(machine::bgl(), 8192, machine::BglMode::kCoprocessor, options);
  const auto vn =
      run(machine::bgl(), 16384, machine::BglMode::kVirtualNode, options);
  ASSERT_TRUE(co.status.is_ok());
  ASSERT_TRUE(vn.status.is_ok());
  EXPECT_EQ(co.layout.num_daemons, vn.layout.num_daemons);  // same 128 I/O nodes
  EXPECT_EQ(co.layout.tasks_per_daemon, 64u);
  EXPECT_EQ(vn.layout.tasks_per_daemon, 128u);
}

TEST(Scenario, DeterministicForSameSeedAndConfig) {
  StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.seed = 99;
  const auto a = run(machine::atlas(), 256, machine::BglMode::kCoprocessor,
                     options);
  const auto b = run(machine::atlas(), 256, machine::BglMode::kCoprocessor,
                     options);
  ASSERT_TRUE(a.status.is_ok());
  EXPECT_EQ(a.phases.startup_total, b.phases.startup_total);
  EXPECT_EQ(a.phases.sample_time, b.phases.sample_time);
  EXPECT_EQ(a.phases.merge_time, b.phases.merge_time);
  EXPECT_EQ(a.tree_3d, b.tree_3d);
}

TEST(Scenario, LeafPayloadBytesTrackRepresentation) {
  StatOptions dense;
  dense.topology = tbon::TopologySpec::bgl(2);
  dense.launcher = LauncherKind::kCiodPatched;
  dense.repr = TaskSetRepr::kDenseGlobal;
  StatOptions hier = dense;
  hier.repr = TaskSetRepr::kHierarchical;
  const auto dense_result =
      run(machine::bgl(), 65536, machine::BglMode::kCoprocessor, dense);
  const auto hier_result =
      run(machine::bgl(), 65536, machine::BglMode::kCoprocessor, hier);
  // Dense leaf payloads carry full-job bit vectors: orders of magnitude
  // larger than subtree-local lists.
  EXPECT_GT(dense_result.phases.leaf_payload_bytes,
            50 * hier_result.phases.leaf_payload_bytes);
}

}  // namespace
}  // namespace petastat::stat
