// Unit tests for the LaunchMON back-end fabric and SBRS.
#include <gtest/gtest.h>

#include <optional>

#include "launchmon/launchmon.hpp"
#include "sbrs/sbrs.hpp"

namespace petastat {
namespace {

struct FabricFixture {
  sim::Simulator sim;
  machine::MachineConfig machine = machine::atlas();
  net::Network net{sim, net::build_switch_graph(machine)};

  machine::DaemonLayout layout_of(std::uint32_t daemons) {
    machine::DaemonLayout l;
    l.num_daemons = daemons;
    l.tasks_per_daemon = 8;
    l.num_tasks = daemons * 8;
    return l;
  }
};

TEST(BackEndFabric, BroadcastCompletesForOneDaemon) {
  FabricFixture f;
  launchmon::BackEndFabric fabric(f.sim, f.machine, f.net, f.layout_of(1));
  bool done = false;
  fabric.broadcast_from_master(4'000'000, [&]() { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
}

class BroadcastScales : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BroadcastScales, DeliversToAllAndScalesLogarithmically) {
  FabricFixture f;
  const std::uint32_t daemons = GetParam();
  launchmon::BackEndFabric fabric(f.sim, f.machine, f.net, f.layout_of(daemons));
  bool done = false;
  fabric.broadcast_from_master(4'000'000, [&]() { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  // Binomial tree: exactly n-1 point-to-point messages.
  EXPECT_EQ(f.net.total_messages(), daemons - 1);
  EXPECT_EQ(f.net.total_bytes_moved(),
            static_cast<std::uint64_t>(daemons - 1) * 4'000'000);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastScales,
                         ::testing::Values(2u, 3u, 17u, 128u, 500u));

TEST(BackEndFabric, BroadcastTimeGrowsLogNotLinear) {
  const auto time_for = [](std::uint32_t daemons) {
    FabricFixture f;
    launchmon::BackEndFabric fabric(f.sim, f.machine, f.net,
                                    f.layout_of(daemons));
    fabric.broadcast_from_master(4'000'000, []() {});
    f.sim.run();
    return f.sim.now();
  };
  const SimTime t16 = time_for(16);
  const SimTime t256 = time_for(256);
  // 16x the daemons costs ~2x (4 extra rounds), far below 16x.
  EXPECT_LT(to_seconds(t256), 4 * to_seconds(t16));
}

TEST(BackEndFabric, ReduceCompletesAndCountsMessages) {
  FabricFixture f;
  launchmon::BackEndFabric fabric(f.sim, f.machine, f.net, f.layout_of(64));
  bool done = false;
  fabric.reduce_to_master(1024, [&]() { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.net.total_messages(), 63u);
}

TEST(BackEndFabric, MasterHostFollowsPlacement) {
  FabricFixture f;
  launchmon::BackEndFabric fabric(f.sim, f.machine, f.net, f.layout_of(8));
  EXPECT_EQ(fabric.master_host(), machine::daemon_host(f.machine, DaemonId(0)));
}

// --------------------------------------------------------------------------
// SBRS

struct SbrsFixture {
  sim::Simulator sim;
  machine::MachineConfig machine = machine::atlas();
  net::Network net{sim, net::build_switch_graph(machine)};
  fs::NfsFileSystem nfs;
  fs::RamDiskFileSystem ram;
  fs::RamDiskFileSystem local;
  fs::MountTable mounts;
  fs::FileAccess files{sim, mounts};
  machine::DaemonLayout layout;
  launchmon::BackEndFabric fabric;

  static fs::NfsParams quiet() {
    fs::NfsParams p;
    p.background_sigma = 0;
    p.run_load_sigma = 0;
    return p;
  }

  explicit SbrsFixture(std::uint32_t daemons = 128)
      : nfs(sim, quiet(), 1),
        ram(sim, fs::RamDiskParams{}),
        local(sim, fs::RamDiskParams{}),
        layout{daemons, 8, daemons * 8},
        fabric(sim, machine, net, layout) {
    mounts.mount("/nfs", &nfs);
    mounts.mount("/ramdisk", &ram);
    mounts.mount("/usr/lib", &local);
  }
};

TEST(Sbrs, RelocatesOnlySharedBinaries) {
  SbrsFixture f;
  sbrs::Sbrs service(f.sim, f.machine, f.layout, f.files, f.fabric,
                     sbrs::SbrsParams{});
  const auto spec = app::ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
  std::optional<sbrs::SbrsReport> report;
  service.relocate(spec, [&](const sbrs::SbrsReport& r) { report = r; });
  f.sim.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->relocated_files, 2u);       // exe + libmpi
  EXPECT_EQ(report->skipped_local_files, 4u);   // /usr/lib closure stays
  EXPECT_EQ(report->relocated_bytes, 10u * 1024 + 4u * 1024 * 1024);
  EXPECT_GT(report->relocation_time, 0u);
  EXPECT_EQ(report->grace_time, sbrs::SbrsParams{}.sigstop_grace);
}

TEST(Sbrs, InstallsRedirectsOnEveryDaemonHost) {
  SbrsFixture f(16);
  sbrs::Sbrs service(f.sim, f.machine, f.layout, f.files, f.fabric,
                     sbrs::SbrsParams{});
  const auto spec = app::ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
  service.relocate(spec, [](const sbrs::SbrsReport&) {});
  f.sim.run();
  for (std::uint32_t d = 0; d < 16; ++d) {
    const NodeId host = machine::daemon_host(f.machine, DaemonId(d));
    EXPECT_EQ(f.files.redirected_path(host, "/nfs/home/user/mpi_ringtopo"),
              "/ramdisk/nfs/home/user/mpi_ringtopo");
    // And the relocated copy is resident: reads complete instantly.
    EXPECT_EQ(f.files.open_and_read(host, "/nfs/home/user/mpi_ringtopo", 10240),
              f.sim.now());
  }
}

TEST(Sbrs, NoSharedFilesMeansNoRelocationCost) {
  SbrsFixture f;
  sbrs::Sbrs service(f.sim, f.machine, f.layout, f.files, f.fabric,
                     sbrs::SbrsParams{});
  app::AppBinarySpec spec;
  spec.images.push_back({"/usr/lib/libc.so", 1'000'000});
  std::optional<sbrs::SbrsReport> report;
  service.relocate(spec, [&](const sbrs::SbrsReport& r) { report = r; });
  f.sim.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->relocated_files, 0u);
  EXPECT_EQ(report->relocation_time, 0u);
  EXPECT_EQ(report->skipped_local_files, 1u);
}

TEST(Sbrs, RelocationAnchorOrderOfMagnitude) {
  // The paper's 0.088 s for 10 KB + 4 MB to 128 nodes.
  SbrsFixture f(128);
  sbrs::Sbrs service(f.sim, f.machine, f.layout, f.files, f.fabric,
                     sbrs::SbrsParams{});
  const auto spec = app::ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
  std::optional<sbrs::SbrsReport> report;
  service.relocate(spec, [&](const sbrs::SbrsReport& r) { report = r; });
  f.sim.run();
  const double reloc = to_seconds(report->relocation_time);
  EXPECT_GT(reloc, 0.02);
  EXPECT_LT(reloc, 0.3);
}

TEST(Sbrs, GracePeriodDelaysRelocationStart) {
  SbrsFixture f(8);
  sbrs::SbrsParams params;
  params.sigstop_grace = 2 * kSecond;
  sbrs::Sbrs service(f.sim, f.machine, f.layout, f.files, f.fabric, params);
  const auto spec = app::ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
  std::optional<sbrs::SbrsReport> report;
  service.relocate(spec, [&](const sbrs::SbrsReport& r) { report = r; });
  f.sim.run();
  EXPECT_GE(f.sim.now(), 2 * kSecond);
  EXPECT_LT(report->relocation_time, kSecond);  // grace not billed as reloc
}

}  // namespace
}  // namespace petastat
