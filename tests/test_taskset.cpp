// Unit and property tests for TaskSet, DenseBitVector, and their wire
// formats — the Fig. 6 data structures.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {
namespace {

TEST(TaskSet, InsertAndContains) {
  TaskSet s;
  s.insert(5);
  s.insert(7);
  s.insert(6);
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(6));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.interval_count(), 1u);  // coalesced into [5,7]
}

TEST(TaskSet, InsertRangeMergesOverlaps) {
  TaskSet s;
  s.insert_range(10, 20);
  s.insert_range(30, 40);
  s.insert_range(15, 35);  // bridges both
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.count(), 31u);
  EXPECT_EQ(s.intervals().front().lo, 10u);
  EXPECT_EQ(s.intervals().front().hi, 40u);
}

TEST(TaskSet, AdjacentIntervalsCoalesce) {
  TaskSet s;
  s.insert_range(0, 4);
  s.insert_range(5, 9);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(TaskSet, UnionWith) {
  TaskSet a = TaskSet::range(0, 9);
  TaskSet b = TaskSet::range(20, 29);
  a.union_with(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.interval_count(), 2u);
  a.union_with(TaskSet::range(10, 19));
  EXPECT_EQ(a.interval_count(), 1u);
}

TEST(TaskSet, DifferenceAndIntersects) {
  TaskSet a = TaskSet::range(0, 99);
  TaskSet b = TaskSet::range(40, 59);
  EXPECT_TRUE(a.intersects(b));
  const TaskSet d = a.difference(b);
  EXPECT_EQ(d.count(), 80u);
  EXPECT_FALSE(d.contains(50));
  EXPECT_TRUE(d.contains(39));
  EXPECT_TRUE(d.contains(60));
  EXPECT_FALSE(d.intersects(b));
}

TEST(TaskSet, EdgeLabelMatchesFigureOne) {
  TaskSet s = TaskSet::single(0);
  s.insert_range(3, 1023);
  EXPECT_EQ(s.edge_label(), "1022:[0,3-1023]");
  EXPECT_EQ(TaskSet::single(1).edge_label(), "1:[1]");
}

TEST(TaskSet, MaxTaskAndEmpty) {
  TaskSet s;
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(100);
  EXPECT_EQ(s.max_task(), 100u);
}

// Property: TaskSet behaves exactly like std::set under random ops.
class TaskSetVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TaskSetVsReference, RandomOperationsMatch) {
  Rng rng(GetParam());
  TaskSet set;
  std::set<std::uint32_t> reference;
  for (int op = 0; op < 500; ++op) {
    if (rng.bernoulli(0.7)) {
      const auto v = static_cast<std::uint32_t>(rng.next_below(300));
      set.insert(v);
      reference.insert(v);
    } else {
      const auto lo = static_cast<std::uint32_t>(rng.next_below(280));
      const auto len = static_cast<std::uint32_t>(rng.next_below(20));
      set.insert_range(lo, lo + len);
      for (std::uint32_t v = lo; v <= lo + len; ++v) reference.insert(v);
    }
  }
  EXPECT_EQ(set.count(), reference.size());
  const auto vec = set.to_vector();
  EXPECT_TRUE(std::equal(vec.begin(), vec.end(), reference.begin()));
  for (std::uint32_t v = 0; v < 310; ++v) {
    EXPECT_EQ(set.contains(v), reference.contains(v)) << v;
  }
  // Intervals are sorted, disjoint, non-adjacent.
  const auto& ivs = set.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_GT(ivs[i].lo, ivs[i - 1].hi + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskSetVsReference,
                         ::testing::Range<std::uint64_t>(0, 12));

// Property: union_with agrees with std::set_union.
class UnionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionProperty, MatchesReferenceUnion) {
  Rng rng(GetParam() * 977 + 5);
  TaskSet a, b;
  std::set<std::uint32_t> ra, rb;
  for (int i = 0; i < 100; ++i) {
    const auto va = static_cast<std::uint32_t>(rng.next_below(500));
    const auto vb = static_cast<std::uint32_t>(rng.next_below(500));
    a.insert(va);
    ra.insert(va);
    b.insert(vb);
    rb.insert(vb);
  }
  TaskSet u = a;
  u.union_with(b);
  std::set<std::uint32_t> ru = ra;
  ru.insert(rb.begin(), rb.end());
  EXPECT_EQ(u.count(), ru.size());
  // Commutativity.
  TaskSet u2 = b;
  u2.union_with(a);
  EXPECT_EQ(u, u2);
  // Idempotence.
  TaskSet u3 = u;
  u3.union_with(u);
  EXPECT_EQ(u3, u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionProperty, ::testing::Range<std::uint64_t>(0, 10));

// Wire formats.

class WireRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundtrip, DenseAndRangedRoundtrip) {
  Rng rng(GetParam() * 31 + 7);
  TaskSet set;
  const std::uint32_t job_size = 2048;
  for (int i = 0; i < 200; ++i) {
    set.insert(static_cast<std::uint32_t>(rng.next_below(job_size)));
  }

  ByteSink dense_sink;
  set.encode_dense(dense_sink, job_size);
  EXPECT_EQ(dense_sink.size(), set.dense_wire_bytes(job_size));
  auto dense_bytes = dense_sink.take();
  ByteSource dense_source(dense_bytes);
  auto dense_decoded = TaskSet::decode_dense(dense_source, job_size);
  ASSERT_TRUE(dense_decoded.is_ok());
  EXPECT_EQ(dense_decoded.value(), set);

  ByteSink ranged_sink;
  set.encode_ranged(ranged_sink);
  EXPECT_EQ(ranged_sink.size(), set.ranged_wire_bytes());
  auto ranged_bytes = ranged_sink.take();
  ByteSource ranged_source(ranged_bytes);
  auto ranged_decoded = TaskSet::decode_ranged(ranged_source);
  ASSERT_TRUE(ranged_decoded.is_ok());
  EXPECT_EQ(ranged_decoded.value(), set);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundtrip, ::testing::Range<std::uint64_t>(0, 10));

TEST(WireFormats, DenseSizeIsJobProportional) {
  const TaskSet s = TaskSet::range(0, 127);  // one daemon's contiguous block
  EXPECT_EQ(s.dense_wire_bytes(212992), 26624u);   // 26 KB at 208K tasks
  EXPECT_EQ(s.dense_wire_bytes(1048576), 131072u); // the 1-megabit edge label
  EXPECT_LT(s.ranged_wire_bytes(), 8u);            // vs a handful of bytes
}

TEST(WireFormats, DenseMatchesDenseBitVectorBytes) {
  TaskSet s;
  s.insert_range(3, 90);
  s.insert(200);
  const std::uint32_t size = 256;
  ByteSink from_set;
  s.encode_dense(from_set, size);
  ByteSink from_bits;
  DenseBitVector::from_task_set(s, size).encode(from_bits);
  ASSERT_EQ(from_set.size(), from_bits.size());
  EXPECT_TRUE(std::equal(from_set.bytes().begin(), from_set.bytes().end(),
                         from_bits.bytes().begin()));
}

TEST(DenseBitVector, SetTestCount) {
  DenseBitVector bits(130);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  EXPECT_THROW(bits.set(130), std::logic_error);
}

TEST(DenseBitVector, OrWithIsUnion) {
  DenseBitVector a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);
  a.or_with(b);
  EXPECT_EQ(a.count(), 3u);
  DenseBitVector c(64);
  EXPECT_THROW(a.or_with(c), std::logic_error);
}

TEST(DenseBitVector, TaskSetRoundtrip) {
  TaskSet s;
  s.insert_range(10, 20);
  s.insert(63);
  s.insert(64);
  const DenseBitVector bits = DenseBitVector::from_task_set(s, 128);
  EXPECT_EQ(bits.to_task_set(), s);
}

TEST(DenseBitVector, EncodeDecodeRoundtrip) {
  DenseBitVector bits(77);
  for (std::uint32_t i = 0; i < 77; i += 3) bits.set(i);
  ByteSink sink;
  bits.encode(sink);
  EXPECT_EQ(sink.size(), bits.wire_bytes());
  auto bytes = sink.take();
  ByteSource source(bytes);
  auto decoded = DenseBitVector::decode(source, 77);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), bits);
}

}  // namespace
}  // namespace petastat::stat
