// Unit tests for the execution-engine layer: ThreadPool (worker pool + MPSC
// completion queue) and sim::Executor (inline vs pooled submission, strand
// serialization). The determinism of full scenario runs is covered end to
// end by test_parallel_determinism; this suite pins the substrate contracts
// those runs rely on — and is the surface the TSan CI job hammers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/executor.hpp"

namespace petastat {
namespace {

// --------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, WaitMakesSideEffectsVisible) {
  ThreadPool pool(4);
  int value = 0;
  auto task = ThreadPool::package([&value]() { value = 42; });
  pool.post(task);
  pool.wait(task);
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(task->done());
}

TEST(ThreadPool, NullTaskIsAlreadyDone) {
  ThreadPool pool(1);
  pool.wait(nullptr);  // must not hang or crash
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleDrainsEverything) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i) {
    pool.post(ThreadPool::package([&ran]() {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_EQ(pool.completed(), static_cast<std::uint64_t>(kJobs));
}

TEST(ThreadPool, ExecuteRunsOnCallingThread) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto task = ThreadPool::package([&ran_on]() {
    ran_on = std::this_thread::get_id();
  });
  pool.execute(task);
  EXPECT_TRUE(task->done());
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, DestructorCompletesOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.post(ThreadPool::package([&ran]() {
        ran.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // No wait: destructor must still let queued work finish (workers only
    // exit once the submission queue is empty) and release all keepalives.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ManyWaitersManyTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::vector<int> results(kTasks, 0);
  std::vector<ThreadPool::TaskRef> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(ThreadPool::package([&results, i]() { results[i] = i; }));
    pool.post(tasks.back());
  }
  // Wait in reverse order: most waits will be on already-done tasks.
  for (int i = kTasks - 1; i >= 0; --i) pool.wait(tasks[i]);
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(results[i], i);
}

// --------------------------------------------------------------------------
// sim::Executor

TEST(Executor, SerialModeRunsInline) {
  sim::Executor exec(1);
  EXPECT_FALSE(exec.parallel());
  EXPECT_EQ(exec.thread_count(), 1u);
  int value = 0;
  sim::Executor::TaskRef task = exec.run([&value]() { value = 7; });
  EXPECT_EQ(task, nullptr);  // already done, no pool involved
  EXPECT_EQ(value, 7);       // side effects visible immediately
  exec.wait(task);
  exec.wait_all();
}

TEST(Executor, ParallelModeRunsOnWorkers) {
  sim::Executor exec(4);
  EXPECT_TRUE(exec.parallel());
  EXPECT_EQ(exec.thread_count(), 4u);
  std::atomic<int> ran{0};
  std::vector<sim::Executor::TaskRef> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back(exec.run([&ran]() {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (const auto& task : tasks) exec.wait(task);
  EXPECT_EQ(ran.load(), 100);
}

TEST(Executor, WaitAllIsABarrier) {
  sim::Executor exec(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    exec.run([&ran]() { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  exec.wait_all();
  EXPECT_EQ(ran.load(), 64);
}

TEST(Executor, StrandSerializesInSubmissionOrder) {
  sim::Executor exec(8);
  sim::Executor::Strand strand(exec);
  // The strand items append to an unsynchronized vector: only the strand's
  // serialization guarantee makes this safe, and only FIFO order makes the
  // content deterministic. TSan validates the former, the EXPECT the latter.
  std::vector<int> order;
  constexpr int kItems = 300;
  sim::Executor::TaskRef last;
  for (int i = 0; i < kItems; ++i) {
    last = strand.run([&order, i]() { order.push_back(i); });
  }
  exec.wait(last);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, StrandsRunConcurrentlyWithEachOther) {
  sim::Executor exec(4);
  constexpr int kStrands = 8;
  constexpr int kItems = 50;
  std::vector<std::unique_ptr<sim::Executor::Strand>> strands;
  std::vector<std::vector<int>> orders(kStrands);
  std::vector<sim::Executor::TaskRef> lasts(kStrands);
  for (int s = 0; s < kStrands; ++s) {
    strands.push_back(std::make_unique<sim::Executor::Strand>(exec));
  }
  // Interleave submissions across strands, as the reduction does when
  // arrivals alternate between sibling subtrees.
  for (int i = 0; i < kItems; ++i) {
    for (int s = 0; s < kStrands; ++s) {
      lasts[s] = strands[s]->run([&orders, s, i]() {
        orders[s].push_back(i);
      });
    }
  }
  for (int s = 0; s < kStrands; ++s) exec.wait(lasts[s]);
  for (int s = 0; s < kStrands; ++s) {
    ASSERT_EQ(orders[s].size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i) EXPECT_EQ(orders[s][i], i);
  }
}

// Regression test for the strand-lifetime race: a waiter on the final item
// wakes the moment the item is marked done, which can be before the pump's
// trailing empty-check — destroying the Strand right after wait() must be
// safe. Many iterations to give the race a chance to fire.
TEST(Executor, StrandMayBeDestroyedRightAfterFinalWait) {
  sim::Executor exec(4);
  for (int iteration = 0; iteration < 500; ++iteration) {
    int value = 0;
    {
      sim::Executor::Strand strand(exec);
      sim::Executor::TaskRef last;
      for (int i = 0; i < 4; ++i) {
        last = strand.run([&value]() { ++value; });
      }
      exec.wait(last);
    }  // strand destroyed here, pump possibly still in its empty-check
    EXPECT_EQ(value, 4);
  }
  exec.wait_all();  // pumps must finish before `value` leaves scope
}

TEST(Executor, SerialStrandRunsInline) {
  sim::Executor exec(1);
  sim::Executor::Strand strand(exec);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(strand.run([&order, i]() { order.push_back(i); }), nullptr);
  }
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, DestructorWaitsForOutstandingWork) {
  std::atomic<int> ran{0};
  {
    sim::Executor exec(4);
    for (int i = 0; i < 32; ++i) {
      exec.run([&ran]() { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~Executor must drain before `ran` goes out of scope
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace petastat
