// Tests for the report writers and the CLI configuration parser.
#include <gtest/gtest.h>

#include "stat/cli_config.hpp"
#include "stat/report.hpp"
#include "stat/scenario.hpp"

namespace petastat::stat {
namespace {

struct ReportFixture : ::testing::Test {
  machine::JobConfig job{.num_tasks = 128};
  StatOptions options;
  ReportFixture() { options.topology = tbon::TopologySpec::balanced(2); }
};

TEST_F(ReportFixture, TextReportContainsPhasesAndClasses) {
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  const std::string text =
      render_text_report(result, scenario.app().frames(), /*include_tree=*/true);
  EXPECT_NE(text.find("status: OK"), std::string::npos);
  EXPECT_NE(text.find("startup:"), std::string::npos);
  EXPECT_NE(text.find("sampling:"), std::string::npos);
  EXPECT_NE(text.find("merge:"), std::string::npos);
  EXPECT_NE(text.find("equivalence classes"), std::string::npos);
  EXPECT_NE(text.find("do_SendOrStall"), std::string::npos);
  EXPECT_NE(text.find("3D prefix tree"), std::string::npos);
}

TEST_F(ReportFixture, CsvRowMatchesHeaderArity) {
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  const std::string header = csv_header();
  const std::string row = render_csv_row("atlas", result);
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
  EXPECT_EQ(row.substr(0, 6), "atlas,");
  EXPECT_NE(row.find(",OK,"), std::string::npos);
}

TEST_F(ReportFixture, JsonReportIsStructurallySound) {
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  const std::string json = render_json_report(result, scenario.app().frames());
  // Balanced braces/brackets and the expected keys.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"startup_s\""), std::string::npos);
}

TEST_F(ReportFixture, StreamingRunsRenderPerSampleRows) {
  options.stream_samples = 3;
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  ASSERT_EQ(result.stream_samples.size(), 3u);

  const std::string text =
      render_text_report(result, scenario.app().frames(), /*include_tree=*/false);
  EXPECT_NE(text.find("streaming: 3 round(s)"), std::string::npos);

  const std::string json = render_json_report(result, scenario.app().frames());
  EXPECT_NE(json.find("\"stream_samples\""), std::string::npos);
  EXPECT_NE(json.find("\"stream_rounds\": 3"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape("plain"), "plain");
}

// --------------------------------------------------------------------------
// CLI parsing

std::vector<std::string_view> args(std::initializer_list<std::string_view> a) {
  return {a};
}

TEST(Cli, DefaultsAreSane) {
  const auto config = parse_cli({});
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().machine.name, "atlas");
  EXPECT_EQ(config.value().job.num_tasks, 1024u);
  EXPECT_EQ(config.value().options.launcher, LauncherKind::kLaunchMon);
  EXPECT_EQ(config.value().format, OutputFormat::kText);
}

TEST(Cli, FullConfiguration) {
  const auto argv = args({"--machine", "bgl", "--tasks", "212992", "--mode",
                          "vn", "--topology", "bgl2deep", "--repr", "dense",
                          "--launcher", "ciod-unpatched", "--samples", "5",
                          "--fs", "lustre", "--sbrs", "--slim-binaries",
                          "--seed", "7", "--format", "json", "--print-tree",
                          "--dot", "/tmp/t.dot", "--fail-fraction", "0.01"});
  const auto config = parse_cli(argv);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  const CliConfig& c = config.value();
  EXPECT_EQ(c.machine.name, "bgl");
  EXPECT_EQ(c.job.num_tasks, 212992u);
  EXPECT_EQ(c.job.mode, machine::BglMode::kVirtualNode);
  EXPECT_TRUE(c.options.topology.bgl_rules);
  EXPECT_EQ(c.options.repr, TaskSetRepr::kDenseGlobal);
  EXPECT_EQ(c.options.launcher, LauncherKind::kCiodUnpatched);
  EXPECT_EQ(c.options.num_samples, 5u);
  EXPECT_EQ(c.options.shared_fs, SharedFsKind::kLustre);
  EXPECT_TRUE(c.options.use_sbrs);
  EXPECT_TRUE(c.options.slim_binaries);
  EXPECT_EQ(c.options.seed, 7u);
  EXPECT_EQ(c.format, OutputFormat::kJson);
  EXPECT_TRUE(c.print_tree);
  EXPECT_EQ(c.dot_path, "/tmp/t.dot");
  EXPECT_DOUBLE_EQ(c.options.daemon_failure_probability, 0.01);
}

TEST(Cli, BglDefaultsToCiodLauncher) {
  const auto config = parse_cli(args({"--machine", "bgl", "--tasks", "8192"}));
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().options.launcher, LauncherKind::kCiodPatched);
}

TEST(Cli, ThreadsImplyThreadedApp) {
  const auto config = parse_cli(args({"--threads", "4"}));
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().options.app, AppKind::kThreadedRing);
  EXPECT_EQ(config.value().job.threads_per_task, 4u);
}

TEST(Cli, RejectsUnknownFlagsAndValues) {
  EXPECT_FALSE(parse_cli(args({"--bogus"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--machine", "cray"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--tasks", "abc"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--tasks"})).is_ok());  // missing value
  EXPECT_FALSE(parse_cli(args({"--tasks", "0"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--mode", "virtual"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--fail-fraction", "1.5"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--format", "xml"})).is_ok());
}

TEST(Cli, FailureFractionOutOfRangeIsInvalidArgument) {
  const auto over = parse_cli(args({"--fail-fraction", "1.5"}));
  EXPECT_EQ(over.status().code(), StatusCode::kInvalidArgument);
  const auto under = parse_cli(args({"--fail-fraction", "-0.5"}));
  EXPECT_EQ(under.status().code(), StatusCode::kInvalidArgument);
  const auto word = parse_cli(args({"--fail-fraction", "half"}));
  EXPECT_EQ(word.status().code(), StatusCode::kInvalidArgument);
}

TEST(Cli, RecoveryFlags) {
  const auto config = parse_cli(args({"--fail-at", "0.5", "--ping-period",
                                      "0.125", "--app", "oomcascade"}));
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_DOUBLE_EQ(config.value().options.fail_at_seconds, 0.5);
  EXPECT_DOUBLE_EQ(config.value().options.ping_period_seconds, 0.125);
  EXPECT_EQ(config.value().options.app, AppKind::kOomCascade);

  // No kill scheduled unless the user asks for one.
  const auto defaults = parse_cli({});
  ASSERT_TRUE(defaults.is_ok());
  EXPECT_LT(defaults.value().options.fail_at_seconds, 0.0);

  EXPECT_FALSE(parse_cli(args({"--fail-at", "-1"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--fail-at", "soon"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--ping-period", "0"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--ping-period", "-0.25"})).is_ok());
}

TEST(Cli, FeShardsFlag) {
  const auto pinned = parse_cli(args({"--fe-shards", "4"}));
  ASSERT_TRUE(pinned.is_ok());
  EXPECT_EQ(pinned.value().options.fe_shards, 4u);
  EXPECT_FALSE(pinned.value().options.fe_shards_auto);

  const auto autos = parse_cli(args({"--fe-shards", "auto"}));
  ASSERT_TRUE(autos.is_ok());
  EXPECT_TRUE(autos.value().options.fe_shards_auto);

  // Zero shards is a typo, not a request for the default.
  EXPECT_FALSE(parse_cli(args({"--fe-shards", "0"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--fe-shards", "128"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--fe-shards"})).is_ok());
}

TEST(Cli, StreamFlagParsesCountAndOptionalInterval) {
  const auto bare = parse_cli(args({"--stream", "5"}));
  ASSERT_TRUE(bare.is_ok()) << bare.status().to_string();
  EXPECT_EQ(bare.value().options.stream_samples, 5u);

  const auto timed = parse_cli(args({"--stream", "5:0.25"}));
  ASSERT_TRUE(timed.is_ok()) << timed.status().to_string();
  EXPECT_EQ(timed.value().options.stream_samples, 5u);
  EXPECT_DOUBLE_EQ(timed.value().options.stream_interval_seconds, 0.25);

  // Classic batched pipeline unless the user opts into streaming.
  const auto defaults = parse_cli({});
  ASSERT_TRUE(defaults.is_ok());
  EXPECT_EQ(defaults.value().options.stream_samples, 0u);
  EXPECT_FALSE(defaults.value().options.stream_full_remerge);
}

TEST(Cli, StreamFlagRejectsMalformedRequests) {
  EXPECT_FALSE(parse_cli(args({"--stream"})).is_ok());  // missing value
  EXPECT_FALSE(parse_cli(args({"--stream", "0"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--stream", "abc"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--stream", "5:"})).is_ok());  // empty interval
  EXPECT_FALSE(parse_cli(args({"--stream", "5:fast"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--stream", "20000"})).is_ok());  // out of range
}

TEST(Cli, StreamFullRemergeAndEvolveFlags) {
  const auto remerge =
      parse_cli(args({"--stream", "4", "--stream-full-remerge"}));
  ASSERT_TRUE(remerge.is_ok());
  EXPECT_TRUE(remerge.value().options.stream_full_remerge);

  const auto drift = parse_cli(args({"--evolve", "drift"}));
  ASSERT_TRUE(drift.is_ok());
  EXPECT_EQ(drift.value().options.evolution, app::TraceEvolution::kDrift);

  const auto jitter = parse_cli(args({"--evolve", "jitter"}));
  ASSERT_TRUE(jitter.is_ok());
  EXPECT_EQ(jitter.value().options.evolution, app::TraceEvolution::kJitter);

  EXPECT_FALSE(parse_cli(args({"--evolve", "static"})).is_ok());
  EXPECT_FALSE(parse_cli(args({"--evolve"})).is_ok());
}

TEST(Cli, RejectsJobsThatDoNotFit) {
  const auto config = parse_cli(args({"--machine", "atlas", "--tasks", "50000"}));
  EXPECT_EQ(config.status().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// Failure injection (scenario-level)

TEST(FailureInjection, SurvivorsStillProduceClasses) {
  machine::JobConfig job;
  job.num_tasks = 1024;
  StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.daemon_failure_probability = 0.1;
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_GT(result.phases.failed_daemons, 0u);
  EXPECT_LT(result.phases.failed_daemons, 128u);
  // Covered tasks = tasks of surviving daemons.
  std::uint64_t covered = 0;
  for (const auto& cls : result.classes) covered += cls.size();
  const std::uint64_t expected =
      1024u - static_cast<std::uint64_t>(result.phases.failed_daemons) * 8;
  EXPECT_EQ(covered, expected);
}

TEST(FailureInjection, TotalLossIsReported) {
  machine::JobConfig job;
  job.num_tasks = 64;
  StatOptions options;
  options.daemon_failure_probability = 1.0;
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.phases.failed_daemons, 8u);
}

// p = 1.0 takes the deterministic everyone-dies path: no RNG draw, so the
// verdict cannot depend on the seed.
TEST(FailureInjection, CertainTotalLossIsSeedIndependent) {
  machine::JobConfig job;
  job.num_tasks = 64;  // 8 Atlas daemons
  for (const std::uint32_t seed : {1u, 999u}) {
    StatOptions options;
    options.daemon_failure_probability = 1.0;
    options.seed = seed;
    StatScenario scenario(machine::atlas(), job, options);
    const auto result = scenario.run();
    EXPECT_EQ(result.status.code(), StatusCode::kUnavailable) << "seed " << seed;
    EXPECT_EQ(result.phases.failed_daemons, 8u) << "seed " << seed;
    EXPECT_EQ(result.dead_daemons.size(), 8u) << "seed " << seed;
  }
}

TEST(FailureInjection, OutOfRangeProbabilityIsRejected) {
  machine::JobConfig job;
  job.num_tasks = 64;
  for (const double p : {1.5, -0.1}) {
    StatOptions options;
    options.daemon_failure_probability = p;
    StatScenario scenario(machine::atlas(), job, options);
    EXPECT_EQ(scenario.run().status.code(), StatusCode::kInvalidArgument)
        << "p = " << p;
  }
}

TEST(FailureInjection, NonPositivePingPeriodIsRejected) {
  machine::JobConfig job;
  job.num_tasks = 64;
  StatOptions options;
  options.ping_period_seconds = 0.0;
  StatScenario scenario(machine::atlas(), job, options);
  EXPECT_EQ(scenario.run().status.code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjection, ZeroProbabilityIsNoop) {
  machine::JobConfig job;
  job.num_tasks = 64;
  StatOptions options;
  options.daemon_failure_probability = 0.0;
  StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.phases.failed_daemons, 0u);
}

}  // namespace
}  // namespace petastat::stat
