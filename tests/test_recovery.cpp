// Mid-merge failure recovery: the TriggerManager's lock-free event queue,
// the HealthMonitor's ping-sweep detection, Reduction::recover's subtree
// re-merge, the survivor-aware topology overloads, the scenario-level
// orchestration, and the planner's recovery pricing.
//
// The central contract under test: because the prefix-tree merge is
// canonical, a run that loses a comm process mid-merge and recovers must
// produce results *bit-identical* to a run without the failure.
#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "machine/cost_model.hpp"
#include "plan/predictor.hpp"
#include "stat/scenario.hpp"
#include "tbon/health.hpp"
#include "tbon/reduction.hpp"
#include "tbon/topology.hpp"
#include "tbon/trigger.hpp"

namespace petastat {
namespace {

machine::DaemonLayout layout_of(const machine::MachineConfig& m,
                                std::uint32_t tasks,
                                machine::BglMode mode = machine::BglMode::kCoprocessor) {
  machine::JobConfig job;
  job.num_tasks = tasks;
  job.mode = mode;
  return machine::layout_daemons(m, job).value();
}

// --------------------------------------------------------------------------
// TriggerManager: the lock-free failure-event queue.

TEST(TriggerManager, DispatchRunsActionsInPostOrder) {
  tbon::TriggerManager triggers;
  std::vector<std::uint32_t> seen;
  triggers.register_action(
      [&seen](const tbon::FailureEvent& e) { seen.push_back(e.proc); });
  triggers.post({7, 100, 200});
  triggers.post({3, 101, 201});
  triggers.post({9, 102, 202});
  EXPECT_EQ(triggers.posted(), 3u);
  EXPECT_EQ(triggers.dispatch(), 3u);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{7, 3, 9}));
  EXPECT_EQ(triggers.dispatched(), 3u);
  // Nothing left.
  EXPECT_EQ(triggers.dispatch(), 0u);
}

TEST(TriggerManager, EveryActionSeesEveryEvent) {
  tbon::TriggerManager triggers;
  std::uint32_t first = 0, second = 0;
  triggers.register_action([&first](const tbon::FailureEvent&) { ++first; });
  triggers.register_action([&second](const tbon::FailureEvent&) { ++second; });
  triggers.post({1, 0, 0});
  triggers.post({2, 0, 0});
  triggers.dispatch();
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(second, 2u);
}

TEST(TriggerManager, ConcurrentProducersLoseNoEvents) {
  // The CAS push must hold up under contention (run under TSan in CI).
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kPerThread = 512;
  tbon::TriggerManager triggers;
  std::vector<std::uint32_t> counts(kThreads, 0);
  triggers.register_action([&counts](const tbon::FailureEvent& e) {
    ++counts[e.proc];
  });
  std::vector<std::thread> producers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&triggers, t]() {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        triggers.post({t, i, i});
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(triggers.posted(), kThreads * kPerThread);
  EXPECT_EQ(triggers.dispatch(), kThreads * kPerThread);
  for (const std::uint32_t c : counts) EXPECT_EQ(c, kPerThread);
}

// --------------------------------------------------------------------------
// HealthMonitor: ping-sweep detection latency.

TEST(HealthMonitor, DetectsADeathWithinOnePeriodPlusRoundTrip) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::balanced(2)).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));

  tbon::TriggerManager triggers;
  std::vector<tbon::FailureEvent> events;
  triggers.register_action(
      [&events](const tbon::FailureEvent& e) { events.push_back(e); });

  const SimTime period = seconds(0.1);
  tbon::HealthMonitor monitor(simulator, network, topo, triggers, period);
  monitor.start();

  const std::uint32_t victim = tbon::default_victim(topo);
  const SimTime dead_at = seconds(0.15);
  simulator.schedule_at(dead_at, [&monitor, victim, &simulator]() {
    monitor.mark_dead(victim, simulator.now());
  });
  simulator.schedule_at(seconds(1.0), [&monitor]() { monitor.stop(); });
  simulator.run();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].proc, victim);
  EXPECT_EQ(events[0].dead_at, dead_at);
  EXPECT_GT(events[0].detected_at, dead_at);
  // Death at 0.15 s lands mid-interval; the sweep starting at 0.2 s misses
  // the echo, so the latency is under a period plus the sweep's round trip
  // (tiny on this tree).
  EXPECT_LE(events[0].detected_at - dead_at, period + period / 2);
  EXPECT_EQ(monitor.detections(), 1u);
  EXPECT_GE(monitor.sweeps_completed(), 2u);
  // A reported corpse is not re-reported by later sweeps.
  EXPECT_EQ(events.size(), monitor.detections());
}

TEST(HealthMonitor, StopSilencesTheSweep) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 64);
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::flat()).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  tbon::TriggerManager triggers;
  tbon::HealthMonitor monitor(simulator, network, topo, triggers, seconds(0.05));
  monitor.start();
  simulator.schedule_at(seconds(0.12), [&monitor]() { monitor.stop(); });
  simulator.run();
  const std::uint32_t sweeps = monitor.sweeps_completed();
  EXPECT_GE(sweeps, 1u);
  EXPECT_LE(sweeps, 3u);
  // The queue drained: no sweep survives stop().
  EXPECT_LE(simulator.now(), seconds(0.2));
}

// --------------------------------------------------------------------------
// Reduction recovery with a toy payload.

struct SumPayload {
  std::uint64_t sum = 0;
  std::uint32_t contributions = 0;
};

tbon::ReduceOps<SumPayload> sum_ops() {
  tbon::ReduceOps<SumPayload> ops;
  ops.merge_cpu = [](const SumPayload&) { return SimTime{100}; };
  ops.merge_into = [](SumPayload& acc, SumPayload&& child) {
    acc.sum += child.sum;
    acc.contributions += child.contributions;
  };
  ops.wire_bytes = [](const SumPayload&) { return std::uint64_t{64}; };
  ops.codec_cost = [](std::uint64_t) { return SimTime{50 * kMicrosecond}; };
  return ops;
}

std::vector<SumPayload> numbered_leaves(std::uint32_t daemons,
                                        std::uint64_t& expected) {
  std::vector<SumPayload> leaves(daemons);
  expected = 0;
  for (std::uint32_t d = 0; d < daemons; ++d) {
    leaves[d] = {static_cast<std::uint64_t>(d) * d + 1, 1};
    expected += leaves[d].sum;
  }
  return leaves;
}

TEST(ReductionRecovery, KilledInternalProcsSubtreeIsRemergedExactly) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::balanced(2)).value();
  const std::uint32_t victim = tbon::default_victim(topo);
  ASSERT_FALSE(topo.procs[victim].is_leaf());
  ASSERT_GE(topo.procs[victim].parent, 0);
  std::uint32_t victim_leaves = 0;
  for (const std::uint32_t c : topo.procs[victim].children) {
    if (topo.procs[c].is_leaf()) ++victim_leaves;
  }
  ASSERT_GT(victim_leaves, 0u);

  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  tbon::Reduction<SumPayload> reduction(simulator, network, topo, sum_ops());
  reduction.set_retain_payloads(true);

  std::uint64_t expected = 0;
  auto leaves = numbered_leaves(layout.num_daemons, expected);

  // Kill before any payload can reach the victim (leaf packing alone takes
  // 50 us), recover a while later — the orphan shard re-merges through the
  // victim's siblings.
  std::optional<tbon::RecoveryReport> report;
  simulator.schedule_at(SimTime{10},
                        [&reduction, victim]() { reduction.mark_dead(victim); });
  simulator.schedule_at(seconds(0.01), [&reduction, victim, &report]() {
    report = reduction.recover(victim);
  });

  std::optional<tbon::ReduceResult<SumPayload>> result;
  reduction.start(std::move(leaves), [&result](tbon::ReduceResult<SumPayload> r) {
    result = std::move(r);
  });
  simulator.run();

  ASSERT_TRUE(result.has_value()) << "merge stalled";
  EXPECT_EQ(result->payload.sum, expected);
  EXPECT_EQ(result->payload.contributions, layout.num_daemons);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->acted);
  EXPECT_EQ(report->orphan_daemons, victim_leaves);
  EXPECT_EQ(report->lost_daemons, 0u);
  EXPECT_GE(report->adopters, 1u);
}

TEST(ReductionRecovery, DeathAfterForwardingIsAFreeNoop) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 64);
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::balanced(2)).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  tbon::Reduction<SumPayload> reduction(simulator, network, topo, sum_ops());
  reduction.set_retain_payloads(true);

  std::uint64_t expected = 0;
  auto leaves = numbered_leaves(layout.num_daemons, expected);
  std::optional<tbon::ReduceResult<SumPayload>> result;
  reduction.start(std::move(leaves), [&result](tbon::ReduceResult<SumPayload> r) {
    result = std::move(r);
  });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload.sum, expected);

  const std::uint32_t victim = tbon::default_victim(topo);
  reduction.mark_dead(victim);
  const tbon::RecoveryReport report = reduction.recover(victim);
  EXPECT_FALSE(report.acted);
  EXPECT_EQ(report.orphan_daemons, 0u);
}

TEST(ReductionRecovery, WholeShardOfDeadDaemonsStillCompletes) {
  // Reducer 1's entire shard (daemons 8..15) is dead before the merge: its
  // reducer contributes nothing and the front end must not wait for it.
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons
  const auto topo =
      tbon::build_topology(m, layout,
                           tbon::TopologySpec::flat().with_shards(4)).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  tbon::Reduction<SumPayload> reduction(simulator, network, topo, sum_ops());

  std::vector<bool> dead(layout.num_daemons, false);
  for (std::uint32_t d = 8; d < 16; ++d) dead[d] = true;
  reduction.set_dead_daemons(dead);

  std::uint64_t all = 0;
  auto leaves = numbered_leaves(layout.num_daemons, all);
  std::uint64_t expected = 0;
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    if (!dead[d]) expected += leaves[d].sum;
  }

  std::optional<tbon::ReduceResult<SumPayload>> result;
  reduction.start(std::move(leaves), [&result](tbon::ReduceResult<SumPayload> r) {
    result = std::move(r);
  });
  simulator.run();
  ASSERT_TRUE(result.has_value()) << "merge stalled on the dead shard";
  EXPECT_EQ(result->payload.sum, expected);
  EXPECT_EQ(result->payload.contributions, 24u);
}

// --------------------------------------------------------------------------
// Survivor-aware topology overloads.

TEST(TopologyMasks, ViabilityAndShardSlicesCountSurvivorsOnly) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons x 8 tasks
  std::vector<bool> dead(layout.num_daemons, false);
  for (std::uint32_t d = 8; d < 16; ++d) dead[d] = true;

  const auto flat =
      tbon::build_topology(m, layout, tbon::TopologySpec::flat()).value();
  // 24 survivors dial in; the full tree would need 32.
  EXPECT_TRUE(tbon::connection_viability(flat, 24, dead).is_ok());
  EXPECT_EQ(tbon::connection_viability(flat, 23, dead).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(tbon::connection_viability(flat, 24).code(),
            StatusCode::kResourceExhausted);
  // An empty mask means everyone is alive.
  EXPECT_TRUE(tbon::connection_viability(flat, 32, {}).is_ok());

  const auto sharded =
      tbon::build_topology(m, layout,
                           tbon::TopologySpec::flat().with_shards(4)).value();
  const auto slices = tbon::shard_task_counts(sharded, layout, dead);
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(slices[1], 0u);  // the dead shard
  EXPECT_EQ(std::accumulate(slices.begin(), slices.end(), std::uint64_t{0}),
            192u);  // 24 surviving daemons x 8 tasks
  EXPECT_EQ(tbon::largest_shard_task_count(sharded, layout, dead), 64u);
  // Masked reducers pass viability on their surviving fan-in.
  EXPECT_TRUE(tbon::connection_viability(sharded, 8, dead).is_ok());
}

TEST(TopologyMasks, DefaultVictimPicksAMidMergeProc) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons

  const auto sharded =
      tbon::build_topology(m, layout,
                           tbon::TopologySpec::flat().with_shards(4)).value();
  EXPECT_EQ(tbon::default_victim(sharded), sharded.reducers[2]);

  const auto deep =
      tbon::build_topology(m, layout, tbon::TopologySpec::balanced(2)).value();
  const std::uint32_t victim = tbon::default_victim(deep);
  EXPECT_FALSE(deep.procs[victim].is_leaf());
  EXPECT_GE(deep.procs[victim].parent, 0);

  const auto flat =
      tbon::build_topology(m, layout, tbon::TopologySpec::flat()).value();
  EXPECT_EQ(tbon::default_victim(flat), flat.leaf_of_daemon[16]);
}

// --------------------------------------------------------------------------
// Scenario-level recovery: kill mid-merge, results bit-identical.

void expect_same_product(const stat::StatRunResult& a,
                         const stat::StatRunResult& b) {
  EXPECT_TRUE(a.tree_2d == b.tree_2d);
  EXPECT_TRUE(a.tree_3d == b.tree_3d);
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(a.classes[i].path, b.classes[i].path);
    EXPECT_TRUE(a.classes[i].tasks == b.classes[i].tasks);
  }
}

TEST(ScenarioRecovery, MidMergeReducerKillIsBitIdenticalToNoFailure) {
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = 16;
  options.repr = stat::TaskSetRepr::kHierarchical;

  stat::StatScenario baseline(machine::atlas(), job, options);
  const stat::StatRunResult no_failure = baseline.run();
  ASSERT_TRUE(no_failure.status.is_ok()) << no_failure.status.to_string();
  EXPECT_EQ(no_failure.phases.killed_procs, 0u);
  EXPECT_EQ(no_failure.phases.health_sweeps, 0u);
  EXPECT_EQ(no_failure.phases.failure_detect_latency, 0u);

  // Kill the middle reducer the moment the merge starts (guaranteed before
  // it forwards anything), detect by ping sweep, recover, finish.
  options.fail_at_seconds = 0.0;
  options.ping_period_seconds = 0.05;
  stat::StatScenario killed(machine::atlas(), job, options);
  const stat::StatRunResult recovered = killed.run();
  ASSERT_TRUE(recovered.status.is_ok()) << recovered.status.to_string();

  const stat::PhaseBreakdown& p = recovered.phases;
  EXPECT_EQ(p.killed_procs, 1u);
  // 32 daemons over 16 shards: the lost reducer orphans exactly 2 daemons.
  EXPECT_EQ(p.orphaned_daemons, 2u);
  EXPECT_EQ(p.lost_daemons, 0u);
  EXPECT_GE(p.health_sweeps, 1u);
  EXPECT_GT(p.failure_detect_latency, 0u);
  EXPECT_LE(p.failure_detect_latency, seconds(2 * 0.05));
  EXPECT_GT(p.recovery_remerge_time, 0u);
  // The recovered merge costs more wall-clock than the clean one.
  EXPECT_GT(p.merge_time, no_failure.phases.merge_time);

  // The product is exactly the no-failure product.
  expect_same_product(no_failure, recovered);
}

TEST(ScenarioRecovery, UnshardedInternalProcKillRecoversToo) {
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.repr = stat::TaskSetRepr::kHierarchical;

  stat::StatScenario baseline(machine::atlas(), job, options);
  const stat::StatRunResult no_failure = baseline.run();
  ASSERT_TRUE(no_failure.status.is_ok());

  options.fail_at_seconds = 0.0;
  options.ping_period_seconds = 0.05;
  stat::StatScenario killed(machine::atlas(), job, options);
  const stat::StatRunResult recovered = killed.run();
  ASSERT_TRUE(recovered.status.is_ok()) << recovered.status.to_string();
  EXPECT_EQ(recovered.phases.killed_procs, 1u);
  EXPECT_GT(recovered.phases.orphaned_daemons, 0u);
  expect_same_product(no_failure, recovered);
}

TEST(ScenarioRecovery, RemapIsPricedOnSurvivingTasksOnly) {
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.daemon_failure_probability = 0.2;

  stat::StatScenario scenario(machine::atlas(), job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  ASSERT_FALSE(result.dead_daemons.empty()) << "seed produced no casualties";

  const auto costs = machine::default_cost_model(machine::atlas());
  const std::uint64_t surviving =
      256u - 8u * static_cast<std::uint64_t>(result.dead_daemons.size());
  EXPECT_EQ(result.phases.remap_time,
            machine::frontend_remap_cost(costs.merge, surviving));
  EXPECT_LT(result.phases.remap_time,
            machine::frontend_remap_cost(costs.merge, 256));
}

TEST(ScenarioRecovery, RecoveryFieldsStayZeroWhenUnarmed) {
  machine::JobConfig job;
  job.num_tasks = 64;
  stat::StatOptions options;
  stat::StatScenario scenario(machine::atlas(), job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.phases.killed_procs, 0u);
  EXPECT_EQ(result.phases.orphaned_daemons, 0u);
  EXPECT_EQ(result.phases.lost_daemons, 0u);
  EXPECT_EQ(result.phases.health_sweeps, 0u);
  EXPECT_EQ(result.phases.failure_detect_latency, 0u);
  EXPECT_EQ(result.phases.recovery_remerge_time, 0u);
  EXPECT_TRUE(result.dead_daemons.empty());
}

// --------------------------------------------------------------------------
// The acceptance scenario: petascale, 2,048 daemons, K = 64, reducer killed
// mid-merge, serial and 8-thread runs bit-identical to the no-failure run.

TEST(ScenarioRecovery, PetascaleReducerKillAcceptance) {
  machine::JobConfig job;
  job.num_tasks = 131072;  // CO mode -> 2,048 daemons
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = 64;
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.num_samples = 3;  // keep the walltime civil

  const auto run_with = [&](double fail_at, std::uint32_t threads) {
    stat::StatOptions o = options;
    o.fail_at_seconds = fail_at;
    o.ping_period_seconds = 0.1;
    o.exec_threads = threads;
    stat::StatScenario scenario(machine::petascale(), job, o);
    return scenario.run();
  };

  const stat::StatRunResult no_failure = run_with(-1.0, 1);
  ASSERT_TRUE(no_failure.status.is_ok()) << no_failure.status.to_string();
  ASSERT_EQ(no_failure.layout.num_daemons, 2048u);

  const stat::StatRunResult serial = run_with(0.0, 1);
  ASSERT_TRUE(serial.status.is_ok()) << serial.status.to_string();
  EXPECT_EQ(serial.phases.killed_procs, 1u);
  // 2,048 daemons over 64 shards: the lost reducer orphans exactly 32.
  EXPECT_EQ(serial.phases.orphaned_daemons, 32u);
  EXPECT_EQ(serial.phases.lost_daemons, 0u);
  EXPECT_GT(serial.phases.failure_detect_latency, 0u);
  EXPECT_LE(serial.phases.failure_detect_latency, seconds(2 * 0.1));
  expect_same_product(no_failure, serial);

  const stat::StatRunResult parallel = run_with(0.0, 8);
  ASSERT_TRUE(parallel.status.is_ok()) << parallel.status.to_string();
  expect_same_product(serial, parallel);
  EXPECT_EQ(serial.phases.merge_time, parallel.phases.merge_time);
  EXPECT_EQ(serial.phases.failure_detect_latency,
            parallel.phases.failure_detect_latency);
  EXPECT_EQ(serial.phases.recovery_remerge_time,
            parallel.phases.recovery_remerge_time);
  EXPECT_EQ(serial.phases.merge_bytes, parallel.phases.merge_bytes);
}

// --------------------------------------------------------------------------
// Mid-stream failure recovery: a kill during a --stream run must invalidate
// every ancestor cache the re-parenting touches, so post-kill rounds equal a
// from-scratch merge of the survivors (the --stream-full-remerge twin).

stat::StatOptions streaming_options() {
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.app = stat::AppKind::kImbalance;
  options.evolution = app::TraceEvolution::kDrift;
  options.stream_samples = 6;
  // Fixed cadence pins round boundaries to multiples of 0.1 s in every mode
  // (a round takes ~0.065 s), so a --fail-at lands at the same boundary with
  // and without the delta caches.
  options.stream_interval_seconds = 0.1;
  return options;
}

TEST(ScenarioRecovery, MidStreamInternalKillRecoversWithNoLoss) {
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options = streaming_options();

  stat::StatScenario baseline(machine::atlas(), job, options);
  const stat::StatRunResult no_kill = baseline.run();
  ASSERT_TRUE(no_kill.status.is_ok()) << no_kill.status.to_string();
  ASSERT_EQ(no_kill.stream_samples.size(), 6u);

  // Kill the internal comm proc at the first round boundary past 0.15 s —
  // round 2's start, after rounds 0..1 primed its subtree's caches — detect
  // by ping burst between rounds, recover at the next boundary.
  options.fail_at_seconds = 0.15;
  options.ping_period_seconds = 0.05;
  stat::StatScenario killed_scenario(machine::atlas(), job, options);
  const stat::StatRunResult killed = killed_scenario.run();
  ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();
  ASSERT_EQ(killed.stream_samples.size(), 6u);
  EXPECT_EQ(killed.phases.killed_procs, 1u);
  EXPECT_GT(killed.phases.failure_detect_latency, 0u);
  EXPECT_LE(killed.phases.failure_detect_latency, seconds(0.5));
  EXPECT_GT(killed.phases.orphaned_daemons, 0u);
  EXPECT_EQ(killed.phases.lost_daemons, 0u);

  // The kill actually landed mid-stream: the rounds before it ran from the
  // caches exactly like the clean run, and the recovery round shows the
  // re-parented subtree arriving with cold caches (every proc re-merges,
  // nothing answers from cache, the delta traffic spikes past the clean
  // run's band-only rounds).
  EXPECT_EQ(killed.stream_samples[1].merge_bytes,
            no_kill.stream_samples[1].merge_bytes);
  EXPECT_EQ(killed.stream_samples[1].cached_procs,
            no_kill.stream_samples[1].cached_procs);
  bool recovery_round_seen = false;
  for (std::size_t round = 1; round < killed.stream_samples.size(); ++round) {
    const stat::StreamSampleStats& r = killed.stream_samples[round];
    if (r.cached_procs == 0 &&
        r.merge_bytes > 2 * no_kill.stream_samples[round].merge_bytes) {
      recovery_round_seen = true;
    }
  }
  EXPECT_TRUE(recovery_round_seen);
  // After the recovery round the survivors' caches are warm again.
  EXPECT_GT(killed.stream_samples.back().cached_procs, 0u);

  // Post-kill rounds equal a from-scratch survivor merge: the twin run with
  // the caches disabled (and the same kill) produces the identical product —
  // including the in-flight payloads the victim took with it.
  options.stream_full_remerge = true;
  stat::StatScenario remerge_scenario(machine::atlas(), job, options);
  const stat::StatRunResult remerge = remerge_scenario.run();
  ASSERT_TRUE(remerge.status.is_ok()) << remerge.status.to_string();
  EXPECT_EQ(remerge.phases.killed_procs, 1u);
  expect_same_product(killed, remerge);
}

TEST(ScenarioRecovery, MidStreamLeafDeathMatchesFullRemergeSurvivors) {
  // Flat tree: the victim is a daemon's own leaf proc, so its later samples
  // are unrecoverable. The stream must keep completing rounds, and the
  // product must still equal the cache-free twin with the identical kill.
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options = streaming_options();
  options.topology = tbon::TopologySpec::flat();
  options.fail_at_seconds = 0.15;
  options.ping_period_seconds = 0.05;

  stat::StatScenario killed_scenario(machine::atlas(), job, options);
  const stat::StatRunResult killed = killed_scenario.run();
  ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();
  ASSERT_EQ(killed.stream_samples.size(), 6u);
  EXPECT_EQ(killed.phases.killed_procs, 1u);
  EXPECT_GT(killed.phases.failure_detect_latency, 0u);
  EXPECT_EQ(killed.phases.lost_daemons, 1u);

  options.stream_full_remerge = true;
  stat::StatScenario remerge_scenario(machine::atlas(), job, options);
  const stat::StatRunResult remerge = remerge_scenario.run();
  ASSERT_TRUE(remerge.status.is_ok()) << remerge.status.to_string();
  EXPECT_EQ(remerge.phases.lost_daemons, 1u);
  expect_same_product(killed, remerge);
}

// --------------------------------------------------------------------------
// The OOM-cascade workload end to end.

TEST(ScenarioRecovery, OomCascadeKillsTheVictimsDaemonAndCascades) {
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.app = stat::AppKind::kOomCascade;

  stat::StatScenario scenario(machine::atlas(), job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();

  // Exactly the victim rank's daemon is gone (8 tasks with it).
  EXPECT_EQ(result.phases.failed_daemons, 1u);
  ASSERT_EQ(result.dead_daemons.size(), 1u);
  stat::TaskSet covered;
  bool victim_rank_seen = false;
  bool retransmit_seen = false;
  const app::FrameTable& frames = scenario.app().frames();
  for (const auto& cls : result.classes) {
    covered.union_with(cls.tasks);
    if (cls.tasks.contains(128)) victim_rank_seen = true;  // the victim rank
    for (const FrameId f : cls.path) {
      if (frames.name(f) == "BGLML_retransmit") retransmit_seen = true;
    }
  }
  // 256 - the dead daemon's 8 ranks. (A cascading neighbour may sit in two
  // classes — spiral and retransmit — so class sizes can sum past this.)
  EXPECT_EQ(covered.count(), 248u);
  EXPECT_FALSE(victim_rank_seen);
  // The cascade is visible: neighbours flipped into the retransmit path.
  EXPECT_TRUE(retransmit_seen);
}

TEST(ScenarioRecovery, OomCascadePlusMidMergeKillStillMatches) {
  // The full pathology: the victim daemon dies pre-sampling AND a reducer
  // dies mid-merge. Survivor classes still come out bit-identical.
  machine::JobConfig job;
  job.num_tasks = 256;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = 4;
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.app = stat::AppKind::kOomCascade;

  stat::StatScenario baseline(machine::atlas(), job, options);
  const stat::StatRunResult clean = baseline.run();
  ASSERT_TRUE(clean.status.is_ok());

  options.fail_at_seconds = 0.0;
  options.ping_period_seconds = 0.05;
  stat::StatScenario killed(machine::atlas(), job, options);
  const stat::StatRunResult recovered = killed.run();
  ASSERT_TRUE(recovered.status.is_ok()) << recovered.status.to_string();
  EXPECT_EQ(recovered.phases.killed_procs, 1u);
  EXPECT_EQ(recovered.dead_daemons, clean.dead_daemons);
  expect_same_product(clean, recovered);
}

// --------------------------------------------------------------------------
// Planner: recovery pricing through the shared cost formulas.

TEST(PlannerRecovery, PredictionScalesWithTheLostSubtreeNotTheJob) {
  machine::JobConfig job;
  job.num_tasks = 1024;  // 128 daemons
  stat::StatOptions options;
  options.repr = stat::TaskSetRepr::kHierarchical;
  auto predictor = plan::PhasePredictor::create(
      machine::atlas(), job, options,
      machine::default_cost_model(machine::atlas()));
  ASSERT_TRUE(predictor.is_ok()) << predictor.status().to_string();

  const SimTime ping = seconds(0.25);
  const auto k16 = predictor.value().predict_recovery(
      tbon::TopologySpec::flat().with_shards(16), ping);
  ASSERT_TRUE(k16.is_ok()) << k16.status().to_string();
  EXPECT_EQ(k16.value().orphan_leaves, 8u);  // 128 daemons / 16 shards
  EXPECT_GT(k16.value().detection, ping / 2);
  EXPECT_LT(k16.value().detection, ping);
  EXPECT_GT(k16.value().remerge, 0u);

  const auto k4 = predictor.value().predict_recovery(
      tbon::TopologySpec::flat().with_shards(4), ping);
  ASSERT_TRUE(k4.is_ok());
  EXPECT_EQ(k4.value().orphan_leaves, 32u);
  // Losing a quarter of the tree costs more to re-merge than a sixteenth.
  EXPECT_GT(k4.value().remerge, k16.value().remerge);
  EXPECT_GT(k4.value().total(), k4.value().detection);
}

TEST(PlannerRecovery, DetectionLatencyTracksThePingPeriod) {
  machine::JobConfig job;
  job.num_tasks = 1024;
  stat::StatOptions options;
  auto predictor = plan::PhasePredictor::create(
      machine::atlas(), job, options,
      machine::default_cost_model(machine::atlas()));
  ASSERT_TRUE(predictor.is_ok());
  const auto spec = tbon::TopologySpec::flat().with_shards(8);
  const auto slow = predictor.value().predict_recovery(spec, seconds(1.0));
  const auto fast = predictor.value().predict_recovery(spec, seconds(0.1));
  ASSERT_TRUE(slow.is_ok());
  ASSERT_TRUE(fast.is_ok());
  EXPECT_GT(slow.value().detection, fast.value().detection);
  // The remerge half is ping-independent.
  EXPECT_EQ(slow.value().remerge, fast.value().remerge);
}

}  // namespace
}  // namespace petastat
