// Tests for the leveled, simulation-time-stamped logger.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.hpp"

namespace petastat {
namespace {

/// Captures logger output through a tmpfile.
class LogCapture {
 public:
  LogCapture() : file_(std::tmpfile()) {
    Logger::global().set_sink(file_);
  }
  ~LogCapture() {
    Logger::global().set_sink(stderr);
    Logger::global().set_level(LogLevel::kWarn);
    if (file_ != nullptr) std::fclose(file_);
  }

  [[nodiscard]] std::string contents() const {
    std::fflush(file_);
    std::rewind(file_);
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, file_)) > 0) {
      out.append(buf, n);
    }
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(Logger, RespectsLevelThreshold) {
  LogCapture capture;
  Logger::global().set_level(LogLevel::kWarn);
  log_debug(kSecond, "tbon", "should be suppressed");
  log_info(kSecond, "tbon", "also suppressed");
  log_warn(kSecond, "tbon", "visible warning");
  log_error(kSecond, "tbon", "visible error");
  const std::string out = capture.contents();
  EXPECT_EQ(out.find("suppressed"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST(Logger, FormatsSimTimeAndComponent) {
  LogCapture capture;
  Logger::global().set_level(LogLevel::kDebug);
  log_info(1'500'000'000ull, "sbrs", "relocating");
  const std::string out = capture.contents();
  EXPECT_NE(out.find("1.500000"), std::string::npos);
  EXPECT_NE(out.find("sbrs"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("relocating"), std::string::npos);
}

TEST(Logger, OffLevelSilencesEverything) {
  LogCapture capture;
  Logger::global().set_level(LogLevel::kOff);
  log_error(0, "x", "even errors");
  EXPECT_TRUE(capture.contents().empty());
}

}  // namespace
}  // namespace petastat
