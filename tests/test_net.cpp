// Unit tests for the switch-graph network model: route resolution, per-link
// serialization, cut-through timing, async delivery, and the machine-preset
// invariants (symmetry, reachability, preserved NIC rates).
#include <gtest/gtest.h>

#include <set>

#include "machine/machine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"

namespace petastat::net {
namespace {

using machine::NodeRole;

/// One switch, every tier attached at 1 GB/s with 500 ns access latency and
/// no per-message overhead: a transfer costs serialization + 2 access hops.
SwitchGraph flat_graph() {
  SwitchGraph g;
  const std::uint32_t core = g.add_switch("core");
  const LinkParams access{500, 1.0e9};
  g.set_attach_rule(NodeRole::kFrontEnd, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kLogin, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kIo, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kCompute, {core, 1, 0, access});
  g.set_per_message_overhead(0);
  g.seal();
  return g;
}

/// Two compute hosts behind one leaf, front end on the core, joined by a
/// single 1 GB/s trunk — the minimal shared-uplink contention shape.
SwitchGraph shared_uplink_graph() {
  SwitchGraph g;
  const std::uint32_t leaf = g.add_switch("leaf");
  const std::uint32_t core = g.add_switch("core");
  g.add_edge(leaf, core, {1000, 1.0e9});
  const LinkParams fast_access{500, 10.0e9};
  g.set_attach_rule(NodeRole::kFrontEnd, {core, 1, 0, fast_access});
  g.set_attach_rule(NodeRole::kLogin, {core, 1, 0, fast_access});
  g.set_attach_rule(NodeRole::kIo, {core, 1, 0, fast_access});
  g.set_attach_rule(NodeRole::kCompute, {leaf, 1, 0, fast_access});
  g.set_per_message_overhead(0);
  g.seal();
  return g;
}

TEST(Network, SingleTransferTiming) {
  sim::Simulator s;
  Network net(s, flat_graph());
  // 1 MB at 1 GB/s = 1 ms serialization, cut through two 500 ns access hops.
  const SimTime done = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                    machine::make_node(NodeRole::kCompute, 1),
                                    1'000'000);
  EXPECT_EQ(done, 1'000'000ull + 1'000ull);
  EXPECT_EQ(net.total_bytes_moved(), 1'000'000ull);
  EXPECT_EQ(net.total_messages(), 1ull);
}

TEST(Network, SelfTransferOccupiesAccessTwice) {
  sim::Simulator s;
  Network net(s, flat_graph());
  // tx + rx on the same half-duplex access device: 2x serialization. The rx
  // pass queues behind the tx pass, so only the final hop latency surfaces.
  const NodeId host = machine::make_node(NodeRole::kCompute, 0);
  const SimTime done = net.transfer(host, host, 1'000'000);
  EXPECT_EQ(done, 2'000'000ull + 500ull);
}

TEST(Network, SenderAccessLinkSerializesOutgoingTransfers) {
  sim::Simulator s;
  Network net(s, flat_graph());
  const NodeId src = machine::make_node(NodeRole::kCompute, 0);
  const SimTime d1 = net.transfer(src, machine::make_node(NodeRole::kCompute, 1),
                                  1'000'000);
  const SimTime d2 = net.transfer(src, machine::make_node(NodeRole::kCompute, 2),
                                  1'000'000);
  EXPECT_GE(d2, d1 + 1'000'000ull);  // second waits for the first to drain
}

TEST(Network, ReceiverAccessLinkIsTheFanInBottleneck) {
  // Many senders, one receiver: completions serialize on the receiver's
  // access link.
  sim::Simulator s;
  Network net(s, flat_graph());
  const NodeId dst = machine::make_node(NodeRole::kFrontEnd, 0);
  SimTime last = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    last = std::max(last, net.transfer(machine::make_node(NodeRole::kCompute, i),
                                       dst, 1'000'000));
  }
  // 16 MB into a 1 GB/s access link >= 16 ms regardless of sender parallelism.
  EXPECT_GE(last, 16'000'000ull);
}

TEST(Network, SharedTrunkSerializesTransfersFromDifferentHosts) {
  // Two senders on *different* hosts behind the same uplink: the old
  // per-host NIC model let these overlap fully; the trunk device must not.
  sim::Simulator s;
  Network net(s, shared_uplink_graph());
  const NodeId fe = machine::make_node(NodeRole::kFrontEnd, 0);
  const SimTime d1 = net.transfer(machine::make_node(NodeRole::kCompute, 0), fe,
                                  1'000'000);
  const SimTime d2 = net.transfer(machine::make_node(NodeRole::kCompute, 1), fe,
                                  1'000'000);
  EXPECT_GE(d2, d1 + 1'000'000ull);  // 1 ms of trunk serialization apart
}

TEST(Network, TrunkRouteTiming) {
  sim::Simulator s;
  Network net(s, shared_uplink_graph());
  // 1 MB bottlenecked by the 1 GB/s trunk; latency = 500 + 1000 + 500 ns.
  const SimTime done = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                    machine::make_node(NodeRole::kFrontEnd, 0),
                                    1'000'000);
  EXPECT_EQ(done, 1'000'000ull + 2'000ull);
}

TEST(Network, PerMessageOverheadChargedOnce) {
  SwitchGraph g;
  const std::uint32_t core = g.add_switch("core");
  const LinkParams access{500, 1.0e9};
  g.set_attach_rule(NodeRole::kFrontEnd, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kLogin, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kIo, {core, 1, 0, access});
  g.set_attach_rule(NodeRole::kCompute, {core, 1, 0, access});
  g.set_per_message_overhead(60 * kMicrosecond);
  g.seal();
  sim::Simulator s;
  Network net(s, std::move(g));
  const SimTime done = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                    machine::make_node(NodeRole::kCompute, 1),
                                    1'000'000);
  EXPECT_EQ(done, 1'000'000ull + 1'000ull + 60'000ull);
}

TEST(Network, AsyncDeliveryFiresAtComputedTime) {
  sim::Simulator s;
  Network net(s, flat_graph());
  SimTime fired_at = 0;
  const SimTime predicted = net.transfer_async(
      machine::make_node(NodeRole::kCompute, 0),
      machine::make_node(NodeRole::kCompute, 1), 500'000,
      [&]() { fired_at = s.now(); });
  s.run();
  EXPECT_EQ(fired_at, predicted);
}

TEST(Network, LinkStatsCountPerDeviceTraffic) {
  sim::Simulator s;
  Network net(s, shared_uplink_graph());
  net.transfer(machine::make_node(NodeRole::kCompute, 0),
               machine::make_node(NodeRole::kFrontEnd, 0), 1'000'000);
  const std::vector<LinkStat> stats = net.link_stats();
  ASSERT_EQ(stats.size(), 3u);  // src access, trunk, dst access
  // Sorted by device key: trunk edge 0 first, then access devices by tier.
  EXPECT_EQ(stats[0].link, "leaf--core");
  for (const LinkStat& stat : stats) {
    EXPECT_EQ(stat.bytes, 1'000'000ull);
    EXPECT_EQ(stat.messages, 1ull);
  }
  // Busy is occupancy at each link's own rate: 1 MB takes 1 ms on the
  // 1 GB/s trunk but only 100 us on the 10 GB/s access links.
  EXPECT_EQ(stats[0].busy, 1'000'000ull);
  EXPECT_EQ(stats[1].busy, 100'000ull);
  EXPECT_EQ(stats[2].busy, 100'000ull);
}

TEST(Network, ResetClearsCountersAndDevices) {
  sim::Simulator s;
  Network net(s, flat_graph());
  net.transfer(machine::make_node(NodeRole::kCompute, 0),
               machine::make_node(NodeRole::kCompute, 1), 1000);
  net.reset();
  EXPECT_EQ(net.total_bytes_moved(), 0u);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(net.nic_free_at(machine::make_node(NodeRole::kCompute, 0)), 0u);
  EXPECT_TRUE(net.link_stats().empty());
}

class TransferSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferSizes, CompletionMonotoneInSize) {
  sim::Simulator s;
  Network net(s, flat_graph());
  const SimTime small = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                     machine::make_node(NodeRole::kCompute, 1),
                                     GetParam());
  net.reset();
  const SimTime big = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                   machine::make_node(NodeRole::kCompute, 1),
                                   GetParam() * 2);
  EXPECT_GT(big, small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransferSizes,
                         ::testing::Values(1024ull, 65536ull, 1048576ull,
                                           16777216ull));

// ---------------------------------------------------------------------------
// Machine-preset invariants: every preset's graph must route between all role
// pairs, symmetrically, without repeating a device, and preserve the NIC
// rates the old point-to-point parameters published.

struct PresetCase {
  const char* name;
  machine::MachineConfig machine;
};

std::vector<PresetCase> preset_cases() {
  return {{"atlas", machine::atlas()},
          {"bgl", machine::bgl()},
          {"petascale", machine::petascale()}};
}

/// A few representative hosts per role, spanning the attach ranges.
std::vector<NodeId> sample_hosts(const machine::MachineConfig& m) {
  std::vector<NodeId> hosts;
  hosts.push_back(m.front_end());
  hosts.push_back(m.login_node(0));
  if (m.login_nodes > 1) hosts.push_back(m.login_node(m.login_nodes - 1));
  if (m.io_nodes > 0) {
    hosts.push_back(machine::make_node(NodeRole::kIo, 0));
    hosts.push_back(machine::make_node(NodeRole::kIo, m.io_nodes - 1));
  }
  hosts.push_back(m.compute_node(0));
  hosts.push_back(m.compute_node(m.compute_nodes / 2));
  hosts.push_back(m.compute_node(m.compute_nodes - 1));
  return hosts;
}

TEST(SwitchGraphPresets, AllRolePairsRouteSymmetricallyWithoutLoops) {
  for (const PresetCase& pc : preset_cases()) {
    SCOPED_TRACE(pc.name);
    const SwitchGraph g = build_switch_graph(pc.machine);
    const std::vector<NodeId> hosts = sample_hosts(pc.machine);
    for (const NodeId a : hosts) {
      for (const NodeId b : hosts) {
        const Route forward = route_between(g, a, b);
        ASSERT_GE(forward.size(), 2u);
        EXPECT_GT(bottleneck_rate(forward), 0.0);  // reachable, priced
        // No device repeats (no routing loop). Self-transfers legitimately
        // hold the one access device twice.
        if (a != b) {
          std::set<std::uint64_t> seen;
          for (const RouteHop& hop : forward) {
            EXPECT_TRUE(seen.insert(hop.device).second)
                << "route repeats device " << g.device_name(hop.device);
          }
        }
        // Symmetry: the reverse route crosses the same devices backwards.
        const Route back = route_between(g, b, a);
        ASSERT_EQ(back.size(), forward.size());
        for (std::size_t i = 0; i < forward.size(); ++i) {
          EXPECT_EQ(back[back.size() - 1 - i].device, forward[i].device);
        }
      }
    }
  }
}

TEST(SwitchGraphPresets, AtlasNicRatesPreserved) {
  const machine::MachineConfig m = machine::atlas();
  const SwitchGraph g = build_switch_graph(m);
  // Same-leaf compute pair rides the full IB NIC rate, as the old
  // compute_fabric published.
  EXPECT_DOUBLE_EQ(transfer_rate(g, m.compute_node(0), m.compute_node(1)),
                   1.4e9);
  EXPECT_DOUBLE_EQ(g.attach_rule(NodeRole::kLogin).access.bytes_per_sec, 1.1e9);
  EXPECT_DOUBLE_EQ(g.attach_rule(NodeRole::kFrontEnd).access.bytes_per_sec,
                   1.1e9);
  // Login <-> compute bottlenecks on the login NIC, as fe_to_compute did.
  EXPECT_DOUBLE_EQ(transfer_rate(g, m.login_node(0), m.compute_node(0)), 1.1e9);
}

TEST(SwitchGraphPresets, PetascaleNicRatesPreserved) {
  const machine::MachineConfig m = machine::petascale();
  const SwitchGraph g = build_switch_graph(m);
  EXPECT_DOUBLE_EQ(g.attach_rule(NodeRole::kIo).access.bytes_per_sec, 1.2e9);
  EXPECT_DOUBLE_EQ(g.attach_rule(NodeRole::kLogin).access.bytes_per_sec, 1.2e9);
  EXPECT_DOUBLE_EQ(g.attach_rule(NodeRole::kCompute).access.bytes_per_sec,
                   2.0e9);
  // The service uplink oversubscribes the 4 logins behind each service leaf:
  // that shared trunk is the wiring the route placement exists to dodge.
  // login 4 sits on svc-leaf1, so its route to the front end crosses it.
  const Route r = route_between(g, m.login_node(4), m.front_end());
  bool saw_oversubscribed_trunk = false;
  for (const RouteHop& hop : r) {
    if (hop.device >= SwitchGraph::kAccessDeviceBase) continue;  // access
    if (hop.link.bytes_per_sec <
        4 * g.attach_rule(NodeRole::kLogin).access.bytes_per_sec) {
      saw_oversubscribed_trunk = true;
    }
  }
  EXPECT_TRUE(saw_oversubscribed_trunk);
}

TEST(SwitchGraphPresets, BglFunctionalPathMatchesOldPointToPoint) {
  const machine::MachineConfig m = machine::bgl();
  const SwitchGraph g = build_switch_graph(m);
  const NodeId login = m.login_node(0);
  const NodeId io = machine::make_node(NodeRole::kIo, 0);
  // Old login_to_io: 95 MB/s at 120 us, preserved across the tiered path
  // (login access -> service uplink -> rack uplink -> io access).
  const Route r = route_between(g, login, io);
  EXPECT_DOUBLE_EQ(bottleneck_rate(r), 95.0e6);
  EXPECT_EQ(route_latency(r), 120 * kMicrosecond);
  // Old fe_to_login: 60 us one-way latency on the service leaf.
  const Route fe_login = route_between(g, m.front_end(), login);
  EXPECT_EQ(route_latency(fe_login), 60 * kMicrosecond);
  EXPECT_DOUBLE_EQ(bottleneck_rate(fe_login), 110.0e6);
}

TEST(SwitchGraphPresets, BglConnectionLimitStillKillsWideFlatTrees) {
  // The Sec. V-A death: 256 I/O daemons dialing one unpatched front end
  // exceeds the 255-connection limit. The switch-graph refactor must not
  // soften the resource-model failure.
  const machine::MachineConfig m = machine::bgl();
  EXPECT_EQ(m.max_tool_connections, 255u);
  machine::DaemonLayout layout;
  layout.num_daemons = 256;
  layout.num_tasks = 512;
  layout.tasks_per_daemon = 2;
  tbon::TopologySpec flat;
  flat.depth = 1;
  const auto topo = tbon::build_topology(m, layout, flat);
  ASSERT_TRUE(topo.is_ok());
  EXPECT_FALSE(
      tbon::connection_viability(topo.value(), m.max_tool_connections).is_ok());
}

}  // namespace
}  // namespace petastat::net
