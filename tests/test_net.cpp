// Unit tests for the network model: transfer math, NIC contention, link
// selection, and async delivery.
#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace petastat::net {
namespace {

using machine::NodeRole;

NetworkParams flat_params() {
  NetworkParams p;
  const LinkParams link{1000 /*1us*/, 1.0e9};
  p.fe_to_login = p.login_to_login = p.login_to_io = p.io_to_compute =
      p.compute_fabric = p.fe_to_compute = link;
  p.frontend_nic_bytes_per_sec = p.login_nic_bytes_per_sec =
      p.io_nic_bytes_per_sec = p.compute_nic_bytes_per_sec = 1.0e9;
  p.per_message_overhead = 0;
  return p;
}

TEST(Network, SingleTransferTiming) {
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  // 1 MB at 1 GB/s = 1 ms serialization + 1 us latency.
  const SimTime done = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                    machine::make_node(NodeRole::kCompute, 1),
                                    1'000'000);
  EXPECT_EQ(done, 1'000'000ull + 1'000ull);
  EXPECT_EQ(net.total_bytes_moved(), 1'000'000ull);
  EXPECT_EQ(net.total_messages(), 1ull);
}

TEST(Network, SenderNicSerializesOutgoingTransfers) {
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  const NodeId src = machine::make_node(NodeRole::kCompute, 0);
  const SimTime d1 = net.transfer(src, machine::make_node(NodeRole::kCompute, 1),
                                  1'000'000);
  const SimTime d2 = net.transfer(src, machine::make_node(NodeRole::kCompute, 2),
                                  1'000'000);
  EXPECT_GE(d2, d1 + 1'000'000ull);  // second waits for the first to drain
}

TEST(Network, ReceiverNicIsTheFanInBottleneck) {
  // Many senders, one receiver: completions serialize on the receiver NIC.
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  const NodeId dst = machine::make_node(NodeRole::kFrontEnd, 0);
  SimTime last = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    last = std::max(last, net.transfer(machine::make_node(NodeRole::kCompute, i),
                                       dst, 1'000'000));
  }
  // 16 MB into a 1 GB/s NIC >= 16 ms regardless of sender parallelism.
  EXPECT_GE(last, 16'000'000ull);
}

TEST(Network, AsyncDeliveryFiresAtComputedTime) {
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  SimTime fired_at = 0;
  const SimTime predicted = net.transfer_async(
      machine::make_node(NodeRole::kCompute, 0),
      machine::make_node(NodeRole::kCompute, 1), 500'000,
      [&]() { fired_at = s.now(); });
  s.run();
  EXPECT_EQ(fired_at, predicted);
}

TEST(Network, SlowerLinkDominatesRate) {
  sim::Simulator s;
  NetworkParams p = flat_params();
  p.login_to_io.bytes_per_sec = 1.0e8;  // 100 MB/s functional network
  Network net(s, machine::bgl(), p);
  const SimTime done = net.transfer(machine::make_node(NodeRole::kIo, 0),
                                    machine::make_node(NodeRole::kLogin, 0),
                                    1'000'000);
  // 1 MB at 100 MB/s = 10 ms.
  EXPECT_GE(done, 10'000'000ull);
}

TEST(Network, DefaultParamsDifferByMachine) {
  const NetworkParams a = default_network_params(machine::atlas());
  const NetworkParams b = default_network_params(machine::bgl());
  // Atlas IB is much faster than BG/L's functional GigE tree.
  EXPECT_GT(a.compute_fabric.bytes_per_sec, b.login_to_io.bytes_per_sec);
  EXPECT_GT(b.login_to_io.latency, a.compute_fabric.latency);
}

TEST(Network, ResetClearsCountersAndNics) {
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  net.transfer(machine::make_node(NodeRole::kCompute, 0),
               machine::make_node(NodeRole::kCompute, 1), 1000);
  net.reset();
  EXPECT_EQ(net.total_bytes_moved(), 0u);
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(net.nic_free_at(machine::make_node(NodeRole::kCompute, 0)), 0u);
}

class TransferSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferSizes, CompletionMonotoneInSize) {
  sim::Simulator s;
  Network net(s, machine::atlas(), flat_params());
  const SimTime small = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                     machine::make_node(NodeRole::kCompute, 1),
                                     GetParam());
  net.reset();
  const SimTime big = net.transfer(machine::make_node(NodeRole::kCompute, 0),
                                   machine::make_node(NodeRole::kCompute, 1),
                                   GetParam() * 2);
  EXPECT_GT(big, small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransferSizes,
                         ::testing::Values(1024ull, 65536ull, 1048576ull,
                                           16777216ull));

}  // namespace
}  // namespace petastat::net
