// Edge cases across modules: minimal jobs, single-daemon trees, boundary
// values, and empty structures.
#include <gtest/gtest.h>

#include "stat/scenario.hpp"
#include "tbon/reduction.hpp"

namespace petastat {
namespace {

TEST(EdgeCases, MinimalRingJobEndToEnd) {
  // 3 tasks is the smallest ring; it fits in a single Atlas daemon.
  machine::JobConfig job;
  job.num_tasks = 3;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  stat::StatScenario scenario(machine::atlas(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.layout.num_daemons, 1u);
  std::uint64_t total = 0;
  for (const auto& cls : result.classes) total += cls.size();
  EXPECT_EQ(total, 3u);
}

TEST(EdgeCases, SingleDaemonReduction) {
  const auto m = machine::atlas();
  machine::JobConfig job;
  job.num_tasks = 8;  // exactly one daemon
  const auto layout = machine::layout_daemons(m, job).value();
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::flat()).value();
  EXPECT_EQ(topo.procs.size(), 2u);  // FE + one leaf

  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  tbon::ReduceOps<int> ops;
  ops.merge_cpu = [](const int&) { return SimTime{0}; };
  ops.merge_into = [](int& acc, int&& child) { acc += child; };
  ops.wire_bytes = [](const int&) { return std::uint64_t{8}; };
  ops.codec_cost = [](std::uint64_t) { return SimTime{10}; };
  tbon::Reduction<int> reduction(simulator, network, topo, ops);
  int final_value = 0;
  reduction.start({41}, [&](tbon::ReduceResult<int> r) {
    final_value = r.payload;
  });
  simulator.run();
  EXPECT_EQ(final_value, 41);
}

TEST(EdgeCases, TaskSetAtUint32Boundary) {
  stat::TaskSet s;
  s.insert(UINT32_MAX);
  s.insert(UINT32_MAX - 1);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(UINT32_MAX));
  s.insert_range(0, 2);
  EXPECT_EQ(s.count(), 5u);
  // Union with another boundary-touching set.
  stat::TaskSet t = stat::TaskSet::range(UINT32_MAX - 3, UINT32_MAX);
  s.union_with(t);
  EXPECT_EQ(s.count(), 7u);
}

TEST(EdgeCases, EmptyTreeBehaviour) {
  stat::GlobalTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.node_count(), 0u);
  EXPECT_EQ(tree.depth(), 0u);
  EXPECT_TRUE(stat::equivalence_classes(tree).empty());
  app::FrameTable frames;
  EXPECT_EQ(stat::to_folded(tree, frames), "");
  const std::string dot = stat::to_dot(tree, frames);
  EXPECT_NE(dot.find("digraph"), std::string::npos);

  // Merging an empty tree is a no-op; merging into empty copies.
  stat::GlobalTree other;
  other.insert(frames.make_path({"a"}), stat::GlobalLabel::for_task(0));
  tree.merge(other);
  EXPECT_EQ(tree.node_count(), 1u);
  stat::GlobalTree empty;
  tree.merge(empty);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(EdgeCases, SingleFramePathsAndDuplicateInserts) {
  app::FrameTable frames;
  stat::GlobalTree tree;
  const auto path = frames.make_path({"only_frame"});
  for (int i = 0; i < 100; ++i) {
    tree.insert(path, stat::GlobalLabel::for_task(7));
  }
  EXPECT_EQ(tree.node_count(), 1u);
  const auto& node = tree.root().children.front();
  EXPECT_EQ(node.label.tasks.count(), 1u);
  EXPECT_EQ(node.label.visits, 100u);
}

TEST(EdgeCases, HierTaskSetEmptyMergesAndEncoding) {
  stat::HierTaskSet empty;
  stat::HierTaskSet other = stat::HierTaskSet::single(5, 2);
  other.merge(empty);
  EXPECT_EQ(other.count(), 1u);
  empty.merge(other);
  EXPECT_EQ(empty.count(), 1u);

  stat::HierTaskSet fresh;
  ByteSink sink;
  fresh.encode(sink);
  auto bytes = sink.take();
  ByteSource source(bytes);
  auto decoded = stat::HierTaskSet::decode(source);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(EdgeCases, MulticastOverSingleLeaf) {
  const auto m = machine::atlas();
  machine::JobConfig job;
  job.num_tasks = 8;
  const auto layout = machine::layout_daemons(m, job).value();
  const auto topo =
      tbon::build_topology(m, layout, tbon::TopologySpec::flat()).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  bool fired = false;
  tbon::multicast(simulator, network, topo, 32, [&](SimTime) { fired = true; });
  simulator.run();
  EXPECT_TRUE(fired);
}

TEST(EdgeCases, SbrsWithVirtualNodeJobOnBgl) {
  // SBRS on BG/L: single static binary relocated over the functional tree.
  machine::JobConfig job;
  job.num_tasks = 16384;
  job.mode = machine::BglMode::kVirtualNode;
  stat::StatOptions options;
  options.topology = tbon::TopologySpec::bgl(2);
  options.launcher = stat::LauncherKind::kCiodPatched;
  options.use_sbrs = true;
  stat::StatScenario scenario(machine::bgl(), job, options);
  const auto result = scenario.run();
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_GT(result.phases.sbrs_relocation, 0u);
  // With the 8 MB image local everywhere, symbol I/O no longer grows with
  // the shared server's queue.
  EXPECT_LT(result.phases.sample_symbol_io_max, seconds(0.5));
}

TEST(EdgeCases, ScenarioRejectsOversizedJobAtConstruction) {
  machine::JobConfig job;
  job.num_tasks = 100000;  // does not fit Atlas
  stat::StatOptions options;
  EXPECT_THROW(stat::StatScenario(machine::atlas(), job, options),
               std::logic_error);
}

}  // namespace
}  // namespace petastat
