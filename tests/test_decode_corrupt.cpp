// Adversarial decode tests: every Result-returning decode path must handle
// truncated or corrupt input by returning a non-OK Status — never by
// crashing, throwing, or allocating absurdly. Exercised systematically:
// every prefix truncation and every single-byte corruption of each valid
// encoding, plus handcrafted pathological headers (huge varint lengths and
// counts that used to wrap bounds checks or feed unchecked reserve()).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/appmodel.hpp"
#include "common/serializer.hpp"
#include "stat/hier_taskset.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- ByteSource primitives --------------------------------------------------

TEST(ByteSource, TruncatedFixedWidthReadsFail) {
  const Bytes three = {1, 2, 3};
  {
    ByteSource source(three);
    std::uint32_t v = 0;
    EXPECT_FALSE(source.get_u32(v).is_ok());
  }
  {
    ByteSource source(three);
    std::uint64_t v = 0;
    EXPECT_FALSE(source.get_u64(v).is_ok());
  }
  {
    ByteSource source({});
    std::uint8_t v = 0;
    EXPECT_FALSE(source.get_u8(v).is_ok());
  }
}

TEST(ByteSource, UnterminatedVarintFails) {
  const Bytes all_continuation = {0x80, 0x80, 0x80};
  ByteSource source(all_continuation);
  std::uint64_t v = 0;
  EXPECT_FALSE(source.get_varint(v).is_ok());
}

TEST(ByteSource, OverlongVarintFails) {
  // 11 bytes of continuation overflows 64 bits.
  const Bytes overlong(11, 0xff);
  ByteSource source(overlong);
  std::uint64_t v = 0;
  EXPECT_FALSE(source.get_varint(v).is_ok());
}

TEST(ByteSource, ZeroPaddedOverlongVarintFails) {
  // Ten continuation bytes with empty payloads then a terminator: the bytes
  // carry no value bits, but accepting them would shift past 64 (UB). The
  // decoder must reject the 10th byte's continuation bit instead.
  Bytes padded(10, 0x80);
  padded.push_back(0x00);
  ByteSource source(padded);
  std::uint64_t v = 0;
  EXPECT_FALSE(source.get_varint(v).is_ok());
}

TEST(ByteSource, MaxVarintRoundTrips) {
  ByteSink sink;
  sink.put_varint(UINT64_MAX);
  ByteSource source(sink.bytes());
  std::uint64_t v = 0;
  ASSERT_TRUE(source.get_varint(v).is_ok());
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(source.exhausted());
}

TEST(ByteSource, StringWithHugeDeclaredLengthFails) {
  // varint(UINT64_MAX) then no payload: the old `pos_ + len` bounds check
  // wrapped around and accepted this.
  ByteSink sink;
  sink.put_varint(UINT64_MAX);
  ByteSource source(sink.bytes());
  std::string out;
  EXPECT_FALSE(source.get_string(out).is_ok());
}

TEST(ByteSource, StringLongerThanBufferFails) {
  ByteSink sink;
  sink.put_varint(100);
  sink.put_u8('x');
  ByteSource source(sink.bytes());
  std::string out;
  EXPECT_FALSE(source.get_string(out).is_ok());
}

TEST(ByteSource, GetBytesPastEndFails) {
  const Bytes four = {1, 2, 3, 4};
  ByteSource source(four);
  std::span<const std::uint8_t> out;
  EXPECT_TRUE(source.get_bytes(3, out).is_ok());
  EXPECT_FALSE(source.get_bytes(2, out).is_ok());
  // A size that would wrap `pos_ + n` must fail too.
  EXPECT_FALSE(source.get_bytes(SIZE_MAX, out).is_ok());
}

// --- Systematic truncation / corruption over real encodings -----------------

TaskSet sample_set() {
  TaskSet set;
  set.insert_range(0, 3);
  set.insert(77);
  set.insert_range(200, 300);
  return set;
}

HierTaskSet sample_hier() {
  HierTaskSet set;
  for (std::uint32_t local = 0; local < 6; ++local) set.insert(2, local);
  set.insert(40, 1);
  return set;
}

/// Decoding any prefix of `encoded` must return (not crash), and the full
/// buffer must decode OK.
template <typename DecodeFn>
void expect_clean_on_all_prefixes(const Bytes& encoded, DecodeFn decode) {
  for (std::size_t len = 0; len <= encoded.size(); ++len) {
    ByteSource source(std::span(encoded.data(), len));
    (void)decode(source);  // must not crash; status may be either way
  }
  // The full buffer must decode.
  ByteSource full(encoded);
  EXPECT_TRUE(decode(full).is_ok());
}

/// Flipping every byte (one at a time) must never crash the decoder.
template <typename DecodeFn>
void expect_clean_on_byte_flips(const Bytes& encoded, DecodeFn decode) {
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    Bytes corrupt = encoded;
    corrupt[i] ^= 0xff;
    ByteSource source(corrupt);
    (void)decode(source);  // must not crash
  }
}

TEST(CorruptRangedTaskSet, TruncationsAndFlipsNeverCrash) {
  ByteSink sink;
  sample_set().encode_ranged(sink);
  const Bytes encoded = sink.take();
  auto decode = [](ByteSource& s) { return TaskSet::decode_ranged(s).status(); };
  expect_clean_on_all_prefixes(encoded, decode);
  expect_clean_on_byte_flips(encoded, decode);
}

TEST(CorruptDenseTaskSet, TruncationsNeverCrash) {
  ByteSink sink;
  sample_set().encode_dense(sink, 512);
  const Bytes encoded = sink.take();
  // Dense payloads have no internal structure to corrupt (every bit pattern
  // is a valid set), but truncation must be caught.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    ByteSource source(std::span(encoded.data(), len));
    EXPECT_FALSE(TaskSet::decode_dense(source, 512).is_ok());
  }
  ByteSource full(encoded);
  EXPECT_TRUE(TaskSet::decode_dense(full, 512).is_ok());
}

TEST(CorruptHierTaskSet, TruncationsAndFlipsNeverCrash) {
  ByteSink sink;
  sample_hier().encode(sink);
  const Bytes encoded = sink.take();
  auto decode = [](ByteSource& s) { return HierTaskSet::decode(s).status(); };
  expect_clean_on_all_prefixes(encoded, decode);
  expect_clean_on_byte_flips(encoded, decode);
}

TEST(CorruptPrefixTree, TruncationsAndFlipsNeverCrash) {
  app::FrameTable frames;
  GlobalTree tree;
  const LabelContext ctx{16};
  tree.insert(frames.make_path({"_start", "main", "MPI_Barrier"}),
              GlobalLabel::for_task(3));
  tree.insert(frames.make_path({"_start", "main", "compute"}),
              GlobalLabel::for_task(4));
  ByteSink sink;
  tree.encode(sink, frames, ctx);
  const Bytes encoded = sink.take();

  auto decode = [&ctx](ByteSource& s) {
    app::FrameTable fresh;
    return GlobalTree::decode(s, fresh, ctx).status();
  };
  expect_clean_on_all_prefixes(encoded, decode);
  expect_clean_on_byte_flips(encoded, decode);
}

TEST(CorruptHierTree, TruncationsAndFlipsNeverCrash) {
  app::FrameTable frames;
  HierTree tree;
  const LabelContext ctx{16};
  tree.insert(frames.make_path({"_start", "main", "MPI_Recv"}),
              HierLabel::for_local(0, 1));
  tree.insert(frames.make_path({"_start", "main", "poll"}),
              HierLabel::for_local(1, 0));
  ByteSink sink;
  tree.encode(sink, frames, ctx);
  const Bytes encoded = sink.take();

  auto decode = [&ctx](ByteSource& s) {
    app::FrameTable fresh;
    return HierTree::decode(s, fresh, ctx).status();
  };
  expect_clean_on_all_prefixes(encoded, decode);
  expect_clean_on_byte_flips(encoded, decode);
}

// --- Wire-format versioning -------------------------------------------------

/// A bumped version byte must fail as version skew (FAILED_PRECONDITION),
/// distinctly from truncation (INVALID_ARGUMENT "truncated buffer") — the
/// operational difference between "daemon runs an old tool build" and "the
/// connection died mid-packet".
TEST(WireVersion, SkewIsDistinguishedFromTruncation) {
  ByteSink sink;
  sample_set().encode_ranged(sink);
  Bytes encoded = sink.take();

  // Full buffer with a bumped version: skew.
  Bytes skewed = encoded;
  skewed[0] = kWireFormatVersion + 1;
  {
    ByteSource source(skewed);
    auto decoded = TaskSet::decode_ranged(source);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(decoded.status().message().find("version skew"),
              std::string::npos);
  }
  // Empty buffer: truncation, not skew.
  {
    ByteSource source(std::span<const std::uint8_t>{});
    auto decoded = TaskSet::decode_ranged(source);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireVersion, AllVersionedFormatsRejectSkew) {
  app::FrameTable frames;
  const LabelContext ctx{16};
  GlobalTree tree;
  tree.insert(frames.make_path({"_start", "main"}), GlobalLabel::for_task(1));

  {
    ByteSink sink;
    tree.encode(sink, frames, ctx);
    Bytes encoded = sink.take();
    encoded[0] = 0x7e;  // no such version
    ByteSource source(encoded);
    app::FrameTable fresh;
    auto decoded = GlobalTree::decode(source, fresh, ctx);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  }
  {
    ByteSink sink;
    sample_hier().encode(sink);
    Bytes encoded = sink.take();
    encoded[0] = 0x7e;
    ByteSource source(encoded);
    auto decoded = HierTaskSet::decode(source);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  }
}

// --- Pathological headers ---------------------------------------------------

/// A count header claiming 2^60 elements with no payload behind it must be
/// rejected via Status (and must not reserve() petabytes on the way). The
/// valid version byte up front gets the decoder past the envelope check into
/// the count-handling path under test.
TEST(PathologicalHeaders, HugeElementCountsFailCleanly) {
  ByteSink sink;
  sink.put_u8(kWireFormatVersion);
  sink.put_varint(1ull << 60);
  const Bytes encoded = sink.take();
  {
    ByteSource source(encoded);
    EXPECT_FALSE(TaskSet::decode_ranged(source).is_ok());
  }
  {
    ByteSource source(encoded);
    EXPECT_FALSE(HierTaskSet::decode(source).is_ok());
  }
  {
    ByteSource source(encoded);
    app::FrameTable frames;
    EXPECT_FALSE(GlobalTree::decode(source, frames, LabelContext{8}).is_ok());
  }
}

TEST(PathologicalHeaders, HugeRangedDeltasFailCleanly) {
  // One interval with gap > UINT32_MAX: used to wrap the cursor arithmetic.
  ByteSink sink;
  sink.put_u8(kWireFormatVersion);
  sink.put_varint(1);           // one interval
  sink.put_varint(UINT64_MAX);  // gap
  sink.put_varint(0);           // length
  ByteSource source(sink.bytes());
  EXPECT_FALSE(TaskSet::decode_ranged(source).is_ok());
}

TEST(PathologicalHeaders, HugeDaemonDeltaFailsCleanly) {
  ByteSink sink;
  sink.put_u8(kWireFormatVersion);
  sink.put_varint(2);           // two blocks
  sink.put_varint(1);           // daemon 1
  TaskSet::single(0).encode_ranged_body(sink);
  sink.put_varint(UINT64_MAX);  // second daemon delta: overflow
  TaskSet::single(0).encode_ranged_body(sink);
  ByteSource source(sink.bytes());
  EXPECT_FALSE(HierTaskSet::decode(source).is_ok());
}

TEST(PathologicalHeaders, DeeplyNestedTreeFailsCleanly) {
  // A chain of single-child nodes a few bytes per level: without a decode
  // depth limit this recursed once per level and overflowed the stack.
  ByteSink sink;
  sink.put_u8(kWireFormatVersion);
  const std::uint32_t levels = 200000;
  for (std::uint32_t i = 0; i < levels; ++i) {
    sink.put_varint(1);                     // one child
    sink.put_string("f");                   // frame name
    TaskSet::single(0).encode_dense(sink, 8);  // GlobalLabel: dense set ...
    sink.put_u32(1);                        // ... plus visits
  }
  sink.put_varint(0);  // leaf
  ByteSource source(sink.bytes());
  app::FrameTable frames;
  auto decoded = GlobalTree::decode(source, frames, LabelContext{8});
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PathologicalHeaders, DenseDecodeForOversizedJobFails) {
  // job_size implies more bytes than the buffer holds.
  ByteSink sink;
  sample_set().encode_dense(sink, 512);
  ByteSource source(sink.bytes());
  EXPECT_FALSE(TaskSet::decode_dense(source, 1 << 20).is_ok());
}

}  // namespace
}  // namespace petastat::stat
