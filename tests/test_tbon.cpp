// Unit tests for TBON topology construction, connect-time model, the
// reduction engine, and multicast.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/serializer.hpp"
#include "machine/cost_model.hpp"
#include "tbon/multicast.hpp"
#include "tbon/reduction.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {
namespace {

machine::DaemonLayout layout_of(const machine::MachineConfig& m,
                                std::uint32_t tasks,
                                machine::BglMode mode = machine::BglMode::kCoprocessor) {
  machine::JobConfig job;
  job.num_tasks = tasks;
  job.mode = mode;
  return machine::layout_daemons(m, job).value();
}

void check_tree_invariants(const TbonTopology& topo, std::uint32_t daemons) {
  // procs[0] is the front end with no parent.
  EXPECT_EQ(topo.procs[0].parent, -1);
  EXPECT_EQ(topo.procs[0].level, 0u);
  // Every other proc has a valid parent at the previous level, and parents
  // list exactly their children.
  std::vector<std::uint32_t> child_counts(topo.procs.size(), 0);
  for (std::uint32_t i = 1; i < topo.procs.size(); ++i) {
    const auto& p = topo.procs[i];
    ASSERT_GE(p.parent, 0);
    const auto& parent = topo.procs[static_cast<std::uint32_t>(p.parent)];
    EXPECT_EQ(parent.level + 1, p.level);
    EXPECT_NE(std::find(parent.children.begin(), parent.children.end(), i),
              parent.children.end());
    ++child_counts[static_cast<std::uint32_t>(p.parent)];
  }
  for (std::uint32_t i = 0; i < topo.procs.size(); ++i) {
    EXPECT_EQ(topo.procs[i].children.size(), child_counts[i]);
  }
  // Leaves are exactly the daemons, in order.
  ASSERT_EQ(topo.leaf_of_daemon.size(), daemons);
  for (std::uint32_t d = 0; d < daemons; ++d) {
    const auto& leaf = topo.procs[topo.leaf_of_daemon[d]];
    EXPECT_TRUE(leaf.is_leaf());
    EXPECT_EQ(leaf.daemon.value(), d);
    EXPECT_TRUE(leaf.children.empty());
  }
}

TEST(Topology, FlatTreeHasNoCommProcs) {
  const auto layout = layout_of(machine::atlas(), 512);
  const auto topo = build_topology(machine::atlas(), layout,
                                   TopologySpec::flat());
  ASSERT_TRUE(topo.is_ok());
  EXPECT_EQ(topo.value().num_comm_procs(), 0u);
  EXPECT_EQ(topo.value().front_end().children.size(), 64u);  // 512/8 daemons
  check_tree_invariants(topo.value(), 64);
}

class BalancedDepth
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(BalancedDepth, InvariantsHoldAcrossScales) {
  const auto [depth, tasks] = GetParam();
  const auto layout = layout_of(machine::atlas(), tasks);
  const auto topo = build_topology(machine::atlas(), layout,
                                   TopologySpec::balanced(depth));
  ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();
  check_tree_invariants(topo.value(), layout.num_daemons);
  // Balanced rule: fanout near the depth-th root of the daemon count.
  const double root = std::pow(layout.num_daemons, 1.0 / depth);
  EXPECT_LE(topo.value().max_fanout(),
            static_cast<std::uint32_t>(std::ceil(root)) * 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BalancedDepth,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(64u, 512u, 4096u, 8192u)));

TEST(Topology, FullClusterLeavesNoCommAllocation) {
  // With every Atlas node running daemons there is no separate compute
  // allocation left for comm processes; only the flat tree fits.
  const auto layout = layout_of(machine::atlas(), 9216);
  EXPECT_TRUE(build_topology(machine::atlas(), layout, TopologySpec::flat())
                  .is_ok());
  const auto deep =
      build_topology(machine::atlas(), layout, TopologySpec::balanced(2));
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);
}

TEST(Topology, BglTwoDeepFanoutRule) {
  // "fanout from the front end = sqrt(#daemons) or 28, whichever is less"
  const auto m = machine::bgl();
  {
    const auto layout = layout_of(m, 16384);  // 256 daemons -> sqrt = 16
    const auto topo = build_topology(m, layout, TopologySpec::bgl(2)).value();
    EXPECT_EQ(topo.front_end().children.size(), 16u);
  }
  {
    const auto layout = layout_of(m, 104448);  // 1632 daemons -> min(41,28)=28
    const auto topo = build_topology(m, layout, TopologySpec::bgl(2)).value();
    EXPECT_EQ(topo.front_end().children.size(), 28u);
    check_tree_invariants(topo, layout.num_daemons);
  }
}

TEST(Topology, BglThreeDeepUsesFourThenSecondLevel) {
  const auto m = machine::bgl();
  const auto layout = layout_of(m, 65536);
  for (const std::uint32_t second : {16u, 24u}) {
    const auto topo =
        build_topology(m, layout, TopologySpec::bgl(3, second)).value();
    EXPECT_EQ(topo.front_end().children.size(), 4u);
    EXPECT_EQ(topo.num_comm_procs(), 4u + second);
    check_tree_invariants(topo, layout.num_daemons);
  }
}

TEST(Topology, CommProcsPlacedOnLoginNodesOnBgl) {
  const auto m = machine::bgl();
  const auto layout = layout_of(m, 65536);
  const auto topo = build_topology(m, layout, TopologySpec::bgl(2)).value();
  for (const auto& p : topo.procs) {
    if (!p.is_leaf() && p.parent >= 0) {
      EXPECT_EQ(machine::node_role(p.host), machine::NodeRole::kLogin);
      EXPECT_LT(machine::node_index(p.host), m.login_nodes);
    }
  }
}

TEST(Topology, CommProcsPlacedOnExtraComputeNodesOnAtlas) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 4096);  // daemons on nodes 0..511
  const auto topo =
      build_topology(m, layout, TopologySpec::balanced(2)).value();
  for (const auto& p : topo.procs) {
    if (!p.is_leaf() && p.parent >= 0) {
      EXPECT_EQ(machine::node_role(p.host), machine::NodeRole::kCompute);
      EXPECT_GE(machine::node_index(p.host), 512u);  // separate allocation
    }
  }
}

TEST(Topology, LoginCapacityIsEnforced) {
  auto m = machine::bgl();
  m.max_comm_procs_per_login = 1;  // capacity 14
  const auto layout = layout_of(m, 104448);
  const auto topo = build_topology(m, layout, TopologySpec::bgl(2));
  EXPECT_EQ(topo.status().code(), StatusCode::kResourceExhausted);
}

TEST(Topology, ExplicitWidthsValidated) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 512);
  TopologySpec spec;
  spec.depth = 3;
  spec.level_widths = {8};  // needs depth-1 = 2 entries
  EXPECT_FALSE(build_topology(m, layout, spec).is_ok());
  spec.level_widths = {8, 4};  // narrower than parent level
  EXPECT_FALSE(build_topology(m, layout, spec).is_ok());
  spec.level_widths = {4, 8};
  EXPECT_TRUE(build_topology(m, layout, spec).is_ok());
}

TEST(Topology, DeriveLevelWidthsRejectsMalformedSpecsUpFront) {
  // The hardening contract: zero depth, zero-width levels, and explicit
  // widths beyond the machine's comm-process slots are INVALID_ARGUMENT at
  // derive_level_widths — callers (planner enumeration included) never see
  // a malformed width vector, let alone a downstream crash.
  const auto m = machine::bgl();
  TopologySpec spec;
  spec.depth = 0;
  EXPECT_EQ(derive_level_widths(m, spec, 64).status().code(),
            StatusCode::kInvalidArgument);

  spec = TopologySpec();
  spec.depth = 2;
  spec.level_widths = {0};
  EXPECT_EQ(derive_level_widths(m, spec, 64).status().code(),
            StatusCode::kInvalidArgument);

  spec.level_widths = {400};  // login tier holds 14 x 24 = 336
  EXPECT_EQ(derive_level_widths(m, spec, 64).status().code(),
            StatusCode::kInvalidArgument);

  spec.level_widths = {24};
  ASSERT_TRUE(derive_level_widths(m, spec, 64).is_ok());
  EXPECT_EQ(derive_level_widths(m, spec, 64).value(),
            (std::vector<std::uint32_t>{24}));

  // Zero daemons cannot anchor any tree.
  EXPECT_EQ(derive_level_widths(m, TopologySpec::flat(), 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Topology, ZeroWidthLevelRejectedByBuild) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 512);
  TopologySpec spec;
  spec.depth = 2;
  spec.level_widths = {0};
  EXPECT_EQ(build_topology(m, layout, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Topology, CommProcessCapacityByMachine) {
  // BG/L: 14 login nodes x 24 slots, independent of the job.
  EXPECT_EQ(comm_process_capacity(machine::bgl(), 64), 336u);
  EXPECT_EQ(comm_process_capacity(machine::bgl(), 1664), 336u);
  // Atlas: whatever compute nodes the daemons left free, one per core.
  const auto atlas = machine::atlas();
  EXPECT_EQ(comm_process_capacity(atlas, 512), (1152u - 512u) * 8u);
  EXPECT_EQ(comm_process_capacity(atlas, 1152), 0u);
}

TEST(Topology, ExplicitWidthsBeyondCommSlotsFailEarly) {
  // A full-cluster Atlas job leaves no comm allocation: explicit widths must
  // be rejected as INVALID_ARGUMENT (malformed request), not discovered as
  // an exhausted allocation mid-placement.
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 9216);
  TopologySpec spec;
  spec.depth = 2;
  spec.level_widths = {8};
  EXPECT_EQ(build_topology(m, layout, spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Topology, ExplicitWidthSpecNamesIncludeWidths) {
  TopologySpec spec;
  spec.depth = 3;
  spec.level_widths = {4, 16};
  EXPECT_EQ(spec.name(), "3-deep[4,16]");
}

TEST(Topology, DepthBoundsChecked) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 64);
  TopologySpec spec;
  spec.depth = 0;
  EXPECT_FALSE(build_topology(m, layout, spec).is_ok());
  spec.depth = 5;
  EXPECT_FALSE(build_topology(m, layout, spec).is_ok());
}

// --------------------------------------------------------------------------
// Sharded front end: reducers as a synthetic first internal level.

TEST(Topology, ShardedFlatInsertsReducerLevel) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons
  const auto topo =
      build_topology(m, layout, TopologySpec::flat().with_shards(4));
  ASSERT_TRUE(topo.is_ok());
  const TbonTopology& t = topo.value();
  EXPECT_TRUE(t.sharded());
  ASSERT_EQ(t.reducers.size(), 4u);
  EXPECT_EQ(t.front_end().children.size(), 4u);
  EXPECT_EQ(t.num_comm_procs(), 4u);  // reducers are comm processes
  EXPECT_EQ(t.depth, 2u);             // FE + reducer level
  check_tree_invariants(t, 32);
  // Each reducer owns a contiguous daemon range, together covering all 32.
  std::uint32_t next_daemon = 0;
  for (const std::uint32_t r : t.reducers) {
    EXPECT_EQ(t.procs[r].level, 1u);
    for (const std::uint32_t c : t.procs[r].children) {
      ASSERT_TRUE(t.procs[c].is_leaf());
      EXPECT_EQ(t.procs[c].daemon.value(), next_daemon);
      ++next_daemon;
    }
  }
  EXPECT_EQ(next_daemon, 32u);
}

TEST(Topology, ShardedDeepTreePutsReducersAboveCommLevel) {
  const auto m = machine::bgl();
  const auto layout = layout_of(m, 4096);  // 64 daemons
  const auto topo =
      build_topology(m, layout, TopologySpec::bgl(2).with_shards(4));
  ASSERT_TRUE(topo.is_ok());
  const TbonTopology& t = topo.value();
  ASSERT_EQ(t.reducers.size(), 4u);
  EXPECT_EQ(t.front_end().children.size(), 4u);
  EXPECT_EQ(t.depth, 3u);  // FE + reducers + the BG/L comm level
  // Reducer children are the spec's own comm processes, not leaves.
  for (const std::uint32_t r : t.reducers) {
    for (const std::uint32_t c : t.procs[r].children) {
      EXPECT_FALSE(t.procs[c].is_leaf());
    }
  }
  check_tree_invariants(t, 64);
}

TEST(Topology, ShardTaskCountsCoverTheJob) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);
  const auto topo =
      build_topology(m, layout, TopologySpec::flat().with_shards(4)).value();
  const std::vector<std::uint64_t> slices = shard_task_counts(topo, layout);
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(std::accumulate(slices.begin(), slices.end(), std::uint64_t{0}),
            256u);
  // Balanced contiguous split: 8 daemons x 8 tasks each.
  for (const std::uint64_t s : slices) EXPECT_EQ(s, 64u);
  // Unsharded trees have no slices.
  const auto flat =
      build_topology(m, layout, TopologySpec::flat()).value();
  EXPECT_TRUE(shard_task_counts(flat, layout).empty());
}

TEST(Topology, ZeroShardsRejectedUpFront) {
  const auto m = machine::atlas();
  TopologySpec spec = TopologySpec::flat().with_shards(0);
  const auto widths = derive_level_widths(m, spec, 32);
  EXPECT_EQ(widths.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(build_topology(m, layout_of(m, 256), spec).is_ok());
}

TEST(Topology, MoreShardsThanFirstLevelWidthRejected) {
  // bgl(2) at 64 daemons derives an 8-wide comm level; 16 reducers above it
  // would own no shard.
  const auto m = machine::bgl();
  const auto result = build_topology(m, layout_of(m, 4096),
                                     TopologySpec::bgl(2).with_shards(16));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Topology, ReducersCountAgainstCommSlots) {
  // BG/L login capacity is 14 x 24 = 336: an explicit 334-wide level plus 4
  // reducers does not fit.
  const auto m = machine::bgl();
  TopologySpec spec;
  spec.depth = 2;
  spec.level_widths = {334};
  spec.fe_shards = 4;
  const auto widths = derive_level_widths(m, spec, 1024);
  EXPECT_EQ(widths.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Reducer trees: K > kShardCombineFanIn grows combiner levels under the FE.

TEST(Topology, ReducerTreeInsertsCombinerLevels) {
  // K = 64 on the petascale preset: 8 combiners fold the 64 shard payloads,
  // so no merge root fans in more than kShardCombineFanIn shard streams.
  const auto m = machine::petascale();
  machine::JobConfig job;
  job.num_tasks = 131072;
  job.mode = machine::BglMode::kVirtualNode;
  const auto layout = machine::layout_daemons(m, job).value();  // 256 daemons
  const auto topo =
      build_topology(m, layout, TopologySpec::flat().with_shards(64));
  ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();
  const TbonTopology& t = topo.value();
  EXPECT_TRUE(t.sharded());
  ASSERT_EQ(t.reducers.size(), 64u);
  ASSERT_EQ(t.combiners.size(), 8u);
  EXPECT_EQ(t.num_shard_procs(), 72u);
  EXPECT_EQ(t.num_comm_procs(), 72u);
  EXPECT_EQ(t.depth, 3u);  // FE + combiner level + reducer level
  EXPECT_EQ(t.front_end().children.size(), 8u);
  for (const std::uint32_t c : t.combiners) {
    EXPECT_EQ(t.procs[c].level, 1u);
    EXPECT_LE(t.procs[c].children.size(), kShardCombineFanIn);
    for (const std::uint32_t r : t.procs[c].children) {
      EXPECT_FALSE(t.procs[r].is_leaf());  // combiners feed off reducers
    }
  }
  // Reducers still own contiguous daemon ranges covering the whole job.
  std::uint32_t next_daemon = 0;
  for (const std::uint32_t r : t.reducers) {
    EXPECT_EQ(t.procs[r].level, 2u);
    for (const std::uint32_t c : t.procs[r].children) {
      ASSERT_TRUE(t.procs[c].is_leaf());
      EXPECT_EQ(t.procs[c].daemon.value(), next_daemon);
      ++next_daemon;
    }
  }
  EXPECT_EQ(next_daemon, layout.num_daemons);
  check_tree_invariants(t, layout.num_daemons);
  // Every merge root is within the machine's connection ceiling.
  EXPECT_TRUE(connection_viability(t, m.max_tool_connections).is_ok());
}

TEST(Topology, ReducerTreeFanInNeverExceedsTheConnectionLimit) {
  // A tiny connection ceiling tightens the combine fan-in below 8: K = 16
  // over limit 2 folds through three binary combiner levels.
  auto m = machine::petascale();
  m.max_tool_connections = 2;
  const auto levels = derive_levels(m, TopologySpec::flat().with_shards(16),
                                    /*num_daemons=*/256);
  ASSERT_TRUE(levels.is_ok());
  EXPECT_EQ(levels.value().widths,
            (std::vector<std::uint32_t>{2, 4, 8, 16}));
  EXPECT_EQ(levels.value().shard_levels, 4u);
  EXPECT_EQ(levels.value().num_reducers(), 16u);

  machine::JobConfig job;
  job.num_tasks = 131072;
  job.mode = machine::BglMode::kVirtualNode;
  const auto layout = machine::layout_daemons(m, job).value();
  const auto topo =
      build_topology(m, layout, TopologySpec::flat().with_shards(16));
  ASSERT_TRUE(topo.is_ok());
  // The combiner levels honor the tightened limit; the reducers themselves
  // still fan out to their daemon shards (that is what the rx-buffer and
  // connection checks on reducers are for).
  for (const std::uint32_t c : topo.value().combiners) {
    EXPECT_LE(topo.value().procs[c].children.size(), 2u);
  }
  EXPECT_EQ(topo.value().front_end().children.size(), 2u);
}

TEST(Topology, SmallShardCountsReproduceTheFlatReducerLayoutByteForByte) {
  // K <= kShardCombineFanIn must keep the PR-4 layout: reducers directly
  // under the FE (no combiners), placed by the machine's comm rule — the
  // spare compute allocation packed one proc per core on Atlas, round-robin
  // over the login tier on BG/L — and the spec name unchanged.
  {
    const auto m = machine::atlas();
    const auto layout = layout_of(m, 256);  // 32 daemons on nodes 0..31
    const auto t =
        build_topology(m, layout, TopologySpec::flat().with_shards(8)).value();
    EXPECT_TRUE(t.combiners.empty());
    ASSERT_EQ(t.reducers.size(), 8u);
    EXPECT_EQ(t.depth, 2u);
    EXPECT_EQ(t.front_end().children.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
      const auto& proc = t.procs[t.reducers[i]];
      EXPECT_EQ(proc.level, 1u);
      // Comm rule on Atlas: core-packed onto the first spare compute node.
      EXPECT_EQ(proc.host,
                m.compute_node(32 + i / m.cores_per_compute_node));
    }
  }
  {
    const auto m = machine::bgl();
    const auto layout = layout_of(m, 4096);  // 64 daemons
    const auto t =
        build_topology(m, layout, TopologySpec::flat().with_shards(4)).value();
    EXPECT_TRUE(t.combiners.empty());
    ASSERT_EQ(t.reducers.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
      // Comm rule on BG/L: round-robin over the 14 login nodes.
      EXPECT_EQ(t.procs[t.reducers[i]].host,
                m.login_node(i % m.login_nodes));
    }
  }
  EXPECT_EQ(TopologySpec::flat().with_shards(4).name(), "1-deep x4shard");
}

// --------------------------------------------------------------------------
// Reducer placement: pack vs spread host assignment.

TEST(Topology, PackPlacementFillsLoginNodesFirst) {
  const auto m = machine::bgl();  // 14 logins x 24 slots
  const auto layout = layout_of(m, 16384);  // 256 daemons
  const auto spec = TopologySpec::flat().with_shards(64).with_placement(
      ReducerPlacement::kPack);
  const auto t = build_topology(m, layout, spec).value();
  ASSERT_EQ(t.num_shard_procs(), 72u);  // 8 combiners + 64 reducers
  // Shard procs fill login 0's 24 slots, then login 1, then login 2.
  EXPECT_EQ(shard_spawn_hosts(t), 3u);
  std::uint32_t seq = 0;
  for (const std::uint32_t c : t.combiners) {
    EXPECT_EQ(t.procs[c].host,
              m.login_node(seq++ / m.max_comm_procs_per_login));
  }
  for (const std::uint32_t r : t.reducers) {
    EXPECT_EQ(t.procs[r].host,
              m.login_node(seq++ / m.max_comm_procs_per_login));
  }
}

TEST(Topology, SpreadPlacementTakesWholeComputeNodesOnClusters) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // daemons on nodes 0..31
  TopologySpec spec;
  spec.depth = 2;
  spec.level_widths = {16};  // one comm proc under each reducer
  spec = spec.with_shards(16).with_placement(ReducerPlacement::kSpread);
  const auto t = build_topology(m, layout, spec).value();
  // Shard machinery: 2 combiners + 16 reducers, one spare node each.
  ASSERT_EQ(t.num_shard_procs(), 18u);
  EXPECT_EQ(shard_spawn_hosts(t), 18u);
  std::uint32_t node = 32;
  for (const std::uint32_t c : t.combiners) {
    EXPECT_EQ(t.procs[c].host, m.compute_node(node++));
  }
  for (const std::uint32_t r : t.reducers) {
    EXPECT_EQ(t.procs[r].host, m.compute_node(node++));
  }
  // The spec's own comm level packs per core *after* the spread nodes.
  for (const auto& p : t.procs) {
    if (!p.is_leaf() && p.parent >= 0 && p.level == 3) {
      EXPECT_GE(machine::node_index(p.host), 32u + 18u);
    }
  }
  check_tree_invariants(t, 32);
}

TEST(Topology, SpreadPlacementFailsWhenTheAllocationIsTight) {
  // 1,120 daemons leave 32 spare Atlas nodes: 36 shard procs (4 combiners +
  // 32 reducers) cannot take a whole node each, but pack fits them onto the
  // spare cores easily.
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 8960);  // 1120 daemons
  const auto spec = TopologySpec::flat().with_shards(32);
  const auto spread = build_topology(
      m, layout, spec.with_placement(ReducerPlacement::kSpread));
  EXPECT_EQ(spread.status().code(), StatusCode::kResourceExhausted);
  const auto pack =
      build_topology(m, layout, spec.with_placement(ReducerPlacement::kPack));
  ASSERT_TRUE(pack.is_ok()) << pack.status().to_string();
  EXPECT_LE(shard_spawn_hosts(pack.value()), 5u);
}

TEST(Topology, PackNeverOvercommitsALoginNodePastItsSlotLimit) {
  // kPack fills hosts to their helper-slot maximum; the spec's own comm
  // level must then land on the *least-loaded* logins rather than blindly
  // round-robining onto the already-full ones — the per-host limit holds
  // for every placement mix, not just in aggregate.
  auto m = machine::bgl();
  m.max_comm_procs_per_login = 4;  // capacity 14 x 4 = 56
  const auto layout = layout_of(m, 16384);  // 256 daemons
  TopologySpec spec;
  spec.depth = 2;
  spec.level_widths = {16};  // one comm proc under each reducer
  spec = spec.with_shards(16).with_placement(ReducerPlacement::kPack);
  const auto t = build_topology(m, layout, spec).value();
  ASSERT_EQ(t.num_shard_procs(), 18u);  // 2 combiners + 16 reducers
  std::vector<std::uint32_t> per_login(m.login_nodes, 0);
  for (const auto& p : t.procs) {
    if (p.is_leaf() || p.parent < 0) continue;
    ASSERT_EQ(machine::node_role(p.host), machine::NodeRole::kLogin);
    ++per_login[machine::node_index(p.host)];
  }
  for (const std::uint32_t load : per_login) {
    EXPECT_LE(load, m.max_comm_procs_per_login);
  }
}

TEST(Topology, PlacementNamesAreDescriptive) {
  EXPECT_EQ(TopologySpec::flat().with_shards(64)
                .with_placement(ReducerPlacement::kSpread).name(),
            "1-deep x64shard/spread");
  EXPECT_EQ(TopologySpec::flat().with_shards(16)
                .with_placement(ReducerPlacement::kPack).name(),
            "1-deep x16shard/pack");
  // The comm-like default keeps the historical name.
  EXPECT_EQ(TopologySpec::flat().with_shards(4)
                .with_placement(ReducerPlacement::kCommLike).name(),
            "1-deep x4shard");
}

TEST(Topology, ShardTaskCountsCoverTheJobThroughTheReducerTree) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 512);  // 64 daemons
  const auto topo =
      build_topology(m, layout, TopologySpec::flat().with_shards(16)).value();
  ASSERT_EQ(topo.reducers.size(), 16u);
  ASSERT_EQ(topo.combiners.size(), 2u);
  const std::vector<std::uint64_t> slices = shard_task_counts(topo, layout);
  ASSERT_EQ(slices.size(), 16u);
  EXPECT_EQ(std::accumulate(slices.begin(), slices.end(), std::uint64_t{0}),
            512u);
  for (const std::uint64_t s : slices) EXPECT_EQ(s, 32u);  // 4 daemons x 8
  EXPECT_EQ(largest_shard_task_count(topo, layout), 32u);
}

TEST(Topology, ConnectionViabilityBoundaryIsExact) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 256);  // 32 daemons
  const auto flat = build_topology(m, layout, TopologySpec::flat()).value();
  EXPECT_TRUE(connection_viability(flat, 33).is_ok());
  EXPECT_TRUE(connection_viability(flat, 32).is_ok());  // exactly the limit
  EXPECT_EQ(connection_viability(flat, 31).code(),
            StatusCode::kResourceExhausted);
  // Sharding relieves the front end, but each reducer must survive its own
  // shard: 4 reducers x 8 daemons.
  const auto sharded =
      build_topology(m, layout, TopologySpec::flat().with_shards(4)).value();
  EXPECT_TRUE(connection_viability(sharded, 8).is_ok());
  EXPECT_EQ(connection_viability(sharded, 7).code(),
            StatusCode::kResourceExhausted);
}

TEST(Topology, ConnectTimeGrowsWithFanout) {
  const auto m = machine::atlas();
  const machine::LaunchCosts costs;
  const auto flat = build_topology(m, layout_of(m, 4096),
                                   TopologySpec::flat()).value();
  const auto deep = build_topology(m, layout_of(m, 4096),
                                   TopologySpec::balanced(2)).value();
  EXPECT_GT(connect_time(flat, costs), connect_time(deep, costs));
}

// --------------------------------------------------------------------------
// Reduction engine, with a toy integer payload.

struct SumPayload {
  std::uint64_t sum = 0;
  std::uint32_t contributions = 0;
};

ReduceOps<SumPayload> sum_ops() {
  ReduceOps<SumPayload> ops;
  ops.merge_cpu = [](const SumPayload&) { return SimTime{100}; };
  ops.merge_into = [](SumPayload& acc, SumPayload&& child) {
    acc.sum += child.sum;
    acc.contributions += child.contributions;
  };
  ops.wire_bytes = [](const SumPayload&) { return std::uint64_t{64}; };
  ops.codec_cost = [](std::uint64_t) { return SimTime{50}; };
  return ops;
}

class ReductionCorrectness : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReductionCorrectness, SumsAllLeavesExactlyOnce) {
  const std::uint32_t tasks = GetParam();
  const auto m = machine::atlas();
  const auto layout = layout_of(m, tasks);
  const auto topo =
      build_topology(m, layout, TopologySpec::balanced(2)).value();

  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  Reduction<SumPayload> reduction(simulator, network, topo, sum_ops());

  std::vector<SumPayload> leaves(layout.num_daemons);
  std::uint64_t expected = 0;
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    leaves[d] = {static_cast<std::uint64_t>(d) * d + 1, 1};
    expected += leaves[d].sum;
  }

  std::optional<ReduceResult<SumPayload>> result;
  reduction.start(std::move(leaves),
                  [&result](ReduceResult<SumPayload> r) { result = std::move(r); });
  simulator.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->payload.sum, expected);
  EXPECT_EQ(result->payload.contributions, layout.num_daemons);
  EXPECT_GT(result->finished_at, 0u);
  EXPECT_EQ(result->messages, topo.procs.size() - 1);  // one msg per edge
}

INSTANTIATE_TEST_SUITE_P(Scales, ReductionCorrectness,
                         ::testing::Values(64u, 256u, 1024u, 4096u));

TEST(Reduction, DeeperTreesReduceFrontEndWork) {
  // With expensive per-packet codec cost, the flat tree's front end pays for
  // every daemon; the deep tree amortizes across comm processes.
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 4096);

  const auto run_depth = [&](std::uint32_t depth) {
    const auto topo = build_topology(
        m, layout, depth == 1 ? TopologySpec::flat() : TopologySpec::balanced(depth))
        .value();
    sim::Simulator simulator;
    net::Network network(simulator, net::build_switch_graph(m));
    ReduceOps<SumPayload> ops = sum_ops();
    ops.codec_cost = [](std::uint64_t) { return SimTime{1 * kMillisecond}; };
    Reduction<SumPayload> reduction(simulator, network, topo, ops);
    std::vector<SumPayload> leaves(layout.num_daemons, SumPayload{1, 1});
    SimTime finish = 0;
    reduction.start(std::move(leaves),
                    [&finish](ReduceResult<SumPayload> r) { finish = r.finished_at; });
    simulator.run();
    return finish;
  };

  EXPECT_LT(run_depth(2), run_depth(1));
}

TEST(Reduction, PayloadCountMismatchThrows) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 64);
  const auto topo = build_topology(m, layout, TopologySpec::flat()).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  Reduction<SumPayload> reduction(simulator, network, topo, sum_ops());
  std::vector<SumPayload> wrong(3);
  EXPECT_THROW(reduction.start(std::move(wrong), nullptr), std::logic_error);
}

TEST(Multicast, ReachesEveryLeafOnce) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 1024);
  const auto topo = build_topology(m, layout, TopologySpec::balanced(3)).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  SimTime finished = 0;
  bool fired = false;
  multicast(simulator, network, topo, 64, [&](SimTime t) {
    finished = t;
    fired = true;
  });
  simulator.run();
  EXPECT_TRUE(fired);
  EXPECT_GT(finished, 0u);
  // One message per edge.
  EXPECT_EQ(network.total_messages(), topo.procs.size() - 1);
}

TEST(Multicast, ZeroLeafTopologyCompletesAtCurrentTimeNotZero) {
  // Regression: with no leaves to reach, the completion callback used to
  // report time 0 instead of the simulator's current time.
  TbonTopology topo;
  TbonTopology::Proc fe;
  fe.host = machine::atlas().compute_node(0);
  topo.procs.push_back(fe);

  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(machine::atlas()));
  simulator.schedule_in(5 * kSecond, []() {});
  simulator.run();
  ASSERT_EQ(simulator.now(), 5 * kSecond);

  SimTime finished = 0;
  bool fired = false;
  multicast(simulator, network, topo, 64, [&](SimTime t) {
    finished = t;
    fired = true;
  });
  simulator.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(finished, 5 * kSecond);
}

TEST(Multicast, LeafServingSeveralDaemonsCountsOnce) {
  // Regression: completion used to wait for one decrement per *daemon*; a
  // leaf proc serving several daemons receives the message once, so the
  // multicast never completed on such trees.
  const auto m = machine::atlas();
  TbonTopology topo;
  TbonTopology::Proc fe;
  fe.host = m.compute_node(0);
  fe.children = {1};
  topo.procs.push_back(fe);
  TbonTopology::Proc leaf;
  leaf.host = m.compute_node(1);
  leaf.parent = 0;
  leaf.level = 1;
  leaf.daemon = DaemonId(0);
  topo.procs.push_back(leaf);
  topo.leaf_of_daemon = {1, 1};  // two daemons share the one leaf proc

  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  bool fired = false;
  multicast(simulator, network, topo, 64, [&](SimTime) { fired = true; });
  simulator.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(network.total_messages(), 1u);
}

TEST(SampleRequestWire, RoundTripsThroughTheVersionedEnvelope) {
  SampleRequest request;
  request.cursor = 7;
  request.count = 12;
  request.interval = 250 * kMillisecond;
  ByteSink sink;
  request.encode(sink);
  ASSERT_EQ(sink.size(), SampleRequest::wire_bytes());

  ByteSource source(sink.bytes());
  const auto decoded = SampleRequest::decode(source);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().cursor, 7u);
  EXPECT_EQ(decoded.value().count, 12u);
  EXPECT_EQ(decoded.value().interval, 250 * kMillisecond);
}

TEST(SampleRequestWire, TruncationAndSkewDecodeDistinctly) {
  SampleRequest request;
  request.count = 4;
  ByteSink sink;
  request.encode(sink);
  const auto bytes = sink.take();

  // Every proper prefix is truncation, not UB and not version skew.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteSource source(std::span(bytes.data(), cut));
    const auto decoded = SampleRequest::decode(source);
    ASSERT_FALSE(decoded.is_ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }

  // A bumped leading version byte is skew, reported as FAILED_PRECONDITION
  // so an old daemon meeting a new front end fails loudly.
  auto skewed = bytes;
  skewed[0] = static_cast<std::uint8_t>(skewed[0] + 1);
  ByteSource source(skewed);
  const auto decoded = SampleRequest::decode(source);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SampleRequestWire, ZeroSampleRequestRejected) {
  SampleRequest request;
  request.count = 0;
  ByteSink sink;
  request.encode(sink);
  ByteSource source(sink.bytes());
  const auto decoded = SampleRequest::decode(source);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaHeaderWire, RoundTripsBothAckAndChangedForms) {
  for (const bool changed : {false, true}) {
    DeltaHeader header;
    header.cursor = 3;
    header.changed = changed;
    header.signature = 0xfeedfacecafebeefull;
    ByteSink sink;
    header.encode(sink);
    ASSERT_EQ(sink.size(), kDeltaHeaderBytes);

    ByteSource source(sink.bytes());
    const auto decoded = DeltaHeader::decode(source);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value().cursor, 3u);
    EXPECT_EQ(decoded.value().changed, changed);
    EXPECT_EQ(decoded.value().signature, 0xfeedfacecafebeefull);
  }
}

TEST(DeltaHeaderWire, CorruptChangedFlagRejected) {
  DeltaHeader header;
  ByteSink sink;
  header.encode(sink);
  auto bytes = sink.take();
  bytes[5] = 2;  // version u8 + cursor u32, then the changed flag
  ByteSource source(bytes);
  const auto decoded = DeltaHeader::decode(source);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(Broadcast, ArmsEveryLeafAndChargesControlCpu) {
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 1024);
  const auto topo =
      build_topology(m, layout, TopologySpec::balanced(2)).value();
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  const machine::StreamCosts costs;

  SampleRequest request;
  request.count = 5;
  std::vector<std::uint32_t> armed;
  BroadcastReport report;
  bool done_fired = false;
  broadcast(simulator, network, topo, costs, request,
            [&](std::uint32_t leaf, SimTime at) {
              armed.push_back(leaf);
              // Every leaf arms after the decode CPU of each proc on its
              // root-to-leaf path (FE + comm + leaf on a 2-deep tree).
              EXPECT_GE(at, 3 * machine::control_packet_cost(costs));
            },
            [&](BroadcastReport r) {
              done_fired = true;
              report = r;
            });
  simulator.run();

  ASSERT_TRUE(done_fired);
  EXPECT_EQ(armed.size(), layout.num_daemons);
  // One message per tree edge, every one the envelope's exact wire size.
  EXPECT_EQ(report.messages, topo.procs.size() - 1);
  EXPECT_EQ(report.bytes, (topo.procs.size() - 1) * SampleRequest::wire_bytes());
  EXPECT_EQ(network.total_messages(), topo.procs.size() - 1);
  EXPECT_GT(report.finished_at, 0u);
}

TEST(Broadcast, DeeperTreesArmLater) {
  // Each added level costs one more decode + hop before the leaves arm.
  const auto m = machine::atlas();
  const auto layout = layout_of(m, 1024);
  sim::Simulator simulator;
  net::Network network(simulator, net::build_switch_graph(m));
  const machine::StreamCosts costs;
  SampleRequest request;

  std::vector<SimTime> finished;
  for (const std::uint32_t depth : {1u, 3u}) {
    const auto topo =
        build_topology(m, layout, TopologySpec::balanced(depth)).value();
    broadcast(simulator, network, topo, costs, request, nullptr,
              [&](BroadcastReport r) { finished.push_back(r.finished_at); });
    const SimTime started = simulator.now();
    simulator.run();
    finished.back() -= started;
  }
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_GT(finished[1], finished[0]);
}

TEST(TopologySpecNames, AreDescriptive) {
  EXPECT_EQ(TopologySpec::flat().name(), "1-deep");
  EXPECT_EQ(TopologySpec::balanced(2).name(), "2-deep");
  EXPECT_EQ(TopologySpec::bgl(3, 24).name(), "3-deep(24)");
  EXPECT_EQ(TopologySpec::flat().with_shards(4).name(), "1-deep x4shard");
  EXPECT_EQ(TopologySpec::balanced(2).with_shards(2).name(),
            "2-deep x2shard");
}

}  // namespace
}  // namespace petastat::tbon
