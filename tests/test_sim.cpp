// Unit tests for the discrete-event simulator and queueing resources.
#include <gtest/gtest.h>

#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace petastat::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&]() { order.push_back(3); });
  s.schedule_at(10, [&]() { order.push_back(1); });
  s.schedule_at(20, [&]() { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i]() { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CallbacksCanScheduleMore) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&]() {
    ++fired;
    s.schedule_in(5, [&]() { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 6u);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator s;
  s.schedule_at(10, []() {});
  s.step();
  EXPECT_THROW(s.schedule_at(5, []() {}), std::logic_error);
}

TEST(Simulator, EmptyCallbackThrows) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1, EventCallback{}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(10, [&]() { ++fired; });
  s.schedule_at(20, [&]() { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel is reported
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(Simulator, CancelUnknownIdIsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(0));
  EXPECT_FALSE(s.cancel(999));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) {
    s.schedule_at(t, [&fired, t]() { fired.push_back(t); });
  }
  EXPECT_EQ(s.run_until(50), 5u);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(s.pending(), 5u);
  s.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator s;
  s.schedule_at(10, []() {});
  s.schedule_at(20, []() {});
  s.step();
  s.reset();
  EXPECT_EQ(s.now(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator s;
  const EventId id = s.schedule_at(10, []() {});
  s.schedule_at(20, []() {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
}

// --------------------------------------------------------------------------
// FifoServer

TEST(FifoServer, SingleServerSerializesRequests) {
  Simulator s;
  FifoServer server(s, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    server.submit(100, [&s, &completions]() { completions.push_back(s.now()); });
  }
  s.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300, 400}));
}

TEST(FifoServer, KServersRunKAtOnce) {
  Simulator s;
  FifoServer server(s, 4);
  std::vector<SimTime> completions;
  for (int i = 0; i < 8; ++i) {
    server.submit(100, [&s, &completions]() { completions.push_back(s.now()); });
  }
  s.run();
  // 4 at t=100, 4 at t=200.
  EXPECT_EQ(std::count(completions.begin(), completions.end(), 100u), 4);
  EXPECT_EQ(std::count(completions.begin(), completions.end(), 200u), 4);
}

class FifoServerThroughput
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(FifoServerThroughput, NRequestsOnKServers) {
  const auto [servers, requests] = GetParam();
  Simulator s;
  FifoServer server(s, servers);
  SimTime last = 0;
  for (unsigned i = 0; i < requests; ++i) {
    last = std::max(last, server.submit(50, EventCallback{}));
  }
  s.run();
  const SimTime expected = 50ull * ((requests + servers - 1) / servers);
  EXPECT_EQ(last, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FifoServerThroughput,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 7u, 64u, 513u)));

TEST(FifoServer, StatsTrackWaitAndBacklog) {
  Simulator s;
  FifoServer server(s, 1);
  server.submit(100, EventCallback{});
  server.submit(100, EventCallback{});
  server.submit(100, EventCallback{});
  s.run();
  EXPECT_EQ(server.stats().requests, 3u);
  EXPECT_EQ(server.stats().busy_time, 300u);
  EXPECT_EQ(server.stats().total_wait, 0u + 100u + 200u);
  EXPECT_EQ(server.stats().max_wait, 200u);
  EXPECT_EQ(server.stats().peak_backlog, 3u);
  EXPECT_EQ(server.outstanding(), 0u);
}

TEST(FifoServer, ProbeHasNoSideEffects) {
  Simulator s;
  FifoServer server(s, 1);
  EXPECT_EQ(server.probe(100), 100u);
  EXPECT_EQ(server.probe(100), 100u);  // unchanged
  server.submit(100, EventCallback{});
  EXPECT_EQ(server.probe(100), 200u);
}

TEST(FifoServer, ResetRestoresIdle) {
  Simulator s;
  FifoServer server(s, 2);
  server.submit(100, EventCallback{});
  s.run();
  server.reset();
  EXPECT_EQ(server.stats().requests, 0u);
  EXPECT_EQ(server.probe(10), s.now() + 10);
}

// --------------------------------------------------------------------------
// SerialDevice

TEST(SerialDevice, ReservationsChain) {
  Simulator s;
  SerialDevice device(s);
  EXPECT_EQ(device.reserve(0, 10), 10u);
  EXPECT_EQ(device.reserve(0, 10), 20u);   // queued behind the first
  EXPECT_EQ(device.reserve(50, 10), 60u);  // idle gap honored
  EXPECT_EQ(device.busy_time(), 30u);
}

TEST(SerialDevice, ReserveNeverStartsBeforeNow) {
  Simulator s;
  s.schedule_at(100, []() {});
  s.run();
  SerialDevice device(s);
  EXPECT_EQ(device.reserve(0, 10), 110u);
}

}  // namespace
}  // namespace petastat::sim
