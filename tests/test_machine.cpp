// Unit tests for the machine model: presets, node-id encoding, daemon
// layouts in CO/VN modes, and host mapping.
#include <gtest/gtest.h>

#include "machine/cost_model.hpp"
#include "machine/machine.hpp"

namespace petastat::machine {
namespace {

TEST(NodeId, EncodingRoundtrips) {
  for (const NodeRole role : {NodeRole::kFrontEnd, NodeRole::kLogin,
                              NodeRole::kIo, NodeRole::kCompute}) {
    for (const std::uint32_t index : {0u, 1u, 1663u, 106495u, 0x0ffffffeu}) {
      const NodeId id = make_node(role, index);
      EXPECT_EQ(node_role(id), role);
      EXPECT_EQ(node_index(id), index);
    }
  }
}

TEST(NodeId, DistinctAcrossRoles) {
  EXPECT_NE(make_node(NodeRole::kIo, 5), make_node(NodeRole::kCompute, 5));
}

TEST(Presets, AtlasMatchesPaper) {
  const MachineConfig m = atlas();
  EXPECT_EQ(m.compute_nodes, 1152u);
  EXPECT_EQ(m.cores_per_compute_node, 8u);
  EXPECT_EQ(m.daemon_placement, DaemonPlacement::kPerComputeNode);
  EXPECT_TRUE(m.daemon_shares_cpu);
  EXPECT_FALSE(m.static_binary);
  EXPECT_TRUE(m.supports_rsh);
  EXPECT_FALSE(m.supports_ssh);  // Sec. IV-A: no sshd on compute nodes
}

TEST(Presets, BglMatchesPaper) {
  const MachineConfig m = bgl();
  EXPECT_EQ(m.compute_nodes, 106496u);
  EXPECT_EQ(m.cores_per_compute_node, 2u);
  EXPECT_EQ(m.io_nodes, 1664u);  // 1 per 64 compute nodes
  EXPECT_EQ(m.compute_nodes_per_io_node, 64u);
  EXPECT_EQ(m.login_nodes, 14u);
  EXPECT_TRUE(m.static_binary);
  EXPECT_FALSE(m.daemon_shares_cpu);
  EXPECT_EQ(m.compute_nodes / m.compute_nodes_per_io_node, m.io_nodes);
}

TEST(Presets, PetascaleHasMillionCores) {
  const MachineConfig m = petascale();
  EXPECT_EQ(static_cast<std::uint64_t>(m.compute_nodes) *
                m.cores_per_compute_node,
            1048576ull);
}

TEST(Layout, AtlasPacksEightTasksPerDaemon) {
  const auto layout = layout_daemons(atlas(), {.num_tasks = 1024});
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout.value().num_daemons, 128u);
  EXPECT_EQ(layout.value().tasks_per_daemon, 8u);
}

TEST(Layout, BglCoprocessorSixtyFourPerDaemon) {
  JobConfig job;
  job.num_tasks = 16384;
  job.mode = BglMode::kCoprocessor;
  const auto layout = layout_daemons(bgl(), job);
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout.value().tasks_per_daemon, 64u);
  EXPECT_EQ(layout.value().num_daemons, 256u);  // the Fig. 5 failure point
}

TEST(Layout, BglVirtualNode128PerDaemon) {
  JobConfig job;
  job.num_tasks = 212992;
  job.mode = BglMode::kVirtualNode;
  const auto layout = layout_daemons(bgl(), job);
  ASSERT_TRUE(layout.is_ok());
  EXPECT_EQ(layout.value().tasks_per_daemon, 128u);
  EXPECT_EQ(layout.value().num_daemons, 1664u);  // the paper's 1664 daemons
}

TEST(Layout, RejectsOversizedJobs) {
  const auto too_big = layout_daemons(atlas(), {.num_tasks = 10000});
  EXPECT_FALSE(too_big.is_ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);

  JobConfig job;
  job.num_tasks = 300000;
  job.mode = BglMode::kVirtualNode;
  EXPECT_FALSE(layout_daemons(bgl(), job).is_ok());
}

TEST(Layout, RejectsEmptyJob) {
  EXPECT_EQ(layout_daemons(atlas(), {.num_tasks = 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Layout, LastDaemonMayBePartial) {
  const auto layout = layout_daemons(atlas(), {.num_tasks = 100});
  ASSERT_TRUE(layout.is_ok());
  const DaemonLayout& l = layout.value();
  EXPECT_EQ(l.num_daemons, 13u);
  EXPECT_EQ(l.tasks_of(DaemonId(0)), 8u);
  EXPECT_EQ(l.tasks_of(DaemonId(12)), 4u);
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < l.num_daemons; ++d) total += l.tasks_of(DaemonId(d));
  EXPECT_EQ(total, 100u);
}

TEST(Layout, DaemonOfTaskInverse) {
  const auto layout = layout_daemons(atlas(), {.num_tasks = 1024}).value();
  for (std::uint32_t t = 0; t < 1024; t += 7) {
    const DaemonId d = layout.daemon_of_task(TaskId(t));
    const std::uint32_t first = layout.first_task_of(d);
    EXPECT_GE(t, first);
    EXPECT_LT(t, first + layout.tasks_of(d));
  }
}

TEST(DaemonHost, FollowsPlacementPolicy) {
  EXPECT_EQ(node_role(daemon_host(atlas(), DaemonId(3))), NodeRole::kCompute);
  EXPECT_EQ(node_role(daemon_host(bgl(), DaemonId(3))), NodeRole::kIo);
  EXPECT_EQ(node_index(daemon_host(bgl(), DaemonId(42))), 42u);
}

class TasksPerNode
    : public ::testing::TestWithParam<std::tuple<BglMode, std::uint32_t>> {};

TEST_P(TasksPerNode, BglModesMatchPaper) {
  const auto [mode, expected] = GetParam();
  EXPECT_EQ(tasks_per_compute_node(bgl(), mode), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TasksPerNode,
    ::testing::Values(std::make_tuple(BglMode::kCoprocessor, 1u),
                      std::make_tuple(BglMode::kVirtualNode, 2u)));

TEST(CostModel, BglIsSlowerAtWalkingAndFiltering) {
  const CostModel atlas_costs = default_cost_model(atlas());
  const CostModel bgl_costs = default_cost_model(bgl());
  EXPECT_GT(bgl_costs.sampling.walk_per_frame, atlas_costs.sampling.walk_per_frame);
  EXPECT_GT(bgl_costs.merge.per_packet_cpu, atlas_costs.merge.per_packet_cpu);
}

TEST(CostModel, RemapMatchesPaperAnchor) {
  // 0.66 s at 208K tasks => ~3.1 us per task.
  const CostModel c = default_cost_model(bgl());
  const double remap_208k = to_seconds(c.merge.remap_per_task) * 212992;
  EXPECT_NEAR(remap_208k, 0.66, 0.05);
}

}  // namespace
}  // namespace petastat::machine
