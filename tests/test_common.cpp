// Unit tests for common: strings, stats, RNG, serializer, status.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/serializer.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/types.hpp"

namespace petastat {
namespace {

// --------------------------------------------------------------------------
// strings

TEST(Strings, FormatRangesBasic) {
  const std::vector<std::uint32_t> v{0, 3, 4, 5, 6, 7};
  EXPECT_EQ(format_ranges(v), "0,3-7");
}

TEST(Strings, FormatRangesSingletons) {
  const std::vector<std::uint32_t> v{1, 5, 9};
  EXPECT_EQ(format_ranges(v), "1,5,9");
}

TEST(Strings, FormatRangesEmpty) {
  EXPECT_EQ(format_ranges(std::vector<std::uint32_t>{}), "");
}

TEST(Strings, FormatRangesTruncates) {
  std::vector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < 40; i += 2) v.push_back(i);
  const std::string out = format_ranges(v, 3);
  EXPECT_EQ(out, "0,2,4,...");
}

TEST(Strings, FormatEdgeLabelMatchesPaperSyntax) {
  std::vector<std::uint32_t> v{0};
  for (std::uint32_t i = 3; i <= 1023; ++i) v.push_back(i);
  EXPECT_EQ(format_edge_label(v), "1022:[0,3-1023]");
}

TEST(Strings, ParseRangesInvertsFormat) {
  const std::vector<std::uint32_t> v{0, 1, 2, 7, 9, 10, 11, 100};
  EXPECT_EQ(parse_ranges(format_ranges(v, 100)), v);
}

TEST(Strings, ParseRangesIgnoresMalformed) {
  EXPECT_EQ(parse_ranges("abc,5,9-7,3"), (std::vector<std::uint32_t>{5, 3}));
}

TEST(Strings, FormatDurationUnits) {
  EXPECT_EQ(format_duration(2 * kSecond), "2.000 s");
  EXPECT_EQ(format_duration(5 * kMillisecond), "5.000 ms");
  EXPECT_EQ(format_duration(7 * kMicrosecond), "7.000 us");
  EXPECT_EQ(format_duration(42), "42 ns");
}

TEST(Strings, FormatBytesUnits) {
  EXPECT_EQ(format_bytes(17), "17 B");
  EXPECT_EQ(format_bytes(10 * 1024), "10.0 KB");
  EXPECT_EQ(format_bytes(4 * 1024 * 1024), "4.00 MB");
}

TEST(Strings, SecondsConversionRoundtrip) {
  EXPECT_EQ(seconds(1.5), 1'500'000'000ull);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(0.25)), 0.25);
  EXPECT_EQ(seconds(-3.0), 0ull);
}

// --------------------------------------------------------------------------
// stats

TEST(Stats, RunningStatsMatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs{1.0, 4.0, 2.0, 8.0, 5.0};
  double sum = 0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), sum / 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  double var = 0;
  for (const double x : xs) var += (x - s.mean()) * (x - s.mean());
  var /= 4.0;
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.relative_spread(), (8.0 - 1.0) / 4.0, 1e-12);
}

TEST(Stats, PercentileNearestRank) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 1), 10);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i + 2.0);
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Stats, LinearFitDegenerate) {
  EXPECT_DOUBLE_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({2.0, 2.0}, {1.0, 3.0}).slope, 0.0);
}

// --------------------------------------------------------------------------
// rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 1), b(42, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowIsBounded) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  // n == 1 always yields 0.
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalFactorMedianNearOne) {
  Rng r(17);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(r.lognormal_factor(0.5));
  EXPECT_NEAR(percentile(xs, 50), 1.0, 0.03);
  for (const double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// --------------------------------------------------------------------------
// serializer

TEST(Serializer, FixedWidthRoundtrip) {
  ByteSink sink;
  sink.put_u8(0xab);
  sink.put_u32(0xdeadbeef);
  sink.put_u64(0x0123456789abcdefULL);
  auto bytes = sink.take();
  ByteSource source(bytes);
  std::uint8_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  ASSERT_TRUE(source.get_u8(a).is_ok());
  ASSERT_TRUE(source.get_u32(b).is_ok());
  ASSERT_TRUE(source.get_u64(c).is_ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefULL);
  EXPECT_TRUE(source.exhausted());
}

class VarintRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundtrip, Roundtrips) {
  ByteSink sink;
  sink.put_varint(GetParam());
  auto bytes = sink.take();
  ByteSource source(bytes);
  std::uint64_t out = 0;
  ASSERT_TRUE(source.get_varint(out).is_ok());
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(source.exhausted());
}

INSTANTIATE_TEST_SUITE_P(EdgeValues, VarintRoundtrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull,
                                           16383ull, 16384ull, 1ull << 32,
                                           (1ull << 63) - 1,
                                           ~0ull));

TEST(Serializer, StringRoundtrip) {
  ByteSink sink;
  sink.put_string("BGLML_Messager_advance");
  sink.put_string("");
  auto bytes = sink.take();
  ByteSource source(bytes);
  std::string a, b;
  ASSERT_TRUE(source.get_string(a).is_ok());
  ASSERT_TRUE(source.get_string(b).is_ok());
  EXPECT_EQ(a, "BGLML_Messager_advance");
  EXPECT_EQ(b, "");
}

TEST(Serializer, TruncationIsDetected) {
  ByteSink sink;
  sink.put_u64(1);
  auto bytes = sink.take();
  bytes.pop_back();
  ByteSource source(bytes);
  std::uint64_t out = 0;
  EXPECT_EQ(source.get_u64(out).code(), StatusCode::kInvalidArgument);
}

TEST(Serializer, VarintOverflowIsDetected) {
  // 10 bytes of continuation with high bits beyond 64 set.
  std::vector<std::uint8_t> bytes(10, 0xff);
  ByteSource source(bytes);
  std::uint64_t out = 0;
  EXPECT_FALSE(source.get_varint(out).is_ok());
}

// --------------------------------------------------------------------------
// status & ids

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status s = resource_exhausted("buffers");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.to_string(), "RESOURCE_EXHAUSTED: buffers");
}

TEST(Status, ResultHoldsValueOrStatus) {
  Result<int> good(7);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 7);
  Result<int> bad(not_found("nope"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(StrongId, DistinctTypesAndHash) {
  const TaskId t(5);
  const DaemonId d(5);
  EXPECT_EQ(t.value(), d.value());
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(TaskId::invalid().valid());
  std::set<TaskId> set{TaskId(1), TaskId(2), TaskId(1)};
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace petastat
