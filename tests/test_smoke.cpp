// End-to-end smoke test: STAT on a 1024-task ring hang on simulated Atlas.
#include <gtest/gtest.h>

#include "stat/scenario.hpp"

namespace petastat::stat {
namespace {

TEST(Smoke, AtlasRingHangEndToEnd) {
  machine::JobConfig job;
  job.num_tasks = 1024;

  StatOptions options;
  options.topology = tbon::TopologySpec::balanced(2);
  options.repr = TaskSetRepr::kHierarchical;
  options.launcher = LauncherKind::kLaunchMon;

  StatScenario scenario(machine::atlas(), job, options);
  const StatRunResult result = scenario.run();

  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.layout.num_daemons, 128u);  // 8 tasks per node
  EXPECT_GT(result.phases.startup_total, 0u);
  EXPECT_GT(result.phases.sample_time, 0u);
  EXPECT_GT(result.phases.merge_time, 0u);

  // The hang produces at least three behaviour classes: the hung task 1,
  // the blocked task 2, and the barrier crowd.
  ASSERT_GE(result.classes.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& cls : result.classes) total += cls.size();
  EXPECT_EQ(total, 1024u);

  // Task 1 must be alone in some class (the bug).
  bool task1_isolated = false;
  for (const auto& cls : result.classes) {
    if (cls.size() == 1 && cls.tasks.contains(1)) task1_isolated = true;
  }
  EXPECT_TRUE(task1_isolated);
}

}  // namespace
}  // namespace petastat::stat
