// Unit tests for the file-system models: NFS queueing and caching, Lustre
// striping, the mount table, redirects, and the client page cache.
#include <gtest/gtest.h>

#include "fs/filesystem.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"

namespace petastat::fs {
namespace {

const NodeId kClient = machine::make_node(machine::NodeRole::kCompute, 0);
const NodeId kOther = machine::make_node(machine::NodeRole::kCompute, 1);

NfsParams quiet_nfs() {
  NfsParams p;
  p.background_sigma = 0.0;
  p.run_load_sigma = 0.0;
  p.degradation_alpha = 0.0;
  return p;
}

TEST(Nfs, WarmReadsAreFasterThanCold) {
  sim::Simulator s;
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  const SimTime cold = nfs.read(kClient, "/nfs/a", 9'000'000);
  s.run();
  sim::Simulator s2;
  NfsFileSystem nfs2(s2, quiet_nfs(), 1);
  (void)nfs2.read(kClient, "/nfs/a", 9'000'000);
  const SimTime warm = nfs2.read(kOther, "/nfs/a", 9'000'000) -
                       nfs2.read(kOther, "/nfs/b", 0);  // rough isolation
  EXPECT_GT(cold, 0u);
  // Direct comparison: cold rate 90 MB/s vs warm 100 MB/s per stream.
  EXPECT_LT(warm, cold * 2);
}

TEST(Nfs, FanInQueuesOnTheServer) {
  sim::Simulator s;
  NfsParams p = quiet_nfs();
  p.server_threads = 4;
  NfsFileSystem nfs(s, p, 1);
  SimTime last = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    last = std::max(last, nfs.read(machine::make_node(machine::NodeRole::kCompute, i),
                                   "/nfs/libmpi.so", 4'000'000));
  }
  s.run();
  // 64 requests x 4 MB at 100 MB/s warm (after the first) over 4 lanes:
  // aggregate ~255 MB / 400 MB/s ~ 0.64 s minimum.
  EXPECT_GT(last, seconds(0.6));
  EXPECT_EQ(nfs.server_stats().requests, 64u);
  EXPECT_GT(nfs.server_stats().total_wait, 0u);
}

TEST(Nfs, DegradationInflatesUnderLoad) {
  const auto run_with_alpha = [](double alpha) {
    sim::Simulator s;
    NfsParams p = quiet_nfs();
    p.degradation_alpha = alpha;
    NfsFileSystem nfs(s, p, 1);
    SimTime last = 0;
    for (std::uint32_t i = 0; i < 128; ++i) {
      last = std::max(last, nfs.read(kClient, "/nfs/x", 1'000'000));
    }
    s.run();
    return last;
  };
  EXPECT_GT(run_with_alpha(0.01), run_with_alpha(0.0));
}

TEST(Nfs, RunLoadFactorVariesBySeed) {
  std::vector<SimTime> times;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    sim::Simulator s;
    NfsParams p = quiet_nfs();
    p.run_load_sigma = 0.5;
    NfsFileSystem nfs(s, p, seed);
    times.push_back(nfs.read(kClient, "/nfs/x", 8'000'000));
  }
  std::sort(times.begin(), times.end());
  EXPECT_GT(times.back(), times.front());
}

TEST(Lustre, ChunkedReadsUseTheOssPool) {
  sim::Simulator s;
  LustreParams p;
  p.background_sigma = 0.0;
  LustreFileSystem lustre(s, p, 1);
  // 4 MB = 4 chunks over 4 OSS lanes: data transfers overlap.
  const SimTime four_mb = lustre.read(kClient, "/lustre/a", 4'000'000);
  sim::Simulator s2;
  LustreFileSystem lustre2(s2, p, 1);
  const SimTime sixteen_mb = lustre2.read(kClient, "/lustre/a", 16'000'000);
  EXPECT_GT(sixteen_mb, four_mb);
  // 4x the data on the same pool should cost no more than ~4x + overheads.
  EXPECT_LT(sixteen_mb, four_mb * 5);
}

TEST(Lustre, MdsWaitDoesNotConsumeOssCapacity) {
  // Many small reads: completion should be dominated by MDS opens + small
  // chunk transfers, not inflated by open-latency folded into data lanes.
  sim::Simulator s;
  LustreParams p;
  p.background_sigma = 0.0;
  LustreFileSystem lustre(s, p, 1);
  SimTime last = 0;
  for (int i = 0; i < 64; ++i) {
    last = std::max(last, lustre.read(kClient, "/lustre/f", 10'000));
  }
  // 64 opens / 4 MDS lanes * 2.2 ms = 35 ms; 64 RPCs / 4 OSS * 5.5 ms = 88 ms.
  EXPECT_LT(last, seconds(0.5));
}

TEST(RamDisk, ConstantAndLocal) {
  sim::Simulator s;
  RamDiskFileSystem ram(s, RamDiskParams{});
  const SimTime a = ram.read(kClient, "/ramdisk/a", 4'000'000);
  const SimTime b = ram.read(kOther, "/ramdisk/a", 4'000'000);
  EXPECT_EQ(a, b);  // no shared queueing whatsoever
  EXPECT_LT(a, seconds(0.01));
}

TEST(MountTable, LongestPrefixWins) {
  sim::Simulator s;
  RamDiskFileSystem ram(s, RamDiskParams{});
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  MountTable mounts;
  mounts.mount("/nfs", &nfs);
  mounts.mount("/nfs/scratch", &ram);
  EXPECT_EQ(mounts.resolve("/nfs/home/user/a.out"), &nfs);
  EXPECT_EQ(mounts.resolve("/nfs/scratch/tmp"), &ram);
  EXPECT_EQ(mounts.resolve("/unknown"), nullptr);
}

TEST(MountTable, SharedFlagFollowsBackend) {
  sim::Simulator s;
  RamDiskFileSystem ram(s, RamDiskParams{});
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  LustreFileSystem lustre(s, LustreParams{}, 1);
  MountTable mounts;
  mounts.mount("/nfs", &nfs);
  mounts.mount("/lustre", &lustre);
  mounts.mount("/ramdisk", &ram);
  EXPECT_TRUE(mounts.on_shared_filesystem("/nfs/a"));
  EXPECT_TRUE(mounts.on_shared_filesystem("/lustre/a"));
  EXPECT_FALSE(mounts.on_shared_filesystem("/ramdisk/a"));
  EXPECT_FALSE(mounts.on_shared_filesystem("/nowhere/a"));
}

TEST(FileAccess, PageCacheMakesRereadsFree) {
  sim::Simulator s;
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  MountTable mounts;
  mounts.mount("/nfs", &nfs);
  FileAccess files(s, mounts);
  const SimTime first = files.open_and_read(kClient, "/nfs/a", 1'000'000);
  EXPECT_GT(first, s.now());
  const SimTime again = files.open_and_read(kClient, "/nfs/a", 1'000'000);
  EXPECT_EQ(again, s.now());  // warm client cache
  // A different node still pays.
  EXPECT_GT(files.open_and_read(kOther, "/nfs/a", 1'000'000), s.now());
}

TEST(FileAccess, RedirectsInterposeOpens) {
  sim::Simulator s;
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  RamDiskFileSystem ram(s, RamDiskParams{});
  MountTable mounts;
  mounts.mount("/nfs", &nfs);
  mounts.mount("/ramdisk", &ram);
  FileAccess files(s, mounts);

  files.install_redirect(kClient, "/nfs/home", "/ramdisk/nfs/home");
  EXPECT_EQ(files.redirected_path(kClient, "/nfs/home/a.out"),
            "/ramdisk/nfs/home/a.out");
  EXPECT_EQ(files.redirected_path(kOther, "/nfs/home/a.out"),
            "/nfs/home/a.out");  // only the redirected node

  files.populate_local(kClient, "/ramdisk/nfs/home/a.out");
  EXPECT_EQ(files.open_and_read(kClient, "/nfs/home/a.out", 4'000'000), s.now());
}

TEST(FileAccess, ResetClearsState) {
  sim::Simulator s;
  NfsFileSystem nfs(s, quiet_nfs(), 1);
  MountTable mounts;
  mounts.mount("/nfs", &nfs);
  FileAccess files(s, mounts);
  files.install_redirect(kClient, "/nfs", "/elsewhere");
  files.populate_local(kClient, "/nfs/a");
  files.reset();
  EXPECT_EQ(files.redirected_path(kClient, "/nfs/a"), "/nfs/a");
}

}  // namespace
}  // namespace petastat::fs
