// Unit tests for the application models: frame interning, the ring-hang
// ground truth, the threaded variant, and the STATBench-style generator.
#include <gtest/gtest.h>

#include <map>

#include "app/appmodel.hpp"

namespace petastat::app {
namespace {

TEST(FrameTable, InternIsIdempotent) {
  FrameTable frames;
  const FrameId a = frames.intern("main");
  const FrameId b = frames.intern("main");
  const FrameId c = frames.intern("PMPI_Barrier");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames.name(a), "main");
}

TEST(FrameTable, RenderJoinsWithAngleBracket) {
  FrameTable frames;
  const CallPath path = frames.make_path({"_start", "main", "foo"});
  EXPECT_EQ(frames.render(path), "_start<main<foo");
}

TEST(FrameTable, UnknownIdThrows) {
  FrameTable frames;
  EXPECT_THROW((void)frames.name(FrameId(3)), std::logic_error);
  EXPECT_THROW((void)frames.name(FrameId::invalid()), std::logic_error);
}

struct RingFixture : ::testing::Test {
  RingHangApp make(std::uint32_t tasks, bool bgl = true,
                   std::uint64_t seed = 1) {
    RingHangOptions options;
    options.num_tasks = tasks;
    options.bgl_frames = bgl;
    options.seed = seed;
    return RingHangApp(options);
  }
};

TEST_F(RingFixture, TaskOneHangsBeforeSend) {
  auto app = make(1024);
  const auto path = app.stack(TaskId(1), 0, 0);
  EXPECT_EQ(app.frames().render(path),
            "_start_blrts<main<do_SendOrStall<__gettimeofday");
}

TEST_F(RingFixture, TaskTwoBlocksInWaitall) {
  auto app = make(1024);
  const auto rendered = app.frames().render(app.stack(TaskId(2), 0, 0));
  EXPECT_NE(rendered.find("PMPI_Waitall"), std::string::npos);
  EXPECT_NE(rendered.find("MPID_Progress_wait"), std::string::npos);
}

TEST_F(RingFixture, OtherTasksReachTheBarrier) {
  auto app = make(1024);
  for (const std::uint32_t t : {0u, 3u, 500u, 1023u}) {
    const auto rendered = app.frames().render(app.stack(TaskId(t), 0, 2));
    EXPECT_NE(rendered.find("PMPI_Barrier"), std::string::npos) << t;
    EXPECT_NE(rendered.find("BGLML_pollfcn"), std::string::npos) << t;
  }
}

TEST_F(RingFixture, DeterministicInTaskThreadSample) {
  auto app = make(512);
  auto app2 = make(512);
  for (std::uint32_t t = 0; t < 512; t += 37) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      EXPECT_EQ(app.stack(TaskId(t), 0, s), app2.stack(TaskId(t), 0, s));
    }
  }
}

TEST_F(RingFixture, SamplesVaryOverTime) {
  auto app = make(1024);
  // The progress-engine depth varies across samples for at least some tasks.
  int varied = 0;
  for (std::uint32_t t = 3; t < 103; ++t) {
    if (app.stack(TaskId(t), 0, 0) != app.stack(TaskId(t), 0, 1)) ++varied;
  }
  EXPECT_GT(varied, 10);
}

TEST_F(RingFixture, FrameNamesFollowPlatform) {
  auto bgl_app = make(16, /*bgl=*/true);
  auto linux_app = make(16, /*bgl=*/false);
  EXPECT_EQ(bgl_app.frames().render(bgl_app.stack(TaskId(0), 0, 0)).substr(0, 12),
            "_start_blrts");
  EXPECT_EQ(linux_app.frames().render(linux_app.stack(TaskId(0), 0, 0))
                .substr(0, 7),
            "_start<");
}

TEST_F(RingFixture, RejectsTinyJobs) {
  RingHangOptions options;
  options.num_tasks = 2;
  EXPECT_THROW(RingHangApp{options}, std::logic_error);
}

TEST(ThreadedRing, ThreadZeroIsTheMpiThread) {
  ThreadedRingOptions options;
  options.ring.num_tasks = 64;
  options.threads_per_task = 4;
  ThreadedRingApp app(options);
  EXPECT_EQ(app.threads_per_task(), 4u);
  const auto rendered = app.frames().render(app.stack(TaskId(1), 0, 0));
  EXPECT_NE(rendered.find("do_SendOrStall"), std::string::npos);
}

TEST(ThreadedRing, WorkerThreadsRunComputeKernels) {
  ThreadedRingOptions options;
  options.ring.num_tasks = 64;
  options.threads_per_task = 4;
  ThreadedRingApp app(options);
  for (std::uint32_t th = 1; th < 4; ++th) {
    const auto rendered = app.frames().render(app.stack(TaskId(5), th, 0));
    EXPECT_NE(rendered.find("compute_kernel"), std::string::npos);
    EXPECT_EQ(rendered.find("PMPI"), std::string::npos);
  }
}

TEST(ThreadedRing, SharesOneFrameTable) {
  ThreadedRingOptions options;
  options.ring.num_tasks = 64;
  options.threads_per_task = 2;
  ThreadedRingApp app(options);
  const auto mpi = app.stack(TaskId(3), 0, 0);
  const auto worker = app.stack(TaskId(3), 1, 0);
  // Both paths must render through the same table without throwing.
  EXPECT_FALSE(app.frames().render(mpi).empty());
  EXPECT_FALSE(app.frames().render(worker).empty());
}

TEST(StatBench, ClassCountRespected) {
  StatBenchOptions options;
  options.num_tasks = 2048;
  options.num_classes = 24;
  StatBenchApp app(options);
  std::map<std::uint32_t, std::uint32_t> histogram;
  for (std::uint32_t t = 0; t < 2048; ++t) ++histogram[app.class_of(TaskId(t))];
  EXPECT_LE(histogram.size(), 24u);
  EXPECT_GE(histogram.size(), 20u);  // nearly all classes populated
  // Skewed: the largest class dominates the smallest.
  std::uint32_t largest = 0, smallest = UINT32_MAX;
  for (const auto& [cls, n] : histogram) {
    largest = std::max(largest, n);
    smallest = std::min(smallest, n);
  }
  EXPECT_GT(largest, smallest * 4);
}

TEST(StatBench, StacksMostlyFollowTheClassPath) {
  StatBenchOptions options;
  options.num_tasks = 256;
  options.num_classes = 8;
  StatBenchApp app(options);
  int wandered = 0;
  for (std::uint32_t t = 0; t < 256; ++t) {
    const auto base = app.stack(TaskId(t), 0, 0);
    const auto later = app.stack(TaskId(t), 0, 5);
    if (base != later) ++wandered;
  }
  // ~5% wander per sample pair (both draws can differ).
  EXPECT_LT(wandered, 50);
}

TEST(StatBench, PathsShareRootPrefix) {
  StatBenchOptions options;
  options.num_tasks = 128;
  options.num_classes = 10;
  StatBenchApp app(options);
  for (std::uint32_t t = 0; t < 128; t += 11) {
    const auto path = app.stack(TaskId(t), 0, 0);
    ASSERT_GE(path.size(), 3u);
    EXPECT_EQ(app.frames().name(path[0]), "_start");
    EXPECT_EQ(app.frames().name(path[1]), "main");
  }
}

TEST(Binaries, DynamicLayoutMatchesPaper) {
  const auto full = ring_binaries_dynamic("/nfs/home/user", /*slim=*/false);
  const auto slim = ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
  // The two main binaries of Fig. 10: 10 KB exe + 4 MB MPI lib.
  EXPECT_EQ(full.images[0].bytes, 10u * 1024);
  EXPECT_EQ(full.images[1].bytes, 4u * 1024 * 1024);
  // Slim keeps only those two on the shared FS.
  std::uint64_t slim_shared = 0, full_shared = 0;
  for (const auto& image : slim.images) {
    if (image.path.starts_with("/nfs")) slim_shared += image.bytes;
  }
  for (const auto& image : full.images) {
    if (image.path.starts_with("/nfs")) full_shared += image.bytes;
  }
  EXPECT_EQ(slim_shared, 10u * 1024 + 4u * 1024 * 1024);
  EXPECT_GT(full_shared, slim_shared * 3);  // the ~4x OS-update effect
}

TEST(Evolution, JitterStaysTheDefaultAndWigglesTraces) {
  // The historical behaviour the batched pipeline depends on: fresh noise
  // per sample, so some barrier task's trace differs between samples.
  EXPECT_EQ(RingHangOptions{}.evolution, TraceEvolution::kJitter);
  EXPECT_EQ(ImbalanceOptions{}.evolution, TraceEvolution::kJitter);
  EXPECT_EQ(IoStallOptions{}.evolution, TraceEvolution::kJitter);
  EXPECT_EQ(OomCascadeOptions{}.evolution, TraceEvolution::kJitter);

  RingHangOptions options;
  options.num_tasks = 64;
  const RingHangApp ring(options);
  bool any_changed = false;
  for (std::uint32_t t = 3; t < 64 && !any_changed; ++t) {
    any_changed = ring.stack(TaskId(t), 0, 0) != ring.stack(TaskId(t), 0, 1);
  }
  EXPECT_TRUE(any_changed);
}

TEST(Evolution, DriftFreezesEveryTraceWithoutAScriptedEvent) {
  // kDrift pins the noise streams: with no hang onset, no straggler step,
  // nothing changes between consecutive samples — the streaming mode's
  // "unchanged subtrees really are unchanged" guarantee.
  ImbalanceOptions options;
  options.num_tasks = 256;
  options.evolution = TraceEvolution::kDrift;
  const ImbalanceApp app(options);
  for (std::uint32_t t = 0; t < 256; ++t) {
    for (std::uint32_t s = 1; s < 6; ++s) {
      if (app.drifts_at(TaskId(t), s)) continue;
      EXPECT_EQ(app.stack(TaskId(t), 0, s), app.stack(TaskId(t), 0, s - 1))
          << "task " << t << " sample " << s;
    }
  }
}

TEST(Evolution, DriftMovesExactlyTheScriptedBandEachSample) {
  // 256 tasks in blocks of 32 over period 8: block b holds phase b, so at
  // sample s exactly the stragglers of the phase (period - s mod period)
  // band move — one contiguous block per sample.
  ImbalanceOptions options;
  options.num_tasks = 256;
  options.straggler_stride = 32;
  options.drift_block = 32;
  options.drift_period = 8;
  options.evolution = TraceEvolution::kDrift;
  const ImbalanceApp app(options);

  for (std::uint32_t b = 0; b < 8; ++b) {
    EXPECT_EQ(app.drift_phase(TaskId(b * 32)), b);
    EXPECT_EQ(app.drift_phase(TaskId(b * 32 + 31)), b);
  }

  for (std::uint32_t s = 1; s < 10; ++s) {
    std::vector<std::uint32_t> moved;
    for (std::uint32_t t = 0; t < 256; ++t) {
      const bool drifted =
          app.stack(TaskId(t), 0, s) != app.stack(TaskId(t), 0, s - 1);
      EXPECT_EQ(drifted, app.drifts_at(TaskId(t), s))
          << "task " << t << " sample " << s;
      if (drifted) moved.push_back(t);
    }
    // Exactly one straggler (stride 32 in a 32-task block) moves per
    // sample, and nothing moves at sample 0 by definition.
    ASSERT_EQ(moved.size(), 1u) << "sample " << s;
    EXPECT_EQ(app.drift_phase(TaskId(moved[0])),
              (8 - s % 8) % 8);
  }
}

TEST(Evolution, HangOnsetFlipsTheRingSignatureAtTheScriptedSample) {
  RingHangOptions options;
  options.num_tasks = 64;
  options.evolution = TraceEvolution::kDrift;
  options.hang_onset_sample = 3;
  const RingHangApp ring(options);

  // Before the onset tasks 1 and 2 sit in the barrier; at the onset they
  // flip to the hang signature and stay there — one change, at sample 3.
  for (const std::uint32_t task : {1u, 2u}) {
    const auto before = ring.stack(TaskId(task), 0, 0);
    const auto after = ring.stack(TaskId(task), 0, 3);
    EXPECT_NE(before, after);
    EXPECT_EQ(ring.stack(TaskId(task), 0, 2), before);
    EXPECT_EQ(ring.stack(TaskId(task), 0, 5), after);
  }
  // Bystanders never change under drift.
  EXPECT_EQ(ring.stack(TaskId(7), 0, 0), ring.stack(TaskId(7), 0, 5));
}

TEST(Evolution, OomCascadeFrontAdvancesUnderDrift) {
  OomCascadeOptions options;
  options.num_tasks = 128;
  options.victim_task = TaskId(64);
  options.kill_sample = 2;
  options.neighbour_radius = 4;
  options.evolution = TraceEvolution::kDrift;
  const OomCascadeApp app(options);

  // A neighbour keeps its healthy trace until its distance-dependent onset,
  // then flips to the inherited-traffic signature.
  const TaskId neighbour(66);  // distance 2 -> onset = kill + (2+1)/2 = 3
  ASSERT_TRUE(app.is_neighbour(neighbour));
  const std::uint32_t onset = app.cascade_onset(neighbour);
  EXPECT_EQ(onset, 3u);
  EXPECT_EQ(app.stack(neighbour, 0, onset - 1),
            app.stack(neighbour, 0, 0));
  EXPECT_NE(app.stack(neighbour, 0, onset), app.stack(neighbour, 0, 0));
  // The victim's allocation spiral deepens every sample up to the kill.
  EXPECT_NE(app.stack(TaskId(64), 0, 0), app.stack(TaskId(64), 0, 1));
}

TEST(Binaries, StaticLayoutIsOneImage) {
  const auto spec = ring_binaries_static("/nfs/home/user");
  ASSERT_EQ(spec.images.size(), 1u);
  EXPECT_EQ(spec.images[0].bytes, 8u * 1024 * 1024);
  EXPECT_EQ(spec.total_bytes(), 8u * 1024 * 1024);
}

}  // namespace
}  // namespace petastat::app
