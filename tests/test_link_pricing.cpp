// Shared-formulation regression: the simulated merge phase and the analytic
// predictor price the *same per-link traffic* over the same switch graph.
// For sampled Fig. 4/5 cells, the per-device byte totals of the scenario's
// merge (stat::PhaseBreakdown::merge_links) must agree with
// plan::PhasePredictor::predict_merge_link_bytes: message counts exactly
// (both walk one transfer per tree edge over route_between), bytes within
// the predictor's payload-interpolation tolerance.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "plan/predictor.hpp"
#include "stat/scenario.hpp"

namespace petastat::plan {
namespace {

struct Cell {
  const char* name;
  machine::MachineConfig machine;
  std::uint32_t tasks;
  machine::BglMode mode;
  stat::TaskSetRepr repr;
  stat::LauncherKind launcher;
  tbon::TopologySpec spec;
  /// Links aggregating several leaf edges (trunks, the front end's access):
  /// the sum converges on (count x probe average), so the bar is tight.
  double aggregate_tolerance;
  /// Links carrying a single leaf's payload: one daemon's real tree vs the
  /// probe average — per-daemon shape variance, not a formulation drift.
  double single_leaf_tolerance;
  /// Links carrying a comm proc's merged payload: interpolated size.
  double internal_edge_tolerance;
};

void expect_links_agree(const Cell& cell) {
  SCOPED_TRACE(cell.name);
  machine::JobConfig job;
  job.num_tasks = cell.tasks;
  job.mode = cell.mode;
  stat::StatOptions options;
  options.repr = cell.repr;
  options.launcher = cell.launcher;
  options.topology = cell.spec;

  stat::StatScenario scenario(cell.machine, job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  ASSERT_FALSE(result.phases.merge_links.empty());

  auto predictor = PhasePredictor::create(
      cell.machine, job, options, machine::default_cost_model(cell.machine));
  ASSERT_TRUE(predictor.is_ok()) << predictor.status().to_string();
  const auto priced = predictor.value().predict_merge_link_bytes(cell.spec);
  ASSERT_TRUE(priced.is_ok()) << priced.status().to_string();

  // Same device set on both sides: neither formulation touches a link the
  // other does not know about.
  std::map<std::uint64_t, net::LinkStat> simulated;
  for (const net::LinkStat& link : result.phases.merge_links) {
    simulated.emplace(link.device, link);
  }
  ASSERT_EQ(simulated.size(), priced.value().size());

  // Which devices carry only leaf payloads (measured, tight tolerance) vs
  // at least one comm-proc payload (interpolated, looser): an edge out of a
  // comm proc starts at the proc's access device, so classify by route.
  const net::SwitchGraph& graph = predictor.value().graph();
  const auto topo = tbon::build_topology(
      cell.machine, predictor.value().layout(), cell.spec);
  ASSERT_TRUE(topo.is_ok());
  std::map<std::uint64_t, bool> carries_internal;
  for (const auto& proc : topo.value().procs) {
    if (proc.parent < 0) continue;
    const auto& parent = topo.value().procs[static_cast<std::size_t>(proc.parent)];
    for (const net::RouteHop& hop :
         net::route_between(graph, proc.host, parent.host)) {
      carries_internal[hop.device] =
          carries_internal[hop.device] || !proc.is_leaf();
    }
  }

  for (const LinkBytesPrediction& predicted : priced.value()) {
    const auto it = simulated.find(predicted.device);
    ASSERT_NE(it, simulated.end()) << "predictor priced a link the simulator "
                                      "never used: " << predicted.link;
    const net::LinkStat& actual = it->second;
    EXPECT_EQ(actual.link, predicted.link);
    EXPECT_EQ(actual.messages, predicted.messages) << predicted.link;
    double tolerance = cell.aggregate_tolerance;
    if (carries_internal[predicted.device]) {
      tolerance = cell.internal_edge_tolerance;
    } else if (actual.messages == 1) {
      tolerance = cell.single_leaf_tolerance;
    }
    EXPECT_NEAR(static_cast<double>(actual.bytes), predicted.bytes,
                tolerance * static_cast<double>(actual.bytes))
        << predicted.link;
  }
}

TEST(LinkPricing, AtlasDenseFlat) {
  Cell cell;
  cell.name = "atlas-dense-flat";
  cell.machine = machine::atlas();
  cell.tasks = 64;
  cell.mode = machine::BglMode::kCoprocessor;
  cell.repr = stat::TaskSetRepr::kDenseGlobal;
  cell.launcher = stat::LauncherKind::kLaunchMon;
  cell.spec.depth = 1;
  // The probe set covers all 8 daemons, so aggregated links (the shared
  // trunks and the front end's access) price exactly up to per-payload
  // float truncation; a single daemon's tree varies around the average.
  cell.aggregate_tolerance = 0.01;
  cell.single_leaf_tolerance = 0.30;
  cell.internal_edge_tolerance = 0.01;  // no internal edges in a flat tree
  expect_links_agree(cell);
}

TEST(LinkPricing, AtlasHierFlat) {
  Cell cell;
  cell.name = "atlas-hier-flat";
  cell.machine = machine::atlas();
  cell.tasks = 64;
  cell.mode = machine::BglMode::kCoprocessor;
  cell.repr = stat::TaskSetRepr::kHierarchical;
  cell.launcher = stat::LauncherKind::kLaunchMon;
  cell.spec.depth = 1;
  cell.aggregate_tolerance = 0.01;
  cell.single_leaf_tolerance = 0.30;
  cell.internal_edge_tolerance = 0.01;
  expect_links_agree(cell);
}

TEST(LinkPricing, AtlasDenseTwoDeep) {
  Cell cell;
  cell.name = "atlas-dense-2deep";
  cell.machine = machine::atlas();
  cell.tasks = 64;
  cell.mode = machine::BglMode::kCoprocessor;
  cell.repr = stat::TaskSetRepr::kDenseGlobal;
  cell.launcher = stat::LauncherKind::kLaunchMon;
  cell.spec.depth = 2;
  cell.aggregate_tolerance = 0.01;
  cell.single_leaf_tolerance = 0.30;
  // Comm-proc payloads ride the piecewise-linear interpolation over the
  // probe points instead of a measured size.
  cell.internal_edge_tolerance = 0.20;
  expect_links_agree(cell);
}

TEST(LinkPricing, BglDenseFlat) {
  Cell cell;
  cell.name = "bgl-dense-flat";
  cell.machine = machine::bgl();
  cell.tasks = 512;
  cell.mode = machine::BglMode::kCoprocessor;
  cell.repr = stat::TaskSetRepr::kDenseGlobal;
  cell.launcher = stat::LauncherKind::kCiodPatched;
  cell.spec.depth = 1;
  cell.aggregate_tolerance = 0.01;
  // BG/L's ring app spreads 64 tasks per daemon; individual daemons' trees
  // swing further around the probe average than Atlas's 8-task daemons.
  cell.single_leaf_tolerance = 0.60;
  cell.internal_edge_tolerance = 0.01;
  expect_links_agree(cell);
}

}  // namespace
}  // namespace petastat::plan
