// Tests for the heavyweight-debugger baseline model.
#include <gtest/gtest.h>

#include "stat/heavyweight.hpp"

namespace petastat::stat {
namespace {

TEST(Heavyweight, SnapshotIsLinearInTasks) {
  machine::JobConfig job;
  job.num_tasks = 256;
  const auto small = run_heavyweight_debugger(machine::atlas(), job);
  job.num_tasks = 512;
  const auto big = run_heavyweight_debugger(machine::atlas(), job);
  ASSERT_TRUE(small.status.is_ok());
  ASSERT_TRUE(big.status.is_ok());
  const double ratio =
      to_seconds(big.snapshot_time) / to_seconds(small.snapshot_time);
  EXPECT_NEAR(ratio, 2.0, 0.35);
  EXPECT_EQ(to_seconds(big.attach_time), 2 * to_seconds(small.attach_time));
}

TEST(Heavyweight, ConnectionLimitBoundaryIsExact) {
  // The documented boundary semantic: exactly `max_tool_connections` tasks
  // survive; one more is rejected (`> limit` fails, never `>=`).
  machine::JobConfig job;
  const std::uint32_t limit = machine::atlas().max_tool_connections;
  job.num_tasks = limit - 1;
  EXPECT_TRUE(run_heavyweight_debugger(machine::atlas(), job).status.is_ok());
  job.num_tasks = limit;
  EXPECT_TRUE(run_heavyweight_debugger(machine::atlas(), job).status.is_ok());
  job.num_tasks = limit + 1;
  EXPECT_EQ(run_heavyweight_debugger(machine::atlas(), job).status.code(),
            StatusCode::kResourceExhausted);
}

TEST(Heavyweight, FailsEarlierOnBgl) {
  // BG/L's front end held only 256 tool connections: a per-task debugger
  // cannot even cover the smallest interesting partitions.
  machine::JobConfig job;
  job.num_tasks = 1024;
  job.mode = machine::BglMode::kCoprocessor;
  const auto report = run_heavyweight_debugger(machine::bgl(), job);
  EXPECT_EQ(report.status.code(), StatusCode::kResourceExhausted);
}

TEST(Heavyweight, RejectsJobsThatDoNotFitTheMachine) {
  machine::JobConfig job;
  job.num_tasks = 100000;
  const auto report = run_heavyweight_debugger(machine::atlas(), job);
  EXPECT_FALSE(report.status.is_ok());
}

TEST(Heavyweight, ReportsConnectionCount) {
  machine::JobConfig job;
  job.num_tasks = 128;
  const auto report = run_heavyweight_debugger(machine::atlas(), job);
  EXPECT_EQ(report.connections, 128u);
  EXPECT_GT(report.attach_time, 0u);
  EXPECT_GT(report.snapshot_time, 0u);
}

}  // namespace
}  // namespace petastat::stat
