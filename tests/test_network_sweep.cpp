// Cross-machine validation sweep (network-layer robustness): perturb the
// presets' wiring — trunk rates, oversubscription, login-tier width — and
// check the planner's ranking still lands within the simulated-best bar.
// The planner and the simulator both read the same perturbed
// InterconnectConfig, so this exercises the shared route-pricing formulation
// under fabrics the presets never ship, not just the three tuned shapes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "plan/search.hpp"
#include "stat/scenario.hpp"

namespace petastat::plan {
namespace {

struct SweepConfig {
  std::string name;
  machine::MachineConfig machine;
  std::uint32_t tasks = 0;
  machine::BglMode mode = machine::BglMode::kCoprocessor;
  stat::LauncherKind launcher = stat::LauncherKind::kLaunchMon;
};

std::vector<SweepConfig> sweep_configs() {
  std::vector<SweepConfig> configs;

  {
    // Petascale with the service uplink halved: 4:1 oversubscription on the
    // login tier — shard placement matters even more than shipped.
    SweepConfig c;
    c.name = "petascale-4to1-oversub";
    c.machine = machine::petascale();
    c.machine.interconnect.service_uplink.bytes_per_sec /= 2.0;
    c.tasks = 131072;
    c.mode = machine::BglMode::kVirtualNode;
    c.launcher = stat::LauncherKind::kCiodPatched;
    configs.push_back(std::move(c));
  }
  {
    // Petascale with half the login tier: fewer hosts behind the same
    // service leaves shifts the pack-vs-spread-vs-route trade.
    SweepConfig c;
    c.name = "petascale-16-logins";
    c.machine = machine::petascale();
    c.machine.login_nodes = 16;
    c.tasks = 131072;
    c.mode = machine::BglMode::kVirtualNode;
    c.launcher = stat::LauncherKind::kCiodPatched;
    configs.push_back(std::move(c));
  }
  {
    // Atlas with the leaf uplinks cut to a tenth: the formerly full-bisection
    // IB fat-tree becomes badly oversubscribed above the leaves.
    SweepConfig c;
    c.name = "atlas-starved-uplinks";
    c.machine = machine::atlas();
    c.machine.interconnect.leaf_uplink.bytes_per_sec /= 10.0;
    c.tasks = 4096;
    c.launcher = stat::LauncherKind::kLaunchMon;
    configs.push_back(std::move(c));
  }
  {
    // BG/L with the rack uplinks halved: the functional GigE tree's rack
    // stage, not the I/O NICs, becomes the merge bottleneck.
    SweepConfig c;
    c.name = "bgl-half-rack-uplinks";
    c.machine = machine::bgl();
    c.machine.interconnect.rack_uplink.bytes_per_sec /= 2.0;
    c.tasks = 4096;
    c.launcher = stat::LauncherKind::kCiodPatched;
    configs.push_back(std::move(c));
  }
  return configs;
}

TEST(NetworkSweep, PlannerRankingHoldsUnderPerturbedWiring) {
  for (const SweepConfig& config : sweep_configs()) {
    SCOPED_TRACE(config.name);
    stat::StatOptions options;
    options.repr = stat::TaskSetRepr::kDenseGlobal;
    options.launcher = config.launcher;
    machine::JobConfig job;
    job.num_tasks = config.tasks;
    job.mode = config.mode;

    auto predictor =
        PhasePredictor::create(config.machine, job, options,
                               machine::default_cost_model(config.machine));
    ASSERT_TRUE(predictor.is_ok()) << predictor.status().to_string();
    auto search = search_topologies(predictor.value());
    ASSERT_TRUE(search.is_ok()) << search.status().to_string();
    ASSERT_FALSE(search.value().viable.empty());

    // Simulate the prediction-ranked head of the field (the pick is first).
    // Capping the sims keeps the sweep affordable; a mis-ranked pick still
    // fails because anything that beats it by >10% ranks near the top.
    constexpr std::size_t kMaxSims = 10;
    double best = -1.0;
    double chosen = -1.0;
    std::size_t simulated = 0;
    for (const RankedTopology& ranked : search.value().viable) {
      if (simulated >= kMaxSims) break;
      ++simulated;
      stat::StatOptions o = options;
      o.topology = ranked.spec;
      stat::StatScenario scenario(config.machine, job, o);
      const stat::StatRunResult result = scenario.run();
      if (!result.status.is_ok()) continue;
      const double sim = to_seconds(result.phases.startup_total +
                                    result.phases.merge_time +
                                    result.phases.remap_time);
      if (best < 0 || sim < best) best = sim;
      if (chosen < 0) chosen = sim;
    }
    ASSERT_GT(chosen, 0.0);
    EXPECT_LE(chosen, 1.10 * best)
        << config.name << ": auto pick " << chosen << "s vs best " << best
        << "s";
  }
}

TEST(NetworkSweep, RoutePlacementWinsMaxLinkLoadWhenOversubscribed) {
  // The wiring-aware placement's raison d'etre: on the oversubscribed
  // petascale service tier, route placement's busiest link stays strictly
  // less busy than pack's and spread's during the merge. (Wall-clock may
  // favor any of them — the claim is about contention, not time.)
  machine::JobConfig job;
  job.num_tasks = 131072;
  job.mode = machine::BglMode::kVirtualNode;
  const auto busiest_for = [&](tbon::ReducerPlacement placement) {
    stat::StatOptions options;
    options.repr = stat::TaskSetRepr::kDenseGlobal;
    options.launcher = stat::LauncherKind::kCiodPatched;
    options.topology = tbon::TopologySpec::flat().with_shards(64)
                           .with_placement(placement);
    stat::StatScenario scenario(machine::petascale(), job, options);
    const stat::StatRunResult result = scenario.run();
    EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
    EXPECT_FALSE(result.phases.merge_links.empty());
    return result.phases.merge_links.empty()
               ? SimTime{0}
               : result.phases.merge_links.front().busy;
  };
  const SimTime pack = busiest_for(tbon::ReducerPlacement::kPack);
  const SimTime spread = busiest_for(tbon::ReducerPlacement::kSpread);
  const SimTime route = busiest_for(tbon::ReducerPlacement::kRoute);
  EXPECT_LT(route, pack);
  EXPECT_LT(route, spread);
}

}  // namespace
}  // namespace petastat::plan
