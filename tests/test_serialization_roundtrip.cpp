// Round-trip serialization properties: for every wire format the decoded
// value must equal the original, and the arithmetic wire_bytes() accounting
// (which feeds the network model) must exactly match the bytes actually
// produced by encode().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "app/appmodel.hpp"
#include "common/serializer.hpp"
#include "stat/hier_taskset.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {
namespace {

TaskSet fragmented_set() {
  TaskSet set;
  set.insert_range(0, 3);
  set.insert(9);
  set.insert_range(100, 240);
  set.insert(1023);
  set.insert_range(4000, 4096);
  return set;
}

// --- TaskSet: dense wire ----------------------------------------------------

TEST(DenseWire, RoundTripAndExactSize) {
  const TaskSet set = fragmented_set();
  const std::uint32_t job_size = 5000;

  ByteSink sink;
  set.encode_dense(sink, job_size);
  EXPECT_EQ(sink.size(), set.dense_wire_bytes(job_size));

  ByteSource source(sink.bytes());
  auto decoded = TaskSet::decode_dense(source, job_size);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), set);
  EXPECT_TRUE(source.exhausted());
}

TEST(DenseWire, MatchesRealBitVectorBytes) {
  const TaskSet set = fragmented_set();
  const std::uint32_t job_size = 5000;

  ByteSink from_set;
  set.encode_dense(from_set, job_size);
  ByteSink from_bits;
  DenseBitVector::from_task_set(set, job_size).encode(from_bits);

  ASSERT_EQ(from_set.size(), from_bits.size());
  const auto a = from_set.bytes();
  const auto b = from_bits.bytes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "byte " << i;
  }
}

TEST(DenseWire, EmptySetRoundTrips) {
  const TaskSet set;
  ByteSink sink;
  set.encode_dense(sink, 64);
  EXPECT_EQ(sink.size(), set.dense_wire_bytes(64));
  ByteSource source(sink.bytes());
  auto decoded = TaskSet::decode_dense(source, 64);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), set);
}

// --- TaskSet: ranged wire ---------------------------------------------------

TEST(RangedWire, RoundTripAndExactSize) {
  for (const TaskSet& set :
       {fragmented_set(), TaskSet::single(0), TaskSet::single(UINT32_MAX),
        TaskSet::range(7, 7), TaskSet::range(0, 1 << 20), TaskSet{}}) {
    ByteSink sink;
    set.encode_ranged(sink);
    EXPECT_EQ(sink.size(), set.ranged_wire_bytes());

    ByteSource source(sink.bytes());
    auto decoded = TaskSet::decode_ranged(source);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value(), set);
    EXPECT_TRUE(source.exhausted());
  }
}

// --- HierTaskSet: ranged wire -----------------------------------------------

HierTaskSet sample_hier() {
  HierTaskSet set;
  for (std::uint32_t local = 0; local < 8; ++local) set.insert(3, local);
  set.insert(17, 0);
  set.insert(17, 63);
  set.insert(900, 5);
  return set;
}

TEST(HierWire, RoundTripAndExactSize) {
  for (const HierTaskSet& set :
       {sample_hier(), HierTaskSet::single(0, 0), HierTaskSet{}}) {
    ByteSink sink;
    set.encode(sink);
    EXPECT_EQ(sink.size(), set.wire_bytes());

    ByteSource source(sink.bytes());
    auto decoded = HierTaskSet::decode(source);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value(), set);
    EXPECT_TRUE(source.exhausted());
  }
}

TEST(HierWire, MergeThenRoundTrip) {
  HierTaskSet a = sample_hier();
  HierTaskSet b;
  b.insert(1, 2);
  b.insert(17, 12);
  a.merge(b);

  ByteSink sink;
  a.encode(sink);
  EXPECT_EQ(sink.size(), a.wire_bytes());
  ByteSource source(sink.bytes());
  auto decoded = HierTaskSet::decode(source);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), a);
}

// --- PrefixTree: both label representations ---------------------------------

/// Small three-branch tree over an interned frame table.
template <typename Label, typename SeedFn>
PrefixTree<Label> sample_tree(app::FrameTable& frames, SeedFn seed_for) {
  PrefixTree<Label> tree;
  const app::CallPath barrier =
      frames.make_path({"_start", "main", "MPI_Barrier", "poll"});
  const app::CallPath recv =
      frames.make_path({"_start", "main", "MPI_Recv", "poll"});
  const app::CallPath compute = frames.make_path({"_start", "main", "compute"});
  for (std::uint32_t t = 0; t < 60; ++t) tree.insert(barrier, seed_for(t));
  tree.insert(recv, seed_for(60));
  for (std::uint32_t t = 61; t < 64; ++t) tree.insert(compute, seed_for(t));
  return tree;
}

TEST(TreeWire, GlobalTreeRoundTripAndExactSize) {
  app::FrameTable frames;
  GlobalTree tree = sample_tree<GlobalLabel>(
      frames, [](std::uint32_t t) { return GlobalLabel::for_task(t); });
  const LabelContext ctx{64};

  ByteSink sink;
  tree.encode(sink, frames, ctx);
  EXPECT_EQ(sink.size(), tree.wire_bytes(frames, ctx));

  // Decoding back through the same intern table must reproduce the tree
  // exactly (same FrameIds, labels, and structure).
  ByteSource source(sink.bytes());
  auto decoded = GlobalTree::decode(source, frames, ctx);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(decoded.value(), tree);
}

TEST(TreeWire, HierTreeRoundTripAndExactSize) {
  app::FrameTable frames;
  HierTree tree = sample_tree<HierLabel>(frames, [](std::uint32_t t) {
    return HierLabel::for_local(t / 8, t % 8);
  });
  const LabelContext ctx{64};

  ByteSink sink;
  tree.encode(sink, frames, ctx);
  EXPECT_EQ(sink.size(), tree.wire_bytes(frames, ctx));

  ByteSource source(sink.bytes());
  auto decoded = HierTree::decode(source, frames, ctx);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(decoded.value(), tree);
}

TEST(TreeWire, FreshTableDecodePreservesStructureByName) {
  app::FrameTable frames;
  GlobalTree tree = sample_tree<GlobalLabel>(
      frames, [](std::uint32_t t) { return GlobalLabel::for_task(t); });
  const LabelContext ctx{64};
  ByteSink sink;
  tree.encode(sink, frames, ctx);

  // A receiver with its own (empty) intern table sees the same named shape.
  app::FrameTable fresh;
  ByteSource source(sink.bytes());
  auto decoded = GlobalTree::decode(source, fresh, ctx);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().node_count(), tree.node_count());
  EXPECT_EQ(decoded.value().depth(), tree.depth());
  std::vector<std::string> original_paths, decoded_paths;
  tree.visit([&](std::span<const FrameId> path, const auto&) {
    original_paths.push_back(frames.render(path));
  });
  decoded.value().visit([&](std::span<const FrameId> path, const auto&) {
    decoded_paths.push_back(fresh.render(path));
  });
  EXPECT_EQ(original_paths, decoded_paths);
}

TEST(TreeWire, EmptyTreeRoundTrips) {
  app::FrameTable frames;
  const GlobalTree tree;
  const LabelContext ctx{8};
  ByteSink sink;
  tree.encode(sink, frames, ctx);
  EXPECT_EQ(sink.size(), tree.wire_bytes(frames, ctx));
  ByteSource source(sink.bytes());
  auto decoded = GlobalTree::decode(source, frames, ctx);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

// Encode -> decode -> encode must be byte-identical (canonical encoding).
TEST(TreeWire, ReEncodeIsByteIdentical) {
  app::FrameTable frames;
  GlobalTree tree = sample_tree<GlobalLabel>(
      frames, [](std::uint32_t t) { return GlobalLabel::for_task(t); });
  const LabelContext ctx{64};

  ByteSink first;
  tree.encode(first, frames, ctx);
  ByteSource source(first.bytes());
  auto decoded = GlobalTree::decode(source, frames, ctx);
  ASSERT_TRUE(decoded.is_ok());

  ByteSink second;
  decoded.value().encode(second, frames, ctx);
  ASSERT_EQ(first.size(), second.size());
  const auto a = first.bytes();
  const auto b = second.bytes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "byte " << i;
  }
}

}  // namespace
}  // namespace petastat::stat
