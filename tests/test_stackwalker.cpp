// Unit tests for the StackWalker service: symbol I/O, walk costs, CPU
// contention, the task resolver, and per-daemon caching.
#include <gtest/gtest.h>

#include <optional>

#include "fs/filesystem.hpp"
#include "stackwalker/stackwalker.hpp"

namespace petastat::stackwalker {
namespace {

struct WalkerFixture {
  sim::Simulator sim;
  machine::MachineConfig machine = machine::atlas();
  machine::CostModel costs = machine::default_cost_model(machine);
  fs::NfsFileSystem nfs;
  fs::RamDiskFileSystem local;
  fs::MountTable mounts;
  fs::FileAccess files;
  app::RingHangApp app;
  machine::DaemonLayout layout;

  static fs::NfsParams quiet() {
    fs::NfsParams p;
    p.background_sigma = 0;
    p.run_load_sigma = 0;
    return p;
  }
  static app::RingHangOptions ring(std::uint32_t tasks) {
    app::RingHangOptions o;
    o.num_tasks = tasks;
    o.bgl_frames = false;
    o.binaries = app::ring_binaries_dynamic("/nfs/home/user", /*slim=*/true);
    return o;
  }

  explicit WalkerFixture(std::uint32_t tasks = 64)
      : nfs(sim, quiet(), 1),
        local(sim, fs::RamDiskParams{}),
        files(sim, mounts),
        app(ring(tasks)) {
    mounts.mount("/nfs", &nfs);
    mounts.mount("/usr/lib", &local);
    layout = machine::layout_daemons(machine, {.num_tasks = tasks}).value();
    // Deterministic contention for timing assertions.
    costs.sampling.cpu_contention_sigma = 0.0;
  }

  StackWalker make_walker(std::uint64_t seed = 1) {
    return StackWalker(sim, machine, costs.sampling, files, app, layout, seed);
  }
};

TEST(StackWalker, SinkReceivesEveryTrace) {
  WalkerFixture f(64);  // 8 daemons x 8 tasks
  auto walker = f.make_walker();
  std::uint32_t traces = 0;
  std::optional<SampleReport> report;
  walker.sample_daemon(DaemonId(0), 10,
                       [&](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                           const app::CallPath& path) {
                         ++traces;
                         EXPECT_FALSE(path.empty());
                       },
                       [&](const SampleReport& r) { report = r; });
  f.sim.run();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(traces, 80u);  // 8 tasks x 10 samples
  EXPECT_EQ(report->traces, 80u);
  EXPECT_EQ(report->finished_at,
            report->started_at + report->symbol_io_time +
                report->symbol_parse_time + report->walk_time);
}

TEST(StackWalker, SymbolIoChargedOnceAcrossPasses) {
  WalkerFixture f(64);
  auto walker = f.make_walker();
  const auto noop_sink = [](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                            const app::CallPath&) {};
  std::optional<SampleReport> first, second;
  walker.sample_daemon(DaemonId(0), 10, noop_sink,
                       [&](const SampleReport& r) { first = r; });
  f.sim.run();
  walker.sample_daemon(DaemonId(0), 10, noop_sink,
                       [&](const SampleReport& r) { second = r; });
  f.sim.run();
  EXPECT_GT(first->symbol_io_time, 0u);
  EXPECT_EQ(second->symbol_io_time, 0u);
  EXPECT_EQ(second->symbol_parse_time, 0u);
  EXPECT_GT(second->walk_time, 0u);
}

TEST(StackWalker, ResetForcesReparsing) {
  WalkerFixture f(64);
  auto walker = f.make_walker();
  const auto noop_sink = [](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                            const app::CallPath&) {};
  walker.sample_daemon(DaemonId(0), 1, noop_sink, [](const SampleReport&) {});
  f.sim.run();
  walker.reset();
  std::optional<SampleReport> report;
  walker.sample_daemon(DaemonId(0), 1, noop_sink,
                       [&](const SampleReport& r) { report = r; });
  f.sim.run();
  EXPECT_GT(report->symbol_parse_time, 0u);  // parsed again (client cache
                                             // still spares the server I/O)
}

TEST(StackWalker, WalkCostGrowsWithFrames) {
  WalkerFixture f;
  auto walker = f.make_walker();
  EXPECT_GT(walker.walk_cost(20), walker.walk_cost(5));
  EXPECT_EQ(walker.walk_cost(5) - walker.walk_cost(4),
            f.costs.sampling.walk_per_frame +
                f.costs.sampling.local_merge_per_node);
}

TEST(StackWalker, ContentionInflatesSharedCpuMachines) {
  // Atlas (shared CPU) vs BG/L-style dedicated I/O node, identical costs.
  WalkerFixture shared(64);
  shared.costs.sampling.cpu_contention_mean = 3.0;
  auto walker_shared = shared.make_walker();

  WalkerFixture dedicated(64);
  dedicated.machine.daemon_shares_cpu = false;
  dedicated.costs.sampling.cpu_contention_mean = 3.0;
  auto walker_dedicated =
      StackWalker(dedicated.sim, dedicated.machine, dedicated.costs.sampling,
                  dedicated.files, dedicated.app, dedicated.layout, 1);

  const auto noop_sink = [](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                            const app::CallPath&) {};
  std::optional<SampleReport> rs, rd;
  walker_shared.sample_daemon(DaemonId(0), 10, noop_sink,
                              [&](const SampleReport& r) { rs = r; });
  shared.sim.run();
  walker_dedicated.sample_daemon(DaemonId(0), 10, noop_sink,
                                 [&](const SampleReport& r) { rd = r; });
  dedicated.sim.run();
  EXPECT_GT(to_seconds(rs->walk_time), 2.5 * to_seconds(rd->walk_time));
}

TEST(StackWalker, ResolverControlsWhichTasksAreWalked) {
  WalkerFixture f(64);
  auto walker = f.make_walker();
  // Reverse mapping: daemon 0 walks the *last* 8 ranks.
  walker.set_task_resolver([](DaemonId, std::uint32_t local) {
    return TaskId(63 - local);
  });
  std::vector<std::uint32_t> walked;
  walker.sample_daemon(DaemonId(0), 1,
                       [&](TaskId task, std::uint32_t local, std::uint32_t,
                           std::uint32_t, const app::CallPath&) {
                         walked.push_back(task.value());
                         EXPECT_EQ(task.value(), 63 - local);
                       },
                       [](const SampleReport&) {});
  f.sim.run();
  EXPECT_EQ(walked.size(), 8u);
  EXPECT_EQ(walked.front(), 63u);
}

TEST(StackWalker, ThreadsMultiplyTraces) {
  WalkerFixture f(64);
  app::ThreadedRingOptions threaded;
  threaded.ring = WalkerFixture::ring(64);
  threaded.threads_per_task = 4;
  app::ThreadedRingApp app(threaded);
  StackWalker walker(f.sim, f.machine, f.costs.sampling, f.files, app,
                     f.layout, 1);
  std::uint32_t traces = 0;
  std::optional<SampleReport> report;
  walker.sample_daemon(DaemonId(2), 5,
                       [&](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                           const app::CallPath&) { ++traces; },
                       [&](const SampleReport& r) { report = r; });
  f.sim.run();
  EXPECT_EQ(traces, 8u * 5u * 4u);
  EXPECT_EQ(report->traces, traces);
}

TEST(StackWalker, OutOfRangeDaemonThrows) {
  WalkerFixture f(64);
  auto walker = f.make_walker();
  EXPECT_THROW(walker.sample_daemon(
                   DaemonId(99), 1,
                   [](TaskId, std::uint32_t, std::uint32_t, std::uint32_t,
                      const app::CallPath&) {},
                   [](const SampleReport&) {}),
               std::logic_error);
}

}  // namespace
}  // namespace petastat::stackwalker
