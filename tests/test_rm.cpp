// Unit tests for the resource-manager launchers (Sec. IV).
#include <gtest/gtest.h>

#include <optional>

#include "machine/cost_model.hpp"
#include "rm/launcher.hpp"
#include "sim/simulator.hpp"

namespace petastat::rm {
namespace {

struct LaunchFixture {
  sim::Simulator sim;
  machine::LaunchCosts costs;

  LaunchReport launch(DaemonLauncher& launcher, std::uint32_t daemons,
                      std::uint32_t procs = 0) {
    std::optional<LaunchReport> out;
    launcher.launch({daemons, procs},
                    [&out](const LaunchReport& r) { out = r; });
    sim.run();
    return out.value();
  }
};

TEST(TreeLevels, MatchesLogarithm) {
  EXPECT_EQ(tree_levels(0, 32), 0u);
  EXPECT_EQ(tree_levels(1, 32), 1u);
  EXPECT_EQ(tree_levels(2, 32), 1u);
  EXPECT_EQ(tree_levels(32, 32), 1u);
  EXPECT_EQ(tree_levels(33, 32), 2u);
  EXPECT_EQ(tree_levels(1024, 32), 2u);
  EXPECT_EQ(tree_levels(1025, 32), 3u);
}

class TreeLevelsProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeLevelsProperty, FanoutPowerCoversN) {
  const std::uint32_t n = GetParam();
  for (const std::uint32_t fanout : {2u, 8u, 32u}) {
    const std::uint32_t levels = tree_levels(n, fanout);
    if (n <= 1) continue;
    std::uint64_t reach = 1;
    for (std::uint32_t l = 0; l < levels; ++l) reach *= fanout;
    EXPECT_GE(reach, n);
    EXPECT_LT(reach / fanout, n);  // levels is minimal
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, TreeLevelsProperty,
                         ::testing::Values(2u, 3u, 16u, 100u, 512u, 1664u,
                                           65536u));

TEST(RemoteShell, SerialSpawnIsLinear) {
  LaunchFixture f;
  RemoteShellLauncher launcher(f.sim, machine::atlas(), f.costs,
                               ShellProtocol::kRsh, 1);
  const auto r64 = f.launch(launcher, 64);
  ASSERT_TRUE(r64.status.is_ok());

  LaunchFixture f2;
  RemoteShellLauncher launcher2(f2.sim, machine::atlas(), f2.costs,
                                ShellProtocol::kRsh, 1);
  const auto r128 = f2.launch(launcher2, 128);
  ASSERT_TRUE(r128.status.is_ok());
  // Doubling daemons roughly doubles spawn time (same seed, fresh stream).
  const double ratio = to_seconds(r128.daemon_spawn_time) /
                       to_seconds(r64.daemon_spawn_time);
  EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(RemoteShell, RshFailsAtThreshold) {
  LaunchFixture f;
  RemoteShellLauncher launcher(f.sim, machine::atlas(), f.costs,
                               ShellProtocol::kRsh, 1);
  const auto report = f.launch(launcher, f.costs.rsh_failure_threshold);
  EXPECT_EQ(report.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(report.total(), 0u);  // failure is detected after burning time
}

TEST(RemoteShell, JustBelowThresholdSucceeds) {
  LaunchFixture f;
  RemoteShellLauncher launcher(f.sim, machine::atlas(), f.costs,
                               ShellProtocol::kRsh, 1);
  EXPECT_TRUE(f.launch(launcher, f.costs.rsh_failure_threshold - 1).status.is_ok());
}

TEST(RemoteShell, SshUnsupportedOnAtlasComputeNodes) {
  LaunchFixture f;
  RemoteShellLauncher launcher(f.sim, machine::atlas(), f.costs,
                               ShellProtocol::kSsh, 1);
  EXPECT_EQ(f.launch(launcher, 8).status.code(), StatusCode::kUnavailable);
}

TEST(RemoteShell, RshUnsupportedOnBgl) {
  LaunchFixture f;
  RemoteShellLauncher launcher(f.sim, machine::bgl(), f.costs,
                               ShellProtocol::kRsh, 1);
  EXPECT_EQ(f.launch(launcher, 8).status.code(), StatusCode::kUnavailable);
}

TEST(BulkTree, ScalesLogarithmically) {
  LaunchFixture f;
  BulkTreeLauncher launcher(f.sim, f.costs, 1);
  const auto r16 = f.launch(launcher, 16);
  LaunchFixture f2;
  BulkTreeLauncher launcher2(f2.sim, f2.costs, 1);
  const auto r1024 = f2.launch(launcher2, 1024);
  // 64x the daemons costs only one extra tree level.
  EXPECT_LT(to_seconds(r1024.total()),
            to_seconds(r16.total()) + 2 * to_seconds(f.costs.rm_broadcast_per_level));
}

TEST(BulkTree, Beats512SerialSpawns) {
  LaunchFixture f;
  BulkTreeLauncher launcher(f.sim, f.costs, 1);
  const auto report = f.launch(launcher, 512);
  ASSERT_TRUE(report.status.is_ok());
  EXPECT_LT(to_seconds(report.total()), 10.0);  // vs >120 s serial trend
}

TEST(Ciod, PatchedIsLinearInProcs) {
  LaunchFixture f;
  CiodLauncher launcher(f.sim, f.costs, /*patched=*/true, 1);
  const SimTime t1 = launcher.process_table_time(10'000);
  const SimTime t2 = launcher.process_table_time(20'000);
  const double marginal = to_seconds(t2 - t1);
  EXPECT_NEAR(marginal, to_seconds(f.costs.ciod_per_proc) * 10'000, 1e-6);
}

TEST(Ciod, UnpatchedIsQuadraticInProcs) {
  LaunchFixture f;
  CiodLauncher launcher(f.sim, f.costs, /*patched=*/false, 1);
  const double extra_64k =
      to_seconds(launcher.process_table_time(65'536)) -
      to_seconds(CiodLauncher(f.sim, f.costs, true, 1).process_table_time(65'536));
  const double extra_128k =
      to_seconds(launcher.process_table_time(131'072)) -
      to_seconds(CiodLauncher(f.sim, f.costs, true, 1).process_table_time(131'072));
  EXPECT_NEAR(extra_128k / extra_64k, 4.0, 0.01);  // 2x procs -> 4x strcat
}

TEST(Ciod, UnpatchedHangsAt208K) {
  LaunchFixture f;
  CiodLauncher launcher(f.sim, f.costs, /*patched=*/false, 1);
  const auto report = f.launch(launcher, 1664, 212'992);
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Ciod, PatchedSucceedsAt208K) {
  LaunchFixture f;
  CiodLauncher launcher(f.sim, f.costs, /*patched=*/true, 1);
  const auto report = f.launch(launcher, 1664, 212'992);
  EXPECT_TRUE(report.status.is_ok());
  EXPECT_GT(report.system_software_time, 0u);
  EXPECT_GT(report.app_launch_time, 0u);
}

TEST(Ciod, ReportPhasesSumToTotal) {
  LaunchFixture f;
  CiodLauncher launcher(f.sim, f.costs, /*patched=*/true, 1);
  const auto report = f.launch(launcher, 16, 1024);
  EXPECT_EQ(report.total(), report.daemon_spawn_time + report.app_launch_time +
                                report.system_software_time);
}

}  // namespace
}  // namespace petastat::rm
