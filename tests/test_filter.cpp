// Tests for the STAT filter's ReduceOps: merge semantics through the TBON
// plumbing, CPU accounting, and payload sizing.
#include <gtest/gtest.h>

#include "app/appmodel.hpp"
#include "stat/filter.hpp"

namespace petastat::stat {
namespace {

struct FilterFixture : ::testing::Test {
  app::FrameTable frames;
  machine::MergeCosts costs;
  LabelContext ctx{1024};

  StatPayload<GlobalLabel> payload_for(std::uint32_t task) {
    StatPayload<GlobalLabel> payload;
    const auto path = frames.make_path({"_start", "main", "work"});
    payload.tree_2d.insert(path, GlobalLabel::for_task(task));
    payload.tree_3d.insert(path, GlobalLabel::for_task(task));
    return payload;
  }
};

TEST_F(FilterFixture, MergeIntoCombinesBothTrees) {
  auto ops = make_stat_reduce_ops<GlobalLabel>(costs, frames, ctx);
  StatPayload<GlobalLabel> acc;
  SimTime cpu = 0;
  auto merge = [&](StatPayload<GlobalLabel>&& child) {
    cpu += ops.merge_cpu(child);
    ops.merge_into(acc, std::move(child));
  };
  merge(payload_for(1));
  merge(payload_for(2));
  EXPECT_EQ(acc.tree_2d.node_count(), 3u);
  EXPECT_EQ(acc.tree_3d.node_count(), 3u);
  const auto* start = acc.tree_3d.root().find_child(frames.intern("_start"));
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->label.tasks.count(), 2u);
  EXPECT_GT(cpu, 0u);
}

TEST_F(FilterFixture, CpuCostScalesWithChildSize) {
  auto ops = make_stat_reduce_ops<GlobalLabel>(costs, frames, ctx);
  StatPayload<GlobalLabel> small = payload_for(1);

  StatPayload<GlobalLabel> big;
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto path = frames.make_path(
        {"_start", "main", "f" + std::to_string(i), "g" + std::to_string(i)});
    big.tree_3d.insert(path, GlobalLabel::for_task(i));
    big.tree_2d.insert(path, GlobalLabel::for_task(i));
  }

  const SimTime cpu_small = ops.merge_cpu(small);
  const SimTime cpu_big = ops.merge_cpu(big);
  EXPECT_GT(cpu_big, cpu_small * 5);
}

TEST_F(FilterFixture, CodecCostHasPerPacketFloor) {
  auto ops = make_stat_reduce_ops<GlobalLabel>(costs, frames, ctx);
  EXPECT_GE(ops.codec_cost(0), costs.per_packet_cpu);
  EXPECT_GT(ops.codec_cost(1 << 20), ops.codec_cost(0));
}

TEST_F(FilterFixture, WireBytesReflectRepresentationAndJobSize) {
  auto payload = payload_for(1);
  const std::uint64_t at_1k = payload_wire_bytes(payload, frames, LabelContext{1024});
  const std::uint64_t at_208k =
      payload_wire_bytes(payload, frames, LabelContext{212992});
  // Dense labels: 3 edges x 2 trees x (job/8) bytes dominate.
  EXPECT_GT(at_208k, at_1k * 100);

  StatPayload<HierLabel> hier;
  const auto path = frames.make_path({"_start", "main", "work"});
  hier.tree_2d.insert(path, HierLabel::for_local(0, 1));
  hier.tree_3d.insert(path, HierLabel::for_local(0, 1));
  EXPECT_EQ(payload_wire_bytes(hier, frames, LabelContext{1024}),
            payload_wire_bytes(hier, frames, LabelContext{212992}));
}

TEST_F(FilterFixture, EmptyPayloadMergesAreHarmless) {
  auto ops = make_stat_reduce_ops<GlobalLabel>(costs, frames, ctx);
  StatPayload<GlobalLabel> acc = payload_for(3);
  ops.merge_into(acc, StatPayload<GlobalLabel>{});  // dead daemon
  EXPECT_EQ(acc.tree_3d.node_count(), 3u);
  const auto* start = acc.tree_3d.root().find_child(frames.intern("_start"));
  EXPECT_TRUE(start->label.tasks.contains(3));
}

TEST_F(FilterFixture, HierOpsConcatenateDaemonBlocks) {
  auto ops = make_stat_reduce_ops<HierLabel>(costs, frames, ctx);
  const auto path = frames.make_path({"_start", "main"});
  StatPayload<HierLabel> a, b, acc;
  a.tree_3d.insert(path, HierLabel::for_local(0, 5));
  b.tree_3d.insert(path, HierLabel::for_local(7, 2));
  ops.merge_into(acc, std::move(a));
  ops.merge_into(acc, std::move(b));
  const auto* start = acc.tree_3d.root().find_child(frames.intern("_start"));
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->label.tasks.blocks().size(), 2u);
  EXPECT_EQ(start->label.tasks.count(), 2u);
}

}  // namespace
}  // namespace petastat::stat
