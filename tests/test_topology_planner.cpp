// Unit and agreement tests for the plan:: subsystem — the analytic
// PhasePredictor, the TopologySearch ranking, and `--topology auto`:
//  (a) predictor-vs-simulator ranking agreement on the Fig. 4/5 Atlas/BG/L
//      crossover configurations;
//  (b) `--topology auto` never feasibility-violates placement limits across
//      sampled matrix cells (machine x scale x representation).
#include <gtest/gtest.h>

#include <algorithm>

#include "plan/search.hpp"
#include "stat/cli_config.hpp"
#include "stat/scenario.hpp"

namespace petastat::plan {
namespace {

stat::StatOptions dense_options(stat::LauncherKind launcher) {
  stat::StatOptions options;
  options.repr = stat::TaskSetRepr::kDenseGlobal;
  options.launcher = launcher;
  return options;
}

Result<PhasePredictor> predictor_for(const machine::MachineConfig& machine,
                                     std::uint32_t tasks,
                                     const stat::StatOptions& options,
                                     machine::BglMode mode =
                                         machine::BglMode::kCoprocessor) {
  machine::JobConfig job;
  job.num_tasks = tasks;
  job.mode = mode;
  return PhasePredictor::create(machine, job, options,
                                machine::default_cost_model(machine));
}

double simulated_startup_plus_merge(const machine::MachineConfig& machine,
                                    std::uint32_t tasks,
                                    stat::StatOptions options,
                                    const tbon::TopologySpec& spec) {
  options.topology = spec;
  machine::JobConfig job;
  job.num_tasks = tasks;
  stat::StatScenario scenario(machine, job, options);
  const stat::StatRunResult result = scenario.run();
  if (!result.status.is_ok()) return -1.0;
  return to_seconds(result.phases.startup_total + result.phases.merge_time +
                    result.phases.remap_time);
}

// --------------------------------------------------------------------------
// Workload profiling

TEST(WorkloadProfile, DensePayloadsDwarfHierarchical) {
  const auto machine = machine::atlas();
  machine::JobConfig job{.num_tasks = 2048};
  const auto layout = machine::layout_daemons(machine, job).value();
  const WorkloadProfile dense = profile_workload(
      machine, job, layout, dense_options(stat::LauncherKind::kLaunchMon));
  stat::StatOptions hier_opts = dense_options(stat::LauncherKind::kLaunchMon);
  hier_opts.repr = stat::TaskSetRepr::kHierarchical;
  const WorkloadProfile hier = profile_workload(machine, job, layout, hier_opts);
  // The paper's core result: full-job bit vectors on every edge dwarf the
  // subtree-local lists.
  EXPECT_GT(dense.leaf_payload_bytes, 4.0 * hier.leaf_payload_bytes);
  EXPECT_GT(dense.leaf_tree_nodes, 0.0);
  EXPECT_EQ(dense.probe_counts.front(), 1u);
}

TEST(WorkloadProfile, PayloadInterpolationIsMonotone) {
  const auto machine = machine::atlas();
  machine::JobConfig job{.num_tasks = 1024};
  const auto layout = machine::layout_daemons(machine, job).value();
  stat::StatOptions options = dense_options(stat::LauncherKind::kLaunchMon);
  options.repr = stat::TaskSetRepr::kHierarchical;
  const WorkloadProfile profile = profile_workload(machine, job, layout, options);
  double prev = 0.0;
  for (double d = 1; d <= layout.num_daemons; d *= 2) {
    const double bytes = profile.payload_bytes_for(d);
    EXPECT_GE(bytes, prev);
    prev = bytes;
  }
  // Hier labels grow with the subtree: the full-job accumulator clearly
  // outweighs one daemon's payload.
  EXPECT_GT(profile.payload_bytes_for(layout.num_daemons),
            profile.leaf_payload_bytes);
}

// --------------------------------------------------------------------------
// Predictor phases and viability

TEST(PhasePredictor, PredictsAllPhasesPositive) {
  auto predictor = predictor_for(machine::atlas(), 1024,
                                 dense_options(stat::LauncherKind::kLaunchMon));
  ASSERT_TRUE(predictor.is_ok());
  const auto prediction =
      predictor.value().predict(tbon::TopologySpec::balanced(2));
  ASSERT_TRUE(prediction.is_ok()) << prediction.status().to_string();
  const PhasePrediction& p = prediction.value();
  EXPECT_TRUE(p.viability.is_ok());
  EXPECT_GT(p.launch, 0u);
  EXPECT_GT(p.connect, 0u);
  EXPECT_GT(p.sampling, 0u);
  EXPECT_GT(p.merge, 0u);
  EXPECT_EQ(p.remap, 0u);  // dense repr has no remap
  EXPECT_GT(p.num_comm_procs, 0u);
  EXPECT_EQ(p.startup, p.launch + p.connect);
}

TEST(PhasePredictor, HierarchicalReprPredictsRemap) {
  stat::StatOptions options = dense_options(stat::LauncherKind::kLaunchMon);
  options.repr = stat::TaskSetRepr::kHierarchical;
  auto predictor = predictor_for(machine::atlas(), 1024, options);
  ASSERT_TRUE(predictor.is_ok());
  const auto prediction = predictor.value().predict(tbon::TopologySpec::flat());
  ASSERT_TRUE(prediction.is_ok());
  EXPECT_GT(prediction.value().remap, 0u);
}

TEST(PhasePredictor, FlatOnBglAtScaleHitsConnectionLimit) {
  // The Sec. V-A failure: 16,384 compute nodes = 256 daemons against the
  // BG/L front end, which survives 255 connections (the observed failure
  // point is 256).
  auto predictor = predictor_for(machine::bgl(), 16384,
                                 dense_options(stat::LauncherKind::kCiodPatched));
  ASSERT_TRUE(predictor.is_ok());
  const auto flat = predictor.value().predict(tbon::TopologySpec::flat());
  ASSERT_TRUE(flat.is_ok());
  EXPECT_EQ(flat.value().viability.code(), StatusCode::kResourceExhausted);
  const auto deep = predictor.value().predict(tbon::TopologySpec::bgl(2));
  ASSERT_TRUE(deep.is_ok());
  EXPECT_TRUE(deep.value().viability.is_ok());
}

TEST(PhasePredictor, ConnectionBoundaryIsExact) {
  // 16,320 BG/L compute nodes = 255 daemons: exactly the 255-connection
  // limit, so the flat tree is predicted viable; one daemon more tips it.
  const auto at = [](std::uint32_t tasks) {
    auto predictor = predictor_for(machine::bgl(), tasks,
                                   dense_options(stat::LauncherKind::kCiodPatched));
    return predictor.value().predict(tbon::TopologySpec::flat())
        .value().viability;
  };
  EXPECT_TRUE(at(255 * 64).is_ok());
  EXPECT_EQ(at(256 * 64).code(), StatusCode::kResourceExhausted);
}

TEST(PhasePredictor, HonorsThePerRunConnectionOverride) {
  // The simulator and the planner must agree on the limit *including* the
  // per-run override — otherwise auto modes pick specs the run then rejects.
  stat::StatOptions options = dense_options(stat::LauncherKind::kLaunchMon);
  options.max_frontend_connections = 31;  // one under Atlas's 32 daemons
  auto predictor = predictor_for(machine::atlas(), 256, options);
  ASSERT_TRUE(predictor.is_ok());
  const auto flat = predictor.value().predict(tbon::TopologySpec::flat());
  ASSERT_TRUE(flat.is_ok());
  EXPECT_EQ(flat.value().viability.code(), StatusCode::kResourceExhausted);

  // End to end: --topology auto under the override completes, on a spec that
  // respects the overridden limit.
  options.topology_auto = true;
  machine::JobConfig job{.num_tasks = 256};
  stat::StatScenario scenario(machine::atlas(), job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_GE(result.topology.depth + (result.topology.fe_shards > 1 ? 1 : 0),
            2u);
}

TEST(PhasePredictor, ShardedSpecRelievesTheConnectionLimit) {
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.repr = stat::TaskSetRepr::kHierarchical;
  auto predictor = predictor_for(machine::bgl(), 16384, options);
  ASSERT_TRUE(predictor.is_ok());
  const auto sharded =
      predictor.value().predict(tbon::TopologySpec::flat().with_shards(4));
  ASSERT_TRUE(sharded.is_ok()) << sharded.status().to_string();
  EXPECT_TRUE(sharded.value().viability.is_ok())
      << sharded.value().viability.to_string();
  EXPECT_EQ(sharded.value().num_comm_procs, 4u);
  // The distributed remap prices the largest slice, not the whole job.
  const auto deep = predictor.value().predict(tbon::TopologySpec::bgl(2));
  ASSERT_TRUE(deep.is_ok());
  EXPECT_LT(sharded.value().remap, deep.value().remap);
}

TEST(ChooseFeShards, PicksAViableKForTheSecVAConfig) {
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.topology = tbon::TopologySpec::flat();
  machine::JobConfig job;
  job.num_tasks = 16384;
  auto chosen = choose_fe_shards(machine::bgl(), job, options,
                                 machine::default_cost_model(machine::bgl()));
  ASSERT_TRUE(chosen.is_ok()) << chosen.status().to_string();
  EXPECT_GE(chosen.value().fe_shards, 2u);
  EXPECT_EQ(chosen.value().depth, 1u);  // still the flat spec, sharded
}

TEST(TopologySearch, ShardDimensionJoinsTheSpaceUnderAuto) {
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.fe_shards_auto = true;
  auto predictor = predictor_for(machine::bgl(), 16384, options);
  ASSERT_TRUE(predictor.is_ok());
  auto search = search_topologies(predictor.value());
  ASSERT_TRUE(search.is_ok());
  bool saw_sharded = false;
  for (const RankedTopology& ranked : search.value().viable) {
    EXPECT_TRUE(ranked.prediction.viability.is_ok());
    if (ranked.spec.fe_shards > 1) saw_sharded = true;
  }
  EXPECT_TRUE(saw_sharded);
  // Without the auto flag the space stays unsharded (PR-3 behaviour).
  auto pinned = predictor_for(machine::bgl(), 16384,
                              dense_options(stat::LauncherKind::kCiodPatched));
  auto pinned_search = search_topologies(pinned.value());
  ASSERT_TRUE(pinned_search.is_ok());
  for (const RankedTopology& ranked : pinned_search.value().viable) {
    EXPECT_EQ(ranked.spec.fe_shards, 1u);
  }
}

// --------------------------------------------------------------------------
// Reducer trees (K > 8) and placement pricing

TEST(PhasePredictor, ReducerTreeRescuesThePetascaleFlatMerge) {
  // The Sec. V-A failure mode, projected forward: 2,048 daemons cannot hang
  // off the petascale front end (1,024-connection ceiling), but K = 64
  // reducers under an 8-wide combiner level keep every merge root within the
  // limit — the reducer tree is what makes K in {16, 32, 64} usable at all.
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.repr = stat::TaskSetRepr::kHierarchical;
  auto predictor = predictor_for(machine::petascale(), 1048576, options,
                                 machine::BglMode::kVirtualNode);
  ASSERT_TRUE(predictor.is_ok()) << predictor.status().to_string();
  const auto flat = predictor.value().predict(tbon::TopologySpec::flat());
  ASSERT_TRUE(flat.is_ok());
  EXPECT_EQ(flat.value().viability.code(), StatusCode::kResourceExhausted);
  const auto tree = predictor.value().predict(
      tbon::TopologySpec::flat().with_shards(64));
  ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
  EXPECT_TRUE(tree.value().viability.is_ok())
      << tree.value().viability.to_string();
  EXPECT_EQ(tree.value().num_comm_procs, 72u);  // 64 reducers + 8 combiners
}

TEST(PhasePredictor, ConnectionOverrideTightensTheReducerTreeFanIn) {
  // The per-run override is the run's ceiling everywhere, the combiner
  // fan-in clamp included: under a 4-connection what-if, K = 64 must fold
  // through 4-ary combiner levels (FE -> 4 -> 16 -> 64 reducers of 4
  // daemons each) and come out viable — not get built 8-ary against the
  // machine default and then rejected by the very limit that demanded the
  // deeper tree.
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.max_frontend_connections = 4;
  auto predictor = predictor_for(machine::petascale(), 131072, options,
                                 machine::BglMode::kVirtualNode);
  ASSERT_TRUE(predictor.is_ok());
  const tbon::TopologySpec spec = tbon::TopologySpec::flat().with_shards(64);
  const auto prediction = predictor.value().predict(spec);
  ASSERT_TRUE(prediction.is_ok()) << prediction.status().to_string();
  EXPECT_TRUE(prediction.value().viability.is_ok())
      << prediction.value().viability.to_string();
  // 64 reducers + 16 + 4 combiners.
  EXPECT_EQ(prediction.value().num_comm_procs, 84u);

  // The simulator folds the override the same way: the run completes.
  machine::JobConfig job;
  job.num_tasks = 131072;
  job.mode = machine::BglMode::kVirtualNode;
  stat::StatOptions run_options = options;
  run_options.topology = spec;
  stat::StatScenario scenario(machine::petascale(), job, run_options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.num_comm_procs, 84u);
}

TEST(PlacementPricing, SpawnLocalityVsNicContentionBothWays) {
  // The placement trade, both directions, predictor against simulator:
  // packing the 72 shard procs onto 3 petascale logins makes the spawn burst
  // cheap (3 remote-shell handshakes instead of 32) but leaves ~24 reducers
  // draining their shards through each login NIC; spreading reverses both.
  const auto machine = machine::petascale();
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  const std::uint32_t tasks = 131072;  // 256 daemons in VN mode
  auto predictor = predictor_for(machine, tasks, options,
                                 machine::BglMode::kVirtualNode);
  ASSERT_TRUE(predictor.is_ok());
  const tbon::TopologySpec base = tbon::TopologySpec::flat().with_shards(64);
  const auto pack = predictor.value()
                        .predict(base.with_placement(
                            tbon::ReducerPlacement::kPack))
                        .value();
  const auto spread = predictor.value()
                          .predict(base.with_placement(
                              tbon::ReducerPlacement::kSpread))
                          .value();
  ASSERT_TRUE(pack.viability.is_ok());
  ASSERT_TRUE(spread.viability.is_ok());
  EXPECT_LT(pack.connect, spread.connect);  // spawn locality
  EXPECT_LT(spread.merge, pack.merge);      // per-host NIC contention

  const auto simulate = [&](tbon::ReducerPlacement placement) {
    stat::StatOptions o = options;
    o.topology = base.with_placement(placement);
    machine::JobConfig job;
    job.num_tasks = tasks;
    job.mode = machine::BglMode::kVirtualNode;
    stat::StatScenario scenario(machine, job, o);
    const stat::StatRunResult result = scenario.run();
    EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
    return result.phases;
  };
  const stat::PhaseBreakdown sim_pack =
      simulate(tbon::ReducerPlacement::kPack);
  const stat::PhaseBreakdown sim_spread =
      simulate(tbon::ReducerPlacement::kSpread);
  EXPECT_LT(sim_pack.connect_time, sim_spread.connect_time);
  EXPECT_LT(sim_spread.merge_time, sim_pack.merge_time);
}

TEST(PlacementPricing, JointRankingPicksAPlacementAndAutoFollows) {
  // The acceptance case: at the petascale preset the search ranks
  // (K, depth, placement) jointly; the winner is a sharded spec whose pack
  // placement strictly beats its spread twin (the spawn burst dominates the
  // NIC term at this payload size), and `--topology auto` adopts exactly the
  // ranked winner.
  stat::StatOptions options = dense_options(stat::LauncherKind::kCiodPatched);
  options.repr = stat::TaskSetRepr::kHierarchical;
  options.fe_shards_auto = true;
  machine::JobConfig job;
  job.num_tasks = 1048576;
  job.mode = machine::BglMode::kVirtualNode;
  auto predictor = predictor_for(machine::petascale(), job.num_tasks, options,
                                 job.mode);
  ASSERT_TRUE(predictor.is_ok());
  auto search = search_topologies(predictor.value());
  ASSERT_TRUE(search.is_ok()) << search.status().to_string();
  const RankedTopology& best = search.value().best();
  // Sharding wins at this scale (the distributed remap alone is worth ~3 s),
  // and pack placement wins the spawn-vs-NIC trade.
  EXPECT_GT(best.spec.fe_shards, 1u);
  EXPECT_EQ(best.spec.reducer_placement, tbon::ReducerPlacement::kPack);
  // The spread twin is viable, ranked, and strictly slower.
  const tbon::TopologySpec twin =
      best.spec.with_placement(tbon::ReducerPlacement::kSpread);
  bool found_twin = false;
  for (const RankedTopology& ranked : search.value().viable) {
    if (ranked.spec.name() == twin.name()) {
      found_twin = true;
      EXPECT_GT(ranked.prediction.startup_plus_merge(),
                best.prediction.startup_plus_merge());
    }
  }
  EXPECT_TRUE(found_twin);

  // End to end: `--topology auto` resolves to the ranked winner.
  options.topology_auto = true;
  stat::StatScenario scenario(machine::petascale(), job, options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.topology.name(), best.spec.name());
}

TEST(PhasePredictor, RshLauncherViabilityMatchesMachine) {
  auto on_bgl = predictor_for(machine::bgl(), 4096,
                              dense_options(stat::LauncherKind::kMrnetRsh));
  ASSERT_TRUE(on_bgl.is_ok());
  EXPECT_EQ(on_bgl.value().predict(tbon::TopologySpec::flat())
                .value().viability.code(),
            StatusCode::kUnavailable);
  // Atlas supports rsh, but past the port-exhaustion threshold it dies too.
  auto at_scale = predictor_for(machine::atlas(), 8192,
                                dense_options(stat::LauncherKind::kMrnetRsh));
  ASSERT_TRUE(at_scale.is_ok());  // 1024 daemons >= 512 threshold
  EXPECT_EQ(at_scale.value().predict(tbon::TopologySpec::flat())
                .value().viability.code(),
            StatusCode::kUnavailable);
}

TEST(PhasePredictor, UnbuildableSpecFailsInsteadOfPredicting) {
  auto predictor = predictor_for(machine::atlas(), 1024,
                                 dense_options(stat::LauncherKind::kLaunchMon));
  ASSERT_TRUE(predictor.is_ok());
  tbon::TopologySpec bad;
  bad.depth = 2;
  bad.level_widths = {0};
  EXPECT_FALSE(predictor.value().predict(bad).is_ok());
}

// --------------------------------------------------------------------------
// (a) Ranking agreement on the Fig. 4/5 crossover configurations

TEST(RankingAgreement, AtlasMergeCrossoverDirection) {
  // Fig. 4: at 4,096 tasks the deep trees clearly beat the flat tree's
  // merge; at 64 tasks the flat tree is competitive. The predictor must
  // order the merge times the same way the simulator does.
  const auto machine = machine::atlas();
  const stat::StatOptions options = dense_options(stat::LauncherKind::kLaunchMon);

  const auto merge_pred = [&](std::uint32_t tasks, std::uint32_t depth) {
    auto predictor = predictor_for(machine, tasks, options);
    const auto p = predictor.value().predict(
        depth == 1 ? tbon::TopologySpec::flat()
                   : tbon::TopologySpec::balanced(depth));
    return to_seconds(p.value().merge);
  };
  const auto merge_sim = [&](std::uint32_t tasks, std::uint32_t depth) {
    stat::StatOptions o = options;
    o.topology = depth == 1 ? tbon::TopologySpec::flat()
                            : tbon::TopologySpec::balanced(depth);
    machine::JobConfig job{.num_tasks = tasks};
    stat::StatScenario scenario(machine, job, o);
    const auto result = scenario.run();
    EXPECT_TRUE(result.status.is_ok());
    return to_seconds(result.phases.merge_time);
  };

  // Large scale: both sides say deep beats flat.
  EXPECT_LT(merge_sim(4096, 2), merge_sim(4096, 1));
  EXPECT_LT(merge_pred(4096, 2), merge_pred(4096, 1));
  EXPECT_LT(merge_sim(4096, 3), merge_sim(4096, 1));
  EXPECT_LT(merge_pred(4096, 3), merge_pred(4096, 1));
  // Small scale: both sides say flat is competitive (within 25%).
  EXPECT_LT(merge_sim(64, 1), 1.25 * merge_sim(64, 2));
  EXPECT_LT(merge_pred(64, 1), 1.25 * merge_pred(64, 2));
}

TEST(RankingAgreement, AutoWithinTenPercentOfBestSimulated) {
  // The acceptance bar, on both machines' crossover configs: the predictor's
  // top pick, *simulated*, lands within 10% of the best simulated candidate
  // in the enumerated space.
  struct Config {
    machine::MachineConfig machine;
    std::uint32_t tasks;
    stat::LauncherKind launcher;
  };
  const std::vector<Config> configs = {
      {machine::atlas(), 64, stat::LauncherKind::kLaunchMon},
      {machine::atlas(), 4096, stat::LauncherKind::kLaunchMon},
      {machine::bgl(), 4096, stat::LauncherKind::kCiodPatched},
      {machine::bgl(), 16384, stat::LauncherKind::kCiodPatched},
  };
  for (const Config& config : configs) {
    const stat::StatOptions options = dense_options(config.launcher);
    auto predictor = predictor_for(config.machine, config.tasks, options);
    ASSERT_TRUE(predictor.is_ok());
    auto search = search_topologies(predictor.value());
    ASSERT_TRUE(search.is_ok()) << config.machine.name << " " << config.tasks;

    double best = -1.0;
    double chosen = -1.0;
    for (const RankedTopology& ranked : search.value().viable) {
      const double sim = simulated_startup_plus_merge(
          config.machine, config.tasks, options, ranked.spec);
      if (sim < 0) continue;
      if (best < 0 || sim < best) best = sim;
      if (chosen < 0) chosen = sim;  // first = predictor's pick
    }
    ASSERT_GT(chosen, 0.0) << config.machine.name << " " << config.tasks;
    EXPECT_LE(chosen, 1.10 * best)
        << config.machine.name << " @ " << config.tasks
        << ": auto pick " << chosen << "s vs best " << best << "s";
  }
}

// --------------------------------------------------------------------------
// (b) `--topology auto` feasibility across sampled matrix cells

TEST(AutoTopology, NeverViolatesPlacementLimitsAcrossMatrixCells) {
  struct Cell {
    machine::MachineConfig machine;
    std::uint32_t tasks;
    machine::BglMode mode;
    stat::TaskSetRepr repr;
    stat::LauncherKind launcher;
  };
  std::vector<Cell> cells;
  for (const std::uint32_t tasks : {256u, 2048u, 4096u}) {
    for (const auto repr :
         {stat::TaskSetRepr::kDenseGlobal, stat::TaskSetRepr::kHierarchical}) {
      cells.push_back({machine::atlas(), tasks, machine::BglMode::kCoprocessor,
                       repr, stat::LauncherKind::kLaunchMon});
    }
  }
  for (const std::uint32_t tasks : {4096u, 16384u}) {
    for (const auto repr :
         {stat::TaskSetRepr::kDenseGlobal, stat::TaskSetRepr::kHierarchical}) {
      cells.push_back({machine::bgl(), tasks, machine::BglMode::kCoprocessor,
                       repr, stat::LauncherKind::kCiodPatched});
    }
  }
  cells.push_back({machine::bgl(), 8192, machine::BglMode::kVirtualNode,
                   stat::TaskSetRepr::kHierarchical,
                   stat::LauncherKind::kCiodPatched});

  for (const Cell& cell : cells) {
    machine::JobConfig job;
    job.num_tasks = cell.tasks;
    job.mode = cell.mode;
    stat::StatOptions options;
    options.repr = cell.repr;
    options.launcher = cell.launcher;
    const auto layout = machine::layout_daemons(cell.machine, job).value();

    auto chosen = choose_topology(cell.machine, job, options,
                                  machine::default_cost_model(cell.machine));
    ASSERT_TRUE(chosen.is_ok())
        << cell.machine.name << " " << cell.tasks << ": "
        << chosen.status().to_string();

    // The chosen spec must build under the machine's placement rules...
    auto topo = tbon::build_topology(cell.machine, layout, chosen.value());
    ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();
    // ...respect the connection ceiling (exactly the limit survives)...
    EXPECT_TRUE(tbon::connection_viability(topo.value(),
                                           cell.machine.max_tool_connections)
                    .is_ok());
    // ...and fit the comm-process slots.
    EXPECT_LE(topo.value().num_comm_procs(),
              tbon::comm_process_capacity(cell.machine, layout.num_daemons));
  }
}

TEST(AutoTopology, EndToEndThroughCliAndScenario) {
  const std::vector<std::string_view> args = {
      "--machine", "bgl",  "--tasks", "16384",
      "--repr",    "hier", "--topology", "auto"};
  auto config = stat::parse_cli(args);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_TRUE(config.value().options.topology_auto);

  stat::StatScenario scenario(config.value().machine, config.value().job,
                              config.value().options);
  const stat::StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  // 256 daemons cannot hang off the 256-connection front end: auto must have
  // resolved to a deep tree.
  EXPECT_GE(result.topology.depth, 2u);
  EXPECT_GT(result.num_comm_procs, 0u);

  // The chosen topology is a detail of *how* the tool ran; the diagnosis
  // must match an explicit-spec run of the same job.
  stat::CliConfig explicit_config = config.value();
  explicit_config.options.topology_auto = false;
  explicit_config.options.topology = tbon::TopologySpec::bgl(2);
  stat::StatScenario explicit_scenario(explicit_config.machine,
                                       explicit_config.job,
                                       explicit_config.options);
  const stat::StatRunResult explicit_result = explicit_scenario.run();
  ASSERT_TRUE(explicit_result.status.is_ok());
  ASSERT_EQ(result.classes.size(), explicit_result.classes.size());
  for (std::size_t i = 0; i < result.classes.size(); ++i) {
    EXPECT_EQ(result.classes[i].size(), explicit_result.classes[i].size());
  }
}

}  // namespace
}  // namespace petastat::plan
