// Cross-configuration end-to-end property suite: for every (machine,
// topology, representation) combination that is valid on the platform, the
// full pipeline must produce classes that cover the job, isolate the
// injected bug, and satisfy structural invariants. This is the broad sweep
// that catches interactions no single-module test sees.
#include <gtest/gtest.h>

#include "stat/prefix_tree.hpp"
#include "stat/scenario.hpp"

namespace petastat::stat {
namespace {

struct GridCase {
  const char* machine;
  std::uint32_t tasks;
  machine::BglMode mode;
  std::uint32_t depth;
  bool bgl_rules;
  TaskSetRepr repr;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return std::string(c.machine) + "_" + std::to_string(c.tasks) + "_" +
         machine::bgl_mode_name(c.mode) + "_d" + std::to_string(c.depth) +
         (c.repr == TaskSetRepr::kDenseGlobal ? "_dense" : "_hier");
}

class EndToEndGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(EndToEndGrid, PipelineInvariantsHold) {
  const GridCase& c = GetParam();
  const machine::MachineConfig m =
      std::string(c.machine) == "bgl" ? machine::bgl() : machine::atlas();

  machine::JobConfig job;
  job.num_tasks = c.tasks;
  job.mode = c.mode;

  StatOptions options;
  options.topology = c.bgl_rules ? tbon::TopologySpec::bgl(c.depth)
                     : c.depth == 1 ? tbon::TopologySpec::flat()
                                    : tbon::TopologySpec::balanced(c.depth);
  options.repr = c.repr;
  options.launcher = std::string(c.machine) == "bgl"
                         ? LauncherKind::kCiodPatched
                         : LauncherKind::kLaunchMon;

  StatScenario scenario(m, job, options);
  const StatRunResult result = scenario.run();
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();

  // 1. Phase ordering and positivity.
  EXPECT_GT(result.phases.startup_total, 0u);
  EXPECT_GT(result.phases.sample_time, 0u);
  EXPECT_GT(result.phases.merge_time, 0u);

  // 2. Classes partition the job.
  TaskSet all;
  std::uint64_t total = 0;
  for (const auto& cls : result.classes) {
    EXPECT_FALSE(all.intersects(cls.tasks));
    all.union_with(cls.tasks);
    total += cls.size();
  }
  EXPECT_EQ(total, c.tasks);
  EXPECT_EQ(all.count(), c.tasks);

  // 3. The injected bug is isolated.
  bool task1_isolated = false;
  for (const auto& cls : result.classes) {
    if (cls.size() == 1 && cls.tasks.contains(1)) task1_isolated = true;
  }
  EXPECT_TRUE(task1_isolated);

  // 4. Both trees share the root and the 2D tree is a subset (same sample-0
  //    structure contained in the union of all samples).
  EXPECT_FALSE(result.tree_2d.empty());
  EXPECT_FALSE(result.tree_3d.empty());
  EXPECT_LE(result.tree_2d.node_count(), result.tree_3d.node_count());
  EXPECT_LE(result.tree_2d.depth(), result.tree_3d.depth());

  // 5. Every 3D root-level edge carries the full job (all tasks ran main).
  ASSERT_EQ(result.tree_3d.root().children.size(), 1u);
  EXPECT_EQ(result.tree_3d.root().children.front().label.tasks.count(), c.tasks);

  // 6. Folded-stack output weights sum to the task count.
  const std::string folded =
      to_folded(result.tree_3d, scenario.app().frames());
  std::uint64_t folded_total = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t space = folded.find(' ', pos);
    const std::size_t eol = folded.find('\n', pos);
    folded_total += std::stoull(folded.substr(space + 1, eol - space - 1));
    pos = eol + 1;
  }
  EXPECT_EQ(folded_total, c.tasks);
}

INSTANTIATE_TEST_SUITE_P(
    Atlas, EndToEndGrid,
    ::testing::Values(
        GridCase{"atlas", 256, machine::BglMode::kCoprocessor, 1, false,
                 TaskSetRepr::kDenseGlobal},
        GridCase{"atlas", 256, machine::BglMode::kCoprocessor, 1, false,
                 TaskSetRepr::kHierarchical},
        GridCase{"atlas", 1024, machine::BglMode::kCoprocessor, 2, false,
                 TaskSetRepr::kDenseGlobal},
        GridCase{"atlas", 1024, machine::BglMode::kCoprocessor, 2, false,
                 TaskSetRepr::kHierarchical},
        GridCase{"atlas", 4096, machine::BglMode::kCoprocessor, 3, false,
                 TaskSetRepr::kHierarchical}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Bgl, EndToEndGrid,
    ::testing::Values(
        GridCase{"bgl", 8192, machine::BglMode::kCoprocessor, 2, true,
                 TaskSetRepr::kDenseGlobal},
        GridCase{"bgl", 8192, machine::BglMode::kCoprocessor, 2, true,
                 TaskSetRepr::kHierarchical},
        GridCase{"bgl", 16384, machine::BglMode::kVirtualNode, 2, true,
                 TaskSetRepr::kHierarchical},
        GridCase{"bgl", 16384, machine::BglMode::kVirtualNode, 3, true,
                 TaskSetRepr::kHierarchical},
        GridCase{"bgl", 4096, machine::BglMode::kCoprocessor, 1, true,
                 TaskSetRepr::kHierarchical}),
    case_name);

// --------------------------------------------------------------------------
// The TBON reduction must equal a sequential merge of all leaf payloads —
// the associativity/ordering-independence property that makes streaming
// filters sound.

TEST(ReductionSemantics, TreeReductionEqualsSequentialMerge) {
  app::RingHangOptions ring;
  ring.num_tasks = 512;
  ring.bgl_frames = false;
  app::RingHangApp app(ring);

  // Per-daemon local trees (64 daemons x 8 tasks, 3 samples).
  std::vector<GlobalTree> locals(64);
  GlobalTree sequential;
  for (std::uint32_t t = 0; t < 512; ++t) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      const auto path = app.stack(TaskId(t), 0, s);
      locals[t / 8].insert(path, GlobalLabel::for_task(t));
      sequential.insert(path, GlobalLabel::for_task(t));
    }
  }

  // Simulate a 3-level reduction: merge in arbitrary groups, then merge the
  // groups — any grouping must agree with the sequential merge.
  GlobalTree grouped;
  for (std::size_t g = 0; g < 8; ++g) {
    GlobalTree group;
    for (std::size_t d = g * 8; d < (g + 1) * 8; ++d) group.merge(locals[d]);
    grouped.merge(group);
  }
  EXPECT_EQ(grouped, sequential);

  // Reverse order too.
  GlobalTree reversed;
  for (auto it = locals.rbegin(); it != locals.rend(); ++it) {
    reversed.merge(*it);
  }
  EXPECT_EQ(reversed, sequential);
}

TEST(FoldedStacks, VisitWeightingCountsAllTraces) {
  app::RingHangOptions ring;
  ring.num_tasks = 64;
  ring.bgl_frames = false;
  app::RingHangApp app(ring);
  GlobalTree tree;
  const std::uint32_t samples = 5;
  for (std::uint32_t t = 0; t < 64; ++t) {
    for (std::uint32_t s = 0; s < samples; ++s) {
      tree.insert(app.stack(TaskId(t), 0, s), GlobalLabel::for_task(t));
    }
  }
  const std::string folded = to_folded(tree, app.frames(), /*by_visits=*/true);
  std::uint64_t total = 0;
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t space = folded.find(' ', pos);
    const std::size_t eol = folded.find('\n', pos);
    total += std::stoull(folded.substr(space + 1, eol - space - 1));
    pos = eol + 1;
  }
  EXPECT_EQ(total, 64u * samples);
}

}  // namespace
}  // namespace petastat::stat
