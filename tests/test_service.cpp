// Tests for the multi-session service layer: the resource ledger, the
// FIFO/backfill session scheduler, the arrival-trace parser, the service
// report writers, and the re-entrancy guarantees they rest on (re-runnable
// scheduler inputs, the single-shot scenario guard, the shared executor,
// and the planner's profile memoization).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "plan/predictor.hpp"
#include "service/ledger.hpp"
#include "service/report.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"
#include "service/trace.hpp"
#include "sim/executor.hpp"
#include "stat/cli_config.hpp"
#include "stat/scenario.hpp"

namespace petastat::service {
namespace {

// Topology-independent fingerprint of a run's analysis output (same idiom as
// the scenario matrix's bit-identity checks).
std::vector<std::string> class_signature(const stat::StatRunResult& result) {
  std::vector<std::string> signature;
  signature.reserve(result.classes.size());
  for (const auto& cls : result.classes) {
    signature.push_back(std::to_string(cls.size()) + ":" +
                        cls.tasks.edge_label(/*max_items=*/64));
  }
  std::sort(signature.begin(), signature.end());
  return signature;
}

/// A small, fast atlas session: 128 tasks -> 16 daemons, flat topology
/// (demand: 0 comm slots, 16 connections, 1 executor thread).
SessionRequest small_session(const std::string& name, double arrival,
                             std::uint32_t priority = 0,
                             std::uint32_t stream_samples = 0) {
  SessionRequest request;
  request.name = name;
  request.arrival_seconds = arrival;
  request.priority = priority;
  request.job = machine::JobConfig{.num_tasks = 128};
  request.options.topology = tbon::TopologySpec::flat();
  request.options.stream_samples = stream_samples;
  return request;
}

const SessionStats& stats_for(const ServiceReport& report,
                              const std::string& name) {
  for (const SessionStats& s : report.sessions) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no session named " << name;
  static SessionStats missing;
  return missing;
}

// --- ResourceLedger --------------------------------------------------------

TEST(ResourceLedger, AcquireReleaseAndFits) {
  ResourceLedger ledger(/*comm*/ 10, /*fe*/ 4, /*exec*/ 2);
  EXPECT_EQ(ledger.comm_slot_capacity(), 10u);
  EXPECT_EQ(ledger.fe_connection_capacity(), 4u);
  EXPECT_EQ(ledger.exec_thread_capacity(), 2u);

  const SessionDemand d{.comm_slots = 6, .fe_connections = 3,
                        .exec_threads = 1};
  EXPECT_TRUE(ledger.fits(d));
  ledger.acquire(d, seconds(1.0));
  EXPECT_EQ(ledger.comm_slots_in_use(), 6u);
  EXPECT_EQ(ledger.fe_connections_in_use(), 3u);
  EXPECT_EQ(ledger.exec_threads_in_use(), 1u);

  // A second copy exceeds the connection dimension only.
  EXPECT_FALSE(ledger.fits(d));
  EXPECT_TRUE(ledger.fits({.comm_slots = 4, .fe_connections = 1,
                           .exec_threads = 1}));

  const SessionDemand free = ledger.free();
  EXPECT_EQ(free.comm_slots, 4u);
  EXPECT_EQ(free.fe_connections, 1u);
  EXPECT_EQ(free.exec_threads, 1u);

  ledger.release(d, seconds(3.0));
  EXPECT_EQ(ledger.comm_slots_in_use(), 0u);
  EXPECT_TRUE(ledger.fits(d));
}

TEST(ResourceLedger, UtilizationIntegratesBusyTime) {
  ResourceLedger ledger(/*comm*/ 8, /*fe*/ 8, /*exec*/ 4);
  const SessionDemand d{.comm_slots = 8, .fe_connections = 4,
                        .exec_threads = 1};
  ledger.acquire(d, seconds(0.0));
  ledger.release(d, seconds(5.0));
  // Busy for 5 of 10 seconds: comm at 8/8, fe at 4/8, exec at 1/4.
  EXPECT_DOUBLE_EQ(ledger.comm_slot_utilization(seconds(10.0)), 0.5);
  EXPECT_DOUBLE_EQ(ledger.fe_connection_utilization(seconds(10.0)), 0.25);
  EXPECT_DOUBLE_EQ(ledger.exec_thread_utilization(seconds(10.0)), 0.125);
  EXPECT_DOUBLE_EQ(ledger.comm_slot_utilization(0), 0.0);
}

TEST(ResourceLedger, FitsWithinIsElementwise) {
  const SessionDemand big{.comm_slots = 4, .fe_connections = 4,
                          .exec_threads = 2};
  EXPECT_TRUE((SessionDemand{.comm_slots = 4, .fe_connections = 4,
                             .exec_threads = 2}
                   .fits_within(big)));
  EXPECT_FALSE((SessionDemand{.comm_slots = 5, .fe_connections = 1,
                              .exec_threads = 1}
                    .fits_within(big)));
  EXPECT_FALSE((SessionDemand{.comm_slots = 1, .fe_connections = 1,
                              .exec_threads = 3}
                    .fits_within(big)));
}

// --- Policy parsing and submission validation ------------------------------

TEST(SchedulerPolicyName, RoundTrips) {
  EXPECT_EQ(parse_scheduler_policy("fifo").value(), SchedulerPolicy::kFifo);
  EXPECT_EQ(parse_scheduler_policy("backfill").value(),
            SchedulerPolicy::kBackfill);
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kFifo), "fifo");
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kBackfill), "backfill");
  auto bad = parse_scheduler_policy("sjf");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionScheduler, SubmitValidatesPriorityAndArrival) {
  ServiceConfig config;
  config.machine = machine::atlas();
  SessionScheduler scheduler(config);

  SessionRequest bad_priority = small_session("p", 0.0);
  bad_priority.priority = kMaxSessionPriority + 1;
  EXPECT_EQ(scheduler.submit(bad_priority).code(),
            StatusCode::kInvalidArgument);

  SessionRequest bad_arrival = small_session("a", 0.0);
  bad_arrival.arrival_seconds = -1.0;
  EXPECT_EQ(scheduler.submit(bad_arrival).code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(scheduler.submit(small_session("ok", 0.0)).is_ok());
}

TEST(SessionScheduler, SubmitAfterRunIsFailedPrecondition) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.executor_threads = 1;
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(small_session("only", 0.0)).is_ok());
  const ServiceReport report = scheduler.run();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(scheduler.submit(small_session("late", 0.0)).code(),
            StatusCode::kFailedPrecondition);
}

// --- FIFO semantics --------------------------------------------------------

TEST(SessionScheduler, FifoRunsInArrivalOrderWithoutOverlap) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.policy = SchedulerPolicy::kFifo;
  config.executor_threads = 1;  // exec dimension serializes everything
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(small_session("first", 0.0)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("second", 0.1)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("third", 0.2)).is_ok());

  const ServiceReport report = scheduler.run();
  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.backfilled, 0u);

  const SessionStats& first = stats_for(report, "first");
  const SessionStats& second = stats_for(report, "second");
  const SessionStats& third = stats_for(report, "third");
  EXPECT_EQ(first.start, seconds(0.0));
  // Serialized: each successor starts exactly at its predecessor's
  // completion, and queue waits are positive.
  EXPECT_EQ(second.start, first.completion);
  EXPECT_EQ(third.start, second.completion);
  EXPECT_GT(second.queue_wait, 0u);
  EXPECT_GT(report.sessions_per_hour, 0.0);
  EXPECT_GT(report.exec_thread_utilization, 0.99);
}

TEST(SessionScheduler, QueueOrdersByPriorityThenArrivalThenSubmission) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.policy = SchedulerPolicy::kFifo;
  config.executor_threads = 1;
  SessionScheduler scheduler(config);
  // The blocker occupies the single executor thread while the others
  // arrive, so they are ranked *as a queue* when it completes.
  ASSERT_TRUE(
      scheduler.submit(small_session("blocker", 0.0, 0, /*stream=*/4))
          .is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("low", 0.2, 1)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("high-late", 0.4, 9)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("high-early", 0.3, 9)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("high-tie", 0.4, 9)).is_ok());

  const ServiceReport report = scheduler.run();
  EXPECT_EQ(report.completed, 5u);

  const SessionStats& blocker = stats_for(report, "blocker");
  // Precondition for the ranking to be observable: everyone arrived while
  // the blocker was still running.
  ASSERT_GT(blocker.completion, seconds(0.4));
  // Priority beats arrival; equal priority goes by arrival; equal
  // arrival goes by submission order; the low-priority early arrival
  // runs last.
  EXPECT_LT(stats_for(report, "high-early").start,
            stats_for(report, "high-late").start);
  EXPECT_LT(stats_for(report, "high-late").start,
            stats_for(report, "high-tie").start);
  EXPECT_LT(stats_for(report, "high-tie").start,
            stats_for(report, "low").start);
}

// --- Resource exhaustion ---------------------------------------------------

TEST(SessionScheduler, TransientExhaustionQueuesInsteadOfRejecting) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.policy = SchedulerPolicy::kFifo;
  config.executor_threads = 1;
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(small_session("holder", 0.0)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("waiter", 0.0)).is_ok());

  const ServiceReport report = scheduler.run();
  // Both fit the idle machine, so neither is rejected: the second waits
  // for the executor thread and then completes.
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.completed, 2u);
  const SessionStats& waiter = stats_for(report, "waiter");
  EXPECT_TRUE(waiter.status.is_ok());
  EXPECT_GT(waiter.queue_wait, 0u);
  EXPECT_EQ(waiter.start, stats_for(report, "holder").completion);
}

TEST(SessionScheduler, NeverFitsIsRejectedAtArrival) {
  ServiceConfig config;
  config.machine = machine::atlas();
  // A flat 16-daemon session needs 16 connections; cap the ledger at 4 so
  // it can never fit, even on an idle machine.
  config.fe_connection_capacity = 4;
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(small_session("too-big", 0.0)).is_ok());

  const ServiceReport report = scheduler.run();
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.completed, 0u);
  const SessionStats& s = stats_for(report, "too-big");
  EXPECT_FALSE(s.admitted);
  EXPECT_EQ(s.status.code(), StatusCode::kResourceExhausted);
}

// --- Backfill --------------------------------------------------------------

/// Shared fixture trace: with two executor threads, "long" (streaming, so
/// it runs well past every arrival) holds one thread; "wide" needs both, so
/// it blocks as the queue head; "small" is short enough to finish before
/// "long" does. Backfill may start "small" in the idle thread; FIFO may not.
void submit_backfill_trace(SessionScheduler& scheduler) {
  ASSERT_TRUE(
      scheduler.submit(small_session("long", 0.0, 0, /*stream=*/8)).is_ok());
  SessionRequest wide = small_session("wide", 0.2);
  wide.options.exec_threads = 2;
  ASSERT_TRUE(scheduler.submit(wide).is_ok());
  SessionRequest small = small_session("small", 0.4);
  small.job.num_tasks = 64;
  ASSERT_TRUE(scheduler.submit(small).is_ok());
}

TEST(SessionScheduler, BackfillStartsSmallJobsWithoutDelayingHead) {
  ServiceConfig fifo_config;
  fifo_config.machine = machine::atlas();
  fifo_config.policy = SchedulerPolicy::kFifo;
  fifo_config.executor_threads = 2;
  SessionScheduler fifo(fifo_config);
  submit_backfill_trace(fifo);
  const ServiceReport fifo_report = fifo.run();

  ServiceConfig bf_config = fifo_config;
  bf_config.policy = SchedulerPolicy::kBackfill;
  SessionScheduler backfill(bf_config);
  submit_backfill_trace(backfill);
  const ServiceReport bf_report = backfill.run();

  ASSERT_EQ(fifo_report.completed, 3u);
  ASSERT_EQ(bf_report.completed, 3u);

  // Precondition for the scenario to be interesting: "small" is strictly
  // shorter than the head's shadow (the "long" completion).
  const SessionStats& long_run = stats_for(bf_report, "long");
  const SessionStats& small_run = stats_for(bf_report, "small");
  ASSERT_LT(seconds(0.4) + small_run.result.total_virtual_time,
            long_run.completion);

  // FIFO strands the idle thread behind the blocked head...
  EXPECT_EQ(fifo_report.backfilled, 0u);
  EXPECT_EQ(stats_for(fifo_report, "small").start,
            stats_for(fifo_report, "wide").completion);
  // ...backfill uses it, without moving the head's start by a nanosecond.
  EXPECT_EQ(bf_report.backfilled, 1u);
  EXPECT_TRUE(small_run.backfilled);
  EXPECT_EQ(small_run.start, seconds(0.4));
  EXPECT_EQ(stats_for(bf_report, "wide").start,
            stats_for(fifo_report, "wide").start);
  // Strictly better throughput on the same trace.
  EXPECT_LT(bf_report.makespan, fifo_report.makespan);
  EXPECT_GT(bf_report.sessions_per_hour, fifo_report.sessions_per_hour);
}

// --- Interleaving determinism and residual planning ------------------------

TEST(SessionScheduler, InterleavedSessionsAreBitIdenticalToSoloRuns) {
  SessionRequest a = small_session("a", 0.0);
  a.options.seed = 101;
  SessionRequest b = small_session("b", 0.1);
  b.options.seed = 202;

  ServiceConfig config;
  config.machine = machine::atlas();
  config.executor_threads = 2;  // both sessions genuinely overlap
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(a).is_ok());
  ASSERT_TRUE(scheduler.submit(b).is_ok());
  const ServiceReport report = scheduler.run();
  ASSERT_EQ(report.completed, 2u);
  // Overlap really happened: "b" started before "a" finished.
  EXPECT_LT(stats_for(report, "b").start, stats_for(report, "a").completion);

  stat::StatScenario solo_a(machine::atlas(), a.job, a.options);
  stat::StatScenario solo_b(machine::atlas(), b.job, b.options);
  EXPECT_EQ(class_signature(stats_for(report, "a").result),
            class_signature(solo_a.run()));
  EXPECT_EQ(class_signature(stats_for(report, "b").result),
            class_signature(solo_b.run()));
}

TEST(SessionScheduler, AutoTopologyPlansAgainstResidualCapacity) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.executor_threads = 4;
  // 20 connections total; the pinned flat blocker holds 16 of them.
  config.fe_connection_capacity = 20;
  SessionScheduler scheduler(config);
  ASSERT_TRUE(
      scheduler.submit(small_session("blocker", 0.0, 0, /*stream=*/4))
          .is_ok());
  SessionRequest auto_session = small_session("auto", 0.5);
  auto_session.options.topology_auto = true;
  ASSERT_TRUE(scheduler.submit(auto_session).is_ok());

  const ServiceReport report = scheduler.run();
  ASSERT_EQ(report.completed, 2u);
  const SessionStats& blocker = stats_for(report, "blocker");
  const SessionStats& resolved = stats_for(report, "auto");
  ASSERT_GT(blocker.completion, seconds(0.5));
  // The planner priced the session against the 4 free connections and found
  // a narrower tree instead of waiting for the blocker to release its 16.
  EXPECT_LT(resolved.start, blocker.completion);
  EXPECT_LE(resolved.demand.fe_connections, 4u);
  EXPECT_TRUE(resolved.status.is_ok());
  // Narrower topology, same analysis: classes match the solo run on the
  // idle machine (which is free to pick a different spec).
  stat::StatScenario solo(machine::atlas(), auto_session.job,
                          auto_session.options);
  EXPECT_EQ(class_signature(resolved.result), class_signature(solo.run()));
}

// --- Trace parsing ---------------------------------------------------------

TEST(ServiceTrace, ParsesConfigAndSessions) {
  const char* text = R"({
    "machine": "petascale",
    "policy": "fifo",
    "executor_threads": 3,
    "comm_slot_capacity": 512,
    "fe_connection_capacity": 128,
    "sessions": [
      {"name": "big", "arrival": 1.5, "priority": 7,
       "tasks": 65536, "topology": "2deep", "seed": 42},
      {"arrival": 2, "tasks": 4096, "sbrs": true}
    ]
  })";
  auto trace = parse_service_trace(text);
  ASSERT_TRUE(trace.is_ok()) << trace.status().to_string();
  const ServiceConfig& config = trace.value().config;
  EXPECT_EQ(config.machine.name, "petascale");
  EXPECT_EQ(config.policy, SchedulerPolicy::kFifo);
  EXPECT_EQ(config.executor_threads, 3u);
  EXPECT_EQ(config.comm_slot_capacity.value_or(0), 512u);
  EXPECT_EQ(config.fe_connection_capacity.value_or(0), 128u);

  ASSERT_EQ(trace.value().sessions.size(), 2u);
  const SessionRequest& big = trace.value().sessions[0];
  EXPECT_EQ(big.name, "big");
  EXPECT_DOUBLE_EQ(big.arrival_seconds, 1.5);
  EXPECT_EQ(big.priority, 7u);
  EXPECT_EQ(big.job.num_tasks, 65536u);
  EXPECT_EQ(big.options.seed, 42u);
  EXPECT_EQ(big.options.topology.depth, 2u);
  const SessionRequest& second = trace.value().sessions[1];
  EXPECT_EQ(second.name, "session-1");  // default name by index
  EXPECT_TRUE(second.options.use_sbrs);
}

TEST(ServiceTrace, RejectsMalformedInput) {
  const std::pair<const char*, const char*> cases[] = {
      {"not json at all", "malformed JSON"},
      {R"({"sessions": [{"tasks": 128}], )", "truncated object"},
      {R"({"bogus": 1, "sessions": [{"tasks": 128}]})", "unknown key"},
      {R"({"machine": "cray", "sessions": [{"tasks": 128}]})",
       "unknown machine"},
      {R"({"policy": "sjf", "sessions": [{"tasks": 128}]})",
       "unknown policy"},
      {R"({"executor_threads": 0, "sessions": [{"tasks": 128}]})",
       "executor_threads out of range"},
      {R"({"sessions": []})", "empty sessions"},
      {R"({"machine": "atlas"})", "missing sessions"},
      {R"({"sessions": [{"priority": 101}]})", "priority out of range"},
      {R"({"sessions": [{"arrival": -1}]})", "negative arrival"},
      {R"({"sessions": [{"name": ""}]})", "empty name"},
      {R"({"sessions": [{"machine": "bgl"}]})", "per-session machine"},
      {R"({"sessions": [{"service": "x.json"}]})", "per-session service"},
      {R"({"sessions": [{"sbrs": false}]})", "false boolean flag"},
      {R"({"sessions": [{"no-such-flag": 3}]})", "unknown session flag"},
      {R"({"sessions": [{"tasks": "many"}]})", "non-numeric tasks"},
  };
  for (const auto& [text, what] : cases) {
    auto trace = parse_service_trace(text);
    ASSERT_FALSE(trace.is_ok()) << what;
    EXPECT_EQ(trace.status().code(), StatusCode::kInvalidArgument) << what;
  }
}

TEST(ServiceTrace, MissingFileIsNotFound) {
  auto trace = load_service_trace("/nonexistent/trace.json");
  ASSERT_FALSE(trace.is_ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kNotFound);
}

// --- CLI flags -------------------------------------------------------------

TEST(ServiceCli, ParsesServiceFlags) {
  const std::vector<std::string_view> args{"--service", "trace.json",
                                           "--service-policy", "fifo"};
  auto config = stat::parse_cli(args);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_EQ(config.value().service_trace_path, "trace.json");
  EXPECT_EQ(config.value().service_policy, "fifo");
}

TEST(ServiceCli, RejectsBadServiceFlags) {
  const std::vector<std::vector<std::string_view>> cases = {
      {"--service"},                          // missing path
      {"--service", ""},                      // empty path
      {"--service-policy", "sjf"},            // unknown policy
      {"--service", "t.json", "--service-policy"},  // missing value
  };
  for (const auto& args : cases) {
    auto config = stat::parse_cli(args);
    ASSERT_FALSE(config.is_ok());
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
  }
}

// --- Report rendering ------------------------------------------------------

TEST(ServiceReportRender, TextAndJsonCoverTheAggregates) {
  ServiceConfig config;
  config.machine = machine::atlas();
  config.executor_threads = 1;
  SessionScheduler scheduler(config);
  ASSERT_TRUE(scheduler.submit(small_session("alpha", 0.0)).is_ok());
  ASSERT_TRUE(scheduler.submit(small_session("beta", 0.1)).is_ok());
  const ServiceReport report = scheduler.run();

  const std::string text = render_service_text(report);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("policy=backfill"), std::string::npos);
  EXPECT_NE(text.find("sessions/hour"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);

  const std::string json = render_service_json(report);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"sessions_per_hour\""), std::string::npos);
  EXPECT_NE(json.find("\"comm_slot_utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
}

// --- Re-entrancy underpinnings ---------------------------------------------

TEST(ScenarioReentrancy, RunIsSingleShot) {
  machine::JobConfig job{.num_tasks = 128};
  stat::StatOptions options;
  stat::StatScenario scenario(machine::atlas(), job, options);
  EXPECT_TRUE(scenario.run().status.is_ok());
  EXPECT_EQ(scenario.run().status.code(), StatusCode::kFailedPrecondition);
}

TEST(ScenarioReentrancy, BorrowedExecutorMatchesOwned) {
  machine::JobConfig job{.num_tasks = 128};
  stat::StatOptions options;
  options.exec_threads = 2;
  stat::StatScenario owned(machine::atlas(), job, options);
  const auto owned_result = owned.run();
  ASSERT_TRUE(owned_result.status.is_ok());

  sim::Executor shared(2);
  stat::StatScenario first(machine::atlas(), job, options, &shared);
  stat::StatScenario second(machine::atlas(), job, options, &shared);
  const auto first_result = first.run();
  const auto second_result = second.run();
  ASSERT_TRUE(first_result.status.is_ok());
  EXPECT_EQ(class_signature(first_result), class_signature(owned_result));
  EXPECT_EQ(class_signature(second_result), class_signature(owned_result));
  EXPECT_EQ(first_result.total_virtual_time, owned_result.total_virtual_time);
}

TEST(ProfileCache, MissThenHitAndIdenticalProfiles) {
  plan::reset_profile_cache();
  const machine::MachineConfig machine = machine::atlas();
  const machine::JobConfig job{.num_tasks = 256};
  stat::StatOptions options;
  auto layout = machine::layout_daemons(machine, job);
  ASSERT_TRUE(layout.is_ok());

  const plan::WorkloadProfile first =
      plan::profile_workload(machine, job, layout.value(), options);
  auto counters = plan::profile_cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 0u);

  const plan::WorkloadProfile second =
      plan::profile_workload(machine, job, layout.value(), options);
  counters = plan::profile_cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(first.traces_per_daemon, second.traces_per_daemon);
  EXPECT_EQ(first.leaf_payload_bytes, second.leaf_payload_bytes);
  EXPECT_EQ(first.probe_counts, second.probe_counts);
  EXPECT_EQ(first.merged_payload_bytes, second.merged_payload_bytes);

  // A different job size is a different key.
  const machine::JobConfig other_job{.num_tasks = 512};
  auto other_layout = machine::layout_daemons(machine, other_job);
  ASSERT_TRUE(other_layout.is_ok());
  (void)plan::profile_workload(machine, other_job, other_layout.value(),
                               options);
  counters = plan::profile_cache_counters();
  EXPECT_EQ(counters.misses, 2u);
  plan::reset_profile_cache();
}

}  // namespace
}  // namespace petastat::service
