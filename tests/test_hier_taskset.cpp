// Unit and property tests for the hierarchical task lists and the front-end
// remap (the Sec. V-B optimization and Fig. 6b).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stat/hier_taskset.hpp"

namespace petastat::stat {
namespace {

machine::DaemonLayout layout_of(std::uint32_t daemons, std::uint32_t per,
                                std::uint32_t tasks) {
  machine::DaemonLayout l;
  l.num_daemons = daemons;
  l.tasks_per_daemon = per;
  l.num_tasks = tasks;
  return l;
}

TEST(HierTaskSet, SingleAndInsert) {
  HierTaskSet s = HierTaskSet::single(3, 7);
  EXPECT_EQ(s.count(), 1u);
  s.insert(3, 8);
  s.insert(1, 0);
  EXPECT_EQ(s.count(), 3u);
  ASSERT_EQ(s.blocks().size(), 2u);
  EXPECT_EQ(s.blocks()[0].daemon, 1u);  // sorted by daemon
  EXPECT_EQ(s.blocks()[1].daemon, 3u);
}

TEST(HierTaskSet, MergeConcatenatesDisjointDaemons) {
  HierTaskSet a = HierTaskSet::single(0, 5);
  HierTaskSet b = HierTaskSet::single(2, 9);
  a.merge(b);
  EXPECT_EQ(a.blocks().size(), 2u);
  EXPECT_EQ(a.count(), 2u);
}

TEST(HierTaskSet, MergeUnionsSameDaemon) {
  HierTaskSet a = HierTaskSet::single(1, 5);
  HierTaskSet b = HierTaskSet::single(1, 5);
  b.insert(1, 6);
  a.merge(b);
  EXPECT_EQ(a.blocks().size(), 1u);
  EXPECT_EQ(a.count(), 2u);
}

class HierMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierMergeProperty, CommutativeAssociativeSorted) {
  Rng rng(GetParam() * 13 + 1);
  const auto random_set = [&rng]() {
    HierTaskSet s;
    const int n = 1 + static_cast<int>(rng.next_below(30));
    for (int i = 0; i < n; ++i) {
      s.insert(static_cast<std::uint32_t>(rng.next_below(16)),
               static_cast<std::uint32_t>(rng.next_below(128)));
    }
    return s;
  };
  const HierTaskSet a = random_set();
  const HierTaskSet b = random_set();
  const HierTaskSet c = random_set();

  HierTaskSet ab = a;
  ab.merge(b);
  HierTaskSet ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative

  HierTaskSet ab_c = ab;
  ab_c.merge(c);
  HierTaskSet bc = b;
  bc.merge(c);
  HierTaskSet a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associative

  // Blocks stay sorted and daemon-unique.
  for (std::size_t i = 1; i < ab_c.blocks().size(); ++i) {
    EXPECT_LT(ab_c.blocks()[i - 1].daemon, ab_c.blocks()[i].daemon);
  }

  // Idempotent.
  HierTaskSet aa = a;
  aa.merge(a);
  EXPECT_EQ(aa, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierMergeProperty, ::testing::Range<std::uint64_t>(0, 10));

class HierWireRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HierWireRoundtrip, EncodeDecode) {
  Rng rng(GetParam() + 99);
  HierTaskSet s;
  for (int i = 0; i < 50; ++i) {
    s.insert(static_cast<std::uint32_t>(rng.next_below(1700)),
             static_cast<std::uint32_t>(rng.next_below(128)));
  }
  ByteSink sink;
  s.encode(sink);
  EXPECT_EQ(sink.size(), s.wire_bytes());
  auto bytes = sink.take();
  ByteSource source(bytes);
  auto decoded = HierTaskSet::decode(source);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), s);
  EXPECT_TRUE(source.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierWireRoundtrip, ::testing::Range<std::uint64_t>(0, 8));

TEST(HierTaskSet, WireSizeTracksSubtreeNotJob) {
  // One daemon's full block costs a handful of bytes no matter the job size.
  HierTaskSet s;
  for (std::uint32_t i = 0; i < 128; ++i) s.insert(1663, i);
  EXPECT_LT(s.wire_bytes(), 12u);
}

// --------------------------------------------------------------------------
// TaskMap

TEST(TaskMap, IdentityMapsContiguously) {
  const TaskMap map = TaskMap::identity(layout_of(4, 8, 32));
  EXPECT_EQ(map.global_rank(0, 0), 0u);
  EXPECT_EQ(map.global_rank(2, 5), 21u);
  EXPECT_EQ(map.global_rank(3, 7), 31u);
}

TEST(TaskMap, ShuffledIsAPermutationOfBlocks) {
  const auto layout = layout_of(16, 8, 128);
  const TaskMap map = TaskMap::shuffled(layout, 7);
  std::vector<bool> seen(128, false);
  for (std::uint32_t d = 0; d < 16; ++d) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      const std::uint32_t g = map.global_rank(d, i);
      ASSERT_LT(g, 128u);
      EXPECT_FALSE(seen[g]);
      seen[g] = true;
    }
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(TaskMap, ShuffledActuallyShuffles) {
  const auto layout = layout_of(64, 8, 512);
  const TaskMap id = TaskMap::identity(layout);
  const TaskMap shuffled = TaskMap::shuffled(layout, 7);
  int moved = 0;
  for (std::uint32_t d = 0; d < 64; ++d) {
    if (id.global_rank(d, 0) != shuffled.global_rank(d, 0)) ++moved;
  }
  EXPECT_GT(moved, 32);
}

TEST(TaskMap, ShuffledIsDeterministicInSeed) {
  const auto layout = layout_of(16, 8, 128);
  const TaskMap a = TaskMap::shuffled(layout, 7);
  const TaskMap b = TaskMap::shuffled(layout, 7);
  const TaskMap c = TaskMap::shuffled(layout, 8);
  int diff_ac = 0;
  for (std::uint32_t d = 0; d < 16; ++d) {
    EXPECT_EQ(a.global_rank(d, 0), b.global_rank(d, 0));
    if (a.global_rank(d, 0) != c.global_rank(d, 0)) ++diff_ac;
  }
  EXPECT_GT(diff_ac, 0);
}

TEST(TaskMap, RemapMatchesElementwiseMapping) {
  const auto layout = layout_of(8, 16, 128);
  const TaskMap map = TaskMap::shuffled(layout, 3);
  HierTaskSet hier;
  Rng rng(11);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> members;
  for (int i = 0; i < 60; ++i) {
    const auto d = static_cast<std::uint32_t>(rng.next_below(8));
    const auto l = static_cast<std::uint32_t>(rng.next_below(16));
    hier.insert(d, l);
    members.emplace_back(d, l);
  }
  const TaskSet global = map.remap(hier);
  EXPECT_EQ(global.count(), hier.count());
  for (const auto& [d, l] : members) {
    EXPECT_TRUE(global.contains(map.global_rank(d, l)));
  }
}

TEST(TaskMap, RemapOfFullJobIsFullRange) {
  const auto layout = layout_of(13, 8, 104);
  const TaskMap map = TaskMap::shuffled(layout, 5);
  HierTaskSet everything;
  for (std::uint32_t d = 0; d < 13; ++d) {
    for (std::uint32_t i = 0; i < 8; ++i) everything.insert(d, i);
  }
  const TaskSet global = map.remap(everything);
  EXPECT_EQ(global.count(), 104u);
  EXPECT_EQ(global.interval_count(), 1u);  // [0, 103]
}

}  // namespace
}  // namespace petastat::stat
