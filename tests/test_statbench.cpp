// Tests for the STATBench-style emulation driver.
#include <gtest/gtest.h>

#include "stat/statbench.hpp"

namespace petastat::stat {
namespace {

TEST(StatBenchEmulation, RunsAtVirtualScaleBeyondTheMachine) {
  StatBenchConfig config;
  config.machine = machine::bgl();
  config.virtual_tasks = 1u << 20;  // 1M virtual tasks on 1,664 daemons
  config.repr = TaskSetRepr::kHierarchical;
  config.num_samples = 2;
  const auto result = run_statbench(config);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.virtual_tasks, 1u << 20);
  // ceil(2^20 / 1664) = 631 tasks/daemon; trailing daemons with no tasks are
  // trimmed, leaving ceil(2^20 / 631) = 1662 of the 1664 physical daemons.
  EXPECT_EQ(result.virtual_tasks_per_daemon, 631u);
  EXPECT_EQ(result.physical_daemons, 1662u);
  EXPECT_GT(result.merge_time, 0u);
  EXPECT_GT(result.remap_time, 0u);
  EXPECT_FALSE(result.classes.empty());
}

TEST(StatBenchEmulation, ClassesPartitionVirtualTasks) {
  StatBenchConfig config;
  config.virtual_tasks = 65536;
  config.app_classes = 16;
  config.num_samples = 1;
  const auto result = run_statbench(config);
  ASSERT_TRUE(result.status.is_ok());
  std::uint64_t total = 0;
  for (const auto& cls : result.classes) total += cls.size();
  EXPECT_EQ(total, 65536u);
}

TEST(StatBenchEmulation, DenseAndHierAgreeOnTheTree) {
  StatBenchConfig config;
  config.virtual_tasks = 8192;
  config.num_samples = 2;
  config.repr = TaskSetRepr::kDenseGlobal;
  const auto dense = run_statbench(config);
  config.repr = TaskSetRepr::kHierarchical;
  const auto hier = run_statbench(config);
  ASSERT_TRUE(dense.status.is_ok());
  ASSERT_TRUE(hier.status.is_ok());
  EXPECT_EQ(dense.tree_3d, hier.tree_3d);
  EXPECT_EQ(dense.classes.size(), hier.classes.size());
  EXPECT_EQ(hier.remap_time > 0u, true);
  EXPECT_EQ(dense.remap_time, 0u);
}

TEST(StatBenchEmulation, DenseVolumeExplodesWithVirtualScale) {
  StatBenchConfig small;
  small.virtual_tasks = 65536;
  small.num_samples = 1;
  small.repr = TaskSetRepr::kDenseGlobal;
  StatBenchConfig big = small;
  big.virtual_tasks = 1u << 20;
  const auto small_result = run_statbench(small);
  const auto big_result = run_statbench(big);
  ASSERT_TRUE(small_result.status.is_ok());
  ASSERT_TRUE(big_result.status.is_ok());
  // 16x virtual tasks -> at least 16x dense bytes per leaf payload (more in
  // practice: bigger per-daemon blocks also reach more of the app's class
  // paths, growing the local tree).
  const double ratio =
      static_cast<double>(big_result.leaf_payload_bytes) /
      static_cast<double>(small_result.leaf_payload_bytes);
  EXPECT_GT(ratio, 10.0);
}

TEST(StatBenchEmulation, ExplicitDaemonCountHonored) {
  StatBenchConfig config;
  config.machine = machine::atlas();
  config.topology = tbon::TopologySpec::balanced(2);
  config.physical_daemons = 100;
  config.virtual_tasks = 10000;
  config.num_samples = 1;
  const auto result = run_statbench(config);
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_EQ(result.physical_daemons, 100u);
  EXPECT_EQ(result.virtual_tasks_per_daemon, 100u);
}

TEST(StatBenchEmulation, RejectsDegenerateConfigs) {
  StatBenchConfig config;
  config.virtual_tasks = 0;
  EXPECT_FALSE(run_statbench(config).status.is_ok());
  config.virtual_tasks = 1ull << 40;
  EXPECT_FALSE(run_statbench(config).status.is_ok());
}

TEST(StatBenchEmulation, DeterministicPerSeed) {
  StatBenchConfig config;
  config.virtual_tasks = 16384;
  config.num_samples = 2;
  const auto a = run_statbench(config);
  const auto b = run_statbench(config);
  ASSERT_TRUE(a.status.is_ok());
  EXPECT_EQ(a.merge_time, b.merge_time);
  EXPECT_EQ(a.merge_bytes, b.merge_bytes);
  EXPECT_EQ(a.tree_3d, b.tree_3d);
}

}  // namespace
}  // namespace petastat::stat
