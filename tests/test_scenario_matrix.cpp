// Scenario-matrix harness: runs StatScenario over the pruned cross-product of
//   {Atlas, BG/L} x {CO, VN} x {dense, hierarchical} x {flat, balanced(2),
//   balanced(16)} x {launchmon, mrnet-rsh, ciod-patched} x {ring-hang,
//   threaded-ring, statbench, io-stall, imbalance}
// and asserts, in every valid cell:
//   1. the pipeline completes with an OK status,
//   2. phase ordering (launch before connect before sampling before merge,
//      every measured phase positive, remap only for the hierarchical repr),
//   3. task-count conservation (classes cover the job exactly; partition it
//      for single-threaded apps),
//   4. dense/hierarchical equivalence-class agreement: the same cell with the
//      representation flipped yields the same classes.
// Cells that are invalid on the platform (VN mode off BG/L, rsh on BG/L,
// CIOD off BG/L, 16-deep trees) are pruned; the pruning itself is tested —
// pruned-but-runnable configurations must fail cleanly, never crash.
//
// PETASTAT_EXEC_THREADS=N runs every cell through the parallel execution
// engine (default 1 = serial). Results are bit-identical by the engine's
// determinism contract — test_parallel_determinism asserts that — so the
// matrix passes identically either way, just faster on more cores.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "stat/checkpoint.hpp"
#include "stat/scenario.hpp"

namespace petastat::stat {
namespace {

enum class MachineKind { kAtlas, kBgl };
enum class TopoKind { kFlat, kBalanced2, kBalanced16 };

struct MatrixCase {
  MachineKind machine;
  machine::BglMode mode;
  TaskSetRepr repr;
  TopoKind topo;
  LauncherKind launcher;
  AppKind app;
};

const char* machine_name(MachineKind m) {
  return m == MachineKind::kAtlas ? "atlas" : "bgl";
}

const char* topo_name(TopoKind t) {
  switch (t) {
    case TopoKind::kFlat: return "flat";
    case TopoKind::kBalanced2: return "bal2";
    case TopoKind::kBalanced16: return "bal16";
  }
  return "?";
}

const char* app_name(AppKind a) {
  switch (a) {
    case AppKind::kOomCascade: return "oomcascade";  // failure matrix only
    case AppKind::kRingHang: return "ring";
    case AppKind::kThreadedRing: return "threadedring";
    case AppKind::kStatBench: return "statbench";
    case AppKind::kIoStall: return "iostall";
    case AppKind::kImbalance: return "imbalance";
  }
  return "?";
}

std::uint32_t exec_threads_from_env() {
  const char* env = std::getenv("PETASTAT_EXEC_THREADS");
  if (env == nullptr) return 1;
  // Fail loudly on a bad value: a silent serial fallback would quietly strip
  // the TSan job of the concurrency coverage it exists for.
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n < 1 || n > 256) {
    ADD_FAILURE() << "PETASTAT_EXEC_THREADS='" << env
                  << "' is not a thread count in [1,256]";
    return 1;
  }
  return static_cast<std::uint32_t>(n);
}

std::string cell_name(const MatrixCase& c) {
  std::string name = std::string(machine_name(c.machine)) + "_" +
                     machine::bgl_mode_name(c.mode) + "_" +
                     (c.repr == TaskSetRepr::kDenseGlobal ? "dense" : "hier");
  name += std::string("_") + topo_name(c.topo) + "_";
  switch (c.launcher) {
    case LauncherKind::kLaunchMon: name += "launchmon"; break;
    case LauncherKind::kMrnetRsh: name += "mrnetrsh"; break;
    case LauncherKind::kCiodPatched: name += "ciod"; break;
    default: name += "other"; break;
  }
  return name + "_" + app_name(c.app);
}

/// The full 2x2x2x3x3x3 cross-product, before pruning.
std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (MachineKind machine : {MachineKind::kAtlas, MachineKind::kBgl}) {
    for (machine::BglMode mode :
         {machine::BglMode::kCoprocessor, machine::BglMode::kVirtualNode}) {
      for (TaskSetRepr repr :
           {TaskSetRepr::kDenseGlobal, TaskSetRepr::kHierarchical}) {
        for (TopoKind topo :
             {TopoKind::kFlat, TopoKind::kBalanced2, TopoKind::kBalanced16}) {
          for (LauncherKind launcher :
               {LauncherKind::kLaunchMon, LauncherKind::kMrnetRsh,
                LauncherKind::kCiodPatched}) {
            for (AppKind app : {AppKind::kRingHang, AppKind::kThreadedRing,
                                AppKind::kStatBench, AppKind::kIoStall,
                                AppKind::kImbalance}) {
              cases.push_back({machine, mode, repr, topo, launcher, app});
            }
          }
        }
      }
    }
  }
  return cases;
}

/// Platform-validity pruning:
///  * VN mode exists only on BG/L (JobConfig::mode is ignored on clusters,
///    so Atlas x VN would duplicate Atlas x CO);
///  * rsh spawning needs rshd on the daemon hosts — Atlas only;
///  * CIOD is BG/L system software;
///  * the topology builder supports depth 1..4, so 16-deep trees are invalid
///    everywhere (their clean rejection is tested separately).
bool is_valid(const MatrixCase& c) {
  if (c.machine != MachineKind::kBgl &&
      c.mode == machine::BglMode::kVirtualNode) {
    return false;
  }
  if (c.topo == TopoKind::kBalanced16) return false;
  if (c.launcher == LauncherKind::kMrnetRsh && c.machine != MachineKind::kAtlas) {
    return false;
  }
  if (c.launcher == LauncherKind::kCiodPatched && c.machine != MachineKind::kBgl) {
    return false;
  }
  return true;
}

std::vector<MatrixCase> valid_cases() {
  std::vector<MatrixCase> cases = all_cases();
  std::erase_if(cases, [](const MatrixCase& c) { return !is_valid(c); });
  return cases;
}

machine::MachineConfig machine_for(const MatrixCase& c) {
  return c.machine == MachineKind::kAtlas ? machine::atlas() : machine::bgl();
}

machine::JobConfig job_for(const MatrixCase& c) {
  machine::JobConfig job;
  if (c.machine == MachineKind::kAtlas) {
    job.num_tasks = 256;  // 32 daemons
  } else {
    // Same 64 I/O-node daemons in both modes.
    job.num_tasks = c.mode == machine::BglMode::kVirtualNode ? 8192 : 4096;
  }
  job.mode = c.mode;
  if (c.app == AppKind::kThreadedRing) job.threads_per_task = 4;
  return job;
}

StatOptions options_for(const MatrixCase& c) {
  StatOptions options;
  switch (c.topo) {
    case TopoKind::kFlat: options.topology = tbon::TopologySpec::flat(); break;
    case TopoKind::kBalanced2:
      options.topology = tbon::TopologySpec::balanced(2);
      break;
    case TopoKind::kBalanced16:
      options.topology = tbon::TopologySpec::balanced(16);
      break;
  }
  options.repr = c.repr;
  options.launcher = c.launcher;
  options.app = c.app;
  options.statbench_classes = 16;
  options.exec_threads = exec_threads_from_env();
  return options;
}

/// Runs a cell's scenario once and memoizes the result: the agreement check
/// needs the repr-flipped cell, which is itself a primary cell elsewhere in
/// the matrix, so every configuration is simulated exactly once.
const StatRunResult& run_cached(const MatrixCase& c) {
  static std::map<std::string, StatRunResult>& cache =
      *new std::map<std::string, StatRunResult>();
  const std::string key = cell_name(c);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  StatScenario scenario(machine_for(c), job_for(c), options_for(c));
  return cache.emplace(key, scenario.run()).first->second;
}

/// Order-independent class signature: (task count, exact member set) pairs.
std::vector<std::string> class_signature(const StatRunResult& result) {
  std::vector<std::string> signature;
  signature.reserve(result.classes.size());
  for (const EquivalenceClass& cls : result.classes) {
    signature.push_back(std::to_string(cls.size()) + ":" +
                        cls.tasks.edge_label(/*max_items=*/64));
  }
  std::sort(signature.begin(), signature.end());
  return signature;
}

class ScenarioMatrix : public ::testing::TestWithParam<MatrixCase> {};

std::string param_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  return cell_name(info.param);
}

TEST_P(ScenarioMatrix, CellInvariantsHold) {
  const MatrixCase& c = GetParam();
  const machine::JobConfig job = job_for(c);
  const StatRunResult& result = run_cached(c);
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();

  // --- Phase ordering -------------------------------------------------------
  const PhaseBreakdown& phases = result.phases;
  EXPECT_TRUE(phases.launch.status.is_ok());
  EXPECT_GE(phases.launch.finished_at, phases.launch.started_at);
  EXPECT_GT(phases.connect_time, 0u);
  // Startup subsumes both the launch and the MRNet connect that follows it.
  EXPECT_GE(phases.startup_total,
            phases.launch.finished_at - phases.launch.started_at);
  EXPECT_GE(phases.startup_total, phases.connect_time);
  EXPECT_TRUE(phases.sample_status.is_ok());
  EXPECT_GT(phases.sample_time, 0u);
  EXPECT_TRUE(phases.merge_status.is_ok());
  EXPECT_GT(phases.merge_time, 0u);
  EXPECT_GT(phases.merge_bytes, 0u);
  if (c.repr == TaskSetRepr::kHierarchical) {
    EXPECT_GT(phases.remap_time, 0u);  // the front-end remap step
  } else {
    EXPECT_EQ(phases.remap_time, 0u);  // dense has no remap
  }

  // --- Topology shape -------------------------------------------------------
  if (c.topo == TopoKind::kFlat) {
    EXPECT_EQ(result.num_comm_procs, 0u);
  } else {
    EXPECT_GT(result.num_comm_procs, 0u);
  }

  // --- Task-count conservation ----------------------------------------------
  ASSERT_FALSE(result.classes.empty());
  TaskSet covered;
  std::uint64_t total = 0;
  for (const EquivalenceClass& cls : result.classes) {
    EXPECT_FALSE(cls.tasks.empty());
    EXPECT_LE(cls.tasks.max_task(), job.num_tasks - 1);
    total += cls.size();
    covered.union_with(cls.tasks);
  }
  // Every rank is accounted for, and no rank is invented.
  EXPECT_EQ(covered.count(), job.num_tasks);
  if (c.app != AppKind::kRingHang) {
    // Per-thread stacks (threaded ring) and per-sample stack variation
    // (statbench) legitimately end a rank in several classes, so the classes
    // cover (not partition) the rank space.
    EXPECT_GE(total, job.num_tasks);
  } else {
    // The ring hang pins every task's stack: exact partition.
    EXPECT_EQ(total, job.num_tasks);
    TaskSet disjoint;
    for (const EquivalenceClass& cls : result.classes) {
      EXPECT_FALSE(disjoint.intersects(cls.tasks));
      disjoint.union_with(cls.tasks);
    }
  }

  // --- Dense/hierarchical agreement -----------------------------------------
  MatrixCase flipped = c;
  flipped.repr = c.repr == TaskSetRepr::kDenseGlobal
                     ? TaskSetRepr::kHierarchical
                     : TaskSetRepr::kDenseGlobal;
  const StatRunResult& other = run_cached(flipped);
  ASSERT_TRUE(other.status.is_ok()) << other.status.to_string();
  EXPECT_EQ(result.classes.size(), other.classes.size());
  EXPECT_EQ(class_signature(result), class_signature(other));
  // The merged 3D trees agree structurally too (remap restores rank order).
  EXPECT_EQ(result.tree_3d, other.tree_3d);
}

INSTANTIATE_TEST_SUITE_P(Pruned, ScenarioMatrix,
                         ::testing::ValuesIn(valid_cases()), param_name);

// --- Sharded front end: bit-identity against the unsharded cell -------------
// A sampled sub-matrix (both machines and modes, both reprs, flat and deep
// topologies, two app models) re-runs each cell with the merge split across
// 4 reducers and asserts the merged trees and equivalence classes are
// bit-identical to the memoized unsharded run. The shard grouping must never
// show through the canonical merge.
std::vector<MatrixCase> sharded_sample_cases() {
  std::vector<MatrixCase> cases = valid_cases();
  std::erase_if(cases, [](const MatrixCase& c) {
    return c.app != AppKind::kRingHang && c.app != AppKind::kStatBench;
  });
  return cases;
}

class ScenarioMatrixSharded : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ScenarioMatrixSharded, MatchesUnshardedBitForBit) {
  const MatrixCase& c = GetParam();
  const StatRunResult& unsharded = run_cached(c);
  ASSERT_TRUE(unsharded.status.is_ok()) << unsharded.status.to_string();

  StatOptions options = options_for(c);
  options.fe_shards = 4;
  StatScenario scenario(machine_for(c), job_for(c), options);
  const StatRunResult sharded = scenario.run();
  ASSERT_TRUE(sharded.status.is_ok()) << sharded.status.to_string();
  EXPECT_EQ(sharded.topology.fe_shards, 4u);
  // Reducers are comm processes: even a flat cell now carries them.
  EXPECT_GE(sharded.num_comm_procs, 4u);

  EXPECT_EQ(unsharded.tree_2d, sharded.tree_2d);
  EXPECT_EQ(unsharded.tree_3d, sharded.tree_3d);
  ASSERT_EQ(unsharded.classes.size(), sharded.classes.size());
  for (std::size_t i = 0; i < unsharded.classes.size(); ++i) {
    EXPECT_EQ(unsharded.classes[i].path, sharded.classes[i].path);
    EXPECT_TRUE(unsharded.classes[i].tasks == sharded.classes[i].tasks);
  }
  EXPECT_EQ(class_signature(unsharded), class_signature(sharded));
}

INSTANTIATE_TEST_SUITE_P(Sampled, ScenarioMatrixSharded,
                         ::testing::ValuesIn(sharded_sample_cases()),
                         param_name);

// --- Reducer tree: K = 16 bit-identity against the unsharded cell -----------
// K > tbon::kShardCombineFanIn interposes combiner levels between the front
// end and the reducers; the extra merge hop must be just as invisible in the
// canonical trees as the shard grouping itself. Flat cells only: a K above
// the first derived comm level's width is INVALID_ARGUMENT by construction.
std::vector<MatrixCase> reducer_tree_sample_cases() {
  std::vector<MatrixCase> cases = valid_cases();
  std::erase_if(cases, [](const MatrixCase& c) {
    return c.app != AppKind::kRingHang || c.topo != TopoKind::kFlat;
  });
  return cases;
}

class ScenarioMatrixReducerTree : public ::testing::TestWithParam<MatrixCase> {
};

TEST_P(ScenarioMatrixReducerTree, K16MatchesUnshardedBitForBit) {
  const MatrixCase& c = GetParam();
  const StatRunResult& unsharded = run_cached(c);
  ASSERT_TRUE(unsharded.status.is_ok()) << unsharded.status.to_string();

  StatOptions options = options_for(c);
  options.fe_shards = 16;
  StatScenario scenario(machine_for(c), job_for(c), options);
  const StatRunResult sharded = scenario.run();
  ASSERT_TRUE(sharded.status.is_ok()) << sharded.status.to_string();
  EXPECT_EQ(sharded.topology.fe_shards, 16u);
  // 16 reducers + 2 combiners: the reducer tree is engaged.
  EXPECT_GE(sharded.num_comm_procs, 18u);

  EXPECT_EQ(unsharded.tree_2d, sharded.tree_2d);
  EXPECT_EQ(unsharded.tree_3d, sharded.tree_3d);
  ASSERT_EQ(unsharded.classes.size(), sharded.classes.size());
  for (std::size_t i = 0; i < unsharded.classes.size(); ++i) {
    EXPECT_EQ(unsharded.classes[i].path, sharded.classes[i].path);
    EXPECT_TRUE(unsharded.classes[i].tasks == sharded.classes[i].tasks);
  }
  EXPECT_EQ(class_signature(unsharded), class_signature(sharded));
}

INSTANTIATE_TEST_SUITE_P(Sampled, ScenarioMatrixReducerTree,
                         ::testing::ValuesIn(reducer_tree_sample_cases()),
                         param_name);

// --- Streaming sub-matrix: incremental deltas == full re-merge, bit for bit -
// A sampled sub-matrix (every machine/mode/repr/topology/launcher cell, with
// a static app and the drifting-imbalance app) runs 4 streaming rounds twice:
// once with the incremental delta/cache pipeline and once with
// --stream-full-remerge. The products — canonical trees, equivalence classes
// — must be bit-identical; the caches may only change what moves on the wire,
// never what the front end reports.
std::vector<MatrixCase> streaming_sample_cases() {
  std::vector<MatrixCase> cases = valid_cases();
  std::erase_if(cases, [](const MatrixCase& c) {
    return c.app != AppKind::kRingHang && c.app != AppKind::kImbalance;
  });
  return cases;
}

class ScenarioMatrixStreaming : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ScenarioMatrixStreaming, IncrementalMatchesFullRemergeBitForBit) {
  const MatrixCase& c = GetParam();
  StatOptions options = options_for(c);
  options.stream_samples = 4;
  options.evolution = app::TraceEvolution::kDrift;

  StatScenario incremental_scenario(machine_for(c), job_for(c), options);
  const StatRunResult incremental = incremental_scenario.run();
  ASSERT_TRUE(incremental.status.is_ok()) << incremental.status.to_string();
  ASSERT_EQ(incremental.stream_samples.size(), 4u);
  EXPECT_EQ(incremental.phases.stream_rounds, 4u);

  options.stream_full_remerge = true;
  StatScenario full_scenario(machine_for(c), job_for(c), options);
  const StatRunResult full = full_scenario.run();
  ASSERT_TRUE(full.status.is_ok()) << full.status.to_string();
  ASSERT_EQ(full.stream_samples.size(), 4u);

  EXPECT_EQ(incremental.tree_2d, full.tree_2d);
  EXPECT_EQ(incremental.tree_3d, full.tree_3d);
  ASSERT_EQ(incremental.classes.size(), full.classes.size());
  for (std::size_t i = 0; i < incremental.classes.size(); ++i) {
    EXPECT_EQ(incremental.classes[i].path, full.classes[i].path);
    EXPECT_TRUE(incremental.classes[i].tasks == full.classes[i].tasks);
  }
  EXPECT_EQ(class_signature(incremental), class_signature(full));

  // Past the priming round the caches must pay for themselves: unchanged
  // subtrees answer with bare-header acks, so the delta traffic is strictly
  // below a from-scratch merge and the round never costs more.
  for (std::uint32_t round = 0; round < 4; ++round) {
    const StreamSampleStats& inc = incremental.stream_samples[round];
    const StreamSampleStats& ref = full.stream_samples[round];
    EXPECT_EQ(inc.sample, ref.sample) << "round " << round;
    if (round == 0) continue;  // priming round: everything is new either way
    EXPECT_LT(inc.merge_bytes, ref.merge_bytes) << "round " << round;
    EXPECT_LE(inc.merge_time, ref.merge_time) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sampled, ScenarioMatrixStreaming,
                         ::testing::ValuesIn(streaming_sample_cases()),
                         param_name);

// --- Failure sub-matrix: mid-merge death across machines and shard counts ---
// A separate suite (the 120-cell pruning lock above must not move): each cell
// runs
//   1. a clean baseline (no failures at all),
//   2. a survivor baseline (pre-sampling injection only, p = 0.05),
//   3. the kill run (same injection + a reducer/comm-proc death mid-merge,
//      detected by ping sweep and recovered by subtree re-merge),
// and asserts the kill run's product is bit-identical to the survivor
// baseline (reducer death recovers in full; a flat tree's leaf death loses
// exactly that daemon), which in turn equals the clean baseline restricted to
// surviving ranks (empty classes dropped). Recovery may change *when* the
// merge finishes, never *what* the survivors produce.
// The failure matrix spans the petascale preset too, which the main matrix's
// MachineKind deliberately omits (it would triple the 120-cell budget).
enum class FailureMachine { kAtlas, kBgl, kPetascale };

struct FailureCell {
  FailureMachine machine;
  std::uint32_t fe_shards;  // 1 = unsharded flat tree
};

std::string failure_cell_name(const ::testing::TestParamInfo<FailureCell>& info) {
  const char* machine = "?";
  switch (info.param.machine) {
    case FailureMachine::kAtlas: machine = "atlas"; break;
    case FailureMachine::kBgl: machine = "bgl"; break;
    case FailureMachine::kPetascale: machine = "petascale"; break;
  }
  return std::string(machine) + "_k" + std::to_string(info.param.fe_shards);
}

machine::MachineConfig failure_machine(const FailureCell& c) {
  switch (c.machine) {
    case FailureMachine::kAtlas: return machine::atlas();
    case FailureMachine::kBgl: return machine::bgl();
    case FailureMachine::kPetascale: return machine::petascale();
  }
  return machine::atlas();
}

machine::JobConfig failure_job(const FailureCell& c) {
  machine::JobConfig job;
  // Enough daemons that K = 64 still owns one daemon per shard: 64 daemons
  // on Atlas (8 tasks each) and BG/L CO (64 tasks each), 1,024 on petascale.
  switch (c.machine) {
    case FailureMachine::kAtlas: job.num_tasks = 512; break;
    case FailureMachine::kBgl: job.num_tasks = 4096; break;
    case FailureMachine::kPetascale: job.num_tasks = 65536; break;
  }
  return job;
}

class FailureMatrix : public ::testing::TestWithParam<FailureCell> {};

TEST_P(FailureMatrix, MidMergeKillPreservesSurvivorClasses) {
  const FailureCell& c = GetParam();
  const machine::MachineConfig m = failure_machine(c);
  const machine::JobConfig job = failure_job(c);

  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = c.fe_shards;
  options.repr = TaskSetRepr::kHierarchical;
  if (c.machine == FailureMachine::kBgl) {
    options.launcher = LauncherKind::kCiodPatched;
  }
  options.num_samples = c.machine == FailureMachine::kPetascale ? 3 : 5;
  options.exec_threads = exec_threads_from_env();

  StatScenario clean_scenario(m, job, options);
  const StatRunResult clean = clean_scenario.run();
  ASSERT_TRUE(clean.status.is_ok()) << clean.status.to_string();

  options.daemon_failure_probability = 0.05;
  StatScenario survivor_scenario(m, job, options);
  const StatRunResult survivors = survivor_scenario.run();
  ASSERT_TRUE(survivors.status.is_ok()) << survivors.status.to_string();

  options.fail_at_seconds = 0.0;
  options.ping_period_seconds = 0.05;
  StatScenario kill_scenario(m, job, options);
  const StatRunResult killed = kill_scenario.run();
  ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();

  // The kill actually happened and was noticed by the ping sweep.
  EXPECT_EQ(killed.phases.killed_procs, 1u);
  EXPECT_GT(killed.phases.failure_detect_latency, 0u);
  EXPECT_EQ(killed.dead_daemons, survivors.dead_daemons);

  if (c.fe_shards > 1) {
    // A reducer died: its shard is re-merged through siblings in full, so
    // the kill run == survivor baseline, bit for bit.
    EXPECT_EQ(killed.phases.lost_daemons, 0u);
    ASSERT_EQ(killed.classes.size(), survivors.classes.size());
    for (std::size_t i = 0; i < killed.classes.size(); ++i) {
      EXPECT_EQ(killed.classes[i].path, survivors.classes[i].path);
      EXPECT_TRUE(killed.classes[i].tasks == survivors.classes[i].tasks);
    }
    EXPECT_EQ(class_signature(killed), class_signature(survivors));
    EXPECT_TRUE(killed.tree_3d == survivors.tree_3d);
  } else {
    // Flat tree: the victim is a daemon's own leaf proc, so that daemon's
    // samples are unrecoverable. The merge must still complete, losing at
    // most that one daemon — the product is the survivor baseline restricted
    // to the ranks that made it through.
    TaskSet killed_covered;
    for (const EquivalenceClass& cls : killed.classes) {
      killed_covered.union_with(cls.tasks);
    }
    TaskSet survivor_covered;
    for (const EquivalenceClass& cls : survivors.classes) {
      survivor_covered.union_with(cls.tasks);
    }
    // Nothing appears from thin air, and the casualty list is one daemon at
    // most (zero when the victim's daemon was already dead pre-sampling).
    EXPECT_TRUE(killed_covered.difference(survivor_covered).empty());
    const TaskSet leaf_lost = survivor_covered.difference(killed_covered);
    EXPECT_LE(leaf_lost.count(), killed.layout.tasks_per_daemon);
    std::vector<std::string> expected;
    for (const EquivalenceClass& cls : survivors.classes) {
      const TaskSet kept = cls.tasks.difference(leaf_lost);
      if (kept.empty()) continue;
      expected.push_back(std::to_string(kept.count()) + ":" +
                         kept.edge_label(/*max_items=*/64));
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(class_signature(killed), expected);
  }

  // Survivor baseline == clean baseline restricted to surviving ranks.
  TaskSet surviving;
  for (const EquivalenceClass& cls : survivors.classes) {
    surviving.union_with(cls.tasks);
  }
  const TaskSet dead_ranks =
      TaskSet::range(0, job.num_tasks - 1).difference(surviving);
  EXPECT_EQ(dead_ranks.empty(), survivors.dead_daemons.empty());
  std::vector<std::string> restricted;
  for (const EquivalenceClass& cls : clean.classes) {
    const TaskSet kept = cls.tasks.difference(dead_ranks);
    if (kept.empty()) continue;
    restricted.push_back(std::to_string(kept.count()) + ":" +
                         kept.edge_label(/*max_items=*/64));
  }
  std::sort(restricted.begin(), restricted.end());
  EXPECT_EQ(class_signature(survivors), restricted);
}

INSTANTIATE_TEST_SUITE_P(
    Sampled, FailureMatrix,
    ::testing::Values(FailureCell{FailureMachine::kAtlas, 1},
                      FailureCell{FailureMachine::kAtlas, 16},
                      FailureCell{FailureMachine::kAtlas, 64},
                      FailureCell{FailureMachine::kBgl, 1},
                      FailureCell{FailureMachine::kBgl, 16},
                      FailureCell{FailureMachine::kBgl, 64},
                      FailureCell{FailureMachine::kPetascale, 1},
                      FailureCell{FailureMachine::kPetascale, 16},
                      FailureCell{FailureMachine::kPetascale, 64}),
    failure_cell_name);

// --- Checkpoint/restart sub-matrix: kill at every round boundary ------------
// A separate suite (the 120-cell pruning lock below must not move): for each
// {machine} x {K} cell of the failure matrix's grid, a streaming session is
// checkpointed, killed (vacated — the simulated front-end loss), and restored
// at *every* interior round boundary, and the resumed run's products must be
// bit-identical to the never-killed run. A re-sharded resume (the restore
// folds a different explicit K over the checkpointed spec) is held to the
// same bit-identity bar: traces come from the app model alone, and the
// canonical merge is associative, so K only moves timings.
std::uint32_t checkpoint_rounds(const FailureCell& c) {
  return c.machine == FailureMachine::kPetascale ? 3 : 4;
}

StatOptions checkpoint_options(const FailureCell& c) {
  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = c.fe_shards;
  options.repr = TaskSetRepr::kHierarchical;
  if (c.machine == FailureMachine::kBgl) {
    options.launcher = LauncherKind::kCiodPatched;
  }
  options.stream_samples = checkpoint_rounds(c);
  options.evolution = app::TraceEvolution::kDrift;
  options.exec_threads = exec_threads_from_env();
  return options;
}

/// Uninterrupted streaming baseline, memoized per cell: every boundary's
/// restore run compares against the same never-killed product.
const StatRunResult& checkpoint_baseline(const FailureCell& c) {
  static std::map<std::string, StatRunResult>& cache =
      *new std::map<std::string, StatRunResult>();
  const std::string key =
      std::to_string(static_cast<int>(c.machine)) + "_k" +
      std::to_string(c.fe_shards);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  StatScenario scenario(failure_machine(c), failure_job(c),
                        checkpoint_options(c));
  return cache.emplace(key, scenario.run()).first->second;
}

void expect_same_product(const StatRunResult& resumed,
                         const StatRunResult& baseline) {
  EXPECT_TRUE(resumed.tree_2d == baseline.tree_2d);
  EXPECT_TRUE(resumed.tree_3d == baseline.tree_3d);
  ASSERT_EQ(resumed.classes.size(), baseline.classes.size());
  for (std::size_t i = 0; i < resumed.classes.size(); ++i) {
    EXPECT_EQ(resumed.classes[i].path, baseline.classes[i].path);
    EXPECT_TRUE(resumed.classes[i].tasks == baseline.classes[i].tasks);
  }
  EXPECT_EQ(class_signature(resumed), class_signature(baseline));
}

class CheckpointRestartMatrix : public ::testing::TestWithParam<FailureCell> {};

TEST_P(CheckpointRestartMatrix, KillAtEveryBoundaryRestoresBitIdentical) {
  const FailureCell& c = GetParam();
  const machine::MachineConfig m = failure_machine(c);
  const machine::JobConfig job = failure_job(c);
  const StatRunResult& baseline = checkpoint_baseline(c);
  ASSERT_TRUE(baseline.status.is_ok()) << baseline.status.to_string();

  const std::uint32_t rounds = checkpoint_rounds(c);
  for (std::uint32_t boundary = 1; boundary < rounds; ++boundary) {
    StatOptions options = checkpoint_options(c);
    options.vacate_at_round = static_cast<std::int32_t>(boundary);
    StatScenario killed_scenario(m, job, options);
    const StatRunResult killed = killed_scenario.run();
    ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();
    ASSERT_TRUE(killed.vacated);
    ASSERT_NE(killed.checkpoint, nullptr);
    EXPECT_EQ(killed.checkpoint->cursor, boundary);
    EXPECT_EQ(killed.checkpoint->total_rounds, rounds);
    EXPECT_TRUE(killed.classes.empty());  // vacated, not finalized

    StatOptions resume = checkpoint_options(c);
    StatScenario resumed_scenario(m, job, resume, killed.checkpoint);
    const StatRunResult resumed = resumed_scenario.run();
    ASSERT_TRUE(resumed.status.is_ok()) << resumed.status.to_string();
    EXPECT_TRUE(resumed.restored);
    EXPECT_EQ(resumed.restore_cursor, boundary);
    EXPECT_EQ(resumed.phases.stream_rounds, rounds - boundary);
    expect_same_product(resumed, baseline);
  }
}

TEST_P(CheckpointRestartMatrix, ReshardedResumeStaysBitIdentical) {
  const FailureCell& c = GetParam();
  const machine::MachineConfig m = failure_machine(c);
  const machine::JobConfig job = failure_job(c);
  const StatRunResult& baseline = checkpoint_baseline(c);
  ASSERT_TRUE(baseline.status.is_ok()) << baseline.status.to_string();

  StatOptions options = checkpoint_options(c);
  options.vacate_at_round = 1;
  StatScenario killed_scenario(m, job, options);
  const StatRunResult killed = killed_scenario.run();
  ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();
  ASSERT_NE(killed.checkpoint, nullptr);

  // Resume under a *different* explicit K (the restore resolution folds it
  // over the checkpointed spec): the product must not move.
  StatOptions resume = checkpoint_options(c);
  resume.fe_shards = c.fe_shards == 1 ? 16 : 4;
  StatScenario resumed_scenario(m, job, resume, killed.checkpoint);
  const StatRunResult resumed = resumed_scenario.run();
  ASSERT_TRUE(resumed.status.is_ok()) << resumed.status.to_string();
  EXPECT_TRUE(resumed.restored);
  EXPECT_EQ(resumed.topology.fe_shards, resume.fe_shards);
  expect_same_product(resumed, baseline);
}

INSTANTIATE_TEST_SUITE_P(
    Sampled, CheckpointRestartMatrix,
    ::testing::Values(FailureCell{FailureMachine::kAtlas, 1},
                      FailureCell{FailureMachine::kAtlas, 16},
                      FailureCell{FailureMachine::kAtlas, 64},
                      FailureCell{FailureMachine::kBgl, 1},
                      FailureCell{FailureMachine::kBgl, 16},
                      FailureCell{FailureMachine::kBgl, 64},
                      FailureCell{FailureMachine::kPetascale, 1},
                      FailureCell{FailureMachine::kPetascale, 16},
                      FailureCell{FailureMachine::kPetascale, 64}),
    failure_cell_name);

// --- Kill-at-a-round-boundary ordering regression ---------------------------
// `--fail-at` landing exactly on a round boundary (t = 0 included) used to
// race the boundary sweep: whether the kill event drained before or after the
// next SampleRequest broadcast depended on event insertion order. The kill
// must drain *first* — deterministically — so two identical runs agree and
// the victim never acks the round it died before.
TEST(StreamFailAtBoundary, KillOnTheBoundaryIsDeterministic) {
  StatOptions options;
  options.topology = tbon::TopologySpec::flat();
  options.fe_shards = 16;
  options.repr = TaskSetRepr::kHierarchical;
  options.stream_samples = 3;
  options.fail_at_seconds = 0.0;  // exactly on the first round boundary
  options.ping_period_seconds = 0.05;
  options.exec_threads = exec_threads_from_env();
  machine::JobConfig job;
  job.num_tasks = 512;

  StatScenario first_scenario(machine::atlas(), job, options);
  const StatRunResult first = first_scenario.run();
  ASSERT_TRUE(first.status.is_ok()) << first.status.to_string();
  EXPECT_EQ(first.phases.killed_procs, 1u);

  StatScenario second_scenario(machine::atlas(), job, options);
  const StatRunResult second = second_scenario.run();
  ASSERT_TRUE(second.status.is_ok()) << second.status.to_string();
  EXPECT_EQ(second.phases.killed_procs, 1u);
  EXPECT_TRUE(first.tree_3d == second.tree_3d);
  EXPECT_EQ(class_signature(first), class_signature(second));
  EXPECT_EQ(first.phases.failure_detect_latency,
            second.phases.failure_detect_latency);
  EXPECT_EQ(first.total_virtual_time, second.total_virtual_time);
}

TEST(ScenarioMatrixPruning, CrossProductKeepsAtLeast24ValidCells) {
  EXPECT_EQ(all_cases().size(), 360u);
  EXPECT_GE(valid_cases().size(), 24u);
  // Lock the exact matrix: 3 machine-modes x 2 topologies x 2 reprs x
  // 2 launchers x 5 apps. A pruning regression that silently drops cells
  // must fail here, not shrink coverage unnoticed.
  EXPECT_EQ(valid_cases().size(), 120u);
}

// Pruned-but-runnable configurations must fail with a clean Status — the
// tool reports "cannot build that tree / cannot launch that way", it does
// not crash.
TEST(ScenarioMatrixPruning, SixteenDeepTopologyFailsCleanly) {
  MatrixCase c{MachineKind::kAtlas, machine::BglMode::kCoprocessor,
               TaskSetRepr::kHierarchical, TopoKind::kBalanced16,
               LauncherKind::kLaunchMon, AppKind::kRingHang};
  StatScenario scenario(machine_for(c), job_for(c), options_for(c));
  const StatRunResult result = scenario.run();
  EXPECT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioMatrixPruning, RshOnBglFailsCleanly) {
  MatrixCase c{MachineKind::kBgl, machine::BglMode::kCoprocessor,
               TaskSetRepr::kHierarchical, TopoKind::kFlat,
               LauncherKind::kMrnetRsh, AppKind::kRingHang};
  StatScenario scenario(machine_for(c), job_for(c), options_for(c));
  const StatRunResult result = scenario.run();
  EXPECT_FALSE(result.status.is_ok());
}

}  // namespace
}  // namespace petastat::stat
