// SessionCheckpoint hardening: round-trip fidelity, adversarial decode
// (every prefix truncation, every single-byte corruption, version skew,
// pathological headers — the test_decode_corrupt contract extended to the
// checkpoint envelope), and the restore-constructor rejection matrix (cursor
// beyond the series, a spec the machine cannot build, stale identity hash).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "app/appmodel.hpp"
#include "common/serializer.hpp"
#include "machine/machine.hpp"
#include "stat/checkpoint.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/scenario.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {
namespace {

using Bytes = std::vector<std::uint8_t>;

machine::JobConfig small_job() { return machine::JobConfig{.num_tasks = 512}; }

StatOptions streaming_options() {
  StatOptions options;
  options.stream_samples = 4;
  options.evolution = app::TraceEvolution::kDrift;
  return options;
}

/// Runs the canonical interrupted session: atlas, 4 streaming rounds,
/// vacated (simulated front-end loss) at round boundary 2.
std::shared_ptr<const SessionCheckpoint> organic_checkpoint(
    TaskSetRepr repr = TaskSetRepr::kHierarchical) {
  StatOptions options = streaming_options();
  options.repr = repr;
  options.vacate_at_round = 2;
  StatScenario scenario(machine::atlas(), small_job(), options);
  const StatRunResult result = scenario.run();
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.vacated);
  EXPECT_NE(result.checkpoint, nullptr);
  return result.checkpoint;
}

/// A small hand-built checkpoint (dense repr) whose every field is exercised
/// by the round-trip comparison.
SessionCheckpoint hand_built() {
  SessionCheckpoint cp;
  cp.machine_name = "atlas";
  cp.num_tasks = 16;
  cp.num_daemons = 2;
  cp.identity_hash = 0x1234abcd5678ef00ull;
  cp.spec = tbon::TopologySpec::balanced(2);
  cp.spec.fe_shards = 4;
  cp.cursor = 1;
  cp.total_rounds = 4;
  cp.interval_seconds = 0.5;
  cp.repr = TaskSetRepr::kDenseGlobal;
  cp.seed = 2008;
  cp.dead_daemons = {1};
  cp.daemon_cache_valid = {true, false};
  cp.proc_cache_complete = {false, true, false};
  cp.leaf_payload_bytes = 4096;
  cp.shard_payload_bytes = {1024, 3072};

  app::FrameTable frames;
  const LabelContext ctx{16};
  GlobalTree tree;
  tree.insert(frames.make_path({"_start", "main", "MPI_Barrier"}),
              GlobalLabel::for_task(3));
  tree.insert(frames.make_path({"_start", "main", "compute"}),
              GlobalLabel::for_task(4));
  ByteSink sink;
  tree.encode(sink, frames, ctx);
  cp.tree_2d_wire = sink.take();
  ByteSink sink3;
  tree.encode(sink3, frames, ctx);
  cp.tree_3d_wire = sink3.take();

  SessionCheckpoint::ClassEntry entry;
  entry.frames = {"_start", "main", "MPI_Barrier"};
  entry.tasks.insert(3);
  cp.classes.push_back(std::move(entry));
  return cp;
}

// --- Round trip -------------------------------------------------------------

TEST(SessionCheckpointRoundTrip, HandBuiltSurvivesEncodeDecode) {
  const SessionCheckpoint cp = hand_built();
  const Bytes encoded = cp.encoded();
  ByteSource source(encoded);
  auto decoded = SessionCheckpoint::decode(source);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(decoded.value(), cp);
  // Deterministic: re-encoding the decoded copy reproduces the bytes.
  EXPECT_EQ(decoded.value().encoded(), encoded);
}

TEST(SessionCheckpointRoundTrip, OrganicCheckpointSurvivesBothReprs) {
  for (const TaskSetRepr repr :
       {TaskSetRepr::kHierarchical, TaskSetRepr::kDenseGlobal}) {
    const auto cp = organic_checkpoint(repr);
    ASSERT_NE(cp, nullptr);
    EXPECT_EQ(cp->cursor, 2u);
    EXPECT_EQ(cp->total_rounds, 4u);
    EXPECT_GT(cp->leaf_payload_bytes, 0u);
    EXPECT_FALSE(cp->tree_2d_wire.empty());
    EXPECT_FALSE(cp->tree_3d_wire.empty());
    EXPECT_FALSE(cp->classes.empty());
    const Bytes encoded = cp->encoded();
    ByteSource source(encoded);
    auto decoded = SessionCheckpoint::decode(source);
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value(), *cp);
  }
}

TEST(SessionCheckpointRoundTrip, TreeBlobsDecodeAgainstAFreshTable) {
  const auto cp = organic_checkpoint();
  app::FrameTable fresh;
  const LabelContext ctx{cp->num_tasks};
  auto tree_2d = decode_tree_blob<HierLabel>(cp->tree_2d_wire, fresh, ctx);
  ASSERT_TRUE(tree_2d.is_ok()) << tree_2d.status().to_string();
  auto tree_3d = decode_tree_blob<HierLabel>(cp->tree_3d_wire, fresh, ctx);
  ASSERT_TRUE(tree_3d.is_ok()) << tree_3d.status().to_string();
  EXPECT_FALSE(tree_3d.value().empty());
}

TEST(SessionCheckpointRoundTrip, TrailingBytesInTreeBlobRejected) {
  const auto cp = organic_checkpoint();
  Bytes padded = cp->tree_3d_wire;
  padded.push_back(0x00);
  app::FrameTable fresh;
  auto decoded =
      decode_tree_blob<HierLabel>(padded, fresh, LabelContext{cp->num_tasks});
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// --- Adversarial decode -----------------------------------------------------

/// Decoding any prefix of `encoded` must return (not crash), and the full
/// buffer must decode OK.
void expect_clean_on_all_prefixes(const Bytes& encoded) {
  for (std::size_t len = 0; len <= encoded.size(); ++len) {
    ByteSource source(std::span(encoded.data(), len));
    (void)SessionCheckpoint::decode(source);  // must not crash
  }
  ByteSource full(encoded);
  EXPECT_TRUE(SessionCheckpoint::decode(full).is_ok());
}

/// Flipping every byte (one at a time) must never crash the decoder.
void expect_clean_on_byte_flips(const Bytes& encoded) {
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    Bytes corrupt = encoded;
    corrupt[i] ^= 0xff;
    ByteSource source(corrupt);
    (void)SessionCheckpoint::decode(source);  // must not crash
  }
}

TEST(CorruptSessionCheckpoint, HandBuiltTruncationsAndFlipsNeverCrash) {
  const Bytes encoded = hand_built().encoded();
  expect_clean_on_all_prefixes(encoded);
  expect_clean_on_byte_flips(encoded);
}

TEST(CorruptSessionCheckpoint, OrganicTruncationsNeverCrash) {
  // The organic envelope is larger (real trees, real classes); truncation
  // at *every* offset must still fail cleanly. Every prefix is a strict
  // subset of the fields, so none may decode OK.
  const Bytes encoded = organic_checkpoint()->encoded();
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    ByteSource source(std::span(encoded.data(), len));
    EXPECT_FALSE(SessionCheckpoint::decode(source).is_ok());
  }
  ByteSource full(encoded);
  EXPECT_TRUE(SessionCheckpoint::decode(full).is_ok());
}

TEST(CorruptSessionCheckpoint, VersionSkewIsFailedPrecondition) {
  Bytes encoded = hand_built().encoded();
  encoded[0] = kWireFormatVersion + 1;
  ByteSource source(encoded);
  auto decoded = SessionCheckpoint::decode(source);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("version skew"),
            std::string::npos);
}

TEST(CorruptSessionCheckpoint, EmptyBufferIsTruncationNotSkew) {
  ByteSource source(std::span<const std::uint8_t>{});
  auto decoded = SessionCheckpoint::decode(source);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorruptSessionCheckpoint, HugeCountHeadersFailCleanly) {
  // A valid envelope up to a count field, then a 2^60 claim with no payload:
  // must fail via Status without reserving petabytes.
  ByteSink sink;
  sink.put_u8(kWireFormatVersion);
  sink.put_string("atlas");
  sink.put_u32(16);  // num_tasks
  sink.put_u32(2);   // num_daemons
  sink.put_u64(0);   // identity hash
  sink.put_u32(1);   // spec.depth
  sink.put_varint(1ull << 60);  // level_widths count: absurd
  ByteSource source(sink.bytes());
  EXPECT_FALSE(SessionCheckpoint::decode(source).is_ok());
}

TEST(CorruptSessionCheckpoint, NestedTreeBlobIsStructurallyValidated) {
  // Corrupting the *interior* of a nested tree blob must be caught by the
  // envelope decode (scratch-table validation), not deferred to restore.
  SessionCheckpoint cp = hand_built();
  ASSERT_GT(cp.tree_3d_wire.size(), 4u);
  cp.tree_3d_wire.resize(cp.tree_3d_wire.size() / 2);  // truncated blob
  const Bytes encoded = cp.encoded();
  ByteSource source(encoded);
  EXPECT_FALSE(SessionCheckpoint::decode(source).is_ok());
}

// --- Restore-constructor rejection matrix -----------------------------------

Status restore_status(std::shared_ptr<const SessionCheckpoint> cp,
                      const machine::MachineConfig& machine,
                      const machine::JobConfig& job,
                      const StatOptions& options) {
  StatScenario scenario(machine, job, options, std::move(cp));
  return scenario.config_status();
}

TEST(RestoreRejection, ValidCheckpointIsAccepted) {
  const auto cp = organic_checkpoint();
  const Status status =
      restore_status(cp, machine::atlas(), small_job(), streaming_options());
  EXPECT_TRUE(status.is_ok()) << status.to_string();
}

TEST(RestoreRejection, CursorBeyondSeries) {
  const auto base = organic_checkpoint();
  for (const std::uint32_t bad_cursor : {0u, base->total_rounds,
                                         base->total_rounds + 7}) {
    auto cp = std::make_shared<SessionCheckpoint>(*base);
    cp->cursor = bad_cursor;
    const Status status =
        restore_status(cp, machine::atlas(), small_job(), streaming_options());
    ASSERT_FALSE(status.is_ok()) << "cursor " << bad_cursor;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("cursor beyond series"),
              std::string::npos);
  }
}

TEST(RestoreRejection, SpecTheMachineCannotBuild) {
  const auto base = organic_checkpoint();
  auto cp = std::make_shared<SessionCheckpoint>(*base);
  cp->spec.depth = 9;  // build_topology: depth must be in [1,4]
  const Status status =
      restore_status(cp, machine::atlas(), small_job(), streaming_options());
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(RestoreRejection, JobShapeMismatch) {
  const auto cp = organic_checkpoint();
  machine::JobConfig other = small_job();
  other.num_tasks = 256;
  const Status status =
      restore_status(cp, machine::atlas(), other, streaming_options());
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("job shape"), std::string::npos);
}

TEST(RestoreRejection, StaleIdentityHash) {
  const auto cp = organic_checkpoint();
  StatOptions other = streaming_options();
  other.seed = 9999;  // different trace world
  const Status status =
      restore_status(cp, machine::atlas(), small_job(), other);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("stale session hash"), std::string::npos);
}

TEST(RestoreRejection, VacateMustBePastTheRestoreCursor) {
  const auto cp = organic_checkpoint();  // cursor 2
  StatOptions options = streaming_options();
  options.vacate_at_round = 2;  // not past the cursor
  const Status status =
      restore_status(cp, machine::atlas(), small_job(), options);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --- Durability knob validation (no checkpoint involved) --------------------

TEST(CheckpointOptions, RequireAStreamingRun) {
  StatOptions options;  // classic batched pipeline
  options.checkpoint_period = 2;
  StatScenario scenario(machine::atlas(), small_job(), options);
  ASSERT_FALSE(scenario.config_status().is_ok());
  EXPECT_EQ(scenario.config_status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointOptions, VacateMustBeAnInteriorBoundary) {
  for (const std::int32_t bad : {0, 4, 5}) {
    StatOptions options = streaming_options();  // 4 rounds
    options.vacate_at_round = bad;
    StatScenario scenario(machine::atlas(), small_job(), options);
    ASSERT_FALSE(scenario.config_status().is_ok()) << "vacate_at " << bad;
    EXPECT_EQ(scenario.config_status().code(), StatusCode::kInvalidArgument);
  }
}

// --- Restore correctness (the small smoke case; the full kill-at-every-
// boundary matrix lives in test_scenario_matrix) ------------------------------

TEST(RestoreSmoke, ResumedRunMatchesUninterruptedRun) {
  const StatOptions options = streaming_options();
  StatScenario baseline(machine::atlas(), small_job(), options);
  const StatRunResult uninterrupted = baseline.run();
  ASSERT_TRUE(uninterrupted.status.is_ok());

  const auto cp = organic_checkpoint();
  StatScenario resumed_scenario(machine::atlas(), small_job(), options, cp);
  const StatRunResult resumed = resumed_scenario.run();
  ASSERT_TRUE(resumed.status.is_ok()) << resumed.status.to_string();
  EXPECT_TRUE(resumed.restored);
  EXPECT_EQ(resumed.restore_cursor, 2u);

  EXPECT_TRUE(resumed.tree_2d == uninterrupted.tree_2d);
  EXPECT_TRUE(resumed.tree_3d == uninterrupted.tree_3d);
  ASSERT_EQ(resumed.classes.size(), uninterrupted.classes.size());
  for (std::size_t i = 0; i < resumed.classes.size(); ++i) {
    EXPECT_EQ(resumed.classes[i].path, uninterrupted.classes[i].path);
    EXPECT_TRUE(resumed.classes[i].tasks == uninterrupted.classes[i].tasks);
  }
}

}  // namespace
}  // namespace petastat::stat
