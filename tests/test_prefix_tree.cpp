// Unit and property tests for the call-graph prefix trees: insertion,
// merging, serialization, DOT output, remap, and equivalence classes.
#include <gtest/gtest.h>

#include "app/appmodel.hpp"
#include "common/rng.hpp"
#include "stat/equivalence.hpp"
#include "stat/prefix_tree.hpp"

namespace petastat::stat {
namespace {

struct TreeFixture : ::testing::Test {
  app::FrameTable frames;
  app::CallPath path(std::initializer_list<std::string_view> names) {
    return frames.make_path(names);
  }
};

TEST_F(TreeFixture, InsertBuildsSharedPrefixes) {
  GlobalTree tree;
  tree.insert(path({"_start", "main", "PMPI_Barrier"}), GlobalLabel::for_task(0));
  tree.insert(path({"_start", "main", "PMPI_Waitall"}), GlobalLabel::for_task(1));
  EXPECT_EQ(tree.node_count(), 4u);  // _start, main, Barrier, Waitall
  EXPECT_EQ(tree.depth(), 3u);

  const auto* start = tree.root().find_child(frames.intern("_start"));
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->label.tasks.count(), 2u);  // both tasks share the prefix
  const auto* main_node = start->find_child(frames.intern("main"));
  ASSERT_NE(main_node, nullptr);
  EXPECT_EQ(main_node->children.size(), 2u);
}

TEST_F(TreeFixture, InsertAccumulatesVisits) {
  GlobalTree tree;
  for (int s = 0; s < 10; ++s) {
    tree.insert(path({"_start", "main"}), GlobalLabel::for_task(3));
  }
  const auto* start = tree.root().find_child(frames.intern("_start"));
  EXPECT_EQ(start->label.visits, 10u);
  EXPECT_EQ(start->label.tasks.count(), 1u);
}

TEST_F(TreeFixture, MergeEqualsInsertingAllPaths) {
  app::RingHangOptions options;
  options.num_tasks = 256;
  app::RingHangApp app(options);

  // Build one tree by direct insertion and one by merging per-daemon trees.
  GlobalTree direct;
  std::vector<GlobalTree> daemon_trees(8);
  for (std::uint32_t t = 0; t < 256; ++t) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      const auto p = app.stack(TaskId(t), 0, s);
      direct.insert(p, GlobalLabel::for_task(t));
      daemon_trees[t / 32].insert(p, GlobalLabel::for_task(t));
    }
  }
  GlobalTree merged;
  for (auto& dt : daemon_trees) merged.merge(dt);
  EXPECT_EQ(merged, direct);
}

TEST_F(TreeFixture, MergeIsCommutativeAndAssociative) {
  Rng rng(5);
  const auto random_tree = [&]() {
    GlobalTree t;
    for (int i = 0; i < 20; ++i) {
      app::CallPath p{frames.intern("_start"), frames.intern("main")};
      int depth = 1 + static_cast<int>(rng.next_below(4));
      for (int d = 0; d < depth; ++d) {
        p.push_back(frames.intern("f" + std::to_string(rng.next_below(5))));
      }
      t.insert(p, GlobalLabel::for_task(
                      static_cast<std::uint32_t>(rng.next_below(64))));
    }
    return t;
  };
  const GlobalTree a = random_tree();
  const GlobalTree b = random_tree();
  const GlobalTree c = random_tree();
  GlobalTree ab = a;
  ab.merge(b);
  GlobalTree ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  GlobalTree ab_c = ab;
  ab_c.merge(c);
  GlobalTree bc = b;
  bc.merge(c);
  GlobalTree a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST_F(TreeFixture, ChildrenStaySortedByFrame) {
  GlobalTree tree;
  for (int i = 9; i >= 0; --i) {
    tree.insert(path({"root", "f" + std::to_string(i)}),
                GlobalLabel::for_task(static_cast<std::uint32_t>(i)));
  }
  const auto* root = tree.root().find_child(frames.intern("root"));
  for (std::size_t i = 1; i < root->children.size(); ++i) {
    EXPECT_LT(root->children[i - 1].frame, root->children[i].frame);
  }
}

TEST_F(TreeFixture, WireBytesDenseScalesWithJobSize) {
  GlobalTree tree;
  tree.insert(path({"_start", "main", "leaf"}), GlobalLabel::for_task(0));
  const std::uint64_t small = tree.wire_bytes(frames, LabelContext{1024});
  const std::uint64_t big = tree.wire_bytes(frames, LabelContext{212992});
  EXPECT_GT(big, small * 100);  // dense labels dominated by job size
}

TEST_F(TreeFixture, WireBytesHierIndependentOfJobSize) {
  HierTree tree;
  tree.insert(path({"_start", "main", "leaf"}), HierLabel::for_local(0, 0));
  EXPECT_EQ(tree.wire_bytes(frames, LabelContext{1024}),
            tree.wire_bytes(frames, LabelContext{212992}));
}

template <typename Label>
void roundtrip_test(app::FrameTable& frames, const PrefixTree<Label>& tree,
                    const LabelContext& ctx) {
  ByteSink sink;
  tree.encode(sink, frames, ctx);
  // Wire accounting must dominate (it adds conservative varint estimates).
  EXPECT_LE(sink.size(), tree.wire_bytes(frames, ctx) + 8);
  auto bytes = sink.take();
  ByteSource source(bytes);
  app::FrameTable fresh;  // decoder interns into a fresh table
  auto decoded = PrefixTree<Label>::decode(source, fresh, ctx);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().node_count(), tree.node_count());
  EXPECT_EQ(decoded.value().depth(), tree.depth());
  EXPECT_TRUE(source.exhausted());
}

TEST_F(TreeFixture, GlobalTreeSerializationRoundtrips) {
  GlobalTree tree;
  tree.insert(path({"_start", "main", "PMPI_Barrier"}), GlobalLabel::for_task(7));
  tree.insert(path({"_start", "main", "PMPI_Waitall", "poll"}),
              GlobalLabel::for_task(9));
  roundtrip_test(frames, tree, LabelContext{16});
}

TEST_F(TreeFixture, HierTreeSerializationRoundtrips) {
  HierTree tree;
  tree.insert(path({"_start", "main", "a"}), HierLabel::for_local(3, 1));
  tree.insert(path({"_start", "main", "b"}), HierLabel::for_local(5, 0));
  roundtrip_test(frames, tree, LabelContext{16});
}

TEST_F(TreeFixture, DecodedTreePreservesLabels) {
  GlobalTree tree;
  tree.insert(path({"_start", "main"}), GlobalLabel::for_task(3));
  tree.insert(path({"_start", "main"}), GlobalLabel::for_task(5));
  ByteSink sink;
  tree.encode(sink, frames, LabelContext{8});
  auto bytes = sink.take();
  ByteSource source(bytes);
  app::FrameTable fresh;
  auto decoded = GlobalTree::decode(source, fresh, LabelContext{8});
  ASSERT_TRUE(decoded.is_ok());
  const auto* start =
      decoded.value().root().find_child(fresh.intern("_start"));
  ASSERT_NE(start, nullptr);
  EXPECT_TRUE(start->label.tasks.contains(3));
  EXPECT_TRUE(start->label.tasks.contains(5));
  EXPECT_EQ(start->label.visits, 2u);
}

TEST_F(TreeFixture, RemapTreeRelabelsEveryEdge) {
  machine::DaemonLayout layout;
  layout.num_daemons = 4;
  layout.tasks_per_daemon = 8;
  layout.num_tasks = 32;
  const TaskMap map = TaskMap::shuffled(layout, 9);

  HierTree hier;
  hier.insert(path({"_start", "main", "x"}), HierLabel::for_local(2, 3));
  hier.insert(path({"_start", "main", "y"}), HierLabel::for_local(0, 1));

  const GlobalTree global = remap_tree(hier, map);
  EXPECT_EQ(global.node_count(), hier.node_count());
  const auto* x = global.root()
                      .find_child(frames.intern("_start"))
                      ->find_child(frames.intern("main"))
                      ->find_child(frames.intern("x"));
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->label.tasks.contains(map.global_rank(2, 3)));
  EXPECT_EQ(x->label.tasks.count(), 1u);
}

// The central correctness invariant of Sec. V: the optimized representation
// plus remap produces the *same* global tree as the original representation.
class RepresentationEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepresentationEquivalence, HierPlusRemapEqualsDense) {
  app::RingHangOptions options;
  options.num_tasks = 128;
  options.seed = GetParam();
  app::RingHangApp app(options);

  machine::DaemonLayout layout;
  layout.num_daemons = 16;
  layout.tasks_per_daemon = 8;
  layout.num_tasks = 128;
  const TaskMap map = TaskMap::shuffled(layout, GetParam());

  GlobalTree dense;
  HierTree hier;
  for (std::uint32_t d = 0; d < 16; ++d) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      const std::uint32_t rank = map.global_rank(d, i);
      for (std::uint32_t s = 0; s < 4; ++s) {
        const auto p = app.stack(TaskId(rank), 0, s);
        dense.insert(p, GlobalLabel::for_task(rank));
        hier.insert(p, HierLabel::for_local(d, i));
      }
    }
  }
  EXPECT_EQ(remap_tree(hier, map), dense);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepresentationEquivalence,
                         ::testing::Range<std::uint64_t>(100, 110));

TEST_F(TreeFixture, DotOutputContainsNodesAndLabels) {
  GlobalTree tree;
  GlobalLabel label;
  label.tasks = TaskSet::range(0, 1021);
  label.visits = 1022;
  tree.insert(path({"_start", "main"}), label);
  const std::string dot = to_dot(tree, frames);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("_start"), std::string::npos);
  EXPECT_NE(dot.find("1022:[0-1021]"), std::string::npos);
}

// --------------------------------------------------------------------------
// Equivalence classes

TEST_F(TreeFixture, ClassesSeparateDivergingTasks) {
  GlobalTree tree;
  tree.insert(path({"_start", "main", "PMPI_Barrier"}), GlobalLabel::for_task(0));
  tree.insert(path({"_start", "main", "PMPI_Barrier"}), GlobalLabel::for_task(3));
  tree.insert(path({"_start", "main", "do_SendOrStall"}),
              GlobalLabel::for_task(1));
  tree.insert(path({"_start", "main", "PMPI_Waitall"}), GlobalLabel::for_task(2));

  const auto classes = equivalence_classes(tree);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].size(), 2u);  // largest first
  EXPECT_TRUE(classes[0].tasks.contains(0));
  EXPECT_TRUE(classes[0].tasks.contains(3));
}

TEST_F(TreeFixture, ClassesHandleMidTreeStops) {
  // Task 9's trace ends at "main" while others continue deeper.
  GlobalTree tree;
  tree.insert(path({"_start", "main", "work"}), GlobalLabel::for_task(0));
  tree.insert(path({"_start", "main"}), GlobalLabel::for_task(9));
  const auto classes = equivalence_classes(tree);
  ASSERT_EQ(classes.size(), 2u);
  bool found_mid = false;
  for (const auto& cls : classes) {
    if (cls.tasks.contains(9)) {
      found_mid = true;
      EXPECT_EQ(cls.path.size(), 2u);
    }
  }
  EXPECT_TRUE(found_mid);
}

class ClassPartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassPartitionProperty, ClassesPartitionAllTasks) {
  app::StatBenchOptions options;
  options.num_tasks = 512;
  options.num_classes = 16;
  options.seed = GetParam();
  app::StatBenchApp app(options);

  GlobalTree tree;
  for (std::uint32_t t = 0; t < 512; ++t) {
    tree.insert(app.stack(TaskId(t), 0, 0), GlobalLabel::for_task(t));
  }
  const auto classes = equivalence_classes(tree);
  TaskSet all;
  std::uint64_t total = 0;
  for (const auto& cls : classes) {
    EXPECT_FALSE(all.intersects(cls.tasks));  // pairwise disjoint
    all.union_with(cls.tasks);
    total += cls.size();
  }
  EXPECT_EQ(total, 512u);
  EXPECT_EQ(all.count(), 512u);
  // Sorted largest-first.
  for (std::size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GE(classes[i - 1].size(), classes[i].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassPartitionProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST_F(TreeFixture, RepresentativesPickLowestRanks) {
  GlobalTree tree;
  tree.insert(path({"_start", "a"}), GlobalLabel::for_task(7));
  tree.insert(path({"_start", "a"}), GlobalLabel::for_task(3));
  tree.insert(path({"_start", "b"}), GlobalLabel::for_task(1));
  const auto classes = equivalence_classes(tree);
  const auto reps = representatives(classes, 1);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], 3u);
  EXPECT_EQ(reps[1], 1u);
  const auto reps2 = representatives(classes, 2);
  EXPECT_EQ(reps2.size(), 3u);  // class of {1} only has one member
}

TEST_F(TreeFixture, DescribeRendersPathAndCount) {
  GlobalTree tree;
  tree.insert(path({"_start", "main"}), GlobalLabel::for_task(1));
  const auto classes = equivalence_classes(tree);
  const std::string text = describe(classes[0], frames);
  EXPECT_NE(text.find("1 task(s)"), std::string::npos);
  EXPECT_NE(text.find("_start<main"), std::string::npos);
}

}  // namespace
}  // namespace petastat::stat
