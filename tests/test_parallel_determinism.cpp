// The execution engine's determinism contract: a scenario run with worker
// threads must produce a StatRunResult *bit-identical* to the serial run —
// same merged trees, same classes, same virtual timings, same byte counts.
// Virtual timestamps are fixed arithmetically on the simulator thread; the
// workers only overlap the real computations (trace synthesis, TBON merges,
// remap) between those timestamps, so nothing observable may drift.
//
// Cells are sampled across both machines, both representations, deep and
// flat topologies, all four app models, SBRS, and failure injection; each
// cell runs serial and with --exec-threads {2, 8}.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stat/checkpoint.hpp"
#include "stat/scenario.hpp"
#include "stat/statbench.hpp"

namespace petastat::stat {
namespace {

struct Cell {
  const char* name;
  machine::MachineConfig machine;
  machine::JobConfig job;
  StatOptions options;
};

std::vector<Cell> cells() {
  std::vector<Cell> out;
  {
    Cell c{"atlas_ring_hier_flat", machine::atlas(), {}, {}};
    c.job.num_tasks = 256;
    c.options.topology = tbon::TopologySpec::flat();
    c.options.repr = TaskSetRepr::kHierarchical;
    out.push_back(c);
  }
  {
    Cell c{"atlas_statbench_dense_2deep", machine::atlas(), {}, {}};
    c.job.num_tasks = 512;
    c.options.topology = tbon::TopologySpec::balanced(2);
    c.options.repr = TaskSetRepr::kDenseGlobal;
    c.options.app = AppKind::kStatBench;
    c.options.statbench_classes = 16;
    out.push_back(c);
  }
  {
    Cell c{"bgl_threaded_hier_bgl2", machine::bgl(), {}, {}};
    c.job.num_tasks = 4096;
    c.job.mode = machine::BglMode::kCoprocessor;
    c.job.threads_per_task = 4;
    c.options.topology = tbon::TopologySpec::bgl(2);
    c.options.repr = TaskSetRepr::kHierarchical;
    c.options.launcher = LauncherKind::kCiodPatched;
    c.options.app = AppKind::kThreadedRing;
    out.push_back(c);
  }
  {
    Cell c{"bgl_iostall_dense_vn", machine::bgl(), {}, {}};
    c.job.num_tasks = 8192;
    c.job.mode = machine::BglMode::kVirtualNode;
    c.options.topology = tbon::TopologySpec::bgl(2);
    c.options.repr = TaskSetRepr::kDenseGlobal;
    c.options.launcher = LauncherKind::kCiodPatched;
    c.options.app = AppKind::kIoStall;
    out.push_back(c);
  }
  {
    // SBRS + failure injection: the operationally gnarly path.
    Cell c{"atlas_ring_hier_sbrs_failures", machine::atlas(), {}, {}};
    c.job.num_tasks = 512;
    c.options.topology = tbon::TopologySpec::balanced(2);
    c.options.repr = TaskSetRepr::kHierarchical;
    c.options.use_sbrs = true;
    c.options.daemon_failure_probability = 0.05;
    out.push_back(c);
  }
  {
    // Sharded front end, flat tree: reducers merge shards on their own
    // strands, the FE combines, reducers remap slices.
    Cell c{"atlas_ring_hier_flat_4shards", machine::atlas(), {}, {}};
    c.job.num_tasks = 256;
    c.options.topology = tbon::TopologySpec::flat();
    c.options.fe_shards = 4;
    c.options.repr = TaskSetRepr::kHierarchical;
    out.push_back(c);
  }
  {
    // Reducer tree (K = 16 > the combine fan-in): reducers feed combiner
    // strands which feed the FE combine — three levels of real merges
    // overlapping across workers, timings still exact.
    Cell c{"atlas_ring_hier_flat_16shards", machine::atlas(), {}, {}};
    c.job.num_tasks = 256;
    c.options.topology = tbon::TopologySpec::flat();
    c.options.fe_shards = 16;
    c.options.repr = TaskSetRepr::kHierarchical;
    out.push_back(c);
  }
  {
    // Sharded deep tree with dense labels at BG/L scale.
    Cell c{"bgl_ring_dense_bgl2_2shards", machine::bgl(), {}, {}};
    c.job.num_tasks = 4096;
    c.options.topology = tbon::TopologySpec::bgl(2);
    c.options.fe_shards = 2;
    c.options.repr = TaskSetRepr::kDenseGlobal;
    c.options.launcher = LauncherKind::kCiodPatched;
    out.push_back(c);
  }
  {
    // Mid-merge reducer kill: the health monitor detects the corpse, the
    // trigger fires Reduction::recover, and the orphaned shard re-merges
    // through siblings — recovery timestamps are fixed on the sim thread,
    // so every recovery field must match the serial run exactly.
    Cell c{"atlas_ring_hier_16shards_midmerge_kill", machine::atlas(), {}, {}};
    c.job.num_tasks = 256;
    c.options.topology = tbon::TopologySpec::flat();
    c.options.fe_shards = 16;
    c.options.repr = TaskSetRepr::kHierarchical;
    c.options.fail_at_seconds = 0.02;
    c.options.ping_period_seconds = 0.1;
    out.push_back(c);
  }
  {
    // Streaming deltas under drift: per-round incremental merges, signature
    // checks, and cache folds all run through the worker pool; every
    // per-round stat must still match the serial run exactly.
    Cell c{"bgl_imbalance_hier_bgl2_stream", machine::bgl(), {}, {}};
    c.job.num_tasks = 4096;
    c.options.topology = tbon::TopologySpec::bgl(2);
    c.options.repr = TaskSetRepr::kHierarchical;
    c.options.launcher = LauncherKind::kCiodPatched;
    c.options.app = AppKind::kImbalance;
    c.options.evolution = app::TraceEvolution::kDrift;
    c.options.stream_samples = 5;
    out.push_back(c);
  }
  {
    // OOM cascade: the victim rank's daemon dies pre-sampling, survivors
    // produce the allocation-spiral / retransmit / barrier classes.
    Cell c{"atlas_oomcascade_hier_2deep", machine::atlas(), {}, {}};
    c.job.num_tasks = 256;
    c.options.topology = tbon::TopologySpec::balanced(2);
    c.options.repr = TaskSetRepr::kHierarchical;
    c.options.app = AppKind::kOomCascade;
    out.push_back(c);
  }
  return out;
}

StatRunResult run_cell(const Cell& cell, std::uint32_t threads) {
  StatOptions options = cell.options;
  options.exec_threads = threads;
  StatScenario scenario(cell.machine, cell.job, options);
  return scenario.run();
}

/// Every observable field must match exactly — "close" is a bug.
void expect_identical(const StatRunResult& serial, const StatRunResult& parallel,
                      const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_TRUE(serial.status.is_ok()) << serial.status.to_string();
  ASSERT_TRUE(parallel.status.is_ok()) << parallel.status.to_string();

  // Merged trees and classes: the actual tool product.
  EXPECT_TRUE(serial.tree_2d == parallel.tree_2d);
  EXPECT_TRUE(serial.tree_3d == parallel.tree_3d);
  ASSERT_EQ(serial.classes.size(), parallel.classes.size());
  for (std::size_t i = 0; i < serial.classes.size(); ++i) {
    EXPECT_EQ(serial.classes[i].path, parallel.classes[i].path);
    EXPECT_TRUE(serial.classes[i].tasks == parallel.classes[i].tasks);
  }

  // Virtual timings and modelled volumes, to the nanosecond and byte.
  const PhaseBreakdown& a = serial.phases;
  const PhaseBreakdown& b = parallel.phases;
  EXPECT_EQ(a.startup_total, b.startup_total);
  EXPECT_EQ(a.connect_time, b.connect_time);
  EXPECT_EQ(a.sbrs_grace, b.sbrs_grace);
  EXPECT_EQ(a.sbrs_relocation, b.sbrs_relocation);
  EXPECT_EQ(a.sample_time, b.sample_time);
  EXPECT_EQ(a.sample_symbol_io_max, b.sample_symbol_io_max);
  EXPECT_EQ(a.failed_daemons, b.failed_daemons);
  EXPECT_EQ(a.merge_time, b.merge_time);
  EXPECT_EQ(a.remap_time, b.remap_time);
  EXPECT_EQ(a.merge_bytes, b.merge_bytes);
  EXPECT_EQ(a.merge_messages, b.merge_messages);
  EXPECT_EQ(a.leaf_payload_bytes, b.leaf_payload_bytes);
  // Failure recovery: who died, when it was noticed, what was re-merged.
  EXPECT_EQ(serial.dead_daemons, parallel.dead_daemons);
  EXPECT_EQ(a.killed_procs, b.killed_procs);
  EXPECT_EQ(a.orphaned_daemons, b.orphaned_daemons);
  EXPECT_EQ(a.lost_daemons, b.lost_daemons);
  EXPECT_EQ(a.health_sweeps, b.health_sweeps);
  EXPECT_EQ(a.failure_detect_latency, b.failure_detect_latency);
  EXPECT_EQ(a.recovery_remerge_time, b.recovery_remerge_time);
  // Streaming rounds: every per-round stat, in order (empty in classic mode).
  EXPECT_EQ(a.stream_rounds, b.stream_rounds);
  EXPECT_EQ(a.stream_changed_rounds, b.stream_changed_rounds);
  ASSERT_EQ(serial.stream_samples.size(), parallel.stream_samples.size());
  for (std::size_t i = 0; i < serial.stream_samples.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    const StreamSampleStats& s = serial.stream_samples[i];
    const StreamSampleStats& p = parallel.stream_samples[i];
    EXPECT_EQ(s.sample, p.sample);
    EXPECT_EQ(s.sample_time, p.sample_time);
    EXPECT_EQ(s.merge_time, p.merge_time);
    EXPECT_EQ(s.merge_bytes, p.merge_bytes);
    EXPECT_EQ(s.merge_messages, p.merge_messages);
    EXPECT_EQ(s.changed_daemons, p.changed_daemons);
    EXPECT_EQ(s.remerged_procs, p.remerged_procs);
    EXPECT_EQ(s.cached_procs, p.cached_procs);
    EXPECT_EQ(s.changed, p.changed);
  }
  // Per-daemon sampling statistics accumulate in event order, which the
  // engine keeps deterministic — bitwise-equal floating point, not "close".
  EXPECT_EQ(a.daemon_sample_seconds.count(), b.daemon_sample_seconds.count());
  EXPECT_EQ(a.daemon_sample_seconds.mean(), b.daemon_sample_seconds.mean());
  EXPECT_EQ(a.daemon_sample_seconds.max(), b.daemon_sample_seconds.max());
}

class ParallelDeterminism : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ParallelDeterminism, MatchesSerialBitForBit) {
  const std::uint32_t threads = GetParam();
  for (const Cell& cell : cells()) {
    const StatRunResult serial = run_cell(cell, 1);
    const StatRunResult parallel = run_cell(cell, threads);
    expect_identical(serial, parallel,
                     std::string(cell.name) + " x" + std::to_string(threads));
  }
}

// A restored session introduces no thread-sensitive state: the resumed
// streaming rounds (cold caches, re-armed mid-series cursor, seeded trees)
// at any thread count must match the serial restore bit for bit.
TEST_P(ParallelDeterminism, RestoredRunMatchesSerialBitForBit) {
  const std::uint32_t threads = GetParam();
  Cell cell{"atlas_stream_restore", machine::atlas(), {}, {}};
  cell.job.num_tasks = 512;
  cell.options.topology = tbon::TopologySpec::flat();
  cell.options.fe_shards = 16;
  cell.options.repr = TaskSetRepr::kHierarchical;
  cell.options.evolution = app::TraceEvolution::kDrift;
  cell.options.stream_samples = 5;

  // Vacate at round 2 (serial) to capture the checkpoint both restores share.
  StatOptions vacate = cell.options;
  vacate.exec_threads = 1;
  vacate.vacate_at_round = 2;
  StatScenario vacate_scenario(cell.machine, cell.job, vacate);
  const StatRunResult killed = vacate_scenario.run();
  ASSERT_TRUE(killed.status.is_ok()) << killed.status.to_string();
  ASSERT_NE(killed.checkpoint, nullptr);

  const auto run_restore = [&](std::uint32_t n) {
    StatOptions options = cell.options;
    options.exec_threads = n;
    StatScenario scenario(cell.machine, cell.job, options, killed.checkpoint);
    return scenario.run();
  };
  const StatRunResult serial = run_restore(1);
  const StatRunResult parallel = run_restore(threads);
  EXPECT_TRUE(serial.restored);
  EXPECT_TRUE(parallel.restored);
  expect_identical(serial, parallel,
                   "restore x" + std::to_string(threads));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelDeterminism,
                         ::testing::Values(2u, 8u));

TEST(ParallelDeterminism, StatBenchEmulationMatchesSerial) {
  StatBenchConfig config;
  config.machine = machine::bgl();
  config.virtual_tasks = 1u << 15;
  config.topology = tbon::TopologySpec::bgl(2);
  config.repr = TaskSetRepr::kHierarchical;

  config.exec_threads = 1;
  const StatBenchResult serial = run_statbench(config);
  config.exec_threads = 8;
  const StatBenchResult parallel = run_statbench(config);

  ASSERT_TRUE(serial.status.is_ok()) << serial.status.to_string();
  ASSERT_TRUE(parallel.status.is_ok()) << parallel.status.to_string();
  EXPECT_EQ(serial.generate_time, parallel.generate_time);
  EXPECT_EQ(serial.merge_time, parallel.merge_time);
  EXPECT_EQ(serial.remap_time, parallel.remap_time);
  EXPECT_EQ(serial.merge_bytes, parallel.merge_bytes);
  EXPECT_EQ(serial.leaf_payload_bytes, parallel.leaf_payload_bytes);
  EXPECT_TRUE(serial.tree_3d == parallel.tree_3d);
  ASSERT_EQ(serial.classes.size(), parallel.classes.size());
}

// Repeated parallel runs of one cell must agree with each other too (no
// run-to-run scheduling sensitivity).
TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  const Cell cell = cells().front();
  const StatRunResult first = run_cell(cell, 8);
  const StatRunResult second = run_cell(cell, 8);
  expect_identical(first, second, "repeat x8");
}

}  // namespace
}  // namespace petastat::stat
