#include "plan/search.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

namespace petastat::plan {

std::vector<tbon::TopologySpec> enumerate_specs(
    const machine::MachineConfig& machine, std::uint32_t num_daemons,
    const std::vector<std::uint32_t>& shard_counts) {
  std::vector<tbon::TopologySpec> specs;
  // Dedup by derived widths: the balanced rule, the BG/L rule, and an
  // explicit sweep can all land on the same tree. A sharded tree with the
  // same widths is *not* the same candidate — its reducers own the
  // connection checks and the distributed remap — so the (effective) shard
  // count joins the key.
  std::set<std::pair<std::vector<std::uint32_t>, std::uint32_t>> seen;
  const auto add = [&](const tbon::TopologySpec& base) {
    for (const std::uint32_t shards : shard_counts) {
      tbon::TopologySpec spec =
          shards > 1 ? base.with_shards(shards) : base;
      auto widths = tbon::derive_level_widths(machine, spec, num_daemons);
      if (!widths.is_ok()) continue;  // malformed for this scale; skip
      const std::uint32_t effective_shards =
          spec.fe_shards > 1 ? widths.value().front() : 1;
      if (!seen.insert({widths.value(), effective_shards}).second) continue;
      specs.push_back(std::move(spec));
    }
  };

  // The paper's rules (Figs. 4/5).
  add(tbon::TopologySpec::flat());
  add(tbon::TopologySpec::balanced(2));
  add(tbon::TopologySpec::balanced(3));
  if (!machine.comm_procs_on_compute_allocation) {
    add(tbon::TopologySpec::bgl(2));
    add(tbon::TopologySpec::bgl(3, 16));
    add(tbon::TopologySpec::bgl(3, 24));
  }

  // Explicit width sweeps under the comm-process placement limits.
  const std::uint64_t capacity =
      tbon::comm_process_capacity(machine, num_daemons);
  const auto explicit_spec = [](std::vector<std::uint32_t> widths) {
    tbon::TopologySpec spec;
    spec.depth = static_cast<std::uint32_t>(widths.size()) + 1;
    spec.level_widths = std::move(widths);
    return spec;
  };
  for (std::uint32_t w = 2; w <= num_daemons && w <= capacity && w <= 512;
       w *= 2) {
    add(explicit_spec({w}));
    // 3-deep: a narrow front-end fanout over a wider second level.
    for (const std::uint32_t f : {4u, 8u}) {
      if (f <= w && static_cast<std::uint64_t>(f) + w <= capacity) {
        add(explicit_spec({f, w}));
      }
    }
  }
  return specs;
}

Result<TopologySearchResult> search_topologies(
    const PhasePredictor& predictor) {
  TopologySearchResult result;
  // The shard dimension: `--fe-shards auto` searches K in {1,2,4,8}; a
  // pinned K restricts every candidate to it.
  const std::vector<std::uint32_t> shard_counts =
      predictor.options().fe_shards_auto
          ? std::vector<std::uint32_t>{1, 2, 4, 8}
          : std::vector<std::uint32_t>{predictor.options().fe_shards};
  const std::vector<tbon::TopologySpec> specs = enumerate_specs(
      predictor.machine(), predictor.layout().num_daemons, shard_counts);
  for (const tbon::TopologySpec& spec : specs) {
    auto prediction = predictor.predict(spec);
    if (!prediction.is_ok()) continue;  // not buildable at this scale
    if (prediction.value().viability.is_ok()) {
      result.viable.push_back({spec, std::move(prediction).value()});
    } else {
      result.rejected.push_back({spec, std::move(prediction).value()});
    }
  }
  if (result.viable.empty()) {
    return resource_exhausted(
        "no viable topology: every candidate is predicted to fail on " +
        predictor.machine().name);
  }
  std::stable_sort(result.viable.begin(), result.viable.end(),
                   [](const RankedTopology& a, const RankedTopology& b) {
                     return a.prediction.startup_plus_merge() <
                            b.prediction.startup_plus_merge();
                   });
  return result;
}

Result<tbon::TopologySpec> choose_topology(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  auto ranked = search_topologies(predictor.value());
  if (!ranked.is_ok()) return ranked.status();
  return ranked.value().best().spec;
}

Result<tbon::TopologySpec> choose_fe_shards(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  std::optional<tbon::TopologySpec> best;
  SimTime best_time = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    tbon::TopologySpec spec = options.topology.with_shards(k);
    auto prediction = predictor.value().predict(spec);
    if (!prediction.is_ok()) continue;  // not buildable at this K
    if (!prediction.value().viability.is_ok()) continue;  // predicted doomed
    const SimTime t = prediction.value().startup_plus_merge();
    if (!best || t < best_time) {
      best = std::move(spec);
      best_time = t;
    }
  }
  if (!best) {
    return resource_exhausted(
        "no viable front-end shard count in {1,2,4,8} for topology " +
        options.topology.name() + " on " + machine.name);
  }
  return *best;
}

}  // namespace petastat::plan
