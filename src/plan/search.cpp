#include "plan/search.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

namespace petastat::plan {

namespace {

/// The placement dimension for one shard count: pack vs spread vs route for
/// K > 1 (kCommLike coincides with pack on compute-allocation machines and
/// with spread on login tiers, so the trio covers the space without
/// duplicate candidates; route sees the switch graph and can differ from
/// both on oversubscribed fabrics). Comm-like alone when unsharded. One
/// definition for enumerate_specs and choose_fe_shards, so the two auto
/// paths can never search different placement spaces.
std::vector<tbon::ReducerPlacement> placements_for(std::uint32_t shards) {
  if (shards > 1) {
    return {tbon::ReducerPlacement::kPack, tbon::ReducerPlacement::kSpread,
            tbon::ReducerPlacement::kRoute};
  }
  return {tbon::ReducerPlacement::kCommLike};
}

}  // namespace

std::vector<tbon::TopologySpec> enumerate_specs(
    const machine::MachineConfig& machine, std::uint32_t num_daemons,
    const std::vector<std::uint32_t>& shard_counts) {
  std::vector<tbon::TopologySpec> specs;
  // Dedup by derived widths: the balanced rule, the BG/L rule, and an
  // explicit sweep can all land on the same tree. A sharded tree with the
  // same widths is *not* the same candidate — its reducers own the
  // connection checks and the distributed remap — so the (effective) shard
  // count joins the key, and so does the placement: pack and spread put the
  // same procs on different hosts, which is exactly the spawn-locality vs
  // NIC-contention trade the search exists to price.
  std::set<std::tuple<std::vector<std::uint32_t>, std::uint32_t,
                      tbon::ReducerPlacement>>
      seen;
  const auto add = [&](const tbon::TopologySpec& base) {
    for (const std::uint32_t shards : shard_counts) {
      for (const tbon::ReducerPlacement placement : placements_for(shards)) {
        tbon::TopologySpec spec =
            shards > 1 ? base.with_shards(shards).with_placement(placement)
                       : base;
        auto levels = tbon::derive_levels(machine, spec, num_daemons);
        if (!levels.is_ok()) continue;  // malformed for this scale; skip
        const std::uint32_t effective_shards =
            std::max(1u, levels.value().num_reducers());
        if (!seen.insert({levels.value().widths, effective_shards, placement})
                 .second) {
          continue;
        }
        specs.push_back(std::move(spec));
      }
    }
  };

  // The paper's rules (Figs. 4/5).
  add(tbon::TopologySpec::flat());
  add(tbon::TopologySpec::balanced(2));
  add(tbon::TopologySpec::balanced(3));
  if (!machine.comm_procs_on_compute_allocation) {
    add(tbon::TopologySpec::bgl(2));
    add(tbon::TopologySpec::bgl(3, 16));
    add(tbon::TopologySpec::bgl(3, 24));
  }

  // Explicit width sweeps under the comm-process placement limits.
  const std::uint64_t capacity =
      tbon::comm_process_capacity(machine, num_daemons);
  const auto explicit_spec = [](std::vector<std::uint32_t> widths) {
    tbon::TopologySpec spec;
    spec.depth = static_cast<std::uint32_t>(widths.size()) + 1;
    spec.level_widths = std::move(widths);
    return spec;
  };
  for (std::uint32_t w = 2; w <= num_daemons && w <= capacity && w <= 512;
       w *= 2) {
    add(explicit_spec({w}));
    // 3-deep: a narrow front-end fanout over a wider second level.
    for (const std::uint32_t f : {4u, 8u}) {
      if (f <= w && static_cast<std::uint64_t>(f) + w <= capacity) {
        add(explicit_spec({f, w}));
      }
    }
  }
  return specs;
}

Result<TopologySearchResult> search_topologies(
    const PhasePredictor& predictor) {
  TopologySearchResult result;
  // The shard dimension: `--fe-shards auto` searches K in {1,...,64} —
  // K > 8 engages the reducer tree — and a pinned K restricts every
  // candidate to it; the placement dimension rides along inside
  // enumerate_specs for every K > 1.
  const std::vector<std::uint32_t> shard_counts =
      predictor.options().fe_shards_auto
          ? std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64}
          : std::vector<std::uint32_t>{predictor.options().fe_shards};
  const std::vector<tbon::TopologySpec> specs = enumerate_specs(
      predictor.machine(), predictor.layout().num_daemons, shard_counts);
  for (const tbon::TopologySpec& spec : specs) {
    auto prediction = predictor.predict(spec);
    if (!prediction.is_ok()) continue;  // not buildable at this scale
    if (prediction.value().viability.is_ok()) {
      result.viable.push_back({spec, std::move(prediction).value()});
    } else {
      result.rejected.push_back({spec, std::move(prediction).value()});
    }
  }
  if (result.viable.empty()) {
    return resource_exhausted(
        "no viable topology: every candidate is predicted to fail on " +
        predictor.machine().name);
  }
  std::stable_sort(result.viable.begin(), result.viable.end(),
                   [](const RankedTopology& a, const RankedTopology& b) {
                     return a.prediction.startup_plus_merge() <
                            b.prediction.startup_plus_merge();
                   });
  return result;
}

Result<tbon::TopologySpec> choose_topology(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  auto ranked = search_topologies(predictor.value());
  if (!ranked.is_ok()) return ranked.status();
  return ranked.value().best().spec;
}

namespace {

/// The K × placement sweep shared by choose_fe_shards and replan_fe_shards:
/// one loop, so the cold path and the restore path can never rank different
/// shard spaces.
Result<tbon::TopologySpec> best_fe_shard_spec(
    const PhasePredictor& predictor, const machine::MachineConfig& machine,
    const stat::StatOptions& options) {
  std::optional<tbon::TopologySpec> best;
  SimTime best_time = 0;
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (const tbon::ReducerPlacement placement : placements_for(k)) {
      tbon::TopologySpec spec =
          options.topology.with_shards(k).with_placement(placement);
      auto prediction = predictor.predict(spec);
      if (!prediction.is_ok()) continue;  // not buildable at this K
      if (!prediction.value().viability.is_ok()) continue;  // predicted doomed
      const SimTime t = prediction.value().startup_plus_merge();
      if (!best || t < best_time) {
        best = std::move(spec);
        best_time = t;
      }
    }
  }
  if (!best) {
    return resource_exhausted(
        "no viable front-end shard count in {1,...,64} for topology " +
        options.topology.name() + " on " + machine.name);
  }
  return *best;
}

}  // namespace

Result<tbon::TopologySpec> choose_fe_shards(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  return best_fe_shard_spec(predictor.value(), machine, options);
}

Result<tbon::TopologySpec> replan_fe_shards(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs,
    double measured_leaf_payload_bytes) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  predictor.value().scale_payload_profile(measured_leaf_payload_bytes);
  return best_fe_shard_spec(predictor.value(), machine, options);
}

}  // namespace petastat::plan
