#include "plan/search.hpp"

#include <algorithm>
#include <set>

namespace petastat::plan {

std::vector<tbon::TopologySpec> enumerate_specs(
    const machine::MachineConfig& machine, std::uint32_t num_daemons) {
  std::vector<tbon::TopologySpec> specs;
  // Dedup by derived widths: the balanced rule, the BG/L rule, and an
  // explicit sweep can all land on the same tree.
  std::set<std::vector<std::uint32_t>> seen;
  const auto add = [&](tbon::TopologySpec spec) {
    auto widths = tbon::derive_level_widths(machine, spec, num_daemons);
    if (!widths.is_ok()) return;  // malformed for this scale; skip
    if (!seen.insert(widths.value()).second) return;
    specs.push_back(std::move(spec));
  };

  // The paper's rules (Figs. 4/5).
  add(tbon::TopologySpec::flat());
  add(tbon::TopologySpec::balanced(2));
  add(tbon::TopologySpec::balanced(3));
  if (!machine.comm_procs_on_compute_allocation) {
    add(tbon::TopologySpec::bgl(2));
    add(tbon::TopologySpec::bgl(3, 16));
    add(tbon::TopologySpec::bgl(3, 24));
  }

  // Explicit width sweeps under the comm-process placement limits.
  const std::uint64_t capacity =
      tbon::comm_process_capacity(machine, num_daemons);
  const auto explicit_spec = [](std::vector<std::uint32_t> widths) {
    tbon::TopologySpec spec;
    spec.depth = static_cast<std::uint32_t>(widths.size()) + 1;
    spec.level_widths = std::move(widths);
    return spec;
  };
  for (std::uint32_t w = 2; w <= num_daemons && w <= capacity && w <= 512;
       w *= 2) {
    add(explicit_spec({w}));
    // 3-deep: a narrow front-end fanout over a wider second level.
    for (const std::uint32_t f : {4u, 8u}) {
      if (f <= w && static_cast<std::uint64_t>(f) + w <= capacity) {
        add(explicit_spec({f, w}));
      }
    }
  }
  return specs;
}

Result<TopologySearchResult> search_topologies(
    const PhasePredictor& predictor) {
  TopologySearchResult result;
  const std::vector<tbon::TopologySpec> specs = enumerate_specs(
      predictor.machine(), predictor.layout().num_daemons);
  for (const tbon::TopologySpec& spec : specs) {
    auto prediction = predictor.predict(spec);
    if (!prediction.is_ok()) continue;  // not buildable at this scale
    if (prediction.value().viability.is_ok()) {
      result.viable.push_back({spec, std::move(prediction).value()});
    } else {
      result.rejected.push_back({spec, std::move(prediction).value()});
    }
  }
  if (result.viable.empty()) {
    return resource_exhausted(
        "no viable topology: every candidate is predicted to fail on " +
        predictor.machine().name);
  }
  std::stable_sort(result.viable.begin(), result.viable.end(),
                   [](const RankedTopology& a, const RankedTopology& b) {
                     return a.prediction.startup_plus_merge() <
                            b.prediction.startup_plus_merge();
                   });
  return result;
}

Result<tbon::TopologySpec> choose_topology(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs) {
  auto predictor = PhasePredictor::create(machine, job, options, costs);
  if (!predictor.is_ok()) return predictor.status();
  auto ranked = search_topologies(predictor.value());
  if (!ranked.is_ok()) return ranked.status();
  return ranked.value().best().spec;
}

}  // namespace petastat::plan
