#include "plan/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <unordered_map>

#include "app/appmodel.hpp"
#include "fs/filesystem.hpp"
#include "stat/filter.hpp"
#include "stat/hier_taskset.hpp"
#include "stat/prefix_tree.hpp"
#include "tbon/health.hpp"
#include "tbon/multicast.hpp"

namespace petastat::plan {

namespace {

/// Piecewise-linear interpolation over (probe_counts, values), extrapolated
/// beyond the last probe point with the final segment's slope (clamped to be
/// non-decreasing — payloads never shrink as a subtree grows).
double interpolate(const std::vector<std::uint32_t>& xs,
                   const std::vector<double>& ys, double x) {
  check(!xs.empty() && xs.size() == ys.size(), "malformed workload profile");
  if (x <= xs.front()) return ys.front();
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (x <= xs[i]) {
      const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + t * (ys[i] - ys[i - 1]);
    }
  }
  if (xs.size() == 1) return ys.back();
  const std::size_t n = xs.size();
  const double slope = std::max(
      0.0, (ys[n - 1] - ys[n - 2]) / (xs[n - 1] - xs[n - 2]));
  return ys.back() + slope * (x - xs.back());
}

}  // namespace

double WorkloadProfile::payload_bytes_for(double daemons) const {
  return interpolate(probe_counts, merged_payload_bytes, daemons);
}

double WorkloadProfile::tree_nodes_for(double daemons) const {
  return interpolate(probe_counts, merged_tree_nodes, daemons);
}

namespace {

/// Synthesizes one daemon's trace payload exactly as the scenario's sampling
/// sink would, for either label representation.
template <typename Label>
stat::StatPayload<Label> synthesize_payload(const app::AppModel& app,
                                            const machine::DaemonLayout& layout,
                                            const stat::TaskMap& task_map,
                                            std::uint32_t daemon,
                                            std::uint32_t num_samples,
                                            double& frames_sum,
                                            std::uint64_t& trace_count) {
  stat::StatPayload<Label> payload;
  const std::uint32_t count = layout.tasks_of(DaemonId(daemon));
  const std::uint32_t threads = app.threads_per_task();
  for (std::uint32_t s = 0; s < num_samples; ++s) {
    for (std::uint32_t t = 0; t < count; ++t) {
      const TaskId task = TaskId(task_map.global_rank(daemon, t));
      for (std::uint32_t th = 0; th < threads; ++th) {
        const app::CallPath path = app.stack(task, th, s);
        frames_sum += static_cast<double>(path.size());
        ++trace_count;
        stat::insert_trace(payload, path, daemon, t, task, s);
      }
    }
  }
  return payload;
}

template <typename Label>
void profile_with_label(const app::AppModel& app,
                        const machine::DaemonLayout& layout,
                        const stat::TaskMap& task_map,
                        const stat::StatOptions& options,
                        WorkloadProfile& profile) {
  const stat::LabelContext ctx{layout.num_tasks};
  const app::FrameTable& frames = app.frames();

  // Probe the first 1, 2, 4, 8 daemons (capped at the job size): enough to
  // see whether payloads grow with the subtree (hier) or saturate (dense).
  std::vector<std::uint32_t> ks;
  for (std::uint32_t k = 1; k <= layout.num_daemons && k <= 8; k *= 2) {
    ks.push_back(k);
  }
  if (ks.back() < layout.num_daemons && ks.back() < 8) {
    ks.push_back(layout.num_daemons);  // tiny jobs: probe everything
  }

  double frames_sum = 0.0;
  std::uint64_t traces = 0;
  double leaf_bytes_sum = 0.0;
  double leaf_nodes_sum = 0.0;
  stat::StatPayload<Label> merged;
  std::uint32_t merged_daemons = 0;
  for (const std::uint32_t k : ks) {
    for (std::uint32_t d = merged_daemons; d < k; ++d) {
      stat::StatPayload<Label> leaf = synthesize_payload<Label>(
          app, layout, task_map, d, options.num_samples, frames_sum, traces);
      leaf_bytes_sum +=
          static_cast<double>(payload_wire_bytes(leaf, frames, ctx));
      leaf_nodes_sum += static_cast<double>(leaf.tree_2d.node_count() +
                                            leaf.tree_3d.node_count());
      merged.tree_2d.merge(leaf.tree_2d);
      merged.tree_3d.merge(leaf.tree_3d);
    }
    merged_daemons = k;
    profile.probe_counts.push_back(k);
    profile.merged_payload_bytes.push_back(
        static_cast<double>(payload_wire_bytes(merged, frames, ctx)));
    profile.merged_tree_nodes.push_back(static_cast<double>(
        merged.tree_2d.node_count() + merged.tree_3d.node_count()));
  }

  profile.avg_frames_per_trace =
      traces > 0 ? frames_sum / static_cast<double>(traces) : 0.0;
  profile.traces_per_daemon =
      traces / std::max<std::uint64_t>(1, merged_daemons);
  profile.leaf_payload_bytes = leaf_bytes_sum / merged_daemons;
  profile.leaf_tree_nodes = leaf_nodes_sum / merged_daemons;
}

/// Synthesizes one daemon's single-sample streaming snapshot exactly as the
/// scenario's streaming sink would (stat::StreamSnapshot: one tree, label
/// seeded per representation).
template <typename Label>
stat::StreamSnapshot<Label> synthesize_snapshot(
    const app::AppModel& app, const machine::DaemonLayout& layout,
    const stat::TaskMap& task_map, std::uint32_t daemon) {
  stat::StreamSnapshot<Label> snapshot;
  const std::uint32_t count = layout.tasks_of(DaemonId(daemon));
  const std::uint32_t threads = app.threads_per_task();
  for (std::uint32_t t = 0; t < count; ++t) {
    const TaskId task = TaskId(task_map.global_rank(daemon, t));
    for (std::uint32_t th = 0; th < threads; ++th) {
      const app::CallPath path = app.stack(task, th, /*sample=*/0);
      Label seed;
      if constexpr (std::is_same_v<Label, stat::GlobalLabel>) {
        seed = stat::GlobalLabel::for_task(task.value());
      } else {
        seed = stat::HierLabel::for_local(daemon, t);
      }
      snapshot.tree.insert(path, seed);
    }
  }
  return snapshot;
}

template <typename Label>
void stream_profile_with_label(const app::AppModel& app,
                               const machine::DaemonLayout& layout,
                               const stat::TaskMap& task_map,
                               WorkloadProfile& profile) {
  const stat::LabelContext ctx{layout.num_tasks};
  const app::FrameTable& frames = app.frames();

  std::vector<std::uint32_t> ks;
  for (std::uint32_t k = 1; k <= layout.num_daemons && k <= 8; k *= 2) {
    ks.push_back(k);
  }
  if (ks.back() < layout.num_daemons && ks.back() < 8) {
    ks.push_back(layout.num_daemons);
  }

  double leaf_bytes_sum = 0.0;
  double leaf_nodes_sum = 0.0;
  stat::StreamSnapshot<Label> merged;
  std::uint32_t merged_daemons = 0;
  for (const std::uint32_t k : ks) {
    for (std::uint32_t d = merged_daemons; d < k; ++d) {
      stat::StreamSnapshot<Label> leaf =
          synthesize_snapshot<Label>(app, layout, task_map, d);
      leaf_bytes_sum +=
          static_cast<double>(stat::snapshot_wire_bytes(leaf, frames, ctx));
      leaf_nodes_sum += static_cast<double>(leaf.tree.node_count());
      merged.tree.merge(leaf.tree);
    }
    merged_daemons = k;
    profile.probe_counts.push_back(k);
    profile.merged_payload_bytes.push_back(
        static_cast<double>(stat::snapshot_wire_bytes(merged, frames, ctx)));
    profile.merged_tree_nodes.push_back(
        static_cast<double>(merged.tree.node_count()));
  }
  profile.leaf_payload_bytes = leaf_bytes_sum / merged_daemons;
  profile.leaf_tree_nodes = leaf_nodes_sum / merged_daemons;
}

// --- Probe memoization -----------------------------------------------------
// One process-wide cache for both probe kinds (batched payloads and streaming
// snapshots), keyed on every input that determines the synthesized traces.
// Deliberately global (see the profile_workload contract in the header): the
// probes are pure functions of the key, so caching them never couples
// co-resident sessions.

struct ProfileCache {
  std::mutex mu;
  std::unordered_map<std::string, WorkloadProfile> entries;
  ProfileCacheCounters counters;
};

ProfileCache& profile_cache() {
  static ProfileCache cache;
  return cache;
}

/// Everything the synthesized probe traces depend on: the app model's inputs
/// (kind, seed, evolution, binary layout, machine shape via bgl_frames and
/// the daemon layout), the task map, and the sampling window. Login-tier
/// capacity fields are deliberately absent — the service scheduler prices
/// sessions against contended "effective machines" that differ only in those,
/// and the probes are identical across them.
std::string profile_cache_key(const char* kind,
                              const machine::MachineConfig& machine,
                              const machine::JobConfig& job,
                              const stat::StatOptions& options) {
  std::string key(kind);
  key += '|';
  key += machine.name;
  const auto add = [&key](std::uint64_t v) {
    key += '|';
    key += std::to_string(v);
  };
  add(machine.compute_nodes);
  add(machine.cores_per_compute_node);
  add(static_cast<std::uint64_t>(machine.daemon_placement));
  add(machine.compute_nodes_per_io_node);
  add(machine.io_nodes);
  add(machine.static_binary ? 1 : 0);
  add(job.num_tasks);
  add(static_cast<std::uint64_t>(job.mode));
  add(job.threads_per_task);
  add(static_cast<std::uint64_t>(options.app));
  add(options.seed);
  add(options.num_samples);
  add(static_cast<std::uint64_t>(options.repr));
  add(options.shuffle_task_map ? 1 : 0);
  add(options.statbench_classes);
  add(options.slim_binaries ? 1 : 0);
  add(static_cast<std::uint64_t>(options.evolution));
  add(options.drift_period);
  return key;
}

template <typename Measure>
WorkloadProfile cached_profile(const char* kind,
                               const machine::MachineConfig& machine,
                               const machine::JobConfig& job,
                               const stat::StatOptions& options,
                               Measure measure) {
  const std::string key = profile_cache_key(kind, machine, job, options);
  ProfileCache& cache = profile_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      ++cache.counters.hits;
      return it->second;
    }
  }
  // Synthesize outside the lock: probes are deterministic, so a racing miss
  // on the same key just computes the same value twice.
  WorkloadProfile profile = measure();
  std::lock_guard<std::mutex> lock(cache.mu);
  ++cache.counters.misses;
  cache.entries.emplace(key, profile);
  return profile;
}

/// Measures the single-sample snapshot sizes the streaming delta rounds
/// move — the --stream counterpart of profile_workload (which measures the
/// batched 2D+3D payload across all samples). Memoized like it, too.
WorkloadProfile profile_stream_workload(const machine::MachineConfig& machine,
                                        const machine::JobConfig& job,
                                        const machine::DaemonLayout& layout,
                                        const stat::StatOptions& options) {
  return cached_profile("stream", machine, job, options, [&]() {
    WorkloadProfile profile;
    const auto app = stat::make_app_model(machine, job, options);
    const stat::TaskMap task_map =
        options.shuffle_task_map
            ? stat::TaskMap::shuffled(layout, options.seed)
            : stat::TaskMap::identity(layout);
    if (options.repr == stat::TaskSetRepr::kDenseGlobal) {
      stream_profile_with_label<stat::GlobalLabel>(*app, layout, task_map,
                                                   profile);
    } else {
      stream_profile_with_label<stat::HierLabel>(*app, layout, task_map,
                                                 profile);
    }
    return profile;
  });
}

}  // namespace

WorkloadProfile profile_workload(const machine::MachineConfig& machine,
                                 const machine::JobConfig& job,
                                 const machine::DaemonLayout& layout,
                                 const stat::StatOptions& options) {
  return cached_profile("batched", machine, job, options, [&]() {
    WorkloadProfile profile;
    const auto app = stat::make_app_model(machine, job, options);
    const stat::TaskMap task_map =
        options.shuffle_task_map
            ? stat::TaskMap::shuffled(layout, options.seed)
            : stat::TaskMap::identity(layout);
    if (options.repr == stat::TaskSetRepr::kDenseGlobal) {
      profile_with_label<stat::GlobalLabel>(*app, layout, task_map, options,
                                            profile);
    } else {
      profile_with_label<stat::HierLabel>(*app, layout, task_map, options,
                                          profile);
    }
    for (const auto& image : app->binaries().images) {
      profile.symbol_image_bytes += image.bytes;
      if (image.path.rfind("/nfs", 0) == 0) {
        profile.shared_fs_image_bytes += image.bytes;
      }
    }
    return profile;
  });
}

ProfileCacheCounters profile_cache_counters() {
  ProfileCache& cache = profile_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.counters;
}

void reset_profile_cache() {
  ProfileCache& cache = profile_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.counters = ProfileCacheCounters{};
}

// ---------------------------------------------------------------------------
// PhasePredictor

PhasePredictor::PhasePredictor(machine::MachineConfig machine,
                               machine::JobConfig job,
                               stat::StatOptions options,
                               machine::CostModel costs,
                               machine::DaemonLayout layout)
    : machine_(std::move(machine)),
      job_(job),
      options_(std::move(options)),
      costs_(costs),
      layout_(layout),
      graph_(net::build_switch_graph(machine_)),
      profile_(profile_workload(machine_, job_, layout_, options_)),
      stream_profile_(
          profile_stream_workload(machine_, job_, layout_, options_)) {
  // Fold the per-run connection override into the config (mirrors
  // StatScenario): the reducer-tree fan-in clamp in tbon::derive_levels and
  // every viability check must see the same limit, or the planner would
  // price trees the run then builds differently.
  if (options_.max_frontend_connections) {
    machine_.max_tool_connections = *options_.max_frontend_connections;
  }
}

Result<PhasePredictor> PhasePredictor::create(machine::MachineConfig machine,
                                              machine::JobConfig job,
                                              stat::StatOptions options,
                                              machine::CostModel costs) {
  auto layout = machine::layout_daemons(machine, job);
  if (!layout.is_ok()) return layout.status();
  return PhasePredictor(std::move(machine), job, std::move(options), costs,
                        layout.value());
}

SimTime PhasePredictor::predict_launch(Status& viability) const {
  const machine::LaunchCosts& costs = costs_.launch;
  const std::uint32_t daemons = layout_.num_daemons;
  const bool tool_launches_app =
      machine_.daemon_placement == machine::DaemonPlacement::kPerIoNode;
  const std::uint32_t app_procs = tool_launches_app ? layout_.num_tasks : 0;

  switch (options_.launcher) {
    case stat::LauncherKind::kMrnetRsh:
      if (!machine_.supports_rsh) {
        viability = unavailable(machine_.name + " does not support rsh");
      } else if (daemons >= costs.rsh_failure_threshold) {
        viability = unavailable("rsh spawn fails (reserved ports exhausted)");
      }
      return machine::serial_shell_spawn_time(costs, daemons) +
             costs.daemon_init;
    case stat::LauncherKind::kMrnetSsh:
      if (!machine_.supports_ssh) {
        viability =
            unavailable(machine_.name + " compute nodes do not run sshd");
      }
      return machine::serial_shell_spawn_time(costs, daemons) +
             costs.daemon_init;
    case stat::LauncherKind::kLaunchMon:
      return machine::bulk_tree_spawn_time(costs, daemons) + costs.daemon_init;
    case stat::LauncherKind::kCiodPatched:
      return machine::ciod_spawn_time(costs, daemons) + costs.daemon_init +
             machine::ciod_app_launch_time(costs, app_procs) +
             machine::ciod_process_table_time(costs, app_procs,
                                              /*patched=*/true);
    case stat::LauncherKind::kCiodUnpatched:
      if (app_procs >= costs.ciod_unpatched_hang_threshold) {
        viability = deadline_exceeded(
            "BG/L resource manager hang generating the process table");
      }
      return machine::ciod_spawn_time(costs, daemons) + costs.daemon_init +
             machine::ciod_app_launch_time(costs, app_procs) +
             machine::ciod_process_table_time(costs, app_procs,
                                              /*patched=*/false);
  }
  check(false, "unknown LauncherKind");
  return 0;
}

SimTime PhasePredictor::predict_sampling() const {
  const machine::SamplingCosts& costs = costs_.sampling;
  const double contention =
      machine::expected_contention(costs, machine_.daemon_shares_cpu);

  const double walk_s =
      static_cast<double>(profile_.traces_per_daemon) *
      to_seconds(machine::stack_walk_cost(
          costs,
          static_cast<std::size_t>(
              std::llround(profile_.avg_frames_per_trace)))) *
      contention;
  const double parse_s =
      to_seconds(
          machine::symtab_parse_cost(costs, profile_.symbol_image_bytes)) *
      contention;

  // Coarse shared-FS model: every daemon pulls the shared images through the
  // server's aggregate bandwidth (mostly page-cache hits — all daemons read
  // the same binaries), taken from the same NfsParams the scenario mounts.
  // Lustre runs reuse the NFS aggregate as a stand-in; sampling is
  // topology-independent either way, so it never affects the ranking.
  const fs::NfsParams nfs = stat::shared_nfs_params(machine_);
  const double aggregate_bytes_per_sec =
      nfs.server_threads * nfs.cached_bytes_per_sec;
  const double io_s = static_cast<double>(profile_.shared_fs_image_bytes) *
                      layout_.num_daemons / aggregate_bytes_per_sec;

  return seconds(io_s + parse_s + walk_s);
}

Result<PhasePrediction> PhasePredictor::predict(
    const tbon::TopologySpec& spec) const {
  auto topo_result = tbon::build_topology(machine_, layout_, spec);
  if (!topo_result.is_ok()) return topo_result.status();
  const tbon::TbonTopology& topo = topo_result.value();

  PhasePrediction p;
  p.num_comm_procs = topo.num_comm_procs();

  // --- Startup -------------------------------------------------------------
  // The shard machinery's spawn is placement-aware: one remote-shell
  // handshake per distinct host, local forks for colocated helpers — the
  // exact formula (and host count) the scenario's connect phase charges.
  const std::uint32_t shard_procs = topo.num_shard_procs();
  p.launch = predict_launch(p.viability);
  p.connect =
      machine::comm_spawn_time(costs_.launch, p.num_comm_procs - shard_procs) +
      machine::reducer_spawn_time(costs_.launch, shard_procs,
                                  tbon::shard_spawn_hosts(topo)) +
      tbon::connect_time(topo, costs_.launch);
  p.startup = p.launch + p.connect;

  // --- Sampling ------------------------------------------------------------
  p.sampling = predict_sampling();

  // --- Merge ---------------------------------------------------------------
  // Connection-limit viability (the Sec. V-A failures the paper observed):
  // the exact check — and the exact limit, per-run override included — the
  // simulator runs, so the two can never disagree.
  if (p.viability.is_ok()) {
    p.viability = tbon::connection_viability(
        topo, options_.max_frontend_connections.value_or(
                  machine_.max_tool_connections));
  }

  // Subtree daemon coverage per proc (children always index after parents).
  const std::size_t n = topo.procs.size();
  std::vector<double> daemons_under(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const auto& proc = topo.procs[i];
    if (proc.is_leaf()) {
      daemons_under[i] = 1.0;
    } else {
      for (const std::uint32_t c : proc.children) {
        daemons_under[i] += daemons_under[c];
      }
    }
  }

  const auto bytes_of = [&](std::size_t i) {
    return topo.procs[i].is_leaf() ? profile_.leaf_payload_bytes
                                   : profile_.payload_bytes_for(daemons_under[i]);
  };
  const auto nodes_of = [&](std::size_t i) {
    return topo.procs[i].is_leaf() ? profile_.leaf_tree_nodes
                                   : profile_.tree_nodes_for(daemons_under[i]);
  };

  // Receive-buffer viability at every merge root: the front end, and each
  // reducer of a sharded front end (mirrors the scenario's check).
  std::vector<std::uint32_t> merge_roots{0};
  merge_roots.insert(merge_roots.end(), topo.reducers.begin(),
                     topo.reducers.end());
  for (const std::uint32_t root : merge_roots) {
    std::uint64_t leaf_incoming = 0;
    for (const std::uint32_t child : topo.procs[root].children) {
      if (topo.procs[child].is_leaf()) {
        leaf_incoming += static_cast<std::uint64_t>(bytes_of(child));
      }
    }
    if (p.viability.is_ok() &&
        leaf_incoming > costs_.merge.frontend_rx_buffer_bytes) {
      p.viability = resource_exhausted(
          std::string(root == 0 ? "front-end" : "reducer") +
          " receive buffers overflow: " + std::to_string(leaf_incoming) +
          " bytes inbound");
    }
  }

  // Level-by-level critical path of the reduction: within one level, each
  // parent's single core unpacks/merges its children serially, and every
  // link device a child's route crosses drains its serialization serially
  // (the Network's congestion mechanism — host access links subsume the old
  // per-NIC queueing, shared trunks add the wiring contention: two children
  // behind one oversubscribed uplink queue on it even when their parents
  // differ). Levels complete bottom-up.
  struct LevelCost {
    double worst_cpu_s = 0.0;
    double worst_latency_s = 0.0;
    std::unordered_map<std::uint64_t, double> device_s;  // per link device
  };
  std::vector<LevelCost> levels(topo.depth);
  const double msg_overhead_s = to_seconds(graph_.per_message_overhead());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& parent = topo.procs[i];
    if (parent.children.empty()) continue;
    LevelCost& level = levels[parent.level];
    double cpu_s = 0.0;
    for (const std::uint32_t c : parent.children) {
      const double child_bytes = bytes_of(c);
      const auto wire = static_cast<std::uint64_t>(child_bytes);
      if (topo.sharded() && i == 0) {
        // Final combine at the true front end. shard_combine_cost is the
        // codec+merge charge of the branch below by construction — the
        // combine is cheap because only K shard payloads arrive here, not
        // because an arrival costs less; the named formula just keeps the
        // sharded pricing anchored in machine/cost_model.
        cpu_s += to_seconds(machine::shard_combine_cost(
            costs_.merge, static_cast<std::uint64_t>(nodes_of(c)), wire));
      } else {
        cpu_s += to_seconds(machine::packet_codec_cost(costs_.merge, wire));
        cpu_s += to_seconds(machine::filter_merge_cost(
            costs_.merge, static_cast<std::uint64_t>(nodes_of(c)), wire));
      }
      const net::Route route =
          net::route_between(graph_, topo.procs[c].host, parent.host);
      const double ser_s = child_bytes / net::bottleneck_rate(route);
      for (const net::RouteHop& hop : route) {
        level.device_s[hop.device] += ser_s;
      }
      level.worst_latency_s =
          std::max(level.worst_latency_s,
                   to_seconds(net::route_latency(route)) + msg_overhead_s);
    }
    if (parent.parent >= 0) {
      // Internal procs pack their accumulator before forwarding it.
      cpu_s += to_seconds(machine::packet_codec_cost(
          costs_.merge, static_cast<std::uint64_t>(bytes_of(i))));
    }
    level.worst_cpu_s = std::max(level.worst_cpu_s, cpu_s);
  }

  // Leaves pack in parallel, then each level gates the next, its network
  // side bounded by the single most-contended link device.
  double merge_s = to_seconds(machine::packet_codec_cost(
      costs_.merge, static_cast<std::uint64_t>(profile_.leaf_payload_bytes)));
  for (std::size_t l = levels.size(); l-- > 0;) {
    const LevelCost& level = levels[l];
    double worst_link_s = 0.0;
    for (const auto& [device, s] : level.device_s) {
      worst_link_s = std::max(worst_link_s, s);
    }
    merge_s += level.worst_latency_s + std::max(level.worst_cpu_s, worst_link_s);
  }
  p.merge = seconds(merge_s);

  if (options_.repr == stat::TaskSetRepr::kHierarchical) {
    if (topo.sharded()) {
      p.remap = machine::sharded_remap_cost(
          costs_.merge, tbon::largest_shard_task_count(topo, layout_));
    } else {
      p.remap = machine::frontend_remap_cost(costs_.merge, layout_.num_tasks);
    }
  }
  return p;
}

Result<std::vector<LinkBytesPrediction>>
PhasePredictor::predict_merge_link_bytes(const tbon::TopologySpec& spec) const {
  auto topo_result = tbon::build_topology(machine_, layout_, spec);
  if (!topo_result.is_ok()) return topo_result.status();
  const tbon::TbonTopology& topo = topo_result.value();

  const std::size_t n = topo.procs.size();
  std::vector<double> daemons_under(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const auto& proc = topo.procs[i];
    if (proc.is_leaf()) {
      daemons_under[i] = 1.0;
    } else {
      for (const std::uint32_t c : proc.children) {
        daemons_under[i] += daemons_under[c];
      }
    }
  }

  // One upward transfer per tree edge — exactly the merge phase's traffic —
  // charged to every device along the child->parent route, the same walk
  // Network::transfer reserves.
  std::unordered_map<std::uint64_t, LinkBytesPrediction> priced;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& parent = topo.procs[i];
    for (const std::uint32_t c : parent.children) {
      const double child_bytes =
          topo.procs[c].is_leaf() ? profile_.leaf_payload_bytes
                                  : profile_.payload_bytes_for(daemons_under[c]);
      for (const net::RouteHop& hop :
           net::route_between(graph_, topo.procs[c].host, parent.host)) {
        LinkBytesPrediction& entry = priced[hop.device];
        entry.device = hop.device;
        entry.bytes += child_bytes;
        ++entry.messages;
      }
    }
  }

  std::vector<LinkBytesPrediction> out;
  out.reserve(priced.size());
  for (auto& [device, entry] : priced) {
    entry.link = graph_.device_name(device);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const LinkBytesPrediction& a, const LinkBytesPrediction& b) {
              return a.device < b.device;
            });
  return out;
}

Result<RecoveryPrediction> PhasePredictor::predict_recovery(
    const tbon::TopologySpec& spec, SimTime ping_period) const {
  auto topo_result = tbon::build_topology(machine_, layout_, spec);
  if (!topo_result.is_ok()) return topo_result.status();
  const tbon::TbonTopology& topo = topo_result.value();
  const std::uint32_t victim = tbon::default_victim(topo);

  RecoveryPrediction r;

  // One ping round trip: fan-out level by level (worst route latency plus the
  // busiest parent's serialized ping sends), echo gather symmetric.
  const double msg_overhead_s = to_seconds(graph_.per_message_overhead());
  std::vector<double> level_s(topo.depth, 0.0);
  for (const auto& parent : topo.procs) {
    if (parent.children.empty()) continue;
    double worst_link_s = 0.0;
    double nic_s = 0.0;
    for (const std::uint32_t c : parent.children) {
      const net::Route route =
          net::route_between(graph_, parent.host, topo.procs[c].host);
      worst_link_s =
          std::max(worst_link_s,
                   to_seconds(net::route_latency(route)) + msg_overhead_s);
      nic_s += static_cast<double>(tbon::HealthMonitor::kPingBytes) /
               net::bottleneck_rate(route);
    }
    level_s[parent.level] = std::max(level_s[parent.level], worst_link_s + nic_s);
  }
  double round_trip_s = 0.0;
  for (const double s : level_s) round_trip_s += 2.0 * s;
  r.detection = machine::expected_detection_latency(ping_period,
                                                    seconds(round_trip_s));

  // The lost subtree: alive leaves under the victim re-send into the
  // victim's surviving non-leaf siblings (or straight into the parent).
  std::uint32_t orphans = 0;
  for (const std::uint32_t leaf : topo.leaf_of_daemon) {
    std::int32_t walk = static_cast<std::int32_t>(leaf);
    while (walk >= 0 && static_cast<std::uint32_t>(walk) != victim) {
      walk = topo.procs[static_cast<std::uint32_t>(walk)].parent;
    }
    if (walk >= 0 && static_cast<std::uint32_t>(walk) == victim) ++orphans;
  }
  if (topo.procs[victim].is_leaf()) orphans = 0;  // the leaf itself is lost
  std::uint32_t adopters = 0;
  if (topo.procs[victim].parent >= 0) {
    const auto& parent =
        topo.procs[static_cast<std::uint32_t>(topo.procs[victim].parent)];
    for (const std::uint32_t sibling : parent.children) {
      if (sibling != victim && !topo.procs[sibling].is_leaf()) ++adopters;
    }
  }
  if (adopters == 0) adopters = 1;  // the parent absorbs the orphans itself
  r.orphan_leaves = orphans;
  r.adopters = adopters;

  const auto leaf_bytes =
      static_cast<std::uint64_t>(profile_.leaf_payload_bytes);
  r.remerge = machine::subtree_remerge_cost(
      costs_.merge, orphans, adopters,
      static_cast<std::uint64_t>(profile_.leaf_tree_nodes), leaf_bytes);
  if (orphans > 0) {
    // The busiest adopter's NIC also drains its share of the re-sent
    // payloads (the CPU formula covers codec+merge only).
    const std::uint64_t busiest = (orphans + adopters - 1) / adopters;
    const double nic_s =
        static_cast<double>(busiest) * static_cast<double>(leaf_bytes) /
        net::transfer_rate(graph_, topo.procs[topo.leaf_of_daemon[0]].host,
                           topo.front_end().host);
    r.remerge += seconds(nic_s);
  }
  return r;
}

Result<StreamSamplePrediction> PhasePredictor::predict_stream_sample(
    const tbon::TopologySpec& spec,
    const std::vector<bool>& daemon_changed) const {
  auto topo_result = tbon::build_topology(machine_, layout_, spec);
  if (!topo_result.is_ok()) return topo_result.status();
  const tbon::TbonTopology& topo = topo_result.value();

  std::vector<bool> changed = daemon_changed;
  if (changed.empty()) changed.assign(layout_.num_daemons, true);
  if (changed.size() != layout_.num_daemons) {
    return invalid_argument(
        "changed mask covers " + std::to_string(changed.size()) +
        " daemons, job has " + std::to_string(layout_.num_daemons));
  }

  // Subtree coverage and dirtiness, bottom-up (children index after
  // parents). A proc is dirty — it re-merges and forwards its subtree
  // snapshot — exactly when some daemon under it changed.
  const std::size_t n = topo.procs.size();
  std::vector<double> daemons_under(n, 0.0);
  std::vector<bool> dirty(n, false);
  for (std::uint32_t d = 0; d < layout_.num_daemons; ++d) {
    if (changed[d]) dirty[topo.leaf_of_daemon[d]] = true;
  }
  for (std::size_t i = n; i-- > 0;) {
    const auto& proc = topo.procs[i];
    if (proc.is_leaf()) {
      daemons_under[i] = 1.0;
      continue;
    }
    for (const std::uint32_t c : proc.children) {
      daemons_under[i] += daemons_under[c];
      if (dirty[c]) dirty[i] = true;
    }
  }

  const auto bytes_of = [&](std::size_t i) {
    return topo.procs[i].is_leaf()
               ? stream_profile_.leaf_payload_bytes
               : stream_profile_.payload_bytes_for(daemons_under[i]);
  };
  const auto nodes_of = [&](std::size_t i) {
    return topo.procs[i].is_leaf()
               ? stream_profile_.leaf_tree_nodes
               : stream_profile_.tree_nodes_for(daemons_under[i]);
  };

  StreamSamplePrediction p;
  for (std::uint32_t d = 0; d < layout_.num_daemons; ++d) {
    if (changed[d]) ++p.changed_daemons;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (topo.procs[i].is_leaf()) continue;
    if (dirty[i]) {
      ++p.remerged_procs;
    } else {
      ++p.cached_procs;
    }
  }

  // Same level-by-level critical path as predict(), with every charge taken
  // from the streaming round's formulas: a changed child costs its delta's
  // codec + filter merge, an acknowledging child costs the ack codec (plus a
  // cached re-merge when the parent is dirty), and a proc forwards either
  // its packed subtree delta or a bare ack.
  struct LevelCost {
    double worst_cpu_s = 0.0;
    double worst_latency_s = 0.0;
    std::unordered_map<std::uint64_t, double> device_s;  // per link device
  };
  std::vector<LevelCost> levels(topo.depth);
  const double msg_overhead_s = to_seconds(graph_.per_message_overhead());
  const double ack_codec_s =
      to_seconds(machine::control_packet_cost(costs_.stream));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& parent = topo.procs[i];
    if (parent.children.empty()) continue;
    LevelCost& level = levels[parent.level];
    double cpu_s = 0.0;
    for (const std::uint32_t c : parent.children) {
      const double snap_bytes = bytes_of(c);
      const auto snap_wire = static_cast<std::uint64_t>(snap_bytes);
      const std::uint64_t wire = dirty[c] ? tbon::delta_wire_bytes(snap_wire)
                                          : tbon::kDeltaAckBytes;
      if (dirty[c]) {
        cpu_s += to_seconds(machine::packet_codec_cost(costs_.merge, wire));
        cpu_s += to_seconds(machine::filter_merge_cost(
            costs_.merge, static_cast<std::uint64_t>(nodes_of(c)), snap_wire));
      } else if (dirty[i]) {
        // A dirty parent handles the cheap acks while still waiting on its
        // changed children's payloads — off the critical path — and folds
        // the cached copies once all children are accounted for.
        cpu_s += to_seconds(machine::cached_merge_cost(
            costs_.merge, costs_.stream,
            static_cast<std::uint64_t>(nodes_of(c)), snap_wire));
      } else {
        cpu_s += ack_codec_s;
      }
      p.delta_bytes += wire;
      const net::Route route =
          net::route_between(graph_, topo.procs[c].host, parent.host);
      const double ser_s =
          static_cast<double>(wire) / net::bottleneck_rate(route);
      for (const net::RouteHop& hop : route) {
        level.device_s[hop.device] += ser_s;
      }
      level.worst_latency_s =
          std::max(level.worst_latency_s,
                   to_seconds(net::route_latency(route)) + msg_overhead_s);
    }
    if (parent.parent >= 0) {
      cpu_s += dirty[i]
                   ? to_seconds(machine::packet_codec_cost(
                         costs_.merge,
                         tbon::delta_wire_bytes(
                             static_cast<std::uint64_t>(bytes_of(i)))))
                   : ack_codec_s;
    } else if (dirty[i]) {
      // The front end packs its re-merged accumulator; a clean round is
      // answered from the cache for free.
      cpu_s += to_seconds(machine::packet_codec_cost(
          costs_.merge, static_cast<std::uint64_t>(bytes_of(i))));
    }
    level.worst_cpu_s = std::max(level.worst_cpu_s, cpu_s);
  }

  // Every leaf hashes its snapshot before sending; the slowest leaf is a
  // changed one (its delta pack dwarfs an ack's) whenever any changed.
  const double sig_s = to_seconds(machine::signature_cost(
      costs_.stream,
      static_cast<std::uint64_t>(stream_profile_.leaf_tree_nodes)));
  double merge_s = sig_s;
  if (p.changed_daemons > 0) {
    merge_s += to_seconds(machine::packet_codec_cost(
        costs_.merge,
        tbon::delta_wire_bytes(
            static_cast<std::uint64_t>(stream_profile_.leaf_payload_bytes))));
  } else {
    merge_s += ack_codec_s;
  }
  for (std::size_t l = levels.size(); l-- > 0;) {
    const LevelCost& level = levels[l];
    double worst_link_s = 0.0;
    for (const auto& [device, s] : level.device_s) {
      worst_link_s = std::max(worst_link_s, s);
    }
    merge_s += level.worst_latency_s + std::max(level.worst_cpu_s, worst_link_s);
  }
  p.merge = seconds(merge_s);
  return p;
}

Result<StreamSamplePrediction> PhasePredictor::predict_stream_sample(
    const tbon::TopologySpec& spec, double changed_fraction) const {
  check(changed_fraction >= 0.0 && changed_fraction <= 1.0,
        "changed_fraction outside [0, 1]");
  const auto band = static_cast<std::uint32_t>(
      std::llround(changed_fraction * layout_.num_daemons));
  std::vector<bool> changed(layout_.num_daemons, false);
  for (std::uint32_t d = 0; d < band; ++d) changed[d] = true;
  return predict_stream_sample(spec, changed);
}

}  // namespace petastat::plan
