// Topology auto-tuning: enumerate the machine-feasible TopologySpec space
// and rank it by predicted startup+merge time (ROADMAP: `--topology auto`).
//
// The spec space follows the paper's Figs. 4/5 axes — depth 1/2/3, the
// balanced n-th-root rule, the BG/L fanout rules — plus explicit level-width
// sweeps under the machine's comm-process placement limits (login-node slots
// on BG/L, the leftover compute allocation on clusters). Every candidate is
// priced by the same PhasePredictor; specs that cannot be built, or that the
// predictor flags as doomed (front-end connection limit, receive-buffer
// overflow), are excluded from the ranking but reported with their reason.
#pragma once

#include <vector>

#include "plan/predictor.hpp"

namespace petastat::plan {

struct RankedTopology {
  tbon::TopologySpec spec;
  PhasePrediction prediction;  // viability non-OK for `rejected` entries
};

struct TopologySearchResult {
  /// Viable specs, best predicted startup+merge first.
  std::vector<RankedTopology> viable;
  /// Buildable-but-doomed specs, with the predicted failure in `viability`.
  std::vector<RankedTopology> rejected;

  [[nodiscard]] const RankedTopology& best() const { return viable.front(); }
};

/// Candidate specs for this machine/scale (before feasibility filtering).
/// `shard_counts` is the front-end shard dimension: each base spec is
/// emitted once per viable K (reducers — and the combiner levels of a
/// K > 8 reducer tree — counted against the comm-process placement limits)
/// and, for K > 1, once per reducer placement (pack vs spread). The default
/// {1} keeps the space unsharded; `--fe-shards auto` searches
/// {1, 2, 4, 8, 16, 32, 64}.
[[nodiscard]] std::vector<tbon::TopologySpec> enumerate_specs(
    const machine::MachineConfig& machine, std::uint32_t num_daemons,
    const std::vector<std::uint32_t>& shard_counts = {1});

/// Prices every candidate with `predictor` and ranks the viable ones
/// (shard dimension derived from the predictor's options). Fails only when
/// no candidate is viable.
[[nodiscard]] Result<TopologySearchResult> search_topologies(
    const PhasePredictor& predictor);

/// One-call convenience for the `--topology auto` path: profile the
/// workload, rank the space, return the winner.
[[nodiscard]] Result<tbon::TopologySpec> choose_topology(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs);

/// The `--fe-shards auto` path for a pinned topology: price
/// `options.topology` at K in {1, 2, 4, 8, 16, 32, 64} × {pack, spread}
/// (K > 8 through the reducer tree) and return the spec with the
/// predicted-fastest viable (K, placement). Fails when no K is viable.
[[nodiscard]] Result<tbon::TopologySpec> choose_fe_shards(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs);

/// The checkpoint/restart re-planning hook: choose_fe_shards, but with the
/// predictor's payload curves re-anchored to `measured_leaf_payload_bytes` —
/// the per-daemon payload size a SessionCheckpoint recorded from the
/// interrupted run — so the resumed session re-prices K and placement
/// against measured traffic instead of the probe synthesis. A non-positive
/// measurement degrades to plain choose_fe_shards.
[[nodiscard]] Result<tbon::TopologySpec> replan_fe_shards(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const stat::StatOptions& options, const machine::CostModel& costs,
    double measured_leaf_payload_bytes);

}  // namespace petastat::plan
