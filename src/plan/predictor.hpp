// Analytic per-phase cost prediction — the planning half of the topology
// auto-tuner (ROADMAP: "--topology auto", validated against the Fig. 4/5
// crossovers).
//
// A PhasePredictor prices a (machine, job, options, TopologySpec) tuple
// WITHOUT running the discrete-event simulator. It is side-effect-free and
// consumes the exact formulation the simulated services use:
//   * the analytic launch/sampling/merge formulas in machine/cost_model
//     (the services draw their per-run noise *around* these),
//   * the switch-graph route pricing in net::route_between /
//     net::bottleneck_rate (the exact links the simulated Network reserves
//     per transfer, shared trunks included),
//   * the process tree from tbon::build_topology (the same placement and
//     fanouts the reduction runs over).
// The only empirical input is the WorkloadProfile: payload sizes and prefix
// tree node counts measured by synthesizing a probe subset of daemons'
// traces through the real PrefixTree/label code — real data structures, no
// simulator, no virtual time.
//
// Fidelity contract: startup (launch + comm spawn + connect) and merge are
// modelled closely enough to rank topologies and to land within tens of
// percent of the simulated magnitudes (bench/ablation_autotopo records the
// agreement). The sampling estimate is coarser — symbol I/O runs through a
// contention-free aggregate-bandwidth approximation of the shared FS — and
// is topology-independent anyway, so it never affects the ranking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"
#include "net/network.hpp"
#include "stat/scenario.hpp"
#include "tbon/topology.hpp"

namespace petastat::plan {

/// Topology-independent workload summary, measured from a probe subset of
/// daemons (contiguous from daemon 0, counts ascending).
struct WorkloadProfile {
  std::uint64_t traces_per_daemon = 0;
  double avg_frames_per_trace = 0.0;

  /// One daemon's serialized 2D+3D trees (averaged over the probe set).
  double leaf_payload_bytes = 0.0;
  double leaf_tree_nodes = 0.0;

  /// Merged payload size / node count after merging the first k probe
  /// daemons, for each k in probe_counts.
  std::vector<std::uint32_t> probe_counts;
  std::vector<double> merged_payload_bytes;
  std::vector<double> merged_tree_nodes;

  /// Binary images each daemon parses; the shared-FS subset is what every
  /// daemon pulls over the shared file system on its first sample.
  std::uint64_t symbol_image_bytes = 0;
  std::uint64_t shared_fs_image_bytes = 0;

  /// Payload size / node count of a subtree accumulator covering `daemons`
  /// daemons: piecewise-linear over the probe points, extrapolated with the
  /// last segment's slope (hier labels grow with the subtree, dense labels
  /// and both node counts saturate — both shapes are captured).
  [[nodiscard]] double payload_bytes_for(double daemons) const;
  [[nodiscard]] double tree_nodes_for(double daemons) const;
};

/// Measures the profile for this scenario configuration by synthesizing the
/// traces of up to 8 probe daemons through the real tree/label code.
///
/// Memoized process-wide on the trace-determining inputs (machine shape, job
/// size/mode, app kind, seed, representation, sampling options): every
/// PhasePredictor::create re-measures the same workload, and the service
/// scheduler creates a predictor per admitted session, so identical probes
/// would otherwise be re-synthesized many times per process. The cache is the
/// one deliberate exception to the "no process-global mutable state" rule of
/// the re-entrant session refactor: it is a pure function cache — entries are
/// deterministic in their key and never depend on co-resident sessions — and
/// it is mutex-guarded, so concurrent sessions stay bit-identical to solo
/// runs.
[[nodiscard]] WorkloadProfile profile_workload(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const machine::DaemonLayout& layout, const stat::StatOptions& options);

/// Observability for the profile_workload memoization (tests assert the
/// miss-then-hit pattern; benches report the synthesis work saved).
struct ProfileCacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
[[nodiscard]] ProfileCacheCounters profile_cache_counters();

/// Drops every cached profile and zeroes the counters (test isolation).
void reset_profile_cache();

/// Predicted per-phase times for one topology spec.
struct PhasePrediction {
  /// OK when the run is predicted to complete. Non-OK carries the predicted
  /// failure: front-end connection limit, receive-buffer overflow, launcher
  /// unsupported on the machine, rsh port exhaustion, CIOD hang.
  Status viability = Status::ok();

  SimTime launch = 0;    // daemon (and BG/L app) launch
  SimTime connect = 0;   // comm-process spawn + MRNet instantiation
  SimTime startup = 0;   // launch + connect
  SimTime sampling = 0;  // symbol I/O + parse + walks (coarse; see header)
  SimTime merge = 0;     // TBON reduction to the front end
  SimTime remap = 0;     // front-end remap (hierarchical repr only)
  std::uint32_t num_comm_procs = 0;

  /// The auto-tuner's objective (ROADMAP: minimal startup+merge time).
  [[nodiscard]] SimTime startup_plus_merge() const {
    return startup + merge + remap;
  }
};

/// Predicted cost of one streaming sample round (--stream): the delta merge
/// from the leaves' signature hashes to the front end's completion, given
/// which daemons' snapshots changed since the previous round.
struct StreamSamplePrediction {
  SimTime merge = 0;              // run_round -> front-end completion
  std::uint64_t delta_bytes = 0;  // upward wire traffic this round
  std::uint32_t changed_daemons = 0;
  std::uint32_t remerged_procs = 0;  // dirty non-leaf procs (incl. the FE)
  std::uint32_t cached_procs = 0;    // clean non-leaf procs (incl. the FE)
};

/// Predicted cost of one mid-merge proc death under the ping-sweep monitor
/// (tbon::HealthMonitor + Reduction::recover), priced through the shared
/// machine/cost_model recovery formulas.
struct RecoveryPrediction {
  SimTime detection = 0;  // death -> the sweep's missing echo is noticed
  SimTime remerge = 0;    // folding the lost subtree into the adopters
  std::uint32_t orphan_leaves = 0;
  std::uint32_t adopters = 0;

  [[nodiscard]] SimTime total() const { return detection + remerge; }
};

/// Priced traffic of one link device (see predict_merge_link_bytes).
struct LinkBytesPrediction {
  std::uint64_t device = 0;
  std::string link;  // SwitchGraph::device_name()
  double bytes = 0.0;
  std::uint64_t messages = 0;
};

class PhasePredictor {
 public:
  /// Fails when the job does not fit the machine.
  [[nodiscard]] static Result<PhasePredictor> create(
      machine::MachineConfig machine, machine::JobConfig job,
      stat::StatOptions options, machine::CostModel costs);

  /// Predicts all phases for `spec`. Fails (rather than predicting) when the
  /// spec cannot be built on the machine at all; a buildable spec that is
  /// predicted to die at runtime comes back OK with a non-OK `viability`.
  [[nodiscard]] Result<PhasePrediction> predict(
      const tbon::TopologySpec& spec) const;

  /// Prices losing tbon::default_victim(spec's tree) mid-merge: detection by
  /// a ping sweep of `ping_period`, then the lost subtree's re-merge into
  /// the victim's surviving siblings. The re-merge scales with the orphaned
  /// subtree (daemons / fe_shards when sharded), never with the job — the
  /// recovery counterpart of the merge prediction.
  [[nodiscard]] Result<RecoveryPrediction> predict_recovery(
      const tbon::TopologySpec& spec, SimTime ping_period) const;

  /// Prices one streaming delta round (tbon::StreamingReduction) for `spec`:
  /// each daemon in `daemon_changed` resends its packed snapshot, every
  /// other daemon acknowledges with a bare DeltaHeader; a proc with a
  /// changed child re-merges it (codec + filter merge) plus its cached
  /// copies of the unchanged children (machine::cached_merge_cost) and
  /// forwards its whole subtree snapshot, while a clean subtree costs acks
  /// all the way up — the exact per-arrival formulas make_stream_ops plugs
  /// into the simulated reduction, over single-sample snapshot sizes
  /// measured through the real tree code. An empty mask means "every daemon
  /// changed" (the sample-0 / post-recovery full round).
  [[nodiscard]] Result<StreamSamplePrediction> predict_stream_sample(
      const tbon::TopologySpec& spec,
      const std::vector<bool>& daemon_changed) const;

  /// The ISSUE formula's "expected changed-fraction" convenience: prices a
  /// round where a contiguous band of round(fraction * daemons) daemons
  /// changed — the drifting-straggler workload's shape, where one band of
  /// adjacent daemons moves per sample.
  [[nodiscard]] Result<StreamSamplePrediction> predict_stream_sample(
      const tbon::TopologySpec& spec, double changed_fraction) const;

  /// Per-link merge-phase traffic the predictor prices for `spec`: every
  /// tree edge's payload charged to every link device along its route —
  /// the byte-level half of the shared formulation. The simulated merge
  /// phase's link deltas (stat::PhaseBreakdown::merge_links) must agree:
  /// message counts exactly, bytes within per-edge float truncation.
  [[nodiscard]] Result<std::vector<LinkBytesPrediction>>
  predict_merge_link_bytes(const tbon::TopologySpec& spec) const;

  /// Re-anchors the payload curves to a payload size *measured by a live
  /// run* — a SessionCheckpoint's recorded leaf bytes — instead of the probe
  /// synthesis: every byte curve in both profiles is scaled by
  /// measured / probed. This is the checkpoint/restart re-planning hook
  /// (plan::replan_fe_shards): the restored session re-prices K and
  /// placement against what the interrupted run actually moved. Node counts
  /// and symbol I/O stay as probed; non-positive inputs are ignored.
  void scale_payload_profile(double measured_leaf_bytes) {
    if (measured_leaf_bytes <= 0.0 ||
        stream_profile_.leaf_payload_bytes <= 0.0) {
      return;
    }
    const double factor =
        measured_leaf_bytes / stream_profile_.leaf_payload_bytes;
    for (WorkloadProfile* profile : {&profile_, &stream_profile_}) {
      profile->leaf_payload_bytes *= factor;
      for (double& bytes : profile->merged_payload_bytes) bytes *= factor;
    }
  }

  [[nodiscard]] const machine::MachineConfig& machine() const {
    return machine_;
  }
  [[nodiscard]] const net::SwitchGraph& graph() const { return graph_; }
  [[nodiscard]] const machine::DaemonLayout& layout() const { return layout_; }
  [[nodiscard]] const WorkloadProfile& profile() const { return profile_; }
  [[nodiscard]] const stat::StatOptions& options() const { return options_; }

 private:
  PhasePredictor(machine::MachineConfig machine, machine::JobConfig job,
                 stat::StatOptions options, machine::CostModel costs,
                 machine::DaemonLayout layout);

  [[nodiscard]] SimTime predict_launch(Status& viability) const;
  [[nodiscard]] SimTime predict_sampling() const;

  machine::MachineConfig machine_;
  machine::JobConfig job_;
  stat::StatOptions options_;
  machine::CostModel costs_;
  machine::DaemonLayout layout_;
  net::SwitchGraph graph_;
  WorkloadProfile profile_;
  /// Single-sample snapshot sizes (stat::StreamSnapshot — one tree, not the
  /// batched 2D+3D payload): what the streaming delta rounds actually move.
  WorkloadProfile stream_profile_;
};

}  // namespace petastat::plan
