// Simulated machine description: node tiers, tool-daemon placement, and the
// job-to-daemon mapping rules for the two platforms in the paper.
//
//  * Atlas: 1,152-node Linux cluster, 8 cores/node (4-way dual-core Opteron),
//    DDR Infiniband. One STAT daemon per compute node traces the 8 MPI tasks
//    on that node; MRNet comm processes run on a separate compute allocation.
//  * BG/L (LLNL): 106,496 compute nodes (dual PPC440). Tools may not run on
//    compute nodes: one daemon per dedicated I/O node (1 per 64 compute
//    nodes, 1,664 total). Comm processes are restricted to 14 login nodes.
//    Co-processor (CO) mode runs 1 MPI task per node, virtual-node (VN) mode
//    runs 2, so a daemon serves 64 or 128 tasks.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"

namespace petastat::machine {

/// Which tier of the machine a node belongs to.
enum class NodeRole : std::uint8_t {
  kFrontEnd = 0,  // the node running the tool front end
  kLogin = 1,     // login nodes (BG/L: comm-process hosts)
  kIo = 2,        // dedicated I/O nodes (BG/L: daemon hosts)
  kCompute = 3,   // compute nodes
};

[[nodiscard]] constexpr const char* node_role_name(NodeRole r) {
  switch (r) {
    case NodeRole::kFrontEnd: return "frontend";
    case NodeRole::kLogin: return "login";
    case NodeRole::kIo: return "io";
    case NodeRole::kCompute: return "compute";
  }
  return "?";
}

/// NodeId encoding: top 3 bits = role, rest = index within the tier. Avoids
/// materializing 106,496 node objects.
[[nodiscard]] constexpr NodeId make_node(NodeRole role, std::uint32_t index) {
  return NodeId((static_cast<std::uint32_t>(role) << 28) | (index & 0x0fffffffu));
}
[[nodiscard]] constexpr NodeRole node_role(NodeId id) {
  return static_cast<NodeRole>(id.value() >> 28);
}
[[nodiscard]] constexpr std::uint32_t node_index(NodeId id) {
  return id.value() & 0x0fffffffu;
}

/// BG/L execution modes (Sec. III).
enum class BglMode : std::uint8_t {
  kCoprocessor,  // 1 MPI task per compute node, 2nd core offloads comms
  kVirtualNode,  // 1 MPI task per core (2 per node)
};

[[nodiscard]] constexpr const char* bgl_mode_name(BglMode m) {
  return m == BglMode::kCoprocessor ? "CO" : "VN";
}

/// Where tool daemons are placed.
enum class DaemonPlacement : std::uint8_t {
  kPerComputeNode,  // Atlas: daemon shares the node with the app tasks
  kPerIoNode,       // BG/L: daemon on a dedicated I/O node
};

// --- Interconnect description ----------------------------------------------
//
// The network is a graph of switches with hosts hanging off them; net::
// builds a net::SwitchGraph from this description. machine:: only *describes*
// the wiring (shape + per-tier link parameters) so that it stays independent
// of the simulation layer.

/// One physical link class: propagation latency plus serialized bandwidth.
struct LinkSpec {
  SimTime latency = 5 * kMicrosecond;
  double bytes_per_sec = 1.0e9;
};

/// Wiring shape of the machine's interconnect.
enum class InterconnectShape : std::uint8_t {
  /// Every host attaches to one core switch. The default for ad hoc
  /// MachineConfigs: timing reduces to per-host access links, closest to the
  /// old per-role NIC model.
  kCrossbar,
  /// Leaf/aggregation/core fat-tree (Atlas: 2-level over IB; petascale:
  /// oversubscribed 3-level). Compute or I/O hosts pack onto data leaves;
  /// front end + logins pack onto service leaves.
  kFatTree,
  /// BG/L: per-rack I/O tier on the functional GigE tree, per-rack collective
  /// vertices for compute nodes, and a torus passthrough vertex for
  /// rack-to-rack compute traffic.
  kIoTorusTiers,
};

/// Parameters net:: uses to synthesize the switch graph for a machine.
struct InterconnectConfig {
  InterconnectShape shape = InterconnectShape::kCrossbar;

  /// Host access links, one class per tier. The bytes_per_sec values carry
  /// over the old per-role NIC rates, so uncontended point-to-point transfer
  /// rates match the previous model.
  LinkSpec frontend_access;
  LinkSpec login_access;
  LinkSpec io_access;
  LinkSpec compute_access;

  // kFatTree shape:
  std::uint32_t hosts_per_leaf = 32;          // data hosts per leaf switch
  std::uint32_t logins_per_service_leaf = 4;  // logins per service leaf; the
                                              // front end rides service leaf 0
  std::uint32_t leaves_per_agg = 0;  // 0 = 2-level (leaves attach to the core)
  LinkSpec leaf_uplink;              // data leaf -> agg/core trunk
  LinkSpec service_uplink;  // service leaf -> agg/core trunk. The petascale
                            // oversubscription knob: sized below
                            // logins_per_service_leaf * login_access so
                            // colocated reducer streams contend.
  LinkSpec agg_uplink;      // agg -> core trunk (3-level only)

  // kIoTorusTiers shape:
  std::uint32_t io_nodes_per_rack = 16;
  LinkSpec rack_uplink;      // rack I/O switch -> functional GigE core
  LinkSpec collective_link;  // rack collective vertex -> rack I/O switch
  LinkSpec torus_link;       // rack collective vertex -> torus passthrough

  /// Fixed software cost per message, independent of route.
  SimTime per_message_overhead = 25 * kMicrosecond;
};

/// Static description of a platform.
struct MachineConfig {
  std::string name;

  std::uint32_t compute_nodes = 0;
  std::uint32_t cores_per_compute_node = 0;

  DaemonPlacement daemon_placement = DaemonPlacement::kPerComputeNode;
  std::uint32_t compute_nodes_per_io_node = 0;  // 0 when no I/O-node tier
  std::uint32_t io_nodes = 0;

  std::uint32_t login_nodes = 1;
  std::uint32_t cores_per_login_node = 4;
  /// Comm processes per login node before the tier is saturated. On Atlas
  /// comm processes get their own compute allocation instead (one per core).
  std::uint32_t max_comm_procs_per_login = 8;
  bool comm_procs_on_compute_allocation = false;

  /// Whether the target app is one statically linked image (BG/L) or an
  /// executable plus shared libraries (Atlas). Drives symbol-parsing I/O.
  bool static_binary = false;

  /// Whether a daemon contends for CPU with spin-waiting MPI ranks (Atlas;
  /// not on BG/L where the daemon owns the I/O node).
  bool daemon_shares_cpu = false;

  /// Supported remote-shell protocols for ad hoc launching. Atlas compute
  /// nodes support rsh only (no sshd), per Sec. IV-A.
  bool supports_rsh = true;
  bool supports_ssh = false;

  /// Simultaneous tool connections the front-end node (and each reducer of
  /// a sharded front end) survives. Boundary semantics, shared by every
  /// viability check (scenario, predictor, heavyweight baseline): exactly
  /// `max_tool_connections` connections work; one more is rejected — checks
  /// reject at `> max_tool_connections`, never at `>=`. The 1-deep BG/L
  /// merge "fails at 16,384 compute nodes (256 I/O nodes)": its front end
  /// cannot hold 256 daemon connections under full-job bit vectors, so the
  /// BG/L preset survives 255.
  std::uint32_t max_tool_connections = 1024;

  /// Wiring description; net::build_switch_graph turns it into routes and
  /// shared link devices.
  InterconnectConfig interconnect;

  [[nodiscard]] NodeId front_end() const { return make_node(NodeRole::kFrontEnd, 0); }
  [[nodiscard]] NodeId login_node(std::uint32_t i) const {
    return make_node(NodeRole::kLogin, i);
  }
  [[nodiscard]] NodeId io_node(std::uint32_t i) const {
    return make_node(NodeRole::kIo, i);
  }
  [[nodiscard]] NodeId compute_node(std::uint32_t i) const {
    return make_node(NodeRole::kCompute, i);
  }
};

/// A job to run the tool against.
struct JobConfig {
  std::uint32_t num_tasks = 0;
  BglMode mode = BglMode::kCoprocessor;  // ignored on non-BG/L machines
  std::uint32_t threads_per_task = 1;    // Sec. VII extension
};

/// Derived daemon layout for a job on a machine: which node each daemon runs
/// on and how many tasks it serves.
struct DaemonLayout {
  std::uint32_t num_daemons = 0;
  std::uint32_t tasks_per_daemon = 0;  // last daemon may serve fewer
  std::uint32_t num_tasks = 0;

  [[nodiscard]] std::uint32_t tasks_of(DaemonId d) const {
    const std::uint64_t lo = first_task_of(d);
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + tasks_per_daemon, num_tasks);
    return static_cast<std::uint32_t>(hi - lo);
  }
  [[nodiscard]] std::uint32_t first_task_of(DaemonId d) const {
    return d.value() * tasks_per_daemon;
  }
  [[nodiscard]] DaemonId daemon_of_task(TaskId t) const {
    return DaemonId(t.value() / tasks_per_daemon);
  }
};

/// Computes the daemon layout; fails if the job does not fit the machine.
[[nodiscard]] Result<DaemonLayout> layout_daemons(const MachineConfig& machine,
                                                  const JobConfig& job);

/// Node hosting daemon `d` under the machine's placement policy.
[[nodiscard]] NodeId daemon_host(const MachineConfig& machine, DaemonId d);

/// Number of MPI tasks that run per compute node for this machine/mode.
[[nodiscard]] std::uint32_t tasks_per_compute_node(const MachineConfig& machine,
                                                   BglMode mode);

/// Preset: Atlas, the 1,152-node Infiniband cluster (Sec. III).
[[nodiscard]] MachineConfig atlas();

/// Preset: the full LLNL BG/L installation, 104 racks (Sec. III).
[[nodiscard]] MachineConfig bgl();

/// Preset: a hypothetical petascale machine with ~1M cores for the
/// forward-looking projections (Sec. V, "a million cores would require a
/// 1 megabit bit vector per edge label").
[[nodiscard]] MachineConfig petascale();

}  // namespace petastat::machine
