// Calibrated model constants for tool-side CPU work and launch services.
//
// Every constant traces to an anchor in the paper (see DESIGN.md Sec. 6) or
// to a conservative order-of-magnitude estimate for 2008-era hardware. The
// *shapes* of all figures emerge from the structure of the models; these
// constants only pin the axes.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "machine/machine.hpp"

namespace petastat::machine {

/// Launch-path constants (Sec. IV).
struct LaunchCosts {
  /// Serial per-daemon cost of an rsh/ssh spawn from the front end: process
  /// fork + remote shell handshake + daemon exec. Fig. 2's MRNet line is
  /// ~0.25 s/daemon (128 daemons ~ 32 s).
  SimTime remote_shell_per_daemon = seconds(0.247);
  /// Log-space sigma of spawn-time noise.
  double remote_shell_sigma = 0.08;
  /// rsh connection table exhaustion: MRNet "consistently fails" to launch
  /// 512 daemons with rsh on Atlas.
  std::uint32_t rsh_failure_threshold = 512;

  /// LaunchMON: one RM request, then a tree broadcast inside the RM.
  SimTime rm_request_overhead = seconds(4.0);     // job-step setup
  SimTime rm_broadcast_per_level = seconds(0.32); // per fanout-32 tree level
  std::uint32_t rm_broadcast_fanout = 32;
  /// Local daemon initialization once the binary reaches the node.
  SimTime daemon_init = seconds(0.18);

  /// BG/L CIOD/system-software launch (Fig. 3). The unpatched code packs the
  /// process table with strcat, which rescans the buffer each append —
  /// quadratic in the process count — and hangs outright at 208K.
  SimTime ciod_base = seconds(70.0);
  SimTime ciod_per_proc = seconds(0.00115);           // patched, linear
  double ciod_strcat_ns_per_proc_sq = 30.0;           // unpatched extra, ~P^2
  std::uint32_t ciod_unpatched_hang_threshold = 208 * 1024;
  /// App launch under tool control (BG/L prototype requirement).
  SimTime app_launch_base = seconds(25.0);
  SimTime app_launch_per_proc = seconds(0.00021);

  /// MRNet network instantiation: each parent accepts and handshakes its
  /// children serially; children connect in parallel across parents.
  SimTime mrnet_connect_per_child = seconds(0.0015);
  SimTime mrnet_connect_base = seconds(0.35);

  /// Spawning another helper process on a host the burst has already
  /// handshaked: a local fork+exec behind the existing remote shell, an
  /// order of magnitude cheaper than a fresh per-host handshake
  /// (remote_shell_per_daemon). This is the spawn-locality half of the
  /// reducer-placement trade (see placed_spawn_time).
  SimTime colocated_spawn_per_proc = seconds(0.021);
};

/// Stack-sampling constants (Sec. VI).
struct SamplingCosts {
  /// Third-party stack walk of one frame via ptrace-equivalent reads.
  SimTime walk_per_frame = seconds(0.00035);
  /// Per-process attach/refresh overhead per sample.
  SimTime walk_per_process = seconds(0.0011);
  /// Daemon-local merge cost per call-path node inserted.
  SimTime local_merge_per_node = seconds(0.0000012);
  /// Multiplier when the daemon contends with spin-waiting MPI ranks on a
  /// fully packed node (Atlas). Expected value of the slowdown.
  double cpu_contention_mean = 1.7;
  double cpu_contention_sigma = 0.10;  // log-space, per daemon
  /// Symbol-table parse CPU per MB of binary image (I/O modelled separately).
  SimTime symtab_parse_per_mb = seconds(0.085);
};

/// Merge/communication constants (Sec. V).
struct MergeCosts {
  /// Filter CPU per prefix-tree node visited during a merge.
  SimTime merge_per_tree_node = seconds(0.0000018);
  /// Filter CPU per byte of edge-label payload processed (bit-vector OR or
  /// list concatenation are both byte-proportional in their own format).
  SimTime merge_per_label_byte = seconds(0.0000000009);
  /// Serialization (pack/unpack) per payload byte.
  SimTime pack_per_byte = seconds(0.0000000022);
  /// Fixed CPU per packet handled by a filter process (MRNet dispatch,
  /// allocation, syscalls). Dominates flat-tree merges at the front end.
  SimTime per_packet_cpu = seconds(0.0007);
  /// Front-end remap of daemon-order lists to MPI rank order: 0.66 s at
  /// 208K tasks => ~3.17 us per task.
  SimTime remap_per_task = seconds(0.0000031);
  /// Hard per-connection receive-buffer limit at the front end (and at each
  /// reducer of a sharded front end, which takes over the same role): the
  /// 1-deep topology "fails to merge" at 256 daemons x full-job bit vectors.
  /// The connection ceiling itself lives in
  /// MachineConfig::max_tool_connections — the single source of truth every
  /// viability check consults.
  std::uint64_t frontend_rx_buffer_bytes = 64ull << 20;
};

/// Streaming-sampling constants (the --stream continuous mode).
struct StreamCosts {
  /// Comm-process/daemon CPU to handle one SampleRequest control packet:
  /// decode the envelope, arm the sample timer, queue the per-child copies.
  /// Far below per_packet_cpu — control packets carry a 17-byte cursor or a
  /// 14-byte DeltaHeader ack, not a payload: no tree decode, no allocation,
  /// one fixed-size envelope read.
  SimTime control_packet_cpu = seconds(0.00003);
  /// Daemon CPU per trace folded into the per-sample class-signature hash
  /// (one canonical-encode pass over the local snapshot tree).
  SimTime signature_per_trace = seconds(0.0000004);
  /// Proc CPU per tree node to fold a *cached* child payload back into the
  /// accumulator. Far below merge_per_tree_node: the cached tree is already
  /// decoded, its children already sorted canonically, and its frames
  /// already interned, so the fold is a lock-step walk with label unions —
  /// no unpack, no allocation churn.
  SimTime cached_merge_per_node = seconds(0.0000002);
};

/// All cost constants for one platform.
struct CostModel {
  LaunchCosts launch;
  SamplingCosts sampling;
  MergeCosts merge;
  StreamCosts stream;
};

/// Default cost model for a machine preset.
[[nodiscard]] CostModel default_cost_model(const MachineConfig& machine);

// ---------------------------------------------------------------------------
// Analytic phase formulas.
//
// Noise-free expectations of every modelled duration. The simulated services
// (rm::*Launcher, stackwalker::StackWalker, the STAT filter, StatScenario)
// draw per-run noise *around exactly these formulas*; plan::PhasePredictor
// consumes them directly. One shared formulation is what makes the
// predictor's topology ranking trustworthy — if a service's timing model
// changes, it must change here, where both sides see it.

/// Fan-out tree levels needed to reach n leaves (n itself for n <= 1).
[[nodiscard]] std::uint32_t tree_levels(std::uint32_t n, std::uint32_t fanout);

/// MRNet's ad hoc spawner: one remote shell per daemon, strictly serial from
/// the front end (the Fig. 2 linear trend).
[[nodiscard]] SimTime serial_shell_spawn_time(const LaunchCosts& costs,
                                              std::uint32_t daemons);

/// LaunchMON path: one RM request plus the RM's internal broadcast tree.
[[nodiscard]] SimTime bulk_tree_spawn_time(const LaunchCosts& costs,
                                           std::uint32_t daemons);

/// BG/L process-table generation; quadratic strcat term when unpatched.
[[nodiscard]] SimTime ciod_process_table_time(const LaunchCosts& costs,
                                              std::uint32_t app_procs,
                                              bool patched);

/// BG/L daemon push to the I/O nodes through the control network
/// (daemon_init, which applies to every launcher, is accounted separately).
[[nodiscard]] SimTime ciod_spawn_time(const LaunchCosts& costs,
                                      std::uint32_t daemons);

/// BG/L application launch under tool control.
[[nodiscard]] SimTime ciod_app_launch_time(const LaunchCosts& costs,
                                           std::uint32_t app_procs);

/// MRNet comm processes are spawned serially from the front end.
[[nodiscard]] SimTime comm_spawn_time(const LaunchCosts& costs,
                                      std::uint32_t comm_procs);

/// One third-party stack walk of `frames` frames, including the daemon-local
/// merge of the resulting path (before contention scaling).
[[nodiscard]] SimTime stack_walk_cost(const SamplingCosts& costs,
                                      std::size_t frames);

/// Symbol-table parse CPU for `image_bytes` of binary images.
[[nodiscard]] SimTime symtab_parse_cost(const SamplingCosts& costs,
                                        std::uint64_t image_bytes);

/// Expected CPU-contention factor for a daemon's walk/parse work: the full
/// spin-wait slowdown on shared nodes, 1.0 on dedicated I/O nodes.
[[nodiscard]] double expected_contention(const SamplingCosts& costs,
                                         bool daemon_shares_cpu);

/// Filter-process CPU to pack or unpack one `bytes`-sized payload packet.
[[nodiscard]] SimTime packet_codec_cost(const MergeCosts& costs,
                                        std::uint64_t bytes);

/// Filter-process CPU to merge an incoming payload of `tree_nodes` prefix
/// tree nodes carrying `label_bytes` of edge labels into the accumulator.
[[nodiscard]] SimTime filter_merge_cost(const MergeCosts& costs,
                                        std::uint64_t tree_nodes,
                                        std::uint64_t label_bytes);

/// Front-end remap of daemon-order task lists to MPI rank order (the
/// optimized representation's finalization step).
[[nodiscard]] SimTime frontend_remap_cost(const MergeCosts& costs,
                                          std::uint64_t tasks);

// --- Sharded front end (reducer tree) --------------------------------------
//
// A sharded front end splits the final merge across `fe_shards` reducer
// processes (plus, for K > tbon::kShardCombineFanIn, the combiner levels of
// the reducer tree above them); these formulas price the pieces the split
// adds. They delegate to the per-piece formulas above so the simulator's
// reduction (which charges codec/merge per arrival through the same
// functions) and the planner can never drift apart.

/// Placement-aware serial spawn of a burst of `procs` helper processes
/// landing on `distinct_hosts` hosts: one remote-shell handshake per host,
/// then cheap local forks for every colocated extra. This is the
/// spawn-locality side of the reducer-placement trade — packing helpers onto
/// few hosts makes this formula small and the merge-time link contention
/// (every transfer serialized on each link of its net::route_between route,
/// so colocated helpers queue on one access link) large; spreading does the
/// reverse. One formulation for the simulator (StatScenario's connect
/// phase) and the planner.
[[nodiscard]] SimTime placed_spawn_time(const LaunchCosts& costs,
                                        std::uint32_t procs,
                                        std::uint32_t distinct_hosts);

/// Spawn burst of the shard machinery (reducers + combiners): reducers are
/// MRNet comm processes with a special role, spawned serially from the front
/// end; colocated helpers fork locally after the first per-host handshake.
/// Feed it tbon::TbonTopology::num_shard_procs() and
/// tbon::shard_spawn_hosts().
[[nodiscard]] SimTime reducer_spawn_time(const LaunchCosts& costs,
                                         std::uint32_t procs,
                                         std::uint32_t distinct_hosts);

/// Front-end CPU to accept and fold one reducer's merged shard payload
/// during the final combine (unpack + structural merge).
[[nodiscard]] SimTime shard_combine_cost(const MergeCosts& costs,
                                         std::uint64_t tree_nodes,
                                         std::uint64_t payload_bytes);

/// Critical path of the distributed remap: reducers remap their slices
/// concurrently, so the phase costs the largest slice's remap.
[[nodiscard]] SimTime sharded_remap_cost(const MergeCosts& costs,
                                         std::uint64_t largest_slice_tasks);

// --- Failure recovery ------------------------------------------------------
//
// Mid-merge recovery (tbon::HealthMonitor + Reduction::recover) is priced
// through the same per-piece formulas as the live merge, so plan:: can
// predict what a reducer death costs without a private model.

/// Expected latency from a proc's death to its detection by the periodic
/// ping sweep: on average half a period passes before the next sweep leaves
/// the front end, then one fan-out + echo-gather round trip completes before
/// the missing echo is noticed.
[[nodiscard]] SimTime expected_detection_latency(SimTime ping_period,
                                                 SimTime sweep_round_trip);

/// CPU critical path of re-merging a lost subtree of `orphan_leaves` leaf
/// payloads folded into `adopters` surviving procs: the busiest adopter
/// unpacks and merges its ceil(orphans/adopters) arrivals serially, exactly
/// as the live merge would have (shard_combine_cost per arrival). Scales
/// with the lost subtree, never with the job.
[[nodiscard]] SimTime subtree_remerge_cost(const MergeCosts& costs,
                                           std::uint32_t orphan_leaves,
                                           std::uint32_t adopters,
                                           std::uint64_t leaf_tree_nodes,
                                           std::uint64_t leaf_payload_bytes);

// --- Streaming sampling ----------------------------------------------------
//
// The --stream mode broadcasts one SampleRequest down the tree, then runs N
// incremental per-sample merge rounds upward (tbon::StreamingReduction).
// These formulas price the pieces streaming adds; transfers still go through
// net::, payload codec/merge through the MergeCosts formulas above, so the
// simulator and plan::predict_stream_sample can never drift apart.

/// CPU a proc spends handling one SampleRequest control packet on its way
/// down the tree (decode + re-arm + forward bookkeeping).
[[nodiscard]] SimTime control_packet_cost(const StreamCosts& costs);

/// Daemon CPU to hash its per-sample snapshot into a class signature —
/// the cost of *knowing* nothing changed, paid every round by every daemon.
[[nodiscard]] SimTime signature_cost(const StreamCosts& costs,
                                     std::uint64_t traces);

/// Incremental re-merge of one *cached* child accumulator: the cache holds
/// the decoded tree from the last round, so a dirty proc pays a lock-step
/// structural walk (cached_merge_per_node per node, plus the usual
/// per-label-byte union work) but no unpack codec and none of the
/// decode-side allocation churn. This asymmetry (full codec + merge only
/// for changed arrivals) is where the streaming win comes from on the CPU
/// side; the network side saves the whole payload transfer.
[[nodiscard]] SimTime cached_merge_cost(const MergeCosts& merge,
                                        const StreamCosts& stream,
                                        std::uint64_t tree_nodes,
                                        std::uint64_t label_bytes);

}  // namespace petastat::machine
