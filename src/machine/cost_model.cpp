#include "machine/cost_model.hpp"

#include "common/status.hpp"

namespace petastat::machine {

CostModel default_cost_model(const MachineConfig& m) {
  CostModel c;
  if (m.name == "bgl") {
    // 700 MHz PPC440 I/O-node cores walk stacks ~3x slower than the 2.4 GHz
    // Opterons on Atlas, and the debug interface crosses the collective
    // network to the compute node.
    c.sampling.walk_per_frame = seconds(0.0011);
    c.sampling.walk_per_process = seconds(0.0042);
    c.sampling.symtab_parse_per_mb = seconds(0.24);
    // Comm processes run on 1.6 GHz Power5 login nodes.
    c.merge.merge_per_tree_node = seconds(0.0000026);
    c.merge.per_packet_cpu = seconds(0.0014);
  } else if (m.name == "petascale") {
    // Assume 2x faster cores than Atlas for the forward-looking projection.
    c.sampling.walk_per_frame = seconds(0.00018);
    c.sampling.walk_per_process = seconds(0.0006);
  }
  return c;
}

// ---------------------------------------------------------------------------
// Analytic phase formulas

std::uint32_t tree_levels(std::uint32_t n, std::uint32_t fanout) {
  if (n <= 1) return n;
  check(fanout >= 2, "tree_levels fanout must be >= 2");
  std::uint32_t levels = 0;
  std::uint64_t reach = 1;
  while (reach < n) {
    reach *= fanout;
    ++levels;
  }
  return levels;
}

SimTime serial_shell_spawn_time(const LaunchCosts& costs,
                                std::uint32_t daemons) {
  return static_cast<SimTime>(
      static_cast<double>(costs.remote_shell_per_daemon) * daemons);
}

SimTime bulk_tree_spawn_time(const LaunchCosts& costs, std::uint32_t daemons) {
  const std::uint32_t levels = tree_levels(daemons, costs.rm_broadcast_fanout);
  return costs.rm_request_overhead + levels * costs.rm_broadcast_per_level;
}

SimTime ciod_process_table_time(const LaunchCosts& costs,
                                std::uint32_t app_procs, bool patched) {
  const auto p = static_cast<double>(app_procs);
  double t = to_seconds(costs.ciod_base) + to_seconds(costs.ciod_per_proc) * p;
  if (!patched) {
    // strcat rescans the destination buffer on every append: Theta(P^2).
    t += costs.ciod_strcat_ns_per_proc_sq * p * p * 1e-9;
  }
  return seconds(t);
}

SimTime ciod_spawn_time(const LaunchCosts& costs, std::uint32_t daemons) {
  return costs.rm_broadcast_per_level *
         tree_levels(daemons, costs.rm_broadcast_fanout);
}

SimTime ciod_app_launch_time(const LaunchCosts& costs,
                             std::uint32_t app_procs) {
  return costs.app_launch_base +
         static_cast<SimTime>(static_cast<double>(costs.app_launch_per_proc) *
                              app_procs);
}

SimTime comm_spawn_time(const LaunchCosts& costs, std::uint32_t comm_procs) {
  return static_cast<SimTime>(
      static_cast<double>(costs.remote_shell_per_daemon) * comm_procs);
}

SimTime stack_walk_cost(const SamplingCosts& costs, std::size_t frames) {
  return costs.walk_per_process +
         static_cast<SimTime>(frames) *
             (costs.walk_per_frame + costs.local_merge_per_node);
}

SimTime symtab_parse_cost(const SamplingCosts& costs,
                          std::uint64_t image_bytes) {
  return static_cast<SimTime>(
      static_cast<double>(costs.symtab_parse_per_mb) *
      (static_cast<double>(image_bytes) / (1024.0 * 1024.0)));
}

double expected_contention(const SamplingCosts& costs,
                           bool daemon_shares_cpu) {
  return daemon_shares_cpu ? costs.cpu_contention_mean : 1.0;
}

SimTime packet_codec_cost(const MergeCosts& costs, std::uint64_t bytes) {
  return costs.per_packet_cpu +
         static_cast<SimTime>(static_cast<double>(costs.pack_per_byte) *
                              static_cast<double>(bytes));
}

SimTime filter_merge_cost(const MergeCosts& costs, std::uint64_t tree_nodes,
                          std::uint64_t label_bytes) {
  return tree_nodes * costs.merge_per_tree_node +
         static_cast<SimTime>(
             static_cast<double>(costs.merge_per_label_byte) *
             static_cast<double>(label_bytes));
}

SimTime frontend_remap_cost(const MergeCosts& costs, std::uint64_t tasks) {
  return static_cast<SimTime>(static_cast<double>(costs.remap_per_task) *
                              static_cast<double>(tasks));
}

SimTime placed_spawn_time(const LaunchCosts& costs, std::uint32_t procs,
                          std::uint32_t distinct_hosts) {
  if (procs == 0) return 0;
  check(distinct_hosts >= 1 && distinct_hosts <= procs,
        "placed_spawn_time: hosts must be in [1, procs]");
  return static_cast<SimTime>(
      static_cast<double>(costs.remote_shell_per_daemon) * distinct_hosts +
      static_cast<double>(costs.colocated_spawn_per_proc) *
          (procs - distinct_hosts));
}

SimTime reducer_spawn_time(const LaunchCosts& costs, std::uint32_t procs,
                           std::uint32_t distinct_hosts) {
  return placed_spawn_time(costs, procs, distinct_hosts);
}

SimTime shard_combine_cost(const MergeCosts& costs, std::uint64_t tree_nodes,
                           std::uint64_t payload_bytes) {
  return packet_codec_cost(costs, payload_bytes) +
         filter_merge_cost(costs, tree_nodes, payload_bytes);
}

SimTime sharded_remap_cost(const MergeCosts& costs,
                           std::uint64_t largest_slice_tasks) {
  return frontend_remap_cost(costs, largest_slice_tasks);
}

SimTime expected_detection_latency(SimTime ping_period,
                                   SimTime sweep_round_trip) {
  return ping_period / 2 + sweep_round_trip;
}

SimTime subtree_remerge_cost(const MergeCosts& costs,
                             std::uint32_t orphan_leaves,
                             std::uint32_t adopters,
                             std::uint64_t leaf_tree_nodes,
                             std::uint64_t leaf_payload_bytes) {
  if (orphan_leaves == 0) return 0;
  check(adopters >= 1, "subtree_remerge_cost needs at least one adopter");
  const std::uint64_t busiest = (orphan_leaves + adopters - 1) / adopters;
  // Each orphan leaf re-packs in parallel (one codec), then the busiest
  // adopter folds its share serially.
  return packet_codec_cost(costs, leaf_payload_bytes) +
         busiest *
             shard_combine_cost(costs, leaf_tree_nodes, leaf_payload_bytes);
}

SimTime control_packet_cost(const StreamCosts& costs) {
  return costs.control_packet_cpu;
}

SimTime signature_cost(const StreamCosts& costs, std::uint64_t traces) {
  return static_cast<SimTime>(
      static_cast<double>(costs.signature_per_trace) *
      static_cast<double>(traces));
}

SimTime cached_merge_cost(const MergeCosts& merge, const StreamCosts& stream,
                          std::uint64_t tree_nodes,
                          std::uint64_t label_bytes) {
  // The cache holds a decoded, canonically-ordered tree: a lock-step walk
  // with label unions, no unpack and no decode-side allocation churn.
  return tree_nodes * stream.cached_merge_per_node +
         static_cast<SimTime>(
             static_cast<double>(merge.merge_per_label_byte) *
             static_cast<double>(label_bytes));
}

}  // namespace petastat::machine
