#include "machine/cost_model.hpp"

namespace petastat::machine {

CostModel default_cost_model(const MachineConfig& m) {
  CostModel c;
  if (m.name == "bgl") {
    // 700 MHz PPC440 I/O-node cores walk stacks ~3x slower than the 2.4 GHz
    // Opterons on Atlas, and the debug interface crosses the collective
    // network to the compute node.
    c.sampling.walk_per_frame = seconds(0.0011);
    c.sampling.walk_per_process = seconds(0.0042);
    c.sampling.symtab_parse_per_mb = seconds(0.24);
    // Comm processes run on 1.6 GHz Power5 login nodes.
    c.merge.merge_per_tree_node = seconds(0.0000026);
    c.merge.per_packet_cpu = seconds(0.0014);
  } else if (m.name == "petascale") {
    // Assume 2x faster cores than Atlas for the forward-looking projection.
    c.sampling.walk_per_frame = seconds(0.00018);
    c.sampling.walk_per_process = seconds(0.0006);
  }
  return c;
}

}  // namespace petastat::machine
