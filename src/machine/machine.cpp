#include "machine/machine.hpp"

namespace petastat::machine {

std::uint32_t tasks_per_compute_node(const MachineConfig& machine, BglMode mode) {
  if (machine.daemon_placement == DaemonPlacement::kPerIoNode) {
    // BG/L-style: CO mode = 1 task/node, VN mode = 1 task/core.
    return mode == BglMode::kCoprocessor ? 1 : machine.cores_per_compute_node;
  }
  // Cluster-style: fully packed nodes, 1 task per core.
  return machine.cores_per_compute_node;
}

Result<DaemonLayout> layout_daemons(const MachineConfig& machine,
                                    const JobConfig& job) {
  if (job.num_tasks == 0) return invalid_argument("job has zero tasks");
  const std::uint32_t per_node = tasks_per_compute_node(machine, job.mode);

  const std::uint64_t needed_nodes =
      (static_cast<std::uint64_t>(job.num_tasks) + per_node - 1) / per_node;
  if (needed_nodes > machine.compute_nodes) {
    return resource_exhausted(
        "job needs " + std::to_string(needed_nodes) + " compute nodes, " +
        machine.name + " has " + std::to_string(machine.compute_nodes));
  }

  DaemonLayout layout;
  layout.num_tasks = job.num_tasks;
  if (machine.daemon_placement == DaemonPlacement::kPerComputeNode) {
    layout.tasks_per_daemon = per_node;
    layout.num_daemons = static_cast<std::uint32_t>(needed_nodes);
  } else {
    // One daemon per I/O node; each I/O node serves a fixed block of compute
    // nodes (64 on LLNL's BG/L).
    const std::uint32_t block = machine.compute_nodes_per_io_node;
    check(block > 0, "per-I/O-node placement requires compute_nodes_per_io_node");
    layout.tasks_per_daemon = block * per_node;
    layout.num_daemons = static_cast<std::uint32_t>(
        (needed_nodes + block - 1) / block);
    if (layout.num_daemons > machine.io_nodes) {
      return resource_exhausted("job needs more I/O nodes than available");
    }
  }
  return layout;
}

NodeId daemon_host(const MachineConfig& machine, DaemonId d) {
  if (machine.daemon_placement == DaemonPlacement::kPerComputeNode) {
    return machine.compute_node(d.value());
  }
  return machine.io_node(d.value());
}

MachineConfig atlas() {
  MachineConfig m;
  m.name = "atlas";
  m.compute_nodes = 1152;
  m.cores_per_compute_node = 8;  // 4-way dual-core Opteron
  m.daemon_placement = DaemonPlacement::kPerComputeNode;
  m.login_nodes = 2;
  m.cores_per_login_node = 8;
  m.comm_procs_on_compute_allocation = true;  // separate compute allocation
  m.max_comm_procs_per_login = 0;             // not placed on login nodes
  m.static_binary = false;                    // dynamic exe + shared libs
  m.daemon_shares_cpu = true;                 // spin-waiting MPI ranks
  m.supports_rsh = true;
  m.supports_ssh = false;  // Sec. IV-A: Atlas compute nodes have no sshd
  return m;
}

MachineConfig bgl() {
  MachineConfig m;
  m.name = "bgl";
  m.compute_nodes = 106'496;  // 104 racks
  m.cores_per_compute_node = 2;  // dual PPC440
  m.daemon_placement = DaemonPlacement::kPerIoNode;
  m.compute_nodes_per_io_node = 64;
  m.io_nodes = 1664;
  m.login_nodes = 14;  // comm processes restricted to these
  m.cores_per_login_node = 2;  // dual Power5
  m.max_comm_procs_per_login = 24;
  m.comm_procs_on_compute_allocation = false;
  m.static_binary = true;
  m.daemon_shares_cpu = false;  // daemons own the I/O node
  m.supports_rsh = false;       // must use the system launcher (CIOD)
  m.supports_ssh = false;
  // The observed 1-deep failure point is 256 daemon connections (Sec. V-A);
  // with the "> limit rejects" boundary semantic that means the front end
  // survives 255.
  m.max_tool_connections = 255;
  return m;
}

MachineConfig petascale() {
  MachineConfig m;
  m.name = "petascale";
  m.compute_nodes = 131'072;
  m.cores_per_compute_node = 8;  // 1,048,576 cores total
  m.daemon_placement = DaemonPlacement::kPerIoNode;
  m.compute_nodes_per_io_node = 64;
  m.io_nodes = 2048;
  m.login_nodes = 32;
  m.cores_per_login_node = 8;
  m.max_comm_procs_per_login = 32;
  m.static_binary = true;
  m.daemon_shares_cpu = false;
  m.supports_rsh = false;
  m.supports_ssh = false;
  return m;
}

}  // namespace petastat::machine
