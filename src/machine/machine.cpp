#include "machine/machine.hpp"

namespace petastat::machine {

std::uint32_t tasks_per_compute_node(const MachineConfig& machine, BglMode mode) {
  if (machine.daemon_placement == DaemonPlacement::kPerIoNode) {
    // BG/L-style: CO mode = 1 task/node, VN mode = 1 task/core.
    return mode == BglMode::kCoprocessor ? 1 : machine.cores_per_compute_node;
  }
  // Cluster-style: fully packed nodes, 1 task per core.
  return machine.cores_per_compute_node;
}

Result<DaemonLayout> layout_daemons(const MachineConfig& machine,
                                    const JobConfig& job) {
  if (job.num_tasks == 0) return invalid_argument("job has zero tasks");
  const std::uint32_t per_node = tasks_per_compute_node(machine, job.mode);

  const std::uint64_t needed_nodes =
      (static_cast<std::uint64_t>(job.num_tasks) + per_node - 1) / per_node;
  if (needed_nodes > machine.compute_nodes) {
    return resource_exhausted(
        "job needs " + std::to_string(needed_nodes) + " compute nodes, " +
        machine.name + " has " + std::to_string(machine.compute_nodes));
  }

  DaemonLayout layout;
  layout.num_tasks = job.num_tasks;
  if (machine.daemon_placement == DaemonPlacement::kPerComputeNode) {
    layout.tasks_per_daemon = per_node;
    layout.num_daemons = static_cast<std::uint32_t>(needed_nodes);
  } else {
    // One daemon per I/O node; each I/O node serves a fixed block of compute
    // nodes (64 on LLNL's BG/L).
    const std::uint32_t block = machine.compute_nodes_per_io_node;
    check(block > 0, "per-I/O-node placement requires compute_nodes_per_io_node");
    layout.tasks_per_daemon = block * per_node;
    layout.num_daemons = static_cast<std::uint32_t>(
        (needed_nodes + block - 1) / block);
    if (layout.num_daemons > machine.io_nodes) {
      return resource_exhausted("job needs more I/O nodes than available");
    }
  }
  return layout;
}

NodeId daemon_host(const MachineConfig& machine, DaemonId d) {
  if (machine.daemon_placement == DaemonPlacement::kPerComputeNode) {
    return machine.compute_node(d.value());
  }
  return machine.io_node(d.value());
}

MachineConfig atlas() {
  MachineConfig m;
  m.name = "atlas";
  m.compute_nodes = 1152;
  m.cores_per_compute_node = 8;  // 4-way dual-core Opteron
  m.daemon_placement = DaemonPlacement::kPerComputeNode;
  m.login_nodes = 2;
  m.cores_per_login_node = 8;
  m.comm_procs_on_compute_allocation = true;  // separate compute allocation
  m.max_comm_procs_per_login = 0;             // not placed on login nodes
  m.static_binary = false;                    // dynamic exe + shared libs
  m.daemon_shares_cpu = true;                 // spin-waiting MPI ranks
  m.supports_rsh = true;
  m.supports_ssh = false;  // Sec. IV-A: Atlas compute nodes have no sshd

  // 2-level fat-tree over DDR Infiniband: 24-port leaf switches for the
  // compute nodes, full-bisection uplinks into one core, and a service leaf
  // holding the front end and both login nodes. Access rates carry over the
  // old per-role NIC rates (compute 1.4 GB/s IB, service 1.1 GB/s).
  m.interconnect.shape = InterconnectShape::kFatTree;
  m.interconnect.frontend_access = {4 * kMicrosecond, 1.1e9};
  m.interconnect.login_access = {4 * kMicrosecond, 1.1e9};
  m.interconnect.compute_access = {2 * kMicrosecond, 1.4e9};
  m.interconnect.io_access = {4 * kMicrosecond, 1.1e9};  // no I/O tier
  m.interconnect.hosts_per_leaf = 24;  // 48 leaves for 1,152 nodes
  m.interconnect.logins_per_service_leaf = 4;
  m.interconnect.leaves_per_agg = 0;  // 2-level: leaves attach to the core
  m.interconnect.leaf_uplink = {kMicrosecond, 24 * 1.4e9};  // full bisection
  m.interconnect.service_uplink = {kMicrosecond, 4.4e9};
  m.interconnect.per_message_overhead = 30 * kMicrosecond;
  return m;
}

MachineConfig bgl() {
  MachineConfig m;
  m.name = "bgl";
  m.compute_nodes = 106'496;  // 104 racks
  m.cores_per_compute_node = 2;  // dual PPC440
  m.daemon_placement = DaemonPlacement::kPerIoNode;
  m.compute_nodes_per_io_node = 64;
  m.io_nodes = 1664;
  m.login_nodes = 14;  // comm processes restricted to these
  m.cores_per_login_node = 2;  // dual Power5
  m.max_comm_procs_per_login = 24;
  m.comm_procs_on_compute_allocation = false;
  m.static_binary = true;
  m.daemon_shares_cpu = false;  // daemons own the I/O node
  m.supports_rsh = false;       // must use the system launcher (CIOD)
  m.supports_ssh = false;
  // The observed 1-deep failure point is 256 daemon connections (Sec. V-A);
  // with the "> limit rejects" boundary semantic that means the front end
  // survives 255.
  m.max_tool_connections = 255;

  // BG/L's tool traffic rides the functional GigE tree: each rack's 16 I/O
  // nodes hang off a rack switch, rack switches uplink into one functional
  // core, and the login nodes share a service leaf on the same core. Compute
  // nodes reach their rack's I/O nodes over the collective network and other
  // racks over the torus passthrough vertex. Access rates carry over the old
  // NIC rates (I/O 95 MB/s, login 110 MB/s, compute collective 340 MB/s);
  // the login->I/O route latency sums to the old 120 us.
  m.interconnect.shape = InterconnectShape::kIoTorusTiers;
  m.interconnect.frontend_access = {30 * kMicrosecond, 110e6};
  m.interconnect.login_access = {30 * kMicrosecond, 110e6};
  m.interconnect.io_access = {6 * kMicrosecond, 95e6};
  m.interconnect.compute_access = {5 * kMicrosecond, 340e6};
  m.interconnect.io_nodes_per_rack = 16;  // 104 racks
  m.interconnect.rack_uplink = {59 * kMicrosecond, 1.0e9};
  m.interconnect.service_uplink = {25 * kMicrosecond, 1.0e9};
  m.interconnect.collective_link = {4 * kMicrosecond, 340e6};
  m.interconnect.torus_link = {2 * kMicrosecond, 175e6};
  m.interconnect.per_message_overhead = 60 * kMicrosecond;
  return m;
}

MachineConfig petascale() {
  MachineConfig m;
  m.name = "petascale";
  m.compute_nodes = 131'072;
  m.cores_per_compute_node = 8;  // 1,048,576 cores total
  m.daemon_placement = DaemonPlacement::kPerIoNode;
  m.compute_nodes_per_io_node = 64;
  m.io_nodes = 2048;
  m.login_nodes = 32;
  m.cores_per_login_node = 8;
  m.max_comm_procs_per_login = 32;
  m.static_binary = true;
  m.daemon_shares_cpu = false;
  m.supports_rsh = false;
  m.supports_ssh = false;

  // Oversubscribed 3-level fat-tree: 64 I/O leaves (32 I/O nodes each, with
  // the 131,072 compute nodes block-attached 2,048 per leaf), 8 service
  // leaves of 4 logins, 4 aggregation switches, one core. The I/O side gets
  // full-bisection uplinks; the service leaves are 2:1 oversubscribed
  // (4 x 1.2 GB/s of access demand into a 2.4 GB/s trunk), so reducers
  // packed behind one service leaf contend on its uplink — the wiring effect
  // route-aware placement exists to dodge.
  m.interconnect.shape = InterconnectShape::kFatTree;
  m.interconnect.frontend_access = {8 * kMicrosecond, 1.2e9};
  m.interconnect.login_access = {8 * kMicrosecond, 1.2e9};
  m.interconnect.io_access = {8 * kMicrosecond, 1.2e9};
  m.interconnect.compute_access = {4 * kMicrosecond, 2.0e9};
  m.interconnect.hosts_per_leaf = 32;         // 64 I/O leaves
  m.interconnect.logins_per_service_leaf = 4; // 8 service leaves
  m.interconnect.leaves_per_agg = 16;         // 4 aggs over the I/O leaves
  m.interconnect.leaf_uplink = {5 * kMicrosecond, 32 * 1.2e9};
  m.interconnect.service_uplink = {5 * kMicrosecond, 2.4e9};  // oversubscribed
  m.interconnect.agg_uplink = {5 * kMicrosecond, 76.8e9};
  m.interconnect.per_message_overhead = 20 * kMicrosecond;
  return m;
}

}  // namespace petastat::machine
