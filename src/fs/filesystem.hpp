// File-system service models (Sec. VI).
//
// The paper's third lesson: per-daemon symbol-table parsing looks like an
// independent local operation but serializes on the shared file server. We
// model three backends:
//
//  * NfsFileSystem — one server with k service threads and a FIFO queue.
//    First read of a file runs at disk rate; repeat reads of the same file
//    hit the server page cache (every daemon reads the *same* binaries).
//    Service times inflate with the outstanding request count (the
//    "thrashing" regime) and carry log-normal background-load noise (the
//    >20% run-to-run variation of Fig. 9).
//  * LustreFileSystem — a metadata server plus an OSS pool; data moves fast
//    but every open and every 1 MB transfer pays an RPC, which is why it
//    offers "little improvement over NFS" at the scales of Fig. 10.
//  * RamDiskFileSystem — node-local memory; the SBRS relocation target.
//
// MountTable resolves a path to its backend (the mtab check SBRS performs),
// and FileAccess adds client-side page caching plus the open() interposition
// hook that SBRS uses to redirect reads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace petastat::fs {

/// Abstract file-service backend. Implementations compute when a whole-file
/// read issued "now" by `client` completes.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// True when the backend is globally shared (SBRS relocates only these).
  [[nodiscard]] virtual bool is_shared() const = 0;

  /// Schedules a read of `bytes` of `path`; returns the completion time.
  virtual SimTime read(NodeId client, const std::string& path,
                       std::uint64_t bytes) = 0;

  /// Forget server-side cache/queue state (between benchmark repetitions).
  virtual void reset() = 0;
};

struct NfsParams {
  /// Service lanes; aggregate throughput = server_threads x per-stream rate.
  unsigned server_threads = 4;
  /// Per-stream rates: what one client's read achieves when served.
  double disk_bytes_per_sec = 90.0e6;      // first read of a file (disk)
  double cached_bytes_per_sec = 100.0e6;   // server page-cache hit (GigE-bound)
  SimTime per_request = 1500 * kMicrosecond;  // RPC + attribute checks
  /// Service inflation per outstanding request: thrash under fan-in.
  double degradation_alpha = 0.0006;
  /// Outstanding-request count beyond which the thrash factor saturates.
  std::uint64_t degradation_cap = 512;
  /// Log-space sigma of external server load (other users of the shared FS),
  /// applied per request.
  double background_sigma = 0.22;
  /// Log-space sigma of the *per-run* server mood: the shared server's load
  /// differs run to run, which is the paper's explanation for the >2x
  /// variation between "essentially-identical" runs (Fig. 9).
  double run_load_sigma = 0.18;
};

class NfsFileSystem final : public FileSystem {
 public:
  NfsFileSystem(sim::Simulator& simulator, NfsParams params, std::uint64_t seed);

  [[nodiscard]] std::string_view kind() const override { return "nfs"; }
  [[nodiscard]] bool is_shared() const override { return true; }
  SimTime read(NodeId client, const std::string& path,
               std::uint64_t bytes) override;
  void reset() override;

  [[nodiscard]] const sim::ServerStats& server_stats() const {
    return server_.stats();
  }

 private:
  sim::Simulator& sim_;
  NfsParams params_;
  sim::FifoServer server_;
  std::unordered_set<std::string> warm_files_;
  Rng rng_;
  double run_load_factor_ = 1.0;
};

struct LustreParams {
  unsigned mds_threads = 4;
  SimTime mds_per_open = 2200 * kMicrosecond;
  unsigned oss_count = 4;
  double oss_bytes_per_sec = 300.0e6;
  std::uint64_t rpc_chunk_bytes = 1u << 20;
  SimTime per_rpc = 5500 * kMicrosecond;
  double background_sigma = 0.15;
};

class LustreFileSystem final : public FileSystem {
 public:
  LustreFileSystem(sim::Simulator& simulator, LustreParams params,
                   std::uint64_t seed);

  [[nodiscard]] std::string_view kind() const override { return "lustre"; }
  [[nodiscard]] bool is_shared() const override { return true; }
  SimTime read(NodeId client, const std::string& path,
               std::uint64_t bytes) override;
  void reset() override;

 private:
  sim::Simulator& sim_;
  LustreParams params_;
  sim::FifoServer mds_;
  std::vector<sim::SerialDevice> oss_;  // one lane per OSS
  Rng rng_;
  std::uint64_t next_stripe_ = 0;
};

struct RamDiskParams {
  double bytes_per_sec = 2.0e9;
  SimTime per_open = 20 * kMicrosecond;
};

class RamDiskFileSystem final : public FileSystem {
 public:
  RamDiskFileSystem(sim::Simulator& simulator, RamDiskParams params)
      : sim_(simulator), params_(params) {}

  [[nodiscard]] std::string_view kind() const override { return "ramdisk"; }
  [[nodiscard]] bool is_shared() const override { return false; }
  SimTime read(NodeId, const std::string&, std::uint64_t bytes) override {
    const auto xfer = static_cast<SimTime>(
        static_cast<double>(bytes) / params_.bytes_per_sec * 1e9);
    return sim_.now() + params_.per_open + xfer;
  }
  void reset() override {}

 private:
  sim::Simulator& sim_;
  RamDiskParams params_;
};

/// Longest-prefix-match mount table (the simulated /etc/mtab).
class MountTable {
 public:
  /// Mounts `fs` at `prefix` (e.g. "/home", "/p/lustre", "/ramdisk").
  void mount(std::string prefix, FileSystem* filesystem);

  /// Longest mounted prefix covering `path`; nullptr when unmounted.
  [[nodiscard]] FileSystem* resolve(std::string_view path) const;

  /// The SBRS mtab check: is this path on a globally shared file system?
  [[nodiscard]] bool on_shared_filesystem(std::string_view path) const;

 private:
  std::vector<std::pair<std::string, FileSystem*>> mounts_;  // longest first
};

/// Client-side file access layer: per-node page cache plus per-node open()
/// redirection (the SBRS interposition point).
class FileAccess {
 public:
  FileAccess(sim::Simulator& simulator, MountTable& mounts)
      : sim_(simulator), mounts_(mounts) {}

  /// Installs an interposed redirect on `node`: any open of a path starting
  /// with `from_prefix` is served from `to_prefix` + suffix instead.
  void install_redirect(NodeId node, std::string from_prefix,
                        std::string to_prefix);
  void clear_redirects();

  /// Full-file read honoring redirects and the node's page cache; returns
  /// the completion time (== now for a warm cache hit).
  SimTime open_and_read(NodeId client, const std::string& path,
                        std::uint64_t bytes);

  /// Marks a file resident on a node without a read (SBRS writes relocated
  /// binaries straight into the RAM disk).
  void populate_local(NodeId node, const std::string& path);

  [[nodiscard]] const MountTable& mounts() const { return mounts_; }
  [[nodiscard]] std::string redirected_path(NodeId node,
                                            const std::string& path) const;

  void reset();

 private:
  struct NodeKey {
    NodeId node;
    std::string path;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      return std::hash<NodeId>{}(k.node) ^ (std::hash<std::string>{}(k.path) * 31);
    }
  };

  sim::Simulator& sim_;
  MountTable& mounts_;
  std::unordered_map<NodeId, std::vector<std::pair<std::string, std::string>>>
      redirects_;
  std::unordered_set<NodeKey, NodeKeyHash> page_cache_;
};

}  // namespace petastat::fs
