#include "fs/filesystem.hpp"

#include <algorithm>

namespace petastat::fs {

// ---------------------------------------------------------------------------
// NFS

NfsFileSystem::NfsFileSystem(sim::Simulator& simulator, NfsParams params,
                             std::uint64_t seed)
    : sim_(simulator),
      params_(params),
      server_(simulator, params.server_threads),
      rng_(seed, /*stream_id=*/0xF5) {
  run_load_factor_ = rng_.lognormal_factor(params_.run_load_sigma);
}

SimTime NfsFileSystem::read(NodeId, const std::string& path,
                            std::uint64_t bytes) {
  const bool warm = warm_files_.contains(path);
  const double rate =
      warm ? params_.cached_bytes_per_sec : params_.disk_bytes_per_sec;
  warm_files_.insert(path);

  double service_s = to_seconds(params_.per_request) +
                     static_cast<double>(bytes) / rate;
  // Thrash: the more requests in flight, the slower each one gets served
  // (lock contention, cache eviction, nfsd scheduling), saturating.
  service_s *= 1.0 + params_.degradation_alpha *
                         static_cast<double>(std::min(
                             server_.outstanding(), params_.degradation_cap));
  // Background load from other users of the shared server, plus this run's
  // overall server mood.
  service_s *=
      run_load_factor_ * rng_.lognormal_factor(params_.background_sigma);

  return server_.submit(seconds(service_s), sim::EventCallback{});
}

void NfsFileSystem::reset() {
  server_.reset();
  warm_files_.clear();
}

// ---------------------------------------------------------------------------
// Lustre

LustreFileSystem::LustreFileSystem(sim::Simulator& simulator,
                                   LustreParams params, std::uint64_t seed)
    : sim_(simulator),
      params_(params),
      mds_(simulator, params.mds_threads),
      rng_(seed, /*stream_id=*/0x1057) {
  oss_.reserve(params_.oss_count);
  for (unsigned i = 0; i < params_.oss_count; ++i) {
    // One service lane per OSS at the full per-OSS rate; pool throughput is
    // oss_count x oss_bytes_per_sec.
    oss_.emplace_back(simulator);
  }
}

SimTime LustreFileSystem::read(NodeId, const std::string&,
                               std::uint64_t bytes) {
  // Metadata: one MDS open.
  const double noise = rng_.lognormal_factor(params_.background_sigma);
  const auto open_done =
      mds_.submit(static_cast<SimTime>(
                      static_cast<double>(params_.mds_per_open) * noise),
                  sim::EventCallback{});

  // Data: the file is striped; each RPC-sized chunk pays per-RPC overhead
  // plus transfer on one OSS. Chunks of one read go round-robin, and a
  // chunk's service can only start once the open has completed (waiting for
  // the MDS does not consume OSS capacity).
  const std::uint64_t chunks =
      std::max<std::uint64_t>(1, (bytes + params_.rpc_chunk_bytes - 1) /
                                     params_.rpc_chunk_bytes);
  SimTime done = open_done;
  std::uint64_t remaining = bytes;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t chunk = std::min(remaining, params_.rpc_chunk_bytes);
    remaining -= chunk;
    auto& lane = oss_[next_stripe_++ % oss_.size()];
    const double xfer_s = to_seconds(params_.per_rpc) +
                          static_cast<double>(chunk) / params_.oss_bytes_per_sec;
    done = std::max(done, lane.reserve(open_done, seconds(xfer_s * noise)));
  }
  return done;
}

void LustreFileSystem::reset() {
  mds_.reset();
  for (auto& lane : oss_) lane.reset();
  next_stripe_ = 0;
}

// ---------------------------------------------------------------------------
// MountTable

void MountTable::mount(std::string prefix, FileSystem* filesystem) {
  check(filesystem != nullptr, "MountTable::mount null filesystem");
  mounts_.emplace_back(std::move(prefix), filesystem);
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

FileSystem* MountTable::resolve(std::string_view path) const {
  for (const auto& [prefix, filesystem] : mounts_) {
    if (path.starts_with(prefix)) return filesystem;
  }
  return nullptr;
}

bool MountTable::on_shared_filesystem(std::string_view path) const {
  const FileSystem* filesystem = resolve(path);
  return filesystem != nullptr && filesystem->is_shared();
}

// ---------------------------------------------------------------------------
// FileAccess

void FileAccess::install_redirect(NodeId node, std::string from_prefix,
                                  std::string to_prefix) {
  redirects_[node].emplace_back(std::move(from_prefix), std::move(to_prefix));
}

void FileAccess::clear_redirects() { redirects_.clear(); }

std::string FileAccess::redirected_path(NodeId node,
                                        const std::string& path) const {
  const auto it = redirects_.find(node);
  if (it == redirects_.end()) return path;
  for (const auto& [from, to] : it->second) {
    if (path.starts_with(from)) return to + path.substr(from.size());
  }
  return path;
}

SimTime FileAccess::open_and_read(NodeId client, const std::string& path,
                                  std::uint64_t bytes) {
  const std::string actual = redirected_path(client, path);
  const NodeKey key{client, actual};
  if (page_cache_.contains(key)) return sim_.now();

  FileSystem* filesystem = mounts_.resolve(actual);
  check(filesystem != nullptr, "open_and_read on unmounted path");
  const SimTime done = filesystem->read(client, actual, bytes);
  page_cache_.insert(key);
  return done;
}

void FileAccess::populate_local(NodeId node, const std::string& path) {
  page_cache_.insert(NodeKey{node, path});
}

void FileAccess::reset() {
  redirects_.clear();
  page_cache_.clear();
}

}  // namespace petastat::fs
