// Point-to-point transfer model with per-node NIC serialization.
//
// A transfer of B bytes from src to dst costs:
//   tx  = B / min(nic_rate, link_rate)   occupying src's NIC
//   rx  = same serialization occupying dst's NIC (cut-through overlapped)
//   latency = link latency + per-message overhead
// Contention arises naturally: many children sending to one TBON parent
// queue on the parent's NIC, which is exactly the congestion mechanism the
// paper blames for linear merge scaling with full-job bit vectors (Sec. V).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"
#include "machine/machine.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace petastat::net {

struct LinkParams {
  SimTime latency = 10 * kMicrosecond;
  double bytes_per_sec = 1.0e9;
};

/// Link parameters per tier pair plus NIC rates per role.
struct NetworkParams {
  LinkParams fe_to_login;
  LinkParams login_to_login;
  LinkParams login_to_io;      // BG/L functional 1GbE
  LinkParams io_to_compute;    // BG/L collective network
  LinkParams compute_fabric;   // cluster interconnect (IB on Atlas)
  LinkParams fe_to_compute;

  double frontend_nic_bytes_per_sec = 1.0e9;
  double login_nic_bytes_per_sec = 1.0e9;
  double io_nic_bytes_per_sec = 1.0e9;
  double compute_nic_bytes_per_sec = 1.0e9;

  /// Fixed software overhead per message (syscalls, MRNet framing).
  SimTime per_message_overhead = 25 * kMicrosecond;
};

/// Default parameters for a machine preset.
[[nodiscard]] NetworkParams default_network_params(
    const machine::MachineConfig& machine);

/// Link parameters for a transfer between `a` and `b` (by node role pair).
/// Shared formulation: the simulated Network and the analytic
/// plan::PhasePredictor both price transfers through these two functions.
[[nodiscard]] const LinkParams& link_between(const NetworkParams& params,
                                             NodeId a, NodeId b);

/// NIC serialization rate of node `n`.
[[nodiscard]] double nic_rate(const NetworkParams& params, NodeId n);

/// Effective serialization rate of one transfer (min of both NICs and the
/// link).
[[nodiscard]] double transfer_rate(const NetworkParams& params, NodeId src,
                                   NodeId dst);

class Network {
 public:
  Network(sim::Simulator& simulator, const machine::MachineConfig& machine,
          NetworkParams params);

  /// Reserves NIC time on both endpoints and returns the delivery time.
  SimTime transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// As transfer(), and runs `on_delivered` at the delivery time.
  SimTime transfer_async(NodeId src, NodeId dst, std::uint64_t bytes,
                         sim::EventCallback on_delivered);

  /// Earliest time the node's NIC frees up (diagnostics).
  [[nodiscard]] SimTime nic_free_at(NodeId node) const;

  [[nodiscard]] std::uint64_t total_bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }

  void reset();

  [[nodiscard]] const NetworkParams& params() const { return params_; }

 private:
  sim::SerialDevice& nic(NodeId n);

  sim::Simulator& sim_;
  machine::MachineConfig machine_;
  NetworkParams params_;
  std::unordered_map<NodeId, sim::SerialDevice> nics_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace petastat::net
