// Switch-graph transfer model with per-link serialization.
//
// The machine's interconnect is a small graph of switches; hosts hang off
// switches via per-role attach rules (closed-form, so 106,496 compute nodes
// never materialize as vertices). A transfer resolves a deterministic route
//
//   src host --access--> switch --trunk...trunk--> switch --access--> dst
//
// and occupies *every* link device along it for `bytes / that link's rate`,
// cut-through: each hop may start once the first byte clears the previous
// one, and the flow drains end to end at the route's bottleneck rate. A
// trunk faster than the flow's bottleneck (an aggregated uplink is many
// cables) therefore carries several flows concurrently and only queues once
// its own capacity is the limit. Contention arises both at host access
// links (the old per-NIC queueing, which the paper blames for linear merge
// scaling with full-job bit vectors, Sec. V) and on shared trunks: two
// reducers on different hosts behind one oversubscribed service-leaf uplink
// queue on that uplink — the wiring effect route-aware placement must
// respect.
//
// Shared formulation: the simulated Network and the analytic
// plan::PhasePredictor both price transfers through route_between /
// bottleneck_rate / route_latency, so the planner and the simulator cannot
// drift.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/machine.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"

namespace petastat::net {

struct LinkParams {
  SimTime latency = 10 * kMicrosecond;
  double bytes_per_sec = 1.0e9;
};

/// The interconnect as a graph over switch vertices. Hosts attach implicitly:
/// each NodeRole has an AttachRule mapping host index -> switch, plus the
/// access-link class shared by that tier (the old per-role NIC rate).
class SwitchGraph {
 public:
  /// Trunk link between two switches.
  struct Edge {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    LinkParams link;
  };

  /// Closed-form host-to-switch mapping for one node tier: host `i` attaches
  /// to switch `first_switch + min(num_switches - 1, i / hosts_per_switch)`.
  struct AttachRule {
    std::uint32_t first_switch = 0;
    std::uint32_t num_switches = 1;
    std::uint32_t hosts_per_switch = 0;  // 0: every host on first_switch
    LinkParams access;
  };

  static constexpr std::uint32_t kNoEdge = 0xffffffffu;
  /// Device keys below this value are trunk-edge indices; at or above, access
  /// links keyed as ((role + 1) << 32) | host_index — one shared half-duplex
  /// device per host, matching the old per-host NIC.
  static constexpr std::uint64_t kAccessDeviceBase = 1ull << 32;

  [[nodiscard]] static std::uint64_t access_device(NodeId node) {
    return ((static_cast<std::uint64_t>(machine::node_role(node)) + 1) << 32) |
           machine::node_index(node);
  }

  std::uint32_t add_switch(std::string name);
  void add_edge(std::uint32_t a, std::uint32_t b, LinkParams link);
  void set_attach_rule(machine::NodeRole role, AttachRule rule);
  void set_per_message_overhead(SimTime overhead) { overhead_ = overhead; }

  /// Builds the all-pairs shortest-path tables. Must be called once, after
  /// the last add_edge and before any routing query.
  void seal();

  [[nodiscard]] bool sealed() const { return sealed_; }
  [[nodiscard]] std::uint32_t num_switches() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  [[nodiscard]] const std::string& switch_name(std::uint32_t s) const {
    return names_[s];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const AttachRule& attach_rule(machine::NodeRole role) const {
    return attach_[static_cast<std::size_t>(role)];
  }
  [[nodiscard]] SimTime per_message_overhead() const { return overhead_; }

  /// Switch the node's access link lands on.
  [[nodiscard]] std::uint32_t switch_of(NodeId node) const;

  /// Trunk edge ids from switch `a` to switch `b`, in travel order (empty
  /// when a == b). Symmetric by construction: switch_path(b, a) is the exact
  /// reverse. Fails if the switches are disconnected.
  [[nodiscard]] std::vector<std::uint32_t> switch_path(std::uint32_t a,
                                                       std::uint32_t b) const;

  /// Human-readable name for a device key ("rack3-io--gige-core",
  /// "login[5].access").
  [[nodiscard]] std::string device_name(std::uint64_t device) const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  AttachRule attach_[4];
  SimTime overhead_ = 25 * kMicrosecond;
  // parent_[root * n + u] = edge taking u one hop toward root (kNoEdge for
  // u == root or unreachable), from a BFS rooted at every switch.
  std::vector<std::uint32_t> parent_;
  bool sealed_ = false;
};

/// One hop of a resolved route: the serialization device it occupies and the
/// link class that prices it.
struct RouteHop {
  std::uint64_t device = 0;
  LinkParams link;
};
using Route = std::vector<RouteHop>;

/// Builds the switch graph for a machine from its InterconnectConfig.
/// Replaces the old default_network_params(): presets carry real wiring
/// shapes, ad hoc machines get a crossbar (every host one access link from
/// one core switch).
[[nodiscard]] SwitchGraph build_switch_graph(
    const machine::MachineConfig& machine);

/// Deterministic route for a (src, dst) pair: src access link, the trunk
/// edges between their switches, dst access link. A self-transfer occupies
/// the host's access device twice (tx + rx), like the old double NIC
/// reservation.
[[nodiscard]] Route route_between(const SwitchGraph& graph, NodeId src,
                                  NodeId dst);

/// Serialization rate of the route's slowest link.
[[nodiscard]] double bottleneck_rate(const Route& route);

/// Sum of hop propagation latencies (excludes per-message overhead).
[[nodiscard]] SimTime route_latency(const Route& route);

/// Effective rate of one transfer: bottleneck of the resolved route. Keeps
/// the old name so call sites read the same.
[[nodiscard]] double transfer_rate(const SwitchGraph& graph, NodeId src,
                                   NodeId dst);

/// Usage counters of one link device, for contention reporting. `busy` is
/// wire occupancy at the link's own rate (bytes / link rate per message),
/// so a fat aggregated trunk shows less busy time than the access links
/// feeding it for the same bytes.
struct LinkStat {
  std::uint64_t device = 0;
  std::string link;  // device_name()
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  SimTime busy = 0;
};

class Network {
 public:
  Network(sim::Simulator& simulator, SwitchGraph graph);

  /// Reserves every link device along the route and returns the delivery
  /// time.
  SimTime transfer(NodeId src, NodeId dst, std::uint64_t bytes);

  /// As transfer(), and runs `on_delivered` at the delivery time.
  SimTime transfer_async(NodeId src, NodeId dst, std::uint64_t bytes,
                         sim::EventCallback on_delivered);

  /// Earliest time the node's access link frees up (diagnostics).
  [[nodiscard]] SimTime nic_free_at(NodeId node) const;

  [[nodiscard]] std::uint64_t total_bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }

  /// Per-link usage counters for every device touched so far, sorted by
  /// device key (trunks first, then access links by tier).
  [[nodiscard]] std::vector<LinkStat> link_stats() const;

  void reset();

  [[nodiscard]] const SwitchGraph& graph() const { return graph_; }

 private:
  struct DeviceState {
    sim::SerialDevice dev;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    explicit DeviceState(sim::Simulator& s) : dev(s) {}
  };
  DeviceState& device(std::uint64_t key);

  sim::Simulator& sim_;
  SwitchGraph graph_;
  std::unordered_map<std::uint64_t, DeviceState> devices_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace petastat::net
