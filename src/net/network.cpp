#include "net/network.hpp"

#include <algorithm>

namespace petastat::net {

using machine::NodeRole;
using machine::node_role;

NetworkParams default_network_params(const machine::MachineConfig& machine) {
  NetworkParams p;
  if (machine.name == "bgl") {
    // Functional 1 GbE tree between I/O nodes and the login/service tier;
    // collective network to compute nodes; login nodes on shared GigE.
    p.login_to_io = {120 * kMicrosecond, 95.0e6};
    p.io_to_compute = {12 * kMicrosecond, 340.0e6};
    p.fe_to_login = {60 * kMicrosecond, 110.0e6};
    p.login_to_login = {55 * kMicrosecond, 110.0e6};
    p.frontend_nic_bytes_per_sec = 110.0e6;
    p.login_nic_bytes_per_sec = 110.0e6;
    p.io_nic_bytes_per_sec = 95.0e6;
    p.compute_nic_bytes_per_sec = 340.0e6;
    p.per_message_overhead = 60 * kMicrosecond;
  } else if (machine.name == "petascale") {
    p.login_to_io = {40 * kMicrosecond, 1.2e9};
    p.io_to_compute = {8 * kMicrosecond, 2.0e9};
    p.fe_to_login = {20 * kMicrosecond, 1.2e9};
    p.login_to_login = {20 * kMicrosecond, 1.2e9};
    p.frontend_nic_bytes_per_sec = 1.2e9;
    p.login_nic_bytes_per_sec = 1.2e9;
    p.io_nic_bytes_per_sec = 1.2e9;
    p.compute_nic_bytes_per_sec = 2.0e9;
    p.per_message_overhead = 20 * kMicrosecond;
  } else {
    // Atlas: DDR Infiniband everywhere; front end is a login node of the
    // cluster and reaches compute nodes over IB.
    p.compute_fabric = {5 * kMicrosecond, 1.4e9};
    p.fe_to_compute = {8 * kMicrosecond, 1.1e9};
    p.fe_to_login = {8 * kMicrosecond, 1.1e9};
    p.login_to_login = {8 * kMicrosecond, 1.1e9};
    p.frontend_nic_bytes_per_sec = 1.1e9;
    p.login_nic_bytes_per_sec = 1.1e9;
    p.compute_nic_bytes_per_sec = 1.4e9;
    p.per_message_overhead = 30 * kMicrosecond;
  }
  return p;
}

const LinkParams& link_between(const NetworkParams& params, NodeId a,
                               NodeId b) {
  const NodeRole ra = node_role(a);
  const NodeRole rb = node_role(b);
  const auto pair_has = [&](NodeRole x, NodeRole y) {
    return (ra == x && rb == y) || (ra == y && rb == x);
  };
  if (pair_has(NodeRole::kFrontEnd, NodeRole::kLogin)) return params.fe_to_login;
  if (pair_has(NodeRole::kLogin, NodeRole::kLogin)) return params.login_to_login;
  if (pair_has(NodeRole::kLogin, NodeRole::kIo)) return params.login_to_io;
  if (pair_has(NodeRole::kFrontEnd, NodeRole::kIo)) return params.login_to_io;
  if (pair_has(NodeRole::kIo, NodeRole::kCompute)) return params.io_to_compute;
  if (pair_has(NodeRole::kFrontEnd, NodeRole::kCompute)) return params.fe_to_compute;
  if (pair_has(NodeRole::kLogin, NodeRole::kCompute)) return params.fe_to_compute;
  return params.compute_fabric;
}

double nic_rate(const NetworkParams& params, NodeId n) {
  switch (node_role(n)) {
    case NodeRole::kFrontEnd: return params.frontend_nic_bytes_per_sec;
    case NodeRole::kLogin: return params.login_nic_bytes_per_sec;
    case NodeRole::kIo: return params.io_nic_bytes_per_sec;
    case NodeRole::kCompute: return params.compute_nic_bytes_per_sec;
  }
  return params.compute_nic_bytes_per_sec;
}

double transfer_rate(const NetworkParams& params, NodeId src, NodeId dst) {
  return std::min({nic_rate(params, src), nic_rate(params, dst),
                   link_between(params, src, dst).bytes_per_sec});
}

Network::Network(sim::Simulator& simulator, const machine::MachineConfig& machine,
                 NetworkParams params)
    : sim_(simulator), machine_(machine), params_(params) {}

sim::SerialDevice& Network::nic(NodeId n) {
  auto it = nics_.find(n);
  if (it == nics_.end()) {
    it = nics_.emplace(n, sim::SerialDevice(sim_)).first;
  }
  return it->second;
}

SimTime Network::transfer(NodeId src, NodeId dst, std::uint64_t bytes) {
  const LinkParams& link = link_between(params_, src, dst);
  const double rate = transfer_rate(params_, src, dst);
  const auto ser = static_cast<SimTime>(static_cast<double>(bytes) / rate * 1e9);

  // Transmit occupies the source NIC; cut-through reception occupies the
  // destination NIC starting when the first byte lands.
  const SimTime tx_end = nic(src).reserve(sim_.now(), ser);
  const SimTime first_byte_arrives =
      tx_end - ser + link.latency + params_.per_message_overhead;
  const SimTime rx_end = nic(dst).reserve(first_byte_arrives, ser);
  const SimTime done = std::max(tx_end + link.latency, rx_end);

  bytes_moved_ += bytes;
  ++messages_;
  return done;
}

SimTime Network::transfer_async(NodeId src, NodeId dst, std::uint64_t bytes,
                                sim::EventCallback on_delivered) {
  const SimTime done = transfer(src, dst, bytes);
  sim_.schedule_at(done, std::move(on_delivered));
  return done;
}

SimTime Network::nic_free_at(NodeId node) const {
  auto it = nics_.find(node);
  return it == nics_.end() ? SimTime{0} : it->second.free_at();
}

void Network::reset() {
  nics_.clear();
  bytes_moved_ = 0;
  messages_ = 0;
}

}  // namespace petastat::net
