#include "net/network.hpp"

#include <algorithm>
#include <deque>
#include <utility>

namespace petastat::net {

using machine::InterconnectShape;
using machine::NodeRole;
using machine::node_index;
using machine::node_role;

std::uint32_t SwitchGraph::add_switch(std::string name) {
  check(!sealed_, "add_switch after seal()");
  names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void SwitchGraph::add_edge(std::uint32_t a, std::uint32_t b, LinkParams link) {
  check(!sealed_, "add_edge after seal()");
  check(a != b, "switch self-loop");
  check(a < names_.size() && b < names_.size(), "edge endpoint out of range");
  edges_.push_back(Edge{a, b, link});
}

void SwitchGraph::set_attach_rule(NodeRole role, AttachRule rule) {
  check(rule.first_switch + rule.num_switches <= names_.size(),
        "attach rule past the last switch");
  check(rule.num_switches >= 1, "attach rule needs at least one switch");
  attach_[static_cast<std::size_t>(role)] = rule;
}

void SwitchGraph::seal() {
  check(!sealed_, "seal() twice");
  const std::uint32_t n = num_switches();
  check(n > 0, "switch graph has no switches");

  // Incident-edge lists in insertion order keep BFS tie-breaks deterministic.
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    incident[edges_[e].a].push_back(e);
    incident[edges_[e].b].push_back(e);
  }

  parent_.assign(static_cast<std::size_t>(n) * n, kNoEdge);
  std::vector<std::uint8_t> seen(n);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t root = 0; root < n; ++root) {
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    seen[root] = 1;
    queue.assign(1, root);
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop_front();
      for (const std::uint32_t e : incident[u]) {
        const std::uint32_t v = edges_[e].a == u ? edges_[e].b : edges_[e].a;
        if (seen[v]) continue;
        seen[v] = 1;
        parent_[static_cast<std::size_t>(root) * n + v] = e;
        queue.push_back(v);
      }
    }
  }
  sealed_ = true;
}

std::uint32_t SwitchGraph::switch_of(NodeId node) const {
  const AttachRule& rule = attach_rule(node_role(node));
  if (rule.hosts_per_switch == 0 || rule.num_switches == 1) {
    return rule.first_switch;
  }
  const std::uint32_t slot =
      std::min(rule.num_switches - 1, node_index(node) / rule.hosts_per_switch);
  return rule.first_switch + slot;
}

std::vector<std::uint32_t> SwitchGraph::switch_path(std::uint32_t a,
                                                    std::uint32_t b) const {
  check(sealed_, "switch_path before seal()");
  std::vector<std::uint32_t> path;
  if (a == b) return path;
  // Walking the BFS tree rooted at min(a, b) makes path(b, a) the exact
  // reverse of path(a, b) regardless of equal-length alternatives.
  const std::uint32_t root = std::min(a, b);
  const std::uint32_t n = num_switches();
  std::uint32_t u = std::max(a, b);
  while (u != root) {
    const std::uint32_t e = parent_[static_cast<std::size_t>(root) * n + u];
    check(e != kNoEdge, "switch graph is disconnected");
    path.push_back(e);
    u = edges_[e].a == u ? edges_[e].b : edges_[e].a;
  }
  // The chain runs max -> root; flip when the caller travels root -> max.
  if (a == root) std::reverse(path.begin(), path.end());
  return path;
}

std::string SwitchGraph::device_name(std::uint64_t device) const {
  if (device >= kAccessDeviceBase) {
    const auto role = static_cast<NodeRole>((device >> 32) - 1);
    const auto index = static_cast<std::uint32_t>(device & 0xffffffffu);
    return std::string(machine::node_role_name(role)) + "[" +
           std::to_string(index) + "].access";
  }
  const Edge& e = edges_[device];
  return names_[e.a] + "--" + names_[e.b];
}

namespace {

LinkParams to_link(const machine::LinkSpec& spec) {
  return LinkParams{spec.latency, spec.bytes_per_sec};
}

std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

void build_crossbar(const machine::MachineConfig& machine, SwitchGraph& g) {
  const machine::InterconnectConfig& ic = machine.interconnect;
  const std::uint32_t core = g.add_switch("core");
  g.set_attach_rule(NodeRole::kFrontEnd, {core, 1, 0, to_link(ic.frontend_access)});
  g.set_attach_rule(NodeRole::kLogin, {core, 1, 0, to_link(ic.login_access)});
  g.set_attach_rule(NodeRole::kIo, {core, 1, 0, to_link(ic.io_access)});
  g.set_attach_rule(NodeRole::kCompute, {core, 1, 0, to_link(ic.compute_access)});
}

void build_fat_tree(const machine::MachineConfig& machine, SwitchGraph& g) {
  const machine::InterconnectConfig& ic = machine.interconnect;
  const bool io_tier =
      machine.daemon_placement == machine::DaemonPlacement::kPerIoNode;
  const std::uint32_t data_hosts =
      std::max<std::uint32_t>(1, io_tier ? machine.io_nodes : machine.compute_nodes);
  const std::uint32_t hosts_per_leaf = std::max<std::uint32_t>(1, ic.hosts_per_leaf);
  const std::uint32_t num_leaves = ceil_div(data_hosts, hosts_per_leaf);
  const std::uint32_t logins = std::max<std::uint32_t>(1, machine.login_nodes);
  const std::uint32_t logins_per_svc =
      std::max<std::uint32_t>(1, ic.logins_per_service_leaf);
  const std::uint32_t num_svc = ceil_div(logins, logins_per_svc);

  const std::uint32_t core = g.add_switch("core");
  const std::uint32_t first_leaf = g.num_switches();
  for (std::uint32_t i = 0; i < num_leaves; ++i) {
    g.add_switch("leaf" + std::to_string(i));
  }
  const std::uint32_t first_svc = g.num_switches();
  for (std::uint32_t i = 0; i < num_svc; ++i) {
    g.add_switch("svc-leaf" + std::to_string(i));
  }

  if (ic.leaves_per_agg > 0) {
    // 3-level: leaves -> aggregation switches -> core.
    const std::uint32_t num_aggs = ceil_div(num_leaves, ic.leaves_per_agg);
    const std::uint32_t first_agg = g.num_switches();
    for (std::uint32_t i = 0; i < num_aggs; ++i) {
      g.add_switch("agg" + std::to_string(i));
    }
    for (std::uint32_t i = 0; i < num_aggs; ++i) {
      g.add_edge(first_agg + i, core, to_link(ic.agg_uplink));
    }
    for (std::uint32_t i = 0; i < num_leaves; ++i) {
      g.add_edge(first_leaf + i, first_agg + i / ic.leaves_per_agg,
                 to_link(ic.leaf_uplink));
    }
    for (std::uint32_t i = 0; i < num_svc; ++i) {
      g.add_edge(first_svc + i, first_agg + (i * num_aggs) / num_svc,
                 to_link(ic.service_uplink));
    }
  } else {
    // 2-level: every leaf straight into the core.
    for (std::uint32_t i = 0; i < num_leaves; ++i) {
      g.add_edge(first_leaf + i, core, to_link(ic.leaf_uplink));
    }
    for (std::uint32_t i = 0; i < num_svc; ++i) {
      g.add_edge(first_svc + i, core, to_link(ic.service_uplink));
    }
  }

  // The front end rides service leaf 0 beside the first logins.
  g.set_attach_rule(NodeRole::kFrontEnd,
                    {first_svc, 1, 0, to_link(ic.frontend_access)});
  g.set_attach_rule(NodeRole::kLogin,
                    {first_svc, num_svc, logins_per_svc, to_link(ic.login_access)});
  if (io_tier) {
    g.set_attach_rule(NodeRole::kIo, {first_leaf, num_leaves, hosts_per_leaf,
                                      to_link(ic.io_access)});
    // Compute nodes block-attach under the same leaves as their I/O nodes.
    const std::uint32_t compute_per_leaf = ceil_div(
        std::max<std::uint32_t>(1, machine.compute_nodes), num_leaves);
    g.set_attach_rule(NodeRole::kCompute, {first_leaf, num_leaves,
                                           compute_per_leaf,
                                           to_link(ic.compute_access)});
  } else {
    g.set_attach_rule(NodeRole::kCompute, {first_leaf, num_leaves,
                                           hosts_per_leaf,
                                           to_link(ic.compute_access)});
    g.set_attach_rule(NodeRole::kIo, {core, 1, 0, to_link(ic.io_access)});
  }
}

void build_io_torus_tiers(const machine::MachineConfig& machine,
                          SwitchGraph& g) {
  const machine::InterconnectConfig& ic = machine.interconnect;
  const std::uint32_t io_per_rack =
      std::max<std::uint32_t>(1, ic.io_nodes_per_rack);
  const std::uint32_t racks =
      ceil_div(std::max<std::uint32_t>(1, machine.io_nodes), io_per_rack);

  const std::uint32_t core = g.add_switch("gige-core");
  const std::uint32_t svc = g.add_switch("svc-leaf");
  g.add_edge(svc, core, to_link(ic.service_uplink));
  const std::uint32_t first_io = g.num_switches();
  for (std::uint32_t r = 0; r < racks; ++r) {
    g.add_switch("rack" + std::to_string(r) + "-io");
    g.add_edge(first_io + r, core, to_link(ic.rack_uplink));
  }
  const std::uint32_t first_coll = g.num_switches();
  for (std::uint32_t r = 0; r < racks; ++r) {
    g.add_switch("rack" + std::to_string(r) + "-coll");
    g.add_edge(first_coll + r, first_io + r, to_link(ic.collective_link));
  }
  const std::uint32_t torus = g.add_switch("torus");
  for (std::uint32_t r = 0; r < racks; ++r) {
    g.add_edge(first_coll + r, torus, to_link(ic.torus_link));
  }

  g.set_attach_rule(NodeRole::kFrontEnd, {svc, 1, 0, to_link(ic.frontend_access)});
  g.set_attach_rule(NodeRole::kLogin, {svc, 1, 0, to_link(ic.login_access)});
  g.set_attach_rule(NodeRole::kIo,
                    {first_io, racks, io_per_rack, to_link(ic.io_access)});
  const std::uint32_t compute_per_rack =
      ceil_div(std::max<std::uint32_t>(1, machine.compute_nodes), racks);
  g.set_attach_rule(NodeRole::kCompute, {first_coll, racks, compute_per_rack,
                                         to_link(ic.compute_access)});
}

}  // namespace

SwitchGraph build_switch_graph(const machine::MachineConfig& machine) {
  SwitchGraph g;
  g.set_per_message_overhead(machine.interconnect.per_message_overhead);
  switch (machine.interconnect.shape) {
    case InterconnectShape::kCrossbar:
      build_crossbar(machine, g);
      break;
    case InterconnectShape::kFatTree:
      build_fat_tree(machine, g);
      break;
    case InterconnectShape::kIoTorusTiers:
      build_io_torus_tiers(machine, g);
      break;
  }
  g.seal();
  return g;
}

Route route_between(const SwitchGraph& graph, NodeId src, NodeId dst) {
  Route route;
  const SwitchGraph::AttachRule& src_rule = graph.attach_rule(node_role(src));
  const SwitchGraph::AttachRule& dst_rule = graph.attach_rule(node_role(dst));
  route.push_back({SwitchGraph::access_device(src), src_rule.access});
  if (src != dst) {
    for (const std::uint32_t e :
         graph.switch_path(graph.switch_of(src), graph.switch_of(dst))) {
      route.push_back({e, graph.edges()[e].link});
    }
  }
  // Self-transfers occupy the host's access device twice (tx + rx).
  route.push_back({SwitchGraph::access_device(dst), dst_rule.access});
  return route;
}

double bottleneck_rate(const Route& route) {
  double rate = route.empty() ? 1.0 : route.front().link.bytes_per_sec;
  for (const RouteHop& hop : route) {
    rate = std::min(rate, hop.link.bytes_per_sec);
  }
  return rate;
}

SimTime route_latency(const Route& route) {
  SimTime total = 0;
  for (const RouteHop& hop : route) total += hop.link.latency;
  return total;
}

double transfer_rate(const SwitchGraph& graph, NodeId src, NodeId dst) {
  return bottleneck_rate(route_between(graph, src, dst));
}

Network::Network(sim::Simulator& simulator, SwitchGraph graph)
    : sim_(simulator), graph_(std::move(graph)) {
  check(graph_.sealed(), "Network needs a sealed SwitchGraph");
}

Network::DeviceState& Network::device(std::uint64_t key) {
  auto it = devices_.find(key);
  if (it == devices_.end()) {
    it = devices_.emplace(key, DeviceState(sim_)).first;
  }
  return it->second;
}

SimTime Network::transfer(NodeId src, NodeId dst, std::uint64_t bytes) {
  const Route route = route_between(graph_, src, dst);
  const double rate = bottleneck_rate(route);
  const auto ser = static_cast<SimTime>(static_cast<double>(bytes) / rate * 1e9);

  // Cut-through: hop i+1 may start once the first byte clears hop i (plus
  // propagation); the per-message software overhead is charged once, at
  // injection. Each link is occupied for bytes / its OWN rate — a trunk
  // faster than the flow's bottleneck (an aggregated uplink is many cables)
  // carries several such flows concurrently and only queues once its own
  // capacity is the limit — while the flow itself still drains at the
  // bottleneck rate (start + ser).
  SimTime first_byte = sim_.now();
  SimTime last_byte = first_byte;
  for (std::size_t i = 0; i < route.size(); ++i) {
    DeviceState& d = device(route[i].device);
    const auto occupancy = static_cast<SimTime>(
        static_cast<double>(bytes) / route[i].link.bytes_per_sec * 1e9);
    const SimTime start = d.dev.reserve(first_byte, occupancy) - occupancy;
    last_byte = start + ser;
    d.bytes += bytes;
    ++d.messages;
    first_byte = start + route[i].link.latency +
                 (i == 0 ? graph_.per_message_overhead() : SimTime{0});
  }
  const SimTime done = last_byte + route.back().link.latency;

  bytes_moved_ += bytes;
  ++messages_;
  return done;
}

SimTime Network::transfer_async(NodeId src, NodeId dst, std::uint64_t bytes,
                                sim::EventCallback on_delivered) {
  const SimTime done = transfer(src, dst, bytes);
  sim_.schedule_at(done, std::move(on_delivered));
  return done;
}

SimTime Network::nic_free_at(NodeId node) const {
  const auto it = devices_.find(SwitchGraph::access_device(node));
  return it == devices_.end() ? SimTime{0} : it->second.dev.free_at();
}

std::vector<LinkStat> Network::link_stats() const {
  std::vector<LinkStat> stats;
  stats.reserve(devices_.size());
  for (const auto& [key, state] : devices_) {
    LinkStat s;
    s.device = key;
    s.link = graph_.device_name(key);
    s.bytes = state.bytes;
    s.messages = state.messages;
    s.busy = state.dev.busy_time();
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const LinkStat& a, const LinkStat& b) { return a.device < b.device; });
  return stats;
}

void Network::reset() {
  devices_.clear();
  bytes_moved_ = 0;
  messages_ = 0;
}

}  // namespace petastat::net
