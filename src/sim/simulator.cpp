#include "sim/simulator.hpp"

namespace petastat::sim {

EventId Simulator::schedule_at(SimTime t, EventCallback cb) {
  check(t >= now_, "Simulator::schedule_at in the past");
  check(static_cast<bool>(cb), "Simulator::schedule_at with empty callback");
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(cb)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: mark and skip when popped. The set stays small since
  // entries are erased when their event surfaces.
  return cancelled_.insert(id).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry top = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = top.time;
    ++executed_;
    top.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Peek past cancelled entries without executing.
    const Entry& top = queue_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    step();
    ++n;
  }
  // If the queue drained before the deadline, the clock stays at the last
  // executed event (never advanced past what actually happened).
  return n;
}

void Simulator::reset() {
  now_ = 0;
  executed_ = 0;
  next_id_ = 1;
  cancelled_.clear();
  while (!queue_.empty()) queue_.pop();
}

}  // namespace petastat::sim
