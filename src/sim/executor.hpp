// Execution-engine seam between simulator callbacks and real computation.
//
// The discrete-event simulator is single-threaded and must stay
// deterministic: every modelled duration is computed arithmetically from the
// cost model, never from wall-clock measurement. But the *real* work the
// simulation carries along (prefix-tree merges, trace synthesis, remaps) has
// no effect on virtual time — so it can run on worker threads while the
// event loop continues, as long as no event observes a result before the
// virtual timestamp at which the model says it exists.
//
// The contract event handlers follow:
//   1. compute modelled costs inline (on the simulator thread, in event
//      order — this fixes all virtual timestamps up front);
//   2. submit the real computation via run() (any worker) or
//      Strand::run() (serialized chain, e.g. one TBON proc's accumulator);
//   3. schedule a simulator event at the modelled completion time whose
//      callback first wait()s on the task, then consumes the result.
// Because submission order, strand order, and wait points are all decided by
// the deterministic event loop, results are bit-identical to a serial run.
//
// An Executor constructed with threads <= 1 has no pool: run() executes the
// work immediately on the calling thread and returns a null (already-done)
// task, which is exactly the historical serial behaviour.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"

namespace petastat::sim {

class Executor {
 public:
  using TaskRef = ThreadPool::TaskRef;  // nullptr == already done (inline)

  /// threads <= 1: inline (serial) mode, no worker threads are spawned.
  explicit Executor(unsigned threads = 1);
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }
  [[nodiscard]] unsigned thread_count() const {
    return pool_ ? pool_->thread_count() : 1;
  }

  /// Submits independent work to any worker (inline mode: runs it now).
  TaskRef run(std::function<void()> work);

  /// Blocks until `task`'s side effects are visible. Null is a no-op.
  void wait(const TaskRef& task);

  /// Blocks until everything submitted so far (including strand chains) has
  /// finished.
  void wait_all();

  /// A FIFO chain of work items: items of one strand never run concurrently
  /// with each other (they share mutable state, e.g. a reduction
  /// accumulator), but different strands run in parallel. Submission order
  /// is execution order. The queue state is co-owned by the in-flight pump
  /// job, so a Strand may be destroyed as soon as its last item's wait()
  /// returns — the pump's final empty-check does not touch the Strand
  /// object. The Executor must outlive the pump (wait_all()/~Executor
  /// guarantee it).
  class Strand {
   public:
    explicit Strand(Executor& executor)
        : executor_(executor), queue_(std::make_shared<Queue>()) {}
    Strand(const Strand&) = delete;
    Strand& operator=(const Strand&) = delete;

    TaskRef run(std::function<void()> work);

   private:
    struct Queue {
      std::mutex mutex;
      std::deque<TaskRef> pending;
      bool running = false;
    };
    static void pump(ThreadPool& pool, const std::shared_ptr<Queue>& queue);

    Executor& executor_;
    std::shared_ptr<Queue> queue_;
  };

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace petastat::sim
