#include "sim/executor.hpp"

namespace petastat::sim {

Executor::Executor(unsigned threads)
    : pool_(threads > 1 ? std::make_unique<ThreadPool>(threads) : nullptr) {}

Executor::~Executor() {
  if (pool_) pool_->wait_idle();
}

Executor::TaskRef Executor::run(std::function<void()> work) {
  if (!pool_) {
    work();
    return nullptr;
  }
  TaskRef task = ThreadPool::package(std::move(work));
  pool_->post(task);
  return task;
}

void Executor::wait(const TaskRef& task) {
  if (pool_) pool_->wait(task);
}

void Executor::wait_all() {
  if (pool_) pool_->wait_idle();
}

Executor::TaskRef Executor::Strand::run(std::function<void()> work) {
  if (!executor_.pool_) {
    work();
    return nullptr;
  }
  TaskRef task = ThreadPool::package(std::move(work));
  bool start_pump = false;
  {
    std::lock_guard<std::mutex> lock(queue_->mutex);
    queue_->pending.push_back(task);
    if (!queue_->running) {
      queue_->running = true;
      start_pump = true;
    }
  }
  if (start_pump) {
    ThreadPool& pool = *executor_.pool_;
    executor_.pool_->post_job(
        [&pool, queue = queue_]() { pump(pool, queue); });
  }
  return task;
}

void Executor::Strand::pump(ThreadPool& pool,
                            const std::shared_ptr<Queue>& queue) {
  // Drain the chain one item at a time on this worker; if new items arrive
  // while draining, keep going. The running flag guarantees at most one
  // pump per strand, which is the serialization the accumulator needs.
  // A waiter on the final item may wake (and destroy the Strand) the moment
  // execute() marks it done — before the empty-check below — which is why
  // the queue is co-owned here rather than reached through the Strand.
  while (true) {
    TaskRef next;
    {
      std::lock_guard<std::mutex> lock(queue->mutex);
      if (queue->pending.empty()) {
        queue->running = false;
        return;
      }
      next = std::move(queue->pending.front());
      queue->pending.pop_front();
    }
    pool.execute(next);
  }
}

}  // namespace petastat::sim
