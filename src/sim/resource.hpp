// Queueing resources layered over the simulator.
//
// FifoServer models a k-server FIFO station analytically: instead of one
// event per queue transition, each request computes its start time from the
// earliest-free server. This keeps event counts low even with 212,992
// clients hammering one NFS server, while producing exact FIFO queueing
// delays for deterministic service times.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace petastat::sim {

/// Statistics snapshot for a FifoServer.
struct ServerStats {
  std::uint64_t requests = 0;
  SimTime busy_time = 0;       // summed service time across servers
  SimTime total_wait = 0;      // summed queueing delay (excludes service)
  SimTime max_wait = 0;
  std::uint64_t peak_backlog = 0;  // max requests in queue+service at once

  [[nodiscard]] double mean_wait_seconds() const {
    return requests ? to_seconds(total_wait) / static_cast<double>(requests) : 0.0;
  }
};

/// k identical servers with a shared FIFO queue.
///
/// `submit(service, done)` reserves the earliest-available server, charging
/// wait = max(0, server_free - now). `done` runs at completion. The analytic
/// reservation is exact for FIFO because requests are served in submission
/// order.
class FifoServer {
 public:
  FifoServer(Simulator& simulator, unsigned num_servers);

  /// Enqueues a request needing `service` time. Returns the completion time.
  SimTime submit(SimTime service, EventCallback done);

  /// Completion time if a request were submitted now (no side effects).
  [[nodiscard]] SimTime probe(SimTime service) const;

  /// Number of requests currently queued or in service.
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] unsigned num_servers() const {
    return static_cast<unsigned>(free_at_.size());
  }

  /// Forgets all reservations (between benchmark repetitions).
  void reset();

 private:
  /// Index of the server that frees up soonest.
  [[nodiscard]] std::size_t earliest() const;

  Simulator& sim_;
  std::vector<SimTime> free_at_;
  std::uint64_t outstanding_ = 0;
  ServerStats stats_;
};

/// A single-capacity token used to serialize access to a device (e.g. a
/// node's NIC). Pure reservation calculus — no callbacks.
class SerialDevice {
 public:
  explicit SerialDevice(Simulator& simulator) : sim_(simulator) {}

  /// Occupies the device for `duration` starting no earlier than `earliest`;
  /// returns the completion time.
  SimTime reserve(SimTime earliest, SimTime duration) {
    const SimTime start = std::max({earliest, sim_.now(), free_at_});
    free_at_ = start + duration;
    busy_ += duration;
    return free_at_;
  }

  [[nodiscard]] SimTime free_at() const { return free_at_; }
  [[nodiscard]] SimTime busy_time() const { return busy_; }
  void reset() { free_at_ = 0; busy_ = 0; }

 private:
  Simulator& sim_;
  SimTime free_at_ = 0;
  SimTime busy_ = 0;
};

}  // namespace petastat::sim
