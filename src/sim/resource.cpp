#include "sim/resource.hpp"

#include <algorithm>

namespace petastat::sim {

FifoServer::FifoServer(Simulator& simulator, unsigned num_servers)
    : sim_(simulator), free_at_(std::max(1u, num_servers), SimTime{0}) {}

std::size_t FifoServer::earliest() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < free_at_.size(); ++i) {
    if (free_at_[i] < free_at_[best]) best = i;
  }
  return best;
}

SimTime FifoServer::probe(SimTime service) const {
  const SimTime free = free_at_[earliest()];
  const SimTime start = std::max(free, sim_.now());
  return start + service;
}

SimTime FifoServer::submit(SimTime service, EventCallback done) {
  const std::size_t idx = earliest();
  const SimTime start = std::max(free_at_[idx], sim_.now());
  const SimTime wait = start - sim_.now();
  const SimTime completion = start + service;
  free_at_[idx] = completion;

  ++stats_.requests;
  stats_.busy_time += service;
  stats_.total_wait += wait;
  stats_.max_wait = std::max(stats_.max_wait, wait);
  ++outstanding_;
  stats_.peak_backlog = std::max(stats_.peak_backlog, outstanding_);

  sim_.schedule_at(completion, [this, done = std::move(done)]() {
    --outstanding_;
    if (done) done();
  });
  return completion;
}

void FifoServer::reset() {
  std::fill(free_at_.begin(), free_at_.end(), SimTime{0});
  outstanding_ = 0;
  stats_ = ServerStats{};
}

}  // namespace petastat::sim
