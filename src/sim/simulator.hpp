// Discrete-event simulation core. A single-threaded event queue with a
// nanosecond clock and stable FIFO ordering among simultaneous events.
//
// Every environment interaction the paper measures (daemon launch, TBON
// message delivery, file-server service) is an event scheduled here; model
// components compute durations and the simulator advances virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace petastat::sim {

using EventCallback = std::function<void()>;
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Determinism contract: events at equal timestamps run in scheduling order
/// (stable sequence numbers); callbacks may schedule further events at or
/// after the current time. Scheduling in the past is a programming error.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` to run at absolute time `t` (>= now()).
  EventId schedule_at(SimTime t, EventCallback cb);

  /// Schedules `cb` to run `dt` after the current time.
  EventId schedule_in(SimTime dt, EventCallback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled (cancellation of completed events is not an error: timeouts
  /// race with completions by design).
  bool cancel(EventId id);

  /// Runs the next event if any. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= deadline; the clock ends at
  /// min(deadline, time of last event) and never exceeds the deadline.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] std::size_t pending() const {
    return queue_.size() - cancelled_.size();
  }
  [[nodiscard]] bool idle() const { return pending() == 0; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Resets clock and queue; useful between benchmark repetitions.
  void reset();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventCallback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace petastat::sim
