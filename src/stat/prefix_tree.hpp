// Call-graph prefix trees (Sec. II, Fig. 1).
//
// STAT merges stack traces into a prefix tree whose edges are labelled with
// the set of tasks whose trace follows that edge. The 2D trace/space tree
// merges one sample across tasks; the 3D trace/space/time tree accumulates
// all samples. The tree is generic over the label representation:
//
//  * GlobalLabel — global task sets with dense-bit-vector wire accounting
//    (the original implementation whose linear scaling Fig. 5 exposes);
//  * HierLabel   — hierarchical daemon-local task lists with ranged wire
//    format (the Sec. V-B optimization, Fig. 7).
//
// Merges are real structural merges; serialized sizes are the real encoded
// sizes of each representation and feed the network model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "app/callpath.hpp"
#include "common/serializer.hpp"
#include "common/status.hpp"
#include "stat/hier_taskset.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {

/// Context a label needs for wire accounting (the dense format's size is a
/// function of the whole job, which is precisely its pathology).
struct LabelContext {
  std::uint32_t job_size = 0;
};

/// Original representation: a full-job task set; dense wire format.
struct GlobalLabel {
  TaskSet tasks;
  std::uint64_t visits = 0;  // total trace insertions (time dimension)

  static GlobalLabel for_task(std::uint32_t task) {
    return {TaskSet::single(task), 1};
  }

  void merge(const GlobalLabel& other) {
    tasks.union_with(other.tasks);
    visits += other.visits;
  }

  [[nodiscard]] std::uint64_t member_count() const { return tasks.count(); }

  [[nodiscard]] std::uint64_t wire_bytes(const LabelContext& ctx) const {
    // Dense bit vector sized for the whole job plus the visit counter.
    return tasks.dense_wire_bytes(ctx.job_size) + 4;
  }
  void encode(ByteSink& sink, const LabelContext& ctx) const {
    tasks.encode_dense(sink, ctx.job_size);
    sink.put_u32(static_cast<std::uint32_t>(visits));
  }
  static Result<GlobalLabel> decode(ByteSource& source, const LabelContext& ctx) {
    auto tasks = TaskSet::decode_dense(source, ctx.job_size);
    if (!tasks.is_ok()) return tasks.status();
    std::uint32_t visits = 0;
    if (auto s = source.get_u32(visits); !s.is_ok()) return s;
    return GlobalLabel{std::move(tasks).value(), visits};
  }

  friend bool operator==(const GlobalLabel&, const GlobalLabel&) = default;
};

/// Optimized representation: subtree-local daemon task lists; ranged wire.
struct HierLabel {
  HierTaskSet tasks;
  std::uint64_t visits = 0;

  static HierLabel for_local(std::uint32_t daemon, std::uint32_t local_index) {
    return {HierTaskSet::single(daemon, local_index), 1};
  }

  void merge(const HierLabel& other) {
    tasks.merge(other.tasks);
    visits += other.visits;
  }

  [[nodiscard]] std::uint64_t member_count() const { return tasks.count(); }

  // Labels are nested inside the tree's versioned envelope: body form only.
  [[nodiscard]] std::uint64_t wire_bytes(const LabelContext&) const {
    return tasks.body_wire_bytes() + 4;
  }
  void encode(ByteSink& sink, const LabelContext&) const {
    tasks.encode_body(sink);
    sink.put_u32(static_cast<std::uint32_t>(visits));
  }
  static Result<HierLabel> decode(ByteSource& source, const LabelContext&) {
    auto tasks = HierTaskSet::decode_body(source);
    if (!tasks.is_ok()) return tasks.status();
    std::uint32_t visits = 0;
    if (auto s = source.get_u32(visits); !s.is_ok()) return s;
    return HierLabel{std::move(tasks).value(), visits};
  }

  friend bool operator==(const HierLabel&, const HierLabel&) = default;
};

/// Merged call-graph prefix tree with Label-typed edge annotations.
template <typename Label>
class PrefixTree {
 public:
  struct Node {
    FrameId frame;
    Label label{};
    std::vector<Node> children;  // sorted by frame id

    [[nodiscard]] Node* find_child(FrameId f) {
      auto it = std::lower_bound(children.begin(), children.end(), f,
                                 [](const Node& n, FrameId v) {
                                   return n.frame < v;
                                 });
      return (it != children.end() && it->frame == f) ? &*it : nullptr;
    }
    [[nodiscard]] const Node* find_child(FrameId f) const {
      return const_cast<Node*>(this)->find_child(f);
    }
    Node& ensure_child(FrameId f) {
      auto it = std::lower_bound(children.begin(), children.end(), f,
                                 [](const Node& n, FrameId v) {
                                   return n.frame < v;
                                 });
      if (it != children.end() && it->frame == f) return *it;
      return *children.insert(it, Node{f, Label{}, {}});
    }
  };

  PrefixTree() { root_.frame = FrameId::invalid(); }

  /// Inserts one trace: `seed` is merged into every edge along the path.
  void insert(std::span<const FrameId> path, const Label& seed) {
    Node* node = &root_;
    for (const FrameId frame : path) {
      node = &node->ensure_child(frame);
      node->label.merge(seed);
    }
  }

  /// Real structural merge of another tree into this one.
  void merge(const PrefixTree& other) { merge_children(root_, other.root_); }

  [[nodiscard]] const Node& root() const { return root_; }
  [[nodiscard]] Node& root() { return root_; }
  [[nodiscard]] bool empty() const { return root_.children.empty(); }

  [[nodiscard]] std::size_t node_count() const { return count_nodes(root_) - 1; }
  [[nodiscard]] std::size_t edge_count() const { return node_count(); }

  /// Maximum root-to-leaf depth.
  [[nodiscard]] std::size_t depth() const { return depth_of(root_); }

  /// Total wire size: a version byte, then per node the frame name, the
  /// label, and the child count. Computed arithmetically (no buffer is
  /// built).
  [[nodiscard]] std::uint64_t wire_bytes(const app::FrameTable& frames,
                                         const LabelContext& ctx) const {
    return 1 + node_wire_bytes(root_, frames, ctx);
  }

  void encode(ByteSink& sink, const app::FrameTable& frames,
              const LabelContext& ctx) const {
    put_wire_version(sink);
    encode_node(root_, sink, frames, ctx, /*is_root=*/true);
  }
  /// Deepest tree decode() accepts. Real stacks are tens of frames; the
  /// limit only exists so crafted input exhausts the Status budget, not the
  /// call stack.
  static constexpr std::size_t kMaxDecodeDepth = 512;

  static Result<PrefixTree> decode(ByteSource& source, app::FrameTable& frames,
                                   const LabelContext& ctx) {
    if (auto s = check_wire_version(source); !s.is_ok()) return s;
    PrefixTree tree;
    if (auto s = decode_children(tree.root_, source, frames, ctx, 0);
        !s.is_ok()) {
      return s;
    }
    return tree;
  }

  /// Preorder visit: f(path_of_frames, node). Path excludes the virtual root.
  template <typename F>
  void visit(F&& f) const {
    std::vector<FrameId> path;
    visit_node(root_, path, f);
  }

  friend bool operator==(const PrefixTree& a, const PrefixTree& b) {
    return nodes_equal(a.root_, b.root_);
  }

 private:
  static bool nodes_equal(const Node& a, const Node& b) {
    if (a.frame != b.frame || !(a.label == b.label) ||
        a.children.size() != b.children.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.children.size(); ++i) {
      if (!nodes_equal(a.children[i], b.children[i])) return false;
    }
    return true;
  }

  static void merge_children(Node& into, const Node& from) {
    for (const Node& child : from.children) {
      Node& target = into.ensure_child(child.frame);
      target.label.merge(child.label);
      merge_children(target, child);
    }
  }

  static std::size_t count_nodes(const Node& node) {
    std::size_t n = 1;
    for (const auto& c : node.children) n += count_nodes(c);
    return n;
  }

  static std::size_t depth_of(const Node& node) {
    std::size_t d = 0;
    for (const auto& c : node.children) d = std::max(d, 1 + depth_of(c));
    return d;
  }

  static std::uint64_t node_wire_bytes(const Node& node,
                                       const app::FrameTable& frames,
                                       const LabelContext& ctx) {
    std::uint64_t bytes = 1;  // child count (varint, small in practice)
    for (const auto& child : node.children) {
      bytes += 1 + frames.name(child.frame).size();  // name
      bytes += child.label.wire_bytes(ctx);
      bytes += node_wire_bytes(child, frames, ctx);
    }
    return bytes;
  }

  static void encode_node(const Node& node, ByteSink& sink,
                          const app::FrameTable& frames, const LabelContext& ctx,
                          bool is_root) {
    if (!is_root) {
      sink.put_string(frames.name(node.frame));
      node.label.encode(sink, ctx);
    }
    sink.put_varint(node.children.size());
    for (const auto& child : node.children) {
      encode_node(child, sink, frames, ctx, false);
    }
  }

  static Status decode_children(Node& node, ByteSource& source,
                                app::FrameTable& frames, const LabelContext& ctx,
                                std::size_t depth) {
    if (depth > kMaxDecodeDepth) {
      return invalid_argument("prefix tree exceeds maximum decode depth");
    }
    std::uint64_t n = 0;
    if (auto s = source.get_varint(n); !s.is_ok()) return s;
    node.children.reserve(source.clamped_count(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name;
      if (auto s = source.get_string(name); !s.is_ok()) return s;
      auto label = Label::decode(source, ctx);
      if (!label.is_ok()) return label.status();
      Node& child = node.ensure_child(frames.intern(name));
      child.label.merge(label.value());
      if (auto s = decode_children(child, source, frames, ctx, depth + 1);
          !s.is_ok()) {
        return s;
      }
    }
    return Status::ok();
  }

  template <typename F>
  static void visit_node(const Node& node, std::vector<FrameId>& path, F& f) {
    for (const auto& child : node.children) {
      path.push_back(child.frame);
      f(std::span<const FrameId>(path), child);
      visit_node(child, path, f);
      path.pop_back();
    }
  }

  Node root_;
};

using GlobalTree = PrefixTree<GlobalLabel>;
using HierTree = PrefixTree<HierLabel>;

/// Remaps a hierarchical tree to a global-rank tree (the front-end render
/// step of the optimized scheme).
[[nodiscard]] GlobalTree remap_tree(const HierTree& tree, const TaskMap& map);

/// Graphviz DOT rendering with Fig. 1-style edge labels.
[[nodiscard]] std::string to_dot(const GlobalTree& tree,
                                 const app::FrameTable& frames,
                                 std::size_t max_label_items = 6);

/// Brendan-Gregg-style folded stacks ("a;b;c <count>"), one line per node
/// where traces end, weighted by task count (use `by_visits` to weight by
/// total trace insertions instead). Pipe into any flamegraph tool.
[[nodiscard]] std::string to_folded(const GlobalTree& tree,
                                    const app::FrameTable& frames,
                                    bool by_visits = false);

}  // namespace petastat::stat
