// Checkpoint/restart of a streaming debug session (ROADMAP item 2).
//
// A SessionCheckpoint is the full resumable state of a --stream series at a
// round boundary: the merged prefix trees accumulated so far, the equivalence
// classes, the resolved TopologySpec, the streaming caches' validity bits,
// and the absolute SampleRequest cursor. Serialized through the versioned
// wire format (docs/WIRE_FORMAT.md), it survives a front-end loss: a restored
// StatScenario re-arms the multicast cursor mid-series instead of re-sampling
// the whole job, and may legally re-shard first (plan::replan_fe_shards
// re-prices K and placement against the measured payload bytes recorded
// here) — the canonical merge keeps the final products bit-identical to the
// never-killed run either way.
//
// The prefix trees are stored as *nested wire blobs*, not decoded trees: a
// tree's FrameIds are only meaningful against the FrameTable that interned
// them, so the envelope carries the self-describing encoded form (frame
// names on every edge) and consumers decode against their own table, where
// intern-by-name is idempotent. Equivalence classes are name-based for the
// same reason.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serializer.hpp"
#include "common/status.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/scenario.hpp"
#include "stat/taskset.hpp"
#include "tbon/topology.hpp"

namespace petastat::stat {

struct SessionCheckpoint {
  // --- session identity -----------------------------------------------------
  std::string machine_name;
  std::uint32_t num_tasks = 0;
  std::uint32_t num_daemons = 0;
  /// session_identity_hash() of the configuration that produced this
  /// checkpoint. A restore against a different identity (machine, job, seed,
  /// app, evolution...) is FAILED_PRECONDITION: the cached trees would be
  /// merged with traces from a different world.
  std::uint64_t identity_hash = 0;

  // --- resumable streaming state -------------------------------------------
  /// The resolved TopologySpec the interrupted run used (what a restore
  /// adopts unless it re-plans or the CLI re-shards explicitly).
  tbon::TopologySpec spec;
  /// Absolute index of the next sample round (SampleRequest::cursor the
  /// restore re-arms with). Valid range for a restore: [1, total_rounds).
  std::uint32_t cursor = 0;
  std::uint32_t total_rounds = 0;
  double interval_seconds = 0.0;
  TaskSetRepr repr = TaskSetRepr::kHierarchical;
  std::uint64_t seed = 0;
  /// Daemons dead at the boundary (pre-sampling injection + mid-stream
  /// losses), ascending. The restored run adopts this set verbatim.
  std::vector<std::uint32_t> dead_daemons;

  // --- streaming cache summary ---------------------------------------------
  /// Per daemon: the leaf held a baseline payload for the delta protocol
  /// (StreamingReduction::daemon_cache_valid). A restored run starts with
  /// cold caches — its first resumed round is a full merge — so these bits
  /// are the record of what the interrupted run had warmed, not state the
  /// restore replays.
  std::vector<bool> daemon_cache_valid;
  /// Per TBON proc: every live contributing child's payload was cached
  /// (StreamingReduction::proc_cache_complete).
  std::vector<bool> proc_cache_complete;

  // --- measured payloads (the re-planning hook's input) ----------------------
  /// One daemon's serialized stream snapshot, measured at sampling time —
  /// what plan::replan_fe_shards scales the predictor's payload curves by.
  std::uint64_t leaf_payload_bytes = 0;
  /// Estimated per-shard inbound payload bytes at the boundary (leaf bytes
  /// scaled by each shard's task share; one entry = the unsharded front end).
  std::vector<std::uint64_t> shard_payload_bytes;

  // --- merged products ------------------------------------------------------
  /// Versioned PrefixTree envelopes (GlobalLabel when repr is dense,
  /// HierLabel otherwise), in pre-remap daemon-order label space. tree_2d is
  /// the sample-0 tree; tree_3d the union over rounds [0, cursor).
  std::vector<std::uint8_t> tree_2d_wire;
  std::vector<std::uint8_t> tree_3d_wire;

  /// Name-based equivalence classes of the 3D tree at the boundary (task
  /// sets in MPI rank order).
  struct ClassEntry {
    std::vector<std::string> frames;
    TaskSet tasks;
  };
  std::vector<ClassEntry> classes;

  /// Versioned envelope; see docs/WIRE_FORMAT.md. Truncation decodes to
  /// INVALID_ARGUMENT, version skew to FAILED_PRECONDITION, and the nested
  /// tree blobs are validated structurally against a scratch frame table.
  void encode(ByteSink& sink) const;
  [[nodiscard]] static Result<SessionCheckpoint> decode(ByteSource& source);
  [[nodiscard]] std::vector<std::uint8_t> encoded() const;

  [[nodiscard]] bool operator==(const SessionCheckpoint& other) const;
};

[[nodiscard]] bool operator==(const SessionCheckpoint::ClassEntry& a,
                              const SessionCheckpoint::ClassEntry& b);

/// Hash of everything that determines a session's traces and task map:
/// machine name, job shape, seed, representation, app model, evolution.
/// Streaming-window fields (round count, cadence) are normalized from the
/// checkpoint at restore and deliberately excluded.
[[nodiscard]] std::uint64_t session_identity_hash(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const StatOptions& options);

/// Decodes one of the nested tree blobs against the consumer's frame table
/// (names re-intern idempotently; trailing bytes are INVALID_ARGUMENT).
template <typename Label>
[[nodiscard]] Result<PrefixTree<Label>> decode_tree_blob(
    std::span<const std::uint8_t> blob, app::FrameTable& frames,
    const LabelContext& ctx) {
  ByteSource source(blob);
  auto tree = PrefixTree<Label>::decode(source, frames, ctx);
  if (!tree.is_ok()) return tree.status();
  if (!source.exhausted()) {
    return invalid_argument("checkpoint tree blob has trailing bytes");
  }
  return tree;
}

}  // namespace petastat::stat
