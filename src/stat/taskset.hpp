// Task-set representations for prefix-tree edge labels (Sec. V).
//
// Semantically a label is a set of MPI ranks. Two wire representations are
// at issue in the paper:
//
//  * Dense bit vector (the original STAT): every label reserves one bit per
//    task of the *entire job*, regardless of how many tasks the subtree
//    covers. A million-core job needs a megabit per edge. DenseBitVector is
//    the real thing (actual words); TaskSet::encode_dense emits the same
//    bytes from the interval representation.
//
//  * Hierarchical task lists (the fix): each analysis node only represents
//    tasks within its own subtree as daemon-local lists; merges concatenate;
//    only the front end ever materializes a job-wide view, after a remap
//    from daemon order to MPI rank order (Fig. 6). See hier_taskset.hpp.
//
// TaskSet stores sorted disjoint inclusive intervals: exact set semantics
// with memory proportional to the set's fragmentation, which lets the
// simulation hold hundreds of thousands of tasks while still emitting real
// dense bytes on demand.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/serializer.hpp"
#include "common/status.hpp"

namespace petastat::stat {

/// Sorted, disjoint, inclusive intervals of task ranks.
class TaskSet {
 public:
  struct Interval {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;  // inclusive
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  TaskSet() = default;
  /// Singleton {task}.
  static TaskSet single(std::uint32_t task);
  /// Contiguous [lo, hi] inclusive.
  static TaskSet range(std::uint32_t lo, std::uint32_t hi);
  static TaskSet from_sorted(std::span<const std::uint32_t> sorted_unique);

  void insert(std::uint32_t task);
  void insert_range(std::uint32_t lo, std::uint32_t hi);
  void union_with(const TaskSet& other);

  [[nodiscard]] bool contains(std::uint32_t task) const;
  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }
  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;
  [[nodiscard]] std::uint32_t max_task() const;  // empty() must be false

  /// True when the two sets share any task.
  [[nodiscard]] bool intersects(const TaskSet& other) const;
  /// this \ other.
  [[nodiscard]] TaskSet difference(const TaskSet& other) const;

  friend bool operator==(const TaskSet&, const TaskSet&) = default;

  /// "1022:[0,3-1023]" (Fig. 1 edge-label syntax).
  [[nodiscard]] std::string edge_label(std::size_t max_items = 8) const;

  // --- Wire formats ---------------------------------------------------------

  /// Dense format: ceil(job_size/8) bytes, bit t set iff t in set. All tasks
  /// must be < job_size.
  [[nodiscard]] std::uint64_t dense_wire_bytes(std::uint32_t job_size) const {
    return (static_cast<std::uint64_t>(job_size) + 7) / 8;
  }
  void encode_dense(ByteSink& sink, std::uint32_t job_size) const;
  static Result<TaskSet> decode_dense(ByteSource& source, std::uint32_t job_size);

  /// Ranged format: version byte, varint interval count, then delta-coded
  /// intervals. The *_body variants omit the version byte — they are the
  /// nested form composite encodings (HierTaskSet blocks) embed inside
  /// their own versioned envelope.
  [[nodiscard]] std::uint64_t ranged_wire_bytes() const;
  void encode_ranged(ByteSink& sink) const;
  static Result<TaskSet> decode_ranged(ByteSource& source);
  [[nodiscard]] std::uint64_t ranged_body_bytes() const;
  void encode_ranged_body(ByteSink& sink) const;
  static Result<TaskSet> decode_ranged_body(ByteSource& source);

 private:
  std::vector<Interval> intervals_;
};

/// A real fixed-width bit vector over [0, size). This is the original STAT
/// representation, bit for bit; unit tests prove TaskSet's dense encoding
/// equals DenseBitVector's bytes, and micro-benchmarks (Fig. 6) measure its
/// merge/serialize costs against the ranged list.
class DenseBitVector {
 public:
  explicit DenseBitVector(std::uint32_t size);

  void set(std::uint32_t bit);
  [[nodiscard]] bool test(std::uint32_t bit) const;
  void or_with(const DenseBitVector& other);  // sizes must match
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint32_t size() const { return size_; }
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return (static_cast<std::uint64_t>(size_) + 7) / 8;
  }

  [[nodiscard]] static DenseBitVector from_task_set(const TaskSet& set,
                                                    std::uint32_t size);
  [[nodiscard]] TaskSet to_task_set() const;

  void encode(ByteSink& sink) const;
  static Result<DenseBitVector> decode(ByteSource& source, std::uint32_t size);

  friend bool operator==(const DenseBitVector&, const DenseBitVector&) = default;

 private:
  std::uint32_t size_;
  std::vector<std::uint64_t> words_;
};

}  // namespace petastat::stat
