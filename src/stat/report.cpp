#include "stat/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"

namespace petastat::stat {

namespace {

std::string seconds_field(SimTime t) { return format_seconds_fixed(t, 6); }

}  // namespace

std::string render_text_report(const StatRunResult& result,
                               const app::FrameTable& frames,
                               bool include_tree) {
  std::string out;
  out += "status: " + result.status.to_string() + "\n";
  out += "job: " + std::to_string(result.layout.num_tasks) + " tasks, " +
         std::to_string(result.layout.num_daemons) + " daemons (" +
         std::to_string(result.layout.tasks_per_daemon) + " tasks/daemon), " +
         std::to_string(result.num_comm_procs) + " comm procs\n";
  out += "topology: " + result.topology.name() + "\n";

  const PhaseBreakdown& p = result.phases;
  out += "phases:\n";
  out += "  launch:    " + format_duration(p.launch.total()) + " (" +
         std::string(p.launch.status.is_ok() ? "ok" : p.launch.status.to_string()) +
         ")\n";
  if (p.launch.system_software_time > 0) {
    out += "    system software: " + format_duration(p.launch.system_software_time) +
           "\n";
  }
  out += "  connect:   " + format_duration(p.connect_time) + "\n";
  out += "  startup:   " + format_duration(p.startup_total) + " total\n";
  if (p.sbrs_relocation > 0 || p.sbrs_grace > 0) {
    out += "  sbrs:      " + format_duration(p.sbrs_relocation) + " relocation (+" +
           format_duration(p.sbrs_grace) + " grace)\n";
  }
  out += "  sampling:  " + format_duration(p.sample_time);
  if (p.failed_daemons > 0) {
    out += " (" + std::to_string(p.failed_daemons) + " daemons failed)";
  }
  out += "\n";
  out += "  merge:     " + format_duration(p.merge_time) + " (+" +
         format_duration(p.remap_time) + " remap), " +
         format_bytes(p.merge_bytes) + " over " +
         std::to_string(p.merge_messages) + " messages\n";
  const std::vector<net::LinkStat>& links =
      p.stream_rounds > 0 ? p.stream_links : p.merge_links;
  if (!links.empty()) {
    const net::LinkStat& busiest = links.front();
    out += "  network:   " + std::to_string(links.size()) +
           " link(s) carried traffic; busiest " + busiest.link + " busy " +
           format_duration(busiest.busy) + ", " + format_bytes(busiest.bytes) +
           " over " + std::to_string(busiest.messages) + " messages\n";
  }
  if (p.killed_procs > 0) {
    out += "  recovery:  " + std::to_string(p.killed_procs) +
           " proc(s) killed mid-merge, detected in " +
           format_duration(p.failure_detect_latency) + ", re-merged " +
           std::to_string(p.orphaned_daemons) + " daemon(s) in " +
           format_duration(p.recovery_remerge_time);
    if (p.lost_daemons > 0) {
      out += " (" + std::to_string(p.lost_daemons) + " lost)";
    }
    out += "\n";
  }
  if (p.stream_rounds > 0) {
    out += "  streaming: " + std::to_string(p.stream_rounds) + " round(s), " +
           std::to_string(p.stream_changed_rounds) + " changed";
    if (result.stream_samples.size() > 1) {
      const auto& first = result.stream_samples.front();
      SimTime later_total = 0;
      for (std::size_t i = 1; i < result.stream_samples.size(); ++i) {
        later_total += result.stream_samples[i].merge_time;
      }
      const SimTime later_avg = static_cast<SimTime>(
          static_cast<double>(later_total) /
          static_cast<double>(result.stream_samples.size() - 1));
      out += "; merge " + format_duration(first.merge_time) +
             " (sample 0) vs " + format_duration(later_avg) + " (later avg)";
    }
    out += "\n";
  }
  if (result.restored) {
    out += "  restored:  resumed at round " +
           std::to_string(result.restore_cursor) + " of " +
           std::to_string(p.stream_rounds) + " from a checkpoint\n";
  }
  if (p.checkpoints_taken > 0) {
    out += "  checkpoint: " + std::to_string(p.checkpoints_taken) +
           " taken, last " + format_bytes(p.checkpoint_bytes);
    if (result.vacated) out += "; session vacated (simulated FE loss)";
    out += "\n";
  }
  out += "  leaf payload: " + format_bytes(p.leaf_payload_bytes) + "\n";

  out += "equivalence classes (" + std::to_string(result.classes.size()) + "):\n";
  for (const auto& cls : result.classes) {
    out += "  " + describe(cls, frames) + "\n";
  }
  if (include_tree) {
    out += "3D prefix tree:\n";
    result.tree_3d.visit([&](std::span<const FrameId> path,
                             const GlobalTree::Node& node) {
      out += std::string(2 * path.size(), ' ');
      out += frames.name(node.frame);
      out += "  " + node.label.tasks.edge_label() + "\n";
    });
  }
  return out;
}

std::string csv_header() {
  return "label,tasks,daemons,comm_procs,status,startup_s,sample_s,merge_s,"
         "remap_s,sbrs_reloc_s,merge_bytes,leaf_payload_bytes,classes,"
         "failed_daemons";
}

std::string render_csv_row(const std::string& label,
                           const StatRunResult& result) {
  const PhaseBreakdown& p = result.phases;
  std::string out = label;
  out += ',' + std::to_string(result.layout.num_tasks);
  out += ',' + std::to_string(result.layout.num_daemons);
  out += ',' + std::to_string(result.num_comm_procs);
  out += ',';
  out += status_code_name(result.status.code());
  out += ',' + seconds_field(p.startup_total);
  out += ',' + seconds_field(p.sample_time);
  out += ',' + seconds_field(p.merge_time);
  out += ',' + seconds_field(p.remap_time);
  out += ',' + seconds_field(p.sbrs_relocation);
  out += ',' + std::to_string(p.merge_bytes);
  out += ',' + std::to_string(p.leaf_payload_bytes);
  out += ',' + std::to_string(result.classes.size());
  out += ',' + std::to_string(p.failed_daemons);
  return out;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_json_report(const StatRunResult& result,
                               const app::FrameTable& frames) {
  const PhaseBreakdown& p = result.phases;
  std::string out = "{\n";
  out += "  \"status\": \"" + json_escape(result.status.to_string()) + "\",\n";
  out += "  \"tasks\": " + std::to_string(result.layout.num_tasks) + ",\n";
  out += "  \"daemons\": " + std::to_string(result.layout.num_daemons) + ",\n";
  out += "  \"comm_procs\": " + std::to_string(result.num_comm_procs) + ",\n";
  out += "  \"phases\": {\n";
  out += "    \"startup_s\": " + seconds_field(p.startup_total) + ",\n";
  out += "    \"system_software_s\": " +
         seconds_field(p.launch.system_software_time) + ",\n";
  out += "    \"sample_s\": " + seconds_field(p.sample_time) + ",\n";
  out += "    \"merge_s\": " + seconds_field(p.merge_time) + ",\n";
  out += "    \"remap_s\": " + seconds_field(p.remap_time) + ",\n";
  out += "    \"sbrs_relocation_s\": " + seconds_field(p.sbrs_relocation) + ",\n";
  out += "    \"merge_bytes\": " + std::to_string(p.merge_bytes) + ",\n";
  out += "    \"failed_daemons\": " + std::to_string(p.failed_daemons) + ",\n";
  out += "    \"killed_procs\": " + std::to_string(p.killed_procs) + ",\n";
  out += "    \"orphaned_daemons\": " + std::to_string(p.orphaned_daemons) +
         ",\n";
  out += "    \"lost_daemons\": " + std::to_string(p.lost_daemons) + ",\n";
  out += "    \"failure_detect_s\": " + seconds_field(p.failure_detect_latency) +
         ",\n";
  out += "    \"recovery_remerge_s\": " +
         seconds_field(p.recovery_remerge_time) + ",\n";
  out += "    \"stream_rounds\": " + std::to_string(p.stream_rounds) + ",\n";
  out += "    \"stream_changed_rounds\": " +
         std::to_string(p.stream_changed_rounds) + ",\n";
  out += "    \"checkpoints_taken\": " + std::to_string(p.checkpoints_taken) +
         ",\n";
  out += "    \"checkpoint_bytes\": " + std::to_string(p.checkpoint_bytes) +
         ",\n";
  out += "    \"vacated\": " + std::string(result.vacated ? "true" : "false") +
         ",\n";
  out += "    \"restored\": " +
         std::string(result.restored ? "true" : "false") + ",\n";
  out += "    \"restore_cursor\": " + std::to_string(result.restore_cursor) +
         "\n";
  out += "  },\n";
  const std::vector<net::LinkStat>& links =
      p.stream_rounds > 0 ? p.stream_links : p.merge_links;
  if (!links.empty()) {
    // Busiest-first (the first entry is the max-contention link); capped so
    // huge fabrics don't swamp the report — "links_total" records the cut.
    constexpr std::size_t kMaxLinks = 16;
    const std::size_t shown = std::min(links.size(), kMaxLinks);
    out += "  \"links_total\": " + std::to_string(links.size()) + ",\n";
    out += "  \"links\": [\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const net::LinkStat& l = links[i];
      out += "    {\"link\": \"" + json_escape(l.link) +
             "\", \"busy_s\": " + seconds_field(l.busy) +
             ", \"bytes\": " + std::to_string(l.bytes) +
             ", \"messages\": " + std::to_string(l.messages) + "}";
      out += (i + 1 < shown) ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  if (!result.stream_samples.empty()) {
    out += "  \"stream_samples\": [\n";
    for (std::size_t i = 0; i < result.stream_samples.size(); ++i) {
      const StreamSampleStats& s = result.stream_samples[i];
      out += "    {\"sample\": " + std::to_string(s.sample) +
             ", \"sample_s\": " + seconds_field(s.sample_time) +
             ", \"merge_s\": " + seconds_field(s.merge_time) +
             ", \"merge_bytes\": " + std::to_string(s.merge_bytes) +
             ", \"messages\": " + std::to_string(s.merge_messages) +
             ", \"changed_daemons\": " + std::to_string(s.changed_daemons) +
             ", \"remerged_procs\": " + std::to_string(s.remerged_procs) +
             ", \"cached_procs\": " + std::to_string(s.cached_procs) +
             ", \"changed\": " + (s.changed ? "true" : "false") + "}";
      out += (i + 1 < result.stream_samples.size()) ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  out += "  \"classes\": [\n";
  for (std::size_t i = 0; i < result.classes.size(); ++i) {
    const auto& cls = result.classes[i];
    out += "    {\"size\": " + std::to_string(cls.size()) + ", \"tasks\": \"" +
           json_escape(cls.tasks.edge_label()) + "\", \"path\": \"" +
           json_escape(frames.render(cls.path)) + "\"}";
    out += (i + 1 < result.classes.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace petastat::stat
