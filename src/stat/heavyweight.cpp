#include "stat/heavyweight.hpp"

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace petastat::stat {

HeavyweightReport run_heavyweight_debugger(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const HeavyweightCosts& costs) {
  HeavyweightReport report;
  report.connections = job.num_tasks;

  auto layout = machine::layout_daemons(machine, job);
  if (!layout.is_ok()) {
    report.status = layout.status();
    return report;
  }

  // One socket per task at the front end: the OS restriction bites long
  // before STAT's per-daemon connections would. Boundary semantics match
  // every other viability check: exactly the limit works, `> limit` fails.
  if (job.num_tasks > machine.max_tool_connections) {
    report.status = resource_exhausted(
        "front end cannot hold " + std::to_string(job.num_tasks) +
        " per-task debugger connections (limit " +
        std::to_string(machine.max_tool_connections) + ")");
    return report;
  }

  sim::Simulator sim;
  net::Network network(sim, net::build_switch_graph(machine));
  const machine::DaemonLayout& l = layout.value();
  const std::uint32_t per_node = machine::tasks_per_compute_node(machine, job.mode);

  // Attach: serialized at the front end, one handshake per task.
  report.attach_time =
      static_cast<SimTime>(job.num_tasks) * costs.attach_per_task;
  sim.schedule_in(report.attach_time, []() {});
  sim.run();

  // Snapshot: request to every task, reply from every task, all through the
  // front-end NIC, plus per-reply front-end CPU (strictly serial).
  const SimTime snapshot_start = sim.now();
  const NodeId fe = machine.front_end();
  SimTime last_reply = snapshot_start;
  for (std::uint32_t t = 0; t < job.num_tasks; ++t) {
    const NodeId host = machine.compute_node(t / per_node);
    network.transfer(fe, host, costs.request_bytes);
    last_reply = std::max(last_reply,
                          network.transfer(host, fe, costs.reply_bytes));
  }
  const SimTime cpu_done =
      last_reply + static_cast<SimTime>(job.num_tasks) * costs.reply_processing;
  sim.schedule_at(cpu_done, []() {});
  sim.run();
  report.snapshot_time = sim.now() - snapshot_start;
  (void)l;
  return report;
}

}  // namespace petastat::stat
