// Structured reporting of STAT runs: human-readable text, CSV rows for
// sweep harnesses, and JSON for downstream tooling. The CLI and benches use
// these so results are consumable outside the terminal.
#pragma once

#include <string>

#include "app/callpath.hpp"
#include "stat/scenario.hpp"

namespace petastat::stat {

/// Multi-line human-readable run summary (phases, classes, reduction stats).
[[nodiscard]] std::string render_text_report(const StatRunResult& result,
                                             const app::FrameTable& frames,
                                             bool include_tree = false);

/// Header line for CSV output (matches render_csv_row's columns).
[[nodiscard]] std::string csv_header();

/// One CSV row: configuration plus phase timings in seconds.
[[nodiscard]] std::string render_csv_row(const std::string& label,
                                         const StatRunResult& result);

/// JSON object with phases, class summaries, and status. Hand-rolled writer
/// (no external deps); strings are escaped.
[[nodiscard]] std::string render_json_report(const StatRunResult& result,
                                             const app::FrameTable& frames);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters).
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace petastat::stat
