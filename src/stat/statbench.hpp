// STATBench-style emulation (after Lee et al., "Benchmarking the Stack Trace
// Analysis Tool for BlueGene/L", ParCo 2007 — reference [9] of the paper).
//
// STATBench lets each physical daemon *emulate* many virtual daemons'
// worth of trace data so the tool's merge pipeline can be benchmarked at
// scales beyond the installed machine — the authors used it to project
// 128K-task behaviour before the full-system slots were available. This
// driver skips launch and sampling: it synthesizes daemon-local prefix
// trees directly from a generative app model (scaled by an emulation
// factor) and runs the real TBON reduction, yielding merge-phase timings
// and data volumes for virtual jobs up to millions of tasks.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"
#include "stat/equivalence.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/scenario.hpp"
#include "tbon/topology.hpp"

namespace petastat::stat {

struct StatBenchConfig {
  machine::MachineConfig machine = machine::bgl();
  machine::BglMode mode = machine::BglMode::kVirtualNode;
  /// Virtual job size. Each physical daemon emulates
  /// ceil(virtual_tasks / physical_daemons) tasks.
  std::uint64_t virtual_tasks = 1u << 20;
  /// Physical daemons doing the emulation (defaults to the machine's full
  /// daemon population when 0).
  std::uint32_t physical_daemons = 0;
  tbon::TopologySpec topology = tbon::TopologySpec::bgl(2);
  TaskSetRepr repr = TaskSetRepr::kHierarchical;
  std::uint32_t num_samples = 10;
  std::uint32_t app_classes = 32;
  std::uint64_t seed = 2008;
  /// Worker threads for trace generation and the TBON merge (see
  /// StatOptions::exec_threads); results are bit-identical across counts.
  std::uint32_t exec_threads = 1;
};

struct StatBenchResult {
  Status status = Status::ok();
  std::uint64_t virtual_tasks = 0;
  std::uint32_t physical_daemons = 0;
  std::uint32_t virtual_tasks_per_daemon = 0;
  /// Emulated trace-generation time on the slowest daemon (CPU only; there
  /// is no target app to walk).
  SimTime generate_time = 0;
  SimTime merge_time = 0;
  SimTime remap_time = 0;
  std::uint64_t merge_bytes = 0;
  std::uint64_t leaf_payload_bytes = 0;
  GlobalTree tree_3d;
  std::vector<EquivalenceClass> classes;
};

/// Runs one emulated merge. Fails (as data) when the virtual job cannot be
/// laid out or the topology cannot be built.
[[nodiscard]] StatBenchResult run_statbench(const StatBenchConfig& config);

}  // namespace petastat::stat
