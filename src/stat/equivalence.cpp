#include "stat/equivalence.hpp"

#include <algorithm>

namespace petastat::stat {

namespace {

void collect(const GlobalTree::Node& node, app::CallPath& path,
             std::vector<EquivalenceClass>& out) {
  for (const auto& child : node.children) {
    path.push_back(child.frame);
    // Tasks that stop at `child`: members of the incoming edge that do not
    // continue down any outgoing edge.
    TaskSet continuing;
    for (const auto& grandchild : child.children) {
      continuing.union_with(grandchild.label.tasks);
    }
    TaskSet stopping = child.label.tasks.difference(continuing);
    if (!stopping.empty()) {
      out.push_back(EquivalenceClass{path, std::move(stopping)});
    }
    collect(child, path, out);
    path.pop_back();
  }
}

}  // namespace

std::vector<EquivalenceClass> equivalence_classes(const GlobalTree& tree) {
  std::vector<EquivalenceClass> classes;
  app::CallPath path;
  collect(tree.root(), path, classes);
  std::sort(classes.begin(), classes.end(),
            [](const EquivalenceClass& a, const EquivalenceClass& b) {
              const auto ca = a.tasks.count(), cb = b.tasks.count();
              if (ca != cb) return ca > cb;
              return a.path.size() < b.path.size();
            });
  return classes;
}

std::vector<std::uint32_t> representatives(
    const std::vector<EquivalenceClass>& classes, std::uint32_t per_class) {
  std::vector<std::uint32_t> reps;
  for (const auto& cls : classes) {
    std::uint32_t taken = 0;
    for (const auto& iv : cls.tasks.intervals()) {
      for (std::uint32_t v = iv.lo; v <= iv.hi && taken < per_class; ++v) {
        reps.push_back(v);
        ++taken;
      }
      if (taken >= per_class) break;
    }
  }
  return reps;
}

std::string describe(const EquivalenceClass& cls,
                     const app::FrameTable& frames) {
  std::string out = std::to_string(cls.tasks.count()) + " task(s) " +
                    cls.tasks.edge_label() + ": ";
  out += frames.render(cls.path);
  return out;
}

}  // namespace petastat::stat
