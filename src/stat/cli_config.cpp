#include "stat/cli_config.hpp"

#include <charconv>

namespace petastat::stat {

namespace {

Status bad(std::string message) { return invalid_argument(std::move(message)); }

Result<std::uint64_t> parse_number(std::string_view flag, std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return bad(std::string(flag) + " expects a number, got '" +
               std::string(text) + "'");
  }
  return value;
}

Result<double> parse_fraction(std::string_view flag, std::string_view text) {
  // from_chars(double) is not universally available; parse by hand.
  try {
    const double v = std::stod(std::string(text));
    if (v < 0.0 || v > 1.0) return bad(std::string(flag) + " must be in [0,1]");
    return v;
  } catch (const std::exception&) {
    return bad(std::string(flag) + " expects a fraction, got '" +
               std::string(text) + "'");
  }
}

Result<double> parse_seconds(std::string_view flag, std::string_view text) {
  try {
    const double v = std::stod(std::string(text));
    if (v < 0.0) return bad(std::string(flag) + " must be >= 0 seconds");
    return v;
  } catch (const std::exception&) {
    return bad(std::string(flag) + " expects seconds, got '" +
               std::string(text) + "'");
  }
}

}  // namespace

std::string cli_usage() {
  return
      "petastat — run the simulated Stack Trace Analysis Tool\n"
      "\n"
      "usage: petastat [flags]\n"
      "  --machine atlas|bgl|petascale   target platform (default atlas)\n"
      "  --tasks N                       MPI tasks (default 1024)\n"
      "  --mode co|vn                    BG/L execution mode (default co)\n"
      "  --threads N                     threads per task (default 1)\n"
      "  --topology flat|2deep|3deep|bgl2deep|bgl3deep|auto\n"
      "                                  auto searches the feasible spec space\n"
      "                                  for minimal predicted startup+merge\n"
      "  --fe-shards N|auto              shard the front-end merge across N\n"
      "                                  reducer processes (default 1 =\n"
      "                                  unsharded; N > 8 builds a reducer\n"
      "                                  tree); auto picks the predicted-\n"
      "                                  fastest K in {1,2,4,8,16,32,64}\n"
      "  --reducer-placement comm|pack|spread|route\n"
      "                                  host policy for reducers/combiners\n"
      "                                  (default comm = the machine's comm-\n"
      "                                  process rule; route greedily\n"
      "                                  minimizes max link load over the\n"
      "                                  switch graph; auto modes rank pack\n"
      "                                  vs spread vs route themselves)\n"
      "  --repr dense|hier               edge-label representation\n"
      "  --launcher rsh|ssh|launchmon|ciod|ciod-unpatched\n"
      "  --samples N                     traces per task (default 10)\n"
      "  --stream N[:interval]           streaming mode: N per-sample\n"
      "                                  incremental merge rounds, spaced\n"
      "                                  `interval` seconds apart (default\n"
      "                                  off; replaces --samples)\n"
      "  --stream-full-remerge           disable the streaming delta caches:\n"
      "                                  every round re-merges from scratch\n"
      "                                  (the bit-identity baseline)\n"
      "  --evolve jitter|drift           how traces evolve across samples\n"
      "                                  (default jitter; drift pins noise\n"
      "                                  and moves only scripted events)\n"
      "  --fs nfs|lustre                 shared file system\n"
      "  --sbrs                          relocate binaries to RAM disks\n"
      "  --slim-binaries                 post-OS-update library layout\n"
      "  --app ring|threaded|statbench|iostall|imbalance|oomcascade\n"
      "                                  target application model (oomcascade\n"
      "                                  also kills the victim rank's daemon)\n"
      "  --fail-fraction F               daemon failure probability\n"
      "  --fail-at S                     kill one merge proc S seconds into\n"
      "                                  the merge; the health monitor detects\n"
      "                                  it and re-merges the lost subtree\n"
      "  --ping-period S                 health-monitor ping-sweep period\n"
      "                                  (default 0.25; must be > 0)\n"
      "  --seed N                        run seed (default 2008)\n"
      "  --exec-threads N                execution-engine worker threads\n"
      "                                  (default 1 = serial; results are\n"
      "                                  bit-identical at any thread count)\n"
      "  --format text|csv|json          report format (default text)\n"
      "  --print-tree                    include the 3D tree in the report\n"
      "  --dot PATH                      write the 3D tree as Graphviz DOT\n"
      "  --checkpoint-period N[:PATH]    streaming runs only: capture a\n"
      "                                  resumable SessionCheckpoint every N\n"
      "                                  round boundaries; with :PATH the last\n"
      "                                  one is written to PATH\n"
      "  --vacate-at R[:PATH]            streaming runs only: checkpoint at\n"
      "                                  round boundary R, then vacate (a\n"
      "                                  simulated front-end loss); with :PATH\n"
      "                                  the checkpoint is written to PATH\n"
      "  --restore PATH                  resume a vacated run from the\n"
      "                                  SessionCheckpoint at PATH (same\n"
      "                                  machine/job/seed; auto modes may\n"
      "                                  re-shard against measured payloads)\n"
      "  --service PATH                  multi-session service mode: replay\n"
      "                                  the JSON arrival trace at PATH\n"
      "                                  through the session scheduler (other\n"
      "                                  scenario flags are ignored; --format\n"
      "                                  text|json selects the report)\n"
      "  --service-policy fifo|backfill  override the trace's scheduling\n"
      "                                  policy\n";
}

Result<CliConfig> parse_cli(std::span<const std::string_view> args) {
  CliConfig config;
  bool launcher_explicit = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view flag = args[i];
    const auto next = [&]() -> Result<std::string_view> {
      if (i + 1 >= args.size()) {
        return bad(std::string(flag) + " requires a value");
      }
      return args[++i];
    };

    if (flag == "--machine") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "atlas") {
        config.machine = machine::atlas();
      } else if (value.value() == "bgl") {
        config.machine = machine::bgl();
      } else if (value.value() == "petascale") {
        config.machine = machine::petascale();
      } else {
        return bad("unknown machine '" + std::string(value.value()) + "'");
      }
    } else if (flag == "--tasks") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto n = parse_number(flag, value.value());
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > (1ull << 31)) {
        return bad("--tasks out of range");
      }
      config.job.num_tasks = static_cast<std::uint32_t>(n.value());
    } else if (flag == "--mode") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "co") {
        config.job.mode = machine::BglMode::kCoprocessor;
      } else if (value.value() == "vn") {
        config.job.mode = machine::BglMode::kVirtualNode;
      } else {
        return bad("--mode expects co|vn");
      }
    } else if (flag == "--threads") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto n = parse_number(flag, value.value());
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > 256) return bad("--threads out of range");
      config.job.threads_per_task = static_cast<std::uint32_t>(n.value());
      if (n.value() > 1) config.options.app = AppKind::kThreadedRing;
    } else if (flag == "--topology") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      config.options.topology_auto = false;
      if (value.value() == "auto") {
        config.options.topology_auto = true;
      } else if (value.value() == "flat") {
        config.options.topology = tbon::TopologySpec::flat();
      } else if (value.value() == "2deep") {
        config.options.topology = tbon::TopologySpec::balanced(2);
      } else if (value.value() == "3deep") {
        config.options.topology = tbon::TopologySpec::balanced(3);
      } else if (value.value() == "bgl2deep") {
        config.options.topology = tbon::TopologySpec::bgl(2);
      } else if (value.value() == "bgl3deep") {
        config.options.topology = tbon::TopologySpec::bgl(3);
      } else {
        return bad("unknown topology '" + std::string(value.value()) + "'");
      }
    } else if (flag == "--fe-shards") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      config.options.fe_shards_auto = false;
      if (value.value() == "auto") {
        config.options.fe_shards_auto = true;
      } else {
        auto n = parse_number(flag, value.value());
        if (!n.is_ok()) return n.status();
        if (n.value() == 0) {
          return bad("--fe-shards 0 is invalid: use 1 for an unsharded "
                     "front end");
        }
        if (n.value() > 64) return bad("--fe-shards out of range");
        config.options.fe_shards = static_cast<std::uint32_t>(n.value());
      }
    } else if (flag == "--reducer-placement") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "comm") {
        config.options.reducer_placement = tbon::ReducerPlacement::kCommLike;
      } else if (value.value() == "pack") {
        config.options.reducer_placement = tbon::ReducerPlacement::kPack;
      } else if (value.value() == "spread") {
        config.options.reducer_placement = tbon::ReducerPlacement::kSpread;
      } else if (value.value() == "route") {
        config.options.reducer_placement = tbon::ReducerPlacement::kRoute;
      } else {
        return bad("--reducer-placement expects comm|pack|spread|route");
      }
    } else if (flag == "--repr") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "dense") {
        config.options.repr = TaskSetRepr::kDenseGlobal;
      } else if (value.value() == "hier") {
        config.options.repr = TaskSetRepr::kHierarchical;
      } else {
        return bad("--repr expects dense|hier");
      }
    } else if (flag == "--launcher") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      launcher_explicit = true;
      if (value.value() == "rsh") {
        config.options.launcher = LauncherKind::kMrnetRsh;
      } else if (value.value() == "ssh") {
        config.options.launcher = LauncherKind::kMrnetSsh;
      } else if (value.value() == "launchmon") {
        config.options.launcher = LauncherKind::kLaunchMon;
      } else if (value.value() == "ciod") {
        config.options.launcher = LauncherKind::kCiodPatched;
      } else if (value.value() == "ciod-unpatched") {
        config.options.launcher = LauncherKind::kCiodUnpatched;
      } else {
        return bad("unknown launcher '" + std::string(value.value()) + "'");
      }
    } else if (flag == "--samples") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto n = parse_number(flag, value.value());
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > 1000) return bad("--samples out of range");
      config.options.num_samples = static_cast<std::uint32_t>(n.value());
    } else if (flag == "--stream") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      std::string_view count_text = value.value();
      std::string_view interval_text;
      if (const auto colon = count_text.find(':');
          colon != std::string_view::npos) {
        interval_text = count_text.substr(colon + 1);
        count_text = count_text.substr(0, colon);
        if (interval_text.empty()) {
          return bad("--stream N:interval has an empty interval");
        }
      }
      auto n = parse_number(flag, count_text);
      if (!n.is_ok()) return n.status();
      if (n.value() == 0) {
        return bad("--stream 0 is invalid: omit the flag for the classic "
                   "batched pipeline");
      }
      if (n.value() > 10000) return bad("--stream out of range");
      config.options.stream_samples = static_cast<std::uint32_t>(n.value());
      if (!interval_text.empty()) {
        auto s = parse_seconds(flag, interval_text);
        if (!s.is_ok()) return s.status();
        config.options.stream_interval_seconds = s.value();
      }
    } else if (flag == "--stream-full-remerge") {
      config.options.stream_full_remerge = true;
    } else if (flag == "--evolve") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "jitter") {
        config.options.evolution = app::TraceEvolution::kJitter;
      } else if (value.value() == "drift") {
        config.options.evolution = app::TraceEvolution::kDrift;
      } else {
        return bad("--evolve expects jitter|drift");
      }
    } else if (flag == "--fs") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "nfs") {
        config.options.shared_fs = SharedFsKind::kNfs;
      } else if (value.value() == "lustre") {
        config.options.shared_fs = SharedFsKind::kLustre;
      } else {
        return bad("--fs expects nfs|lustre");
      }
    } else if (flag == "--sbrs") {
      config.options.use_sbrs = true;
    } else if (flag == "--slim-binaries") {
      config.options.slim_binaries = true;
    } else if (flag == "--app") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "ring") {
        config.options.app = AppKind::kRingHang;
      } else if (value.value() == "threaded") {
        config.options.app = AppKind::kThreadedRing;
      } else if (value.value() == "statbench") {
        config.options.app = AppKind::kStatBench;
      } else if (value.value() == "iostall") {
        config.options.app = AppKind::kIoStall;
      } else if (value.value() == "imbalance") {
        config.options.app = AppKind::kImbalance;
      } else if (value.value() == "oomcascade") {
        config.options.app = AppKind::kOomCascade;
      } else {
        return bad("unknown app '" + std::string(value.value()) + "'");
      }
    } else if (flag == "--fail-fraction") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto f = parse_fraction(flag, value.value());
      if (!f.is_ok()) return f.status();
      config.options.daemon_failure_probability = f.value();
    } else if (flag == "--fail-at") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto s = parse_seconds(flag, value.value());
      if (!s.is_ok()) return s.status();
      config.options.fail_at_seconds = s.value();
    } else if (flag == "--ping-period") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto s = parse_seconds(flag, value.value());
      if (!s.is_ok()) return s.status();
      if (s.value() <= 0.0) return bad("--ping-period must be > 0");
      config.options.ping_period_seconds = s.value();
    } else if (flag == "--seed") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto n = parse_number(flag, value.value());
      if (!n.is_ok()) return n.status();
      config.options.seed = n.value();
    } else if (flag == "--exec-threads") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      auto n = parse_number(flag, value.value());
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > 256) {
        return bad("--exec-threads out of range");
      }
      config.options.exec_threads = static_cast<std::uint32_t>(n.value());
    } else if (flag == "--format") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() == "text") {
        config.format = OutputFormat::kText;
      } else if (value.value() == "csv") {
        config.format = OutputFormat::kCsv;
      } else if (value.value() == "json") {
        config.format = OutputFormat::kJson;
      } else {
        return bad("--format expects text|csv|json");
      }
    } else if (flag == "--print-tree") {
      config.print_tree = true;
    } else if (flag == "--dot") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      config.dot_path = std::string(value.value());
    } else if (flag == "--checkpoint-period") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      std::string_view count_text = value.value();
      std::string_view path_text;
      if (const auto colon = count_text.find(':');
          colon != std::string_view::npos) {
        path_text = count_text.substr(colon + 1);
        count_text = count_text.substr(0, colon);
        if (path_text.empty()) {
          return bad("--checkpoint-period N:PATH has an empty path");
        }
      }
      auto n = parse_number(flag, count_text);
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > 10000) {
        return bad("--checkpoint-period out of range");
      }
      config.options.checkpoint_period = static_cast<std::uint32_t>(n.value());
      if (!path_text.empty()) config.checkpoint_path = std::string(path_text);
    } else if (flag == "--vacate-at") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      std::string_view round_text = value.value();
      std::string_view path_text;
      if (const auto colon = round_text.find(':');
          colon != std::string_view::npos) {
        path_text = round_text.substr(colon + 1);
        round_text = round_text.substr(0, colon);
        if (path_text.empty()) {
          return bad("--vacate-at R:PATH has an empty path");
        }
      }
      auto n = parse_number(flag, round_text);
      if (!n.is_ok()) return n.status();
      if (n.value() == 0 || n.value() > 10000) {
        return bad("--vacate-at out of range (interior round boundaries "
                   "start at 1)");
      }
      config.options.vacate_at_round = static_cast<std::int32_t>(n.value());
      if (!path_text.empty()) config.checkpoint_path = std::string(path_text);
    } else if (flag == "--restore") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value().empty()) {
        return bad("--restore expects a checkpoint file path");
      }
      config.restore_path = std::string(value.value());
    } else if (flag == "--service") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value().empty()) {
        return bad("--service expects a trace file path");
      }
      config.service_trace_path = std::string(value.value());
    } else if (flag == "--service-policy") {
      auto value = next();
      if (!value.is_ok()) return value.status();
      if (value.value() != "fifo" && value.value() != "backfill") {
        return bad("--service-policy expects fifo|backfill");
      }
      config.service_policy = std::string(value.value());
    } else {
      return bad("unknown flag '" + std::string(flag) + "'");
    }
  }

  // Machine-appropriate launcher default: BG/L-style machines must use the
  // system launcher.
  if (!launcher_explicit &&
      config.machine.daemon_placement == machine::DaemonPlacement::kPerIoNode) {
    config.options.launcher = LauncherKind::kCiodPatched;
  }
  // Validate the job fits before the caller builds a scenario.
  if (auto layout = machine::layout_daemons(config.machine, config.job);
      !layout.is_ok()) {
    return layout.status();
  }
  return config;
}

}  // namespace petastat::stat
