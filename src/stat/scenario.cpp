#include "stat/scenario.hpp"

#include <algorithm>

#include "plan/search.hpp"
#include "stat/checkpoint.hpp"
#include "stat/filter.hpp"
#include "tbon/health.hpp"
#include "tbon/multicast.hpp"
#include "tbon/reduction.hpp"
#include "tbon/streaming.hpp"
#include "tbon/trigger.hpp"

namespace petastat::stat {

const char* launcher_kind_name(LauncherKind kind) {
  switch (kind) {
    case LauncherKind::kMrnetRsh: return "mrnet-rsh";
    case LauncherKind::kMrnetSsh: return "mrnet-ssh";
    case LauncherKind::kLaunchMon: return "launchmon";
    case LauncherKind::kCiodPatched: return "ciod-patched";
    case LauncherKind::kCiodUnpatched: return "ciod-unpatched";
  }
  return "?";
}

const char* task_set_repr_name(TaskSetRepr repr) {
  return repr == TaskSetRepr::kDenseGlobal ? "dense-bitvector"
                                           : "hierarchical-list";
}

namespace {
constexpr const char* kSharedBase = "/nfs/home/user";

/// Per-link traffic since `before` (a link_stats() snapshot), busiest first
/// (ties to the lower device key), links with no new traffic dropped.
std::vector<net::LinkStat> link_stats_since(
    const net::Network& network, const std::vector<net::LinkStat>& before) {
  std::vector<net::LinkStat> delta = network.link_stats();
  // Both snapshots are sorted by device key, and devices are only ever
  // added, so a linear pairwise walk lines them up.
  std::size_t b = 0;
  for (net::LinkStat& stat : delta) {
    while (b < before.size() && before[b].device < stat.device) ++b;
    if (b < before.size() && before[b].device == stat.device) {
      stat.bytes -= before[b].bytes;
      stat.messages -= before[b].messages;
      stat.busy -= before[b].busy;
    }
  }
  delta.erase(std::remove_if(delta.begin(), delta.end(),
                             [](const net::LinkStat& s) {
                               return s.messages == 0 && s.bytes == 0 &&
                                      s.busy == 0;
                             }),
              delta.end());
  std::stable_sort(delta.begin(), delta.end(),
                   [](const net::LinkStat& lhs, const net::LinkStat& rhs) {
                     if (lhs.busy != rhs.busy) return lhs.busy > rhs.busy;
                     return lhs.device < rhs.device;
                   });
  return delta;
}
}  // namespace

std::unique_ptr<app::AppModel> make_app_model(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const StatOptions& options) {
  const bool bgl_style =
      machine.daemon_placement == machine::DaemonPlacement::kPerIoNode;
  app::AppBinarySpec binaries =
      machine.static_binary
          ? app::ring_binaries_static(kSharedBase)
          : app::ring_binaries_dynamic(kSharedBase, options.slim_binaries);

  switch (options.app) {
    case AppKind::kRingHang: {
      app::RingHangOptions ring;
      ring.num_tasks = job.num_tasks;
      ring.bgl_frames = bgl_style;
      ring.seed = options.seed;
      ring.evolution = options.evolution;
      ring.binaries = std::move(binaries);
      return std::make_unique<app::RingHangApp>(std::move(ring));
    }
    case AppKind::kThreadedRing: {
      app::ThreadedRingOptions threaded;
      threaded.ring.num_tasks = job.num_tasks;
      threaded.ring.bgl_frames = bgl_style;
      threaded.ring.seed = options.seed;
      threaded.ring.evolution = options.evolution;
      threaded.ring.binaries = std::move(binaries);
      threaded.threads_per_task = std::max(1u, job.threads_per_task);
      return std::make_unique<app::ThreadedRingApp>(std::move(threaded));
    }
    case AppKind::kStatBench: {
      app::StatBenchOptions bench;
      bench.num_tasks = job.num_tasks;
      bench.num_classes = options.statbench_classes;
      bench.seed = options.seed;
      bench.evolution = options.evolution;
      bench.binaries = std::move(binaries);
      return std::make_unique<app::StatBenchApp>(std::move(bench));
    }
    case AppKind::kIoStall: {
      app::IoStallOptions stall;
      stall.num_tasks = job.num_tasks;
      stall.bgl_frames = bgl_style;
      stall.seed = options.seed;
      stall.evolution = options.evolution;
      stall.binaries = std::move(binaries);
      return std::make_unique<app::IoStallApp>(std::move(stall));
    }
    case AppKind::kImbalance: {
      app::ImbalanceOptions imbalance;
      imbalance.num_tasks = job.num_tasks;
      imbalance.bgl_frames = bgl_style;
      imbalance.seed = options.seed;
      imbalance.evolution = options.evolution;
      imbalance.drift_period = std::max(1u, options.drift_period);
      if (options.evolution == app::TraceEvolution::kDrift) {
        // Align the drift bands with daemon boundaries so each sample's
        // changed set is a slice of *adjacent daemons* — a few dirty
        // subtrees, not every subtree a little dirty.
        if (auto layout = machine::layout_daemons(machine, job);
            layout.is_ok()) {
          imbalance.drift_block =
              std::max(1u, layout.value().tasks_of(DaemonId(0)));
        }
      }
      return std::make_unique<app::ImbalanceApp>(std::move(imbalance));
    }
    case AppKind::kOomCascade: {
      app::OomCascadeOptions oom;
      oom.num_tasks = job.num_tasks;
      oom.bgl_frames = bgl_style;
      oom.seed = options.seed;
      oom.evolution = options.evolution;
      oom.binaries = std::move(binaries);
      return std::make_unique<app::OomCascadeApp>(std::move(oom));
    }
  }
  check(false, "unknown AppKind");
  return nullptr;
}

fs::NfsParams shared_nfs_params(const machine::MachineConfig& machine) {
  fs::NfsParams nfs;
  if (machine.daemon_placement == machine::DaemonPlacement::kPerIoNode) {
    // Lab-grade NFS farm behind the I/O nodes: faster cached reads (every
    // daemon reads the same static binary), more lanes, but a moodier
    // shared server.
    nfs.server_threads = 8;
    nfs.cached_bytes_per_sec = 150.0e6;  // aggregate 1.2 GB/s
    nfs.run_load_sigma = 0.58;
  }
  return nfs;
}

StatScenario::StatScenario(machine::MachineConfig machine,
                           machine::JobConfig job, StatOptions options)
    : StatScenario(std::move(machine), job, std::move(options),
                   /*executor=*/nullptr, /*restore=*/nullptr) {}

StatScenario::StatScenario(machine::MachineConfig machine,
                           machine::JobConfig job, StatOptions options,
                           sim::Executor* executor)
    : StatScenario(std::move(machine), job, std::move(options), executor,
                   /*restore=*/nullptr) {}

StatScenario::StatScenario(machine::MachineConfig machine,
                           machine::JobConfig job, StatOptions options,
                           std::shared_ptr<const SessionCheckpoint> restore)
    : StatScenario(std::move(machine), job, std::move(options),
                   /*executor=*/nullptr, std::move(restore)) {}

StatScenario::StatScenario(machine::MachineConfig machine,
                           machine::JobConfig job, StatOptions options,
                           sim::Executor* executor,
                           std::shared_ptr<const SessionCheckpoint> restore)
    : machine_(std::move(machine)),
      job_(job),
      options_(std::move(options)),
      restore_(std::move(restore)),
      costs_(machine::default_cost_model(machine_)) {
  if (executor != nullptr) {
    exec_ = executor;
  } else {
    owned_exec_ = std::make_unique<sim::Executor>(options_.exec_threads);
    exec_ = owned_exec_.get();
  }
  auto layout = machine::layout_daemons(machine_, job_);
  check(layout.is_ok(), "StatScenario: job does not fit the machine");
  layout_ = layout.value();

  // The streaming window is part of the checkpoint, not the restore-side
  // options: normalize it so the resumed series is the interrupted one.
  if (restore_ != nullptr) {
    options_.stream_samples = restore_->total_rounds;
    options_.stream_interval_seconds = restore_->interval_seconds;
    options_.run_through = RunThrough::kFull;
  }

  // Explicit zeros are configuration errors, not requests for a default: a
  // front end with no connections and a merge with no shards both mean the
  // caller typed something they did not intend.
  if (options_.max_frontend_connections &&
      *options_.max_frontend_connections == 0) {
    config_status_ = invalid_argument(
        "max_frontend_connections override must be >= 1 (leave it unset for "
        "the machine default)");
  } else if (options_.fe_shards == 0 && !options_.fe_shards_auto) {
    config_status_ =
        invalid_argument("fe_shards must be >= 1 (1 = unsharded front end)");
  } else if (options_.daemon_failure_probability < 0.0 ||
             options_.daemon_failure_probability > 1.0) {
    config_status_ = invalid_argument(
        "daemon_failure_probability must be in [0, 1]");
  } else if (options_.ping_period_seconds <= 0.0) {
    config_status_ =
        invalid_argument("ping_period_seconds must be > 0");
  } else if (options_.stream_interval_seconds < 0.0) {
    config_status_ =
        invalid_argument("stream_interval_seconds must be >= 0");
  } else if ((options_.checkpoint_period > 0 || options_.vacate_at_round >= 0) &&
             (options_.stream_samples == 0 ||
              options_.run_through != RunThrough::kFull)) {
    config_status_ = invalid_argument(
        "checkpoint_period/vacate_at_round require a streaming run "
        "(--stream)");
  } else if (options_.vacate_at_round == 0 ||
             (options_.vacate_at_round > 0 &&
              static_cast<std::uint32_t>(options_.vacate_at_round) >=
                  options_.stream_samples)) {
    config_status_ = invalid_argument(
        "vacate_at_round must be an interior round boundary in "
        "[1, stream_samples)");
  }

  // Restore validation: the checkpoint must describe *this* session (stale
  // hash → FAILED_PRECONDITION) and a resumable point in it.
  if (config_status_.is_ok() && restore_ != nullptr) {
    if (restore_->cursor == 0 || restore_->cursor >= restore_->total_rounds) {
      config_status_ = invalid_argument(
          "restore: checkpoint cursor beyond series (cursor " +
          std::to_string(restore_->cursor) + " of " +
          std::to_string(restore_->total_rounds) + " rounds)");
    } else if (restore_->num_tasks != layout_.num_tasks ||
               restore_->num_daemons != layout_.num_daemons) {
      config_status_ = invalid_argument(
          "restore: checkpoint job shape does not match the machine layout");
    } else if (session_identity_hash(machine_, job_, options_) !=
               restore_->identity_hash) {
      config_status_ = failed_precondition(
          "restore: stale session hash — the checkpoint was captured under a "
          "different machine/job/seed/app configuration");
    } else if (options_.vacate_at_round >= 0 &&
               static_cast<std::uint32_t>(options_.vacate_at_round) <=
                   restore_->cursor) {
      config_status_ = invalid_argument(
          "vacate_at_round must be past the restore cursor");
    }
  }

  // The per-run connection override *is* the machine's ceiling for this run:
  // folding it into the config here means every consumer — the reducer-tree
  // fan-in clamp in tbon::derive_levels, connection_viability, and the
  // planner the auto modes consult below — sees one consistent limit, so
  // the tree that gets checked is the tree that limit would demand.
  if (config_status_.is_ok() && options_.max_frontend_connections) {
    machine_.max_tool_connections = *options_.max_frontend_connections;
  }

  // Resolve `--topology auto` / `--fe-shards auto` up front so the run-seed
  // salting below (and everything seeded from it) sees the spec the run will
  // actually use.
  if (config_status_.is_ok() && restore_ != nullptr) {
    // A restore adopts the interrupted run's resolved spec — then the auto
    // modes re-price K and placement against the *measured* payload bytes
    // the checkpoint recorded (the cheap re-planning hook: a resumed session
    // may legally re-shard), and an explicit CLI re-shard folds in as usual.
    options_.topology = restore_->spec;
    if (options_.topology_auto || options_.fe_shards_auto) {
      auto chosen = plan::replan_fe_shards(
          machine_, job_, options_, costs_,
          static_cast<double>(restore_->leaf_payload_bytes));
      if (chosen.is_ok()) {
        options_.topology = std::move(chosen).value();
      } else {
        config_status_ = chosen.status();
      }
    } else {
      if (options_.fe_shards != 1) {
        options_.topology.fe_shards = options_.fe_shards;
      }
      if (options_.reducer_placement != tbon::ReducerPlacement::kCommLike) {
        options_.topology.reducer_placement = options_.reducer_placement;
      }
    }
    // Reject a spec the machine cannot build (a K incompatible with this
    // layout) at construction, where the scheduler screens sessions.
    if (config_status_.is_ok()) {
      auto topo = tbon::build_topology(machine_, layout_, options_.topology);
      if (!topo.is_ok()) config_status_ = topo.status();
    }
  } else if (config_status_.is_ok()) {
    if (options_.topology_auto) {
      // The search enumerates the shard dimension itself (K in {1,2,4,8}
      // under `--fe-shards auto`, the pinned K otherwise).
      auto chosen = plan::choose_topology(machine_, job_, options_, costs_);
      if (chosen.is_ok()) {
        options_.topology = std::move(chosen).value();
      } else {
        config_status_ = chosen.status();
      }
    } else if (options_.fe_shards_auto) {
      auto chosen = plan::choose_fe_shards(machine_, job_, options_, costs_);
      if (chosen.is_ok()) {
        options_.topology = std::move(chosen).value();
      } else {
        config_status_ = chosen.status();
      }
    } else {
      // The CLI-level knobs land on the spec; a spec already sharded/placed
      // by a direct API caller is left alone.
      if (options_.fe_shards != 1) {
        options_.topology.fe_shards = options_.fe_shards;
      }
      if (options_.reducer_placement != tbon::ReducerPlacement::kCommLike) {
        options_.topology.reducer_placement = options_.reducer_placement;
      }
    }
  }

  net_ = std::make_unique<net::Network>(sim_, net::build_switch_graph(machine_));

  // Per-run noise streams are salted with the configuration so that
  // "essentially identical" runs under different topologies draw different
  // server moods — the paper's Fig. 9 variation.
  const std::uint64_t run_seed =
      options_.seed ^
      std::hash<std::string>{}(options_.topology.name() +
                               task_set_repr_name(options_.repr));

  // File systems: the shared FS under /nfs, node-local /usr/lib, and the
  // per-node RAM disk SBRS relocates into.
  if (options_.shared_fs == SharedFsKind::kLustre) {
    shared_fs_ = std::make_unique<fs::LustreFileSystem>(sim_, fs::LustreParams{},
                                                        run_seed);
  } else {
    shared_fs_ = std::make_unique<fs::NfsFileSystem>(
        sim_, shared_nfs_params(machine_), run_seed);
  }
  local_fs_ = std::make_unique<fs::RamDiskFileSystem>(
      sim_, fs::RamDiskParams{.bytes_per_sec = 150.0e6,
                              .per_open = 300 * kMicrosecond});
  ramdisk_ = std::make_unique<fs::RamDiskFileSystem>(sim_, fs::RamDiskParams{});
  mounts_.mount("/nfs", shared_fs_.get());
  mounts_.mount("/usr/lib", local_fs_.get());
  mounts_.mount("/ramdisk", ramdisk_.get());
  files_ = std::make_unique<fs::FileAccess>(sim_, mounts_);

  app_ = make_app_model(machine_, job_, options_);
  walker_ = std::make_unique<stackwalker::StackWalker>(
      sim_, machine_, costs_.sampling, *files_, *app_, layout_, run_seed);
  walker_->set_executor(exec_);
  lmon_ = std::make_unique<launchmon::LaunchMonSession>(sim_, machine_, *net_,
                                                        layout_);
}

StatScenario::~StatScenario() = default;

StatRunResult StatScenario::run() {
  if (ran_) {
    StatRunResult result;
    result.layout = layout_;
    result.topology = options_.topology;
    result.status = failed_precondition(
        "StatScenario::run() is single-shot: construct a fresh scenario per "
        "session");
    return result;
  }
  ran_ = true;
  StatRunResult result = run_impl();
  // The scenario clock only ever advances inside this run, so "now" is the
  // session's total virtual duration — including the phases a failure cut
  // short.
  result.total_virtual_time = sim_.now();
  return result;
}

StatRunResult StatScenario::run_impl() {
  StatRunResult result;
  result.layout = layout_;
  result.topology = options_.topology;
  if (!config_status_.is_ok()) {
    // Invalid options, or auto resolution found no viable spec.
    result.status = config_status_;
    return result;
  }
  PhaseBreakdown& phases = result.phases;

  // Walkers see the (possibly shuffled) process-table mapping.
  const TaskMap task_map = options_.shuffle_task_map
                               ? TaskMap::shuffled(layout_, options_.seed)
                               : TaskMap::identity(layout_);
  walker_->set_task_resolver([task_map](DaemonId d, std::uint32_t local) {
    return TaskId(task_map.global_rank(d.value(), local));
  });

  // --- Topology --------------------------------------------------------------
  auto topo_result = tbon::build_topology(machine_, layout_, options_.topology);
  if (!topo_result.is_ok()) {
    result.status = topo_result.status();
    return result;
  }
  const tbon::TbonTopology topology = std::move(topo_result).value();
  result.num_comm_procs = topology.num_comm_procs();

  // --- Phase 1: startup --------------------------------------------------------
  // A restored session skips the launch: the daemons survived the front-end
  // loss and stay attached. Only the front end's half is rebuilt below —
  // comm/shard process spawn plus MRNet instantiation (connect_time).
  if (restore_ != nullptr) {
    result.restored = true;
    result.restore_cursor = restore_->cursor;
  }
  std::unique_ptr<rm::DaemonLauncher> launcher;
  if (restore_ == nullptr) {
  switch (options_.launcher) {
    case LauncherKind::kMrnetRsh:
      launcher = std::make_unique<rm::RemoteShellLauncher>(
          sim_, machine_, costs_.launch, rm::ShellProtocol::kRsh, options_.seed);
      break;
    case LauncherKind::kMrnetSsh:
      launcher = std::make_unique<rm::RemoteShellLauncher>(
          sim_, machine_, costs_.launch, rm::ShellProtocol::kSsh, options_.seed);
      break;
    case LauncherKind::kLaunchMon:
      launcher =
          std::make_unique<rm::BulkTreeLauncher>(sim_, costs_.launch, options_.seed);
      break;
    case LauncherKind::kCiodPatched:
      launcher = std::make_unique<rm::CiodLauncher>(sim_, costs_.launch,
                                                    /*patched=*/true, options_.seed);
      break;
    case LauncherKind::kCiodUnpatched:
      launcher = std::make_unique<rm::CiodLauncher>(
          sim_, costs_.launch, /*patched=*/false, options_.seed);
      break;
  }

  rm::LaunchRequest request;
  request.num_daemons = layout_.num_daemons;
  // BG/L-style machines launch the application under tool control; on the
  // cluster STAT attaches to a running job.
  const bool tool_launches_app =
      machine_.daemon_placement == machine::DaemonPlacement::kPerIoNode;
  request.num_app_procs = tool_launches_app ? layout_.num_tasks : 0;

  lmon_->launch(*launcher, request,
                [&phases](const rm::LaunchReport& report) {
                  phases.launch = report;
                });
  sim_.run();
  if (!phases.launch.status.is_ok()) {
    result.status = phases.launch.status;
    phases.startup_total = sim_.now();
    return result;
  }
  }  // restore_ == nullptr

  // MRNet comm processes — the shard machinery included — are spawned
  // serially from the front end, then the whole network instantiates level
  // by level. Reducers/combiners price their spawn by distinct host
  // (placement-aware: colocated helpers fork locally after the first
  // per-host handshake).
  const std::uint32_t shard_procs = topology.num_shard_procs();
  phases.connect_time =
      machine::comm_spawn_time(costs_.launch,
                               result.num_comm_procs - shard_procs) +
      machine::reducer_spawn_time(costs_.launch, shard_procs,
                                  tbon::shard_spawn_hosts(topology)) +
      tbon::connect_time(topology, costs_.launch);
  sim_.schedule_in(phases.connect_time, []() {});
  sim_.run();
  phases.startup_total = sim_.now();
  if (options_.run_through == RunThrough::kStartup) return result;

  // --- Phase 2a: SBRS (optional; already done before the checkpoint) -----------
  if (options_.use_sbrs && restore_ == nullptr) {
    sbrs::Sbrs service(sim_, machine_, layout_, *files_, lmon_->fabric(),
                       sbrs::SbrsParams{});
    service.relocate(app_->binaries(), [&phases](const sbrs::SbrsReport& report) {
      phases.sbrs_grace = report.grace_time;
      phases.sbrs_relocation = report.relocation_time;
    });
    sim_.run();
  }

  // --- Phase 2b: sampling --------------------------------------------------------
  // Streaming mode replaces phases 2b and 3 with interleaved per-sample
  // rounds; its own SampleRequest broadcast is the control message.
  const bool streaming =
      options_.stream_samples > 0 && options_.run_through == RunThrough::kFull;
  const bool dense = options_.repr == TaskSetRepr::kDenseGlobal;
  if (!streaming) {
    // Sample request multicast down the tree (small control message).
    tbon::multicast(sim_, *net_, topology, /*bytes=*/96, [](SimTime) {});
    sim_.run();
  }

  const SimTime sample_start = sim_.now();
  const std::uint32_t num_daemons = layout_.num_daemons;

  std::vector<StatPayload<GlobalLabel>> dense_payloads;
  std::vector<StatPayload<HierLabel>> hier_payloads;
  if (!streaming) {
    if (dense) {
      dense_payloads.resize(num_daemons);
    } else {
      hier_payloads.resize(num_daemons);
    }
  }

  // Failure injection: decide casualties up front (dead before sampling).
  std::vector<bool> daemon_dead(num_daemons, false);
  if (restore_ != nullptr) {
    // The checkpoint's dead set already carries the original injection, the
    // OOM-cascade victim, and any mid-stream losses; re-drawing here would
    // kill a different set than the run being resumed.
    for (const std::uint32_t d : restore_->dead_daemons) {
      daemon_dead[d] = true;
      ++phases.failed_daemons;
    }
  } else if (options_.daemon_failure_probability >= 1.0) {
    // Certain death is certain: no RNG draw, so every seed reports the same
    // total loss.
    std::fill(daemon_dead.begin(), daemon_dead.end(), true);
    phases.failed_daemons = num_daemons;
  } else if (options_.daemon_failure_probability > 0.0) {
    Rng failure_rng(options_.seed, /*stream_id=*/0xdead);
    for (std::uint32_t d = 0; d < num_daemons; ++d) {
      if (failure_rng.bernoulli(options_.daemon_failure_probability)) {
        daemon_dead[d] = true;
        ++phases.failed_daemons;
      }
    }
  }
  // The OOM cascade kills its victim's compute node outright: the daemon
  // serving the first-killed rank is gone before sampling starts (the tool
  // sees the hole, not the OOM).
  if (options_.app == AppKind::kOomCascade && restore_ == nullptr) {
    const auto& oom = dynamic_cast<const app::OomCascadeApp&>(*app_);
    const std::uint32_t victim_rank = oom.victim_task().value();
    bool found = false;
    for (std::uint32_t d = 0; d < num_daemons && !found; ++d) {
      const std::uint32_t locals = layout_.tasks_of(DaemonId(d));
      for (std::uint32_t local = 0; local < locals && !found; ++local) {
        if (task_map.global_rank(d, local) != victim_rank) continue;
        found = true;
        if (!daemon_dead[d]) {
          daemon_dead[d] = true;
          ++phases.failed_daemons;
        }
      }
    }
    check(found, "OOM-cascade victim rank not in the task map");
  }
  for (std::uint32_t d = 0; d < num_daemons; ++d) {
    if (daemon_dead[d]) result.dead_daemons.push_back(d);
  }
  // A tool with zero surviving daemons has nothing to merge.
  if (phases.failed_daemons == num_daemons) {
    phases.sample_status = unavailable("all daemons failed");
    result.status = phases.sample_status;
    return result;
  }

  if (streaming) {
    // Front-end viability is judged up front, exactly as the classic merge
    // phase does (dead daemons never dial in).
    const std::uint32_t conn_limit =
        options_.max_frontend_connections.value_or(
            machine_.max_tool_connections);
    if (Status conn =
            tbon::connection_viability(topology, conn_limit, daemon_dead);
        !conn.is_ok()) {
      phases.merge_status = std::move(conn);
      result.status = phases.merge_status;
      return result;
    }
    if (dense) {
      run_stream_phase<GlobalLabel>(topology, result, task_map, daemon_dead);
    } else {
      run_stream_phase<HierLabel>(topology, result, task_map, daemon_dead);
    }
    if (!phases.merge_status.is_ok()) {
      result.status = phases.merge_status;
      return result;
    }
    result.classes = equivalence_classes(result.tree_3d);
    return result;
  }

  SimTime sample_end = sample_start;
  for (std::uint32_t d = 0; d < num_daemons; ++d) {
    if (daemon_dead[d]) continue;
    stackwalker::TraceSink sink;
    const std::uint32_t daemon_id = d;
    if (dense) {
      auto* payload = &dense_payloads[d];
      sink = [payload, daemon_id](TaskId task, std::uint32_t local,
                                  std::uint32_t, std::uint32_t sample,
                                  const app::CallPath& path) {
        insert_trace(*payload, path, daemon_id, local, task, sample);
      };
    } else {
      auto* payload = &hier_payloads[d];
      sink = [payload, daemon_id](TaskId task, std::uint32_t local,
                                  std::uint32_t, std::uint32_t sample,
                                  const app::CallPath& path) {
        insert_trace(*payload, path, daemon_id, local, task, sample);
      };
    }
    walker_->sample_daemon(
        DaemonId(d), options_.num_samples, sink,
        [&phases, &sample_end](const stackwalker::SampleReport& report) {
          phases.daemon_sample_seconds.add(to_seconds(report.total()));
          phases.sample_symbol_io_max =
              std::max(phases.sample_symbol_io_max, report.symbol_io_time);
          sample_end = std::max(sample_end, report.finished_at);
        });
  }
  sim_.run();
  phases.sample_time = sample_end - sample_start;
  if (options_.run_through == RunThrough::kSampling) return result;

  // --- Phase 3: merge ------------------------------------------------------------
  // Front-end viability checks (Sec. V-A failures): one shared formulation
  // with the planner, `> limit` rejects.
  // Dead daemons never dial in, so viability is judged on the survivors —
  // a tree that would overflow the front end at full strength can be fine
  // after casualties, and the planner's mask overload agrees.
  const std::uint32_t conn_limit =
      options_.max_frontend_connections.value_or(
          machine_.max_tool_connections);
  if (Status conn =
          tbon::connection_viability(topology, conn_limit, daemon_dead);
      !conn.is_ok()) {
    phases.merge_status = std::move(conn);
    result.status = phases.merge_status;
    return result;
  }

  if (dense) {
    run_merge_phase<GlobalLabel>(topology, result, std::move(dense_payloads),
                                 task_map, daemon_dead);
  } else {
    run_merge_phase<HierLabel>(topology, result, std::move(hier_payloads),
                               task_map, daemon_dead);
  }
  if (!phases.merge_status.is_ok()) {
    result.status = phases.merge_status;
    return result;
  }

  result.classes = equivalence_classes(result.tree_3d);
  return result;
}

template <typename Label>
void StatScenario::run_merge_phase(const tbon::TbonTopology& topology,
                                   StatRunResult& result,
                                   std::vector<StatPayload<Label>> payloads,
                                   const TaskMap& task_map,
                                   const std::vector<bool>& daemon_dead) {
  PhaseBreakdown& phases = result.phases;
  const LabelContext ctx{layout_.num_tasks};
  const app::FrameTable& frames = app_->frames();

  std::uint32_t first_alive = 0;
  while (first_alive < daemon_dead.size() && daemon_dead[first_alive]) {
    ++first_alive;
  }
  check(first_alive < payloads.size(), "merge phase with every daemon dead");
  phases.leaf_payload_bytes =
      payload_wire_bytes(payloads[first_alive], frames, ctx);

  // Receive-buffer viability: the sum of the leaf payloads arriving at the
  // front end — and at each reducer, which takes over the front end's role
  // for its shard — must fit (streaming helps internal comm procs, but the
  // merge root of a flat subtree holds every daemon's full-job bit vectors
  // at once). Dead daemons send nothing.
  std::vector<std::uint32_t> merge_roots{0};
  merge_roots.insert(merge_roots.end(), topology.reducers.begin(),
                     topology.reducers.end());
  for (const std::uint32_t root : merge_roots) {
    std::uint64_t incoming = 0;
    for (const std::uint32_t child : topology.procs[root].children) {
      const auto& proc = topology.procs[child];
      if (proc.is_leaf() && !daemon_dead[proc.daemon.value()]) {
        incoming +=
            payload_wire_bytes(payloads[proc.daemon.value()], frames, ctx);
      }
    }
    if (incoming > costs_.merge.frontend_rx_buffer_bytes) {
      phases.merge_status = resource_exhausted(
          std::string(root == 0 ? "front-end" : "reducer") +
          " receive buffers overflow: " + std::to_string(incoming) +
          " bytes inbound");
      return;
    }
  }

  const SimTime merge_start = sim_.now();
  const std::vector<net::LinkStat> links_before = net_->link_stats();
  tbon::Reduction<StatPayload<Label>> reduction(
      sim_, *net_, topology, make_stat_reduce_ops<Label>(costs_.merge, frames, ctx),
      exec_);
  reduction.set_dead_daemons(daemon_dead);

  // Mid-merge failure recovery: the monitor's ping sweep runs only while a
  // kill is armed (the tool's steady-state costs stay exactly as before),
  // and leaf payload retention — the recovery's raw material — likewise.
  const bool kill_armed = options_.fail_at_seconds >= 0.0;
  reduction.set_retain_payloads(kill_armed);
  tbon::TriggerManager triggers;
  tbon::HealthMonitor monitor(sim_, *net_, topology, triggers,
                              seconds(options_.ping_period_seconds));
  SimTime victim_detected_at = kSimTimeNever;
  if (kill_armed) {
    const std::uint32_t victim = tbon::default_victim(topology);
    triggers.register_action([&](const tbon::FailureEvent& event) {
      phases.failure_detect_latency = event.detected_at - event.dead_at;
      victim_detected_at = event.detected_at;
      const tbon::RecoveryReport report = reduction.recover(event.proc);
      if (report.acted) {
        phases.orphaned_daemons += report.orphan_daemons;
        phases.lost_daemons += report.lost_daemons;
      }
    });
    monitor.start();
    sim_.schedule_in(seconds(options_.fail_at_seconds), [&, victim]() {
      reduction.mark_dead(victim);
      monitor.mark_dead(victim, sim_.now());
      ++phases.killed_procs;
    });
  }

  std::optional<StatPayload<Label>> merged;
  SimTime merge_done_at = merge_start;
  reduction.start(std::move(payloads),
                  [&](tbon::ReduceResult<StatPayload<Label>> reduce_result) {
                    merged = std::move(reduce_result.payload);
                    merge_done_at = reduce_result.finished_at;
                    phases.merge_bytes = reduce_result.bytes_moved;
                    phases.merge_messages = reduce_result.messages;
                    monitor.stop();
                  });
  sim_.run();
  phases.health_sweeps = monitor.sweeps_completed();
  phases.merge_links = link_stats_since(*net_, links_before);
  if (!merged.has_value()) {
    // The victim died holding state the recovery could not rebuild (or died
    // where no sibling could adopt). The tool reports the stall instead of
    // spinning on a reduction that can never finish.
    phases.merge_status = unavailable(
        "merge stalled: a tool process died mid-merge and could not be "
        "recovered");
    return;
  }
  phases.merge_time = merge_done_at - merge_start;
  if (victim_detected_at != kSimTimeNever && merge_done_at > victim_detected_at) {
    phases.recovery_remerge_time = merge_done_at - victim_detected_at;
  }

  // Finalization: the optimized representation pays the remap from daemon
  // order to MPI rank order (0.66 s at 208K tasks). With a sharded front
  // end the reducers remap their contiguous slices concurrently, so the
  // phase costs the largest slice instead of the whole job. Either way the
  // remap only touches ranks that reported — survivors, not the full job.
  if constexpr (std::is_same_v<Label, HierLabel>) {
    if (topology.sharded()) {
      phases.remap_time = machine::sharded_remap_cost(
          costs_.merge,
          tbon::largest_shard_task_count(topology, layout_, daemon_dead));
    } else {
      std::uint64_t surviving_tasks = 0;
      for (std::uint32_t d = 0; d < layout_.num_daemons; ++d) {
        if (!daemon_dead[d]) surviving_tasks += layout_.tasks_of(DaemonId(d));
      }
      phases.remap_time =
          machine::frontend_remap_cost(costs_.merge, surviving_tasks);
    }
    sim_.schedule_in(phases.remap_time, []() {});
    // The two trees remap independently; overlap them across workers while
    // the modelled remap duration elapses.
    auto remap_2d = exec_->run(
        [&]() { result.tree_2d = remap_tree(merged->tree_2d, task_map); });
    result.tree_3d = remap_tree(merged->tree_3d, task_map);
    exec_->wait(remap_2d);
    sim_.run();
  } else {
    result.tree_2d = std::move(merged->tree_2d);
    result.tree_3d = std::move(merged->tree_3d);
  }
}

namespace {

/// Builds a SessionCheckpoint at round boundary `boundary` (rounds
/// [0, boundary) are folded into the accumulators) and charges its virtual
/// write time. Timing only — the trees are timing-independent, so the
/// bit-identity contract is unaffected.
template <typename Label>
void capture_session_checkpoint(
    sim::Simulator& sim, const machine::MachineConfig& machine,
    const machine::JobConfig& job, const machine::DaemonLayout& layout,
    const StatOptions& options, const app::FrameTable& frames,
    const LabelContext& ctx, const tbon::TbonTopology& topology,
    const tbon::StreamingReduction<StreamSnapshot<Label>>& streaming,
    const PrefixTree<Label>& acc_2d, const PrefixTree<Label>& acc_3d,
    const TaskMap& task_map, std::uint32_t boundary, StatRunResult& result) {
  auto cp = std::make_shared<SessionCheckpoint>();
  cp->machine_name = machine.name;
  cp->num_tasks = layout.num_tasks;
  cp->num_daemons = layout.num_daemons;
  cp->identity_hash = session_identity_hash(machine, job, options);
  cp->spec = options.topology;
  cp->cursor = boundary;
  cp->total_rounds = options.stream_samples;
  cp->interval_seconds = options.stream_interval_seconds;
  cp->repr = options.repr;
  cp->seed = options.seed;
  const std::vector<bool>& dead = streaming.dead_daemons();
  for (std::uint32_t d = 0; d < dead.size(); ++d) {
    if (dead[d]) cp->dead_daemons.push_back(d);
  }
  cp->daemon_cache_valid = streaming.daemon_cache_valid();
  cp->proc_cache_complete = streaming.proc_cache_complete();
  cp->leaf_payload_bytes = result.phases.leaf_payload_bytes;

  // Estimated per-shard inbound bytes: the measured per-daemon payload
  // scaled by each shard's surviving task share (one entry = the unsharded
  // front end). The restore-side re-planner's measured input.
  const double per_task =
      layout.tasks_per_daemon > 0
          ? static_cast<double>(cp->leaf_payload_bytes) /
                layout.tasks_per_daemon
          : 0.0;
  if (topology.sharded()) {
    for (const std::uint64_t tasks :
         tbon::shard_task_counts(topology, layout, dead)) {
      cp->shard_payload_bytes.push_back(
          static_cast<std::uint64_t>(per_task * static_cast<double>(tasks)));
    }
  } else {
    std::uint64_t surviving = 0;
    for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
      if (!dead[d]) surviving += layout.tasks_of(DaemonId(d));
    }
    cp->shard_payload_bytes.push_back(
        static_cast<std::uint64_t>(per_task * static_cast<double>(surviving)));
  }

  ByteSink sink_2d;
  acc_2d.encode(sink_2d, frames, ctx);
  cp->tree_2d_wire = sink_2d.take();
  ByteSink sink_3d;
  acc_3d.encode(sink_3d, frames, ctx);
  cp->tree_3d_wire = sink_3d.take();

  // Classes at the boundary, name-based. Rank order needs the remap for the
  // hierarchical representation; dense labels already carry global ranks.
  std::vector<EquivalenceClass> classes;
  if constexpr (std::is_same_v<Label, HierLabel>) {
    classes = equivalence_classes(remap_tree(acc_3d, task_map));
  } else {
    classes = equivalence_classes(acc_3d);
  }
  cp->classes.reserve(classes.size());
  for (const EquivalenceClass& cls : classes) {
    SessionCheckpoint::ClassEntry entry;
    entry.frames.reserve(cls.path.size());
    for (const FrameId frame : cls.path) {
      entry.frames.emplace_back(frames.name(frame));
    }
    entry.tasks = cls.tasks;
    cp->classes.push_back(std::move(entry));
  }

  const std::vector<std::uint8_t> bytes = cp->encoded();
  result.phases.checkpoint_bytes = bytes.size();
  ++result.phases.checkpoints_taken;
  // The front end streams the envelope to its local disk at RAM-disk
  // bandwidth before the next round starts.
  sim.schedule_in(seconds(static_cast<double>(bytes.size()) / 150.0e6),
                  []() {});
  sim.run();
  result.checkpoint = std::move(cp);
}

}  // namespace

template <typename Label>
void StatScenario::run_stream_phase(const tbon::TbonTopology& topology,
                                    StatRunResult& result,
                                    const TaskMap& task_map,
                                    const std::vector<bool>& daemon_dead) {
  PhaseBreakdown& phases = result.phases;
  const LabelContext ctx{layout_.num_tasks};
  const app::FrameTable& frames = app_->frames();
  const std::uint32_t num_daemons = layout_.num_daemons;
  const std::uint32_t rounds = options_.stream_samples;
  // A restored session re-arms the series at the checkpoint's cursor.
  const std::uint32_t start = restore_ != nullptr ? restore_->cursor : 0;

  const std::vector<net::LinkStat> links_before = net_->link_stats();

  tbon::StreamingReduction<StreamSnapshot<Label>> streaming(
      sim_, *net_, topology,
      make_stream_ops<Label>(costs_.merge, costs_.stream, frames, ctx),
      exec_);
  streaming.set_dead_daemons(daemon_dead);
  streaming.set_full_remerge(options_.stream_full_remerge);

  // Mid-stream failure recovery. The kill cannot ride a simulator timer
  // here: every per-round drain empties the whole event queue, so a timer
  // armed for round 3 would fire during round 0's drain anyway. Instead the
  // victim dies at the first round boundary at or past --fail-at — after the
  // earlier rounds primed its subtree's caches — the ping sweep runs in
  // bounded windows between rounds (a free-running monitor would keep every
  // drain from terminating), and the streaming layer applies the recovery at
  // the next boundary, which invalidates every ancestor cache the
  // re-parenting touches: the post-recovery round equals a from-scratch
  // merge of the survivors.
  const bool kill_armed = options_.fail_at_seconds >= 0.0;
  const SimTime kill_at = sim_.now() + seconds(std::max(0.0, options_.fail_at_seconds));
  tbon::TriggerManager triggers;
  tbon::HealthMonitor monitor(sim_, *net_, topology, triggers,
                              seconds(options_.ping_period_seconds));
  bool victim_detected = false;
  SimTime victim_detected_at = kSimTimeNever;
  const std::uint32_t victim = kill_armed ? tbon::default_victim(topology) : 0;
  if (kill_armed) {
    triggers.register_action([&](const tbon::FailureEvent& event) {
      victim_detected = true;
      victim_detected_at = event.detected_at;
      phases.failure_detect_latency = event.detected_at - event.dead_at;
      streaming.recover(event.proc, [&phases](tbon::RecoveryReport report) {
        if (!report.acted) return;
        phases.orphaned_daemons += report.orphan_daemons;
        phases.lost_daemons += report.lost_daemons;
      });
    });
  }
  const auto maybe_kill = [&]() {
    if (kill_armed && phases.killed_procs == 0 && sim_.now() >= kill_at) {
      streaming.mark_dead(victim);
      monitor.mark_dead(victim, sim_.now());
      ++phases.killed_procs;
    }
  };
  // Ordering pin: a --fail-at landing exactly on a round boundary (t = 0
  // included) must drain *before* the next SampleRequest broadcast, not race
  // the boundary sweep below it — so the kill check runs once here, ahead of
  // the window announcement, and then at every boundary inside the loop.
  maybe_kill();

  // Control plane: one versioned SampleRequest announces the whole window —
  // the cursor to resume at, the remaining round count, the cadence — to
  // every leaf before the first round.
  tbon::SampleRequest request;
  request.cursor = start;
  request.count = rounds - start;
  request.interval = seconds(options_.stream_interval_seconds);
  tbon::broadcast(sim_, *net_, topology, costs_.stream, request, {},
                  [&phases](tbon::BroadcastReport report) {
                    phases.merge_bytes += report.bytes;
                    phases.merge_messages += report.messages;
                  });
  sim_.run();

  // A restore seeds the accumulators from the checkpoint's tree blobs —
  // frame names re-intern idempotently against this session's table. The
  // resumed rounds then merge on top; the canonical merge keeps the final
  // trees bit-identical to the never-killed run.
  PrefixTree<Label> acc_2d;
  PrefixTree<Label> acc_3d;
  if (restore_ != nullptr) {
    auto tree_2d = decode_tree_blob<Label>(restore_->tree_2d_wire,
                                           app_->frames(), ctx);
    check(tree_2d.is_ok(), "restore: checkpoint 2D tree blob failed to decode");
    acc_2d = std::move(tree_2d).value();
    auto tree_3d = decode_tree_blob<Label>(restore_->tree_3d_wire,
                                           app_->frames(), ctx);
    check(tree_3d.is_ok(), "restore: checkpoint 3D tree blob failed to decode");
    acc_3d = std::move(tree_3d).value();
  }
  result.stream_samples.reserve(rounds - start);
  for (std::uint32_t s = start; s < rounds; ++s) {
    maybe_kill();
    // --- gather round: one cursor of samples per reachable daemon ---------
    const SimTime gather_start = sim_.now();
    SimTime gather_end = gather_start;
    std::vector<StreamSnapshot<Label>> snapshots(num_daemons);
    const std::vector<bool>& unreachable = streaming.dead_daemons();
    for (std::uint32_t d = 0; d < num_daemons; ++d) {
      if (unreachable[d]) continue;
      auto* snapshot = &snapshots[d];
      const std::uint32_t daemon_id = d;
      stackwalker::TraceSink sink =
          [snapshot, daemon_id](TaskId task, std::uint32_t local,
                                std::uint32_t, std::uint32_t,
                                const app::CallPath& path) {
            Label seed;
            if constexpr (std::is_same_v<Label, GlobalLabel>) {
              seed = GlobalLabel::for_task(task.value());
            } else {
              seed = HierLabel::for_local(daemon_id, local);
            }
            snapshot->tree.insert(path, seed);
          };
      walker_->sample_daemon_from(
          DaemonId(d), s, 1, sink,
          [&phases, &gather_end](const stackwalker::SampleReport& report) {
            phases.daemon_sample_seconds.add(to_seconds(report.total()));
            phases.sample_symbol_io_max =
                std::max(phases.sample_symbol_io_max, report.symbol_io_time);
            gather_end = std::max(gather_end, report.finished_at);
          });
    }
    sim_.run();
    if (s == start) {
      std::uint32_t first_alive = 0;
      while (first_alive < num_daemons && unreachable[first_alive]) {
        ++first_alive;
      }
      check(first_alive < num_daemons, "stream phase with every daemon dead");
      phases.leaf_payload_bytes =
          snapshot_wire_bytes(snapshots[first_alive], frames, ctx);
    }

    // --- merge round ------------------------------------------------------
    const SimTime merge_start = sim_.now();
    std::optional<tbon::StreamRoundResult<StreamSnapshot<Label>>> merged;
    streaming.run_round(
        s, std::move(snapshots),
        [&merged](tbon::StreamRoundResult<StreamSnapshot<Label>> r) {
          merged = std::move(r);
        });
    sim_.run();
    if (!merged.has_value()) {
      phases.merge_status = unavailable(
          "stream stalled: a tool process died mid-stream and round " +
          std::to_string(s) + " could never complete");
      phases.stream_links = link_stats_since(*net_, links_before);
      return;
    }

    StreamSampleStats stats;
    stats.sample = s;
    stats.sample_time = gather_end - gather_start;
    stats.merge_time = merged->finished_at - merge_start;
    stats.merge_bytes = merged->bytes_moved;
    stats.merge_messages = merged->messages;
    stats.changed_daemons = merged->changed_daemons;
    stats.remerged_procs = merged->remerged_procs;
    stats.cached_procs = merged->cached_procs;
    stats.changed = merged->changed;
    result.stream_samples.push_back(stats);

    phases.sample_time += stats.sample_time;
    phases.merge_time += stats.merge_time;
    phases.merge_bytes += stats.merge_bytes;
    phases.merge_messages += stats.merge_messages;
    ++phases.stream_rounds;
    if (stats.changed) ++phases.stream_changed_rounds;
    if (victim_detected_at != kSimTimeNever &&
        phases.recovery_remerge_time == 0 &&
        merged->finished_at > victim_detected_at) {
      phases.recovery_remerge_time = merged->finished_at - victim_detected_at;
    }

    // Fold the round's snapshot into the accumulated trees. The canonical
    // merge makes the fold order-independent, so the accumulated trees are
    // bit-identical to the classic batched 2D/3D trees.
    if (s == 0) {
      acc_2d = merged->payload.tree;
      acc_3d = std::move(merged->payload.tree);
    } else {
      acc_3d.merge(merged->payload.tree);
    }

    // --- round boundary: durability hooks ---------------------------------
    const std::uint32_t boundary = s + 1;
    const bool vacate_here =
        options_.vacate_at_round >= 0 &&
        boundary == static_cast<std::uint32_t>(options_.vacate_at_round);
    if (vacate_here ||
        (options_.checkpoint_period > 0 && boundary < rounds &&
         boundary % options_.checkpoint_period == 0)) {
      capture_session_checkpoint<Label>(sim_, machine_, job_, layout_,
                                        options_, frames, ctx, topology,
                                        streaming, acc_2d, acc_3d, task_map,
                                        boundary, result);
    }
    if (vacate_here) {
      // Simulated front-end loss: the session stops here, unfinalized (the
      // checkpoint just captured is what resumes it). Status stays OK — a
      // vacate is an operation, not a failure.
      result.vacated = true;
      phases.health_sweeps = monitor.sweeps_completed();
      phases.stream_links = link_stats_since(*net_, links_before);
      return;
    }

    if (s + 1 == rounds) break;
    // Detection window: while a kill has fired but gone unnoticed, let the
    // monitor run a bounded burst of sweeps before the next round.
    if (kill_armed && phases.killed_procs > 0 && !victim_detected) {
      monitor.start();
      sim_.schedule_in(3 * seconds(options_.ping_period_seconds),
                       [&monitor]() { monitor.stop(); });
      sim_.run();
    }
    if (options_.stream_interval_seconds > 0.0) {
      // Fixed cadence: the next round starts one interval after this round
      // started gathering, or immediately when the round overran it.
      const SimTime next_at =
          gather_start + seconds(options_.stream_interval_seconds);
      if (next_at > sim_.now()) {
        sim_.schedule_at(next_at, []() {});
        sim_.run();
      }
    }
  }
  phases.health_sweeps = monitor.sweeps_completed();
  phases.stream_links = link_stats_since(*net_, links_before);

  // Finalization: identical to the classic merge phase, except survivors
  // are judged after mid-stream losses (a daemon whose leaf died mid-stream
  // stopped contributing and is not remapped).
  const std::vector<bool>& final_dead = streaming.dead_daemons();
  if constexpr (std::is_same_v<Label, HierLabel>) {
    if (topology.sharded()) {
      phases.remap_time = machine::sharded_remap_cost(
          costs_.merge,
          tbon::largest_shard_task_count(topology, layout_, final_dead));
    } else {
      std::uint64_t surviving_tasks = 0;
      for (std::uint32_t d = 0; d < layout_.num_daemons; ++d) {
        if (!final_dead[d]) surviving_tasks += layout_.tasks_of(DaemonId(d));
      }
      phases.remap_time =
          machine::frontend_remap_cost(costs_.merge, surviving_tasks);
    }
    sim_.schedule_in(phases.remap_time, []() {});
    auto remap_2d =
        exec_->run([&]() { result.tree_2d = remap_tree(acc_2d, task_map); });
    result.tree_3d = remap_tree(acc_3d, task_map);
    exec_->wait(remap_2d);
    sim_.run();
  } else {
    result.tree_2d = std::move(acc_2d);
    result.tree_3d = std::move(acc_3d);
  }
}

}  // namespace petastat::stat
