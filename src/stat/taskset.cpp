#include "stat/taskset.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace petastat::stat {

// ---------------------------------------------------------------------------
// TaskSet

TaskSet TaskSet::single(std::uint32_t task) {
  TaskSet s;
  s.intervals_.push_back({task, task});
  return s;
}

TaskSet TaskSet::range(std::uint32_t lo, std::uint32_t hi) {
  check(lo <= hi, "TaskSet::range lo > hi");
  TaskSet s;
  s.intervals_.push_back({lo, hi});
  return s;
}

TaskSet TaskSet::from_sorted(std::span<const std::uint32_t> sorted_unique) {
  TaskSet s;
  for (const auto v : sorted_unique) s.insert(v);
  return s;
}

void TaskSet::insert(std::uint32_t task) { insert_range(task, task); }

void TaskSet::insert_range(std::uint32_t lo, std::uint32_t hi) {
  check(lo <= hi, "TaskSet::insert_range lo > hi");
  // Find the first interval that could touch [lo, hi] (adjacency counts).
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), lo,
      [](const Interval& iv, std::uint32_t v) {
        return iv.hi != UINT32_MAX && iv.hi + 1 < v;
      });
  Interval merged{lo, hi};
  auto erase_begin = it;
  while (it != intervals_.end() && it->lo <= (hi == UINT32_MAX ? hi : hi + 1)) {
    merged.lo = std::min(merged.lo, it->lo);
    merged.hi = std::max(merged.hi, it->hi);
    ++it;
  }
  if (erase_begin == it) {
    intervals_.insert(erase_begin, merged);
  } else {
    *erase_begin = merged;
    intervals_.erase(erase_begin + 1, it);
  }
}

void TaskSet::union_with(const TaskSet& other) {
  if (other.intervals_.empty()) return;
  if (intervals_.empty()) {
    intervals_ = other.intervals_;
    return;
  }
  // Linear two-pointer merge of sorted interval lists.
  std::vector<Interval> result;
  result.reserve(intervals_.size() + other.intervals_.size());
  std::size_t i = 0, j = 0;
  auto push = [&result](Interval iv) {
    if (!result.empty() && iv.lo <= (result.back().hi == UINT32_MAX
                                         ? UINT32_MAX
                                         : result.back().hi + 1)) {
      result.back().hi = std::max(result.back().hi, iv.hi);
    } else {
      result.push_back(iv);
    }
  };
  while (i < intervals_.size() || j < other.intervals_.size()) {
    if (j >= other.intervals_.size() ||
        (i < intervals_.size() && intervals_[i].lo <= other.intervals_[j].lo)) {
      push(intervals_[i++]);
    } else {
      push(other.intervals_[j++]);
    }
  }
  intervals_ = std::move(result);
}

bool TaskSet::contains(std::uint32_t task) const {
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), task,
                             [](std::uint32_t v, const Interval& iv) {
                               return v < iv.lo;
                             });
  if (it == intervals_.begin()) return false;
  --it;
  return task >= it->lo && task <= it->hi;
}

std::uint64_t TaskSet::count() const {
  std::uint64_t n = 0;
  for (const auto& iv : intervals_) {
    n += static_cast<std::uint64_t>(iv.hi) - iv.lo + 1;
  }
  return n;
}

std::vector<std::uint32_t> TaskSet::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (const auto& iv : intervals_) {
    for (std::uint32_t v = iv.lo;; ++v) {
      out.push_back(v);
      if (v == iv.hi) break;
    }
  }
  return out;
}

std::uint32_t TaskSet::max_task() const {
  check(!intervals_.empty(), "TaskSet::max_task on empty set");
  return intervals_.back().hi;
}

bool TaskSet::intersects(const TaskSet& other) const {
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (a.hi < b.lo) {
      ++i;
    } else if (b.hi < a.lo) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

TaskSet TaskSet::difference(const TaskSet& other) const {
  TaskSet out;
  std::size_t j = 0;
  for (const Interval& a : intervals_) {
    std::uint32_t lo = a.lo;
    bool open = true;
    while (j < other.intervals_.size() && other.intervals_[j].hi < lo) ++j;
    std::size_t k = j;
    while (open && k < other.intervals_.size() && other.intervals_[k].lo <= a.hi) {
      const Interval& b = other.intervals_[k];
      if (b.lo > lo) out.intervals_.push_back({lo, b.lo - 1});
      if (b.hi >= a.hi) {
        open = false;
      } else {
        lo = b.hi + 1;
        ++k;
      }
    }
    if (open) out.intervals_.push_back({lo, a.hi});
  }
  return out;
}

std::string TaskSet::edge_label(std::size_t max_items) const {
  const auto tasks = to_vector();
  return format_edge_label(tasks, max_items);
}

void TaskSet::encode_dense(ByteSink& sink, std::uint32_t job_size) const {
  const std::uint64_t nbytes = dense_wire_bytes(job_size);
  std::vector<std::uint8_t> bytes(nbytes, 0);
  for (const auto& iv : intervals_) {
    check(iv.hi < job_size, "TaskSet::encode_dense task >= job_size");
    for (std::uint32_t v = iv.lo;; ++v) {
      bytes[v >> 3] |= static_cast<std::uint8_t>(1u << (v & 7));
      if (v == iv.hi) break;
    }
  }
  sink.put_bytes(bytes);
}

Result<TaskSet> TaskSet::decode_dense(ByteSource& source,
                                      std::uint32_t job_size) {
  const std::uint64_t nbytes = (static_cast<std::uint64_t>(job_size) + 7) / 8;
  std::span<const std::uint8_t> bytes;
  if (auto s = source.get_bytes(nbytes, bytes); !s.is_ok()) return s;
  TaskSet set;
  std::uint32_t run_start = 0;
  bool in_run = false;
  for (std::uint32_t v = 0; v < job_size; ++v) {
    const bool bit = (bytes[v >> 3] >> (v & 7)) & 1;
    if (bit && !in_run) {
      run_start = v;
      in_run = true;
    } else if (!bit && in_run) {
      set.intervals_.push_back({run_start, v - 1});
      in_run = false;
    }
  }
  if (in_run) set.intervals_.push_back({run_start, job_size - 1});
  return set;
}

std::uint64_t TaskSet::ranged_wire_bytes() const {
  return 1 + ranged_body_bytes();  // version byte + body
}

void TaskSet::encode_ranged(ByteSink& sink) const {
  put_wire_version(sink);
  encode_ranged_body(sink);
}

Result<TaskSet> TaskSet::decode_ranged(ByteSource& source) {
  if (auto s = check_wire_version(source); !s.is_ok()) return s;
  return decode_ranged_body(source);
}

std::uint64_t TaskSet::ranged_body_bytes() const {
  ByteSink sink;
  encode_ranged_body(sink);
  return sink.size();
}

void TaskSet::encode_ranged_body(ByteSink& sink) const {
  sink.put_varint(intervals_.size());
  std::uint32_t prev_hi = 0;
  bool first = true;
  for (const auto& iv : intervals_) {
    // Delta-code: gap from the previous interval's end, then length.
    const std::uint32_t gap = first ? iv.lo : iv.lo - prev_hi - 1;
    sink.put_varint(gap);
    sink.put_varint(iv.hi - iv.lo);
    prev_hi = iv.hi;
    first = false;
  }
}

Result<TaskSet> TaskSet::decode_ranged_body(ByteSource& source) {
  std::uint64_t n = 0;
  if (auto s = source.get_varint(n); !s.is_ok()) return s;
  TaskSet set;
  set.intervals_.reserve(source.clamped_count(n));
  std::uint64_t cursor = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t gap = 0, len = 0;
    if (auto s = source.get_varint(gap); !s.is_ok()) return s;
    if (auto s = source.get_varint(len); !s.is_ok()) return s;
    if (gap > UINT32_MAX || len > UINT32_MAX) {
      return invalid_argument("ranged task set overflow");
    }
    const std::uint64_t lo = first ? gap : cursor + 1 + gap;
    const std::uint64_t hi = lo + len;
    if (hi > UINT32_MAX) return invalid_argument("ranged task set overflow");
    set.intervals_.push_back(
        {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)});
    cursor = hi;
    first = false;
  }
  return set;
}

// ---------------------------------------------------------------------------
// DenseBitVector

DenseBitVector::DenseBitVector(std::uint32_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

void DenseBitVector::set(std::uint32_t bit) {
  check(bit < size_, "DenseBitVector::set out of range");
  words_[bit >> 6] |= 1ull << (bit & 63);
}

bool DenseBitVector::test(std::uint32_t bit) const {
  check(bit < size_, "DenseBitVector::test out of range");
  return (words_[bit >> 6] >> (bit & 63)) & 1;
}

void DenseBitVector::or_with(const DenseBitVector& other) {
  check(size_ == other.size_, "DenseBitVector::or_with size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

std::uint64_t DenseBitVector::count() const {
  std::uint64_t n = 0;
  for (const auto w : words_) n += static_cast<std::uint64_t>(__builtin_popcountll(w));
  return n;
}

DenseBitVector DenseBitVector::from_task_set(const TaskSet& set,
                                             std::uint32_t size) {
  DenseBitVector bits(size);
  for (const auto& iv : set.intervals()) {
    check(iv.hi < size, "from_task_set task >= size");
    for (std::uint32_t v = iv.lo;; ++v) {
      bits.set(v);
      if (v == iv.hi) break;
    }
  }
  return bits;
}

TaskSet DenseBitVector::to_task_set() const {
  TaskSet set;
  std::uint32_t run_start = 0;
  bool in_run = false;
  for (std::uint32_t v = 0; v < size_; ++v) {
    if (test(v)) {
      if (!in_run) {
        run_start = v;
        in_run = true;
      }
    } else if (in_run) {
      set.insert_range(run_start, v - 1);
      in_run = false;
    }
  }
  if (in_run) set.insert_range(run_start, size_ - 1);
  return set;
}

void DenseBitVector::encode(ByteSink& sink) const {
  const std::uint64_t nbytes = wire_bytes();
  for (std::uint64_t b = 0; b < nbytes; ++b) {
    sink.put_u8(static_cast<std::uint8_t>(words_[b >> 3] >> ((b & 7) * 8)));
  }
}

Result<DenseBitVector> DenseBitVector::decode(ByteSource& source,
                                              std::uint32_t size) {
  DenseBitVector bits(size);
  const std::uint64_t nbytes = bits.wire_bytes();
  std::span<const std::uint8_t> bytes;
  if (auto s = source.get_bytes(nbytes, bytes); !s.is_ok()) return s;
  for (std::uint64_t b = 0; b < nbytes; ++b) {
    bits.words_[b >> 3] |= static_cast<std::uint64_t>(bytes[b]) << ((b & 7) * 8);
  }
  return bits;
}

}  // namespace petastat::stat
