#include "stat/checkpoint.hpp"

#include <cstring>

#include "app/callpath.hpp"

namespace petastat::stat {

namespace {

/// Raw bit-vector page, low bit first — the dense TaskSet page layout. The
/// bit count is carried by the surrounding envelope, never by the page.
void put_dense_bits(ByteSink& sink, const std::vector<bool>& bits) {
  const std::size_t bytes = (bits.size() + 7) / 8;
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint8_t b = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      const std::size_t idx = i * 8 + j;
      if (idx < bits.size() && bits[idx]) {
        b |= static_cast<std::uint8_t>(1u << j);
      }
    }
    sink.put_u8(b);
  }
}

[[nodiscard]] Status get_dense_bits(ByteSource& source, std::uint64_t count,
                                    std::vector<bool>& out) {
  // Read the page before sizing the vector: a corrupt count header then
  // fails as clean truncation instead of a giant allocation.
  const std::size_t bytes = static_cast<std::size_t>((count + 7) / 8);
  std::span<const std::uint8_t> raw;
  if (auto s = source.get_bytes(bytes, raw); !s.is_ok()) return s;
  out.assign(static_cast<std::size_t>(count), false);
  for (std::uint64_t i = 0; i < count; ++i) {
    out[static_cast<std::size_t>(i)] = (raw[i / 8] >> (i % 8)) & 1u;
  }
  return Status::ok();
}

void put_blob(ByteSink& sink, const std::vector<std::uint8_t>& blob) {
  sink.put_varint(blob.size());
  sink.put_bytes(blob);
}

[[nodiscard]] Status get_blob(ByteSource& source,
                              std::vector<std::uint8_t>& out) {
  std::uint64_t len = 0;
  if (auto s = source.get_varint(len); !s.is_ok()) return s;
  std::span<const std::uint8_t> raw;
  if (auto s = source.get_bytes(static_cast<std::size_t>(len), raw);
      !s.is_ok()) {
    return s;
  }
  out.assign(raw.begin(), raw.end());
  return Status::ok();
}

/// Structural validation of a nested tree blob: decode against a scratch
/// frame table so a corrupt blob fails here, not at restore time.
[[nodiscard]] Status validate_tree_blob(const std::vector<std::uint8_t>& blob,
                                        TaskSetRepr repr,
                                        std::uint32_t num_tasks) {
  app::FrameTable scratch;
  const LabelContext ctx{num_tasks};
  if (repr == TaskSetRepr::kDenseGlobal) {
    auto tree = decode_tree_blob<GlobalLabel>(blob, scratch, ctx);
    return tree.is_ok() ? Status::ok() : tree.status();
  }
  auto tree = decode_tree_blob<HierLabel>(blob, scratch, ctx);
  return tree.is_ok() ? Status::ok() : tree.status();
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) { fnv_mix(h, &v, 8); }

void fnv_mix_str(std::uint64_t& h, const std::string& s) {
  fnv_mix_u64(h, s.size());
  fnv_mix(h, s.data(), s.size());
}

}  // namespace

void SessionCheckpoint::encode(ByteSink& sink) const {
  put_wire_version(sink);
  sink.put_string(machine_name);
  sink.put_u32(num_tasks);
  sink.put_u32(num_daemons);
  sink.put_u64(identity_hash);

  // Resolved TopologySpec, nested unversioned (the envelope's byte covers
  // it, per the wire-format evolution rules).
  sink.put_u32(spec.depth);
  sink.put_varint(spec.level_widths.size());
  for (const std::uint32_t w : spec.level_widths) sink.put_u32(w);
  sink.put_u8(spec.bgl_rules ? 1 : 0);
  sink.put_u32(spec.bgl_second_level);
  sink.put_u32(spec.fe_shards);
  sink.put_u8(static_cast<std::uint8_t>(spec.reducer_placement));

  sink.put_u32(cursor);
  sink.put_u32(total_rounds);
  std::uint64_t interval_bits = 0;
  static_assert(sizeof(interval_bits) == sizeof(interval_seconds));
  std::memcpy(&interval_bits, &interval_seconds, sizeof(interval_bits));
  sink.put_u64(interval_bits);
  sink.put_u8(repr == TaskSetRepr::kDenseGlobal ? 0 : 1);
  sink.put_u64(seed);

  sink.put_varint(dead_daemons.size());
  for (const std::uint32_t d : dead_daemons) sink.put_varint(d);
  put_dense_bits(sink, daemon_cache_valid);
  sink.put_varint(proc_cache_complete.size());
  put_dense_bits(sink, proc_cache_complete);

  sink.put_varint(leaf_payload_bytes);
  sink.put_varint(shard_payload_bytes.size());
  for (const std::uint64_t b : shard_payload_bytes) sink.put_varint(b);

  put_blob(sink, tree_2d_wire);
  put_blob(sink, tree_3d_wire);

  sink.put_varint(classes.size());
  for (const ClassEntry& entry : classes) {
    sink.put_varint(entry.frames.size());
    for (const std::string& frame : entry.frames) sink.put_string(frame);
    entry.tasks.encode_ranged_body(sink);
  }
}

std::vector<std::uint8_t> SessionCheckpoint::encoded() const {
  ByteSink sink;
  encode(sink);
  return sink.take();
}

Result<SessionCheckpoint> SessionCheckpoint::decode(ByteSource& source) {
  if (auto s = check_wire_version(source); !s.is_ok()) return s;
  SessionCheckpoint cp;
  if (auto s = source.get_string(cp.machine_name); !s.is_ok()) return s;
  if (auto s = source.get_u32(cp.num_tasks); !s.is_ok()) return s;
  if (auto s = source.get_u32(cp.num_daemons); !s.is_ok()) return s;
  if (auto s = source.get_u64(cp.identity_hash); !s.is_ok()) return s;
  if (cp.num_tasks == 0 || cp.num_daemons == 0) {
    return invalid_argument("checkpoint without a job: zero tasks or daemons");
  }

  if (auto s = source.get_u32(cp.spec.depth); !s.is_ok()) return s;
  std::uint64_t width_count = 0;
  if (auto s = source.get_varint(width_count); !s.is_ok()) return s;
  cp.spec.level_widths.clear();
  cp.spec.level_widths.reserve(source.clamped_count(width_count));
  for (std::uint64_t i = 0; i < width_count; ++i) {
    std::uint32_t w = 0;
    if (auto s = source.get_u32(w); !s.is_ok()) return s;
    cp.spec.level_widths.push_back(w);
  }
  std::uint8_t bgl = 0;
  if (auto s = source.get_u8(bgl); !s.is_ok()) return s;
  if (bgl > 1) return invalid_argument("checkpoint bgl_rules byte corrupt");
  cp.spec.bgl_rules = bgl == 1;
  if (auto s = source.get_u32(cp.spec.bgl_second_level); !s.is_ok()) return s;
  if (auto s = source.get_u32(cp.spec.fe_shards); !s.is_ok()) return s;
  if (cp.spec.fe_shards == 0) {
    return invalid_argument("checkpoint spec has fe_shards 0");
  }
  std::uint8_t placement = 0;
  if (auto s = source.get_u8(placement); !s.is_ok()) return s;
  if (placement > static_cast<std::uint8_t>(tbon::ReducerPlacement::kRoute)) {
    return invalid_argument("checkpoint reducer placement byte corrupt");
  }
  cp.spec.reducer_placement = static_cast<tbon::ReducerPlacement>(placement);

  if (auto s = source.get_u32(cp.cursor); !s.is_ok()) return s;
  if (auto s = source.get_u32(cp.total_rounds); !s.is_ok()) return s;
  if (cp.total_rounds == 0) {
    return invalid_argument("checkpoint of an empty streaming series");
  }
  std::uint64_t interval_bits = 0;
  if (auto s = source.get_u64(interval_bits); !s.is_ok()) return s;
  std::memcpy(&cp.interval_seconds, &interval_bits,
              sizeof(cp.interval_seconds));
  if (!(cp.interval_seconds >= 0.0)) {  // NaN and negatives both fail
    return invalid_argument("checkpoint stream interval corrupt");
  }
  std::uint8_t repr = 0;
  if (auto s = source.get_u8(repr); !s.is_ok()) return s;
  if (repr > 1) {
    return invalid_argument("checkpoint task-set representation byte corrupt");
  }
  cp.repr = repr == 0 ? TaskSetRepr::kDenseGlobal : TaskSetRepr::kHierarchical;
  if (auto s = source.get_u64(cp.seed); !s.is_ok()) return s;

  std::uint64_t dead_count = 0;
  if (auto s = source.get_varint(dead_count); !s.is_ok()) return s;
  cp.dead_daemons.clear();
  cp.dead_daemons.reserve(source.clamped_count(dead_count));
  for (std::uint64_t i = 0; i < dead_count; ++i) {
    std::uint64_t d = 0;
    if (auto s = source.get_varint(d); !s.is_ok()) return s;
    if (d >= cp.num_daemons ||
        (!cp.dead_daemons.empty() && d <= cp.dead_daemons.back())) {
      return invalid_argument("checkpoint dead-daemon list corrupt");
    }
    cp.dead_daemons.push_back(static_cast<std::uint32_t>(d));
  }
  if (auto s = get_dense_bits(source, cp.num_daemons, cp.daemon_cache_valid);
      !s.is_ok()) {
    return s;
  }
  std::uint64_t proc_count = 0;
  if (auto s = source.get_varint(proc_count); !s.is_ok()) return s;
  if (auto s = get_dense_bits(source, proc_count, cp.proc_cache_complete);
      !s.is_ok()) {
    return s;
  }

  if (auto s = source.get_varint(cp.leaf_payload_bytes); !s.is_ok()) return s;
  std::uint64_t shard_count = 0;
  if (auto s = source.get_varint(shard_count); !s.is_ok()) return s;
  cp.shard_payload_bytes.clear();
  cp.shard_payload_bytes.reserve(source.clamped_count(shard_count));
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    std::uint64_t b = 0;
    if (auto s = source.get_varint(b); !s.is_ok()) return s;
    cp.shard_payload_bytes.push_back(b);
  }

  if (auto s = get_blob(source, cp.tree_2d_wire); !s.is_ok()) return s;
  if (auto s = get_blob(source, cp.tree_3d_wire); !s.is_ok()) return s;
  if (auto s = validate_tree_blob(cp.tree_2d_wire, cp.repr, cp.num_tasks);
      !s.is_ok()) {
    return s;
  }
  if (auto s = validate_tree_blob(cp.tree_3d_wire, cp.repr, cp.num_tasks);
      !s.is_ok()) {
    return s;
  }

  std::uint64_t class_count = 0;
  if (auto s = source.get_varint(class_count); !s.is_ok()) return s;
  cp.classes.clear();
  cp.classes.reserve(source.clamped_count(class_count));
  for (std::uint64_t i = 0; i < class_count; ++i) {
    ClassEntry entry;
    std::uint64_t frame_count = 0;
    if (auto s = source.get_varint(frame_count); !s.is_ok()) return s;
    entry.frames.reserve(source.clamped_count(frame_count));
    for (std::uint64_t f = 0; f < frame_count; ++f) {
      std::string name;
      if (auto s = source.get_string(name); !s.is_ok()) return s;
      entry.frames.push_back(std::move(name));
    }
    auto tasks = TaskSet::decode_ranged_body(source);
    if (!tasks.is_ok()) return tasks.status();
    entry.tasks = std::move(tasks).value();
    cp.classes.push_back(std::move(entry));
  }
  return cp;
}

bool operator==(const SessionCheckpoint::ClassEntry& a,
                const SessionCheckpoint::ClassEntry& b) {
  return a.frames == b.frames && a.tasks == b.tasks;
}

bool SessionCheckpoint::operator==(const SessionCheckpoint& other) const {
  return machine_name == other.machine_name && num_tasks == other.num_tasks &&
         num_daemons == other.num_daemons &&
         identity_hash == other.identity_hash &&
         spec.depth == other.spec.depth &&
         spec.level_widths == other.spec.level_widths &&
         spec.bgl_rules == other.spec.bgl_rules &&
         spec.bgl_second_level == other.spec.bgl_second_level &&
         spec.fe_shards == other.spec.fe_shards &&
         spec.reducer_placement == other.spec.reducer_placement &&
         cursor == other.cursor && total_rounds == other.total_rounds &&
         interval_seconds == other.interval_seconds && repr == other.repr &&
         seed == other.seed && dead_daemons == other.dead_daemons &&
         daemon_cache_valid == other.daemon_cache_valid &&
         proc_cache_complete == other.proc_cache_complete &&
         leaf_payload_bytes == other.leaf_payload_bytes &&
         shard_payload_bytes == other.shard_payload_bytes &&
         tree_2d_wire == other.tree_2d_wire &&
         tree_3d_wire == other.tree_3d_wire && classes == other.classes;
}

std::uint64_t session_identity_hash(const machine::MachineConfig& machine,
                                    const machine::JobConfig& job,
                                    const StatOptions& options) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_str(h, machine.name);
  fnv_mix_u64(h, job.num_tasks);
  fnv_mix_u64(h, static_cast<std::uint64_t>(job.mode));
  fnv_mix_u64(h, job.threads_per_task);
  fnv_mix_u64(h, options.seed);
  fnv_mix_u64(h, options.repr == TaskSetRepr::kDenseGlobal ? 0 : 1);
  fnv_mix_u64(h, static_cast<std::uint64_t>(options.app));
  fnv_mix_u64(h, options.statbench_classes);
  fnv_mix_u64(h, static_cast<std::uint64_t>(options.evolution));
  fnv_mix_u64(h, options.drift_period);
  fnv_mix_u64(h, options.shuffle_task_map ? 1 : 0);
  return h;
}

}  // namespace petastat::stat
