#include "stat/statbench.hpp"

#include <algorithm>

#include "app/appmodel.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stat/filter.hpp"
#include "tbon/reduction.hpp"

namespace petastat::stat {

namespace {

template <typename Label, typename MakeSeed>
StatBenchResult run_with_label(const StatBenchConfig& config,
                               const machine::DaemonLayout& layout,
                               const tbon::TbonTopology& topology,
                               const app::StatBenchApp& app,
                               const machine::CostModel& costs,
                               MakeSeed&& make_seed) {
  StatBenchResult result;
  result.virtual_tasks = config.virtual_tasks;
  result.physical_daemons = layout.num_daemons;
  result.virtual_tasks_per_daemon = layout.tasks_per_daemon;

  sim::Simulator sim;
  sim::Executor exec(config.exec_threads);
  net::Network network(sim, net::build_switch_graph(config.machine));

  // Each daemon synthesizes traces for its virtual task block and builds its
  // local trees — exactly the tool-side work, minus the StackWalker. Daemons
  // are independent, so each is one executor job; the slowest-daemon
  // reduction below runs in daemon order either way.
  std::vector<StatPayload<Label>> payloads(layout.num_daemons);
  std::vector<double> generate_s(layout.num_daemons, 0.0);
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    exec.run([&, d]() {
      const std::uint32_t first = layout.first_task_of(DaemonId(d));
      const std::uint32_t count = layout.tasks_of(DaemonId(d));
      for (std::uint32_t s = 0; s < config.num_samples; ++s) {
        for (std::uint32_t i = 0; i < count; ++i) {
          const TaskId task(first + i);
          const app::CallPath path = app.stack(task, 0, s);
          const Label seed = make_seed(d, i, task);
          if (s == 0) payloads[d].tree_2d.insert(path, seed);
          payloads[d].tree_3d.insert(path, seed);
          generate_s[d] += to_seconds(costs.sampling.local_merge_per_node) *
                           static_cast<double>(path.size());
        }
      }
    });
  }
  exec.wait_all();
  double slowest_generate_s = 0.0;
  for (const double g : generate_s) {
    slowest_generate_s = std::max(slowest_generate_s, g);
  }
  result.generate_time = seconds(slowest_generate_s);
  sim.schedule_in(result.generate_time, []() {});
  sim.run();

  const LabelContext ctx{static_cast<std::uint32_t>(config.virtual_tasks)};
  const app::FrameTable& frames = app.frames();
  result.leaf_payload_bytes = payload_wire_bytes(payloads.front(), frames, ctx);

  const SimTime merge_start = sim.now();
  tbon::Reduction<StatPayload<Label>> reduction(
      sim, network, topology,
      make_stat_reduce_ops<Label>(costs.merge, frames, ctx), &exec);
  std::optional<StatPayload<Label>> merged;
  std::uint64_t bytes = 0;
  reduction.start(std::move(payloads),
                  [&](tbon::ReduceResult<StatPayload<Label>> r) {
                    merged = std::move(r.payload);
                    bytes = r.bytes_moved;
                  });
  sim.run();
  check(merged.has_value(), "statbench reduction did not complete");
  result.merge_time = sim.now() - merge_start;
  result.merge_bytes = bytes;

  if constexpr (std::is_same_v<Label, HierLabel>) {
    if (topology.sharded()) {
      // Reducers remap their slices concurrently (same pricing as the
      // scenario's sharded merge).
      result.remap_time = machine::sharded_remap_cost(
          costs.merge, tbon::largest_shard_task_count(topology, layout));
    } else {
      result.remap_time =
          machine::frontend_remap_cost(costs.merge, config.virtual_tasks);
    }
    // Emulated tasks are generated in rank order, so the identity map is
    // the correct remap (the shuffled case is exercised by the scenario).
    const TaskMap map = TaskMap::identity(layout);
    result.tree_3d = remap_tree(merged->tree_3d, map);
  } else {
    result.tree_3d = std::move(merged->tree_3d);
  }
  result.classes = equivalence_classes(result.tree_3d);
  return result;
}

}  // namespace

StatBenchResult run_statbench(const StatBenchConfig& config) {
  StatBenchResult result;
  if (config.virtual_tasks == 0 || config.virtual_tasks > (1ull << 31)) {
    result.status = invalid_argument("virtual_tasks out of range");
    return result;
  }

  // Virtual layout: the physical daemons split the virtual job evenly.
  machine::DaemonLayout layout;
  layout.num_daemons = config.physical_daemons;
  if (layout.num_daemons == 0) {
    // Full machine: every I/O node (or compute node on cluster machines).
    layout.num_daemons =
        config.machine.daemon_placement == machine::DaemonPlacement::kPerIoNode
            ? config.machine.io_nodes
            : config.machine.compute_nodes;
  }
  layout.num_tasks = static_cast<std::uint32_t>(config.virtual_tasks);
  layout.tasks_per_daemon = static_cast<std::uint32_t>(
      (config.virtual_tasks + layout.num_daemons - 1) / layout.num_daemons);
  // Trim daemons that would hold no tasks (tiny virtual jobs).
  layout.num_daemons = static_cast<std::uint32_t>(
      (config.virtual_tasks + layout.tasks_per_daemon - 1) /
      layout.tasks_per_daemon);

  auto topo = tbon::build_topology(config.machine, layout, config.topology);
  if (!topo.is_ok()) {
    result.status = topo.status();
    return result;
  }

  app::StatBenchOptions app_options;
  app_options.num_tasks = layout.num_tasks;
  app_options.num_classes = config.app_classes;
  app_options.seed = config.seed;
  const app::StatBenchApp app(app_options);

  const machine::CostModel costs = machine::default_cost_model(config.machine);

  // The shape mirrors the scenario's merge phase, but over emulated data.
  if (config.repr == TaskSetRepr::kDenseGlobal) {
    return run_with_label<GlobalLabel>(
        config, layout, topo.value(), app, costs,
        [](std::uint32_t, std::uint32_t, TaskId task) {
          return GlobalLabel::for_task(task.value());
        });
  }
  return run_with_label<HierLabel>(
      config, layout, topo.value(), app, costs,
      [](std::uint32_t daemon, std::uint32_t local, TaskId) {
        return HierLabel::for_local(daemon, local);
      });
}

}  // namespace petastat::stat
