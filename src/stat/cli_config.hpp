// Command-line configuration for the `petastat` driver tool. Parsing is a
// library function so it can be unit-tested without spawning the binary.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "machine/machine.hpp"
#include "stat/scenario.hpp"

namespace petastat::stat {

enum class OutputFormat { kText, kCsv, kJson };

struct CliConfig {
  machine::MachineConfig machine = machine::atlas();
  machine::JobConfig job{.num_tasks = 1024};
  StatOptions options;
  OutputFormat format = OutputFormat::kText;
  bool print_tree = false;
  std::string dot_path;  // write the 3D tree as DOT when non-empty
  /// Write the last SessionCheckpoint the run captured here (from
  /// `--checkpoint-period N:PATH` or `--vacate-at R:PATH`).
  std::string checkpoint_path;
  /// Resume from the SessionCheckpoint file at this path (`--restore`).
  std::string restore_path;
  /// Multi-session service mode: replay this arrival trace through the
  /// service::SessionScheduler instead of running one scenario. Kept as a
  /// path string here (stat/ does not depend on service/); the driver
  /// dispatches on it.
  std::string service_trace_path;
  /// Scheduler policy override for service mode ("fifo"/"backfill"; empty =
  /// whatever the trace says). Validated at parse time.
  std::string service_policy;
};

/// Usage text for --help.
[[nodiscard]] std::string cli_usage();

/// Parses `args` (excluding argv[0]). Unknown flags, malformed values, and
/// invalid combinations come back as INVALID_ARGUMENT.
///
/// Flags:
///   --machine atlas|bgl|petascale     --tasks N
///   --mode co|vn                      --threads N
///   --topology flat|2deep|3deep|bgl2deep|bgl3deep|auto
///   --fe-shards N|auto                front-end merge sharding (reducers;
///                                     N > 8 builds a reducer tree)
///   --reducer-placement comm|pack|spread  shard-machinery host policy
///   --repr dense|hier                 --launcher rsh|ssh|launchmon|ciod|ciod-unpatched
///   --samples N                       --fs nfs|lustre
///   --stream N[:interval]             streaming per-sample merge rounds
///   --stream-full-remerge             disable the streaming delta caches
///   --evolve jitter|drift             trace evolution across samples
///   --sbrs                            --slim-binaries
///   --seed N                          --app ring|threaded|statbench|iostall|imbalance
///   --fail-fraction F                 --format text|csv|json
///   --exec-threads N                  --print-tree
///   --dot PATH
///   --checkpoint-period N[:PATH]      checkpoint every N streaming rounds
///   --vacate-at R[:PATH]              vacate (simulated FE kill) at round R
///   --restore PATH                    resume from a checkpoint file
[[nodiscard]] Result<CliConfig> parse_cli(std::span<const std::string_view> args);

}  // namespace petastat::stat
