// The STAT filter: the payload type and reduction operations plugged into
// the TBON (Sec. II: "a custom STAT filter efficiently merges the stack
// traces as they propagate up the communication tree").
//
// A payload carries both prefix trees a daemon contributes: the 2D
// trace/space tree (one sample) and the 3D trace/space/time tree (all
// samples). The filter's merge is the *real* structural merge; the CPU cost
// charged to the hosting comm process is proportional to the incoming
// tree's node count and label bytes — which is exactly why full-job bit
// vectors hurt: their bytes scale with the whole job.
#pragma once

#include <type_traits>

#include "app/callpath.hpp"
#include "machine/cost_model.hpp"
#include "stat/prefix_tree.hpp"
#include "tbon/reduction.hpp"

namespace petastat::stat {

template <typename Label>
struct StatPayload {
  PrefixTree<Label> tree_2d;
  PrefixTree<Label> tree_3d;
};

/// Folds one gathered trace into a daemon's payload: the first sample seeds
/// the 2D trace/space tree, every sample the 3D trace/space/time tree, with
/// the label seeded per representation (global rank vs daemon-local slot).
/// One formulation, two consumers: the scenario's sampling sinks and the
/// planner's workload probe both fold traces through here, so predicted
/// payloads are built by exactly the rule the simulator merges with.
template <typename Label>
void insert_trace(StatPayload<Label>& payload, const app::CallPath& path,
                  [[maybe_unused]] std::uint32_t daemon,
                  [[maybe_unused]] std::uint32_t local_index,
                  [[maybe_unused]] TaskId task, std::uint32_t sample) {
  Label seed;
  if constexpr (std::is_same_v<Label, GlobalLabel>) {
    seed = GlobalLabel::for_task(task.value());
  } else {
    seed = HierLabel::for_local(daemon, local_index);
  }
  if (sample == 0) payload.tree_2d.insert(path, seed);
  payload.tree_3d.insert(path, seed);
}

template <typename Label>
[[nodiscard]] std::uint64_t payload_wire_bytes(const StatPayload<Label>& payload,
                                               const app::FrameTable& frames,
                                               const LabelContext& ctx) {
  // Two trees plus a small packet header.
  return payload.tree_2d.wire_bytes(frames, ctx) +
         payload.tree_3d.wire_bytes(frames, ctx) + 16;
}

/// Builds the ReduceOps the TBON runs at every analysis node. `frames` and
/// `ctx` must outlive the reduction.
template <typename Label>
[[nodiscard]] tbon::ReduceOps<StatPayload<Label>> make_stat_reduce_ops(
    const machine::MergeCosts& costs, const app::FrameTable& frames,
    const LabelContext& ctx) {
  tbon::ReduceOps<StatPayload<Label>> ops;
  ops.wire_bytes = [&frames, ctx](const StatPayload<Label>& payload) {
    return payload_wire_bytes(payload, frames, ctx);
  };
  ops.codec_cost = [costs](std::uint64_t bytes) {
    return machine::packet_codec_cost(costs, bytes);
  };
  // The modelled cost depends on the incoming payload only (streaming
  // filters charge per arrival), which lets the real merge run on a worker.
  ops.merge_cpu = [costs, &frames, ctx](const StatPayload<Label>& child) {
    const std::uint64_t nodes =
        child.tree_2d.node_count() + child.tree_3d.node_count();
    const std::uint64_t label_bytes = payload_wire_bytes(child, frames, ctx);
    return machine::filter_merge_cost(costs, nodes, label_bytes);
  };
  ops.merge_into = [](StatPayload<Label>& acc, StatPayload<Label>&& child) {
    acc.tree_2d.merge(child.tree_2d);
    acc.tree_3d.merge(child.tree_3d);
  };
  return ops;
}

}  // namespace petastat::stat
