// The STAT filter: the payload type and reduction operations plugged into
// the TBON (Sec. II: "a custom STAT filter efficiently merges the stack
// traces as they propagate up the communication tree").
//
// A payload carries both prefix trees a daemon contributes: the 2D
// trace/space tree (one sample) and the 3D trace/space/time tree (all
// samples). The filter's merge is the *real* structural merge; the CPU cost
// charged to the hosting comm process is proportional to the incoming
// tree's node count and label bytes — which is exactly why full-job bit
// vectors hurt: their bytes scale with the whole job.
#pragma once

#include <type_traits>

#include "app/callpath.hpp"
#include "machine/cost_model.hpp"
#include "stat/prefix_tree.hpp"
#include "tbon/reduction.hpp"
#include "tbon/streaming.hpp"

namespace petastat::stat {

template <typename Label>
struct StatPayload {
  PrefixTree<Label> tree_2d;
  PrefixTree<Label> tree_3d;
};

/// Folds one gathered trace into a daemon's payload: the first sample seeds
/// the 2D trace/space tree, every sample the 3D trace/space/time tree, with
/// the label seeded per representation (global rank vs daemon-local slot).
/// One formulation, two consumers: the scenario's sampling sinks and the
/// planner's workload probe both fold traces through here, so predicted
/// payloads are built by exactly the rule the simulator merges with.
template <typename Label>
void insert_trace(StatPayload<Label>& payload, const app::CallPath& path,
                  [[maybe_unused]] std::uint32_t daemon,
                  [[maybe_unused]] std::uint32_t local_index,
                  [[maybe_unused]] TaskId task, std::uint32_t sample) {
  Label seed;
  if constexpr (std::is_same_v<Label, GlobalLabel>) {
    seed = GlobalLabel::for_task(task.value());
  } else {
    seed = HierLabel::for_local(daemon, local_index);
  }
  if (sample == 0) payload.tree_2d.insert(path, seed);
  payload.tree_3d.insert(path, seed);
}

template <typename Label>
[[nodiscard]] std::uint64_t payload_wire_bytes(const StatPayload<Label>& payload,
                                               const app::FrameTable& frames,
                                               const LabelContext& ctx) {
  // Two trees plus a small packet header.
  return payload.tree_2d.wire_bytes(frames, ctx) +
         payload.tree_3d.wire_bytes(frames, ctx) + 16;
}

/// Builds the ReduceOps the TBON runs at every analysis node. `frames` and
/// `ctx` must outlive the reduction.
template <typename Label>
[[nodiscard]] tbon::ReduceOps<StatPayload<Label>> make_stat_reduce_ops(
    const machine::MergeCosts& costs, const app::FrameTable& frames,
    const LabelContext& ctx) {
  tbon::ReduceOps<StatPayload<Label>> ops;
  ops.wire_bytes = [&frames, ctx](const StatPayload<Label>& payload) {
    return payload_wire_bytes(payload, frames, ctx);
  };
  ops.codec_cost = [costs](std::uint64_t bytes) {
    return machine::packet_codec_cost(costs, bytes);
  };
  // The modelled cost depends on the incoming payload only (streaming
  // filters charge per arrival), which lets the real merge run on a worker.
  ops.merge_cpu = [costs, &frames, ctx](const StatPayload<Label>& child) {
    const std::uint64_t nodes =
        child.tree_2d.node_count() + child.tree_3d.node_count();
    const std::uint64_t label_bytes = payload_wire_bytes(child, frames, ctx);
    return machine::filter_merge_cost(costs, nodes, label_bytes);
  };
  ops.merge_into = [](StatPayload<Label>& acc, StatPayload<Label>&& child) {
    acc.tree_2d.merge(child.tree_2d);
    acc.tree_3d.merge(child.tree_3d);
  };
  return ops;
}

/// One streaming round's payload: the per-sample snapshot tree. The front
/// end folds each round's merged snapshot into its 3D accumulator — the
/// canonical merge makes the fold order-independent, so the accumulated
/// tree is bit-identical to the classic batched 3D tree — and round 0's
/// snapshot *is* the 2D tree. operator== is the leaf's change detector.
template <typename Label>
struct StreamSnapshot {
  PrefixTree<Label> tree;

  friend bool operator==(const StreamSnapshot&, const StreamSnapshot&) =
      default;
};

template <typename Label>
[[nodiscard]] std::uint64_t snapshot_wire_bytes(
    const StreamSnapshot<Label>& snapshot, const app::FrameTable& frames,
    const LabelContext& ctx) {
  // One tree plus a small packet header (the DeltaHeader is charged by the
  // streaming layer on top of this).
  return snapshot.tree.wire_bytes(frames, ctx) + 8;
}

/// Builds the StreamOps a StreamingReduction runs at every analysis node.
/// Costs are priced by the same shared formulas as the batched filter, so
/// the planner's predict_stream_sample and the simulator agree by
/// construction. `frames` and `ctx` must outlive the reduction.
template <typename Label>
[[nodiscard]] tbon::StreamOps<StreamSnapshot<Label>> make_stream_ops(
    const machine::MergeCosts& merge, const machine::StreamCosts& stream,
    const app::FrameTable& frames, const LabelContext& ctx) {
  tbon::StreamOps<StreamSnapshot<Label>> ops;
  ops.base.wire_bytes = [&frames, ctx](const StreamSnapshot<Label>& snapshot) {
    return snapshot_wire_bytes(snapshot, frames, ctx);
  };
  ops.base.codec_cost = [merge](std::uint64_t bytes) {
    return machine::packet_codec_cost(merge, bytes);
  };
  ops.base.merge_cpu = [merge, &frames, ctx](
                           const StreamSnapshot<Label>& child) {
    return machine::filter_merge_cost(
        merge, child.tree.node_count(),
        snapshot_wire_bytes(child, frames, ctx));
  };
  ops.base.merge_into = [](StreamSnapshot<Label>& acc,
                           StreamSnapshot<Label>&& child) {
    acc.tree.merge(child.tree);
  };
  ops.signature_cpu = [stream](const StreamSnapshot<Label>& snapshot) {
    return machine::signature_cost(stream, snapshot.tree.node_count());
  };
  ops.cached_merge_cpu = [merge, stream, &frames, ctx](
                             const StreamSnapshot<Label>& child) {
    return machine::cached_merge_cost(
        merge, stream, child.tree.node_count(),
        snapshot_wire_bytes(child, frames, ctx));
  };
  ops.ack_cpu = machine::control_packet_cost(stream);
  return ops;
}

}  // namespace petastat::stat
