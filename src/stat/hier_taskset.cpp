#include "stat/hier_taskset.hpp"

#include <algorithm>
#include <numeric>

namespace petastat::stat {

HierTaskSet HierTaskSet::single(std::uint32_t daemon,
                                std::uint32_t local_index) {
  HierTaskSet s;
  s.blocks_.push_back({daemon, TaskSet::single(local_index)});
  return s;
}

void HierTaskSet::insert(std::uint32_t daemon, std::uint32_t local_index) {
  auto it = std::lower_bound(blocks_.begin(), blocks_.end(), daemon,
                             [](const Block& b, std::uint32_t d) {
                               return b.daemon < d;
                             });
  if (it != blocks_.end() && it->daemon == daemon) {
    it->local.insert(local_index);
  } else {
    blocks_.insert(it, {daemon, TaskSet::single(local_index)});
  }
}

void HierTaskSet::merge(const HierTaskSet& other) {
  if (other.blocks_.empty()) return;
  if (blocks_.empty()) {
    blocks_ = other.blocks_;
    return;
  }
  std::vector<Block> result;
  result.reserve(blocks_.size() + other.blocks_.size());
  std::size_t i = 0, j = 0;
  while (i < blocks_.size() || j < other.blocks_.size()) {
    if (j >= other.blocks_.size()) {
      result.push_back(std::move(blocks_[i++]));
    } else if (i >= blocks_.size()) {
      result.push_back(other.blocks_[j++]);
    } else if (blocks_[i].daemon < other.blocks_[j].daemon) {
      result.push_back(std::move(blocks_[i++]));
    } else if (other.blocks_[j].daemon < blocks_[i].daemon) {
      result.push_back(other.blocks_[j++]);
    } else {
      Block merged = std::move(blocks_[i++]);
      merged.local.union_with(other.blocks_[j++].local);
      result.push_back(std::move(merged));
    }
  }
  blocks_ = std::move(result);
}

std::uint64_t HierTaskSet::count() const {
  return std::accumulate(blocks_.begin(), blocks_.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const Block& b) {
                           return acc + b.local.count();
                         });
}

std::uint64_t HierTaskSet::wire_bytes() const {
  return 1 + body_wire_bytes();  // version byte + body
}

void HierTaskSet::encode(ByteSink& sink) const {
  put_wire_version(sink);
  encode_body(sink);
}

Result<HierTaskSet> HierTaskSet::decode(ByteSource& source) {
  if (auto s = check_wire_version(source); !s.is_ok()) return s;
  return decode_body(source);
}

std::uint64_t HierTaskSet::body_wire_bytes() const {
  ByteSink sink;
  encode_body(sink);
  return sink.size();
}

void HierTaskSet::encode_body(ByteSink& sink) const {
  sink.put_varint(blocks_.size());
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& block : blocks_) {
    sink.put_varint(first ? block.daemon : block.daemon - prev - 1);
    block.local.encode_ranged_body(sink);
    prev = block.daemon;
    first = false;
  }
}

Result<HierTaskSet> HierTaskSet::decode_body(ByteSource& source) {
  std::uint64_t n = 0;
  if (auto s = source.get_varint(n); !s.is_ok()) return s;
  HierTaskSet set;
  set.blocks_.reserve(source.clamped_count(n));
  std::uint64_t cursor = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t delta = 0;
    if (auto s = source.get_varint(delta); !s.is_ok()) return s;
    if (delta > UINT32_MAX) return invalid_argument("daemon id overflow");
    const std::uint64_t daemon = first ? delta : cursor + 1 + delta;
    if (daemon > UINT32_MAX) return invalid_argument("daemon id overflow");
    auto local = TaskSet::decode_ranged_body(source);
    if (!local.is_ok()) return local.status();
    set.blocks_.push_back(
        {static_cast<std::uint32_t>(daemon), std::move(local).value()});
    cursor = daemon;
    first = false;
  }
  return set;
}

// ---------------------------------------------------------------------------
// TaskMap

TaskMap TaskMap::identity(const machine::DaemonLayout& layout) {
  TaskMap map;
  map.base_rank_.resize(layout.num_daemons);
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    map.base_rank_[d] = layout.first_task_of(DaemonId(d));
  }
  return map;
}

TaskMap TaskMap::shuffled(const machine::DaemonLayout& layout,
                          std::uint64_t seed) {
  // Permute which rank block each daemon owns. All daemons except possibly
  // the last serve exactly tasks_per_daemon ranks; to keep block sizes
  // aligned under permutation, the (short) last daemon keeps its block.
  TaskMap map = identity(layout);
  Rng rng(seed, /*stream_id=*/0x3a9);
  const std::uint32_t n = layout.num_daemons;
  const std::uint32_t full =
      (layout.num_tasks % layout.tasks_per_daemon == 0) ? n : n - 1;
  for (std::uint32_t i = full; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(map.base_rank_[i - 1], map.base_rank_[j]);
  }
  return map;
}

std::uint32_t TaskMap::global_rank(std::uint32_t daemon,
                                   std::uint32_t local_index) const {
  check(daemon < base_rank_.size(), "TaskMap::global_rank unknown daemon");
  return base_rank_[daemon] + local_index;
}

TaskSet TaskMap::remap(const HierTaskSet& hier) const {
  TaskSet out;
  for (const auto& block : hier.blocks()) {
    check(block.daemon < base_rank_.size(), "TaskMap::remap unknown daemon");
    const std::uint32_t base = base_rank_[block.daemon];
    // Each local interval maps to one global interval shifted by the block
    // base; daemons own contiguous rank blocks.
    for (const auto& iv : block.local.intervals()) {
      out.insert_range(base + iv.lo, base + iv.hi);
    }
  }
  return out;
}

}  // namespace petastat::stat
