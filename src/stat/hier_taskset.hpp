// Hierarchical task lists: the optimized edge-label representation (Sec. V-B,
// Fig. 6b).
//
// Each analysis node only represents tasks within its own subtree, as a list
// of (daemon, daemon-local task indices) blocks. Merging along the tree is
// block concatenation (daemon ids are disjoint across sibling subtrees).
// Because compute nodes are not guaranteed to map to daemons in MPI rank
// order, the front end performs a final remap from (daemon, local index) to
// global MPI rank using the process-table map collected once at setup.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/serializer.hpp"
#include "common/status.hpp"
#include "machine/machine.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {

/// Per-subtree task membership: sorted (daemon, local-index set) blocks.
class HierTaskSet {
 public:
  struct Block {
    std::uint32_t daemon = 0;
    TaskSet local;  // daemon-local task indices
    friend bool operator==(const Block&, const Block&) = default;
  };

  HierTaskSet() = default;

  /// Singleton: local task `local_index` of `daemon`.
  static HierTaskSet single(std::uint32_t daemon, std::uint32_t local_index);

  /// Merge another subtree's membership into this one. Sibling subtrees
  /// cover disjoint daemons, so this is concatenation; same-daemon blocks
  /// (re-merging within one daemon) union their local sets.
  void merge(const HierTaskSet& other);

  void insert(std::uint32_t daemon, std::uint32_t local_index);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  friend bool operator==(const HierTaskSet&, const HierTaskSet&) = default;

  /// Wire format: version byte, varint block count, then per block varint
  /// daemon delta and the local set's ranged body. The *_body variants omit
  /// the version byte — the nested form prefix-tree labels embed inside the
  /// tree's versioned envelope.
  [[nodiscard]] std::uint64_t wire_bytes() const;
  void encode(ByteSink& sink) const;
  static Result<HierTaskSet> decode(ByteSource& source);
  [[nodiscard]] std::uint64_t body_wire_bytes() const;
  void encode_body(ByteSink& sink) const;
  static Result<HierTaskSet> decode_body(ByteSource& source);

 private:
  std::vector<Block> blocks_;  // sorted by daemon
};

/// The process-table map: daemon + local index -> global MPI rank. The
/// paper's point is that this mapping is *not* guaranteed to follow rank
/// order, hence the explicit remap step at the front end; `shuffled()`
/// produces such an out-of-order assignment for testing and benching.
class TaskMap {
 public:
  /// Rank-ordered map: daemon d starts at d * tasks_per_daemon.
  static TaskMap identity(const machine::DaemonLayout& layout);

  /// Deterministically permuted daemon-to-rank-block assignment: daemons
  /// still own contiguous rank blocks, but block order is shuffled (the
  /// realistic "nodes not in MPI rank order" case).
  static TaskMap shuffled(const machine::DaemonLayout& layout,
                          std::uint64_t seed);

  [[nodiscard]] std::uint32_t global_rank(std::uint32_t daemon,
                                          std::uint32_t local_index) const;

  /// Remaps a hierarchical set to global MPI ranks (the Fig. 6b remap).
  [[nodiscard]] TaskSet remap(const HierTaskSet& hier) const;

  [[nodiscard]] std::uint32_t num_daemons() const {
    return static_cast<std::uint32_t>(base_rank_.size());
  }

 private:
  std::vector<std::uint32_t> base_rank_;  // per daemon
};

}  // namespace petastat::stat
