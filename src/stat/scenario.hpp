// End-to-end STAT scenario: the one-stop API that examples and benches use.
//
// A scenario assembles a simulated platform (machine + network + file
// systems), a target application model, and a STAT configuration (topology,
// task-set representation, launcher, SBRS), then runs the tool's three
// measured phases (Sec. III):
//   1. startup  — daemon/app launch + MRNet instantiation (Figs. 2, 3)
//   2. sampling — per-daemon trace gathering and local aggregation
//                 (Figs. 8, 9, 10)
//   3. merge    — TBON reduction of the 2D and 3D prefix trees to the front
//                 end, plus the remap step for the optimized representation
//                 (Figs. 4, 5, 7)
// and returns per-phase timings plus the real merged trees and equivalence
// classes.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/appmodel.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "fs/filesystem.hpp"
#include "launchmon/launchmon.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"
#include "net/network.hpp"
#include "rm/launcher.hpp"
#include "sbrs/sbrs.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"
#include "stackwalker/stackwalker.hpp"
#include "stat/equivalence.hpp"
#include "stat/filter.hpp"
#include "stat/prefix_tree.hpp"
#include "tbon/topology.hpp"

namespace petastat::stat {

enum class LauncherKind {
  kMrnetRsh,       // MRNet's ad hoc serial rsh spawner
  kMrnetSsh,       // same, over ssh
  kLaunchMon,      // bulk launch through the resource manager
  kCiodPatched,    // BG/L system software, after the IBM patches
  kCiodUnpatched,  // BG/L system software, original (quadratic, hangs at 208K)
};

[[nodiscard]] const char* launcher_kind_name(LauncherKind kind);

enum class TaskSetRepr {
  kDenseGlobal,    // original: full-job bit vectors on every edge
  kHierarchical,   // optimized: subtree-local task lists + front-end remap
};

[[nodiscard]] const char* task_set_repr_name(TaskSetRepr repr);

enum class SharedFsKind { kNfs, kLustre };
enum class AppKind {
  kRingHang,
  kThreadedRing,
  kStatBench,
  kIoStall,
  kImbalance,
  kOomCascade,
};

/// How far the pipeline runs (startup benches skip sampling/merge).
enum class RunThrough { kStartup, kSampling, kFull };

struct SessionCheckpoint;  // stat/checkpoint.hpp

struct StatOptions {
  tbon::TopologySpec topology = tbon::TopologySpec::flat();
  /// Ignore `topology` and let the plan::TopologySearch pick the predicted
  /// fastest machine-feasible spec (the CLI's `--topology auto`).
  bool topology_auto = false;
  /// Shard the front-end merge across this many reducer processes (applied
  /// to whatever topology the run uses, including an auto-chosen one).
  /// 1 = unsharded; 0 is INVALID_ARGUMENT.
  std::uint32_t fe_shards = 1;
  /// Ignore `fe_shards` and let plan::choose_fe_shards pick the
  /// predicted-fastest viable (K, placement) with K in {1, 2, 4, 8, 16, 32,
  /// 64} (the CLI's `--fe-shards auto`; K > 8 engages the reducer tree).
  /// With `--topology auto` the shard dimension joins the spec search
  /// instead.
  bool fe_shards_auto = false;
  /// Host-assignment policy for the shard machinery (the CLI's
  /// `--reducer-placement comm|pack|spread`), applied to whatever topology
  /// the run uses. The auto modes rank pack against spread themselves and
  /// override this.
  tbon::ReducerPlacement reducer_placement = tbon::ReducerPlacement::kCommLike;
  /// Override of MachineConfig::max_tool_connections for this run (the
  /// Sec. V-A what-if knob). Unset = machine default. An explicit 0 is
  /// INVALID_ARGUMENT at construction — a front end with no connections is
  /// a configuration error, not a request for the default.
  std::optional<std::uint32_t> max_frontend_connections;
  TaskSetRepr repr = TaskSetRepr::kHierarchical;
  LauncherKind launcher = LauncherKind::kLaunchMon;
  std::uint32_t num_samples = 10;
  bool use_sbrs = false;
  SharedFsKind shared_fs = SharedFsKind::kNfs;
  /// Post-OS-update binary layout (Fig. 10): only the executable and the MPI
  /// library remain on the shared FS.
  bool slim_binaries = false;
  /// Daemon-to-rank-block assignment is out of order (forces a real remap).
  bool shuffle_task_map = true;
  AppKind app = AppKind::kRingHang;
  std::uint32_t statbench_classes = 32;
  RunThrough run_through = RunThrough::kFull;
  /// Streaming time-series sampling (the CLI's `--stream N[:interval]`):
  /// run this many per-sample rounds — each round multicasts one cursor of
  /// the SampleRequest window, gathers one snapshot per daemon, and merges
  /// it incrementally (unchanged subtrees acknowledge instead of resending).
  /// 0 = the classic batched pipeline. Only meaningful with
  /// RunThrough::kFull; `num_samples` is ignored in streaming mode.
  std::uint32_t stream_samples = 0;
  /// Virtual seconds between consecutive stream rounds (0 = back to back).
  double stream_interval_seconds = 0.0;
  /// Disable the delta caches: every streaming round is a from-scratch
  /// merge through the same code path. The bit-identity baseline and the
  /// incremental-vs-full bench comparator.
  bool stream_full_remerge = false;
  /// Capture a SessionCheckpoint every N round boundaries of a streaming
  /// run (the CLI's `--checkpoint-period N`). 0 = never. The latest capture
  /// is returned in StatRunResult::checkpoint; its virtual write time
  /// (local-disk bandwidth) is charged to the session. Requires --stream.
  std::uint32_t checkpoint_period = 0;
  /// Simulated front-end loss at this round boundary (the scheduler's
  /// vacate operation, modelled on SLURM's checkpoint/vacate pair): the run
  /// completes rounds [0, R), captures a checkpoint with cursor R, and
  /// returns early with StatRunResult::vacated set — no finalization, empty
  /// trees, status OK. Valid range [1, stream_samples); on a restored run,
  /// (restore cursor, stream_samples). Negative = disabled.
  std::int32_t vacate_at_round = -1;
  /// How traces evolve across samples (the CLI's `--evolve`): kJitter
  /// reshuffles the noise streams every sample (historical behaviour),
  /// kDrift pins the noise and moves only scripted events — hang onsets,
  /// straggler drift — so unchanged subtrees really are unchanged.
  app::TraceEvolution evolution = app::TraceEvolution::kJitter;
  /// Drift cadence under kDrift: the task space is cut into this many
  /// phase-staggered bands and one band's stragglers drift per sample, so
  /// the changed fraction per round is ~1/drift_period. Larger = sparser
  /// drift (the petascale streaming headline uses a band narrower than the
  /// tree fanout). Ignored under kJitter.
  std::uint32_t drift_period = 8;
  /// Failure injection: each daemon independently dies before sampling with
  /// this probability (node failures are routine at 1,664 daemons). Dead
  /// daemons contribute nothing; STAT proceeds and reports coverage, the
  /// operational behaviour the LLNL deployment needed.
  double daemon_failure_probability = 0.0;
  /// Mid-merge failure injection: this many (virtual) seconds after the
  /// merge phase starts, kill tbon::default_victim(topology) — a reducer
  /// when sharded, else an internal comm process. The health monitor's ping
  /// sweep detects the death and Reduction::recover folds the orphaned
  /// subtree into the victim's siblings. Negative = disabled.
  double fail_at_seconds = -1.0;
  /// Ping-sweep period of the TBON health monitor (only running while
  /// `fail_at_seconds` is armed). Must be > 0.
  double ping_period_seconds = 0.25;
  std::uint64_t seed = 2008;
  /// Worker threads for the execution engine (sampling synthesis, TBON
  /// merges, front-end remap). 0 or 1 = serial. Results are bit-identical
  /// across thread counts: virtual timestamps come from the cost model, and
  /// the engine only overlaps the real computations between them.
  std::uint32_t exec_threads = 1;
};

/// Builds the generative application model a scenario samples traces from.
/// Shared with the planner's workload probe so predictions price exactly the
/// traces the simulator would gather.
[[nodiscard]] std::unique_ptr<app::AppModel> make_app_model(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const StatOptions& options);

/// NFS parameters a scenario mounts for `machine`'s shared file system.
/// Shared with the planner, which approximates symbol I/O against the same
/// server's aggregate bandwidth (one formulation, two consumers).
[[nodiscard]] fs::NfsParams shared_nfs_params(
    const machine::MachineConfig& machine);

struct PhaseBreakdown {
  rm::LaunchReport launch;
  SimTime connect_time = 0;
  SimTime startup_total = 0;

  SimTime sbrs_grace = 0;
  SimTime sbrs_relocation = 0;

  Status sample_status = Status::ok();
  SimTime sample_time = 0;
  RunningStats daemon_sample_seconds;  // across daemons
  SimTime sample_symbol_io_max = 0;

  std::uint32_t failed_daemons = 0;  // failure injection casualties

  Status merge_status = Status::ok();
  SimTime merge_time = 0;   // reduction through the TBON (2D + 3D trees)
  SimTime remap_time = 0;   // front-end remap (optimized repr only)
  std::uint64_t merge_bytes = 0;
  std::uint64_t merge_messages = 0;
  std::uint64_t leaf_payload_bytes = 0;  // one daemon's serialized trees
  /// Per-link traffic of the merge phase — the delta of the network's
  /// link_stats() across the reduction — busiest (longest busy time) first.
  /// Empty when the merge never ran. The front entry is the max-contention
  /// link the report surfaces; plan::PhasePredictor::predict_merge_link_bytes
  /// prices the same per-device byte totals analytically.
  std::vector<net::LinkStat> merge_links;
  /// Same delta across the whole streaming phase (--stream), busiest first.
  std::vector<net::LinkStat> stream_links;

  // Mid-merge failure recovery (fail_at_seconds armed). merge_bytes then
  // also counts the monitor's ping traffic.
  std::uint32_t killed_procs = 0;      // mid-merge kills injected
  std::uint32_t orphaned_daemons = 0;  // daemons re-merged via adopters
  std::uint32_t lost_daemons = 0;      // daemons unrecoverable (dead/no copy)
  std::uint32_t health_sweeps = 0;     // completed monitor ping sweeps
  SimTime failure_detect_latency = 0;  // death -> sweep notices the silence
  SimTime recovery_remerge_time = 0;   // detection -> merge completion

  // Streaming mode (--stream): sample_time/merge_time then hold the totals
  // across rounds; the per-round breakdown is StatRunResult::stream_samples.
  std::uint32_t stream_rounds = 0;          // rounds completed
  std::uint32_t stream_changed_rounds = 0;  // rounds where a payload moved

  // Session durability (--checkpoint-period / --vacate-at / --restore).
  std::uint32_t checkpoints_taken = 0;      // captures this run
  std::uint64_t checkpoint_bytes = 0;       // latest capture's encoded size
};

/// One streaming round's outcome (--stream mode), in round order.
struct StreamSampleStats {
  std::uint32_t sample = 0;          // cursor (absolute sample index)
  SimTime sample_time = 0;           // gather: slowest daemon's walk round
  SimTime merge_time = 0;            // incremental merge round
  std::uint64_t merge_bytes = 0;     // delta traffic (acks + payloads)
  std::uint64_t merge_messages = 0;
  std::uint32_t changed_daemons = 0;
  std::uint32_t remerged_procs = 0;  // dirty non-leaf procs (incl. the FE)
  std::uint32_t cached_procs = 0;    // clean non-leaf procs (incl. the FE)
  bool changed = true;               // false: FE answered from its cache
};

struct StatRunResult {
  Status status = Status::ok();  // first failing phase's status
  /// The topology the run actually used (what `--topology auto` resolved to).
  tbon::TopologySpec topology;
  /// The scenario simulator's clock when run() returned — the session's total
  /// virtual duration across every phase that executed (including partial
  /// runs that stopped at a failing phase). The service scheduler uses this
  /// to place a session's completion on the shared service clock.
  SimTime total_virtual_time = 0;
  PhaseBreakdown phases;
  GlobalTree tree_2d;
  GlobalTree tree_3d;
  std::vector<EquivalenceClass> classes;  // from the 3D tree
  /// Per-round breakdown of a streaming run (empty in classic mode).
  std::vector<StreamSampleStats> stream_samples;
  machine::DaemonLayout layout;
  std::uint32_t num_comm_procs = 0;
  /// Daemons dead before sampling (pre-sampling injection + the OOM-cascade
  /// victim), ascending. Mid-merge kills hit comm procs, not daemons, and
  /// are not listed here.
  std::vector<std::uint32_t> dead_daemons;

  // Session durability. `checkpoint` is the latest capture (periodic or
  // vacate); `vacated` means the run stopped at the vacate boundary without
  // finalizing (trees empty, status OK) and `checkpoint` is what resumes it.
  std::shared_ptr<const SessionCheckpoint> checkpoint;
  bool vacated = false;
  bool restored = false;            // this run resumed from a checkpoint
  std::uint32_t restore_cursor = 0; // first round this run sampled
};

/// A StatScenario is a *re-entrant session object*: every piece of mutable
/// state it touches — simulator, executor, network, file systems, app model,
/// RNG streams — is owned by (or borrowed explicitly into) the instance, so
/// any number of scenarios can coexist in one process and produce results
/// bit-identical to running each alone. The one process-wide exception is
/// plan::profile_workload's memoized probe cache, which is deterministic and
/// mutex-guarded (see src/plan/predictor.hpp).
class StatScenario {
 public:
  StatScenario(machine::MachineConfig machine, machine::JobConfig job,
               StatOptions options);
  /// Multi-session form: run this scenario's real computations on a shared,
  /// caller-owned executor instead of spawning a private worker pool.
  /// `executor` must outlive the scenario; `options.exec_threads` is ignored.
  /// Virtual timings are unaffected — the executor only overlaps the real
  /// work between modelled timestamps — so results stay bit-identical to a
  /// privately-pooled run.
  StatScenario(machine::MachineConfig machine, machine::JobConfig job,
               StatOptions options, sim::Executor* executor);
  /// Restore forms: resume a vacated streaming session from `restore`. The
  /// streaming window (round count, cadence) is normalized from the
  /// checkpoint; the session identity (machine, job, seed, app) must hash to
  /// the checkpoint's — a mismatch is FAILED_PRECONDITION in config_status().
  /// A cursor outside [1, total_rounds) is INVALID_ARGUMENT, and a topology
  /// the machine cannot build (an incompatible K) fails here too. The
  /// topology is adopted from the checkpoint, unless the auto modes are set —
  /// then plan::replan_fe_shards re-prices K/placement against the measured
  /// payload bytes — or the CLI re-shards explicitly. run() then skips
  /// launch/SBRS (daemons persist across a front-end loss), re-arms the
  /// multicast cursor at restore->cursor, and merges the resumed rounds into
  /// the checkpointed trees; the canonical merge keeps the products
  /// bit-identical to the never-killed run.
  StatScenario(machine::MachineConfig machine, machine::JobConfig job,
               StatOptions options,
               std::shared_ptr<const SessionCheckpoint> restore);
  StatScenario(machine::MachineConfig machine, machine::JobConfig job,
               StatOptions options, sim::Executor* executor,
               std::shared_ptr<const SessionCheckpoint> restore);
  ~StatScenario();

  StatScenario(const StatScenario&) = delete;
  StatScenario& operator=(const StatScenario&) = delete;

  /// Runs all phases to completion inside the simulator. A failed phase
  /// stops the pipeline; the result carries the failure and the timings of
  /// the phases that did run. A scenario runs once: a second call returns
  /// FAILED_PRECONDITION (construct a fresh scenario per run).
  [[nodiscard]] StatRunResult run();

  /// Tuning knobs, to be adjusted before run().
  [[nodiscard]] machine::CostModel& costs() { return costs_; }
  [[nodiscard]] const machine::MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const app::AppModel& app() const { return *app_; }
  [[nodiscard]] const machine::DaemonLayout& layout() const { return layout_; }

  /// Construction-time validation/auto-resolution outcome, readable without
  /// running. The service scheduler rejects sessions here before admitting.
  [[nodiscard]] const Status& config_status() const { return config_status_; }
  /// The options after construction resolved `--topology auto` /
  /// `--fe-shards auto`: `resolved_options().topology` is the spec the run
  /// will use, which is what the service ledger prices a session's demand
  /// from. Meaningless when config_status() is not OK.
  [[nodiscard]] const StatOptions& resolved_options() const { return options_; }

 private:
  [[nodiscard]] StatRunResult run_impl();

  template <typename Label>
  void run_merge_phase(const tbon::TbonTopology& topology, StatRunResult& result,
                       std::vector<StatPayload<Label>> payloads,
                       const TaskMap& task_map,
                       const std::vector<bool>& daemon_dead);

  /// Streaming mode: sampling and merging interleave per round, so one
  /// phase runs both (replacing phases 2b and 3 of the classic pipeline).
  template <typename Label>
  void run_stream_phase(const tbon::TbonTopology& topology,
                        StatRunResult& result, const TaskMap& task_map,
                        const std::vector<bool>& daemon_dead);

  machine::MachineConfig machine_;
  machine::JobConfig job_;
  StatOptions options_;
  /// Checkpoint this session resumes from (null for a cold run).
  std::shared_ptr<const SessionCheckpoint> restore_;
  /// Construction-time outcome: option validation plus `--topology auto` /
  /// `--fe-shards auto` resolution. run() reports it without simulating.
  Status config_status_ = Status::ok();
  machine::CostModel costs_;
  machine::DaemonLayout layout_;

  sim::Simulator sim_;
  /// Private pool (empty when a shared executor was borrowed), declared
  /// before everything that may hold submitted work.
  std::unique_ptr<sim::Executor> owned_exec_;
  sim::Executor* exec_ = nullptr;  // the pool in use (owned or borrowed)
  bool ran_ = false;               // run() is single-shot
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<fs::FileSystem> shared_fs_;
  std::unique_ptr<fs::FileSystem> local_fs_;
  std::unique_ptr<fs::FileSystem> ramdisk_;
  fs::MountTable mounts_;
  std::unique_ptr<fs::FileAccess> files_;
  std::unique_ptr<app::AppModel> app_;
  std::unique_ptr<stackwalker::StackWalker> walker_;
  std::unique_ptr<launchmon::LaunchMonSession> lmon_;
};

}  // namespace petastat::stat
