#include "stat/prefix_tree.hpp"

namespace petastat::stat {

namespace {

void remap_children(const HierTree::Node& from, GlobalTree::Node& into,
                    const TaskMap& map) {
  for (const auto& child : from.children) {
    GlobalTree::Node& target = into.ensure_child(child.frame);
    target.label.tasks.union_with(map.remap(child.label.tasks));
    target.label.visits += child.label.visits;
    remap_children(child, target, map);
  }
}

void dot_node(const GlobalTree::Node& node, const app::FrameTable& frames,
              std::size_t max_items, std::string& out, std::uint64_t& next_id,
              std::uint64_t my_id) {
  for (const auto& child : node.children) {
    const std::uint64_t child_id = next_id++;
    out += "  n" + std::to_string(child_id) + " [label=\"" +
           std::string(frames.name(child.frame)) + "\"];\n";
    out += "  n" + std::to_string(my_id) + " -> n" + std::to_string(child_id) +
           " [label=\"" + child.label.tasks.edge_label(max_items) + "\"];\n";
    dot_node(child, frames, max_items, out, next_id, child_id);
  }
}

}  // namespace

GlobalTree remap_tree(const HierTree& tree, const TaskMap& map) {
  GlobalTree out;
  remap_children(tree.root(), out.root(), map);
  return out;
}

std::string to_folded(const GlobalTree& tree, const app::FrameTable& frames,
                      bool by_visits) {
  std::string out;
  tree.visit([&](std::span<const FrameId> path, const GlobalTree::Node& node) {
    // Weight of traces that *end* at this node: members here minus members
    // continuing into any child (by visits: visits here minus child visits).
    std::uint64_t weight;
    if (by_visits) {
      std::uint64_t child_visits = 0;
      for (const auto& child : node.children) child_visits += child.label.visits;
      weight = node.label.visits >= child_visits
                   ? node.label.visits - child_visits
                   : 0;
    } else {
      TaskSet continuing;
      for (const auto& child : node.children) {
        continuing.union_with(child.label.tasks);
      }
      weight = node.label.tasks.difference(continuing).count();
    }
    if (weight == 0) return;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (i > 0) out += ';';
      out += frames.name(path[i]);
    }
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  });
  return out;
}

std::string to_dot(const GlobalTree& tree, const app::FrameTable& frames,
                   std::size_t max_label_items) {
  std::string out = "digraph stat_prefix_tree {\n  node [shape=box];\n";
  out += "  n0 [label=\"/\"];\n";
  std::uint64_t next_id = 1;
  dot_node(tree.root(), frames, max_label_items, out, next_id, 0);
  out += "}\n";
  return out;
}

}  // namespace petastat::stat
