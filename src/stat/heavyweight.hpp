// Heavyweight-debugger baseline (Sec. II / VIII).
//
// The paper positions STAT against full-featured debuggers (TotalView, DDT):
// "such tools have been run on thousands of processes, but typically suffer
// high latencies for even simple operations at these scales", and "some fail
// due to internal or OS restrictions, and for others the execution time of
// even simple, individual operations grows linearly with the scale of the
// target application".
//
// This model captures that architecture: the front end keeps one control
// connection per task and every operation — attach, and a whole-job stack
// snapshot — is a per-task request/reply funneled through the front end,
// which also centralizes all processing (no in-network aggregation). The
// baseline bench compares it against STAT's tree pipeline.
#pragma once

#include "common/status.hpp"
#include "machine/machine.hpp"

namespace petastat::stat {

struct HeavyweightCosts {
  /// Front-end CPU to attach/handshake one task (ptrace setup, symbol
  /// bookkeeping); attaches are serialized at the front end.
  SimTime attach_per_task = 2500 * kMicrosecond;
  /// Front-end CPU per stack reply (parse, store, update UI model).
  SimTime reply_processing = 180 * kMicrosecond;
  /// Wire size of one task's stack reply.
  std::uint64_t reply_bytes = 1500;
  /// Request fan-out message size.
  std::uint64_t request_bytes = 64;
};

struct HeavyweightReport {
  Status status = Status::ok();
  SimTime attach_time = 0;
  /// One whole-job stack snapshot (the operation STAT's merge phase does
  /// through the tree).
  SimTime snapshot_time = 0;
  std::uint32_t connections = 0;
};

/// Models attaching a heavyweight debugger to the whole job and taking one
/// stack snapshot. Fails when the front end cannot hold one connection per
/// task (the "internal or OS restrictions" failure mode).
[[nodiscard]] HeavyweightReport run_heavyweight_debugger(
    const machine::MachineConfig& machine, const machine::JobConfig& job,
    const HeavyweightCosts& costs = {});

}  // namespace petastat::stat
