// Process equivalence classes (Sec. II): groups of tasks whose stack traces
// end at the same node of the prefix tree. These classes are STAT's product:
// they tell the user which few representative tasks to hand to a
// heavyweight debugger.
#pragma once

#include <string>
#include <vector>

#include "app/callpath.hpp"
#include "stat/prefix_tree.hpp"
#include "stat/taskset.hpp"

namespace petastat::stat {

struct EquivalenceClass {
  app::CallPath path;  // root-to-stop frames
  TaskSet tasks;       // tasks whose traces end exactly here

  [[nodiscard]] std::uint64_t size() const { return tasks.count(); }
};

/// Extracts equivalence classes from a merged tree: for every node, the
/// tasks present on the incoming edge but absent from every child edge are a
/// class ending at that node. Classes are returned largest-first (ties by
/// shallower path), which is the order a user triages them in.
[[nodiscard]] std::vector<EquivalenceClass> equivalence_classes(
    const GlobalTree& tree);

/// Picks `per_class` representative task ranks per class (lowest ranks),
/// the set a heavyweight debugger would attach to.
[[nodiscard]] std::vector<std::uint32_t> representatives(
    const std::vector<EquivalenceClass>& classes, std::uint32_t per_class = 1);

/// Human-readable class summary ("1022 tasks [0,3-1023]: _start>main>...").
[[nodiscard]] std::string describe(const EquivalenceClass& cls,
                                   const app::FrameTable& frames);

}  // namespace petastat::stat
