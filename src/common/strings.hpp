// String formatting helpers used for rendering prefix-tree edge labels
// ("1022:[0,3-1023]"), durations, and byte counts in reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace petastat {

/// Renders a sorted list of integers as comma-separated ranges:
/// {0,3,4,5,...,1023} -> "0,3-1023". Input must be sorted ascending and
/// duplicate-free. `max_items` bounds output length; a trailing ",..." marks
/// truncation (matches STAT's shortened labels in Figure 1).
std::string format_ranges(std::span<const std::uint32_t> sorted,
                          std::size_t max_items = 8);

/// Renders a task-count-plus-range edge label: "1022:[0,3-1023]".
std::string format_edge_label(std::span<const std::uint32_t> sorted_tasks,
                              std::size_t max_items = 8);

/// Parses "0,3-1023" back into a sorted vector. Returns empty on malformed
/// input pieces (best-effort; for tests and tooling).
std::vector<std::uint32_t> parse_ranges(const std::string& text);

/// "1.234 s", "56.7 ms", "890 us", "12 ns" — human duration for reports.
std::string format_duration(SimTime t);

/// "4.00 MB", "10.0 KB", "17 B".
std::string format_bytes(std::uint64_t bytes);

/// Fixed-width number formatting for report tables.
std::string format_seconds_fixed(SimTime t, int precision = 3);

}  // namespace petastat
