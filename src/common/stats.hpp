// Online summary statistics for experiment reports (run-to-run variation in
// Fig. 9 is quantified with these).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace petastat {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// (max - min) / mean — the paper reports >20% sampling-time variation.
  [[nodiscard]] double relative_spread() const {
    return mean_ != 0.0 ? (max_ - min_) / mean_ : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile over a copy of the samples (nearest-rank).
double percentile(std::vector<double> samples, double p);

/// Least-squares slope of y over x; used by benches to classify scaling as
/// linear vs logarithmic.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace petastat
