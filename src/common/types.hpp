// Strong integer id types and the simulation time base shared by all modules.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace petastat {

// Simulated wall-clock time in nanoseconds. All model costs are expressed in
// this unit; helpers below convert from human units.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;
inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Converts a floating-point number of seconds to SimTime, saturating at 0.
constexpr SimTime seconds(double s) {
  return s <= 0.0 ? SimTime{0} : static_cast<SimTime>(s * 1e9);
}

/// Converts SimTime back to floating-point seconds for reporting.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// A transparent strongly-typed wrapper over an integer id. Distinct Tag
/// types cannot be mixed accidentally (e.g. a TaskId is not a NodeId).
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<Rep>::max();
  }

  static constexpr StrongId invalid() {
    return StrongId(std::numeric_limits<Rep>::max());
  }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep value_ = std::numeric_limits<Rep>::max();
};

/// Global node identifier across all tiers of the simulated machine.
using NodeId = StrongId<struct NodeTag>;
/// MPI rank of an application task (0-based, global).
using TaskId = StrongId<struct TaskTag>;
/// Tool daemon identifier (0-based, dense).
using DaemonId = StrongId<struct DaemonTag>;
/// A process in the TBON tree (front end, comm process, or back end).
using TbonProcId = StrongId<struct TbonProcTag>;
/// Interned call-frame (function name) identifier.
using FrameId = StrongId<struct FrameTag>;

}  // namespace petastat

template <typename Tag, typename Rep>
struct std::hash<petastat::StrongId<Tag, Rep>> {
  std::size_t operator()(petastat::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
