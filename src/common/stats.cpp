#include "common/stats.hpp"

namespace petastat {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (dn * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace petastat
