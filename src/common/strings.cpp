#include "common/strings.hpp"

#include <charconv>
#include <cstdio>

namespace petastat {

namespace {

void append_range(std::string& out, std::uint32_t lo, std::uint32_t hi) {
  out += std::to_string(lo);
  if (hi > lo) {
    out += '-';
    out += std::to_string(hi);
  }
}

}  // namespace

std::string format_ranges(std::span<const std::uint32_t> sorted,
                          std::size_t max_items) {
  std::string out;
  if (sorted.empty()) return out;
  std::size_t items = 0;
  std::uint32_t lo = sorted[0];
  std::uint32_t hi = sorted[0];
  for (std::size_t i = 1; i <= sorted.size(); ++i) {
    if (i < sorted.size() && sorted[i] == hi + 1) {
      hi = sorted[i];
      continue;
    }
    if (items > 0) out += ',';
    if (items >= max_items) {
      out += "...";
      return out;
    }
    append_range(out, lo, hi);
    ++items;
    if (i < sorted.size()) {
      lo = sorted[i];
      hi = sorted[i];
    }
  }
  return out;
}

std::string format_edge_label(std::span<const std::uint32_t> sorted_tasks,
                              std::size_t max_items) {
  std::string out = std::to_string(sorted_tasks.size());
  out += ":[";
  out += format_ranges(sorted_tasks, max_items);
  out += ']';
  return out;
}

std::vector<std::uint32_t> parse_ranges(const std::string& text) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string piece = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (piece.empty() || piece == "...") continue;
    const std::size_t dash = piece.find('-');
    std::uint32_t lo = 0, hi = 0;
    if (dash == std::string::npos) {
      auto [p, ec] = std::from_chars(piece.data(), piece.data() + piece.size(), lo);
      if (ec != std::errc{}) continue;
      hi = lo;
    } else {
      auto [p1, ec1] = std::from_chars(piece.data(), piece.data() + dash, lo);
      auto [p2, ec2] =
          std::from_chars(piece.data() + dash + 1, piece.data() + piece.size(), hi);
      if (ec1 != std::errc{} || ec2 != std::errc{} || hi < lo) continue;
    }
    for (std::uint32_t v = lo;; ++v) {
      out.push_back(v);
      if (v == hi) break;
    }
  }
  return out;
}

std::string format_duration(SimTime t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(t) / 1e6);
  } else if (t >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(t));
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  constexpr double kKb = 1024.0;
  const auto b = static_cast<double>(bytes);
  if (b >= kKb * kKb * kKb) {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / (kKb * kKb * kKb));
  } else if (b >= kKb * kKb) {
    std::snprintf(buf, sizeof buf, "%.2f MB", b / (kKb * kKb));
  } else if (b >= kKb) {
    std::snprintf(buf, sizeof buf, "%.1f KB", b / kKb);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_seconds_fixed(SimTime t, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, to_seconds(t));
  return buf;
}

}  // namespace petastat
