// Minimal status/result vocabulary. Recoverable failures in this codebase are
// *data* — the paper measures launcher failures and merge failures — so they
// are modelled as values, not exceptions.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace petastat {

enum class StatusCode {
  kOk,
  kInvalidArgument,    // caller error detected at a recoverable boundary
  kFailedPrecondition, // operation not valid in the current state
  kResourceExhausted,  // buffer/connection limits exceeded (e.g. 1-deep merge)
  kUnavailable,        // environment refused service (e.g. rsh spawn failure)
  kDeadlineExceeded,   // modelled hang (e.g. unpatched CIOD at 208K)
  kNotFound,
  kInternal,
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string m) {
  return {StatusCode::kInvalidArgument, std::move(m)};
}
inline Status failed_precondition(std::string m) {
  return {StatusCode::kFailedPrecondition, std::move(m)};
}
inline Status resource_exhausted(std::string m) {
  return {StatusCode::kResourceExhausted, std::move(m)};
}
inline Status unavailable(std::string m) {
  return {StatusCode::kUnavailable, std::move(m)};
}
inline Status deadline_exceeded(std::string m) {
  return {StatusCode::kDeadlineExceeded, std::move(m)};
}
inline Status not_found(std::string m) {
  return {StatusCode::kNotFound, std::move(m)};
}
inline Status internal_error(std::string m) {
  return {StatusCode::kInternal, std::move(m)};
}

/// Result<T>: either a value or a Status. `value()` throws on error — use it
/// only after checking, or in contexts (tests, examples) where failure is a
/// programming error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = internal_error("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    require_ok();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!value_.has_value()) {
      throw std::logic_error("Result::value() on error: " + status_.to_string());
    }
  }

  std::optional<T> value_;
  Status status_ = Status::ok();
};

/// Fatal invariant check for programming errors (not recoverable failures).
inline void check(bool condition, const char* what) {
  if (!condition) throw std::logic_error(std::string("invariant violated: ") + what);
}

}  // namespace petastat
