// Fixed-size worker pool with an MPSC completion queue.
//
// This is the execution substrate of the parallel engine: the simulator
// thread submits real computations (tree merges, trace synthesis) as Tasks,
// workers execute them, and completions flow back over a lock-free
// multi-producer/single-consumer stack (in the spirit of the constant-time
// LL/SC hand-off constructions: workers only ever CAS-push one node; the
// consumer swaps the whole list out). The pool knows nothing about virtual
// time — determinism is the sim::Executor's contract, built on top of the
// one guarantee made here: after wait(task) returns, the task's side effects
// are visible to the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace petastat {

class ThreadPool {
 public:
  /// One unit of work plus its completion state. Tasks are shared between
  /// the submitter (who waits on it) and the worker (who runs it); the
  /// completion queue holds a third reference until the consumer drains it.
  class Task {
   public:
    [[nodiscard]] bool done() const {
      return done_.load(std::memory_order_acquire);
    }

   private:
    friend class ThreadPool;
    std::function<void()> work_;
    std::atomic<bool> done_{false};
    Task* next_ = nullptr;        // intrusive link in the completion stack
    std::shared_ptr<Task> self_;  // keepalive while queued for the consumer
  };
  using TaskRef = std::shared_ptr<Task>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Wraps `work` in a Task without scheduling it. The task can be run by
  /// a worker via post() or on the calling thread via execute() — strands
  /// use the latter to serialize a chain inside one worker job.
  [[nodiscard]] static TaskRef package(std::function<void()> work);

  /// Enqueues a packaged task for any worker.
  void post(TaskRef task);

  /// Enqueues a raw job with no completion tracking (strand pumps).
  void post_job(std::function<void()> job);

  /// Runs `task` on the calling thread: executes the work, marks the task
  /// done, and publishes it on the completion queue.
  void execute(const TaskRef& task);

  /// Blocks until `task` is done. A null ref counts as already done.
  void wait(const TaskRef& task);

  /// Blocks until every posted job has finished.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  /// Tasks whose completions have been drained from the MPSC queue.
  [[nodiscard]] std::uint64_t completed() const { return drained_; }

 private:
  void worker_loop();
  /// Consumer side of the completion queue; requires completion_mutex_.
  void drain_completions_locked();

  // Submission side: a mutex-guarded FIFO the workers pop from.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;

  // Completion side: workers CAS-push finished tasks; waiters swap the list
  // out under completion_mutex_ (single consumer at a time) and release the
  // queue's keepalive references.
  std::atomic<Task*> completion_head_{nullptr};
  std::mutex completion_mutex_;
  std::condition_variable completion_cv_;
  std::uint64_t drained_ = 0;

  std::atomic<std::uint64_t> in_flight_{0};

  std::vector<std::thread> workers_;
};

}  // namespace petastat
