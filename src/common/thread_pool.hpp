// Fixed-size worker pool with a lock-free submission path and an MPSC
// completion queue.
//
// This is the execution substrate of the parallel engine: the simulator
// thread submits real computations (tree merges, trace synthesis) as Tasks,
// workers execute them, and completions flow back over a lock-free
// multi-producer/single-consumer stack (in the spirit of the constant-time
// LL/SC hand-off constructions: producers only ever CAS-push one node; the
// consumer swaps the whole list out). Submission uses the same pointer-width
// CAS construction in the other direction: each worker owns an intrusive
// lock-free inbox that producers CAS-push onto round-robin and that its
// worker (or an idle thief) drains wholesale with a single exchange —
// exchange-only consumption means no ABA window and no tagged pointers. The
// submission fast path takes no mutex; a parked worker is woken through its
// park mutex with the standard Dekker-style sleeping-flag handshake.
//
// Ordering: jobs drained from one inbox batch run in submission order, but
// there is no global FIFO across inboxes (stealing reorders freely). Nothing
// in the engine depends on submission order — determinism is the
// sim::Executor's contract, built on top of the one guarantee made here:
// after wait(task) returns, the task's side effects are visible to the
// caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace petastat {

class ThreadPool {
 public:
  /// One unit of work plus its completion state. Tasks are shared between
  /// the submitter (who waits on it) and the worker (who runs it); the
  /// completion queue holds a third reference until the consumer drains it.
  class Task {
   public:
    [[nodiscard]] bool done() const {
      return done_.load(std::memory_order_acquire);
    }

   private:
    friend class ThreadPool;
    std::function<void()> work_;
    std::atomic<bool> done_{false};
    Task* next_ = nullptr;        // intrusive link in the completion stack
    std::shared_ptr<Task> self_;  // keepalive while queued for the consumer
  };
  using TaskRef = std::shared_ptr<Task>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Wraps `work` in a Task without scheduling it. The task can be run by
  /// a worker via post() or on the calling thread via execute() — strands
  /// use the latter to serialize a chain inside one worker job.
  [[nodiscard]] static TaskRef package(std::function<void()> work);

  /// Enqueues a packaged task for any worker.
  void post(TaskRef task);

  /// Enqueues a raw job with no completion tracking (strand pumps).
  void post_job(std::function<void()> job);

  /// Runs `task` on the calling thread: executes the work, marks the task
  /// done, and publishes it on the completion queue.
  void execute(const TaskRef& task);

  /// Blocks until `task` is done. A null ref counts as already done.
  void wait(const TaskRef& task);

  /// Blocks until every posted job has finished.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  /// Tasks whose completions have been drained from the MPSC queue.
  [[nodiscard]] std::uint64_t completed() const { return drained_; }

 private:
  /// Intrusive node in a worker's lock-free inbox (LIFO while queued; the
  /// drainer reverses the batch back into submission order).
  struct JobNode {
    std::function<void()> fn;
    JobNode* next = nullptr;
  };

  /// Per-worker submission state. The inbox is the lock-free part; the
  /// mutex/cv pair only parks and wakes this one worker.
  struct WorkerSlot {
    std::atomic<JobNode*> inbox{nullptr};
    std::atomic<bool> sleeping{false};
    std::mutex park_mutex;
    std::condition_variable park_cv;
  };

  void worker_loop(unsigned index);
  /// True when any inbox holds work or the pool is stopping — the park
  /// predicate (a parked worker may be woken to steal another's inbox).
  [[nodiscard]] bool work_visible() const;
  static void push_inbox(WorkerSlot& slot, JobNode* node);
  /// Drains the whole inbox with one exchange and reverses it to FIFO.
  [[nodiscard]] static JobNode* drain_inbox(WorkerSlot& slot);
  void wake(WorkerSlot& slot);
  /// Consumer side of the completion queue; requires completion_mutex_.
  void drain_completions_locked();

  // Submission side: one lock-free inbox per worker, producers round-robin.
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::atomic<std::uint64_t> next_slot_{0};
  std::atomic<bool> stopping_{false};

  // Completion side: workers CAS-push finished tasks; waiters swap the list
  // out under completion_mutex_ (single consumer at a time) and release the
  // queue's keepalive references.
  std::atomic<Task*> completion_head_{nullptr};
  std::mutex completion_mutex_;
  std::condition_variable completion_cv_;
  std::uint64_t drained_ = 0;

  std::atomic<std::uint64_t> in_flight_{0};

  std::vector<std::thread> workers_;
};

}  // namespace petastat
