// Leveled logging with a simulation-time column. Components log against the
// simulated clock so traces read like tool logs from a real run.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace petastat {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& global() {
    static Logger instance;
    return instance;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(std::FILE* sink) { sink_ = sink; }

  void log(LogLevel level, SimTime sim_time, std::string_view component,
           std::string_view message) const;

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::FILE* sink_ = stderr;
};

void log_debug(SimTime t, std::string_view component, std::string_view message);
void log_info(SimTime t, std::string_view component, std::string_view message);
void log_warn(SimTime t, std::string_view component, std::string_view message);
void log_error(SimTime t, std::string_view component, std::string_view message);

}  // namespace petastat
