#include "common/log.hpp"

namespace petastat {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Logger::log(LogLevel level, SimTime sim_time, std::string_view component,
                 std::string_view message) const {
  if (level < level_ || sink_ == nullptr) return;
  std::fprintf(sink_, "[%12.6f] %s %.*s: %.*s\n", to_seconds(sim_time),
               level_name(level), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

void log_debug(SimTime t, std::string_view c, std::string_view m) {
  Logger::global().log(LogLevel::kDebug, t, c, m);
}
void log_info(SimTime t, std::string_view c, std::string_view m) {
  Logger::global().log(LogLevel::kInfo, t, c, m);
}
void log_warn(SimTime t, std::string_view c, std::string_view m) {
  Logger::global().log(LogLevel::kWarn, t, c, m);
}
void log_error(SimTime t, std::string_view c, std::string_view m) {
  Logger::global().log(LogLevel::kError, t, c, m);
}

}  // namespace petastat
