// Byte-oriented serialization used for real wire encoding of STAT packets.
// Payload sizes produced here feed the network model, so encodings must be
// the actual formats (dense bit vector pages vs ranged task lists).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace petastat {

/// Wire-format version carried as the leading byte of every top-level
/// encoding (ranged task sets, hierarchical task sets, prefix trees).
/// Nested fields inside a versioned envelope are unversioned. Bump on any
/// incompatible layout change so decoders can distinguish version skew
/// (FAILED_PRECONDITION) from plain truncation/corruption
/// (INVALID_ARGUMENT "truncated buffer").
inline constexpr std::uint8_t kWireFormatVersion = 1;

/// Append-only byte sink with varint and fixed-width encoders.
class ByteSink {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) {
    const std::size_t at = buf_.size();
    buf_.resize(at + 4);
    std::memcpy(buf_.data() + at, &v, 4);
  }

  void put_u64(std::uint64_t v) {
    const std::size_t at = buf_.size();
    buf_.resize(at + 8);
    std::memcpy(buf_.data() + at, &v, 8);
  }

  /// LEB128-style varint; small values dominate STAT payloads.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_string(std::string_view s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte span. All getters report truncation via
/// Status rather than UB.
class ByteSource {
 public:
  explicit ByteSource(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] Status get_u8(std::uint8_t& out) {
    if (pos_ + 1 > data_.size()) return truncated();
    out = data_[pos_++];
    return Status::ok();
  }

  [[nodiscard]] Status get_u32(std::uint32_t& out) {
    if (pos_ + 4 > data_.size()) return truncated();
    std::memcpy(&out, data_.data() + pos_, 4);
    pos_ += 4;
    return Status::ok();
  }

  [[nodiscard]] Status get_u64(std::uint64_t& out) {
    if (pos_ + 8 > data_.size()) return truncated();
    std::memcpy(&out, data_.data() + pos_, 8);
    pos_ += 8;
    return Status::ok();
  }

  [[nodiscard]] Status get_varint(std::uint64_t& out) {
    out = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return truncated();
      const std::uint8_t byte = data_[pos_++];
      // The 10th byte holds bit 63 only: anything above 1 overflows, and a
      // set continuation bit would push the next shift past 64 (UB).
      if (shift >= 63 && byte > 1) return invalid_argument("varint overflow");
      out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return Status::ok();
      shift += 7;
    }
  }

  [[nodiscard]] Status get_string(std::string& out) {
    std::uint64_t len = 0;
    if (auto s = get_varint(len); !s.is_ok()) return s;
    // `pos_ + len` may wrap for attacker-controlled lengths; compare against
    // the remaining bytes instead.
    if (len > data_.size() - pos_) return truncated();
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::ok();
  }

  [[nodiscard]] Status get_bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    if (n > data_.size() - pos_) return truncated();
    out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::ok();
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  /// Caps an untrusted element count before a container reserve(): every
  /// encoded element occupies at least one byte, so no valid stream holds
  /// more elements than it has bytes remaining. Keeps a corrupt count header
  /// from allocating wildly before the truncation error surfaces.
  [[nodiscard]] std::size_t clamped_count(std::uint64_t n) const {
    return static_cast<std::size_t>(std::min<std::uint64_t>(n, remaining()));
  }

 private:
  static Status truncated() { return invalid_argument("truncated buffer"); }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

inline void put_wire_version(ByteSink& sink) {
  sink.put_u8(kWireFormatVersion);
}

/// Reads and checks the leading version byte. A missing byte reports
/// truncation; a mismatched byte reports version skew, distinctly.
[[nodiscard]] inline Status check_wire_version(ByteSource& source) {
  std::uint8_t version = 0;
  if (auto s = source.get_u8(version); !s.is_ok()) return s;
  if (version != kWireFormatVersion) {
    return failed_precondition(
        "wire format version skew: got " + std::to_string(version) +
        ", expected " + std::to_string(kWireFormatVersion));
  }
  return Status::ok();
}

}  // namespace petastat
