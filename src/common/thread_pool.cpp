#include "common/thread_pool.hpp"

#include "common/status.hpp"

namespace petastat {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Release the completion queue's keepalive references.
  std::lock_guard<std::mutex> lock(completion_mutex_);
  drain_completions_locked();
}

ThreadPool::TaskRef ThreadPool::package(std::function<void()> work) {
  check(static_cast<bool>(work), "ThreadPool::package with empty work");
  auto task = std::make_shared<Task>();
  task->work_ = std::move(work);
  return task;
}

void ThreadPool::post(TaskRef task) {
  check(task != nullptr, "ThreadPool::post null task");
  post_job([this, task = std::move(task)]() { execute(task); });
}

void ThreadPool::post_job(std::function<void()> job) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    check(!stopping_, "ThreadPool::post_job after shutdown");
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void ThreadPool::execute(const TaskRef& task) {
  task->work_();
  task->work_ = nullptr;  // release captures eagerly
  // Publish on the MPSC completion stack. The self-reference keeps the task
  // alive while queued even if the submitter drops its ref; the node is
  // pushed with a single CAS (multi-producer), and only drained by one
  // consumer at a time under completion_mutex_.
  Task* node = task.get();
  node->self_ = task;
  node->next_ = completion_head_.load(std::memory_order_relaxed);
  while (!completion_head_.compare_exchange_weak(node->next_, node,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
  }
  node->done_.store(true, std::memory_order_release);
  // Lock/unlock pairs the done-flag write with waiters' predicate checks so
  // a notification cannot slip between a check and the wait.
  { std::lock_guard<std::mutex> lock(completion_mutex_); }
  completion_cv_.notify_all();
}

void ThreadPool::drain_completions_locked() {
  Task* head = completion_head_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    Task* next = head->next_;
    head->next_ = nullptr;
    ++drained_;
    head->self_.reset();  // may destroy *head; `next` was saved first
    head = next;
  }
}

void ThreadPool::wait(const TaskRef& task) {
  if (task == nullptr || task->done()) {
    // Fast path: still drain opportunistically so finished tasks (and their
    // keepalive refs) don't pile up when workers outpace the waiter.
    if (std::unique_lock<std::mutex> lock(completion_mutex_, std::try_to_lock);
        lock.owns_lock()) {
      drain_completions_locked();
    }
    return;
  }
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [&]() { return task->done(); });
  drain_completions_locked();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [&]() {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  drain_completions_locked();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    in_flight_.fetch_sub(1, std::memory_order_release);
    { std::lock_guard<std::mutex> lock(completion_mutex_); }
    completion_cv_.notify_all();
  }
}

}  // namespace petastat
