#include "common/thread_pool.hpp"

#include "common/status.hpp"

namespace petastat {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  slots_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  for (auto& slot : slots_) wake(*slot);
  for (auto& worker : workers_) worker.join();
  // Release the completion queue's keepalive references.
  std::lock_guard<std::mutex> lock(completion_mutex_);
  drain_completions_locked();
}

ThreadPool::TaskRef ThreadPool::package(std::function<void()> work) {
  check(static_cast<bool>(work), "ThreadPool::package with empty work");
  auto task = std::make_shared<Task>();
  task->work_ = std::move(work);
  return task;
}

void ThreadPool::post(TaskRef task) {
  check(task != nullptr, "ThreadPool::post null task");
  post_job([this, task = std::move(task)]() { execute(task); });
}

void ThreadPool::push_inbox(WorkerSlot& slot, JobNode* node) {
  // Pointer-width CAS push onto the inbox stack. seq_cst on success pairs
  // with the parking worker's seq_cst sleeping-store/inbox-load (Dekker):
  // either the worker's final inbox check sees this node, or this thread's
  // sleeping check below sees the worker parked and wakes it.
  node->next = slot.inbox.load(std::memory_order_relaxed);
  while (!slot.inbox.compare_exchange_weak(node->next, node,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed)) {
  }
}

ThreadPool::JobNode* ThreadPool::drain_inbox(WorkerSlot& slot) {
  // Exchange-only consumption: the whole stack comes off in one swap, so a
  // node's address can never be re-CASed under a reader (no ABA), and no
  // tagged pointer or DWCAS is needed. Reverse to restore submission order.
  JobNode* head = slot.inbox.exchange(nullptr, std::memory_order_acquire);
  JobNode* fifo = nullptr;
  while (head != nullptr) {
    JobNode* next = head->next;
    head->next = fifo;
    fifo = head;
    head = next;
  }
  return fifo;
}

void ThreadPool::wake(WorkerSlot& slot) {
  // Lock/unlock pairs with the worker's predicate re-check so the notify
  // cannot slip between its check and its wait.
  { std::lock_guard<std::mutex> lock(slot.park_mutex); }
  slot.park_cv.notify_one();
}

void ThreadPool::post_job(std::function<void()> job) {
  check(!stopping_.load(std::memory_order_relaxed),
        "ThreadPool::post_job after shutdown");
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  auto* node = new JobNode{std::move(job), nullptr};
  WorkerSlot& target =
      *slots_[next_slot_.fetch_add(1, std::memory_order_relaxed) %
              slots_.size()];
  push_inbox(target, node);
  if (target.sleeping.load(std::memory_order_seq_cst)) {
    wake(target);
    return;
  }
  // The target is busy; hand the latency win to any parked worker, whose
  // park predicate spans all inboxes, so it wakes and steals this one.
  // Missing a concurrently-parking worker here is benign: its final
  // work_visible() scan happens after it publishes its sleeping flag, so it
  // sees this push instead of sleeping (the Dekker pair in worker_loop).
  for (auto& slot : slots_) {
    if (slot.get() != &target &&
        slot->sleeping.load(std::memory_order_relaxed)) {
      wake(*slot);
      break;
    }
  }
}

void ThreadPool::worker_loop(unsigned index) {
  WorkerSlot& self = *slots_[index];
  const std::size_t n = slots_.size();
  JobNode* batch = nullptr;  // FIFO run list, worker-private
  while (true) {
    if (batch != nullptr) {
      JobNode* node = batch;
      batch = node->next;
      node->fn();
      delete node;
      in_flight_.fetch_sub(1, std::memory_order_release);
      { std::lock_guard<std::mutex> lock(completion_mutex_); }
      completion_cv_.notify_all();
      continue;
    }
    batch = drain_inbox(self);
    if (batch != nullptr) continue;
    // Steal a whole inbox from a busy sibling before parking.
    for (std::size_t offset = 1; offset < n && batch == nullptr; ++offset) {
      batch = drain_inbox(*slots_[(index + offset) % n]);
    }
    if (batch != nullptr) continue;
    if (stopping_.load(std::memory_order_seq_cst)) {
      // One more sweep now that the stop is observed: a job posted just
      // before the destructor's stopping store may have landed after the
      // scans above. The store synchronizes with the load, so that push is
      // visible to this re-scan — every job posted before shutdown runs.
      for (std::size_t offset = 0; offset < n && batch == nullptr; ++offset) {
        batch = drain_inbox(*slots_[(index + offset) % n]);
      }
      if (batch != nullptr) continue;
      return;
    }
    // Park. The predicate covers EVERY inbox, not just this worker's: a
    // producer whose round-robin target is busy wakes one parked worker to
    // steal, and the seq_cst sleeping-store / inbox-load pair below closes
    // the Dekker race against that producer's push / sleeping-load pair —
    // either the producer sees this worker parked (and wakes it), or this
    // worker's final scan sees the pushed node (and never sleeps).
    std::unique_lock<std::mutex> lock(self.park_mutex);
    self.sleeping.store(true, std::memory_order_seq_cst);
    if (!work_visible()) {
      self.park_cv.wait(lock, [&]() { return work_visible(); });
    }
    self.sleeping.store(false, std::memory_order_relaxed);
  }
}

bool ThreadPool::work_visible() const {
  for (const auto& slot : slots_) {
    if (slot->inbox.load(std::memory_order_seq_cst) != nullptr) return true;
  }
  return stopping_.load(std::memory_order_seq_cst);
}

void ThreadPool::execute(const TaskRef& task) {
  task->work_();
  task->work_ = nullptr;  // release captures eagerly
  // Publish on the MPSC completion stack. The self-reference keeps the task
  // alive while queued even if the submitter drops its ref; the node is
  // pushed with a single CAS (multi-producer), and only drained by one
  // consumer at a time under completion_mutex_.
  Task* node = task.get();
  node->self_ = task;
  node->next_ = completion_head_.load(std::memory_order_relaxed);
  while (!completion_head_.compare_exchange_weak(node->next_, node,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
  }
  node->done_.store(true, std::memory_order_release);
  // Lock/unlock pairs the done-flag write with waiters' predicate checks so
  // a notification cannot slip between a check and the wait.
  { std::lock_guard<std::mutex> lock(completion_mutex_); }
  completion_cv_.notify_all();
}

void ThreadPool::drain_completions_locked() {
  Task* head = completion_head_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    Task* next = head->next_;
    head->next_ = nullptr;
    ++drained_;
    head->self_.reset();  // may destroy *head; `next` was saved first
    head = next;
  }
}

void ThreadPool::wait(const TaskRef& task) {
  if (task == nullptr || task->done()) {
    // Fast path: still drain opportunistically so finished tasks (and their
    // keepalive refs) don't pile up when workers outpace the waiter.
    if (std::unique_lock<std::mutex> lock(completion_mutex_, std::try_to_lock);
        lock.owns_lock()) {
      drain_completions_locked();
    }
    return;
  }
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [&]() { return task->done(); });
  drain_completions_locked();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(completion_mutex_);
  completion_cv_.wait(lock, [&]() {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  drain_completions_locked();
}

}  // namespace petastat
