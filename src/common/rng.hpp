// Deterministic random number generation. Every stochastic model component
// owns its own generator seeded from a run seed plus a stream id, so results
// are reproducible and independent of evaluation order.
#pragma once

#include <cstdint>
#include <cmath>

namespace petastat {

/// SplitMix64: used to derive stream seeds; passes BigCrush, tiny state.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator for all model noise.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Derives an independent stream: same run seed + different stream id
  /// gives an uncorrelated sequence.
  Rng(std::uint64_t run_seed, std::uint64_t stream_id)
      : Rng(run_seed ^ (0x6a09e667f3bcc909ULL * (stream_id + 1))) {}

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Normal with given mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal multiplicative noise factor with median 1.0 and the given
  /// sigma (in log space). Models long-tailed service-time variation.
  double lognormal_factor(double sigma) { return std::exp(sigma * normal()); }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace petastat
