// Daemon-launching services (Sec. IV).
//
// Three launchers model the paper's spectrum:
//  * RemoteShellLauncher — MRNet's ad hoc rsh/ssh spawner: one serial remote
//    shell per daemon from the front end. Linear by construction, and rsh
//    "consistently fails" at 512 daemons (connection/port exhaustion).
//  * BulkTreeLauncher — the LaunchMON path: one resource-manager request,
//    then the RM's internal fan-out tree starts all daemons in O(log n).
//  * CiodLauncher — BG/L system software: daemons are started on I/O nodes
//    by CIOD, the application is launched under tool control, and the RM
//    builds the process table. The unpatched table packer used strcat —
//    which rescans the destination buffer on every append, making packing
//    quadratic — and hung outright at 208K processes. The IBM patches
//    (bigger buffers, no strcat) make it linear; Fig. 3 shows >2x at 104K.
#pragma once

#include <functional>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"

namespace petastat::rm {

struct LaunchRequest {
  std::uint32_t num_daemons = 0;
  /// Application processes the system software must table (BG/L); 0 when the
  /// app is already running (Atlas attach model).
  std::uint32_t num_app_procs = 0;
};

/// Phase breakdown of a completed (or failed) launch.
struct LaunchReport {
  Status status = Status::ok();
  SimTime started_at = 0;
  SimTime finished_at = 0;
  /// Time inside the system software / process-table generation. Fig. 3:
  /// "the system software accounts for over 86% of the startup time".
  SimTime system_software_time = 0;
  SimTime daemon_spawn_time = 0;
  SimTime app_launch_time = 0;

  [[nodiscard]] SimTime total() const { return finished_at - started_at; }
};

using LaunchCallback = std::function<void(const LaunchReport&)>;

class DaemonLauncher {
 public:
  virtual ~DaemonLauncher() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Starts the launch now; `done` fires at the modelled completion time
  /// (or at failure detection time with a non-OK status).
  virtual void launch(const LaunchRequest& request, LaunchCallback done) = 0;
};

enum class ShellProtocol { kRsh, kSsh };

class RemoteShellLauncher final : public DaemonLauncher {
 public:
  RemoteShellLauncher(sim::Simulator& simulator,
                      const machine::MachineConfig& machine,
                      const machine::LaunchCosts& costs, ShellProtocol protocol,
                      std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override {
    return protocol_ == ShellProtocol::kRsh ? "mrnet-rsh" : "mrnet-ssh";
  }
  void launch(const LaunchRequest& request, LaunchCallback done) override;

 private:
  sim::Simulator& sim_;
  machine::MachineConfig machine_;
  machine::LaunchCosts costs_;
  ShellProtocol protocol_;
  Rng rng_;
};

class BulkTreeLauncher final : public DaemonLauncher {
 public:
  BulkTreeLauncher(sim::Simulator& simulator, const machine::LaunchCosts& costs,
                   std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override { return "launchmon-rm"; }
  void launch(const LaunchRequest& request, LaunchCallback done) override;

 private:
  sim::Simulator& sim_;
  machine::LaunchCosts costs_;
  Rng rng_;
};

class CiodLauncher final : public DaemonLauncher {
 public:
  CiodLauncher(sim::Simulator& simulator, const machine::LaunchCosts& costs,
               bool patched, std::uint64_t seed);

  [[nodiscard]] std::string_view name() const override {
    return patched_ ? "ciod-patched" : "ciod-unpatched";
  }
  void launch(const LaunchRequest& request, LaunchCallback done) override;

  /// Modelled process-table generation time for `procs` processes.
  [[nodiscard]] SimTime process_table_time(std::uint32_t procs) const;

 private:
  sim::Simulator& sim_;
  machine::LaunchCosts costs_;
  bool patched_;
  Rng rng_;
};

/// Number of fan-out tree levels needed to reach n leaves (shared analytic
/// formulation; lives in machine/cost_model next to the launch formulas).
using machine::tree_levels;

}  // namespace petastat::rm
