#include "rm/launcher.hpp"

#include <algorithm>
#include <cmath>

namespace petastat::rm {

// ---------------------------------------------------------------------------
// RemoteShellLauncher

RemoteShellLauncher::RemoteShellLauncher(sim::Simulator& simulator,
                                         const machine::MachineConfig& machine,
                                         const machine::LaunchCosts& costs,
                                         ShellProtocol protocol,
                                         std::uint64_t seed)
    : sim_(simulator),
      machine_(machine),
      costs_(costs),
      protocol_(protocol),
      rng_(seed, /*stream_id=*/0x4c) {}

void RemoteShellLauncher::launch(const LaunchRequest& request,
                                 LaunchCallback done) {
  LaunchReport report;
  report.started_at = sim_.now();

  if (protocol_ == ShellProtocol::kRsh && !machine_.supports_rsh) {
    report.status = unavailable(machine_.name + " does not support rsh");
  } else if (protocol_ == ShellProtocol::kSsh && !machine_.supports_ssh) {
    report.status =
        unavailable(machine_.name + " compute nodes do not run sshd");
  } else if (protocol_ == ShellProtocol::kRsh &&
             request.num_daemons >= costs_.rsh_failure_threshold) {
    // rsh uses reserved ports; the front end exhausts them fanning out this
    // wide. The failure surfaces only after the spawner has ground through
    // part of the list, matching observed behaviour.
    const double burned =
        to_seconds(costs_.remote_shell_per_daemon) *
        static_cast<double>(costs_.rsh_failure_threshold) * 0.5;
    report.status = unavailable("rsh spawn failed (reserved ports exhausted)");
    report.finished_at = sim_.now() + seconds(burned);
    sim_.schedule_at(report.finished_at,
                     [report, done = std::move(done)]() { done(report); });
    return;
  }

  if (!report.status.is_ok()) {
    report.finished_at = sim_.now();
    sim_.schedule_in(0, [report, done = std::move(done)]() { done(report); });
    return;
  }

  // One remote shell per daemon, strictly sequential from the front end:
  // per-spawn lognormal noise around the shared analytic formula.
  double noise_sum = 0.0;
  for (std::uint32_t i = 0; i < request.num_daemons; ++i) {
    noise_sum += rng_.lognormal_factor(costs_.remote_shell_sigma);
  }
  const double mean_noise =
      request.num_daemons > 0 ? noise_sum / request.num_daemons : 1.0;
  const SimTime spawn = static_cast<SimTime>(
      static_cast<double>(
          machine::serial_shell_spawn_time(costs_, request.num_daemons)) *
      mean_noise);
  const SimTime init = costs_.daemon_init;  // daemons initialize in parallel
  report.daemon_spawn_time = spawn;
  report.finished_at = sim_.now() + spawn + init;
  sim_.schedule_at(report.finished_at,
                   [report, done = std::move(done)]() { done(report); });
}

// ---------------------------------------------------------------------------
// BulkTreeLauncher

BulkTreeLauncher::BulkTreeLauncher(sim::Simulator& simulator,
                                   const machine::LaunchCosts& costs,
                                   std::uint64_t seed)
    : sim_(simulator), costs_(costs), rng_(seed, /*stream_id=*/0xb1) {}

void BulkTreeLauncher::launch(const LaunchRequest& request, LaunchCallback done) {
  LaunchReport report;
  report.started_at = sim_.now();

  const double noise = rng_.lognormal_factor(0.05);
  const SimTime spawn = static_cast<SimTime>(
      static_cast<double>(
          machine::bulk_tree_spawn_time(costs_, request.num_daemons)) *
      noise);
  report.daemon_spawn_time = spawn;
  report.finished_at = sim_.now() + spawn + costs_.daemon_init;
  sim_.schedule_at(report.finished_at,
                   [report, done = std::move(done)]() { done(report); });
}

// ---------------------------------------------------------------------------
// CiodLauncher

CiodLauncher::CiodLauncher(sim::Simulator& simulator,
                           const machine::LaunchCosts& costs, bool patched,
                           std::uint64_t seed)
    : sim_(simulator),
      costs_(costs),
      patched_(patched),
      rng_(seed, /*stream_id=*/0xc10d) {}

SimTime CiodLauncher::process_table_time(std::uint32_t procs) const {
  return machine::ciod_process_table_time(costs_, procs, patched_);
}

void CiodLauncher::launch(const LaunchRequest& request, LaunchCallback done) {
  LaunchReport report;
  report.started_at = sim_.now();

  if (!patched_ &&
      request.num_app_procs >= costs_.ciod_unpatched_hang_threshold) {
    // The pre-patch resource manager hung at 208K processes (Sec. IV-A). We
    // surface that as DEADLINE_EXCEEDED after a watchdog interval.
    report.status =
        deadline_exceeded("BG/L resource manager hang generating the process "
                          "table at " + std::to_string(request.num_app_procs) +
                          " processes");
    report.finished_at = sim_.now() + 1800 * kSecond;  // 30 min watchdog
    sim_.schedule_at(report.finished_at,
                     [report, done = std::move(done)]() { done(report); });
    return;
  }

  const double noise = rng_.lognormal_factor(0.04);

  // Daemons are pushed to the I/O nodes through the control network in bulk.
  const SimTime spawn =
      static_cast<SimTime>(
          static_cast<double>(
              machine::ciod_spawn_time(costs_, request.num_daemons)) *
          noise) +
      costs_.daemon_init;
  // The app is launched under tool control (the BG/L prototype requires it).
  const SimTime app =
      costs_.app_launch_base +
      static_cast<SimTime>(
          static_cast<double>(
              machine::ciod_app_launch_time(costs_, request.num_app_procs) -
              costs_.app_launch_base) *
          noise);
  const SimTime table = static_cast<SimTime>(
      static_cast<double>(process_table_time(request.num_app_procs)) * noise);

  report.daemon_spawn_time = spawn;
  report.app_launch_time = app;
  report.system_software_time = table;
  report.finished_at = sim_.now() + spawn + app + table;
  sim_.schedule_at(report.finished_at,
                   [report, done = std::move(done)]() { done(report); });
}

}  // namespace petastat::rm
