#include "sbrs/sbrs.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace petastat::sbrs {

void Sbrs::relocate(const app::AppBinarySpec& spec,
                    std::function<void(const SbrsReport&)> done) {
  auto report = std::make_shared<SbrsReport>();
  report->grace_time = params_.sigstop_grace;

  // mtab check: only shared-FS binaries move.
  std::vector<app::BinaryImage> to_move;
  for (const auto& image : spec.images) {
    if (files_.mounts().on_shared_filesystem(image.path)) {
      to_move.push_back(image);
    } else {
      ++report->skipped_local_files;
    }
  }

  auto finish = [this, report, done = std::move(done)](SimTime reloc_start) {
    report->relocation_time = sim_.now() - reloc_start;
    done(*report);
  };

  if (to_move.empty()) {
    sim_.schedule_in(params_.sigstop_grace,
                     [this, finish]() { finish(sim_.now()); });
    return;
  }

  // SIGSTOP + grace, then fetch-and-broadcast. Cutting the grace short
  // leaves spin-waiting ranks competing with the relocation traffic.
  const double contention =
      params_.sigstop_grace < params_.settle_threshold
          ? params_.unsettled_contention_factor
          : 1.0;

  sim_.schedule_in(params_.sigstop_grace, [this, report, to_move, contention,
                                           finish = std::move(finish)]() {
    const SimTime reloc_start = sim_.now();
    const NodeId master = fabric_.master_host();

    // Master fetches every shared image from the file server once.
    SimTime fetch_done = sim_.now();
    std::uint64_t total_bytes = 0;
    for (const auto& image : to_move) {
      fetch_done = std::max(
          fetch_done, files_.open_and_read(master, image.path, image.bytes));
      total_bytes += image.bytes;
      ++report->relocated_files;
    }
    report->relocated_bytes = total_bytes;
    // Contention stretches both the master's fetch and the broadcast: NICs
    // and cores time-share with ranks still polling for messages.
    if (contention > 1.0 && fetch_done > sim_.now()) {
      fetch_done = sim_.now() + static_cast<SimTime>(
          static_cast<double>(fetch_done - sim_.now()) * contention);
    }
    total_bytes = static_cast<std::uint64_t>(
        static_cast<double>(total_bytes) * contention);

    sim_.schedule_at(fetch_done, [this, report, to_move, total_bytes,
                                  reloc_start, finish = std::move(finish)]() {
      // One broadcast moves the packed images to every daemon.
      fabric_.broadcast_from_master(total_bytes, [this, report, to_move,
                                                  reloc_start,
                                                  finish = std::move(finish)]() {
        // Interpose open() everywhere and mark RAM-disk copies resident.
        for (std::uint32_t d = 0; d < layout_.num_daemons; ++d) {
          const NodeId host = machine::daemon_host(machine_, DaemonId(d));
          for (const auto& image : to_move) {
            const std::string relocated = params_.ramdisk_prefix + image.path;
            files_.install_redirect(host, image.path, relocated);
            files_.populate_local(host, relocated);
          }
        }
        const SimTime install =
            layout_.num_daemons * params_.redirect_install_per_daemon;
        sim_.schedule_in(install, [reloc_start, finish = std::move(finish)]() {
          finish(reloc_start);
        });
      });
    });
  });
}

}  // namespace petastat::sbrs
