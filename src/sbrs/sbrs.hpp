// Scalable Binary Relocation Service (Sec. VI-B).
//
// SBRS moves the symbol-parsing I/O off the shared file server:
//   1. Check the mount table: only files on globally shared file systems
//      need relocation.
//   2. Send SIGSTOP to the application processes and give them a grace
//      period to settle (so the broadcast does not contend with MPI spin
//      loops for the interconnect and CPUs).
//   3. The master back-end daemon fetches each shared binary from the file
//      system once, then broadcasts it to every daemon over the LaunchMON
//      back-end fabric (the Infiniband switch on Atlas).
//   4. Interpose open(): daemon file I/O on the original paths is redirected
//      to the relocated RAM-disk copies.
//
// Paper anchor: relocating the 10 KB executable and the 4 MB MPI library to
// 128 nodes took 0.088 s; sampling then costs a scale-independent ~2 s.
#pragma once

#include <functional>
#include <string>

#include "app/appmodel.hpp"
#include "common/types.hpp"
#include "fs/filesystem.hpp"
#include "launchmon/launchmon.hpp"
#include "machine/machine.hpp"
#include "sim/simulator.hpp"

namespace petastat::sbrs {

struct SbrsParams {
  /// Grace period after SIGSTOP before the relocation traffic starts.
  SimTime sigstop_grace = 500 * kMillisecond;
  /// Mount point of the per-node RAM disk the binaries are relocated to.
  std::string ramdisk_prefix = "/ramdisk";
  /// Control round-trip to install the open() interposition on one daemon
  /// (the interpositions are armed serially from the master).
  SimTime redirect_install_per_daemon = 150 * kMicrosecond;
  /// Below this grace period the application's spin-waiting ranks have not
  /// settled and the relocation broadcast contends with MPI polling traffic
  /// for the NICs and CPUs (Sec. VI-B: "we find that we must minimize
  /// contention between SBRS and application tasks").
  SimTime settle_threshold = 100 * kMillisecond;
  /// Effective slowdown of the fetch+broadcast when launched un-settled.
  double unsettled_contention_factor = 4.0;
};

struct SbrsReport {
  SimTime grace_time = 0;
  /// Fetch + broadcast + redirect installation (the paper's 0.088 s number).
  SimTime relocation_time = 0;
  std::uint64_t relocated_bytes = 0;
  std::uint32_t relocated_files = 0;
  std::uint32_t skipped_local_files = 0;
};

class Sbrs {
 public:
  Sbrs(sim::Simulator& simulator, const machine::MachineConfig& machine,
       machine::DaemonLayout layout, fs::FileAccess& files,
       launchmon::BackEndFabric& fabric, SbrsParams params)
      : sim_(simulator),
        machine_(machine),
        layout_(layout),
        files_(files),
        fabric_(fabric),
        params_(std::move(params)) {}

  /// Relocates every shared binary in `spec` and installs open() redirects
  /// on all daemon hosts. `done` fires when the last daemon is ready.
  void relocate(const app::AppBinarySpec& spec,
                std::function<void(const SbrsReport&)> done);

 private:
  sim::Simulator& sim_;
  machine::MachineConfig machine_;
  machine::DaemonLayout layout_;
  fs::FileAccess& files_;
  launchmon::BackEndFabric& fabric_;
  SbrsParams params_;
};

}  // namespace petastat::sbrs
