#include "launchmon/launchmon.hpp"

#include <memory>
#include <vector>

namespace petastat::launchmon {

BackEndFabric::BackEndFabric(sim::Simulator& simulator,
                             const machine::MachineConfig& machine,
                             net::Network& network,
                             machine::DaemonLayout layout)
    : sim_(simulator), machine_(machine), net_(network), layout_(layout) {}

NodeId BackEndFabric::master_host() const {
  return machine::daemon_host(machine_, DaemonId(0));
}

struct BackEndFabric::BcastState {
  std::uint64_t bytes = 0;
  std::uint32_t remaining = 0;
  std::function<void()> done;

  void delivered() {
    if (--remaining == 0 && done) done();
  }
};

void BackEndFabric::bcast_send_from(const std::shared_ptr<BcastState>& state,
                                    std::uint32_t daemon,
                                    std::uint64_t first_step) {
  // Binomial tree: in round k, every daemon with id < 2^k sends to id + 2^k.
  // A daemon that joined in round k participates from round k+1 onward.
  for (std::uint64_t step = first_step; daemon + step < layout_.num_daemons;
       step *= 2) {
    const auto child = static_cast<std::uint32_t>(daemon + step);
    const NodeId src = machine::daemon_host(machine_, DaemonId(daemon));
    const NodeId dst = machine::daemon_host(machine_, DaemonId(child));
    const std::uint64_t next_step = step * 2;
    net_.transfer_async(src, dst, state->bytes,
                        [this, state, child, next_step]() {
                          state->delivered();
                          bcast_send_from(state, child, next_step);
                        });
  }
}

void BackEndFabric::broadcast_from_master(std::uint64_t bytes,
                                          std::function<void()> done) {
  if (layout_.num_daemons <= 1) {
    sim_.schedule_in(0, std::move(done));
    return;
  }
  auto state = std::make_shared<BcastState>();
  state->bytes = bytes;
  state->remaining = layout_.num_daemons - 1;
  state->done = std::move(done);
  bcast_send_from(state, 0, 1);
}

namespace {

/// Round-sequenced binomial reduction: all transfers of a round complete
/// before the next round begins (receivers must combine before forwarding).
struct ReduceState : std::enable_shared_from_this<ReduceState> {
  sim::Simulator* sim = nullptr;
  net::Network* network = nullptr;
  machine::MachineConfig machine;
  std::uint32_t n = 0;
  std::uint64_t bytes = 0;
  std::uint64_t stride = 1;
  std::uint32_t round_pending = 0;
  std::function<void()> done;

  void run_round() {
    if (stride >= n) {
      if (done) done();
      return;
    }
    round_pending = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::uint64_t recv = 0; recv < n; recv += 2 * stride) {
      const std::uint64_t sender = recv + stride;
      if (sender < n) {
        pairs.emplace_back(static_cast<std::uint32_t>(sender),
                           static_cast<std::uint32_t>(recv));
      }
    }
    if (pairs.empty()) {
      stride *= 2;
      run_round();
      return;
    }
    round_pending = static_cast<std::uint32_t>(pairs.size());
    auto self = shared_from_this();
    for (const auto& [src_d, dst_d] : pairs) {
      const NodeId src = machine::daemon_host(machine, DaemonId(src_d));
      const NodeId dst = machine::daemon_host(machine, DaemonId(dst_d));
      network->transfer_async(src, dst, bytes, [self]() {
        if (--self->round_pending == 0) {
          self->stride *= 2;
          self->run_round();
        }
      });
    }
  }
};

}  // namespace

void BackEndFabric::reduce_to_master(std::uint64_t bytes_per_daemon,
                                     std::function<void()> done) {
  if (layout_.num_daemons <= 1) {
    sim_.schedule_in(0, std::move(done));
    return;
  }
  auto state = std::make_shared<ReduceState>();
  state->sim = &sim_;
  state->network = &net_;
  state->machine = machine_;
  state->n = layout_.num_daemons;
  state->bytes = bytes_per_daemon;
  state->done = std::move(done);
  state->run_round();
}

}  // namespace petastat::launchmon
