// LaunchMON-style tool infrastructure (Sec. IV-B).
//
// LaunchMON decouples daemon launching from the tool: the front end issues
// one request and the resource manager bulk-launches daemons. It also gives
// back-end daemons a collective communication fabric; STAT's SBRS uses the
// fabric's broadcast to push relocated binaries to every daemon over the
// interconnect (Sec. VI-B: "through the Infiniband switch in the case of
// Atlas").
#pragma once

#include <functional>
#include <memory>

#include "common/types.hpp"
#include "machine/machine.hpp"
#include "net/network.hpp"
#include "rm/launcher.hpp"
#include "sim/simulator.hpp"

namespace petastat::launchmon {

/// Collective fabric over the daemon hosts. Master is daemon 0.
class BackEndFabric {
 public:
  BackEndFabric(sim::Simulator& simulator, const machine::MachineConfig& machine,
                net::Network& network, machine::DaemonLayout layout);

  [[nodiscard]] NodeId master_host() const;
  [[nodiscard]] std::uint32_t num_daemons() const { return layout_.num_daemons; }

  /// Binomial-tree broadcast of `bytes` from the master daemon to all
  /// daemons, with real per-hop network transfers (NIC contention included).
  /// `done` fires when the last daemon holds the payload.
  void broadcast_from_master(std::uint64_t bytes, std::function<void()> done);

  /// Binomial-tree reduction of fixed-size contributions to the master.
  void reduce_to_master(std::uint64_t bytes_per_daemon,
                        std::function<void()> done);

 private:
  struct BcastState;
  void bcast_send_from(const std::shared_ptr<BcastState>& state,
                       std::uint32_t daemon, std::uint64_t first_step);

  sim::Simulator& sim_;
  machine::MachineConfig machine_;
  net::Network& net_;
  machine::DaemonLayout layout_;
};

/// Front-end session: chooses a launcher and exposes the fabric.
class LaunchMonSession {
 public:
  LaunchMonSession(sim::Simulator& simulator,
                   const machine::MachineConfig& machine, net::Network& network,
                   machine::DaemonLayout layout)
      : machine_(machine), fabric_(simulator, machine, network, layout) {}

  /// Launches tool daemons through the given launcher.
  void launch(rm::DaemonLauncher& launcher, const rm::LaunchRequest& request,
              rm::LaunchCallback done) {
    launcher.launch(request, std::move(done));
  }

  [[nodiscard]] BackEndFabric& fabric() { return fabric_; }
  [[nodiscard]] const machine::MachineConfig& machine() const { return machine_; }

 private:
  machine::MachineConfig machine_;
  BackEndFabric fabric_;
};

}  // namespace petastat::launchmon
