#include "tbon/topology.hpp"

#include <algorithm>
#include <cmath>

namespace petastat::tbon {

std::string TopologySpec::name() const {
  std::string n = std::to_string(depth) + "-deep";
  if (bgl_rules && depth >= 3) {
    n += "(" + std::to_string(bgl_second_level) + ")";
  }
  if (!level_widths.empty()) {
    n += "[";
    for (std::size_t i = 0; i < level_widths.size(); ++i) {
      n += (i ? "," : "") + std::to_string(level_widths[i]);
    }
    n += "]";
  }
  if (fe_shards != 1) {
    n += " x" + std::to_string(fe_shards) + "shard";
    if (reducer_placement != ReducerPlacement::kCommLike) {
      n += std::string("/") + reducer_placement_name(reducer_placement);
    }
  }
  return n;
}

std::uint64_t comm_process_capacity(const machine::MachineConfig& machine,
                                    std::uint32_t num_daemons) {
  if (machine.comm_procs_on_compute_allocation) {
    // Cluster: comm processes get their own compute allocation, one per
    // core, on whatever nodes the daemons left free.
    if (num_daemons >= machine.compute_nodes) return 0;
    return static_cast<std::uint64_t>(machine.compute_nodes - num_daemons) *
           machine.cores_per_compute_node;
  }
  return static_cast<std::uint64_t>(machine.login_nodes) *
         machine.max_comm_procs_per_login;
}

Result<DerivedLevels> derive_levels(const machine::MachineConfig& machine,
                                    const TopologySpec& spec,
                                    std::uint32_t num_daemons) {
  if (spec.depth == 0) {
    return invalid_argument("topology depth must be at least 1");
  }
  if (spec.fe_shards == 0) {
    return invalid_argument(
        "fe_shards must be at least 1 (1 = unsharded front end)");
  }
  if (num_daemons == 0) return invalid_argument("no daemons");
  // The shard machinery of a sharded front end rides in front of the spec's
  // own levels: the reducer level, topped — once K exceeds the combine
  // fan-in — by the combiner levels of the reducer tree. All of it is comm
  // processes counting against the same placement slots.
  const std::uint32_t reducers =
      spec.fe_shards > 1 ? std::min(spec.fe_shards, num_daemons) : 0;
  std::vector<std::uint32_t> shard_widths;
  if (reducers > 0) {
    const std::uint32_t fanin = std::max(
        2u, std::min(kShardCombineFanIn, machine.max_tool_connections));
    shard_widths.push_back(reducers);
    for (std::uint32_t w = reducers; w > fanin;) {
      w = (w + fanin - 1) / fanin;  // ceil: every reducer keeps a parent
      shard_widths.insert(shard_widths.begin(), w);
    }
  }
  const auto with_shard_levels = [&](std::vector<std::uint32_t> widths)
      -> Result<DerivedLevels> {
    if (reducers != 0 && !widths.empty() && widths.front() < reducers) {
      return invalid_argument(
          "fe_shards (" + std::to_string(reducers) +
          ") exceeds the first comm-process level's width (" +
          std::to_string(widths.front()) + "): reducers would own no shard");
    }
    DerivedLevels levels;
    levels.shard_levels = static_cast<std::uint32_t>(shard_widths.size());
    levels.widths = std::move(shard_widths);
    levels.widths.insert(levels.widths.end(), widths.begin(), widths.end());
    return levels;
  };
  if (!spec.level_widths.empty()) {
    if (spec.level_widths.size() != spec.depth - 1) {
      return invalid_argument("level_widths must have depth-1 entries");
    }
    std::uint64_t total = 0;
    for (const auto w : shard_widths) total += w;
    for (const auto w : spec.level_widths) {
      if (w == 0) return invalid_argument("level_widths entries must be > 0");
      total += w;
    }
    if (total > comm_process_capacity(machine, num_daemons)) {
      return invalid_argument(
          "level_widths request " + std::to_string(total) +
          " comm processes, machine has slots for " +
          std::to_string(comm_process_capacity(machine, num_daemons)));
    }
    return with_shard_levels(spec.level_widths);
  }
  std::vector<std::uint32_t> widths;
  if (spec.depth == 1) return with_shard_levels(std::move(widths));

  const auto nd = static_cast<double>(num_daemons);
  if (spec.bgl_rules) {
    if (spec.depth == 2) {
      // "fanout from the front end equal to the square root of the number of
      // daemons or 28, whichever is less"
      const auto w = static_cast<std::uint32_t>(
          std::min(std::ceil(std::sqrt(nd)), 28.0));
      widths.push_back(std::max(1u, w));
    } else if (spec.depth == 3) {
      widths.push_back(4);  // "fanout from the front end equal to 4"
      widths.push_back(spec.bgl_second_level);
    } else {
      return invalid_argument("BG/L rules defined for depth 2 or 3 only");
    }
  } else {
    // Balanced: fanout = depth-th root of the daemon count at every level.
    const double f =
        std::max(2.0, std::ceil(std::pow(nd, 1.0 / spec.depth)));
    double width = 1;
    for (std::uint32_t level = 1; level < spec.depth; ++level) {
      width = std::min(width * f, nd);
      widths.push_back(static_cast<std::uint32_t>(width));
    }
  }
  // Never more procs at a level than daemons below them.
  for (auto& w : widths) w = std::min(w, num_daemons);
  return with_shard_levels(std::move(widths));
}

Result<std::vector<std::uint32_t>> derive_level_widths(
    const machine::MachineConfig& machine, const TopologySpec& spec,
    std::uint32_t num_daemons) {
  auto levels = derive_levels(machine, spec, num_daemons);
  if (!levels.is_ok()) return levels.status();
  return std::move(levels).value().widths;
}

Result<TbonTopology> build_topology(const machine::MachineConfig& machine,
                                    const machine::DaemonLayout& layout,
                                    const TopologySpec& spec) {
  if (spec.depth < 1 || spec.depth > 4) {
    return invalid_argument("topology depth must be in [1,4]");
  }
  if (layout.num_daemons == 0) return invalid_argument("no daemons");

  auto levels_result = derive_levels(machine, spec, layout.num_daemons);
  if (!levels_result.is_ok()) return levels_result.status();
  const std::vector<std::uint32_t>& widths = levels_result.value().widths;
  const std::uint32_t shard_levels = levels_result.value().shard_levels;

  // Monotone widths: each level must be at least as wide as its parent level
  // (a narrower child level would orphan parents).
  std::uint32_t prev = 1;
  for (const auto w : widths) {
    if (w < prev) {
      return invalid_argument("comm-process level narrower than its parent");
    }
    prev = w;
  }

  // Capacity checks for comm-process hosts.
  std::uint32_t total_comm = 0;
  for (const auto w : widths) total_comm += w;
  if (!machine.comm_procs_on_compute_allocation) {
    const std::uint64_t capacity =
        comm_process_capacity(machine, layout.num_daemons);
    if (total_comm > capacity) {
      return resource_exhausted(
          "comm processes (" + std::to_string(total_comm) +
          ") exceed login-node capacity (" + std::to_string(capacity) + ")");
    }
  }

  TbonTopology topo;
  // Internal levels actually built: the spec's own, plus the synthetic
  // reducer level of a sharded front end.
  topo.depth = static_cast<std::uint32_t>(widths.size()) + 1;

  // Front end.
  TbonTopology::Proc fe;
  fe.host = machine.front_end();
  fe.parent = -1;
  fe.level = 0;
  topo.procs.push_back(fe);

  // Comm-process levels. Shard-machinery levels (combiners + reducers) come
  // first and honor spec.reducer_placement; the spec's own levels always use
  // the machine's comm-process rule. Placement counters:
  //   comm_seq     core-packing / round-robin position of packed procs,
  //   spread_nodes whole compute nodes consumed by kSpread shard procs
  //                (packed procs start after them),
  //   shard_seq    shard procs placed so far (kPack's login fill order).
  std::vector<std::uint32_t> prev_level_indices{0};
  std::uint32_t comm_seq = 0;
  std::uint32_t spread_nodes = 0;
  std::uint32_t shard_seq = 0;
  std::vector<std::uint32_t> login_load(machine.login_nodes, 0);
  std::uint32_t level_no = 1;
  for (const auto width : widths) {
    const bool shard_level = level_no <= shard_levels;
    const ReducerPlacement placement = shard_level
                                           ? spec.reducer_placement
                                           : ReducerPlacement::kCommLike;
    std::vector<std::uint32_t> this_level;
    this_level.reserve(width);
    for (std::uint32_t i = 0; i < width; ++i) {
      TbonTopology::Proc proc;
      if (machine.comm_procs_on_compute_allocation) {
        // Cluster: separate compute allocation. Packed procs take one core
        // each; spread shard procs take a whole node each.
        const std::uint32_t node_index =
            placement == ReducerPlacement::kSpread
                ? layout.num_daemons + spread_nodes
                : layout.num_daemons + spread_nodes +
                      comm_seq / machine.cores_per_compute_node;
        if (node_index >= machine.compute_nodes) {
          return resource_exhausted("comm-process allocation exceeds cluster");
        }
        proc.host = machine.compute_node(node_index);
        if (placement == ReducerPlacement::kSpread) {
          ++spread_nodes;
        } else {
          ++comm_seq;
        }
      } else {
        // Login tier. kPack fills each host's helper slots first; everything
        // else takes the least-loaded login (lowest index on ties), which is
        // exactly the historical round-robin while loads are even — they
        // always are without kPack in the mix — and skips hosts kPack has
        // already filled, so the per-host slot limit holds for every
        // placement mix, not just in aggregate.
        std::uint32_t login = 0;
        if (placement == ReducerPlacement::kPack) {
          login = shard_seq / machine.max_comm_procs_per_login;
        } else {
          for (std::uint32_t l = 1; l < machine.login_nodes; ++l) {
            if (login_load[l] < login_load[login]) login = l;
          }
        }
        proc.host = machine.login_node(login);
        ++login_load[login];
      }
      if (shard_level) ++shard_seq;
      // Parent: spread evenly over the previous level.
      const auto parent_slot = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(i) * prev_level_indices.size() / width);
      proc.parent = static_cast<std::int32_t>(prev_level_indices[parent_slot]);
      proc.level = level_no;
      const auto index = static_cast<std::uint32_t>(topo.procs.size());
      topo.procs.push_back(proc);
      topo.procs[static_cast<std::size_t>(proc.parent)].children.push_back(index);
      this_level.push_back(index);
    }
    if (shard_level) {
      if (level_no == shard_levels) {
        topo.reducers = this_level;  // the shard level proper
      } else {
        topo.combiners.insert(topo.combiners.end(), this_level.begin(),
                              this_level.end());
      }
    }
    prev_level_indices = std::move(this_level);
    ++level_no;
  }

  // Leaves: the daemons, spread evenly over the last internal level.
  topo.leaf_of_daemon.resize(layout.num_daemons);
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    TbonTopology::Proc leaf;
    leaf.host = machine::daemon_host(machine, DaemonId(d));
    leaf.daemon = DaemonId(d);
    leaf.level = level_no;
    const auto parent_slot = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(d) * prev_level_indices.size() /
        layout.num_daemons);
    leaf.parent = static_cast<std::int32_t>(prev_level_indices[parent_slot]);
    const auto index = static_cast<std::uint32_t>(topo.procs.size());
    topo.procs.push_back(leaf);
    topo.procs[static_cast<std::size_t>(leaf.parent)].children.push_back(index);
    topo.leaf_of_daemon[d] = index;
  }
  return topo;
}

namespace {

/// Children of `proc_index` that actually hold a connection: a leaf whose
/// daemon died before connecting (or was culled by failure injection) never
/// dials in, so it must not count against the parent's limit.
std::uint32_t live_children(const TbonTopology& topology,
                            std::uint32_t proc_index,
                            const std::vector<bool>& daemon_dead) {
  const TbonTopology::Proc& proc = topology.procs[proc_index];
  if (daemon_dead.empty()) {
    return static_cast<std::uint32_t>(proc.children.size());
  }
  std::uint32_t live = 0;
  for (const std::uint32_t c : topology.procs[proc_index].children) {
    const TbonTopology::Proc& child = topology.procs[c];
    if (child.is_leaf() && daemon_dead[child.daemon.value()]) continue;
    ++live;
  }
  return live;
}

}  // namespace

Status connection_viability(const TbonTopology& topology,
                            std::uint32_t limit) {
  return connection_viability(topology, limit, {});
}

Status connection_viability(const TbonTopology& topology, std::uint32_t limit,
                            const std::vector<bool>& daemon_dead) {
  const std::uint32_t fe_children = live_children(topology, 0, daemon_dead);
  if (fe_children > limit) {
    return resource_exhausted(
        "front end cannot sustain " + std::to_string(fe_children) +
        " tool connections (limit " + std::to_string(limit) + ")");
  }
  for (const std::uint32_t c : topology.combiners) {
    const std::uint32_t children = live_children(topology, c, daemon_dead);
    if (children > limit) {
      return resource_exhausted(
          "combiner cannot sustain " + std::to_string(children) +
          " shard connections (limit " + std::to_string(limit) + ")");
    }
  }
  for (const std::uint32_t r : topology.reducers) {
    const std::uint32_t children = live_children(topology, r, daemon_dead);
    if (children > limit) {
      return resource_exhausted(
          "reducer cannot sustain " + std::to_string(children) +
          " shard connections (limit " + std::to_string(limit) +
          "); raise fe_shards");
    }
  }
  return Status::ok();
}

std::uint32_t shard_spawn_hosts(const TbonTopology& topology) {
  std::vector<NodeId> hosts;
  hosts.reserve(topology.reducers.size() + topology.combiners.size());
  for (const std::uint32_t r : topology.reducers) {
    hosts.push_back(topology.procs[r].host);
  }
  for (const std::uint32_t c : topology.combiners) {
    hosts.push_back(topology.procs[c].host);
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  return static_cast<std::uint32_t>(hosts.size());
}

namespace {

std::uint64_t tasks_under(const TbonTopology& topology,
                          const machine::DaemonLayout& layout,
                          std::uint32_t proc_index,
                          const std::vector<bool>& daemon_dead) {
  const TbonTopology::Proc& proc = topology.procs[proc_index];
  if (proc.is_leaf()) {
    if (!daemon_dead.empty() && daemon_dead[proc.daemon.value()]) return 0;
    return layout.tasks_of(proc.daemon);
  }
  std::uint64_t total = 0;
  for (const std::uint32_t c : proc.children) {
    total += tasks_under(topology, layout, c, daemon_dead);
  }
  return total;
}

}  // namespace

std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout) {
  return shard_task_counts(topology, layout, {});
}

std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout,
    const std::vector<bool>& daemon_dead) {
  std::vector<std::uint64_t> counts;
  counts.reserve(topology.reducers.size());
  for (const std::uint32_t r : topology.reducers) {
    counts.push_back(tasks_under(topology, layout, r, daemon_dead));
  }
  return counts;
}

std::uint64_t largest_shard_task_count(const TbonTopology& topology,
                                       const machine::DaemonLayout& layout) {
  return largest_shard_task_count(topology, layout, {});
}

std::uint64_t largest_shard_task_count(const TbonTopology& topology,
                                       const machine::DaemonLayout& layout,
                                       const std::vector<bool>& daemon_dead) {
  std::uint64_t largest = 0;
  for (const std::uint32_t r : topology.reducers) {
    largest = std::max(largest, tasks_under(topology, layout, r, daemon_dead));
  }
  return largest;
}

SimTime connect_time(const TbonTopology& topology,
                     const machine::LaunchCosts& costs) {
  // Parents accept children serially; parents within one level overlap, and
  // levels connect sequentially (a comm process must be up before its
  // children dial in). The per-level cost is the busiest parent's fanout.
  std::vector<std::uint32_t> worst_fanout_at_level;
  for (const auto& proc : topology.procs) {
    if (proc.children.empty()) continue;
    if (worst_fanout_at_level.size() <= proc.level) {
      worst_fanout_at_level.resize(proc.level + 1, 0);
    }
    worst_fanout_at_level[proc.level] =
        std::max(worst_fanout_at_level[proc.level],
                 static_cast<std::uint32_t>(proc.children.size()));
  }
  SimTime total = costs.mrnet_connect_base;
  for (const auto fanout : worst_fanout_at_level) {
    total += fanout * costs.mrnet_connect_per_child;
  }
  return total;
}

std::uint32_t default_victim(const TbonTopology& topology) {
  if (topology.sharded()) {
    return topology.reducers[topology.reducers.size() / 2];
  }
  std::vector<std::uint32_t> internals;
  for (std::uint32_t i = 1; i < topology.procs.size(); ++i) {
    if (!topology.procs[i].is_leaf()) internals.push_back(i);
  }
  if (!internals.empty()) return internals[internals.size() / 2];
  return topology.leaf_of_daemon[topology.leaf_of_daemon.size() / 2];
}

}  // namespace petastat::tbon
