#include "tbon/topology.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "net/network.hpp"

namespace petastat::tbon {

std::string TopologySpec::name() const {
  std::string n = std::to_string(depth) + "-deep";
  if (bgl_rules && depth >= 3) {
    n += "(" + std::to_string(bgl_second_level) + ")";
  }
  if (!level_widths.empty()) {
    n += "[";
    for (std::size_t i = 0; i < level_widths.size(); ++i) {
      n += (i ? "," : "") + std::to_string(level_widths[i]);
    }
    n += "]";
  }
  if (fe_shards != 1) {
    n += " x" + std::to_string(fe_shards) + "shard";
    if (reducer_placement != ReducerPlacement::kCommLike) {
      n += std::string("/") + reducer_placement_name(reducer_placement);
    }
  }
  return n;
}

std::uint64_t comm_process_capacity(const machine::MachineConfig& machine,
                                    std::uint32_t num_daemons) {
  if (machine.comm_procs_on_compute_allocation) {
    // Cluster: comm processes get their own compute allocation, one per
    // core, on whatever nodes the daemons left free.
    if (num_daemons >= machine.compute_nodes) return 0;
    return static_cast<std::uint64_t>(machine.compute_nodes - num_daemons) *
           machine.cores_per_compute_node;
  }
  return static_cast<std::uint64_t>(machine.login_nodes) *
         machine.max_comm_procs_per_login;
}

Result<DerivedLevels> derive_levels(const machine::MachineConfig& machine,
                                    const TopologySpec& spec,
                                    std::uint32_t num_daemons) {
  if (spec.depth == 0) {
    return invalid_argument("topology depth must be at least 1");
  }
  if (spec.fe_shards == 0) {
    return invalid_argument(
        "fe_shards must be at least 1 (1 = unsharded front end)");
  }
  if (num_daemons == 0) return invalid_argument("no daemons");
  // The shard machinery of a sharded front end rides in front of the spec's
  // own levels: the reducer level, topped — once K exceeds the combine
  // fan-in — by the combiner levels of the reducer tree. All of it is comm
  // processes counting against the same placement slots.
  const std::uint32_t reducers =
      spec.fe_shards > 1 ? std::min(spec.fe_shards, num_daemons) : 0;
  std::vector<std::uint32_t> shard_widths;
  if (reducers > 0) {
    const std::uint32_t fanin = std::max(
        2u, std::min(kShardCombineFanIn, machine.max_tool_connections));
    shard_widths.push_back(reducers);
    for (std::uint32_t w = reducers; w > fanin;) {
      w = (w + fanin - 1) / fanin;  // ceil: every reducer keeps a parent
      shard_widths.insert(shard_widths.begin(), w);
    }
  }
  const auto with_shard_levels = [&](std::vector<std::uint32_t> widths)
      -> Result<DerivedLevels> {
    if (reducers != 0 && !widths.empty() && widths.front() < reducers) {
      return invalid_argument(
          "fe_shards (" + std::to_string(reducers) +
          ") exceeds the first comm-process level's width (" +
          std::to_string(widths.front()) + "): reducers would own no shard");
    }
    DerivedLevels levels;
    levels.shard_levels = static_cast<std::uint32_t>(shard_widths.size());
    levels.widths = std::move(shard_widths);
    levels.widths.insert(levels.widths.end(), widths.begin(), widths.end());
    return levels;
  };
  if (!spec.level_widths.empty()) {
    if (spec.level_widths.size() != spec.depth - 1) {
      return invalid_argument("level_widths must have depth-1 entries");
    }
    std::uint64_t total = 0;
    for (const auto w : shard_widths) total += w;
    for (const auto w : spec.level_widths) {
      if (w == 0) return invalid_argument("level_widths entries must be > 0");
      total += w;
    }
    if (total > comm_process_capacity(machine, num_daemons)) {
      return invalid_argument(
          "level_widths request " + std::to_string(total) +
          " comm processes, machine has slots for " +
          std::to_string(comm_process_capacity(machine, num_daemons)));
    }
    return with_shard_levels(spec.level_widths);
  }
  std::vector<std::uint32_t> widths;
  if (spec.depth == 1) return with_shard_levels(std::move(widths));

  const auto nd = static_cast<double>(num_daemons);
  if (spec.bgl_rules) {
    if (spec.depth == 2) {
      // "fanout from the front end equal to the square root of the number of
      // daemons or 28, whichever is less"
      const auto w = static_cast<std::uint32_t>(
          std::min(std::ceil(std::sqrt(nd)), 28.0));
      widths.push_back(std::max(1u, w));
    } else if (spec.depth == 3) {
      widths.push_back(4);  // "fanout from the front end equal to 4"
      widths.push_back(spec.bgl_second_level);
    } else {
      return invalid_argument("BG/L rules defined for depth 2 or 3 only");
    }
  } else {
    // Balanced: fanout = depth-th root of the daemon count at every level.
    const double f =
        std::max(2.0, std::ceil(std::pow(nd, 1.0 / spec.depth)));
    double width = 1;
    for (std::uint32_t level = 1; level < spec.depth; ++level) {
      width = std::min(width * f, nd);
      widths.push_back(static_cast<std::uint32_t>(width));
    }
  }
  // Never more procs at a level than daemons below them.
  for (auto& w : widths) w = std::min(w, num_daemons);
  return with_shard_levels(std::move(widths));
}

Result<std::vector<std::uint32_t>> derive_level_widths(
    const machine::MachineConfig& machine, const TopologySpec& spec,
    std::uint32_t num_daemons) {
  auto levels = derive_levels(machine, spec, num_daemons);
  if (!levels.is_ok()) return levels.status();
  return std::move(levels).value().widths;
}

namespace {

/// Lazily-built state for ReducerPlacement::kRoute: the machine's switch
/// graph plus the occupancy-weighted load every placed route-proc has
/// charged to the link devices its payloads traverse. Each crossing charges
/// 1/rate — the wire time a unit payload occupies that link — so a hop on a
/// fat aggregated trunk costs a fraction of one on a thin access or
/// oversubscribed uplink, matching how Network::transfer now bills devices.
/// The greedy score of a candidate host is the max weighted load any of
/// those links would reach — minimizing it spreads helpers across leaf
/// switches and steers each one toward the aggregation domain its
/// children's payloads already live in.
struct RoutePlacementState {
  net::SwitchGraph graph;
  std::unordered_map<std::uint64_t, double> link_load;

  explicit RoutePlacementState(const machine::MachineConfig& machine)
      : graph(net::build_switch_graph(machine)) {}

  /// Only candidate-dependent devices count: the trunks a route crosses and
  /// the candidate host's own access link. The far endpoint's access link
  /// (the shared parent's, a fixed daemon's) carries the same load whichever
  /// candidate wins, so scoring it saturates every candidate at that shared
  /// load — degenerating the greedy into lowest-index (pack) fill.
  [[nodiscard]] static bool scores(const net::RouteHop& hop,
                                   std::uint64_t own_access) {
    return hop.device < net::SwitchGraph::kAccessDeviceBase ||
           hop.device == own_access;
  }

  /// Wire time a unit payload occupies this hop, in GB-seconds: the metric
  /// the busiest-link report uses, scaled to dodge denormal territory.
  [[nodiscard]] static double weight(const net::RouteHop& hop) {
    return 1.0e9 / hop.link.bytes_per_sec;
  }

  /// Weighted link load *after* placing the proc here, as a lexicographic
  /// (max, sum) pair over the devices this candidate touches: existing load
  /// plus every route of this proc that crosses the link. The max is the
  /// objective proper; the sum breaks the ties that arise once one shared
  /// trunk (every candidate's route to the same parent crosses it) holds
  /// the global max — without it the greedy cannot tell a fresh login from
  /// a loaded one and degenerates into lowest-index fill. A one-crossing
  /// lookahead would let a candidate that funnels all its children over one
  /// trunk tie with one that adds a single crossing — the whole
  /// contribution must count.
  [[nodiscard]] std::pair<double, double> score(
      const std::vector<net::Route>& routes, std::uint64_t own_access) const {
    std::unordered_map<std::uint64_t, double> contribution;
    for (const auto& route : routes) {
      for (const auto& hop : route) {
        if (scores(hop, own_access)) contribution[hop.device] += weight(hop);
      }
    }
    double worst = 0.0;
    double total = 0.0;
    for (const auto& [device, added] : contribution) {
      const auto it = link_load.find(device);
      const double load = it == link_load.end() ? 0.0 : it->second;
      worst = std::max(worst, load + added);
      total += load + added;
    }
    return {worst, total};
  }

  /// Charging records *every* hop, including the far endpoints' access
  /// links the score skips: a parent's rx load is candidate-invariant while
  /// scoring, but it is real wire time that must repel later procs whose
  /// own access would be that same device.
  void charge(const std::vector<net::Route>& routes) {
    for (const auto& route : routes) {
      for (const auto& hop : route) link_load[hop.device] += weight(hop);
    }
  }

  /// The routes a proc on `host` will load: up to its parent, plus down from
  /// each already-known child (the leaf daemons, when the proc sits on the
  /// last internal level). Children on inner levels are placed later, so
  /// they cannot be priced yet.
  [[nodiscard]] std::vector<net::Route> routes_for(
      NodeId host, NodeId parent_host,
      const std::vector<NodeId>& child_hosts) const {
    std::vector<net::Route> routes;
    routes.reserve(child_hosts.size() + 1);
    routes.push_back(net::route_between(graph, host, parent_host));
    for (const NodeId child : child_hosts) {
      routes.push_back(net::route_between(graph, child, host));
    }
    return routes;
  }
};

}  // namespace

Result<TbonTopology> build_topology(const machine::MachineConfig& machine,
                                    const machine::DaemonLayout& layout,
                                    const TopologySpec& spec) {
  if (spec.depth < 1 || spec.depth > 4) {
    return invalid_argument("topology depth must be in [1,4]");
  }
  if (layout.num_daemons == 0) return invalid_argument("no daemons");

  auto levels_result = derive_levels(machine, spec, layout.num_daemons);
  if (!levels_result.is_ok()) return levels_result.status();
  const std::vector<std::uint32_t>& widths = levels_result.value().widths;
  const std::uint32_t shard_levels = levels_result.value().shard_levels;

  // Monotone widths: each level must be at least as wide as its parent level
  // (a narrower child level would orphan parents).
  std::uint32_t prev = 1;
  for (const auto w : widths) {
    if (w < prev) {
      return invalid_argument("comm-process level narrower than its parent");
    }
    prev = w;
  }

  // Capacity checks for comm-process hosts.
  std::uint32_t total_comm = 0;
  for (const auto w : widths) total_comm += w;
  if (!machine.comm_procs_on_compute_allocation) {
    const std::uint64_t capacity =
        comm_process_capacity(machine, layout.num_daemons);
    if (total_comm > capacity) {
      return resource_exhausted(
          "comm processes (" + std::to_string(total_comm) +
          ") exceed login-node capacity (" + std::to_string(capacity) + ")");
    }
  }

  TbonTopology topo;
  // Internal levels actually built: the spec's own, plus the synthetic
  // reducer level of a sharded front end.
  topo.depth = static_cast<std::uint32_t>(widths.size()) + 1;

  // Front end.
  TbonTopology::Proc fe;
  fe.host = machine.front_end();
  fe.parent = -1;
  fe.level = 0;
  topo.procs.push_back(fe);

  // Comm-process levels. Shard-machinery levels (combiners + reducers) come
  // first and honor spec.reducer_placement; the spec's own levels always use
  // the machine's comm-process rule. Placement counters:
  //   comm_seq       core-packing / round-robin position of packed procs,
  //   consumed_nodes whole compute nodes taken by kSpread/kRoute shard procs
  //                  (packed procs fill the free nodes around them),
  //   shard_seq      shard procs placed so far (kPack's login fill order).
  std::vector<std::uint32_t> prev_level_indices{0};
  std::uint32_t comm_seq = 0;
  std::set<std::uint32_t> consumed_nodes;
  std::uint32_t shard_seq = 0;
  std::vector<std::uint32_t> login_load(machine.login_nodes, 0);
  std::optional<RoutePlacementState> route_state;
  const auto route_placement = [&]() -> RoutePlacementState& {
    if (!route_state) route_state.emplace(machine);
    return *route_state;
  };
  // The n-th compute node (ascending) past the daemon block that no
  // whole-node proc holds. With no kRoute procs the consumed set is the
  // contiguous run right after the daemons, so this reduces exactly to the
  // historical `num_daemons + spread_nodes + n` arithmetic.
  const auto nth_free_node = [&](std::uint32_t n) -> std::uint32_t {
    for (std::uint32_t node = layout.num_daemons; node < machine.compute_nodes;
         ++node) {
      if (consumed_nodes.count(node) != 0) continue;
      if (n == 0) return node;
      --n;
    }
    return machine.compute_nodes;  // exhausted; caller reports
  };
  std::uint32_t level_no = 1;
  for (const auto width : widths) {
    const bool shard_level = level_no <= shard_levels;
    const ReducerPlacement placement = shard_level
                                           ? spec.reducer_placement
                                           : ReducerPlacement::kCommLike;
    const bool last_internal_level =
        level_no == static_cast<std::uint32_t>(widths.size());
    std::vector<std::uint32_t> this_level;
    this_level.reserve(width);
    for (std::uint32_t i = 0; i < width; ++i) {
      TbonTopology::Proc proc;
      // Parent: spread evenly over the previous level. Resolved before
      // placement so route scoring can price the uplink toward it.
      const auto parent_slot = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(i) * prev_level_indices.size() / width);
      const std::uint32_t parent_index = prev_level_indices[parent_slot];
      const NodeId parent_host = topo.procs[parent_index].host;
      // The leaf daemons that will hang off slot i of the last internal
      // level — the only children whose hosts are known before they are
      // placed, and the bulk of the traffic route placement should steer.
      std::vector<NodeId> child_hosts;
      if (placement == ReducerPlacement::kRoute && last_internal_level) {
        const std::uint64_t daemons = layout.num_daemons;
        for (std::uint64_t d = (i * daemons + width - 1) / width;
             d < daemons && d * width / daemons == i; ++d) {
          child_hosts.push_back(machine::daemon_host(
              machine, DaemonId(static_cast<std::uint32_t>(d))));
        }
      }
      if (machine.comm_procs_on_compute_allocation) {
        // Cluster: separate compute allocation. Packed procs take one core
        // each; spread and route shard procs take a whole node each — route
        // picks its node by link load, so consumed nodes need not be
        // contiguous.
        std::uint32_t node_index;
        if (placement == ReducerPlacement::kSpread) {
          node_index = nth_free_node(0);
        } else if (placement == ReducerPlacement::kRoute) {
          RoutePlacementState& rs = route_placement();
          // One candidate per leaf switch suffices: free nodes behind the
          // same switch share a route shape, and the lowest index wins ties.
          std::vector<std::uint32_t> first_free(
              rs.graph.num_switches(), machine.compute_nodes);
          for (std::uint32_t node = layout.num_daemons;
               node < machine.compute_nodes; ++node) {
            if (consumed_nodes.count(node) != 0) continue;
            const std::uint32_t s =
                rs.graph.switch_of(machine.compute_node(node));
            if (first_free[s] == machine.compute_nodes) first_free[s] = node;
          }
          std::vector<std::uint32_t> candidates;
          for (const std::uint32_t node : first_free) {
            if (node < machine.compute_nodes) candidates.push_back(node);
          }
          std::sort(candidates.begin(), candidates.end());
          node_index = machine.compute_nodes;
          std::pair<double, double> best_score{
              std::numeric_limits<double>::infinity(), 0.0};
          std::vector<net::Route> best_routes;
          for (const std::uint32_t node : candidates) {
            const NodeId host = machine.compute_node(node);
            const std::uint64_t access = net::SwitchGraph::access_device(host);
            std::vector<net::Route> routes =
                rs.routes_for(host, parent_host, child_hosts);
            const std::pair<double, double> score = rs.score(routes, access);
            if (score < best_score) {
              best_score = score;
              node_index = node;
              best_routes = std::move(routes);
            }
          }
          if (node_index < machine.compute_nodes) {
            rs.charge(best_routes);
          }
        } else {
          node_index = nth_free_node(comm_seq / machine.cores_per_compute_node);
        }
        if (node_index >= machine.compute_nodes) {
          return resource_exhausted("comm-process allocation exceeds cluster");
        }
        proc.host = machine.compute_node(node_index);
        if (placement == ReducerPlacement::kSpread ||
            placement == ReducerPlacement::kRoute) {
          consumed_nodes.insert(node_index);
        } else {
          ++comm_seq;
        }
      } else {
        // Login tier. kPack fills each host's helper slots first; everything
        // else takes the least-loaded login (lowest index on ties), which is
        // exactly the historical round-robin while loads are even — they
        // always are without kPack in the mix — and skips hosts kPack has
        // already filled, so the per-host slot limit holds for every
        // placement mix, not just in aggregate.
        std::uint32_t login = 0;
        if (placement == ReducerPlacement::kPack) {
          login = shard_seq / machine.max_comm_procs_per_login;
        } else if (placement == ReducerPlacement::kRoute) {
          // Least-max-link-load login with a free helper slot. The earlier
          // capacity check guarantees a free slot exists at every step.
          RoutePlacementState& rs = route_placement();
          bool found = false;
          std::pair<double, double> best_score{
              std::numeric_limits<double>::infinity(), 0.0};
          std::vector<net::Route> best_routes;
          for (std::uint32_t l = 0; l < machine.login_nodes; ++l) {
            if (login_load[l] >= machine.max_comm_procs_per_login) continue;
            const NodeId host = machine.login_node(l);
            const std::uint64_t access = net::SwitchGraph::access_device(host);
            std::vector<net::Route> routes =
                rs.routes_for(host, parent_host, child_hosts);
            const std::pair<double, double> score = rs.score(routes, access);
            if (score < best_score) {
              best_score = score;
              login = l;
              found = true;
              best_routes = std::move(routes);
            }
          }
          if (!found) {
            // Unreachable after the capacity check; degrade to least-loaded.
            for (std::uint32_t l = 1; l < machine.login_nodes; ++l) {
              if (login_load[l] < login_load[login]) login = l;
            }
          } else {
            rs.charge(best_routes);
          }
        } else {
          for (std::uint32_t l = 1; l < machine.login_nodes; ++l) {
            if (login_load[l] < login_load[login]) login = l;
          }
        }
        proc.host = machine.login_node(login);
        ++login_load[login];
      }
      if (shard_level) ++shard_seq;
      proc.parent = static_cast<std::int32_t>(parent_index);
      proc.level = level_no;
      const auto index = static_cast<std::uint32_t>(topo.procs.size());
      topo.procs.push_back(proc);
      topo.procs[static_cast<std::size_t>(proc.parent)].children.push_back(index);
      this_level.push_back(index);
    }
    if (shard_level) {
      if (level_no == shard_levels) {
        topo.reducers = this_level;  // the shard level proper
      } else {
        topo.combiners.insert(topo.combiners.end(), this_level.begin(),
                              this_level.end());
      }
    }
    prev_level_indices = std::move(this_level);
    ++level_no;
  }

  // Leaves: the daemons, spread evenly over the last internal level.
  topo.leaf_of_daemon.resize(layout.num_daemons);
  for (std::uint32_t d = 0; d < layout.num_daemons; ++d) {
    TbonTopology::Proc leaf;
    leaf.host = machine::daemon_host(machine, DaemonId(d));
    leaf.daemon = DaemonId(d);
    leaf.level = level_no;
    const auto parent_slot = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(d) * prev_level_indices.size() /
        layout.num_daemons);
    leaf.parent = static_cast<std::int32_t>(prev_level_indices[parent_slot]);
    const auto index = static_cast<std::uint32_t>(topo.procs.size());
    topo.procs.push_back(leaf);
    topo.procs[static_cast<std::size_t>(leaf.parent)].children.push_back(index);
    topo.leaf_of_daemon[d] = index;
  }
  return topo;
}

namespace {

/// Children of `proc_index` that actually hold a connection: a leaf whose
/// daemon died before connecting (or was culled by failure injection) never
/// dials in, so it must not count against the parent's limit.
std::uint32_t live_children(const TbonTopology& topology,
                            std::uint32_t proc_index,
                            const std::vector<bool>& daemon_dead) {
  const TbonTopology::Proc& proc = topology.procs[proc_index];
  if (daemon_dead.empty()) {
    return static_cast<std::uint32_t>(proc.children.size());
  }
  std::uint32_t live = 0;
  for (const std::uint32_t c : topology.procs[proc_index].children) {
    const TbonTopology::Proc& child = topology.procs[c];
    if (child.is_leaf() && daemon_dead[child.daemon.value()]) continue;
    ++live;
  }
  return live;
}

}  // namespace

Status connection_viability(const TbonTopology& topology,
                            std::uint32_t limit) {
  return connection_viability(topology, limit, {});
}

Status connection_viability(const TbonTopology& topology, std::uint32_t limit,
                            const std::vector<bool>& daemon_dead) {
  const std::uint32_t fe_children = live_children(topology, 0, daemon_dead);
  if (fe_children > limit) {
    return resource_exhausted(
        "front end cannot sustain " + std::to_string(fe_children) +
        " tool connections (limit " + std::to_string(limit) + ")");
  }
  for (const std::uint32_t c : topology.combiners) {
    const std::uint32_t children = live_children(topology, c, daemon_dead);
    if (children > limit) {
      return resource_exhausted(
          "combiner cannot sustain " + std::to_string(children) +
          " shard connections (limit " + std::to_string(limit) + ")");
    }
  }
  for (const std::uint32_t r : topology.reducers) {
    const std::uint32_t children = live_children(topology, r, daemon_dead);
    if (children > limit) {
      return resource_exhausted(
          "reducer cannot sustain " + std::to_string(children) +
          " shard connections (limit " + std::to_string(limit) +
          "); raise fe_shards");
    }
  }
  return Status::ok();
}

std::uint32_t shard_spawn_hosts(const TbonTopology& topology) {
  std::vector<NodeId> hosts;
  hosts.reserve(topology.reducers.size() + topology.combiners.size());
  for (const std::uint32_t r : topology.reducers) {
    hosts.push_back(topology.procs[r].host);
  }
  for (const std::uint32_t c : topology.combiners) {
    hosts.push_back(topology.procs[c].host);
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  return static_cast<std::uint32_t>(hosts.size());
}

namespace {

std::uint64_t tasks_under(const TbonTopology& topology,
                          const machine::DaemonLayout& layout,
                          std::uint32_t proc_index,
                          const std::vector<bool>& daemon_dead) {
  const TbonTopology::Proc& proc = topology.procs[proc_index];
  if (proc.is_leaf()) {
    if (!daemon_dead.empty() && daemon_dead[proc.daemon.value()]) return 0;
    return layout.tasks_of(proc.daemon);
  }
  std::uint64_t total = 0;
  for (const std::uint32_t c : proc.children) {
    total += tasks_under(topology, layout, c, daemon_dead);
  }
  return total;
}

}  // namespace

std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout) {
  return shard_task_counts(topology, layout, {});
}

std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout,
    const std::vector<bool>& daemon_dead) {
  std::vector<std::uint64_t> counts;
  counts.reserve(topology.reducers.size());
  for (const std::uint32_t r : topology.reducers) {
    counts.push_back(tasks_under(topology, layout, r, daemon_dead));
  }
  return counts;
}

std::uint64_t largest_shard_task_count(const TbonTopology& topology,
                                       const machine::DaemonLayout& layout) {
  return largest_shard_task_count(topology, layout, {});
}

std::uint64_t largest_shard_task_count(const TbonTopology& topology,
                                       const machine::DaemonLayout& layout,
                                       const std::vector<bool>& daemon_dead) {
  std::uint64_t largest = 0;
  for (const std::uint32_t r : topology.reducers) {
    largest = std::max(largest, tasks_under(topology, layout, r, daemon_dead));
  }
  return largest;
}

SimTime connect_time(const TbonTopology& topology,
                     const machine::LaunchCosts& costs) {
  // Parents accept children serially; parents within one level overlap, and
  // levels connect sequentially (a comm process must be up before its
  // children dial in). The per-level cost is the busiest parent's fanout.
  std::vector<std::uint32_t> worst_fanout_at_level;
  for (const auto& proc : topology.procs) {
    if (proc.children.empty()) continue;
    if (worst_fanout_at_level.size() <= proc.level) {
      worst_fanout_at_level.resize(proc.level + 1, 0);
    }
    worst_fanout_at_level[proc.level] =
        std::max(worst_fanout_at_level[proc.level],
                 static_cast<std::uint32_t>(proc.children.size()));
  }
  SimTime total = costs.mrnet_connect_base;
  for (const auto fanout : worst_fanout_at_level) {
    total += fanout * costs.mrnet_connect_per_child;
  }
  return total;
}

std::uint32_t default_victim(const TbonTopology& topology) {
  if (topology.sharded()) {
    return topology.reducers[topology.reducers.size() / 2];
  }
  std::vector<std::uint32_t> internals;
  for (std::uint32_t i = 1; i < topology.procs.size(); ++i) {
    if (!topology.procs[i].is_leaf()) internals.push_back(i);
  }
  if (!internals.empty()) return internals[internals.size() / 2];
  return topology.leaf_of_daemon[topology.leaf_of_daemon.size() / 2];
}

}  // namespace petastat::tbon
