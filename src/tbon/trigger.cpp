#include "tbon/trigger.hpp"

#include <utility>

namespace petastat::tbon {

TriggerManager::~TriggerManager() {
  EventNode* node = head_.exchange(nullptr, std::memory_order_acquire);
  while (node != nullptr) {
    EventNode* next = node->next;
    delete node;
    node = next;
  }
}

void TriggerManager::register_action(Action action) {
  actions_.push_back(std::move(action));
}

void TriggerManager::post(const FailureEvent& event) {
  auto* node = new EventNode{event, nullptr};
  EventNode* expected = head_.load(std::memory_order_relaxed);
  do {
    node->next = expected;
  } while (!head_.compare_exchange_weak(expected, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed));
  posted_.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t TriggerManager::dispatch() {
  EventNode* batch = head_.exchange(nullptr, std::memory_order_acquire);
  // The detached batch is newest-first; reverse back to post order.
  EventNode* fifo = nullptr;
  while (batch != nullptr) {
    EventNode* next = batch->next;
    batch->next = fifo;
    fifo = batch;
    batch = next;
  }
  std::uint32_t count = 0;
  while (fifo != nullptr) {
    for (const Action& action : actions_) action(fifo->event);
    EventNode* next = fifo->next;
    delete fifo;
    fifo = next;
    ++count;
  }
  dispatched_ += count;
  return count;
}

}  // namespace petastat::tbon
