#include "tbon/reduction.hpp"

#include <memory>

namespace petastat::tbon {

namespace {

struct McastState {
  std::uint32_t remaining_leaves = 0;
  std::function<void(SimTime)> done;
};

void fan_out(sim::Simulator& simulator, net::Network& network,
             const TbonTopology& topology, std::uint64_t bytes,
             std::uint32_t proc_index, const std::shared_ptr<McastState>& state) {
  const auto& proc = topology.procs[proc_index];
  if (proc.is_leaf()) {
    if (--state->remaining_leaves == 0 && state->done) {
      state->done(simulator.now());
    }
    return;
  }
  for (const std::uint32_t child : proc.children) {
    network.transfer_async(proc.host, topology.procs[child].host, bytes,
                           [&simulator, &network, &topology, bytes, child,
                            state]() {
                             fan_out(simulator, network, topology, bytes, child,
                                     state);
                           });
  }
}

}  // namespace

void multicast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology, std::uint64_t bytes,
               std::function<void(SimTime)> done) {
  auto state = std::make_shared<McastState>();
  // Count leaf *procs*, not daemons: a leaf serving several daemons appears
  // once in the fan-out but several times in leaf_of_daemon, and the
  // completion callback would wait for decrements that never come.
  for (const auto& proc : topology.procs) {
    if (proc.is_leaf()) ++state->remaining_leaves;
  }
  state->done = std::move(done);
  if (state->remaining_leaves == 0) {
    simulator.schedule_in(
        0, [state, &simulator]() { state->done(simulator.now()); });
    return;
  }
  fan_out(simulator, network, topology, bytes, 0, state);
}

}  // namespace petastat::tbon
