#include "tbon/multicast.hpp"

#include <memory>

#include "tbon/reduction.hpp"

namespace petastat::tbon {

// ---------------------------------------------------------------------------
// Envelopes

void SampleRequest::encode(ByteSink& sink) const {
  put_wire_version(sink);
  sink.put_u32(cursor);
  sink.put_u32(count);
  sink.put_u64(static_cast<std::uint64_t>(interval));
}

Result<SampleRequest> SampleRequest::decode(ByteSource& source) {
  if (auto s = check_wire_version(source); !s.is_ok()) return s;
  SampleRequest request;
  if (auto s = source.get_u32(request.cursor); !s.is_ok()) return s;
  if (auto s = source.get_u32(request.count); !s.is_ok()) return s;
  std::uint64_t interval = 0;
  if (auto s = source.get_u64(interval); !s.is_ok()) return s;
  request.interval = static_cast<SimTime>(interval);
  if (request.count == 0) {
    return invalid_argument("SampleRequest with zero samples");
  }
  return request;
}

void DeltaHeader::encode(ByteSink& sink) const {
  put_wire_version(sink);
  sink.put_u32(cursor);
  sink.put_u8(changed ? 1 : 0);
  sink.put_u64(signature);
}

Result<DeltaHeader> DeltaHeader::decode(ByteSource& source) {
  if (auto s = check_wire_version(source); !s.is_ok()) return s;
  DeltaHeader header;
  if (auto s = source.get_u32(header.cursor); !s.is_ok()) return s;
  std::uint8_t changed = 0;
  if (auto s = source.get_u8(changed); !s.is_ok()) return s;
  if (changed > 1) return invalid_argument("DeltaHeader changed flag corrupt");
  header.changed = changed == 1;
  if (auto s = source.get_u64(header.signature); !s.is_ok()) return s;
  return header;
}

// ---------------------------------------------------------------------------
// Fan-out

namespace {

struct FanOutState {
  std::uint32_t remaining_leaves = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimTime per_proc_cpu = 0;
  std::function<void(std::uint32_t, SimTime)> on_leaf;
  std::function<void(BroadcastReport)> done;
};

void fan_out(sim::Simulator& simulator, net::Network& network,
             const TbonTopology& topology, std::uint64_t bytes,
             std::uint32_t proc_index,
             const std::shared_ptr<FanOutState>& state) {
  // The proc decodes the envelope before acting on it.
  const SimTime armed_at = simulator.now() + state->per_proc_cpu;
  const auto& proc = topology.procs[proc_index];
  if (proc.is_leaf()) {
    const auto finish = [&simulator, proc_index, state, armed_at]() {
      if (state->on_leaf) state->on_leaf(proc_index, armed_at);
      if (--state->remaining_leaves == 0 && state->done) {
        state->done(BroadcastReport{simulator.now(), state->messages,
                                    state->bytes});
      }
    };
    if (state->per_proc_cpu == 0) {
      finish();
    } else {
      simulator.schedule_at(armed_at, finish);
    }
    return;
  }
  const auto forward = [&simulator, &network, &topology, bytes, state,
                        &proc]() {
    for (const std::uint32_t child : proc.children) {
      ++state->messages;
      state->bytes += bytes;
      network.transfer_async(proc.host, topology.procs[child].host, bytes,
                             [&simulator, &network, &topology, bytes, child,
                              state]() {
                               fan_out(simulator, network, topology, bytes,
                                       child, state);
                             });
    }
  };
  if (state->per_proc_cpu == 0) {
    forward();
  } else {
    simulator.schedule_at(armed_at, forward);
  }
}

void start_fan_out(sim::Simulator& simulator, net::Network& network,
                   const TbonTopology& topology, std::uint64_t bytes,
                   const std::shared_ptr<FanOutState>& state) {
  // Count leaf *procs*, not daemons: a leaf serving several daemons appears
  // once in the fan-out but several times in leaf_of_daemon, and the
  // completion callback would wait for decrements that never come.
  for (const auto& proc : topology.procs) {
    if (proc.is_leaf()) ++state->remaining_leaves;
  }
  if (state->remaining_leaves == 0) {
    simulator.schedule_in(0, [state, &simulator]() {
      if (state->done) {
        state->done(BroadcastReport{simulator.now(), 0, 0});
      }
    });
    return;
  }
  fan_out(simulator, network, topology, bytes, 0, state);
}

}  // namespace

void broadcast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology,
               const machine::StreamCosts& costs, const SampleRequest& request,
               std::function<void(std::uint32_t, SimTime)> on_leaf,
               std::function<void(BroadcastReport)> done) {
  auto state = std::make_shared<FanOutState>();
  state->per_proc_cpu = machine::control_packet_cost(costs);
  state->on_leaf = std::move(on_leaf);
  state->done = std::move(done);
  // The wire size is the envelope's actual encoding, asserted so the
  // constant in wire_bytes() can never drift from the encoder.
  ByteSink sink;
  request.encode(sink);
  check(sink.size() == SampleRequest::wire_bytes(),
        "SampleRequest wire_bytes out of sync with encoder");
  start_fan_out(simulator, network, topology, sink.size(), state);
}

// Legacy barrier multicast (declared in reduction.hpp): opaque bytes, no
// CPU model. Kept for callers that only need "every leaf heard us".
void multicast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology, std::uint64_t bytes,
               std::function<void(SimTime)> done) {
  auto state = std::make_shared<FanOutState>();
  state->per_proc_cpu = 0;
  state->done = [done = std::move(done)](BroadcastReport report) {
    if (done) done(report.finished_at);
  };
  start_fan_out(simulator, network, topology, bytes, state);
}

}  // namespace petastat::tbon
