// Failure-event trigger manager — the reaction half of the TBON failure
// model, after SLURM's monitor/trigger split (slurmctld: ping_nodes detects,
// trigger_mgr maps events to registered actions).
//
// The event queue between detection and reaction is a concurrency seam: the
// sim thread posts from detection events, but execution-engine workers (a
// recovery merge noticing a poisoned peer, a future off-thread heartbeat)
// must be able to post too. The queue therefore follows the pointer-width-CAS
// discipline of the ThreadPool inbox/completion queues (in the spirit of the
// constant-time LL/SC hand-off constructions): producers only ever CAS-push
// one intrusive node; the single consumer detaches the whole list with one
// exchange — exchange-only consumption leaves no ABA window and needs no
// tagged pointers — then reverses the batch back to FIFO before dispatch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace petastat::tbon {

/// "Proc X died at time T, noticed at T'" — what the health monitor reports
/// and trigger actions consume. `proc` indexes TbonTopology::procs.
struct FailureEvent {
  std::uint32_t proc = 0;
  SimTime dead_at = 0;
  SimTime detected_at = 0;
};

class TriggerManager {
 public:
  using Action = std::function<void(const FailureEvent&)>;

  TriggerManager() = default;
  TriggerManager(const TriggerManager&) = delete;
  TriggerManager& operator=(const TriggerManager&) = delete;
  ~TriggerManager();

  /// Registers an action run for every dispatched event, in registration
  /// order. Not thread-safe; register before the first post.
  void register_action(Action action);

  /// Enqueues a failure event. Thread-safe and lock-free: one CAS-push of an
  /// intrusive node, callable from the sim thread or any worker.
  void post(const FailureEvent& event);

  /// Detaches the whole pending list with a single exchange, restores FIFO
  /// order, and runs every registered action on each event. Single consumer:
  /// call from the sim thread only. Returns the number of events dispatched.
  std::uint32_t dispatch();

  [[nodiscard]] std::uint64_t posted() const {
    return posted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  /// Intrusive node in the lock-free event stack (LIFO while queued; the
  /// consumer reverses the batch back into post order).
  struct EventNode {
    FailureEvent event;
    EventNode* next = nullptr;
  };

  std::atomic<EventNode*> head_{nullptr};
  std::atomic<std::uint64_t> posted_{0};
  std::vector<Action> actions_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace petastat::tbon
