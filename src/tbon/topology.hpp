// Tree-based overlay network topologies (MRNet-style TBON, Sec. III).
//
// The paper tests three shapes:
//  * 1-deep: a flat 1-to-N fan-out from the front end to all daemons.
//  * 2-deep: one layer of comm processes. Balanced rule: fanout = sqrt(n).
//    BG/L rule: fanout from the front end = min(sqrt(#daemons), 28).
//  * 3-deep: two layers. Balanced rule: fanout = cbrt(n). BG/L rule: front
//    end fanout 4, second level 16 or 24 comm processes total.
//
// Comm-process placement is machine-constrained: on BG/L they may only run
// on the 14 login nodes (which is why fully balanced trees were impossible,
// Sec. V-C); on Atlas they run on a separate compute-node allocation, one
// process per core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"

namespace petastat::tbon {

/// Where the shard machinery (reducers and combiners) of a sharded front end
/// lands. The trade is spawn locality against NIC contention: packing many
/// helpers onto few hosts makes the serial spawn burst cheap (one remote
/// shell handshake per host, local forks after that) but leaves them sharing
/// each host's NIC during the merge; spreading buys each helper its own NIC
/// at the price of one handshake per host. plan::TopologySearch prices every
/// mode through the shared machine/cost_model + net:: route-pricing
/// formulas (route_between / bottleneck_rate over the machine's switch
/// graph), so the trade includes the trunk links the helpers share, not
/// just their hosts' NICs.
enum class ReducerPlacement : std::uint8_t {
  /// Inherit the machine's comm-process rule (the pre-placement behaviour):
  /// round-robin over the login tier on BG/L-style machines, core-packing on
  /// the spare compute allocation on clusters.
  kCommLike = 0,
  /// Fill each host's helper slots before touching the next one.
  kPack,
  /// One helper per host while hosts last (round-robin once they run out).
  kSpread,
  /// Wiring-aware: each helper lands on the candidate host that minimizes
  /// the maximum per-trunk-link load over the routes from every placed
  /// helper to the front end (ties to the lowest host index). On
  /// oversubscribed fabrics this spreads helpers across leaf switches, not
  /// just across hosts — kSpread can still pile every helper behind one
  /// saturated uplink.
  kRoute,
};

[[nodiscard]] constexpr const char* reducer_placement_name(ReducerPlacement p) {
  switch (p) {
    case ReducerPlacement::kCommLike: return "comm";
    case ReducerPlacement::kPack: return "pack";
    case ReducerPlacement::kSpread: return "spread";
    case ReducerPlacement::kRoute: return "route";
  }
  return "?";
}

/// Widest stream of shard payloads any single combine point (the front end
/// or an intermediate combiner) accepts before build_topology interposes a
/// combiner level: with K > 8 reducers the final combine stops being "cheap"
/// — and on small-limit front ends stops being possible — so the K shard
/// payloads fold through ceil(K/8)-ary combiner levels instead. The
/// machine's MachineConfig::max_tool_connections additionally bounds the
/// fan-in when it is smaller than 8.
inline constexpr std::uint32_t kShardCombineFanIn = 8;

struct TopologySpec {
  std::uint32_t depth = 1;  // 1 = flat, 2/3 = comm-process layers
  /// Total comm processes per internal level, front end's children first.
  /// Empty = derive from the balanced/BG/L rule.
  std::vector<std::uint32_t> level_widths;
  /// Use the paper's BG/L fanout rules instead of the balanced n-th-root.
  bool bgl_rules = false;
  /// BG/L 3-deep second-level size: "either 16 or 24 communication
  /// processes, depending on the job scale".
  std::uint32_t bgl_second_level = 16;
  /// Shard the front-end merge across this many reducer processes: a
  /// synthetic internal level under the front end, each reducer owning a
  /// contiguous range of the tree's former top-level children and forwarding
  /// one merged shard payload for the cheap final combine. Turns the hard
  /// front-end connection/rx-buffer ceilings into a capacity-planning knob
  /// (the Sec. V-A failure mode). With K <= kShardCombineFanIn the reducers
  /// connect straight to the front end (the original sharded layout,
  /// reproduced byte for byte); a larger K grows a *reducer tree* —
  /// intermediate combiner levels, fan-in bounded by kShardCombineFanIn and
  /// the machine's connection limit, between the front end and the reducers
  /// — so the petascale preset can run K in {16, 32, 64} without any merge
  /// root exceeding its ceiling. 1 = unsharded; 0 is rejected as
  /// INVALID_ARGUMENT (use 1 for "no sharding").
  std::uint32_t fe_shards = 1;
  /// Host-assignment policy for the shard machinery (reducers + combiners).
  /// Ignored when fe_shards == 1. kCommLike keeps the historical layouts;
  /// the planner's placement dimension prices kPack against kSpread.
  ReducerPlacement reducer_placement = ReducerPlacement::kCommLike;

  [[nodiscard]] static TopologySpec flat() { return balanced(1); }
  [[nodiscard]] static TopologySpec balanced(std::uint32_t depth) {
    TopologySpec spec;
    spec.depth = depth;
    return spec;
  }
  [[nodiscard]] static TopologySpec bgl(std::uint32_t depth,
                                        std::uint32_t second_level = 16) {
    TopologySpec spec;
    spec.depth = depth;
    spec.bgl_rules = true;
    spec.bgl_second_level = second_level;
    return spec;
  }
  /// Copy of this spec with the front-end merge split across `shards`
  /// reducer processes.
  [[nodiscard]] TopologySpec with_shards(std::uint32_t shards) const {
    TopologySpec spec = *this;
    spec.fe_shards = shards;
    return spec;
  }
  /// Copy of this spec with the shard machinery placed per `placement`.
  [[nodiscard]] TopologySpec with_placement(ReducerPlacement placement) const {
    TopologySpec spec = *this;
    spec.reducer_placement = placement;
    return spec;
  }

  [[nodiscard]] std::string name() const;
};

/// Concrete process tree. procs[0] is the front end; leaves are the daemons
/// in daemon order; internal procs are MRNet communication processes.
struct TbonTopology {
  struct Proc {
    NodeId host;
    std::int32_t parent = -1;           // index into procs, -1 for the FE
    std::vector<std::uint32_t> children;  // indices into procs
    std::uint32_t level = 0;              // 0 = FE
    DaemonId daemon = DaemonId::invalid();  // valid for leaves only

    [[nodiscard]] bool is_leaf() const { return daemon.valid(); }
  };

  std::vector<Proc> procs;
  std::uint32_t depth = 1;  // internal levels incl. FE (and any shard levels)
  std::vector<std::uint32_t> leaf_of_daemon;  // daemon id -> proc index
  /// Reducer procs of a sharded front end (the synthetic shard level), in
  /// shard order. Empty when unsharded. With K <= kShardCombineFanIn they
  /// sit directly under the FE; with a reducer tree they sit below the
  /// combiner levels instead.
  std::vector<std::uint32_t> reducers;
  /// Intermediate combiner procs of a reducer tree (every level between the
  /// FE and the reducers), top level first. Empty for K <= kShardCombineFanIn.
  std::vector<std::uint32_t> combiners;

  [[nodiscard]] bool sharded() const { return !reducers.empty(); }
  /// The shard machinery a sharded front end spawns: reducers + combiners.
  [[nodiscard]] std::uint32_t num_shard_procs() const {
    return static_cast<std::uint32_t>(reducers.size() + combiners.size());
  }
  [[nodiscard]] const Proc& front_end() const { return procs.front(); }
  [[nodiscard]] std::uint32_t num_comm_procs() const {
    std::uint32_t n = 0;
    for (const auto& p : procs) {
      if (!p.is_leaf() && p.parent >= 0) ++n;
    }
    return n;
  }
  [[nodiscard]] std::uint32_t max_fanout() const {
    std::uint32_t m = 0;
    for (const auto& p : procs) {
      m = std::max(m, static_cast<std::uint32_t>(p.children.size()));
    }
    return m;
  }
};

/// Total comm-process slots the machine can host for a job occupying
/// `num_daemons` daemon nodes: the login-node tier on BG/L-style machines,
/// or the leftover compute allocation (one process per core) on clusters.
[[nodiscard]] std::uint64_t comm_process_capacity(
    const machine::MachineConfig& machine, std::uint32_t num_daemons);

/// Derived internal-level plan for a spec: all comm-process widths (front
/// end's children first) plus how many of the leading levels are shard
/// machinery — the combiner levels of a reducer tree followed by the reducer
/// level itself (0 when unsharded).
struct DerivedLevels {
  std::vector<std::uint32_t> widths;
  std::uint32_t shard_levels = 0;

  [[nodiscard]] std::uint32_t num_reducers() const {
    return shard_levels == 0 ? 0 : widths[shard_levels - 1];
  }
};

/// Comm-process counts per internal level (front end's children first) for
/// `spec` with `num_daemons` daemons: explicit level_widths validated, or
/// derived from the balanced/BG/L fanout rule; a sharded spec's combiner and
/// reducer levels ride in front. Malformed specs (zero depth, zero-width
/// levels, wrong entry count, explicit widths beyond the comm slots of
/// `machine`) come back as INVALID_ARGUMENT here, before any process tree is
/// built. Shared by build_topology and plan::TopologySearch.
[[nodiscard]] Result<DerivedLevels> derive_levels(
    const machine::MachineConfig& machine, const TopologySpec& spec,
    std::uint32_t num_daemons);

/// derive_levels, widths only (the historical signature).
[[nodiscard]] Result<std::vector<std::uint32_t>> derive_level_widths(
    const machine::MachineConfig& machine, const TopologySpec& spec,
    std::uint32_t num_daemons);

/// Builds the process tree for `spec` on `machine`, placing comm processes
/// under the machine's constraints. Fails when the machine cannot host the
/// requested tree (e.g. login-node capacity on BG/L). A sharded spec
/// (`fe_shards > 1`) gets its reducers — and, for K > kShardCombineFanIn,
/// the combiner levels of the reducer tree above them — as the leading
/// internal levels, placed per `spec.reducer_placement` and recorded in
/// `TbonTopology::reducers` / `combiners`.
[[nodiscard]] Result<TbonTopology> build_topology(
    const machine::MachineConfig& machine, const machine::DaemonLayout& layout,
    const TopologySpec& spec);

/// Connection-limit viability of a built tree against `limit` simultaneous
/// tool connections: exactly `limit` children survive, `limit + 1` do not
/// (rejection is `> limit`, matching MachineConfig::max_tool_connections).
/// Checks every merge root — the front end and, when sharded, each combiner
/// and each reducer: a shard that merely moves the overload one hop down is
/// no fix. One formulation shared by the simulator (StatScenario) and the
/// planner (PhasePredictor), so the two can never disagree on viability.
[[nodiscard]] Status connection_viability(const TbonTopology& topology,
                                          std::uint32_t limit);

/// connection_viability on the *surviving* daemons: leaves whose daemon is
/// flagged in `daemon_dead` never dial in, so they hold no connection. An
/// empty mask means all daemons alive.
[[nodiscard]] Status connection_viability(const TbonTopology& topology,
                                          std::uint32_t limit,
                                          const std::vector<bool>& daemon_dead);

/// Distinct hosts carrying the shard machinery (reducers + combiners) — the
/// remote-shell handshake count of the spawn burst. Feed it with
/// TbonTopology::num_shard_procs() to machine::reducer_spawn_time; one
/// helper for the simulator and the planner, so spawn-locality pricing
/// cannot drift. 0 when unsharded.
[[nodiscard]] std::uint32_t shard_spawn_hosts(const TbonTopology& topology);

/// Tasks covered by each reducer's shard (daemon-contiguous by
/// construction), in shard order. Empty when unsharded.
[[nodiscard]] std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout);

/// shard_task_counts restricted to surviving daemons: a dead daemon's tasks
/// are not in anyone's slice. An empty mask means all daemons alive.
[[nodiscard]] std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout,
    const std::vector<bool>& daemon_dead);

/// Largest shard slice — the critical path of the distributed remap, where
/// reducers remap their slices concurrently (feed it to
/// machine::sharded_remap_cost). 0 when unsharded. One helper for the
/// simulator, the planner, and statbench, so slice pricing cannot drift.
[[nodiscard]] std::uint64_t largest_shard_task_count(
    const TbonTopology& topology, const machine::DaemonLayout& layout);

/// largest_shard_task_count restricted to surviving daemons.
[[nodiscard]] std::uint64_t largest_shard_task_count(
    const TbonTopology& topology, const machine::DaemonLayout& layout,
    const std::vector<bool>& daemon_dead);

/// MRNet instantiation time: parents accept and handshake children serially;
/// levels connect bottom-up but parents within a level work in parallel.
[[nodiscard]] SimTime connect_time(const TbonTopology& topology,
                                   const machine::LaunchCosts& costs);

/// The deterministic mid-merge casualty of failure injection (--fail-at):
/// the middle reducer when sharded, else the middle internal comm process,
/// else the middle daemon leaf (a flat tree has nothing else to kill). One
/// rule for the simulator and the planner's recovery pricing.
[[nodiscard]] std::uint32_t default_victim(const TbonTopology& topology);

}  // namespace petastat::tbon
