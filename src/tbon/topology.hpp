// Tree-based overlay network topologies (MRNet-style TBON, Sec. III).
//
// The paper tests three shapes:
//  * 1-deep: a flat 1-to-N fan-out from the front end to all daemons.
//  * 2-deep: one layer of comm processes. Balanced rule: fanout = sqrt(n).
//    BG/L rule: fanout from the front end = min(sqrt(#daemons), 28).
//  * 3-deep: two layers. Balanced rule: fanout = cbrt(n). BG/L rule: front
//    end fanout 4, second level 16 or 24 comm processes total.
//
// Comm-process placement is machine-constrained: on BG/L they may only run
// on the 14 login nodes (which is why fully balanced trees were impossible,
// Sec. V-C); on Atlas they run on a separate compute-node allocation, one
// process per core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/cost_model.hpp"
#include "machine/machine.hpp"

namespace petastat::tbon {

struct TopologySpec {
  std::uint32_t depth = 1;  // 1 = flat, 2/3 = comm-process layers
  /// Total comm processes per internal level, front end's children first.
  /// Empty = derive from the balanced/BG/L rule.
  std::vector<std::uint32_t> level_widths;
  /// Use the paper's BG/L fanout rules instead of the balanced n-th-root.
  bool bgl_rules = false;
  /// BG/L 3-deep second-level size: "either 16 or 24 communication
  /// processes, depending on the job scale".
  std::uint32_t bgl_second_level = 16;
  /// Shard the front-end merge across this many reducer processes: a
  /// synthetic internal level directly under the front end, each reducer
  /// owning a contiguous range of the tree's former top-level children and
  /// forwarding one merged shard payload for the cheap final combine. Turns
  /// the hard front-end connection/rx-buffer ceilings into a
  /// capacity-planning knob (the Sec. V-A failure mode). 1 = unsharded;
  /// 0 is rejected as INVALID_ARGUMENT (use 1 for "no sharding").
  std::uint32_t fe_shards = 1;

  [[nodiscard]] static TopologySpec flat() { return balanced(1); }
  [[nodiscard]] static TopologySpec balanced(std::uint32_t depth) {
    TopologySpec spec;
    spec.depth = depth;
    return spec;
  }
  [[nodiscard]] static TopologySpec bgl(std::uint32_t depth,
                                        std::uint32_t second_level = 16) {
    TopologySpec spec;
    spec.depth = depth;
    spec.bgl_rules = true;
    spec.bgl_second_level = second_level;
    return spec;
  }
  /// Copy of this spec with the front-end merge split across `shards`
  /// reducer processes.
  [[nodiscard]] TopologySpec with_shards(std::uint32_t shards) const {
    TopologySpec spec = *this;
    spec.fe_shards = shards;
    return spec;
  }

  [[nodiscard]] std::string name() const;
};

/// Concrete process tree. procs[0] is the front end; leaves are the daemons
/// in daemon order; internal procs are MRNet communication processes.
struct TbonTopology {
  struct Proc {
    NodeId host;
    std::int32_t parent = -1;           // index into procs, -1 for the FE
    std::vector<std::uint32_t> children;  // indices into procs
    std::uint32_t level = 0;              // 0 = FE
    DaemonId daemon = DaemonId::invalid();  // valid for leaves only

    [[nodiscard]] bool is_leaf() const { return daemon.valid(); }
  };

  std::vector<Proc> procs;
  std::uint32_t depth = 1;  // internal levels incl. FE (and any reducer level)
  std::vector<std::uint32_t> leaf_of_daemon;  // daemon id -> proc index
  /// Reducer procs of a sharded front end (the synthetic level directly
  /// under the FE), in shard order. Empty when unsharded.
  std::vector<std::uint32_t> reducers;

  [[nodiscard]] bool sharded() const { return !reducers.empty(); }
  [[nodiscard]] const Proc& front_end() const { return procs.front(); }
  [[nodiscard]] std::uint32_t num_comm_procs() const {
    std::uint32_t n = 0;
    for (const auto& p : procs) {
      if (!p.is_leaf() && p.parent >= 0) ++n;
    }
    return n;
  }
  [[nodiscard]] std::uint32_t max_fanout() const {
    std::uint32_t m = 0;
    for (const auto& p : procs) {
      m = std::max(m, static_cast<std::uint32_t>(p.children.size()));
    }
    return m;
  }
};

/// Total comm-process slots the machine can host for a job occupying
/// `num_daemons` daemon nodes: the login-node tier on BG/L-style machines,
/// or the leftover compute allocation (one process per core) on clusters.
[[nodiscard]] std::uint64_t comm_process_capacity(
    const machine::MachineConfig& machine, std::uint32_t num_daemons);

/// Comm-process counts per internal level (front end's children first) for
/// `spec` with `num_daemons` daemons: explicit level_widths validated, or
/// derived from the balanced/BG/L fanout rule. Malformed specs (zero depth,
/// zero-width levels, wrong entry count, explicit widths beyond the comm
/// slots of `machine`) come back as INVALID_ARGUMENT here, before any
/// process tree is built. Shared by build_topology and plan::TopologySearch.
[[nodiscard]] Result<std::vector<std::uint32_t>> derive_level_widths(
    const machine::MachineConfig& machine, const TopologySpec& spec,
    std::uint32_t num_daemons);

/// Builds the process tree for `spec` on `machine`, placing comm processes
/// under the machine's constraints. Fails when the machine cannot host the
/// requested tree (e.g. login-node capacity on BG/L). A sharded spec
/// (`fe_shards > 1`) gets its reducers as the first internal level, placed
/// exactly like comm processes and recorded in `TbonTopology::reducers`.
[[nodiscard]] Result<TbonTopology> build_topology(
    const machine::MachineConfig& machine, const machine::DaemonLayout& layout,
    const TopologySpec& spec);

/// Connection-limit viability of a built tree against `limit` simultaneous
/// tool connections: exactly `limit` children survive, `limit + 1` do not
/// (rejection is `> limit`, matching MachineConfig::max_tool_connections).
/// Checks the front end and, when sharded, every reducer — a shard that
/// merely moves the overload one hop down is no fix. One formulation shared
/// by the simulator (StatScenario) and the planner (PhasePredictor), so the
/// two can never disagree on viability.
[[nodiscard]] Status connection_viability(const TbonTopology& topology,
                                          std::uint32_t limit);

/// Tasks covered by each reducer's shard (daemon-contiguous by
/// construction), in shard order. Empty when unsharded.
[[nodiscard]] std::vector<std::uint64_t> shard_task_counts(
    const TbonTopology& topology, const machine::DaemonLayout& layout);

/// Largest shard slice — the critical path of the distributed remap, where
/// reducers remap their slices concurrently (feed it to
/// machine::sharded_remap_cost). 0 when unsharded. One helper for the
/// simulator, the planner, and statbench, so slice pricing cannot drift.
[[nodiscard]] std::uint64_t largest_shard_task_count(
    const TbonTopology& topology, const machine::DaemonLayout& layout);

/// MRNet instantiation time: parents accept and handshake children serially;
/// levels connect bottom-up but parents within a level work in parallel.
[[nodiscard]] SimTime connect_time(const TbonTopology& topology,
                                   const machine::LaunchCosts& costs);

}  // namespace petastat::tbon
