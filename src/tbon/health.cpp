#include "tbon/health.hpp"

#include <algorithm>

#include "common/status.hpp"
#include "tbon/reduction.hpp"

namespace petastat::tbon {

HealthMonitor::HealthMonitor(sim::Simulator& simulator, net::Network& network,
                             const TbonTopology& topology,
                             TriggerManager& triggers, SimTime period)
    : sim_(simulator),
      net_(network),
      topo_(topology),
      triggers_(triggers),
      period_(period),
      dead_at_(topology.procs.size(), kSimTimeNever),
      reported_(topology.procs.size(), false) {
  check(period_ > 0, "HealthMonitor period must be positive");
}

void HealthMonitor::start() {
  stopped_ = false;
  pending_ = sim_.schedule_in(period_, [this]() { sweep(); });
}

void HealthMonitor::stop() {
  if (stopped_) return;
  stopped_ = true;
  sim_.cancel(pending_);
}

void HealthMonitor::mark_dead(std::uint32_t proc_index, SimTime at) {
  check(proc_index < dead_at_.size(), "HealthMonitor::mark_dead bad proc");
  dead_at_[proc_index] = std::min(dead_at_[proc_index], at);
}

void HealthMonitor::sweep() {
  if (stopped_) return;
  const SimTime started = sim_.now();
  // The ping rides the real control plane: the fan-out is priced by the
  // multicast, the echo gather is modelled symmetric to it. A proc dead
  // before `started` produces no echo, so the front end notices exactly when
  // the gather would have completed.
  multicast(sim_, net_, topo_, kPingBytes, [this, started](SimTime reached) {
    if (stopped_) return;
    const SimTime detect_at = reached + (reached - started);
    sim_.schedule_at(detect_at, [this, started, detect_at]() {
      if (stopped_) return;
      ++sweeps_;
      for (std::uint32_t p = 0; p < dead_at_.size(); ++p) {
        if (dead_at_[p] <= started && !reported_[p]) {
          reported_[p] = true;
          ++detections_;
          triggers_.post(FailureEvent{p, dead_at_[p], detect_at});
        }
      }
      triggers_.dispatch();
      if (sweeps_ >= kMaxSweeps) {
        stopped_ = true;
        return;
      }
      pending_ = sim_.schedule_at(std::max(detect_at, started + period_),
                                  [this]() { sweep(); });
    });
  });
}

}  // namespace petastat::tbon
