// Downward control plane of the TBON (the --stream arming broadcast).
//
// The front end arms a streaming run by broadcasting one SampleRequest
// envelope down the tree: each proc receives the packet, pays the shared
// control-packet CPU (machine::control_packet_cost), and forwards a copy to
// each child over its NIC through net::Network — so control-plane latency is
// priced by exactly the formulas plan::PhasePredictor consults. Compare the
// legacy multicast() in reduction.hpp, which moved opaque bytes with no CPU
// model; it survives as a wrapper over the same fan-out for callers that
// only need a synchronization barrier.
//
// Upward, every per-sample delta message leads with a DeltaHeader: an
// unchanged subtree acknowledges with the bare header (kDeltaAckBytes), a
// changed one appends its packed payload (delta_wire_bytes). Both envelopes
// are versioned through the standard wire format: skew decodes to
// FAILED_PRECONDITION, truncation to INVALID_ARGUMENT.
#pragma once

#include <cstdint>
#include <functional>

#include "common/serializer.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/cost_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {

/// Control envelope arming a streaming sampling run: take `count` samples
/// starting at sample index `cursor`, one every `interval` of virtual time
/// (0 = back-to-back).
struct SampleRequest {
  std::uint32_t cursor = 0;
  std::uint32_t count = 1;
  SimTime interval = 0;

  void encode(ByteSink& sink) const;
  [[nodiscard]] static Result<SampleRequest> decode(ByteSource& source);
  /// Encoded size: version u8 + cursor u32 + count u32 + interval u64.
  [[nodiscard]] static constexpr std::uint64_t wire_bytes() { return 17; }
};

/// Header of every upward per-sample delta message. `changed == false` means
/// "my subtree's class signature is unchanged since the last sample" and the
/// header is the entire message; `changed == true` means the sender's packed
/// payload follows.
struct DeltaHeader {
  std::uint32_t cursor = 0;
  bool changed = false;
  std::uint64_t signature = 0;

  void encode(ByteSink& sink) const;
  [[nodiscard]] static Result<DeltaHeader> decode(ByteSource& source);
};

/// Encoded size of a DeltaHeader: version u8 + cursor u32 + changed u8 +
/// signature u64.
inline constexpr std::uint64_t kDeltaHeaderBytes = 14;
/// An unchanged child's whole upward message is the bare header.
inline constexpr std::uint64_t kDeltaAckBytes = kDeltaHeaderBytes;
/// Wire size of a changed child's delta: header + packed subtree payload.
[[nodiscard]] constexpr std::uint64_t delta_wire_bytes(
    std::uint64_t payload_bytes) {
  return kDeltaHeaderBytes + payload_bytes;
}

/// What one broadcast moved.
struct BroadcastReport {
  SimTime finished_at = 0;     // the last leaf armed
  std::uint64_t messages = 0;  // one per tree edge reached
  std::uint64_t bytes = 0;
};

/// Broadcasts `request` down the tree. Every proc pays
/// machine::control_packet_cost on arrival before forwarding; per-link
/// transfer times come from `network`. `on_leaf` fires at each leaf proc's
/// arm time (after its decode CPU); `done` fires once after the last leaf.
/// A topology with no leaves completes at the current virtual time.
void broadcast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology,
               const machine::StreamCosts& costs, const SampleRequest& request,
               std::function<void(std::uint32_t leaf_proc, SimTime)> on_leaf,
               std::function<void(BroadcastReport)> done);

}  // namespace petastat::tbon
