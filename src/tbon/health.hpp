// Periodic ping-sweep health monitor over the TBON, after slurmctld's
// ping_nodes: every period the front end multicasts a small ping down the
// real control plane (same transfers, same contention as any other control
// message) and gathers the echoes back up. A proc that was dead when the
// sweep left the front end cannot echo, so its death is detected when the
// gather completes — detection latency is the time to the next sweep plus
// one fan-out/gather round trip, never a free oracle read.
//
// Detections are posted to a TriggerManager and dispatched on the simulator
// thread; registered actions (normally Reduction::recover) re-route the
// orphaned subtree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"
#include "tbon/trigger.hpp"

namespace petastat::tbon {

class HealthMonitor {
 public:
  /// Bytes of one ping message (matches the sampling control multicast).
  static constexpr std::uint64_t kPingBytes = 96;

  HealthMonitor(sim::Simulator& simulator, net::Network& network,
                const TbonTopology& topology, TriggerManager& triggers,
                SimTime period);

  /// Schedules the first sweep one period from now. The monitor free-runs
  /// until stop(); a caller that never stops it keeps the simulator's event
  /// queue non-empty until the sweep cap trips.
  void start();

  /// Cancels the pending sweep and silences in-flight ones. Call from the
  /// reduction's completion callback so the simulator can drain.
  void stop();

  /// Records that `proc` died at `at`. The death is invisible until a sweep
  /// that started at or after `at` completes its round trip.
  void mark_dead(std::uint32_t proc_index, SimTime at);

  [[nodiscard]] std::uint32_t sweeps_completed() const { return sweeps_; }
  [[nodiscard]] std::uint32_t detections() const { return detections_; }
  [[nodiscard]] SimTime period() const { return period_; }

 private:
  void sweep();

  /// Sweeps stop rescheduling after this many rounds, turning an
  /// unrecoverable stall (e.g. a dead front end) into a drained event queue
  /// instead of a simulation that never finishes.
  static constexpr std::uint32_t kMaxSweeps = 256;

  sim::Simulator& sim_;
  net::Network& net_;
  const TbonTopology& topo_;
  TriggerManager& triggers_;
  SimTime period_;
  bool stopped_ = true;
  sim::EventId pending_{};
  std::vector<SimTime> dead_at_;   // per proc; kNever = alive
  std::vector<bool> reported_;     // per proc
  std::uint32_t sweeps_ = 0;
  std::uint32_t detections_ = 0;
};

}  // namespace petastat::tbon
