// Upstream reduction and downstream multicast over a TbonTopology.
//
// The reduction is the heart of STAT's merge phase: every leaf (daemon)
// packs its payload and sends it to its parent; each comm process merges
// child payloads *as they arrive* (MRNet filters are streaming) and forwards
// one merged payload upward; the front end's merged payload completes the
// operation.
//
// Payload is a template parameter; ReduceOps supplies the real merge (the
// STAT filter runs actual prefix-tree merges here) plus wire-size and CPU
// accounting. Network transfers and per-proc CPU serialization are modelled
// with real contention: a comm process with 28 children unpacks/merges them
// one after another on its core, and its NIC drains them one after another.
//
// Execution engine: the modelled CPU cost of a merge (merge_cpu) is a
// function of the incoming payload alone, so all virtual timestamps are
// fixed on the simulator thread at arrival — the *real* structural merge
// only has to be finished by the time the proc forwards its accumulator.
// With a parallel sim::Executor, each proc's merges run on a per-proc strand
// (serialized in arrival order, exactly as the proc's single modelled core
// would) while independent sibling subtrees merge concurrently on other
// workers; the forward event wait()s on the strand before reading the
// accumulator. Timestamps, merge order, and therefore results are
// bit-identical to a serial run.
//
// Failure model: mark_dead(proc) makes a proc drop every subsequent arrival
// and never forward; recover(proc) — normally driven by a HealthMonitor
// detection through the TriggerManager — folds the orphaned leaves under the
// corpse into its nearest alive ancestor's surviving non-leaf children and
// re-merges *only* the lost subtree from retained leaf payloads. Because the
// prefix-tree merge is canonical (order-independent), the recovered result
// is bit-identical to a run without the failure. All recovery timestamps are
// fixed on the simulator thread, so the determinism contract holds at any
// thread count.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {

template <typename Payload>
struct ReduceOps {
  /// Modelled CPU cost of merging `child` into an accumulator. Streaming
  /// filters charge per arrival, so the cost may depend only on the child —
  /// this is what lets the real merge run off the simulator thread.
  std::function<SimTime(const Payload& child)> merge_cpu;
  /// The real merge (acc starts default-constructed at every internal proc).
  std::function<void(Payload& acc, Payload&& child)> merge_into;
  /// Real serialized size of a payload.
  std::function<std::uint64_t(const Payload&)> wire_bytes;
  /// CPU to pack or unpack `bytes` of payload.
  std::function<SimTime(std::uint64_t bytes)> codec_cost;
};

/// Result of a completed reduction.
template <typename Payload>
struct ReduceResult {
  Payload payload{};
  SimTime finished_at = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
};

/// What recover() did for one dead proc.
struct RecoveryReport {
  /// False when there was nothing to do: the proc had already forwarded its
  /// payload (death after contribution is harmless) or it was the front end.
  bool acted = false;
  /// Daemons whose retained payloads were re-sent into adopters.
  std::uint32_t orphan_daemons = 0;
  /// Surviving procs the orphans were folded into.
  std::uint32_t adopters = 0;
  /// Daemons under the corpse whose data could not be recovered (their leaf
  /// proc died too, or retention was off).
  std::uint32_t lost_daemons = 0;
};

/// Runs one upstream reduction. Leaf payloads must be indexed by daemon id.
/// `done` fires at the front end's completion time. `executor` may be null
/// (serial); a parallel executor must outlive the reduction's completion.
template <typename Payload>
class Reduction {
 public:
  Reduction(sim::Simulator& simulator, net::Network& network,
            const TbonTopology& topology, ReduceOps<Payload> ops,
            sim::Executor* executor = nullptr)
      : sim_(simulator),
        net_(network),
        topo_(topology),
        ops_(std::move(ops)),
        executor_(executor) {}

  /// Daemons flagged here never send and are excluded from every pending
  /// count: a proc whose whole subtree is dead forwards nothing and its
  /// parent does not wait for it. Call before start(). At least one daemon
  /// must stay alive.
  void set_dead_daemons(std::vector<bool> dead) {
    dead_daemons_ = std::move(dead);
  }

  /// Keep a copy of every leaf payload so recover() can re-send orphaned
  /// shards. Costs one copy of each payload up front — enable only when
  /// failure injection is armed.
  void set_retain_payloads(bool retain) { retain_ = retain; }

  void start(std::vector<Payload> leaf_payloads,
             std::function<void(ReduceResult<Payload>)> done) {
    check(leaf_payloads.size() == topo_.leaf_of_daemon.size(),
          "Reduction::start payload count != daemon count");
    if (dead_daemons_.empty()) {
      dead_daemons_.assign(topo_.leaf_of_daemon.size(), false);
    }
    check(dead_daemons_.size() == topo_.leaf_of_daemon.size(),
          "Reduction dead-daemon mask size != daemon count");
    state_ = std::make_shared<State>();
    auto& state = state_;
    state->done = std::move(done);
    state->bytes_at_start = net_.total_bytes_moved();
    state->messages_at_start = net_.total_messages();
    state->procs.resize(topo_.procs.size());
    state->retained.resize(topo_.leaf_of_daemon.size());
    mark_contributing(*state, 0);
    check(state->procs[0].contributes,
          "Reduction::start with every daemon dead");
    const bool threaded = executor_ != nullptr && executor_->parallel();
    for (std::size_t i = 0; i < topo_.procs.size(); ++i) {
      std::size_t live_children = 0;
      for (const std::uint32_t child : topo_.procs[i].children) {
        if (state->procs[child].contributes) ++live_children;
      }
      state->procs[i].pending = live_children;
      state->procs[i].cpu_free_at = sim_.now();
      if (threaded && state->procs[i].pending > 0) {
        state->procs[i].strand =
            std::make_unique<sim::Executor::Strand>(*executor_);
      }
    }

    // Leaves pack and send. Leaf packing happens on the daemon's core in
    // parallel across daemons.
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      if (dead_daemons_[d]) continue;
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      Payload payload = std::move(leaf_payloads[d]);
      if (retain_) state->retained[d] = std::make_shared<Payload>(payload);
      const std::uint64_t bytes = ops_.wire_bytes(payload);
      const SimTime packed_at = sim_.now() + ops_.codec_cost(bytes);
      sim_.schedule_at(packed_at,
                       [this, state, leaf, bytes,
                        payload = std::make_shared<Payload>(std::move(payload))]() mutable {
                         send_up(state, leaf, std::move(*payload), bytes);
                       });
    }
  }

  /// Marks a proc dead at the current virtual time: it drops every arrival
  /// from now on and never forwards. Detection and re-routing are the health
  /// monitor's and trigger manager's business.
  void mark_dead(std::uint32_t proc_index) {
    check(state_ != nullptr, "Reduction::mark_dead before start");
    state_->procs[proc_index].dead = true;
  }

  /// Folds the subtree orphaned by a dead proc into its nearest alive
  /// ancestor's surviving non-leaf children (the ancestor itself when it has
  /// none) and re-sends the retained leaf payloads there. No-op when the
  /// corpse already forwarded its payload — death after contribution costs
  /// nothing. Idempotent per proc.
  RecoveryReport recover(std::uint32_t proc_index) {
    RecoveryReport report;
    check(state_ != nullptr, "Reduction::recover before start");
    State& st = *state_;
    ProcState& corpse = st.procs[proc_index];
    check(corpse.dead, "Reduction::recover on a live proc");
    if (corpse.forwarded || corpse.recovered) return report;
    if (topo_.procs[proc_index].parent < 0) return report;  // FE: no recovery
    corpse.recovered = true;

    // Nearest alive ancestor adopts; branch_child is its (dead) child on the
    // path down to the corpse, which will never deliver.
    std::uint32_t branch_child = proc_index;
    auto grandparent = static_cast<std::uint32_t>(topo_.procs[proc_index].parent);
    while (st.procs[grandparent].dead && topo_.procs[grandparent].parent >= 0) {
      branch_child = grandparent;
      grandparent = static_cast<std::uint32_t>(topo_.procs[grandparent].parent);
    }
    if (st.procs[grandparent].dead) return report;  // dead all the way up

    report.acted = true;
    ProcState& gs = st.procs[grandparent];
    const ProcState& bs = st.procs[branch_child];
    if (bs.contributes && !bs.forwarded) {
      check(gs.pending > 0, "Reduction::recover ancestor not waiting");
      --gs.pending;
    }

    // Sort the corpse's daemons into recoverable orphans and lost ones.
    std::vector<std::uint32_t> orphans;
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      if (dead_daemons_[d]) continue;
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      if (!under(leaf, proc_index)) continue;
      if (st.procs[leaf].dead || st.retained[d] == nullptr) {
        ++report.lost_daemons;
      } else {
        orphans.push_back(d);
      }
    }

    std::vector<std::uint32_t> adopters;
    if (!orphans.empty()) {
      for (const std::uint32_t child : topo_.procs[grandparent].children) {
        if (child == branch_child) continue;
        if (topo_.procs[child].is_leaf()) continue;
        if (st.procs[child].dead) continue;
        adopters.push_back(child);
      }
      if (adopters.empty()) adopters.push_back(grandparent);
      report.adopters = static_cast<std::uint32_t>(adopters.size());

      // Open the adopters up for the re-merged arrivals. An adopter that
      // already forwarded (or never counted) will produce a supplement
      // payload the ancestor is not yet waiting for.
      std::vector<std::size_t> extra(adopters.size(), 0);
      for (std::size_t i = 0; i < orphans.size(); ++i) {
        ++extra[i % adopters.size()];
      }
      for (std::size_t a = 0; a < adopters.size(); ++a) {
        if (extra[a] == 0) continue;
        ProcState& as = st.procs[adopters[a]];
        if (adopters[a] != grandparent && (as.forwarded || !as.contributes)) {
          ++gs.pending;
        }
        as.contributes = true;
        as.pending += extra[a];
        ++as.epoch;  // invalidate any forward chain scheduled before re-open
      }

      // Orphan leaves re-pack their retained payloads and send them to the
      // adopters round-robin in daemon order — deterministic at any thread
      // count.
      for (std::size_t i = 0; i < orphans.size(); ++i) {
        const std::uint32_t d = orphans[i];
        const std::uint32_t leaf = topo_.leaf_of_daemon[d];
        const std::uint32_t target = adopters[i % adopters.size()];
        const std::shared_ptr<Payload> retained = st.retained[d];
        const std::uint64_t bytes = ops_.wire_bytes(*retained);
        const SimTime packed_at = sim_.now() + ops_.codec_cost(bytes);
        sim_.schedule_at(packed_at,
                         [this, state = state_, leaf, target, bytes, retained]() {
                           if (state->procs[leaf].dead) return;
                           Payload copy = *retained;
                           send_to(state, leaf, target, std::move(copy), bytes);
                         });
      }
      report.orphan_daemons = static_cast<std::uint32_t>(orphans.size());
    }

    // All the corpse held may already be accounted for (or lost): the
    // ancestor might be complete right now.
    if (gs.pending == 0 && !gs.forwarded) {
      schedule_forward(state_, grandparent);
    }
    return report;
  }

 private:
  struct ProcState {
    Payload acc{};
    std::size_t pending = 0;
    SimTime cpu_free_at = 0;
    bool contributes = true;  // subtree holds at least one alive daemon
    bool dead = false;
    bool forwarded = false;  // sent its (first) payload up
    bool recovered = false;  // recover() already ran for this corpse
    // Bumped when recovery re-opens the proc for orphan arrivals: forward
    // events capture the epoch they were scheduled under and abort when it
    // moved, so a chain in flight across a re-open cannot forward a stale
    // (or already-drained) accumulator a second time.
    std::uint32_t epoch = 0;
    std::unique_ptr<sim::Executor::Strand> strand;  // parallel mode only
    sim::Executor::TaskRef last_merge;
  };
  struct State {
    std::vector<ProcState> procs;
    std::vector<std::shared_ptr<Payload>> retained;  // by daemon id
    std::function<void(ReduceResult<Payload>)> done;
    std::uint64_t bytes_at_start = 0;
    std::uint64_t messages_at_start = 0;
  };

  /// Computes ProcState::contributes for the subtree rooted at proc_index.
  bool mark_contributing(State& state, std::uint32_t proc_index) {
    const auto& proc = topo_.procs[proc_index];
    bool contributes = false;
    if (proc.is_leaf()) {
      for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
        if (topo_.leaf_of_daemon[d] == proc_index && !dead_daemons_[d]) {
          contributes = true;
          break;
        }
      }
    } else {
      for (const std::uint32_t child : proc.children) {
        if (mark_contributing(state, child)) contributes = true;
      }
    }
    state.procs[proc_index].contributes = contributes;
    return contributes;
  }

  [[nodiscard]] bool under(std::uint32_t proc_index,
                           std::uint32_t ancestor) const {
    std::int32_t walk = static_cast<std::int32_t>(proc_index);
    while (walk >= 0) {
      if (static_cast<std::uint32_t>(walk) == ancestor) return true;
      walk = topo_.procs[static_cast<std::uint32_t>(walk)].parent;
    }
    return false;
  }

  void send_up(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    ProcState& ps = state->procs[proc_index];
    if (ps.dead) return;  // died between scheduling and the send event
    ps.forwarded = true;
    const auto& proc = topo_.procs[proc_index];
    if (proc.parent < 0) {
      // Front end complete.
      ReduceResult<Payload> result;
      result.payload = std::move(payload);
      result.finished_at = sim_.now();
      result.bytes_moved = net_.total_bytes_moved() - state->bytes_at_start;
      result.messages = net_.total_messages() - state->messages_at_start;
      if (state->done) state->done(std::move(result));
      return;
    }
    send_to(state, proc_index, static_cast<std::uint32_t>(proc.parent),
            std::move(payload), bytes);
  }

  void send_to(const std::shared_ptr<State>& state, std::uint32_t from,
               std::uint32_t target, Payload&& payload, std::uint64_t bytes) {
    const NodeId src = topo_.procs[from].host;
    const NodeId dst = topo_.procs[target].host;
    auto shared_payload = std::make_shared<Payload>(std::move(payload));
    net_.transfer_async(src, dst, bytes,
                        [this, state, target, bytes, shared_payload]() {
                          receive(state, target, std::move(*shared_payload), bytes);
                        });
  }

  void receive(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    ProcState& ps = state->procs[proc_index];
    if (ps.dead) return;  // arrivals at a corpse vanish; recovery re-sends
    check(ps.pending > 0, "Reduction::receive with no pending children");

    // The proc's single core unpacks and merges arrivals serially: all
    // timestamps are fixed here, before any real merge work runs.
    const SimTime cpu = ops_.codec_cost(bytes) + ops_.merge_cpu(payload);
    const SimTime start = std::max(sim_.now(), ps.cpu_free_at);
    ps.cpu_free_at = start + cpu;
    --ps.pending;

    // The real merge: serialized per proc (arrival order), concurrent across
    // sibling subtrees.
    if (ps.strand) {
      auto child = std::make_shared<Payload>(std::move(payload));
      ps.last_merge = ps.strand->run([this, state, proc_index, child]() {
        ops_.merge_into(state->procs[proc_index].acc, std::move(*child));
      });
    } else {
      ops_.merge_into(ps.acc, std::move(payload));
    }

    if (ps.pending == 0) schedule_forward(state, proc_index);
  }

  /// All children accounted for: when the modelled core frees up, collect
  /// the real accumulator (waiting out any in-flight merge), then pack and
  /// forward. Both events re-check pending *and* the epoch — recovery may
  /// re-open the proc for orphan arrivals in between, after which the drain
  /// back to zero pending schedules a fresh chain and this one must die (the
  /// pending check alone cannot tell a stale chain from the fresh one once
  /// the orphans have drained). The forward leaves a fresh accumulator
  /// behind so a later supplement forward starts clean.
  void schedule_forward(const std::shared_ptr<State>& state,
                        std::uint32_t proc_index) {
    const std::uint32_t epoch = state->procs[proc_index].epoch;
    const SimTime at =
        std::max(sim_.now(), state->procs[proc_index].cpu_free_at);
    sim_.schedule_at(at, [this, state, proc_index, epoch]() {
      ProcState& finished = state->procs[proc_index];
      if (finished.dead || finished.pending != 0 || finished.epoch != epoch) {
        return;
      }
      if (executor_) executor_->wait(finished.last_merge);
      const std::uint64_t out_bytes = ops_.wire_bytes(finished.acc);
      const SimTime packed_at = sim_.now() + ops_.codec_cost(out_bytes);
      sim_.schedule_at(packed_at, [this, state, proc_index, out_bytes, epoch]() {
        ProcState& ready = state->procs[proc_index];
        if (ready.dead || ready.pending != 0 || ready.epoch != epoch) return;
        Payload out = std::move(ready.acc);
        ready.acc = Payload{};
        send_up(state, proc_index, std::move(out), out_bytes);
      });
    });
  }

  sim::Simulator& sim_;
  net::Network& net_;
  const TbonTopology& topo_;
  ReduceOps<Payload> ops_;
  sim::Executor* executor_;
  std::vector<bool> dead_daemons_;
  bool retain_ = false;
  std::shared_ptr<State> state_;
};

/// Downstream control multicast (e.g. "take 10 samples now"): small fixed
/// message fanned out level by level. Returns via callback when the last
/// leaf has it.
void multicast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology, std::uint64_t bytes,
               std::function<void(SimTime finished_at)> done);

}  // namespace petastat::tbon
