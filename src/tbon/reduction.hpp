// Upstream reduction and downstream multicast over a TbonTopology.
//
// The reduction is the heart of STAT's merge phase: every leaf (daemon)
// packs its payload and sends it to its parent; each comm process merges
// child payloads *as they arrive* (MRNet filters are streaming) and forwards
// one merged payload upward; the front end's merged payload completes the
// operation.
//
// Payload is a template parameter; ReduceOps supplies the real merge (the
// STAT filter runs actual prefix-tree merges here) plus wire-size and CPU
// accounting. Network transfers and per-proc CPU serialization are modelled
// with real contention: a comm process with 28 children unpacks/merges them
// one after another on its core, and its NIC drains them one after another.
//
// Execution engine: the modelled CPU cost of a merge (merge_cpu) is a
// function of the incoming payload alone, so all virtual timestamps are
// fixed on the simulator thread at arrival — the *real* structural merge
// only has to be finished by the time the proc forwards its accumulator.
// With a parallel sim::Executor, each proc's merges run on a per-proc strand
// (serialized in arrival order, exactly as the proc's single modelled core
// would) while independent sibling subtrees merge concurrently on other
// workers; the forward event wait()s on the strand before reading the
// accumulator. Timestamps, merge order, and therefore results are
// bit-identical to a serial run.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {

template <typename Payload>
struct ReduceOps {
  /// Modelled CPU cost of merging `child` into an accumulator. Streaming
  /// filters charge per arrival, so the cost may depend only on the child —
  /// this is what lets the real merge run off the simulator thread.
  std::function<SimTime(const Payload& child)> merge_cpu;
  /// The real merge (acc starts default-constructed at every internal proc).
  std::function<void(Payload& acc, Payload&& child)> merge_into;
  /// Real serialized size of a payload.
  std::function<std::uint64_t(const Payload&)> wire_bytes;
  /// CPU to pack or unpack `bytes` of payload.
  std::function<SimTime(std::uint64_t bytes)> codec_cost;
};

/// Result of a completed reduction.
template <typename Payload>
struct ReduceResult {
  Payload payload{};
  SimTime finished_at = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
};

/// Runs one upstream reduction. Leaf payloads must be indexed by daemon id.
/// `done` fires at the front end's completion time. `executor` may be null
/// (serial); a parallel executor must outlive the reduction's completion.
template <typename Payload>
class Reduction {
 public:
  Reduction(sim::Simulator& simulator, net::Network& network,
            const TbonTopology& topology, ReduceOps<Payload> ops,
            sim::Executor* executor = nullptr)
      : sim_(simulator),
        net_(network),
        topo_(topology),
        ops_(std::move(ops)),
        executor_(executor) {}

  void start(std::vector<Payload> leaf_payloads,
             std::function<void(ReduceResult<Payload>)> done) {
    check(leaf_payloads.size() == topo_.leaf_of_daemon.size(),
          "Reduction::start payload count != daemon count");
    auto state = std::make_shared<State>();
    state->done = std::move(done);
    state->bytes_at_start = net_.total_bytes_moved();
    state->messages_at_start = net_.total_messages();
    state->procs.resize(topo_.procs.size());
    const bool threaded = executor_ != nullptr && executor_->parallel();
    for (std::size_t i = 0; i < topo_.procs.size(); ++i) {
      state->procs[i].pending = topo_.procs[i].children.size();
      state->procs[i].cpu_free_at = sim_.now();
      if (threaded && state->procs[i].pending > 0) {
        state->procs[i].strand =
            std::make_unique<sim::Executor::Strand>(*executor_);
      }
    }

    // Leaves pack and send. Leaf packing happens on the daemon's core in
    // parallel across daemons.
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      Payload payload = std::move(leaf_payloads[d]);
      const std::uint64_t bytes = ops_.wire_bytes(payload);
      const SimTime packed_at = sim_.now() + ops_.codec_cost(bytes);
      sim_.schedule_at(packed_at,
                       [this, state, leaf, bytes,
                        payload = std::make_shared<Payload>(std::move(payload))]() mutable {
                         send_up(state, leaf, std::move(*payload), bytes);
                       });
    }
  }

 private:
  struct ProcState {
    Payload acc{};
    std::size_t pending = 0;
    SimTime cpu_free_at = 0;
    std::unique_ptr<sim::Executor::Strand> strand;  // parallel mode only
    sim::Executor::TaskRef last_merge;
  };
  struct State {
    std::vector<ProcState> procs;
    std::function<void(ReduceResult<Payload>)> done;
    std::uint64_t bytes_at_start = 0;
    std::uint64_t messages_at_start = 0;
  };

  void send_up(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    const auto& proc = topo_.procs[proc_index];
    if (proc.parent < 0) {
      // Front end complete.
      ReduceResult<Payload> result;
      result.payload = std::move(payload);
      result.finished_at = sim_.now();
      result.bytes_moved = net_.total_bytes_moved() - state->bytes_at_start;
      result.messages = net_.total_messages() - state->messages_at_start;
      if (state->done) state->done(std::move(result));
      return;
    }
    const auto parent = static_cast<std::uint32_t>(proc.parent);
    const NodeId src = proc.host;
    const NodeId dst = topo_.procs[parent].host;
    auto shared_payload = std::make_shared<Payload>(std::move(payload));
    net_.transfer_async(src, dst, bytes,
                        [this, state, parent, bytes, shared_payload]() {
                          receive(state, parent, std::move(*shared_payload), bytes);
                        });
  }

  void receive(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    ProcState& ps = state->procs[proc_index];
    check(ps.pending > 0, "Reduction::receive with no pending children");

    // The proc's single core unpacks and merges arrivals serially: all
    // timestamps are fixed here, before any real merge work runs.
    const SimTime cpu = ops_.codec_cost(bytes) + ops_.merge_cpu(payload);
    const SimTime start = std::max(sim_.now(), ps.cpu_free_at);
    ps.cpu_free_at = start + cpu;
    --ps.pending;

    // The real merge: serialized per proc (arrival order), concurrent across
    // sibling subtrees.
    if (ps.strand) {
      auto child = std::make_shared<Payload>(std::move(payload));
      ps.last_merge = ps.strand->run([this, state, proc_index, child]() {
        ops_.merge_into(state->procs[proc_index].acc, std::move(*child));
      });
    } else {
      ops_.merge_into(ps.acc, std::move(payload));
    }

    if (ps.pending == 0) {
      // All children accounted for: when the modelled core frees up, collect
      // the real accumulator (waiting out any in-flight merge), then pack
      // and forward.
      sim_.schedule_at(ps.cpu_free_at, [this, state, proc_index]() {
        ProcState& finished = state->procs[proc_index];
        if (executor_) executor_->wait(finished.last_merge);
        const std::uint64_t out_bytes = ops_.wire_bytes(finished.acc);
        const SimTime packed_at = sim_.now() + ops_.codec_cost(out_bytes);
        sim_.schedule_at(packed_at, [this, state, proc_index, out_bytes]() {
          ProcState& ready = state->procs[proc_index];
          send_up(state, proc_index, std::move(ready.acc), out_bytes);
        });
      });
    }
  }

  sim::Simulator& sim_;
  net::Network& net_;
  const TbonTopology& topo_;
  ReduceOps<Payload> ops_;
  sim::Executor* executor_;
};

/// Downstream control multicast (e.g. "take 10 samples now"): small fixed
/// message fanned out level by level. Returns via callback when the last
/// leaf has it.
void multicast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology, std::uint64_t bytes,
               std::function<void(SimTime finished_at)> done);

}  // namespace petastat::tbon
