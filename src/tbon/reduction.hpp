// Upstream reduction and downstream multicast over a TbonTopology.
//
// The reduction is the heart of STAT's merge phase: every leaf (daemon)
// packs its payload and sends it to its parent; each comm process merges
// child payloads *as they arrive* (MRNet filters are streaming) and forwards
// one merged payload upward; the front end's merged payload completes the
// operation.
//
// Payload is a template parameter; ReduceOps supplies the real merge (the
// STAT filter runs actual prefix-tree merges here) plus wire-size and CPU
// accounting. Network transfers and per-proc CPU serialization are modelled
// with real contention: a comm process with 28 children unpacks/merges them
// one after another on its core, and its NIC drains them one after another.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {

template <typename Payload>
struct ReduceOps {
  /// Merges `child` into `acc` (acc starts default-constructed at every
  /// internal proc) and adds the modelled CPU cost to `cpu`.
  std::function<void(Payload& acc, Payload&& child, SimTime& cpu)> merge_into;
  /// Real serialized size of a payload.
  std::function<std::uint64_t(const Payload&)> wire_bytes;
  /// CPU to pack or unpack `bytes` of payload.
  std::function<SimTime(std::uint64_t bytes)> codec_cost;
};

/// Result of a completed reduction.
template <typename Payload>
struct ReduceResult {
  Payload payload{};
  SimTime finished_at = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
};

/// Runs one upstream reduction. Leaf payloads must be indexed by daemon id.
/// `done` fires at the front end's completion time.
template <typename Payload>
class Reduction {
 public:
  Reduction(sim::Simulator& simulator, net::Network& network,
            const TbonTopology& topology, ReduceOps<Payload> ops)
      : sim_(simulator), net_(network), topo_(topology), ops_(std::move(ops)) {}

  void start(std::vector<Payload> leaf_payloads,
             std::function<void(ReduceResult<Payload>)> done) {
    check(leaf_payloads.size() == topo_.leaf_of_daemon.size(),
          "Reduction::start payload count != daemon count");
    auto state = std::make_shared<State>();
    state->done = std::move(done);
    state->bytes_at_start = net_.total_bytes_moved();
    state->messages_at_start = net_.total_messages();
    state->procs.resize(topo_.procs.size());
    for (std::size_t i = 0; i < topo_.procs.size(); ++i) {
      state->procs[i].pending = topo_.procs[i].children.size();
      state->procs[i].cpu_free_at = sim_.now();
    }

    // Leaves pack and send. Leaf packing happens on the daemon's core in
    // parallel across daemons.
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      Payload payload = std::move(leaf_payloads[d]);
      const std::uint64_t bytes = ops_.wire_bytes(payload);
      const SimTime packed_at = sim_.now() + ops_.codec_cost(bytes);
      sim_.schedule_at(packed_at,
                       [this, state, leaf, bytes,
                        payload = std::make_shared<Payload>(std::move(payload))]() mutable {
                         send_up(state, leaf, std::move(*payload), bytes);
                       });
    }
  }

 private:
  struct ProcState {
    Payload acc{};
    std::size_t pending = 0;
    SimTime cpu_free_at = 0;
  };
  struct State {
    std::vector<ProcState> procs;
    std::function<void(ReduceResult<Payload>)> done;
    std::uint64_t bytes_at_start = 0;
    std::uint64_t messages_at_start = 0;
  };

  void send_up(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    const auto& proc = topo_.procs[proc_index];
    if (proc.parent < 0) {
      // Front end complete.
      ReduceResult<Payload> result;
      result.payload = std::move(payload);
      result.finished_at = sim_.now();
      result.bytes_moved = net_.total_bytes_moved() - state->bytes_at_start;
      result.messages = net_.total_messages() - state->messages_at_start;
      if (state->done) state->done(std::move(result));
      return;
    }
    const auto parent = static_cast<std::uint32_t>(proc.parent);
    const NodeId src = proc.host;
    const NodeId dst = topo_.procs[parent].host;
    auto shared_payload = std::make_shared<Payload>(std::move(payload));
    net_.transfer_async(src, dst, bytes,
                        [this, state, parent, bytes, shared_payload]() {
                          receive(state, parent, std::move(*shared_payload), bytes);
                        });
  }

  void receive(const std::shared_ptr<State>& state, std::uint32_t proc_index,
               Payload&& payload, std::uint64_t bytes) {
    ProcState& ps = state->procs[proc_index];
    check(ps.pending > 0, "Reduction::receive with no pending children");

    // The proc's single core unpacks and merges arrivals serially.
    SimTime cpu = ops_.codec_cost(bytes);  // unpack
    ops_.merge_into(ps.acc, std::move(payload), cpu);
    const SimTime start = std::max(sim_.now(), ps.cpu_free_at);
    ps.cpu_free_at = start + cpu;
    --ps.pending;

    if (ps.pending == 0) {
      // All children merged: pack and forward at CPU availability.
      const std::uint64_t out_bytes = ops_.wire_bytes(ps.acc);
      const SimTime packed_at = ps.cpu_free_at + ops_.codec_cost(out_bytes);
      sim_.schedule_at(packed_at, [this, state, proc_index, out_bytes]() {
        ProcState& finished = state->procs[proc_index];
        send_up(state, proc_index, std::move(finished.acc), out_bytes);
      });
    }
  }

  sim::Simulator& sim_;
  net::Network& net_;
  const TbonTopology& topo_;
  ReduceOps<Payload> ops_;
};

/// Downstream control multicast (e.g. "take 10 samples now"): small fixed
/// message fanned out level by level. Returns via callback when the last
/// leaf has it.
void multicast(sim::Simulator& simulator, net::Network& network,
               const TbonTopology& topology, std::uint64_t bytes,
               std::function<void(SimTime finished_at)> done);

}  // namespace petastat::tbon
