// Incremental per-sample merge rounds over a TbonTopology (--stream mode).
//
// A StreamingReduction persists across the N rounds of a streaming sampling
// run. Each round, every daemon hashes its fresh snapshot payload and sends
// a *delta*: an unchanged daemon acknowledges with a bare DeltaHeader
// (kDeltaAckBytes on the wire), a changed one sends its packed payload.
// Every internal proc keeps a per-child cache of the last payload it
// received from that child; a proc with at least one changed child is
// *dirty* — it re-merges the changed arrivals (codec + merge per arrival,
// exactly as tbon::Reduction charges) plus its cached copies of the
// unchanged children (machine::cached_merge_cost: a cheap lock-step walk of
// the already-decoded tree, no codec) and forwards the re-merged subtree
// payload. A proc whose children all acknowledged forwards an ack itself, so
// a clean subtree costs control-packet acks all the way up (StreamOps::
// ack_cpu), never payload bytes or merge-codec charges. The front end
// answers a clean round from its cached accumulator.
//
// Because the prefix-tree merge is canonical (order-independent and
// associative), the round-k front-end payload is bit-identical to a
// from-scratch merge of the round-k leaf payloads — set_full_remerge(true)
// drives every round through the full path for exactly that comparison.
//
// Determinism: all virtual timestamps are fixed on the simulator thread at
// arrival; real merges run on persistent per-proc strands (serialized in
// arrival order, concurrent across siblings), and every forward waits out
// its strand — the same contract as tbon::Reduction, bit-identical at any
// --exec-threads.
//
// Failure model: mark_dead/recover may be called at any virtual time, but
// both take effect at the *next* round boundary — messages of the round in
// flight are already in network buffers and deliver normally. recover()
// re-parents the corpse's orphaned leaf procs round-robin onto the nearest
// alive ancestor's surviving non-leaf children (the ancestor itself when it
// has none), marks daemons under a dead leaf as lost, and invalidates every
// cache the change touches: adopted leaves are forced to resend full
// payloads (the adopter holds no cache for them), and any proc whose
// contributing-child composition changed is forced dirty (its cached
// accumulator no longer describes its subtree). The next round is therefore
// bit-identical to a from-scratch merge of the surviving daemons.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"
#include "tbon/multicast.hpp"
#include "tbon/reduction.hpp"
#include "tbon/topology.hpp"

namespace petastat::tbon {

/// ReduceOps plus the streaming-only cost hooks.
template <typename Payload>
struct StreamOps {
  ReduceOps<Payload> base;
  /// Daemon CPU to fold a snapshot into its class-signature hash — paid
  /// every round whether or not anything changed.
  std::function<SimTime(const Payload&)> signature_cpu;
  /// Proc CPU to re-merge one *cached* child payload (no unpack codec).
  std::function<SimTime(const Payload&)> cached_merge_cpu;
  /// CPU to encode or decode one bare-DeltaHeader ack. A control packet, not
  /// a payload: machine::control_packet_cost, an order of magnitude below
  /// the merge codec's per-packet charge — acks must not cost a clean
  /// subtree what payloads cost a changed one.
  SimTime ack_cpu = 0;
};

/// What one streaming round produced.
template <typename Payload>
struct StreamRoundResult {
  /// The front end's merged snapshot for this round (served from its cache
  /// when `changed` is false).
  Payload payload{};
  /// False when every subtree acknowledged and no payload moved to the FE.
  bool changed = true;
  SimTime finished_at = 0;
  std::uint64_t bytes_moved = 0;  // this round's delta traffic only
  std::uint64_t messages = 0;
  std::uint32_t changed_daemons = 0;
  std::uint32_t remerged_procs = 0;  // dirty non-leaf procs (incl. the FE)
  std::uint32_t cached_procs = 0;    // clean non-leaf procs (incl. the FE)
};

template <typename Payload>
class StreamingReduction {
 public:
  StreamingReduction(sim::Simulator& simulator, net::Network& network,
                     const TbonTopology& topology, StreamOps<Payload> ops,
                     sim::Executor* executor = nullptr)
      : sim_(simulator),
        net_(network),
        topo_(topology),
        ops_(std::move(ops)),
        executor_(executor) {
    const std::size_t n = topo_.procs.size();
    parent_of_.resize(n);
    children_of_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      parent_of_[i] = topo_.procs[i].parent;
      children_of_[i] = topo_.procs[i].children;
    }
    dead_.assign(n, false);
    last_contrib_.resize(n);
    caches_.resize(n);
    const std::size_t daemons = topo_.leaf_of_daemon.size();
    dead_daemons_.assign(daemons, false);
    last_payload_.resize(daemons);
    force_full_daemon_.assign(daemons, false);
  }

  /// Daemons flagged here never send. Call before the first round.
  void set_dead_daemons(std::vector<bool> dead) {
    check(dead.empty() || dead.size() == topo_.leaf_of_daemon.size(),
          "StreamingReduction dead-daemon mask size != daemon count");
    if (!dead.empty()) dead_daemons_ = std::move(dead);
  }

  /// Disable every cache: all daemons send full payloads, all procs
  /// re-merge, every round — the from-scratch baseline through the same
  /// code path, for bit-identity checks and the incremental-vs-full bench.
  void set_full_remerge(bool full) { full_remerge_ = full; }

  /// Alive daemons the stream can no longer reach (their leaf proc died)
  /// count as dead from the round the loss is applied.
  [[nodiscard]] const std::vector<bool>& dead_daemons() const {
    return dead_daemons_;
  }

  /// Per daemon: the leaf holds a baseline payload for the delta protocol.
  /// Recorded into a SessionCheckpoint at round boundaries; a restored run
  /// starts cold (first resumed round is a full merge) so the bits document
  /// warmth, they are not replayed.
  [[nodiscard]] std::vector<bool> daemon_cache_valid() const {
    std::vector<bool> valid(last_payload_.size(), false);
    for (std::size_t d = 0; d < last_payload_.size(); ++d) {
      valid[d] = last_payload_[d] != nullptr;
    }
    return valid;
  }

  /// Per proc: every child that contributed last round has a cached payload
  /// (a clean round can be answered from cache). Leaves report false — they
  /// hold no child caches.
  [[nodiscard]] std::vector<bool> proc_cache_complete() const {
    std::vector<bool> complete(caches_.size(), false);
    for (std::size_t i = 0; i < caches_.size(); ++i) {
      if (topo_.procs[i].is_leaf() || last_contrib_[i].empty()) continue;
      bool all = true;
      for (const std::uint32_t child : last_contrib_[i]) {
        if (caches_[i].by_child.count(child) == 0) {
          all = false;
          break;
        }
      }
      complete[i] = all;
    }
    return complete;
  }

  /// Marks a proc dead, effective at the next round boundary.
  void mark_dead(std::uint32_t proc_index) {
    pending_ops_.push_back(Op{OpKind::kDeath, proc_index, {}});
  }

  /// Re-homes the corpse's orphaned leaves, effective at the next round
  /// boundary; `on_applied` (optional) fires with the report then.
  void recover(std::uint32_t proc_index,
               std::function<void(RecoveryReport)> on_applied = {}) {
    pending_ops_.push_back(
        Op{OpKind::kRecover, proc_index, std::move(on_applied)});
  }

  /// Runs one sample round: applies deferred deaths/recoveries, then merges
  /// the per-daemon snapshot payloads incrementally. `done` fires at the
  /// front end's completion time. Rounds are strictly sequential — do not
  /// call again before `done`.
  void run_round(std::uint32_t cursor, std::vector<Payload> leaf_payloads,
                 std::function<void(StreamRoundResult<Payload>)> done) {
    check(leaf_payloads.size() == topo_.leaf_of_daemon.size(),
          "StreamingReduction::run_round payload count != daemon count");
    check(round_ == nullptr || round_->completed,
          "StreamingReduction::run_round while a round is in flight");
    apply_pending_ops();

    auto round = std::make_shared<Round>();
    round_ = round;
    round->cursor = cursor;
    round->done = std::move(done);
    round->procs.resize(topo_.procs.size());
    mark_contributing(*round, 0);
    check(round->procs[0].contributes,
          "StreamingReduction::run_round with no reachable daemon");

    const bool threaded = executor_ != nullptr && executor_->parallel();
    for (std::size_t i = 0; i < topo_.procs.size(); ++i) {
      RoundProc& rp = round->procs[i];
      rp.cpu_free_at = sim_.now();
      if (!rp.contributes || topo_.procs[i].is_leaf()) continue;
      std::vector<std::uint32_t> contrib;
      for (const std::uint32_t child : children_of_[i]) {
        if (round->procs[child].contributes) contrib.push_back(child);
      }
      rp.pending = contrib.size();
      // A changed contributing-child composition (death, adoption) makes the
      // cached accumulator meaningless: force a full re-merge this round.
      if (full_remerge_ || contrib != last_contrib_[i]) rp.dirty = true;
      last_contrib_[i] = std::move(contrib);
      if (threaded && caches_[i].strand == nullptr) {
        caches_[i].strand = std::make_unique<sim::Executor::Strand>(*executor_);
      }
    }

    // Leaves hash their snapshots and send deltas, in daemon order.
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      if (dead_daemons_[d]) continue;
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      if (!round->procs[leaf].contributes) continue;  // unreachable this round
      Payload payload = std::move(leaf_payloads[d]);
      const SimTime sig = ops_.signature_cpu(payload);
      const bool changed = full_remerge_ || force_full_daemon_[d] ||
                           last_payload_[d] == nullptr ||
                           !(payload == *last_payload_[d]);
      if (changed) {
        auto kept = std::make_shared<const Payload>(std::move(payload));
        last_payload_[d] = kept;
        force_full_daemon_[d] = false;
        ++round->changed_daemons;
        const std::uint64_t wire =
            delta_wire_bytes(ops_.base.wire_bytes(*kept));
        const SimTime packed_at =
            sim_.now() + sig + ops_.base.codec_cost(wire);
        sim_.schedule_at(packed_at, [this, round, leaf, wire, kept]() {
          send_payload(round, leaf, Payload(*kept), wire);
        });
      } else {
        const SimTime at =
            sim_.now() + sig + ops_.ack_cpu;
        sim_.schedule_at(at, [this, round, leaf]() { send_ack(round, leaf); });
      }
    }
  }

 private:
  enum class OpKind : std::uint8_t { kDeath, kRecover };
  struct Op {
    OpKind kind;
    std::uint32_t proc;
    std::function<void(RecoveryReport)> on_applied;
  };
  struct ProcCache {
    std::unordered_map<std::uint32_t, std::shared_ptr<const Payload>> by_child;
    std::unique_ptr<sim::Executor::Strand> strand;
  };
  struct RoundProc {
    Payload acc{};
    std::size_t pending = 0;
    SimTime cpu_free_at = 0;
    bool contributes = false;
    bool dirty = false;
    std::vector<std::uint32_t> acked;  // children that acknowledged
    sim::Executor::TaskRef last_merge;
  };
  struct Round {
    std::uint32_t cursor = 0;
    bool completed = false;
    std::vector<RoundProc> procs;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    std::uint32_t changed_daemons = 0;
    std::uint32_t remerged_procs = 0;
    std::uint32_t cached_procs = 0;
    std::function<void(StreamRoundResult<Payload>)> done;
  };

  void apply_pending_ops() {
    for (Op& op : pending_ops_) {
      if (op.kind == OpKind::kDeath) {
        dead_[op.proc] = true;
        continue;
      }
      RecoveryReport report = apply_recover(op.proc);
      if (op.on_applied) op.on_applied(report);
    }
    pending_ops_.clear();
  }

  RecoveryReport apply_recover(std::uint32_t proc_index) {
    RecoveryReport report;
    check(dead_[proc_index], "StreamingReduction::recover on a live proc");
    if (parent_of_[proc_index] < 0) return report;  // FE: no recovery
    if (recovered_.count(proc_index) != 0) return report;
    recovered_.insert(proc_index);

    // Nearest alive ancestor; branch_child is its dead child on the path
    // down to the corpse.
    std::uint32_t branch_child = proc_index;
    auto ancestor = static_cast<std::uint32_t>(parent_of_[proc_index]);
    while (dead_[ancestor] && parent_of_[ancestor] >= 0) {
      branch_child = ancestor;
      ancestor = static_cast<std::uint32_t>(parent_of_[ancestor]);
    }
    if (dead_[ancestor]) return report;  // dead all the way up
    report.acted = true;

    // The ancestor's composition changes: the dead branch is detached and
    // its cached payload dropped (the composition check in run_round forces
    // the ancestor dirty next round).
    detach_child(ancestor, branch_child);
    caches_[ancestor].by_child.erase(branch_child);

    // Sort the corpse's daemons into recoverable orphans and lost ones.
    std::vector<std::uint32_t> orphans;
    for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
      if (dead_daemons_[d]) continue;
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      if (!under(leaf, proc_index)) continue;
      if (dead_[leaf]) {
        dead_daemons_[d] = true;  // unreachable for every later round
        ++report.lost_daemons;
      } else {
        orphans.push_back(d);
      }
    }
    if (orphans.empty()) return report;

    std::vector<std::uint32_t> adopters;
    for (const std::uint32_t child : children_of_[ancestor]) {
      if (topo_.procs[child].is_leaf()) continue;
      if (dead_[child]) continue;
      adopters.push_back(child);
    }
    if (adopters.empty()) adopters.push_back(ancestor);
    report.adopters = static_cast<std::uint32_t>(adopters.size());
    report.orphan_daemons = static_cast<std::uint32_t>(orphans.size());

    // Orphan leaves re-parent round-robin in daemon order — deterministic at
    // any thread count. The adopter holds no cache for an adopted leaf, so
    // the leaf must resend a full payload next round.
    for (std::size_t i = 0; i < orphans.size(); ++i) {
      const std::uint32_t d = orphans[i];
      const std::uint32_t leaf = topo_.leaf_of_daemon[d];
      const std::uint32_t target = adopters[i % adopters.size()];
      detach_child(static_cast<std::uint32_t>(parent_of_[leaf]), leaf);
      parent_of_[leaf] = static_cast<std::int32_t>(target);
      children_of_[target].push_back(leaf);
      force_full_daemon_[d] = true;
    }
    return report;
  }

  void detach_child(std::uint32_t parent, std::uint32_t child) {
    auto& kids = children_of_[parent];
    kids.erase(std::remove(kids.begin(), kids.end(), child), kids.end());
  }

  [[nodiscard]] bool under(std::uint32_t proc_index,
                           std::uint32_t ancestor) const {
    std::int32_t walk = static_cast<std::int32_t>(proc_index);
    while (walk >= 0) {
      if (static_cast<std::uint32_t>(walk) == ancestor) return true;
      walk = parent_of_[static_cast<std::uint32_t>(walk)];
    }
    return false;
  }

  bool mark_contributing(Round& round, std::uint32_t proc_index) {
    if (dead_[proc_index]) return false;
    const auto& proc = topo_.procs[proc_index];
    bool contributes = false;
    if (proc.is_leaf()) {
      for (std::uint32_t d = 0; d < topo_.leaf_of_daemon.size(); ++d) {
        if (topo_.leaf_of_daemon[d] == proc_index && !dead_daemons_[d]) {
          contributes = true;
          break;
        }
      }
    } else {
      for (const std::uint32_t child : children_of_[proc_index]) {
        if (mark_contributing(round, child)) contributes = true;
      }
    }
    round.procs[proc_index].contributes = contributes;
    return contributes;
  }

  void send_payload(const std::shared_ptr<Round>& round, std::uint32_t from,
                    Payload&& payload, std::uint64_t wire) {
    const auto parent = static_cast<std::uint32_t>(parent_of_[from]);
    ++round->messages;
    round->bytes += wire;
    auto shared_payload = std::make_shared<Payload>(std::move(payload));
    net_.transfer_async(
        topo_.procs[from].host, topo_.procs[parent].host, wire,
        [this, round, from, parent, wire, shared_payload]() {
          receive_payload(round, parent, from, std::move(*shared_payload),
                          wire);
        });
  }

  void send_ack(const std::shared_ptr<Round>& round, std::uint32_t from) {
    const auto parent = static_cast<std::uint32_t>(parent_of_[from]);
    ++round->messages;
    round->bytes += kDeltaAckBytes;
    net_.transfer_async(topo_.procs[from].host, topo_.procs[parent].host,
                        kDeltaAckBytes, [this, round, parent, from]() {
                          receive_ack(round, parent, from);
                        });
  }

  void receive_payload(const std::shared_ptr<Round>& round,
                       std::uint32_t proc_index, std::uint32_t from,
                       Payload&& payload, std::uint64_t wire) {
    RoundProc& rp = round->procs[proc_index];
    check(rp.pending > 0,
          "StreamingReduction::receive with no pending children");
    // The proc's single core unpacks and merges arrivals serially; all
    // timestamps are fixed here, before any real merge work runs.
    const SimTime cpu =
        ops_.base.codec_cost(wire) + ops_.base.merge_cpu(payload);
    const SimTime start = std::max(sim_.now(), rp.cpu_free_at);
    rp.cpu_free_at = start + cpu;
    --rp.pending;
    rp.dirty = true;

    auto kept = std::make_shared<const Payload>(std::move(payload));
    caches_[proc_index].by_child[from] = kept;
    merge_in(round, proc_index, kept);
    if (rp.pending == 0) finish(round, proc_index);
  }

  void receive_ack(const std::shared_ptr<Round>& round,
                   std::uint32_t proc_index, std::uint32_t from) {
    RoundProc& rp = round->procs[proc_index];
    check(rp.pending > 0,
          "StreamingReduction::receive with no pending children");
    const SimTime cpu = ops_.ack_cpu;
    const SimTime start = std::max(sim_.now(), rp.cpu_free_at);
    rp.cpu_free_at = start + cpu;
    --rp.pending;
    rp.acked.push_back(from);
    if (rp.pending == 0) finish(round, proc_index);
  }

  void merge_in(const std::shared_ptr<Round>& round, std::uint32_t proc_index,
                const std::shared_ptr<const Payload>& kept) {
    RoundProc& rp = round->procs[proc_index];
    if (caches_[proc_index].strand) {
      rp.last_merge =
          caches_[proc_index].strand->run([this, round, proc_index, kept]() {
            ops_.base.merge_into(round->procs[proc_index].acc, Payload(*kept));
          });
    } else {
      ops_.base.merge_into(rp.acc, Payload(*kept));
    }
  }

  /// All children accounted for. A dirty proc folds its cached copies of the
  /// acknowledged children (fixed child order), then packs and forwards the
  /// re-merged payload; a clean proc forwards an ack. The front end
  /// completes the round instead of forwarding.
  void finish(const std::shared_ptr<Round>& round, std::uint32_t proc_index) {
    RoundProc& rp = round->procs[proc_index];
    if (!rp.dirty) {
      ++round->cached_procs;
      if (parent_of_[proc_index] < 0) {
        complete(round, /*changed=*/false);
        return;
      }
      const SimTime at = std::max(sim_.now(), rp.cpu_free_at) +
                         ops_.ack_cpu;
      sim_.schedule_at(
          at, [this, round, proc_index]() { send_ack(round, proc_index); });
      return;
    }

    ++round->remerged_procs;
    for (const std::uint32_t child : last_contrib_[proc_index]) {
      if (std::find(rp.acked.begin(), rp.acked.end(), child) ==
          rp.acked.end()) {
        continue;  // this child's payload already merged on arrival
      }
      const std::shared_ptr<const Payload> kept =
          caches_[proc_index].by_child.at(child);
      rp.cpu_free_at = std::max(sim_.now(), rp.cpu_free_at) +
                       ops_.cached_merge_cpu(*kept);
      merge_in(round, proc_index, kept);
    }
    const SimTime at = std::max(sim_.now(), rp.cpu_free_at);
    sim_.schedule_at(at, [this, round, proc_index]() {
      RoundProc& finished = round->procs[proc_index];
      if (executor_) executor_->wait(finished.last_merge);
      const std::uint64_t payload_bytes = ops_.base.wire_bytes(finished.acc);
      if (parent_of_[proc_index] < 0) {
        const SimTime packed_at =
            sim_.now() + ops_.base.codec_cost(payload_bytes);
        sim_.schedule_at(packed_at, [this, round]() {
          last_out_ = std::make_shared<const Payload>(
              std::move(round->procs[0].acc));
          complete(round, /*changed=*/true);
        });
        return;
      }
      const std::uint64_t wire = delta_wire_bytes(payload_bytes);
      const SimTime packed_at = sim_.now() + ops_.base.codec_cost(wire);
      sim_.schedule_at(packed_at, [this, round, proc_index, wire]() {
        Payload out = std::move(round->procs[proc_index].acc);
        round->procs[proc_index].acc = Payload{};
        send_payload(round, proc_index, std::move(out), wire);
      });
    });
  }

  void complete(const std::shared_ptr<Round>& round, bool changed) {
    check(last_out_ != nullptr,
          "StreamingReduction: clean round before any merged round");
    round->completed = true;
    StreamRoundResult<Payload> result;
    result.payload = Payload(*last_out_);
    result.changed = changed;
    result.finished_at = sim_.now();
    result.bytes_moved = round->bytes;
    result.messages = round->messages;
    result.changed_daemons = round->changed_daemons;
    result.remerged_procs = round->remerged_procs;
    result.cached_procs = round->cached_procs;
    if (round->done) round->done(std::move(result));
  }

  sim::Simulator& sim_;
  net::Network& net_;
  const TbonTopology& topo_;
  StreamOps<Payload> ops_;
  sim::Executor* executor_;
  bool full_remerge_ = false;

  // Effective tree structure (recovery re-parents orphan leaves here).
  std::vector<std::int32_t> parent_of_;
  std::vector<std::vector<std::uint32_t>> children_of_;
  std::vector<bool> dead_;
  std::vector<bool> dead_daemons_;  // injected dead + lost-to-failure

  // Incremental state surviving across rounds.
  std::vector<ProcCache> caches_;
  std::vector<std::vector<std::uint32_t>> last_contrib_;
  std::vector<std::shared_ptr<const Payload>> last_payload_;  // by daemon
  std::vector<bool> force_full_daemon_;
  std::shared_ptr<const Payload> last_out_;  // FE accumulator cache

  std::vector<Op> pending_ops_;
  std::unordered_set<std::uint32_t> recovered_;
  std::shared_ptr<Round> round_;
};

}  // namespace petastat::tbon
