// Multi-session debug service: the request/demand/stats vocabulary.
//
// The paper's tool debugs one job at a time; the service layer runs many
// debug sessions on one machine, competing for the *tool's* shared resources
// (the target jobs are assumed disjoint — each session attaches to its own
// job's compute allocation). One SessionRequest describes one would-be
// `petastat` invocation plus when it arrives and how urgent it is; the
// scheduler turns it into a re-entrant stat::StatScenario when admitted.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "machine/machine.hpp"
#include "stat/scenario.hpp"
#include "tbon/topology.hpp"

namespace petastat::service {

/// Highest admissible SessionRequest::priority (inclusive).
inline constexpr std::uint32_t kMaxSessionPriority = 100;

/// One debug session's submission: everything a solo `petastat` run takes,
/// plus arrival time and priority. The machine is service-wide (it is the
/// contended resource), so it lives in ServiceConfig, not here.
struct SessionRequest {
  std::string name;
  /// When the request reaches the service, in virtual seconds from the
  /// service epoch. Must be >= 0.
  double arrival_seconds = 0.0;
  /// Higher runs first; ties broken by arrival, then submission order.
  /// Must be <= kMaxSessionPriority.
  std::uint32_t priority = 0;
  machine::JobConfig job;
  stat::StatOptions options;
};

/// What one session holds from the shared ledger while it runs, derived from
/// its resolved topology: every comm process occupies a login-node slot
/// (`MachineConfig::max_comm_procs_per_login` tier), the front end's fan-in
/// occupies tool connections, and the session claims worker threads from the
/// service's shared execution engine.
struct SessionDemand {
  std::uint64_t comm_slots = 0;
  std::uint32_t fe_connections = 0;
  std::uint32_t exec_threads = 1;

  [[nodiscard]] bool fits_within(const SessionDemand& other) const {
    return comm_slots <= other.comm_slots &&
           fe_connections <= other.fe_connections &&
           exec_threads <= other.exec_threads;
  }
};

/// One session's service-level outcome. Virtual times are on the *service*
/// clock; the run's internal phase breakdown is in `result`.
struct SessionStats {
  std::string name;
  std::uint32_t priority = 0;
  /// OK for a completed run; otherwise the rejection/run failure. A session
  /// whose demand can never fit the machine is rejected RESOURCE_EXHAUSTED
  /// at arrival; one that merely has to wait is queued instead.
  Status status = Status::ok();

  SimTime arrival = 0;
  SimTime start = 0;       // admission time (meaningful when admitted)
  SimTime completion = 0;  // start + the run's total virtual time
  SimTime queue_wait = 0;  // start - arrival
  SimTime turnaround = 0;  // completion - arrival

  bool admitted = false;
  bool backfilled = false;  // started ahead of a blocked higher-queue session
  /// Times this session was vacated (simulated front-end loss) and
  /// re-admitted from its checkpoint. `result` is the *final* leg's run —
  /// its `restored`/`restore_cursor` fields say where it resumed.
  std::uint32_t restarts = 0;
  SessionDemand demand;     // what the session held while running
  std::string topology;     // resolved spec name (auto modes included)
  /// Full result of the admitted run (empty for rejected sessions).
  stat::StatRunResult result;
};

}  // namespace petastat::service
