// SessionScheduler: admits many concurrent debug sessions onto one machine
// under a shared-resource ledger, SLURM-style — a priority/FIFO queue, plus
// an EASY-backfill policy that starts small later-arriving sessions into
// slots the blocked head session cannot yet use, without ever delaying the
// head's start.
//
// Two clocks, one engine:
//   * The *service* clock (the scheduler's own sim::Simulator) carries
//     arrivals, admissions, and completions. Sessions overlap on it.
//   * Each admitted session runs its own deterministic inner simulation the
//     moment it is admitted (real compute now, through the service's shared
//     sim::Executor pool), and its completion is scheduled at
//     start + StatRunResult::total_virtual_time on the service clock.
// Because every session's inner run is deterministic and self-contained (the
// re-entrant StatScenario), its merged classes are bit-identical to running
// it alone — concurrency changes *when* a session runs, never *what* it
// computes.
//
// Residual-aware planning: an auto-topology session is resolved against an
// "effective machine" whose login-slot and connection ceilings are the
// ledger's *free* capacity, so the planner (plan::choose_topology /
// choose_fe_shards, via plan::PhasePredictor) picks smaller shard counts and
// narrower trees when login nodes are contended, instead of waiting for the
// whole machine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "machine/machine.hpp"
#include "service/ledger.hpp"
#include "service/session.hpp"
#include "sim/executor.hpp"
#include "sim/simulator.hpp"

namespace petastat::service {

enum class SchedulerPolicy {
  kFifo,      // strict head-of-queue blocking (the baseline)
  kBackfill,  // EASY backfill behind a per-head start reservation
};

[[nodiscard]] const char* scheduler_policy_name(SchedulerPolicy policy);
[[nodiscard]] Result<SchedulerPolicy> parse_scheduler_policy(
    std::string_view text);

struct ServiceConfig {
  machine::MachineConfig machine = machine::petascale();
  SchedulerPolicy policy = SchedulerPolicy::kBackfill;
  /// Worker threads of the shared execution engine every session runs on;
  /// also the exec-thread dimension's ledger capacity. Must be >= 1.
  std::uint32_t executor_threads = 4;
  /// Ledger capacity overrides (tests and what-if benches). Defaults: the
  /// machine's tool-free comm-process capacity and connection ceiling.
  std::optional<std::uint64_t> comm_slot_capacity;
  std::optional<std::uint32_t> fe_connection_capacity;
};

/// Aggregate outcome of one service run. Per-session detail in `sessions`
/// (submission order).
struct ServiceReport {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  std::string machine;
  std::vector<SessionStats> sessions;

  std::uint32_t completed = 0;   // admitted runs whose status is OK
  std::uint32_t failed = 0;      // admitted runs that failed inside the tool
  std::uint32_t rejected = 0;    // never admitted (infeasible/invalid)
  std::uint32_t backfilled = 0;  // admitted ahead of a blocked head

  SimTime makespan = 0;  // last completion on the service clock
  /// Completed-OK sessions per virtual hour of makespan (the bench metric).
  double sessions_per_hour = 0.0;

  std::uint64_t comm_slot_capacity = 0;
  std::uint32_t fe_connection_capacity = 0;
  std::uint32_t exec_thread_capacity = 0;
  double comm_slot_utilization = 0.0;  // busy-integral / capacity*makespan
  double fe_connection_utilization = 0.0;
  double exec_thread_utilization = 0.0;

  double mean_queue_wait_seconds = 0.0;  // over admitted sessions
  double max_queue_wait_seconds = 0.0;
  double mean_turnaround_seconds = 0.0;
};

class SessionScheduler {
 public:
  explicit SessionScheduler(ServiceConfig config);

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  /// Enqueues a request for the run. INVALID_ARGUMENT for out-of-range
  /// priority or negative arrival; FAILED_PRECONDITION after run().
  Status submit(SessionRequest request);

  /// Replays every submitted arrival and drains the service clock.
  /// Single-shot, like StatScenario::run().
  [[nodiscard]] ServiceReport run();

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  enum class State { kWaiting, kQueued, kRunning, kDone };

  /// One resolution of a session against a ledger view: the spec the planner
  /// picked (for auto modes, under the view's residual capacity) and the
  /// demand it would hold.
  struct Resolution {
    Status status = Status::ok();
    tbon::TopologySpec spec;
    SessionDemand demand;
    /// The machine the admitted scenario must be constructed with so its
    /// internal auto resolution reproduces `spec`.
    machine::MachineConfig machine;
    std::string eval_key;  // caches deterministic runs per resolution
  };

  struct Session {
    SessionRequest request;
    std::uint32_t index = 0;
    State state = State::kWaiting;
    bool pinned = true;  // no auto modes: resolution is residual-independent
    /// Set when the session was vacated (simulated front-end loss) and is
    /// back in the queue: the next admission restores from this checkpoint
    /// instead of starting the series over.
    std::shared_ptr<const stat::SessionCheckpoint> checkpoint;
    std::uint32_t restarts = 0;
    SessionStats stats;
    /// Memoized deterministic runs, keyed by Resolution::eval_key (a pinned
    /// session has exactly one entry; an auto session one per distinct
    /// effective machine it was priced under).
    std::vector<std::pair<std::string, stat::StatRunResult>> evals;
  };

  struct Reservation {
    bool found = false;
    SimTime shadow = 0;    // earliest time the head is guaranteed to start
    SessionDemand extra;   // free capacity at the shadow, head's share removed
  };

  [[nodiscard]] Resolution resolve(const Session& session,
                                   const ResourceLedger& view) const;
  const stat::StatRunResult& evaluate(Session& session,
                                      const Resolution& resolution);
  void arrive(std::uint32_t index);
  void complete(std::uint32_t index);
  void admit(Session& session, const Resolution& resolution, bool backfilled);
  [[nodiscard]] Reservation compute_reservation(const Session& head);
  void schedule_pass();
  [[nodiscard]] std::vector<std::uint32_t> queue_order() const;

  ServiceConfig config_;
  ResourceLedger ledger_;
  sim::Simulator sim_;     // the service clock
  sim::Executor exec_;     // shared worker pool for every session's real work
  std::vector<Session> sessions_;
  bool ran_ = false;
};

}  // namespace petastat::service
