#include "service/scheduler.hpp"

#include <algorithm>

#include "machine/cost_model.hpp"
#include "plan/search.hpp"
#include "stat/checkpoint.hpp"

namespace petastat::service {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFifo: return "fifo";
    case SchedulerPolicy::kBackfill: return "backfill";
  }
  return "?";
}

Result<SchedulerPolicy> parse_scheduler_policy(std::string_view text) {
  if (text == "fifo") return SchedulerPolicy::kFifo;
  if (text == "backfill") return SchedulerPolicy::kBackfill;
  return invalid_argument("unknown scheduler policy '" + std::string(text) +
                          "' (expected fifo|backfill)");
}

namespace {

std::uint64_t default_comm_capacity(const machine::MachineConfig& machine) {
  // The tool-resource tier the ledger arbitrates. On login-tier machines
  // this is login_nodes * max_comm_procs_per_login; on clusters whose comm
  // processes ride the compute allocation the ceiling is the whole fabric
  // (each session's own allocation hosts its comm procs), so the ledger
  // bounds arbitrate connections and executor threads instead.
  return tbon::comm_process_capacity(machine, /*num_daemons=*/0);
}

}  // namespace

SessionScheduler::SessionScheduler(ServiceConfig config)
    : config_(std::move(config)),
      ledger_(config_.comm_slot_capacity.value_or(
                  default_comm_capacity(config_.machine)),
              config_.fe_connection_capacity.value_or(
                  config_.machine.max_tool_connections),
              std::max(1u, config_.executor_threads)),
      exec_(std::max(1u, config_.executor_threads)) {}

Status SessionScheduler::submit(SessionRequest request) {
  if (ran_) {
    return failed_precondition(
        "SessionScheduler::run() already happened; build a new scheduler");
  }
  if (request.priority > kMaxSessionPriority) {
    return invalid_argument(
        "session priority " + std::to_string(request.priority) +
        " out of range (0.." + std::to_string(kMaxSessionPriority) + ")");
  }
  if (request.arrival_seconds < 0.0) {
    return invalid_argument("session arrival must be >= 0 seconds");
  }
  Session session;
  session.index = static_cast<std::uint32_t>(sessions_.size());
  if (request.name.empty()) {
    request.name = "session-" + std::to_string(session.index);
  }
  session.pinned =
      !request.options.topology_auto && !request.options.fe_shards_auto;
  session.stats.name = request.name;
  session.stats.priority = request.priority;
  session.stats.arrival = seconds(request.arrival_seconds);
  session.request = std::move(request);
  sessions_.push_back(std::move(session));
  return Status::ok();
}

SessionScheduler::Resolution SessionScheduler::resolve(
    const Session& session, const ResourceLedger& view) const {
  Resolution res;
  const machine::JobConfig& job = session.request.job;
  const stat::StatOptions& options = session.request.options;

  // A pinned session's spec never depends on contention: it is priced
  // against the preset machine and gated by the ledger alone. An auto
  // session plans against the residual — an "effective machine" whose
  // login-slot and connection ceilings are the view's free capacity.
  if (session.pinned) {
    res.machine = config_.machine;
    res.eval_key = "pinned";
  } else {
    res.machine = config_.machine;
    if (!res.machine.comm_procs_on_compute_allocation &&
        res.machine.login_nodes > 0) {
      res.machine.max_comm_procs_per_login = static_cast<std::uint32_t>(
          view.free().comm_slots / res.machine.login_nodes);
    }
    res.machine.max_tool_connections =
        std::min<std::uint32_t>(res.machine.max_tool_connections,
                                view.free().fe_connections);
    res.eval_key = "auto|" +
                   std::to_string(res.machine.max_comm_procs_per_login) + "|" +
                   std::to_string(res.machine.max_tool_connections);
  }
  if (session.checkpoint != nullptr) {
    // A restored leg is a different run (it resumes mid-series, possibly
    // re-planned), so it must never reuse the pre-vacate memoized result.
    res.eval_key += "|r" + std::to_string(session.restarts);
  }

  auto layout = machine::layout_daemons(res.machine, job);
  if (!layout.is_ok()) {
    res.status = layout.status();
    return res;
  }

  // Mirror StatScenario's construction-time spec resolution exactly, so the
  // demand priced here is the topology the admitted run builds.
  tbon::TopologySpec spec = options.topology;
  if (options.fe_shards == 0 && !options.fe_shards_auto) {
    res.status =
        invalid_argument("fe_shards must be >= 1 (1 = unsharded front end)");
    return res;
  }
  const machine::CostModel costs = machine::default_cost_model(res.machine);
  if (session.checkpoint != nullptr) {
    // Mirror the restore-constructor's resolution: adopt the checkpointed
    // spec, then let the auto modes re-price K/placement against the
    // *measured* per-leaf payload bytes the checkpoint recorded.
    spec = session.checkpoint->spec;
    if (options.topology_auto || options.fe_shards_auto) {
      stat::StatOptions replan_options = options;
      replan_options.topology = spec;
      auto chosen = plan::replan_fe_shards(
          res.machine, job, replan_options, costs,
          static_cast<double>(session.checkpoint->leaf_payload_bytes));
      if (!chosen.is_ok()) {
        res.status = chosen.status();
        return res;
      }
      spec = std::move(chosen).value();
    } else {
      if (options.fe_shards != 1) spec.fe_shards = options.fe_shards;
      if (options.reducer_placement != tbon::ReducerPlacement::kCommLike) {
        spec.reducer_placement = options.reducer_placement;
      }
    }
  } else if (options.topology_auto) {
    auto chosen = plan::choose_topology(res.machine, job, options, costs);
    if (!chosen.is_ok()) {
      res.status = chosen.status();
      return res;
    }
    spec = std::move(chosen).value();
  } else if (options.fe_shards_auto) {
    auto chosen = plan::choose_fe_shards(res.machine, job, options, costs);
    if (!chosen.is_ok()) {
      res.status = chosen.status();
      return res;
    }
    spec = std::move(chosen).value();
  } else {
    if (options.fe_shards != 1) spec.fe_shards = options.fe_shards;
    if (options.reducer_placement != tbon::ReducerPlacement::kCommLike) {
      spec.reducer_placement = options.reducer_placement;
    }
  }

  auto topo = tbon::build_topology(res.machine, layout.value(), spec);
  if (!topo.is_ok()) {
    res.status = topo.status();
    return res;
  }
  res.spec = spec;
  res.demand.comm_slots = topo.value().num_comm_procs();
  res.demand.fe_connections =
      static_cast<std::uint32_t>(topo.value().front_end().children.size());
  res.demand.exec_threads = std::max(1u, options.exec_threads);
  return res;
}

const stat::StatRunResult& SessionScheduler::evaluate(
    Session& session, const Resolution& resolution) {
  for (const auto& [key, result] : session.evals) {
    if (key == resolution.eval_key) return result;
  }
  // The inner run is deterministic and self-contained, so evaluating a
  // session (for a backfill duration, say) *is* running it — the result is
  // reused verbatim at admission, never recomputed.
  if (session.checkpoint != nullptr) {
    stat::StatScenario scenario(resolution.machine, session.request.job,
                                session.request.options, &exec_,
                                session.checkpoint);
    session.evals.emplace_back(resolution.eval_key, scenario.run());
  } else {
    stat::StatScenario scenario(resolution.machine, session.request.job,
                                session.request.options, &exec_);
    session.evals.emplace_back(resolution.eval_key, scenario.run());
  }
  return session.evals.back().second;
}

void SessionScheduler::arrive(std::uint32_t index) {
  Session& session = sessions_[index];
  // Feasibility gate: a session whose demand can never fit the idle machine
  // fails now (RESOURCE_EXHAUSTED or the planner's verdict) instead of
  // deadlocking the queue; one that merely has to wait is queued.
  const ResourceLedger idle(ledger_.comm_slot_capacity(),
                            ledger_.fe_connection_capacity(),
                            ledger_.exec_thread_capacity());
  Resolution at_idle = resolve(session, idle);
  if (at_idle.status.is_ok() && !idle.fits(at_idle.demand)) {
    at_idle.status = resource_exhausted(
        "session '" + session.request.name +
        "' demands more than the machine has: " +
        std::to_string(at_idle.demand.comm_slots) + " comm slots / " +
        std::to_string(at_idle.demand.fe_connections) + " connections / " +
        std::to_string(at_idle.demand.exec_threads) + " executor threads");
  }
  if (!at_idle.status.is_ok()) {
    session.state = State::kDone;
    session.stats.status = at_idle.status;
    return;
  }
  session.state = State::kQueued;
  schedule_pass();
}

void SessionScheduler::admit(Session& session, const Resolution& resolution,
                             bool backfilled) {
  const SimTime now = sim_.now();
  ledger_.acquire(resolution.demand, now);
  session.state = State::kRunning;
  session.stats.admitted = true;
  session.stats.backfilled = backfilled;
  session.stats.demand = resolution.demand;
  session.stats.topology = resolution.spec.name();
  session.stats.start = now;
  session.stats.queue_wait = now - session.stats.arrival;

  const stat::StatRunResult& result = evaluate(session, resolution);
  session.stats.result = result;
  session.stats.status = result.status;

  const std::uint32_t index = session.index;
  sim_.schedule_at(now + result.total_virtual_time,
                   [this, index]() { complete(index); });
}

void SessionScheduler::complete(std::uint32_t index) {
  Session& session = sessions_[index];
  const SimTime now = sim_.now();
  ledger_.release(session.stats.demand, now);
  if (session.stats.result.vacated &&
      session.stats.result.checkpoint != nullptr) {
    // Simulated front-end loss: the session vacated at a round boundary
    // holding its checkpoint. It re-enters the queue and is re-admitted
    // through the ledger like any arrival, resuming mid-series (possibly
    // re-planned onto a different shard count under the then-current
    // residual).
    session.checkpoint = session.stats.result.checkpoint;
    ++session.restarts;
    session.stats.restarts = session.restarts;
    session.request.options.vacate_at_round = -1;  // resume runs to the end
    session.state = State::kQueued;
    schedule_pass();
    return;
  }
  session.state = State::kDone;
  session.stats.completion = now;
  session.stats.turnaround = now - session.stats.arrival;
  schedule_pass();
}

std::vector<std::uint32_t> SessionScheduler::queue_order() const {
  std::vector<std::uint32_t> queue;
  for (const Session& s : sessions_) {
    if (s.state == State::kQueued) queue.push_back(s.index);
  }
  std::sort(queue.begin(), queue.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const Session& sa = sessions_[a];
              const Session& sb = sessions_[b];
              if (sa.request.priority != sb.request.priority) {
                return sa.request.priority > sb.request.priority;
              }
              if (sa.stats.arrival != sb.stats.arrival) {
                return sa.stats.arrival < sb.stats.arrival;
              }
              return sa.index < sb.index;
            });
  return queue;
}

SessionScheduler::Reservation SessionScheduler::compute_reservation(
    const Session& head) {
  // EASY backfill's shadow: walk a copy of the ledger through the running
  // sessions' completions (earliest first) until the head fits. For an auto
  // head the spec is re-resolved under each hypothetical residual — more
  // freed login slots may mean a *different* (cheaper) plan fits sooner.
  std::vector<std::pair<SimTime, const SessionStats*>> running;
  for (const Session& s : sessions_) {
    if (s.state != State::kRunning) continue;
    running.emplace_back(s.stats.start + s.stats.result.total_virtual_time,
                         &s.stats);
  }
  std::sort(running.begin(), running.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Reservation r;
  ResourceLedger copy = ledger_;
  for (const auto& [completes_at, stats] : running) {
    copy.release(stats->demand, completes_at);
    const Resolution res = resolve(head, copy);
    if (!res.status.is_ok() || !copy.fits(res.demand)) continue;
    r.found = true;
    r.shadow = completes_at;
    const SessionDemand free = copy.free();
    r.extra.comm_slots = free.comm_slots - res.demand.comm_slots;
    r.extra.fe_connections = free.fe_connections - res.demand.fe_connections;
    r.extra.exec_threads = free.exec_threads - res.demand.exec_threads;
    return r;
  }
  return r;  // head cannot start within the running set's horizon
}

void SessionScheduler::schedule_pass() {
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<std::uint32_t> queue = queue_order();
    if (queue.empty()) return;

    Session& head = sessions_[queue.front()];
    const Resolution head_res = resolve(head, ledger_);
    if (head_res.status.is_ok() && ledger_.fits(head_res.demand)) {
      admit(head, head_res, /*backfilled=*/false);
      changed = true;
      continue;
    }
    // Head blocked: transient by construction (the arrival gate rejected
    // never-fits sessions), so it waits for completions. FIFO stops here.
    if (config_.policy == SchedulerPolicy::kFifo) return;

    const Reservation reservation = compute_reservation(head);
    if (!reservation.found) return;

    for (std::size_t qi = 1; qi < queue.size(); ++qi) {
      Session& candidate = sessions_[queue[qi]];
      const Resolution res = resolve(candidate, ledger_);
      if (!res.status.is_ok() || !ledger_.fits(res.demand)) continue;
      // Never delay the head: the candidate must either be gone by the
      // shadow (its deterministic duration is exact, not an estimate) or
      // fit inside the capacity the head leaves free at the shadow.
      const stat::StatRunResult& result = evaluate(candidate, res);
      const bool done_by_shadow =
          sim_.now() + result.total_virtual_time <= reservation.shadow;
      if (!done_by_shadow && !res.demand.fits_within(reservation.extra)) {
        continue;
      }
      admit(candidate, res, /*backfilled=*/true);
      changed = true;
      break;  // the reservation moved; recompute before the next candidate
    }
  }
}

ServiceReport SessionScheduler::run() {
  check(!ran_, "SessionScheduler::run() is single-shot");
  ran_ = true;

  for (const Session& session : sessions_) {
    const std::uint32_t index = session.index;
    sim_.schedule_at(session.stats.arrival, [this, index]() { arrive(index); });
  }
  sim_.run();

  ServiceReport report;
  report.policy = config_.policy;
  report.machine = config_.machine.name;
  report.comm_slot_capacity = ledger_.comm_slot_capacity();
  report.fe_connection_capacity = ledger_.fe_connection_capacity();
  report.exec_thread_capacity = ledger_.exec_thread_capacity();

  double wait_sum = 0.0;
  double turnaround_sum = 0.0;
  std::uint32_t admitted = 0;
  for (Session& session : sessions_) {
    check(session.state == State::kDone,
          "service drained with a session still pending");
    const SessionStats& stats = session.stats;
    if (stats.admitted) {
      ++admitted;
      if (stats.status.is_ok()) {
        ++report.completed;
      } else {
        ++report.failed;
      }
      if (stats.backfilled) ++report.backfilled;
      report.makespan = std::max(report.makespan, stats.completion);
      wait_sum += to_seconds(stats.queue_wait);
      turnaround_sum += to_seconds(stats.turnaround);
      report.max_queue_wait_seconds =
          std::max(report.max_queue_wait_seconds, to_seconds(stats.queue_wait));
    } else {
      ++report.rejected;
    }
    report.sessions.push_back(std::move(session.stats));
  }
  if (admitted > 0) {
    report.mean_queue_wait_seconds = wait_sum / admitted;
    report.mean_turnaround_seconds = turnaround_sum / admitted;
  }
  const double makespan_s = to_seconds(report.makespan);
  if (makespan_s > 0.0) {
    report.sessions_per_hour = report.completed * 3600.0 / makespan_s;
  }
  report.comm_slot_utilization = ledger_.comm_slot_utilization(report.makespan);
  report.fe_connection_utilization =
      ledger_.fe_connection_utilization(report.makespan);
  report.exec_thread_utilization =
      ledger_.exec_thread_utilization(report.makespan);
  return report;
}

}  // namespace petastat::service
