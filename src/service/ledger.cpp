#include "service/ledger.hpp"

namespace petastat::service {

ResourceLedger::ResourceLedger(std::uint64_t comm_slot_capacity,
                               std::uint32_t fe_connection_capacity,
                               std::uint32_t exec_thread_capacity)
    : comm_cap_(comm_slot_capacity),
      fe_cap_(fe_connection_capacity),
      exec_cap_(exec_thread_capacity) {}

bool ResourceLedger::fits(const SessionDemand& demand) const {
  return demand.comm_slots <= comm_cap_ - comm_used_ &&
         demand.fe_connections <= fe_cap_ - fe_used_ &&
         demand.exec_threads <= exec_cap_ - exec_used_;
}

void ResourceLedger::advance(SimTime to) {
  const double dt = to_seconds(to - last_change_);
  comm_busy_slot_seconds_ += dt * static_cast<double>(comm_used_);
  fe_busy_conn_seconds_ += dt * static_cast<double>(fe_used_);
  exec_busy_thread_seconds_ += dt * static_cast<double>(exec_used_);
  last_change_ = to;
}

void ResourceLedger::acquire(const SessionDemand& demand, SimTime at) {
  check(fits(demand), "ResourceLedger::acquire without a fits() check");
  advance(at);
  comm_used_ += demand.comm_slots;
  fe_used_ += demand.fe_connections;
  exec_used_ += demand.exec_threads;
}

void ResourceLedger::release(const SessionDemand& demand, SimTime at) {
  check(demand.comm_slots <= comm_used_ &&
            demand.fe_connections <= fe_used_ &&
            demand.exec_threads <= exec_used_,
        "ResourceLedger::release of more than is in use");
  advance(at);
  comm_used_ -= demand.comm_slots;
  fe_used_ -= demand.fe_connections;
  exec_used_ -= demand.exec_threads;
}

SessionDemand ResourceLedger::free() const {
  SessionDemand d;
  d.comm_slots = comm_cap_ - comm_used_;
  d.fe_connections = fe_cap_ - fe_used_;
  d.exec_threads = exec_cap_ - exec_used_;
  return d;
}

namespace {
double utilization(double busy_unit_seconds, double capacity, SimTime horizon) {
  const double horizon_s = to_seconds(horizon);
  if (capacity <= 0.0 || horizon_s <= 0.0) return 0.0;
  return busy_unit_seconds / (capacity * horizon_s);
}
}  // namespace

double ResourceLedger::comm_slot_utilization(SimTime horizon) const {
  double busy = comm_busy_slot_seconds_;
  if (horizon > last_change_) {
    busy += to_seconds(horizon - last_change_) * static_cast<double>(comm_used_);
  }
  return utilization(busy, static_cast<double>(comm_cap_), horizon);
}

double ResourceLedger::fe_connection_utilization(SimTime horizon) const {
  double busy = fe_busy_conn_seconds_;
  if (horizon > last_change_) {
    busy += to_seconds(horizon - last_change_) * static_cast<double>(fe_used_);
  }
  return utilization(busy, static_cast<double>(fe_cap_), horizon);
}

double ResourceLedger::exec_thread_utilization(SimTime horizon) const {
  double busy = exec_busy_thread_seconds_;
  if (horizon > last_change_) {
    busy += to_seconds(horizon - last_change_) * static_cast<double>(exec_used_);
  }
  return utilization(busy, static_cast<double>(exec_cap_), horizon);
}

}  // namespace petastat::service
