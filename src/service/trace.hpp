// Arrival-trace parsing for the `--service` CLI mode: a JSON file describing
// the service configuration and every session request, replayed by the
// SessionScheduler.
//
// Format (all times in seconds, all keys lowercase):
//   {
//     "machine": "petascale",            // atlas|bgl|petascale (default atlas)
//     "policy": "backfill",              // fifo|backfill (default backfill)
//     "executor_threads": 4,             // shared engine width (default 4)
//     "comm_slot_capacity": 1024,        // optional ledger overrides
//     "fe_connection_capacity": 1024,
//     "sessions": [
//       {"name": "big", "arrival": 0, "priority": 10,
//        "tasks": 65536, "topology": "2deep", "app": "statbench"},
//       ...
//     ]
//   }
// Inside a session object, "name"/"arrival"/"priority" are service-level;
// every other key is the matching `petastat` CLI flag without the leading
// dashes ("tasks" -> --tasks, "fe-shards" -> --fe-shards; booleans are bare
// flags: "sbrs": true). Validation is therefore exactly the CLI's. Sessions
// cannot override the machine — it is the shared, contended resource.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "service/scheduler.hpp"
#include "service/session.hpp"

namespace petastat::service {

struct ServiceTrace {
  ServiceConfig config;
  std::vector<SessionRequest> sessions;
};

/// Parses trace text. Malformed JSON, unknown keys, out-of-range priorities,
/// negative arrivals, and invalid session flags are INVALID_ARGUMENT.
[[nodiscard]] Result<ServiceTrace> parse_service_trace(std::string_view text);

/// Reads and parses a trace file (NOT_FOUND when unreadable).
[[nodiscard]] Result<ServiceTrace> load_service_trace(const std::string& path);

}  // namespace petastat::service
