// Rendering for ServiceReport: per-session and aggregate stats as text or
// JSON (the `--service` mode's counterpart of stat/report).
#pragma once

#include <string>

#include "service/scheduler.hpp"

namespace petastat::service {

/// Human-readable table: one row per session (submission order), then the
/// aggregate block (makespan, sessions/hour, utilization, waits).
[[nodiscard]] std::string render_service_text(const ServiceReport& report);

/// Machine-readable twin of the text report.
[[nodiscard]] std::string render_service_json(const ServiceReport& report);

}  // namespace petastat::service
